(* The PCL theorem, live: mechanically re-enact the Section-4 proof
   construction against every TM in the registry and print

   - the critical steps s1/s2 (Figures 1-2), the assembled executions
     beta/beta' (Figures 3-4) and the read-value tables (Figures 5-6),
   - each TM's verdict on the Parallelism / Consistency / Liveness
     triangle — every implementation must lose a leg, and does.

     dune exec examples/pcl_demo.exe            # all TMs
     dune exec examples/pcl_demo.exe -- dstm    # one TM
*)

open Core

let () =
  let which = if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None in
  let impls =
    match which with
    | None -> Registry.all
    | Some n -> [ Registry.find_exn n ]
  in
  let verdicts =
    List.map
      (fun impl ->
        let report = Pcl_claims.analyse impl in
        Format.printf "%a@." Pcl_figures.pp_report report;
        let v = Pcl_verdict.assess impl in
        Format.printf "%a@.@." Pcl_verdict.pp v;
        v)
      impls
  in
  Format.printf "=== The PCL triangle (Section 5) ===@.";
  Format.printf "%-12s %-14s %-14s %-14s@." "TM" "Parallelism" "Consistency"
    "Liveness";
  List.iter
    (fun (v : Pcl_verdict.t) ->
      let cell = function
        | Pcl_verdict.Holds -> "holds"
        | Pcl_verdict.Violated _ -> "VIOLATED"
      in
      Format.printf "%-12s %-14s %-14s %-14s@." v.Pcl_verdict.impl_name
        (cell v.Pcl_verdict.parallelism)
        (cell v.Pcl_verdict.consistency)
        (cell v.Pcl_verdict.liveness))
    verdicts;
  Format.printf
    "@.Every row has at least one VIOLATED cell — the PCL theorem in action.@."
