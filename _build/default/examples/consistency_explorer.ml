(* The consistency lattice, explored: evaluate every checker (opacity down
   to weak adaptive consistency) on the catalogue of classic anomaly
   histories, printing the separation matrix the paper's Section-3
   comparisons describe.

     dune exec examples/consistency_explorer.exe
*)

open Core

let short = function
  | "opacity(final-state)" -> "opac"
  | "strict-serializability" -> "sser"
  | "serializability" -> "ser"
  | "causal-serializability" -> "caus"
  | "processor-consistency" -> "pc"
  | "pram" -> "pram"
  | "snapshot-isolation" -> "si"
  | "snapshot-isolation(ei)" -> "siei"
  | "weak-adaptive" -> "wac"
  | s -> s

let () =
  let checkers = Checkers.all in
  Format.printf "%-28s" "history";
  List.iter
    (fun (c : Spec.checker) -> Format.printf "%-6s" (short c.Spec.name))
    checkers;
  Format.printf "@.";
  List.iter
    (fun (a : Anomalies.anomaly) ->
      Format.printf "%-28s" a.Anomalies.name;
      List.iter
        (fun (c : Spec.checker) ->
          let v = c.Spec.check a.Anomalies.history in
          Format.printf "%-6s"
            (match v with
            | Spec.Sat -> "yes"
            | Spec.Unsat -> "no"
            | Spec.Out_of_budget -> "?"))
        checkers;
      Format.printf "@.")
    Anomalies.catalogue;
  Format.printf "@.Descriptions:@.";
  List.iter
    (fun (a : Anomalies.anomaly) ->
      Format.printf "  %-28s %s@." a.Anomalies.name a.Anomalies.description)
    Anomalies.catalogue;
  (* sanity: the implication lattice holds on the catalogue *)
  let violations =
    List.concat_map
      (fun (a : Anomalies.anomaly) -> Hierarchy.check_history a.Anomalies.history)
      Anomalies.catalogue
  in
  match violations with
  | [] -> Format.printf "@.Implication lattice verified on all histories.@."
  | v :: _ ->
      Format.printf "@.LATTICE VIOLATION: %s sat but %s unsat@."
        v.Hierarchy.stronger v.Hierarchy.weaker
