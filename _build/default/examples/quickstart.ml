(* Quickstart: run two conflicting bank-transfer transactions on the DSTM
   implementation under three different schedules, print the resulting
   histories, and ask the consistency checkers what each execution
   satisfies.

     dune exec examples/quickstart.exe
*)

open Core

let acc_a = Item.v "account_a"
let acc_b = Item.v "account_b"
let acc_c = Item.v "account_c"

(* transfer 30 from a to b, and 20 from b to c, as static transactions *)
let transfer_ab =
  {
    Static_txn.tid = Tid.v 1;
    pid = 1;
    reads = [ acc_a; acc_b ];
    writes = [ (acc_a, Value.int 70); (acc_b, Value.int 130) ];
  }

let transfer_bc =
  {
    Static_txn.tid = Tid.v 2;
    pid = 2;
    reads = [ acc_b; acc_c ];
    writes = [ (acc_b, Value.int 80); (acc_c, Value.int 120) ];
  }

let specs = [ transfer_ab; transfer_bc ]

let run_schedule (module M : Tm_intf.S) name schedule =
  let outcomes = Hashtbl.create 8 in
  let setup mem recorder =
    let handle =
      Txn_api.instantiate (module M) mem recorder
        ~items:(Static_txn.items_of specs)
    in
    List.map
      (fun s -> (s.Static_txn.pid, Static_txn.program handle s ~outcomes))
      specs
  in
  let r = Sim.replay setup schedule in
  Format.printf "--- %s under schedule %a (%d steps) ---@." name Schedule.pp
    schedule
    (List.length r.Sim.log);
  Format.printf "%a@." History.pp r.Sim.history;
  Format.printf "satisfies: %s@.@."
    (String.concat ", " (Checkers.satisfied r.Sim.history))

let () =
  let tm = (module Dstm_tm : Tm_intf.S) in
  Format.printf "TM under test: %s — %s@.@." Dstm_tm.name Dstm_tm.describe;
  (* sequential *)
  run_schedule tm "sequential" [ Schedule.Until_done 1; Schedule.Until_done 2 ];
  (* coarse interleaving: T1 runs half-way, then T2 runs to completion,
     then T1 finishes *)
  run_schedule tm "interleaved"
    [ Schedule.Steps (1, 6); Schedule.Until_done 2; Schedule.Until_done 1 ];
  (* fine interleaving: strict alternation *)
  let alternating =
    List.concat (List.init 40 (fun _ -> [ Schedule.Steps (1, 1); Schedule.Steps (2, 1) ]))
    @ [ Schedule.Until_done 1; Schedule.Until_done 2 ]
  in
  run_schedule tm "alternating" alternating;
  Format.printf
    "Note: whatever the schedule, committed transactions stay strictly \
     serializable — aborts are DSTM's contention answer.@.";

  (* the dynamic API: retried read-modify-writes via Atomically *)
  let balance = ref None in
  let setup mem recorder =
    let handle =
      Txn_api.instantiate (module Dstm_tm) mem recorder
        ~items:[ acc_a; acc_b ]
    in
    let deposit pid amount () =
      for _ = 1 to 3 do
        Atomically.run handle ~pid (fun txn ->
            let v = Value.to_int_exn (Atomically.read txn acc_a) in
            Atomically.write txn acc_a (Value.int (v + amount));
            Atomically.Done ())
      done
    in
    [ (1, deposit 1 10); (2, deposit 2 100);
      (3,
       fun () ->
         balance :=
           Some
             (Atomically.run handle ~pid:3 (fun txn ->
                  Atomically.Done (Atomically.read txn acc_a)))) ]
  in
  let atoms =
    List.concat
      (List.init 50 (fun _ -> [ Schedule.Steps (1, 3); Schedule.Steps (2, 4) ]))
    @ [ Schedule.Until_done 1; Schedule.Until_done 2; Schedule.Until_done 3 ]
  in
  ignore (Sim.replay ~budget:20_000 setup atoms);
  Format.printf
    "@.Dynamic API: 3 deposits of 10 and 3 of 100, racing with retries — \
     final balance %a (no update lost).@."
    Fmt.(option Value.pp_compact)
    !balance
