(* Disjoint-access-parallelism audit: run three workloads against every TM
   and report, from the step-level access logs, exactly which transactions
   contend on which base objects and whether strict / conflict-graph DAP
   survive.

   Workloads:
   - disjoint : two transactions on disjoint items, run sequentially
   - chain    : Ta writes x, Tb writes x+y (suspended mid-run), Tc writes y
   - conflict : two transactions racing on the same item

     dune exec examples/dap_audit.exe
*)

open Core

let x = Item.v "x"
let y = Item.v "y"

let spec tid pid reads writes =
  { Static_txn.tid = Tid.v tid; pid; reads;
    writes = List.map (fun (i, v) -> (i, Value.int v)) writes }

let run impl specs schedule =
  let outcomes = Hashtbl.create 8 in
  let setup mem recorder =
    let handle =
      Txn_api.instantiate impl mem recorder
        ~items:(Static_txn.items_of specs)
    in
    List.map
      (fun s -> (s.Static_txn.pid, Static_txn.program handle s ~outcomes))
      specs
  in
  Sim.replay ~budget:2_000 setup schedule

let audit impl name specs schedule =
  let (module M : Tm_intf.S) = impl in
  let r = run impl specs schedule in
  let data_sets = Static_txn.data_sets specs in
  let contentions = Contention.all_contentions r.Sim.log in
  let strict = Strict_dap.violations ~data_sets r.Sim.log in
  let graph = Graph_dap.violations ~data_sets r.Sim.log in
  let name_of oid = Memory.name_of r.Sim.mem oid in
  Format.printf "  %-10s steps=%-4d contentions=%d strictDAP=%s graphDAP=%s@."
    name (List.length r.Sim.log) (List.length contentions)
    (if strict = [] then "ok" else "VIOLATED")
    (if graph = [] then "ok" else "VIOLATED");
  List.iter
    (fun (c : Contention.contention) ->
      Format.printf "      %s x %s contend on: %s%s@." (Tid.name c.t1)
        (Tid.name c.t2)
        (String.concat ", " (List.map name_of c.Contention.objects))
        (if Conflict.conflict data_sets c.t1 c.t2 then "  (conflicting)"
         else "  (DISJOINT!)"))
    contentions

let () =
  List.iter
    (fun impl ->
      let (module M : Tm_intf.S) = impl in
      Format.printf "== %s — %s@." M.name M.describe;
      (* disjoint *)
      let disjoint =
        [ spec 1 1 [ x ] [ (x, 1) ]; spec 2 2 [ y ] [ (y, 1) ] ]
      in
      audit impl "disjoint" disjoint
        [ Schedule.Until_done 1; Schedule.Until_done 2 ];
      (* chain *)
      let chain =
        [ spec 1 1 [] [ (x, 1) ];
          spec 2 2 [] [ (x, 2); (y, 2) ];
          spec 3 3 [] [ (y, 3) ] ]
      in
      let solo = run impl chain [ Schedule.Until_done 2 ] in
      let n = solo.Sim.steps_of 2 in
      audit impl "chain" chain
        [ Schedule.Steps (2, max 0 (n - 1)); Schedule.Until_done 1;
          Schedule.Until_done 3 ];
      (* conflict *)
      let conflict =
        [ spec 1 1 [ x ] [ (x, 1) ]; spec 2 2 [ x ] [ (x, 2) ] ]
      in
      audit impl "conflict" conflict
        [ Schedule.Steps (1, 3); Schedule.Until_done 2;
          Schedule.Until_done 1 ];
      Format.printf "@.")
    Registry.all
