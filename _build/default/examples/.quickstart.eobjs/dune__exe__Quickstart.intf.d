examples/quickstart.mli:
