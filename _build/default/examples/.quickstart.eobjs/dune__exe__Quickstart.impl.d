examples/quickstart.ml: Atomically Checkers Core Dstm_tm Fmt Format Hashtbl History Item List Schedule Sim Static_txn String Tid Tm_intf Txn_api Value
