examples/universal_demo.ml: Contention Core Fmt Format Hashtbl List Option Recorder Schedule Seq_object Sim String Tid Universal Value
