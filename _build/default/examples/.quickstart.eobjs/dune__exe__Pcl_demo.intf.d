examples/pcl_demo.mli:
