examples/universal_demo.mli:
