examples/consistency_explorer.ml: Anomalies Checkers Core Format Hierarchy List Spec
