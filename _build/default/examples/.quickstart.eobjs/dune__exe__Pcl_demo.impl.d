examples/pcl_demo.ml: Array Core Format List Pcl_claims Pcl_figures Pcl_verdict Registry Sys
