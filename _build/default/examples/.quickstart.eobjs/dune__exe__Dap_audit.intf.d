examples/dap_audit.mli:
