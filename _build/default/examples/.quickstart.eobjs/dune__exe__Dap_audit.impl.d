examples/dap_audit.ml: Conflict Contention Core Format Graph_dap Hashtbl Item List Memory Registry Schedule Sim Static_txn Strict_dap String Tid Tm_intf Txn_api Value
