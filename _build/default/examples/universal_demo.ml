(* Universal constructions over the same substrate as the TMs — the
   Section-2 related-work lineage made runnable.

   A counter is wrapped by the lock-free (CAS-retry) and wait-free
   (announce-and-help) constructions; both are exercised under adversarial
   schedules, and the access log shows why such constructions motivated
   disjoint-access-parallelism research: every operation, however
   "logically disjoint", collides on the single hot object.

     dune exec examples/universal_demo.exe
*)

open Core

let () =
  (* 1. lock-free counter: two processes, two increments each *)
  let responses = Hashtbl.create 4 in
  let setup mem (_ : Recorder.t) =
    Hashtbl.reset responses;
    let c = Universal.Lock_free.create mem (module Seq_object.Counter) in
    List.map
      (fun pid ->
        ( pid,
          fun () ->
            for _ = 1 to 2 do
              let r =
                Universal.Lock_free.invoke c ~tid:(Tid.v pid) (Value.int 1)
              in
              Hashtbl.replace responses pid
                (Option.value ~default:[] (Hashtbl.find_opt responses pid)
                @ [ Value.to_int_exn r ])
            done ))
      [ 1; 2 ]
  in
  let r =
    Sim.replay setup
      [ Schedule.Steps (1, 3); Schedule.Steps (2, 5); Schedule.Until_done 1;
        Schedule.Until_done 2 ]
  in
  Format.printf "lock-free counter under an interleaved schedule:@.";
  List.iter
    (fun pid ->
      Format.printf "  p%d responses: %s@." pid
        (String.concat ", "
           (List.map string_of_int
              (Option.value ~default:[] (Hashtbl.find_opt responses pid)))))
    [ 1; 2 ];
  Format.printf "  steps: %d, contentions: %d (every op hits the one cell)@."
    (List.length r.Sim.log)
    (List.length (Contention.all_contentions r.Sim.log));

  (* 2. wait-free helping: p1 announces and is suspended; p2's single
     successful CAS applies both operations *)
  let got1 = ref None and got2 = ref None in
  let setup mem (_ : Recorder.t) =
    let c =
      Universal.Wait_free.create mem (module Seq_object.Counter) ~n_procs:2
    in
    [ (1, fun () -> got1 := Some (Universal.Wait_free.invoke c ~me:0 (Value.int 10)));
      (2, fun () -> got2 := Some (Universal.Wait_free.invoke c ~me:1 (Value.int 100))) ]
  in
  let r =
    Sim.replay setup
      [ Schedule.Steps (1, 1) (* p1 announces, then sleeps *);
        Schedule.Until_done 2; Schedule.Until_done 1 ]
  in
  Format.printf "@.wait-free counter, p1 suspended after announcing:@.";
  Format.printf "  p2 (running alone) got %a — it helped apply p1's op too@."
    Fmt.(option Value.pp_compact) !got2;
  Format.printf "  p1, resumed, finished in %d further steps with %a@."
    (r.Sim.steps_of 1 - 1)
    Fmt.(option Value.pp_compact) !got1;

  (* 3. a queue, because universal means universal *)
  let drained = ref [] in
  let setup mem (_ : Recorder.t) =
    let q = Universal.Lock_free.create mem (module Seq_object.Queue) in
    [ (1, fun () ->
         List.iter
           (fun v -> ignore (Universal.Lock_free.invoke q (Seq_object.enq (Value.int v))))
           [ 1; 2; 3 ]);
      (2, fun () ->
         for _ = 1 to 3 do
           match Universal.Lock_free.invoke q Seq_object.deq with
           | Value.VList [ v ] -> drained := Value.to_int_exn v :: !drained
           | _ -> ()
         done) ]
  in
  let (_ : Sim.result) =
    Sim.replay setup [ Schedule.Until_done 1; Schedule.Until_done 2 ]
  in
  Format.printf "@.queue drained in order: %s@."
    (String.concat ", " (List.map string_of_int (List.rev !drained)))
