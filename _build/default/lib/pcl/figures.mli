(** Text rendering of the paper's Figures 1-6 from a claims report. *)

open Tm_base
open Tm_impl

val pp_step : Format.formatter -> Access_log.entry -> unit

val pp_fig12 :
  Format.formatter -> [ `Fig1 | `Fig2 ] -> Constructions.t -> unit

val pp_schedule_line :
  Format.formatter -> string * Tm_runtime.Schedule.atom list -> unit

val pp_txn_row :
  Claims.side -> Format.formatter -> Static_txn.spec -> unit

val pp_table : int list -> Claims.side -> Format.formatter -> unit -> unit
val pp_check : Format.formatter -> Claims.value_check -> unit
val pp_report : Format.formatter -> Claims.report -> unit

val pp_lanes :
  Format.formatter -> Claims.side * Tm_runtime.Schedule.atom list -> unit
(** Per-process lane rendering of a side's schedule — the visual layout of
    the paper's Figures 5-6, with the adversarial steps s1/s2 marked. *)
