(* Executing beta and beta' and checking every claim of the proof:

   Claim 1  — T1 invokes commit_T1 in alpha1.
   Claim 2  — s1 is non-trivial, on an object o1 that T3 reads in alpha3
              and alpha3' (and the same for s2 / o2 / T5).
   Claim 3  — o1 <> o2; and its disjoint-access premises: s1 is still the
              step p1 is poised to take after alpha1.alpha2, and alpha2
              applies no non-trivial primitive to any object T3 reads.
   Claim 4  — the Figure-5 value table for beta.
   Claim 5  — the Figure-6 value table for beta'.
   Final    — alpha7 and alpha7' are indistinguishable to p7, yet the two
              tables force different reads of 'a': the contradiction.

   On a real TM at least one check fails; the first failure localizes the
   property the TM lacks. *)

open Tm_base
open Tm_runtime
open Tm_impl
open Tm_trace

type value_check = {
  label : string;
  tid : Tid.t;
  item : Item.t;
  expected : Value.t;
  got : Value.t option;
  ok : bool;
}

let check_value r ~figure tid item expected =
  let got = Harness.read_of r tid item in
  {
    label = Printf.sprintf "%s: %s reads %s" figure (Tid.name tid)
        (Item.name item);
    tid;
    item;
    expected;
    got;
    ok = (match got with Some v -> Value.equal v expected | None -> false);
  }

(** Figure 5: values read by transactions in beta. *)
let fig5_expectations =
  [ (1, "b3", 0); (1, "b7", 0);
    (2, "b5", 0); (2, "b7", 0);
    (3, "b1", 1); (3, "b4", 0);
    (4, "d2", 0); (4, "c3", 1);
    (7, "a", 2); (7, "c1", 1); (7, "c2", 2) ]

(** Figure 6: values read by transactions in beta'. *)
let fig6_expectations =
  [ (1, "b3", 0); (1, "b7", 0);
    (2, "b5", 0); (2, "b7", 0);
    (5, "b2", 2); (5, "b6", 0);
    (6, "d1", 0); (6, "c5", 1);
    (7, "a", 1); (7, "c1", 1); (7, "c2", 2) ]

type side = {
  run : Harness.run;
  completed : bool;  (** the schedule ran to completion *)
  committed : Tid.t list;
  aborted : Tid.t list;
  checks : value_check list;
  dap_violations : Tm_dap.Strict_dap.violation list;
  of_violations : Tm_dap.Obstruction_freedom.violation list;
}

let make_side ?budget impl schedule ~figure ~expectations : side =
  let r = Harness.run ?budget impl schedule in
  let checks =
    List.map
      (fun (t, x, v) ->
        check_value r ~figure (Tid.v t) (Item.v x) (Value.int v))
      expectations
  in
  let h = r.Harness.sim.Sim.history in
  let log = r.Harness.sim.Sim.log in
  {
    run = r;
    completed = Harness.stopped_normally r;
    committed = List.filter (fun t -> History.committed h t) (History.txns h);
    aborted = List.filter (fun t -> History.aborted h t) (History.txns h);
    checks;
    dap_violations =
      Tm_dap.Strict_dap.violations ~data_sets:Txns.data_sets log;
    of_violations = Tm_dap.Obstruction_freedom.violations h log;
  }

type details = {
  cons : Constructions.t;
  claim1 : bool;  (** commit_T1 invoked in alpha1 *)
  claim2_s1_nontrivial : bool;
  claim2_o1_read_by_t3 : bool;  (** in alpha3 (after s1) *)
  claim2_o1_read_by_t3' : bool;  (** in alpha3' (before s1) *)
  claim2_s2_nontrivial : bool;
  claim3 : bool;  (** o1 <> o2 *)
  premise_s1_stable : bool;  (** p1 poised to take s1 after alpha1.alpha2 *)
  premise_alpha2_noninterfering : bool;
      (** alpha2 has no non-trivial op on objects T3 reads *)
  beta : side;
  beta' : side;
  indistinguishable_p7 : (unit, string) result;
  contradiction : bool;
      (** both figure tables hold for T7's read of 'a': 2 in beta and 1 in
          beta' — impossible on a real execution *)
}

type report = {
  impl_name : string;
  outcome : (details, Constructions.failure) result;
}

let entry_sig (e : Access_log.entry) = (e.oid, e.prim, e.response)

let analyse ?budget (impl : Tm_intf.impl) : report =
  let (module M : Tm_intf.S) = impl in
  match Constructions.build ?budget impl with
  | Error f -> { impl_name = M.name; outcome = Error f }
  | Ok cons ->
      let run = Harness.run ?budget impl in
      (* Claim 1: T1 is commit-pending at C1^- *)
      let r_alpha1 = run (Constructions.alpha1 cons) in
      let claim1 =
        match
          History.status r_alpha1.Harness.sim.Sim.history (Tid.v 1)
        with
        | History.Commit_pending | History.Committed -> true
        | History.Aborted | History.Live -> false
      in
      (* Claim 2 *)
      let o1 = cons.Constructions.s1.Access_log.oid in
      let o2 = cons.Constructions.s2.Access_log.oid in
      let r_a3 = run (Constructions.alpha1_s1_alpha3 cons) in
      let r_a3' = run (Constructions.alpha1_alpha3' cons) in
      let claim2_o1_read_by_t3 =
        Oid.Set.mem o1 (Harness.objects_read_by r_a3 3)
      in
      let claim2_o1_read_by_t3' =
        Oid.Set.mem o1 (Harness.objects_read_by r_a3' 3)
      in
      (* Claim 3 premises *)
      let r_a12 =
        run (Constructions.alpha1 cons @ Constructions.alpha2 cons
             @ [ Constructions.s1_atom ])
      in
      let premise_s1_stable =
        match Harness.nth_step_of_pid r_a12 1 cons.Constructions.k1 with
        | Some e ->
            entry_sig e = entry_sig cons.Constructions.s1
        | None -> false
      in
      let premise_alpha2_noninterfering =
        let read_by_t3 = Harness.objects_read_by r_a3 3 in
        not
          (Oid.Set.exists
             (fun oid -> Harness.nontrivial_on r_a12 2 oid)
             read_by_t3)
      in
      (* the two main executions *)
      let beta =
        make_side ?budget impl (Constructions.beta cons) ~figure:"Fig5"
          ~expectations:fig5_expectations
      in
      let beta' =
        make_side ?budget impl (Constructions.beta' cons) ~figure:"Fig6"
          ~expectations:fig6_expectations
      in
      (* indistinguishability of alpha7 / alpha7' to p7 *)
      let indistinguishable_p7 =
        let s = Harness.step_signature beta.run 7 in
        let s' = Harness.step_signature beta'.run 7 in
        let rec cmp i l l' =
          match (l, l') with
          | [], [] -> Ok ()
          | (o, p, v) :: _, [] | [], (o, p, v) :: _ ->
              Error
                (Fmt.str "step %d exists on one side only: %a.%a -> %a" i
                   Fmt.int (Oid.to_int o) Primitive.pp_compact p
                   Value.pp_compact v)
          | (o, p, v) :: rest, (o', p', v') :: rest' ->
              if Oid.equal o o' && Primitive.equal p p' && Value.equal v v'
              then cmp (i + 1) rest rest'
              else
                Error
                  (Fmt.str
                     "p7 diverges at its step %d: oid %d %a -> %a vs oid %d \
                      %a -> %a"
                     i (Oid.to_int o) Primitive.pp_compact p Value.pp_compact
                     v (Oid.to_int o') Primitive.pp_compact p'
                     Value.pp_compact v')
        in
        cmp 1 s s'
      in
      let a_read side = Harness.read_of side.run (Tid.v 7) Txns.a in
      let contradiction =
        a_read beta = Some (Value.int 2) && a_read beta' = Some (Value.int 1)
        && Result.is_ok indistinguishable_p7
      in
      {
        impl_name = M.name;
        outcome =
          Ok
            {
              cons;
              claim1;
              claim2_s1_nontrivial =
                Primitive.non_trivial cons.Constructions.s1.Access_log.prim;
              claim2_o1_read_by_t3;
              claim2_o1_read_by_t3';
              claim2_s2_nontrivial =
                Primitive.non_trivial cons.Constructions.s2.Access_log.prim;
              claim3 = not (Oid.equal o1 o2);
              premise_s1_stable;
              premise_alpha2_noninterfering;
              beta;
              beta';
              indistinguishable_p7;
              contradiction;
            };
      }

let failed_checks (s : side) = List.filter (fun c -> not c.ok) s.checks
