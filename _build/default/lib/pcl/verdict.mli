(** The triangle verdict: which of Parallelism / Consistency / Liveness a
    TM loses, with concrete evidence — the executable Section 5.  Evidence
    combines the construction's own failures, strict-DAP violations on the
    beta/beta' logs and on dedicated scenarios (disjoint pair; the
    3-transaction status-word chain), obstruction-freedom probes, and
    weak-adaptive-checker refutations of restricted histories. *)

open Tm_impl

type leg = Holds | Violated of string

val pp_leg : Format.formatter -> leg -> unit

type t = {
  impl_name : string;
  parallelism : leg;
  consistency : leg;
  liveness : leg;
  notes : string list;
}

val disjoint_pair_violations :
  Tm_intf.impl -> Tm_dap.Strict_dap.violation list

val chain_violations : Tm_intf.impl -> Tm_dap.Strict_dap.violation list

val suspended_enemy_progress : Tm_intf.impl -> (unit, string) result
(** Obstruction-freedom probe: can a conflicting transaction always finish
    solo while an enemy is suspended at any point of its run? *)

val assess : ?budget:int -> Tm_intf.impl -> t
val pp : Format.formatter -> t -> unit
