(** Executing beta and beta' and checking every claim of the proof
    (Claims 1-5, the Figure-5/6 value tables, p7's indistinguishability
    and the final contradiction).  On a real TM at least one check fails,
    and the first failure localizes the property the TM lacks. *)

open Tm_base
open Tm_impl

type value_check = {
  label : string;
  tid : Tid.t;
  item : Item.t;
  expected : Value.t;
  got : Value.t option;
  ok : bool;
}

val fig5_expectations : (int * string * int) list
val fig6_expectations : (int * string * int) list

type side = {
  run : Harness.run;
  completed : bool;
  committed : Tid.t list;
  aborted : Tid.t list;
  checks : value_check list;
  dap_violations : Tm_dap.Strict_dap.violation list;
  of_violations : Tm_dap.Obstruction_freedom.violation list;
}

type details = {
  cons : Constructions.t;
  claim1 : bool;  (** commit_T1 invoked in alpha1 *)
  claim2_s1_nontrivial : bool;
  claim2_o1_read_by_t3 : bool;
  claim2_o1_read_by_t3' : bool;
  claim2_s2_nontrivial : bool;
  claim3 : bool;  (** o1 <> o2 *)
  premise_s1_stable : bool;
  premise_alpha2_noninterfering : bool;
  beta : side;
  beta' : side;
  indistinguishable_p7 : (unit, string) result;
  contradiction : bool;
}

type report = {
  impl_name : string;
  outcome : (details, Constructions.failure) result;
}

val analyse : ?budget:int -> Tm_intf.impl -> report
val failed_checks : side -> value_check list
