(* Locating the critical steps s1 and s2 (Figures 1 and 2).

   The proof establishes that *some* step of the writer's solo run flips
   the value a later solo reader observes; executably, the existence
   argument becomes a linear scan over solo-prefix lengths.  The possible
   outcomes map exactly onto the PCL triangle:

   - [Found]    — the flip step exists: the construction continues.
   - [No_flip]  — the reader never observes the writer's committed value:
                  the TM cannot satisfy weak adaptive consistency (the
                  delta_1 case analysis at the start of the proof).
   - [Liveness] — the writer cannot commit solo, or the reader cannot
                  complete solo from some reachable configuration
                  (obstruction-freedom / solo progress violated). *)

open Tm_base
open Tm_runtime
open Tm_impl

type found = {
  k : int;  (** s = the k-th step of the writer's solo segment (1-based) *)
  step : Access_log.entry;  (** the step itself *)
  before : Value.t;  (** reader's value from the configuration before s *)
  after : Value.t;  (** reader's value from the configuration after s *)
  writer_total : int;  (** steps of the writer's full solo segment *)
}

type result =
  | Found of found
  | No_flip of { writer_total : int; value : Value.t }
  | Liveness of { phase : string; at_prefix : int option }
  | Crashed of string

(** [find impl ~prefix ~writer ~writer_tid ~reader ~reader_tid ~item
     ~initial_value] — scan solo prefixes of [writer] (run after
     [prefix]) and locate the first one after which [reader], run solo to
     completion, reads something other than [initial_value] for [item]. *)
let find ?budget (impl : Tm_intf.impl) ~(prefix : Schedule.atom list)
    ~(writer : int) ~(reader : int) ~(reader_tid : Tid.t) ~(item : Item.t)
    ~(initial_value : Value.t) : result =
  (* total solo steps of the writer from the prefix configuration *)
  let full =
    Harness.run ?budget impl (prefix @ [ Schedule.Until_done writer ])
  in
  match full.Harness.sim.Sim.report.Schedule.stop with
  | Schedule.Crashed (_, e) -> Crashed (Printexc.to_string e)
  | Schedule.Budget_exhausted _ ->
      Liveness { phase = "writer solo run"; at_prefix = None }
  | Schedule.Completed -> (
      let writer_total =
        (* steps of the writer during its Until_done segment; the writer
           does not run during [prefix] in the proof's constructions *)
        full.Harness.sim.Sim.steps_of writer
      in
      let reader_value k =
        let r =
          Harness.run ?budget impl
            (prefix
            @ [ Schedule.Steps (writer, k); Schedule.Until_done reader ])
        in
        match r.Harness.sim.Sim.report.Schedule.stop with
        | Schedule.Crashed (_, e) -> Error (Crashed (Printexc.to_string e))
        | Schedule.Budget_exhausted _ ->
            Error (Liveness { phase = "reader solo run"; at_prefix = Some k })
        | Schedule.Completed -> (
            if Harness.aborted r reader_tid then
              (* the reader ran solo (every writer step precedes its
                 interval), so an abort violates obstruction-freedom *)
              Error
                (Liveness { phase = "reader solo abort"; at_prefix = Some k })
            else
              match Harness.read_of r reader_tid item with
              | Some v -> Ok (v, r)
              | None -> Error (Crashed "reader committed without the read"))
      in
      let rec scan k =
        if k > writer_total then
          match reader_value writer_total with
          | Ok (v, _) -> No_flip { writer_total; value = v }
          | Error e -> e
        else
          match reader_value k with
          | Error e -> e
          | Ok (v, _) ->
              if Value.equal v initial_value then scan (k + 1)
              else begin
                (* flip at the k-th writer step; fetch that step *)
                let r =
                  Harness.run ?budget impl
                    (prefix @ [ Schedule.Steps (writer, k) ])
                in
                match Harness.nth_step_of_pid r writer k with
                | None -> Crashed "flip step not found in log"
                | Some step ->
                    let before =
                      match reader_value (k - 1) with
                      | Ok (v, _) -> v
                      | Error _ -> initial_value
                    in
                    Found { k; step; before; after = v; writer_total }
              end
      in
      scan 0)
