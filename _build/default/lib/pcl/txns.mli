(** The seven static transactions of the PCL proof (Section 4), verbatim:
    T1 (p1) reads b3, b7 and writes 1 to a, b1, c1, d1, e1_3; ...;
    T7 (p7) reads a, c1, c2 and writes 1 to b7, e2_7. *)

open Tm_base
open Tm_impl

val a : Item.t
val b1 : Item.t
val b2 : Item.t
val b3 : Item.t
val b4 : Item.t
val b5 : Item.t
val b6 : Item.t
val b7 : Item.t
val c1 : Item.t
val c2 : Item.t
val c3 : Item.t
val c5 : Item.t
val d1 : Item.t
val d2 : Item.t
val e1_3 : Item.t
val e2_5 : Item.t
val e2_7 : Item.t
val e3_4 : Item.t
val e5_6 : Item.t

val t1 : Static_txn.spec
val t2 : Static_txn.spec
val t3 : Static_txn.spec
val t4 : Static_txn.spec
val t5 : Static_txn.spec
val t6 : Static_txn.spec
val t7 : Static_txn.spec

val specs : Static_txn.spec list
val items : Item.t list
val data_sets : (Tid.t * Item.Set.t) list
val spec_of : Tid.t -> Static_txn.spec
