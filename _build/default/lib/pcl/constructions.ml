(* Assembling the proof's executions (Figures 1-4):

     alpha1 = T1 solo from C0 until C1^-        (s1 = next step of p1)
     alpha2 = T2 solo from C1^- until C2^-      (s2 = next step of p2)
     beta   = alpha1 . alpha2 . s1 . alpha3 . alpha4 . s2 . alpha7
     beta'  = alpha1 . alpha2 . s2 . alpha5 . alpha6 . s1 . alpha7'

   plus the auxiliary delta executions used by the claims. *)

open Tm_base
open Tm_runtime
open Tm_impl

type failure =
  | Liveness_failure of { phase : string; detail : string }
      (** a solo segment could not finish: blocking or solo abort *)
  | Consistency_no_flip of {
      writer : Tid.t;
      reader : Tid.t;
      item : Item.t;
      value : Value.t;
    }
      (** the reader never observes the writer's committed value *)
  | Crash of string

type t = {
  impl : Tm_intf.impl;
  k1 : int;  (** s1 is the k1-th step of T1's solo run *)
  s1 : Access_log.entry;
  k2 : int;  (** s2 is the k2-th step of T2's solo run from C1^- *)
  s2 : Access_log.entry;
  flip1 : Critical_step.found;
  flip2 : Critical_step.found;
}

let alpha1 c = [ Schedule.Steps (1, c.k1 - 1) ]
let s1_atom = Schedule.Steps (1, 1)
let alpha2 c = [ Schedule.Steps (2, c.k2 - 1) ]
let s2_atom = Schedule.Steps (2, 1)

(** beta = alpha1 . alpha2 . s1 . alpha3 . alpha4 . s2 . alpha7 *)
let beta c =
  alpha1 c @ alpha2 c
  @ [ s1_atom; Schedule.Until_done 3; Schedule.Until_done 4; s2_atom;
      Schedule.Until_done 7 ]

(** beta' = alpha1 . alpha2 . s2 . alpha5 . alpha6 . s1 . alpha7' *)
let beta' c =
  alpha1 c @ alpha2 c
  @ [ s2_atom; Schedule.Until_done 5; Schedule.Until_done 6; s1_atom;
      Schedule.Until_done 7 ]

(** delta1 = T1 solo to commit, then T3 solo to commit (used for the
    consistency evidence when the flip search fails, and by tests). *)
let delta1 = [ Schedule.Until_done 1; Schedule.Until_done 3 ]

(** alpha1 . s1 . alpha3 — the execution defining s1 (Figure 1, top). *)
let alpha1_s1_alpha3 c =
  alpha1 c @ [ s1_atom; Schedule.Until_done 3 ]

(** alpha1 . alpha3' — T3 solo from C1^- (Figure 1, bottom). *)
let alpha1_alpha3' c = alpha1 c @ [ Schedule.Until_done 3 ]

let of_flip_failure ~(writer : Tid.t) ~(reader : Tid.t) ~(item : Item.t)
    (r : Critical_step.result) : failure =
  match r with
  | Critical_step.No_flip { value; _ } ->
      Consistency_no_flip { writer; reader; item; value }
  | Critical_step.Liveness { phase; at_prefix } ->
      Liveness_failure
        {
          phase;
          detail =
            (match at_prefix with
            | None -> "solo run exceeded the step budget"
            | Some k ->
                Printf.sprintf
                  "solo run exceeded the step budget/aborted after %d writer \
                   steps"
                  k);
        }
  | Critical_step.Crashed msg -> Crash msg
  | Critical_step.Found _ -> assert false

(** Build the construction for a TM: locate s1 and s2. *)
let build ?budget (impl : Tm_intf.impl) : (t, failure) result =
  (* Figure 1: s1 flips T3's read of b1 from 0 *)
  match
    Critical_step.find ?budget impl ~prefix:[] ~writer:1 ~reader:3
      ~reader_tid:(Tid.v 3) ~item:Txns.b1 ~initial_value:Value.initial
  with
  | Critical_step.Found flip1 -> (
      let k1 = flip1.Critical_step.k in
      let prefix = [ Schedule.Steps (1, k1 - 1) ] in
      (* Figure 2: from C1^-, s2 flips T5's read of b2 from 0 *)
      match
        Critical_step.find ?budget impl ~prefix ~writer:2 ~reader:5
          ~reader_tid:(Tid.v 5) ~item:Txns.b2 ~initial_value:Value.initial
      with
      | Critical_step.Found flip2 ->
          Ok
            {
              impl;
              k1;
              s1 = flip1.Critical_step.step;
              k2 = flip2.Critical_step.k;
              s2 = flip2.Critical_step.step;
              flip1;
              flip2;
            }
      | other ->
          Error
            (of_flip_failure ~writer:(Tid.v 2) ~reader:(Tid.v 5)
               ~item:Txns.b2 other))
  | other ->
      Error
        (of_flip_failure ~writer:(Tid.v 1) ~reader:(Tid.v 3) ~item:Txns.b1
           other)

let pp_failure ppf = function
  | Liveness_failure { phase; detail } ->
      Fmt.pf ppf "liveness failure during %s: %s" phase detail
  | Consistency_no_flip { writer; reader; item; value } ->
      Fmt.pf ppf
        "consistency failure: %s never observes %s's committed write to %s \
         (still reads %a)"
        (Tid.name reader) (Tid.name writer) (Item.name item)
        Value.pp_compact value
  | Crash msg -> Fmt.pf ppf "crash: %s" msg

(** delta2 = alpha1 . alpha2 . s1 . alpha3 . alpha4 . alpha5' — the proof's
    Claim-4 auxiliary execution, in which T2 cannot be in com (T5 reads 0
    for b2). *)
let delta2 c =
  alpha1 c @ alpha2 c
  @ [ s1_atom; Schedule.Until_done 3; Schedule.Until_done 4;
      Schedule.Until_done 5 ]

(** delta5 = alpha1 . alpha2 . s2 . alpha5 . alpha6 . alpha3' — the
    Claim-5 auxiliary execution, in which T1 cannot be in com (T3 reads 0
    for b1). *)
let delta5 c =
  alpha1 c @ alpha2 c
  @ [ s2_atom; Schedule.Until_done 5; Schedule.Until_done 6;
      Schedule.Until_done 3 ]
