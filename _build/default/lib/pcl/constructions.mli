(** Assembling the proof's executions (Figures 1-4):
    alpha1 = T1 solo until C1^-, s1 the next step of p1; alpha2 = T2 solo
    from C1^- until C2^-, s2 the next step of p2;
    beta = alpha1.alpha2.s1.alpha3.alpha4.s2.alpha7 and
    beta' = alpha1.alpha2.s2.alpha5.alpha6.s1.alpha7'. *)

open Tm_base
open Tm_runtime
open Tm_impl

type failure =
  | Liveness_failure of { phase : string; detail : string }
  | Consistency_no_flip of {
      writer : Tid.t;
      reader : Tid.t;
      item : Item.t;
      value : Value.t;
    }
  | Crash of string

type t = {
  impl : Tm_intf.impl;
  k1 : int;  (** s1 is the k1-th step of T1's solo run *)
  s1 : Access_log.entry;
  k2 : int;  (** s2 is the k2-th step of T2's solo run from C1^- *)
  s2 : Access_log.entry;
  flip1 : Critical_step.found;
  flip2 : Critical_step.found;
}

val alpha1 : t -> Schedule.atom list
val s1_atom : Schedule.atom
val alpha2 : t -> Schedule.atom list
val s2_atom : Schedule.atom
val beta : t -> Schedule.atom list
val beta' : t -> Schedule.atom list

val delta1 : Schedule.atom list
(** T1 solo to commit, then T3 solo to commit — the history of the
    paper's opening case analysis. *)

val alpha1_s1_alpha3 : t -> Schedule.atom list
val alpha1_alpha3' : t -> Schedule.atom list

val build : ?budget:int -> Tm_intf.impl -> (t, failure) result
val pp_failure : Format.formatter -> failure -> unit

val delta2 : t -> Schedule.atom list
(** The proof's Claim-4 auxiliary execution: T2 cannot be in com. *)

val delta5 : t -> Schedule.atom list
(** The proof's Claim-5 auxiliary execution: T1 cannot be in com. *)
