(** Locating the critical steps s1 and s2 (Figures 1-2).

    The proof's existence argument becomes a linear scan over solo-prefix
    lengths of the writer, probing what a later solo reader observes.  The
    possible outcomes map onto the PCL triangle: [Found] continues the
    construction; [No_flip] is the consistency-failure branch of the
    opening delta_1 case analysis; [Liveness] means the writer or reader
    could not finish solo. *)

open Tm_base
open Tm_runtime
open Tm_impl

type found = {
  k : int;  (** s = the k-th step of the writer's solo segment (1-based) *)
  step : Access_log.entry;
  before : Value.t;  (** reader's value from the configuration before s *)
  after : Value.t;  (** reader's value from the configuration after s *)
  writer_total : int;  (** steps of the writer's full solo segment *)
}

type result =
  | Found of found
  | No_flip of { writer_total : int; value : Value.t }
  | Liveness of { phase : string; at_prefix : int option }
  | Crashed of string

val find :
  ?budget:int ->
  Tm_intf.impl ->
  prefix:Schedule.atom list ->
  writer:int ->
  reader:int ->
  reader_tid:Tid.t ->
  item:Item.t ->
  initial_value:Value.t ->
  result
