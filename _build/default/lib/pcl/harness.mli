(** Running the proof's transactions against a TM under scripted
    schedules.  Every execution is replayed from the initial configuration
    C0, so configurations are identified with schedule prefixes. *)

open Tm_base
open Tm_runtime
open Tm_impl

type run = {
  sim : Sim.result;
  outcomes : (Tid.t, Static_txn.outcome) Hashtbl.t;
}

val default_budget : int

val run : ?budget:int -> Tm_intf.impl -> Schedule.atom list -> run
(** Replay a schedule from C0 with all seven transactions spawned. *)

val outcome : run -> Tid.t -> Static_txn.outcome option
val committed : run -> Tid.t -> bool
val aborted : run -> Tid.t -> bool

val read_of : run -> Tid.t -> Item.t -> Value.t option
(** The value a transaction read for an item, if it got that far. *)

val stopped_normally : run -> bool
val budget_exhausted_pid : run -> int option

val nth_step_of_pid : run -> int -> int -> Access_log.entry option
(** The n-th step (1-based) taken by a pid in the run. *)

val step_signature : run -> int -> (Oid.t * Primitive.t * Value.t) list
(** A pid's steps as (object, primitive, response) triples — the
    indistinguishability comparison. *)

val objects_read_by : run -> int -> Oid.Set.t
val nontrivial_on : run -> int -> Oid.t -> bool
