lib/pcl/harness.mli: Access_log Hashtbl Item Oid Primitive Schedule Sim Static_txn Tid Tm_base Tm_impl Tm_intf Tm_runtime Value
