lib/pcl/txns.mli: Item Static_txn Tid Tm_base Tm_impl
