lib/pcl/constructions.mli: Access_log Critical_step Format Item Schedule Tid Tm_base Tm_impl Tm_intf Tm_runtime Value
