lib/pcl/critical_step.ml: Access_log Harness Item Printexc Schedule Sim Tid Tm_base Tm_impl Tm_intf Tm_runtime Value
