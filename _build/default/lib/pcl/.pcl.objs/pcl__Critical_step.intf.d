lib/pcl/critical_step.mli: Access_log Item Schedule Tid Tm_base Tm_impl Tm_intf Tm_runtime Value
