lib/pcl/txns.ml: Item List Static_txn Tid Tm_base Tm_impl Value
