lib/pcl/figures.mli: Access_log Claims Constructions Format Static_txn Tm_base Tm_impl Tm_runtime
