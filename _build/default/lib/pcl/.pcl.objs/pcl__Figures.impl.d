lib/pcl/figures.ml: Claims Constructions Critical_step Fmt Harness Item List Oid Primitive Printf Static_txn String Tid Tm_base Tm_impl Tm_runtime Txns Value
