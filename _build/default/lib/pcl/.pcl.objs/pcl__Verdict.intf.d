lib/pcl/verdict.mli: Format Tm_dap Tm_impl Tm_intf
