lib/pcl/constructions.ml: Access_log Critical_step Fmt Item Printf Schedule Tid Tm_base Tm_impl Tm_intf Tm_runtime Txns Value
