lib/pcl/claims.ml: Access_log Constructions Fmt Harness History Item List Oid Primitive Printf Result Sim Tid Tm_base Tm_dap Tm_impl Tm_intf Tm_runtime Tm_trace Txns Value
