lib/pcl/harness.ml: Access_log Hashtbl List Oid Option Primitive Schedule Sim Static_txn Tid Tm_base Tm_impl Tm_intf Tm_runtime Txn_api Txns
