lib/pcl/claims.mli: Constructions Harness Item Tid Tm_base Tm_dap Tm_impl Tm_intf Value
