(* The seven static transactions of the PCL proof (Section 4), verbatim:

   T1 (p1): reads b3, b7;  writes 1 to a, b1, c1, d1, e1_3
   T2 (p2): reads b5, b7;  writes 2 to a, b2, c2, d2, e2_5, e2_7
   T3 (p3): reads b1, b4;  writes 1 to b3, c3, e1_3, e3_4
   T4 (p4): reads d2, c3;  writes 1 to b4, e3_4
   T5 (p5): reads b2, b6;  writes 1 to b5, c5, e2_5, e5_6
   T6 (p6): reads d1, c5;  writes 1 to b6, e5_6
   T7 (p7): reads a, c1, c2; writes 1 to b7, e2_7

   (b_k, c_k, d_k are written by T_k alone; e_{k,m} by both T_k and T_m.) *)

open Tm_base
open Tm_impl

let a = Item.v "a"
let b1 = Item.v "b1"
let b2 = Item.v "b2"
let b3 = Item.v "b3"
let b4 = Item.v "b4"
let b5 = Item.v "b5"
let b6 = Item.v "b6"
let b7 = Item.v "b7"
let c1 = Item.v "c1"
let c2 = Item.v "c2"
let c3 = Item.v "c3"
let c5 = Item.v "c5"
let d1 = Item.v "d1"
let d2 = Item.v "d2"
let e1_3 = Item.v "e1_3"
let e2_5 = Item.v "e2_5"
let e2_7 = Item.v "e2_7"
let e3_4 = Item.v "e3_4"
let e5_6 = Item.v "e5_6"

let w v xs = List.map (fun x -> (x, Value.int v)) xs

let t1 =
  { Static_txn.tid = Tid.v 1; pid = 1; reads = [ b3; b7 ];
    writes = w 1 [ a; b1; c1; d1; e1_3 ] }

let t2 =
  { Static_txn.tid = Tid.v 2; pid = 2; reads = [ b5; b7 ];
    writes = w 2 [ a; b2; c2; d2; e2_5; e2_7 ] }

let t3 =
  { Static_txn.tid = Tid.v 3; pid = 3; reads = [ b1; b4 ];
    writes = w 1 [ b3; c3; e1_3; e3_4 ] }

let t4 =
  { Static_txn.tid = Tid.v 4; pid = 4; reads = [ d2; c3 ];
    writes = w 1 [ b4; e3_4 ] }

let t5 =
  { Static_txn.tid = Tid.v 5; pid = 5; reads = [ b2; b6 ];
    writes = w 1 [ b5; c5; e2_5; e5_6 ] }

let t6 =
  { Static_txn.tid = Tid.v 6; pid = 6; reads = [ d1; c5 ];
    writes = w 1 [ b6; e5_6 ] }

let t7 =
  { Static_txn.tid = Tid.v 7; pid = 7; reads = [ a; c1; c2 ];
    writes = w 1 [ b7; e2_7 ] }

let specs = [ t1; t2; t3; t4; t5; t6; t7 ]
let items = Static_txn.items_of specs
let data_sets = Static_txn.data_sets specs

let spec_of tid =
  List.find (fun s -> Tid.equal s.Static_txn.tid tid) specs
