(** The liveness profile (T-E): suspend a 2-item writer at every point of
    its solo run and probe whether another transaction still finishes solo
    — once conflicting (obstruction-freedom) and once disjoint (where
    strict DAP alone should guarantee progress). *)

open Tm_impl

type outcome = Commit | Abort | Stall

type profile = {
  points : int;  (** suspension points probed *)
  commits : int;
  aborts : int;
  stalls : int;
}

val probe_once :
  Tm_intf.impl -> suspend_at:int -> probe_pid:int -> probe_tid:int -> outcome

val run : Tm_intf.impl -> disjoint:bool -> profile
