(** Empirical liveness classification.

    Liveness conditions quantify over all executions, so code can refute
    but never prove them; the classifier runs a battery of adversarial
    probes and reports the strongest class consistent with what it
    observed, with a witness for every exclusion.  The classical
    placements come out: pram-local wait-free, si-clock lock-free-or-better
    (no aborts; install retries are contention-bounded), candidate
    lock-free, dstm obstruction-free only (the textbook mutual-abort
    livelock is found by an adaptive commit-avoiding adversary), tl-lock /
    tl2-clock / norec blocking. *)

open Tm_impl

type cls = Wait_free | Lock_free | Obstruction_free | Blocking

val cls_to_string : cls -> string
val pp_cls : Format.formatter -> cls -> unit

type report = { cls : cls; evidence : string }

type solo_result = Solo_ok | Stalls of int | Solo_abort of int

val solo_progress : Tm_intf.impl -> solo_result
(** Probe 1: can a conflicting transaction always finish solo while an
    enemy is suspended at any point of its run?  [Stalls k] / [Solo_abort
    k] name the suspension point that refutes it. *)

val find_livelock : ?horizon:int -> Tm_intf.impl -> int option
(** Probe 2: the adaptive commit-avoiding adversary.  At every decision
    point it replays the extended path and steps a process only if that
    step commits nobody; surviving [horizon] steps with zero commits
    witnesses a mutual-abort livelock.  This separates DSTM-style designs
    (aborting an enemy commits nobody) from invalidation-by-commit designs
    (the candidate TM), where every available step eventually commits
    someone. *)

val aborts_under_contention : Tm_intf.impl -> int
(** Probe 3: aborts observed under fair round-robin contention with
    retry-forever clients — any abort refutes wait-freedom. *)

val classify : Tm_intf.impl -> report
