lib/probe/workload.ml: Access_log Conflict Contention History Item List Memory Option Printf Random Recorder Scheduler Tid Tm_base Tm_dap Tm_impl Tm_intf Tm_runtime Tm_trace Txn_api Value
