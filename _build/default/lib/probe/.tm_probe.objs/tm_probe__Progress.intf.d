lib/probe/progress.mli: Tm_impl Tm_intf
