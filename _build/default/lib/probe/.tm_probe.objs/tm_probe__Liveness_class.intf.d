lib/probe/liveness_class.mli: Format Tm_impl Tm_intf
