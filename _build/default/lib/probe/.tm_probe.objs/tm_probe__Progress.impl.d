lib/probe/progress.ml: Hashtbl Item List Schedule Sim Static_txn Tid Tm_base Tm_impl Tm_intf Tm_runtime Txn_api Value
