lib/probe/workload.mli: Item Tm_base Tm_impl Tm_intf
