lib/probe/liveness_class.ml: Fmt Hashtbl Item List Memory Option Printf Schedule Scheduler Sim Static_txn Tid Tm_base Tm_impl Tm_intf Tm_runtime Tm_trace Txn_api Value
