(** Shared assembly helpers for the checkers. *)

open Tm_base
open Tm_trace

val exists_com : History.t -> (Tid.Set.t -> Spec.verdict) -> Spec.verdict
(** Try every com(alpha) candidate; [Sat] as soon as one works;
    [Out_of_budget] if any candidate ran out and none satisfied. *)

val active_window : Blocks.txn_info -> int * int
(** Gap window spanning the active execution interval of a transaction. *)

val unbounded : History.t -> int * int

val realtime_prec :
  History.t -> Tid.t list -> (Tid.t -> int option) -> (int * int) list
(** Precedence pairs induced by the real-time order [<alpha]. *)

val program_order_prec :
  History.t ->
  (Tid.t -> Blocks.txn_info) ->
  Tid.t list ->
  (Tid.t -> int option) ->
  (int * int) list
(** Same-process program-order pairs (Def. 3.2 condition 1a). *)

val view_pids : (Tid.t -> Blocks.txn_info) -> Tid.t list -> int list
(** Processes executing at least one of the given transactions. *)
