(* Serializability [Papadimitriou 79], as stated in the paper: all
   committed transactions (and some of the commit-pending ones) execute as
   in a legal sequential execution.  One shared view, whole transactions at
   single points, no window constraints.

   As is standard in the TM literature (and required for the paper's
   lattice, where serializability is stronger than processor consistency),
   the serialization respects each process's own program order; it need not
   respect real-time order across processes — that is strict
   serializability. *)

open Tm_base
open Tm_trace

let check ?(budget = Spec.default_budget) (h : History.t) : Spec.verdict =
  let tbl = Blocks.table h in
  let info_of tid = Hashtbl.find tbl tid in
  let bref = ref budget in
  Checker_util.exists_com h (fun com ->
      let tids = Tid.Set.elements com in
      let lo, hi = Checker_util.unbounded h in
      let points =
        Array.of_list
          (List.map
             (fun tid -> { Placement.block = Blocks.Whole tid; lo; hi })
             tids)
      in
      let index_of =
        let t = Hashtbl.create 16 in
        List.iteri (fun i x -> Hashtbl.replace t x i) tids;
        fun x -> Hashtbl.find_opt t x
      in
      let prec = Checker_util.program_order_prec h info_of tids index_of in
      Placement.satisfiable ~budget:bref
        {
          Placement.points;
          prec;
          focus = (fun t -> Tid.Set.mem t com);
          info_of;
          initial = (fun _ -> Value.initial);
        })

let checker : Spec.checker = { Spec.name = "serializability"; check }

(** The witness serialization, when one exists. *)
let explain ?(budget = Spec.default_budget) (h : History.t) :
    Witness.t option =
  let tbl = Blocks.table h in
  let info_of tid = Hashtbl.find tbl tid in
  let bref = ref budget in
  let found = ref None in
  Seq.iter
    (fun com ->
      if !found = None then begin
        let tids = Tid.Set.elements com in
        let lo, hi = Checker_util.unbounded h in
        let points =
          Array.of_list
            (List.map
               (fun tid -> { Placement.block = Blocks.Whole tid; lo; hi })
               tids)
        in
        let index_of =
          let t = Hashtbl.create 16 in
          List.iteri (fun i x -> Hashtbl.replace t x i) tids;
          fun x -> Hashtbl.find_opt t x
        in
        let prec = Checker_util.program_order_prec h info_of tids index_of in
        match
          Placement.first_solution ~budget:bref
            { Placement.points; prec;
              focus = (fun t -> Tid.Set.mem t com);
              info_of; initial = (fun _ -> Value.initial) }
        with
        | Some order, _ ->
            found :=
              Some
                {
                  Witness.com = tids;
                  views =
                    [ { Witness.view_pid = None;
                        order =
                          List.map (fun i -> points.(i).Placement.block) order
                      } ];
                  groups = None;
                }
        | None, _ -> ()
      end)
    (Spec.com_candidates h);
  !found
