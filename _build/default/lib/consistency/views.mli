(** Multi-view search with write-order agreement.

    Processor consistency (Def. 3.2, condition 1b) and weak adaptive
    consistency (Def. 3.3, condition 2) give each process its own
    serialization but require writes to a common data item to be ordered
    identically in every view.  Views are searched process by process:
    each solution of a view fixes a direction for every common-writer
    pair, and those directions become precedence constraints on the
    remaining views.  Solutions are deduplicated by direction signature. *)

open Tm_base

type view = {
  view_pid : int;
  problem : Placement.problem;
  w_point : Tid.t -> int option;
      (** index of the point carrying the transaction's writes *)
}

val solve_agreeing :
  ?witness:(int * int list) list ref ->
  budget:int ref ->
  view list ->
  pairs:(Tid.t * Tid.t) list ->
  Spec.verdict
(** Is there one placement per view such that all views agree on the
    direction of every pair?  On Sat, [witness] (if given) receives each
    view's chosen order of point indices, keyed by view pid. *)

val common_writer_pairs :
  (Tid.t -> Blocks.txn_info) -> Tid.t list -> (Tid.t * Tid.t) list
(** Unordered pairs of distinct transactions whose write sets intersect —
    the pairs subject to agreement. *)
