(* The serialization-point placement solver.

   A *point* carries a block and a window of admissible positions.
   Positions are inter-event gaps of the history: gap g lies between event
   g-1 and event g, so a window [lo, hi] means "anywhere inside that span";
   several points may share a gap in any chosen relative order.  This
   discretization is lossless: the definitions only constrain points
   relative to event positions (active execution intervals) and to each
   other.

   [solve] enumerates, by depth-first search with on-the-fly legality
   checking, the total orders of the points that
     - respect every window (the order must be realizable: scanning the
       sequence left to right with floor = max of lows seen so far must
       never exceed a point's high),
     - respect the given precedence pairs,
     - induce a legal sequential history for the focused transactions.

   Every complete order found is passed to [on_solution]; returning [true]
   stops the search. *)

open Tm_base

type point = { block : Blocks.block; lo : int; hi : int }

type problem = {
  points : point array;
  prec : (int * int) list;  (** (a, b): point a before point b *)
  focus : Tid.t -> bool;
  info_of : Tid.t -> Blocks.txn_info;
  initial : Item.t -> Value.t;
}

type outcome = Exhausted | Stopped | Budget_exceeded

(** [solve ~budget problem ~on_solution] — [budget] is a shared node
    counter decremented at every search node. *)
let solve ~(budget : int ref) (p : problem) ~(on_solution : int list -> bool)
    : outcome =
  let n = Array.length p.points in
  let preds = Array.make n [] in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg "Placement.solve: precedence index out of range";
      preds.(b) <- a :: preds.(b))
    p.prec;
  let placed = Array.make n false in
  let order_rev = ref [] in
  let exception Stop in
  let exception Out_of_budget in
  let rec dfs placed_count floor state =
    if !budget <= 0 then raise Out_of_budget;
    decr budget;
    if placed_count = n then begin
      if on_solution (List.rev !order_rev) then raise Stop
    end
    else begin
      (* dead-end pruning: some unplaced point can no longer fit *)
      let dead = ref false in
      for i = 0 to n - 1 do
        if (not placed.(i)) && p.points.(i).hi < floor then dead := true
      done;
      if not !dead then
        for i = 0 to n - 1 do
          if
            (not placed.(i))
            && List.for_all (fun a -> placed.(a)) preds.(i)
            && p.points.(i).hi >= floor
          then begin
            let pt = p.points.(i) in
            match
              Blocks.eval ~initial:p.initial ~focus:p.focus p.info_of state
                pt.block
            with
            | None -> () (* illegal read at this position: prune *)
            | Some state' ->
                placed.(i) <- true;
                order_rev := i :: !order_rev;
                dfs (placed_count + 1) (max floor pt.lo) state';
                order_rev := List.tl !order_rev;
                placed.(i) <- false
          end
        done
    end
  in
  match dfs 0 0 Item.Map.empty with
  | () -> Exhausted
  | exception Stop -> Stopped
  | exception Out_of_budget -> Budget_exceeded

(** First solution, if any. *)
let first_solution ~budget (p : problem) : int list option * outcome =
  let found = ref None in
  let outcome =
    solve ~budget p ~on_solution:(fun order ->
        found := Some order;
        true)
  in
  (!found, outcome)

let satisfiable ~budget (p : problem) : Spec.verdict =
  match first_solution ~budget p with
  | Some _, _ -> Spec.Sat
  | None, Exhausted -> Spec.Unsat
  | None, (Budget_exceeded | Stopped) -> Spec.Out_of_budget
