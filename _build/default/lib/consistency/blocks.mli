(** Per-transaction data extracted from a history, and the block semantics
    shared by every checker.

    A serialization point stands for a block of operations inserted into
    the induced sequential history H_sigma:
    - [Greads tid] — T_gr, the transaction's global reads (Defs 3.1/3.3);
    - [Wblock tid] — T_w, its writes;
    - [Fused tid] — T_gr immediately followed by T_w (PC groups in
      Def. 3.3, where no point may separate them);
    - [Whole tid] — H|T as one atomic block (Def. 3.2, serializability);
    - [Whole_ghost tid] — H|T with reads checked but writes never
      installed (aborted/live transactions in the opacity checker). *)

open Tm_base
open Tm_trace

type op = Rd of Item.t * Value.t * bool (** global? *) | Wr of Item.t * Value.t

type txn_info = {
  tid : Tid.t;
  pid : int;
  status : History.status;
  greads : (Item.t * Value.t) list;
  writes : (Item.t * Value.t) list;
  write_set : Item.Set.t;
  ops : op list;  (** full successful-operation replay, in order *)
  first_pos : int;
  last_pos : int;
}

val info : History.t -> Tid.t -> txn_info
val table : History.t -> (Tid.t, txn_info) Hashtbl.t

type block =
  | Greads of Tid.t
  | Wblock of Tid.t
  | Fused of Tid.t
  | Whole of Tid.t
  | Whole_ghost of Tid.t

val block_tid : block -> Tid.t
val pp_block : Format.formatter -> block -> unit

(** {1 Evaluation over a persistent committed-state map} *)

type state = Value.t Item.Map.t

val lookup : initial:(Item.t -> Value.t) -> state -> Item.t -> Value.t
val apply_writes : state -> (Item.t * Value.t) list -> state

val check_greads :
  initial:(Item.t -> Value.t) -> state -> (Item.t * Value.t) list -> bool

val replay_whole :
  initial:(Item.t -> Value.t) ->
  check:bool ->
  state ->
  op list ->
  (Item.t * Value.t) list option
(** Replay H|T against a state: global reads check the committed state,
    local reads the transaction's own overlay.  Returns the overlay (one
    binding per item) on success, [None] on an illegal checked read. *)

val eval :
  initial:(Item.t -> Value.t) ->
  focus:(Tid.t -> bool) ->
  (Tid.t -> txn_info) ->
  state ->
  block ->
  state option
(** [None] if a focused read is illegal, otherwise the state after the
    block. *)
