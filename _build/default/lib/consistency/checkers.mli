(** Registry of all consistency checkers, ordered roughly strongest to
    weakest along the paper's lattice. *)

open Tm_trace

val all : Spec.checker list
val find : string -> Spec.checker option
val find_exn : string -> Spec.checker

val matrix : ?budget:int -> History.t -> (string * Spec.verdict) list
(** Evaluate every checker on a history. *)

val satisfied : ?budget:int -> History.t -> string list
(** Names of the checkers a history satisfies. *)

val explainers :
  (string * (?budget:int -> History.t -> Witness.t option)) list

val explain : string -> ?budget:int -> History.t -> Witness.t option
