(* Common vocabulary for the consistency checkers.

   Every condition in the paper has the same shape: "there exists a set
   com(alpha) of all committed and some commit-pending transactions, and
   serialization points ... such that the induced sequential history is
   legal".  Checkers therefore share: the verdict type, enumeration of
   com(alpha) candidates, and small combinatorial enumerators (subsets,
   compositions) implemented lazily. *)

open Tm_base
open Tm_trace

type verdict =
  | Sat  (** the existential holds — the history satisfies the condition *)
  | Unsat  (** the search space was exhausted — it does not *)
  | Out_of_budget  (** the node budget ran out before a decision *)

let verdict_to_string = function
  | Sat -> "sat"
  | Unsat -> "unsat"
  | Out_of_budget -> "out-of-budget"

let pp_verdict ppf v = Fmt.string ppf (verdict_to_string v)

(** Is the verdict a definite yes? *)
let sat = function Sat -> true | Unsat | Out_of_budget -> false

(** A checker decides a history, within a search-node budget. *)
type checker = { name : string; check : ?budget:int -> History.t -> verdict }

let default_budget = 2_000_000

(* ------------------------------------------------------------------ *)
(* com(alpha) candidates: all committed transactions plus each subset of
   the commit-pending ones.  The all-pending-included candidate is tried
   first: it is the most permissive for read legality of the pending
   transactions themselves and tends to succeed sooner. *)

let com_candidates (h : History.t) : Tid.Set.t Seq.t =
  let committed =
    List.filter (fun t -> History.committed h t) (History.txns h)
  in
  let pending =
    List.filter (fun t -> History.commit_pending h t) (History.txns h)
  in
  let base = Tid.Set.of_list committed in
  let n = List.length pending in
  let pending = Array.of_list pending in
  (* enumerate bitmasks from all-ones down to zero *)
  let rec masks m () =
    if m < 0 then Seq.Nil
    else
      let set =
        let rec add i acc =
          if i >= n then acc
          else if m land (1 lsl i) <> 0 then
            add (i + 1) (Tid.Set.add pending.(i) acc)
          else add (i + 1) acc
        in
        add 0 base
      in
      Seq.Cons (set, masks (m - 1))
  in
  masks ((1 lsl n) - 1)

(* ------------------------------------------------------------------ *)
(* Lazy combinatorial enumerators *)

(** All ways to cut a list into consecutive non-empty blocks. *)
let rec compositions (l : 'a list) : 'a list list Seq.t =
  match l with
  | [] -> Seq.return []
  | [ x ] -> Seq.return [ [ x ] ]
  | x :: rest ->
      Seq.concat_map
        (fun comp ->
          match comp with
          | first :: others ->
              Seq.cons ((x :: first) :: others)
                (Seq.return ([ x ] :: first :: others))
          | [] -> Seq.empty)
        (compositions rest)

(** All boolean vectors of length [n] (true = snapshot-isolation group). *)
let bool_vectors (n : int) : bool array Seq.t =
  let rec go m () =
    if m >= 1 lsl n then Seq.Nil
    else
      Seq.Cons (Array.init n (fun i -> m land (1 lsl i) <> 0), go (m + 1))
  in
  go 0
