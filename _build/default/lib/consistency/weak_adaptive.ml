(* Weak adaptive consistency, Definition 3.3 — the paper's new condition,
   and the weakest one in its lattice (weaker than snapshot isolation,
   processor consistency, and even their union).

   The checker follows the definition's quantifier structure literally:

     exists a consistency partition P(alpha)          (compositions of the
                                                       begin order)
     exists a partition of groups into SI / PC sets   (boolean vectors)
     exists com(alpha)                                (committed + subset of
                                                       commit-pending)
     for each process p_i exist serialization points  (placement search)
       - SI group members: *T,gr and *T,w inside T's active interval (3)
       - PC group members: *T,gr immediately followed by *T,w, both inside
         the group's active interval (4) — modelled as one fused point
       - *T,gr before *T,w (1)
       - common-item write order agreed across views (2)    (Views search)
       - transactions executed by p_i legal in H_sigma_i (5)
*)

open Tm_base
open Tm_trace

type group = { members : Tid.t list; window : int * int }

(** Consistency partitions (Def. 3.3's P(alpha)): contiguous blocks of the
    begin order, over *all* transactions of the history.  Each group's
    window is its active execution interval: from the first event of its
    first member to the last event of any member. *)
let partitions (h : History.t) (info_of : Tid.t -> Blocks.txn_info) :
    group list Seq.t =
  let order = History.begin_order h in
  Seq.map
    (List.map (fun members ->
         match members with
         | [] -> { members = []; window = (0, 0) }
         | first :: _ ->
             let lo = (info_of first).Blocks.first_pos + 1 in
             let hi =
               List.fold_left
                 (fun acc t -> max acc (info_of t).Blocks.last_pos)
                 0 members
             in
             { members; window = (lo, hi) }))
    (Spec.compositions order)

(** Build one process view for a given partition/assignment/com choice. *)
let build_view (info_of : Tid.t -> Blocks.txn_info) (com : Tid.Set.t)
    (groups : group list) (si : bool array) ~view_pid : Views.view =
  let points = ref [] and prec = ref [] and n = ref 0 in
  let w_tbl = Hashtbl.create 16 in
  let add block window =
    let lo, hi = window in
    points := { Placement.block; lo; hi } :: !points;
    incr n;
    !n - 1
  in
  List.iteri
    (fun g group ->
      List.iter
        (fun tid ->
          if Tid.Set.mem tid com then begin
            let i = info_of tid in
            if si.(g) then begin
              (* snapshot-isolation group: separate points inside the
                 transaction's own active interval *)
              let window = Checker_util.active_window i in
              let gr =
                if i.Blocks.greads <> [] then
                  Some (add (Blocks.Greads tid) window)
                else None
              in
              let w =
                if i.Blocks.writes <> [] then
                  Some (add (Blocks.Wblock tid) window)
                else None
              in
              Option.iter (fun wi -> Hashtbl.replace w_tbl tid wi) w;
              match (gr, w) with
              | Some a, Some b -> prec := (a, b) :: !prec
              | _ -> ()
            end
            else begin
              (* processor-consistency group: adjacent gr/w, i.e. one fused
                 point, inside the group's active interval *)
              if i.Blocks.greads <> [] || i.Blocks.writes <> [] then begin
                let p = add (Blocks.Fused tid) group.window in
                if i.Blocks.writes <> [] then Hashtbl.replace w_tbl tid p
              end
            end
          end)
        group.members)
    groups;
  {
    Views.view_pid;
    problem =
      {
        Placement.points = Array.of_list (List.rev !points);
        prec = !prec;
        focus =
          (fun t -> Tid.Set.mem t com && (info_of t).Blocks.pid = view_pid);
        info_of;
        initial = (fun _ -> Value.initial);
      };
    w_point = (fun t -> Hashtbl.find_opt w_tbl t);
  }

let check ?(budget = Spec.default_budget) ?(com_filter = fun _ -> true)
    (h : History.t) : Spec.verdict =
  let tbl = Blocks.table h in
  let info_of tid = Hashtbl.find tbl tid in
  let bref = ref budget in
  let hit_budget = ref false in
  let try_choice (com : Tid.Set.t) (groups : group list) (si : bool array) :
      bool =
    let tids = Tid.Set.elements com in
    let pids = Checker_util.view_pids info_of tids in
    let views =
      List.map (fun pid -> build_view info_of com groups si ~view_pid:pid) pids
    in
    let pairs = Views.common_writer_pairs info_of tids in
    match Views.solve_agreeing ~budget:bref views ~pairs with
    | Spec.Sat -> true
    | Spec.Out_of_budget ->
        hit_budget := true;
        false
    | Spec.Unsat -> false
  in
  let found = ref false in
  let com_seq = Seq.filter com_filter (Spec.com_candidates h) in
  Seq.iter
    (fun com ->
      if not !found then
        Seq.iter
          (fun groups ->
            if not !found then
              Seq.iter
                (fun si ->
                  if (not !found) && try_choice com groups si then
                    found := true)
                (Spec.bool_vectors (List.length groups)))
          (partitions h info_of))
    com_seq;
  if !found then Spec.Sat
  else if !hit_budget then Spec.Out_of_budget
  else Spec.Unsat

let checker : Spec.checker =
  { Spec.name = "weak-adaptive"; check = (fun ?budget h -> check ?budget h) }

(** The full witness — partition, group typing, com and per-process
    placements — when one exists. *)
let explain ?(budget = Spec.default_budget) (h : History.t) :
    Witness.t option =
  let tbl = Blocks.table h in
  let info_of tid = Hashtbl.find tbl tid in
  let bref = ref budget in
  let found = ref None in
  let try_choice com groups si =
    let tids = Tid.Set.elements com in
    let pids = Checker_util.view_pids info_of tids in
    let views =
      List.map (fun pid -> build_view info_of com groups si ~view_pid:pid) pids
    in
    let pairs = Views.common_writer_pairs info_of tids in
    let wref = ref [] in
    match Views.solve_agreeing ~witness:wref ~budget:bref views ~pairs with
    | Spec.Sat ->
        found :=
          Some
            {
              Witness.com = tids;
              views =
                List.map
                  (fun (pid, order) ->
                    let v =
                      List.find (fun v -> v.Views.view_pid = pid) views
                    in
                    {
                      Witness.view_pid = Some pid;
                      order =
                        List.map
                          (fun i ->
                            v.Views.problem.Placement.points.(i)
                              .Placement.block)
                          order;
                    })
                  !wref;
              groups =
                Some
                  (List.mapi
                     (fun g group ->
                       (group.members, if si.(g) then `Si else `Pc))
                     groups);
            };
        true
    | Spec.Unsat | Spec.Out_of_budget -> false
  in
  Seq.iter
    (fun com ->
      if !found = None then
        Seq.iter
          (fun groups ->
            if !found = None then
              Seq.iter
                (fun si ->
                  if !found = None then ignore (try_choice com groups si))
                (Spec.bool_vectors (List.length groups)))
          (partitions h info_of))
    (Spec.com_candidates h);
  !found
