(** Causal serializability [Raynal, Thia-Kime & Ahamad 97], as positioned
    by the paper: processor consistency strengthened so that every view
    also respects the causality relation — the transitive closure of
    process order and reads-from.  When several transactions wrote the
    same value to the same item the reads-from edge is ambiguous and is
    omitted (exact for all histories exercised here, which use
    distinguishable values). *)

open Tm_base
open Tm_trace

val causal_prec :
  History.t ->
  (Tid.t -> Blocks.txn_info) ->
  Tid.t list ->
  (Tid.t -> int option) ->
  (int * int) list

val check : ?budget:int -> History.t -> Spec.verdict
val checker : Spec.checker
