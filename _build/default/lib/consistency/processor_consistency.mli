(** Processor consistency, Definition 3.2: each process p_i has its own
    serialization sigma_i of whole transactions such that (1a) transactions
    of the same process keep their order in every view, (1b) writes to a
    common item are ordered identically in all views, and (2) every
    transaction executed by p_i is legal in the history induced by
    sigma_i. *)

open Tm_base
open Tm_trace

val check : ?budget:int -> History.t -> Spec.verdict
val checker : Spec.checker

val build_views :
  History.t ->
  (Tid.t -> Blocks.txn_info) ->
  Tid.Set.t ->
  extra_prec:(Tid.t list -> (Tid.t -> int option) -> (int * int) list) ->
  Views.view list * (Tid.t * Tid.t) list
(** The per-process view structure, shared with the PRAM and causal
    checkers ([extra_prec] adds per-view precedence constraints). *)

val explain_views :
  ?budget:int -> with_pairs:bool -> History.t -> Witness.t option

val explain : ?budget:int -> History.t -> Witness.t option
(** The per-process witness views, when they exist. *)
