(* Causal serializability [Raynal, Thia-Kime & Ahamad 97], as positioned by
   the paper: processor consistency strengthened so that every sequential
   view additionally respects the causality relation on transactions.

   The causality relation is the transitive closure of
     - process order: T1, T2 by the same process with T1 <alpha T2, and
     - reads-from: T2 performs a global read of (x, v) and T1 is the unique
       transaction in com(alpha) whose last write to x has value v.
   When several transactions wrote the same value to the same item the
   reads-from edge is ambiguous and we omit it (our generators and the
   paper's constructions use distinguishable values, so this is exact for
   everything exercised here). *)

open Tm_base
open Tm_trace

let causal_prec (h : History.t) (info_of : Tid.t -> Blocks.txn_info)
    (tids : Tid.t list) (index_of : Tid.t -> int option) : (int * int) list =
  let n = List.length tids in
  let arr = Array.of_list tids in
  let idx t =
    let rec find i = if Tid.equal arr.(i) t then i else find (i + 1) in
    find 0
  in
  let edge = Array.make_matrix n n false in
  (* process order *)
  List.iter
    (fun t1 ->
      List.iter
        (fun t2 ->
          if
            (not (Tid.equal t1 t2))
            && (info_of t1).Blocks.pid = (info_of t2).Blocks.pid
            && History.precedes h t1 t2
          then edge.(idx t1).(idx t2) <- true)
        tids)
    tids;
  (* reads-from *)
  let last_write_to (i : Blocks.txn_info) x =
    List.fold_left
      (fun acc (y, v) -> if Item.equal x y then Some v else acc)
      None i.Blocks.writes
  in
  List.iter
    (fun t2 ->
      List.iter
        (fun (x, v) ->
          if not (Value.equal v Value.initial) then begin
            let writers =
              List.filter
                (fun t1 ->
                  (not (Tid.equal t1 t2))
                  &&
                  match last_write_to (info_of t1) x with
                  | Some w -> Value.equal w v
                  | None -> false)
                tids
            in
            match writers with
            | [ t1 ] -> edge.(idx t1).(idx t2) <- true
            | _ -> ()
          end)
        (info_of t2).Blocks.greads)
    tids;
  (* transitive closure *)
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if edge.(i).(k) then
        for j = 0 to n - 1 do
          if edge.(k).(j) then edge.(i).(j) <- true
        done
    done
  done;
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if edge.(i).(j) then
        match (index_of arr.(i), index_of arr.(j)) with
        | Some a, Some b -> acc := (a, b) :: !acc
        | _ -> ()
    done
  done;
  !acc

let check ?(budget = Spec.default_budget) (h : History.t) : Spec.verdict =
  let tbl = Blocks.table h in
  let info_of tid = Hashtbl.find tbl tid in
  let bref = ref budget in
  Checker_util.exists_com h (fun com ->
      let views, pairs =
        Processor_consistency.build_views h info_of com
          ~extra_prec:(causal_prec h info_of)
      in
      Views.solve_agreeing ~budget:bref views ~pairs)

let checker : Spec.checker = { Spec.name = "causal-serializability"; check }
