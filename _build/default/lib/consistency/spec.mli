(** Common vocabulary for the consistency checkers.

    Every condition in the paper has the same shape: "there exists a set
    com(alpha) of all committed and some commit-pending transactions, and
    serialization points ... such that the induced sequential history is
    legal".  Checkers share the verdict type, the com(alpha) enumeration,
    and small lazy combinatorial enumerators. *)

open Tm_base
open Tm_trace

type verdict =
  | Sat  (** the existential holds — the history satisfies the condition *)
  | Unsat  (** the search space was exhausted — it does not *)
  | Out_of_budget  (** the node budget ran out before a decision *)

val verdict_to_string : verdict -> string
val pp_verdict : Format.formatter -> verdict -> unit

val sat : verdict -> bool
(** Is the verdict a definite yes? *)

type checker = { name : string; check : ?budget:int -> History.t -> verdict }
(** A named decision procedure with a search-node budget. *)

val default_budget : int

val com_candidates : History.t -> Tid.Set.t Seq.t
(** The com(alpha) candidates: all committed transactions plus each subset
    of the commit-pending ones, most inclusive first. *)

val compositions : 'a list -> 'a list list Seq.t
(** All ways to cut a list into consecutive non-empty blocks
    (2^(n-1) of them). *)

val bool_vectors : int -> bool array Seq.t
(** All boolean vectors of length [n]. *)
