lib/consistency/checker_util.ml: Blocks History List Seq Spec Tid Tm_base Tm_trace
