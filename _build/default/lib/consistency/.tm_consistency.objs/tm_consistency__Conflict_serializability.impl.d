lib/consistency/conflict_serializability.ml: Event Hashtbl History Item List Option Seq Spec Tid Tm_base Tm_trace
