lib/consistency/opacity.ml: Array Blocks Checker_util Event Hashtbl History List Placement Seq Spec Tid Tm_base Tm_trace Value
