lib/consistency/pram.ml: Blocks Checker_util Hashtbl History Processor_consistency Spec Tm_trace Views
