lib/consistency/hierarchy.ml: Checkers History List Spec Tm_trace
