lib/consistency/processor_consistency.ml: Array Blocks Checker_util Hashtbl History List Placement Seq Spec Tid Tm_base Tm_trace Value Views Witness
