lib/consistency/weak_adaptive.ml: Array Blocks Checker_util Hashtbl History List Option Placement Seq Spec Tid Tm_base Tm_trace Value Views Witness
