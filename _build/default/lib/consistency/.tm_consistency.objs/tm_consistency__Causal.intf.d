lib/consistency/causal.mli: Blocks History Spec Tid Tm_base Tm_trace
