lib/consistency/witness.mli: Blocks Format History Tid Tm_base Tm_trace
