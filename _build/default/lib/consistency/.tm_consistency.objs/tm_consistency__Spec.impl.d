lib/consistency/spec.ml: Array Fmt History List Seq Tid Tm_base Tm_trace
