lib/consistency/serializability.mli: History Spec Tm_trace Witness
