lib/consistency/snapshot_isolation.ml: Array Blocks Checker_util Hashtbl History List Option Placement Seq Spec Tid Tm_base Tm_trace Value Witness
