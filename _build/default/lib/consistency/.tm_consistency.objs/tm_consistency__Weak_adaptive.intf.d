lib/consistency/weak_adaptive.mli: Blocks History Seq Spec Tid Tm_base Tm_trace Witness
