lib/consistency/serializability.ml: Array Blocks Checker_util Hashtbl History List Placement Seq Spec Tid Tm_base Tm_trace Value Witness
