lib/consistency/checker_util.mli: Blocks History Spec Tid Tm_base Tm_trace
