lib/consistency/blocks.ml: Event Fmt Hashtbl History Item List Option Tid Tm_base Tm_trace Value
