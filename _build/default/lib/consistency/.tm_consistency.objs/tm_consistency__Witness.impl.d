lib/consistency/witness.ml: Blocks Fmt Hashtbl History Item List String Tid Tm_base Tm_trace Value
