lib/consistency/snapshot_isolation_ei.ml: Array Blocks Checker_util Hashtbl History List Placement Spec Tid Tm_base Tm_trace Value
