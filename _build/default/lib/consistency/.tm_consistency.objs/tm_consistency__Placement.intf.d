lib/consistency/placement.mli: Blocks Item Spec Tid Tm_base Value
