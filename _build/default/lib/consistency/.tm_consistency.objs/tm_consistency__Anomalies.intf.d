lib/consistency/anomalies.mli: History Tm_trace
