lib/consistency/strict_serializability.ml: Array Blocks Checker_util Hashtbl History List Placement Spec Tid Tm_base Tm_trace Value
