lib/consistency/spec.mli: Format History Seq Tid Tm_base Tm_trace
