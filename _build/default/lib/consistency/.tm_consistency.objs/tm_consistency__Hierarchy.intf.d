lib/consistency/hierarchy.mli: History Tm_trace
