lib/consistency/anomalies.ml: Build History List Tm_trace
