lib/consistency/pram.mli: History Spec Tm_trace Witness
