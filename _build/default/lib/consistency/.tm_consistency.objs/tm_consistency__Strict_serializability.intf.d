lib/consistency/strict_serializability.mli: History Spec Tm_trace
