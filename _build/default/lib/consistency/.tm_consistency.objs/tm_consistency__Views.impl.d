lib/consistency/views.ml: Blocks Hashtbl Item List Map Placement Spec Tid Tm_base
