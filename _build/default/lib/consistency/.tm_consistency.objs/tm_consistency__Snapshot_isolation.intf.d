lib/consistency/snapshot_isolation.mli: Blocks History Placement Spec Tid Tm_base Tm_trace Witness
