lib/consistency/placement.ml: Array Blocks Item List Spec Tid Tm_base Value
