lib/consistency/processor_consistency.mli: Blocks History Spec Tid Tm_base Tm_trace Views Witness
