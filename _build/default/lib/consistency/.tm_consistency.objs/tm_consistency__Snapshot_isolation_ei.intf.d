lib/consistency/snapshot_isolation_ei.mli: History Spec Tm_trace
