lib/consistency/blocks.mli: Format Hashtbl History Item Tid Tm_base Tm_trace Value
