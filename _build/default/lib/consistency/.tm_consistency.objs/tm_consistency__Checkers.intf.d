lib/consistency/checkers.mli: History Spec Tm_trace Witness
