lib/consistency/conflict_serializability.mli: Hashtbl History Item Spec Tid Tm_base Tm_trace
