lib/consistency/opacity.mli: History Seq Spec Tm_trace
