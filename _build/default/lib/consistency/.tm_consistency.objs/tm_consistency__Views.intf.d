lib/consistency/views.mli: Blocks Placement Spec Tid Tm_base
