lib/consistency/causal.ml: Array Blocks Checker_util Hashtbl History Item List Processor_consistency Spec Tid Tm_base Tm_trace Value Views
