(** Weak adaptive consistency, Definition 3.3 — the paper's new condition
    and the weakest in its lattice (weaker than snapshot isolation,
    processor consistency, and even their union).

    The checker follows the definition's quantifier structure literally:
    there exist a consistency partition of the begin order into contiguous
    groups, a typing of each group as snapshot-isolation or
    processor-consistency, a com(alpha) set, and per-process serialization
    points — SI-group members get separate T_gr/T_w points inside their own
    active intervals, PC-group members get one fused point inside the
    group's active interval — such that same-item write order is agreed
    across views and each process's transactions read legally in its own
    view. *)

open Tm_base
open Tm_trace

type group = { members : Tid.t list; window : int * int }

val partitions :
  History.t -> (Tid.t -> Blocks.txn_info) -> group list Seq.t
(** All consistency partitions P(alpha), lazily, with each group's active
    execution interval as its window. *)

(** [com_filter] restricts the com(alpha) candidates considered — used to
    mechanize the proof's delta lemmas ("T2 cannot be in com(delta2)"):
    if the check is Unsat with [com_filter = Tid.Set.mem t2], every
    satisfying choice excludes T2. *)
val check :
  ?budget:int ->
  ?com_filter:(Tid.Set.t -> bool) ->
  History.t ->
  Spec.verdict
val checker : Spec.checker

val explain : ?budget:int -> History.t -> Witness.t option
(** The full witness — partition, group typing, com(alpha) and per-process
    placements — when one exists. *)
