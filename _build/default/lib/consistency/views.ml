(* Multi-view search with write-order agreement.

   Processor consistency (Def. 3.2, condition 1b) and weak adaptive
   consistency (Def. 3.3, condition 2) allow each process its own
   serialization but require writes to a common data item to be ordered the
   same way in every view.  We search views process by process: each
   solution of a view fixes a direction for every common-writer pair, and
   those directions become precedence constraints on the remaining views.
   Solutions of a view are deduplicated by that direction signature. *)

open Tm_base

type view = {
  view_pid : int;
  problem : Placement.problem;
  w_point : Tid.t -> int option;
      (** index of the point carrying the transaction's writes *)
}

(* a signature maps each common-writer pair to its direction *)
module Pair_map = Map.Make (struct
  type t = Tid.t * Tid.t

  let compare = compare
end)

let signature (v : view) (pairs : (Tid.t * Tid.t) list) (order : int list) :
    bool Pair_map.t =
  let pos = Hashtbl.create 16 in
  List.iteri (fun i pt -> Hashtbl.replace pos pt i) order;
  List.fold_left
    (fun acc (a, b) ->
      match (v.w_point a, v.w_point b) with
      | Some pa, Some pb -> (
          match (Hashtbl.find_opt pos pa, Hashtbl.find_opt pos pb) with
          | Some ia, Some ib -> Pair_map.add (a, b) (ia < ib) acc
          | _ -> acc)
      | _ -> acc)
    Pair_map.empty pairs

let constraints_of_signature (v : view) (sg : bool Pair_map.t) :
    (int * int) list =
  Pair_map.fold
    (fun (a, b) a_first acc ->
      match (v.w_point a, v.w_point b) with
      | Some pa, Some pb ->
          (if a_first then (pa, pb) else (pb, pa)) :: acc
      | _ -> acc)
    sg []

(** Is there a choice of one placement per view such that all views agree
    on the direction of every pair in [pairs]?  When satisfiable and
    [witness] is given, it receives each view's chosen order (point
    indices) keyed by view pid. *)
let solve_agreeing ?(witness : (int * int list) list ref option)
    ~(budget : int ref) (views : view list)
    ~(pairs : (Tid.t * Tid.t) list) : Spec.verdict =
  let rec go views (committed_sig : bool Pair_map.t) acc : Spec.verdict =
    match views with
    | [] ->
        (match witness with
        | Some r -> r := List.rev acc
        | None -> ());
        Spec.Sat
    | v :: rest -> (
        let extra = constraints_of_signature v committed_sig in
        let problem =
          { v.problem with Placement.prec = v.problem.Placement.prec @ extra }
        in
        let seen = Hashtbl.create 16 in
        let result = ref Spec.Unsat in
        let outcome =
          Placement.solve ~budget problem ~on_solution:(fun order ->
              let sg = signature v pairs order in
              let key = Pair_map.bindings sg in
              if Hashtbl.mem seen key then false
              else begin
                Hashtbl.replace seen key ();
                (* merge: committed directions stay; new pairs added *)
                let merged =
                  Pair_map.union (fun _ dir _ -> Some dir) committed_sig sg
                in
                match go rest merged ((v.view_pid, order) :: acc) with
                | Spec.Sat ->
                    result := Spec.Sat;
                    true
                | Spec.Out_of_budget ->
                    if !result = Spec.Unsat then result := Spec.Out_of_budget;
                    false
                | Spec.Unsat -> false
              end)
        in
        match outcome with
        | Placement.Stopped | Placement.Exhausted -> !result
        | Placement.Budget_exceeded ->
            if !result = Spec.Unsat then Spec.Out_of_budget else !result)
  in
  go views Pair_map.empty []

(** Unordered pairs of distinct transactions in [tids] whose write sets
    intersect — the pairs subject to agreement. *)
let common_writer_pairs (info_of : Tid.t -> Blocks.txn_info)
    (tids : Tid.t list) : (Tid.t * Tid.t) list =
  let rec go = function
    | [] -> []
    | a :: rest ->
        List.filter_map
          (fun b ->
            let ia = info_of a and ib = info_of b in
            if
              not
                (Item.Set.is_empty
                   (Item.Set.inter ia.Blocks.write_set ib.Blocks.write_set))
            then Some (a, b)
            else None)
          rest
        @ go rest
  in
  go tids
