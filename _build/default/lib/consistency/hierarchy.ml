(* The implication lattice between consistency conditions, as asserted in
   the paper (Sections 1 and 3) and as holding for these checkers:

     opacity => strict serializability => serializability
     serializability => causal serializability => processor consistency
     processor consistency => pram
     processor consistency => weak adaptive
     strict serializability => snapshot isolation => weak adaptive

   The test suite verifies every edge on the anomaly catalogue and on
   randomly generated histories ("if the stronger checker accepts, the
   weaker one must"). *)

open Tm_trace

(** (stronger, weaker) pairs by checker name. *)
let edges : (string * string) list =
  [
    ("opacity(final-state)", "strict-serializability");
    ("strict-serializability", "serializability");
    ("serializability", "causal-serializability");
    ("causal-serializability", "processor-consistency");
    ("processor-consistency", "pram");
    ("processor-consistency", "weak-adaptive");
    ("strict-serializability", "snapshot-isolation");
    ("snapshot-isolation", "weak-adaptive");
    ("snapshot-isolation", "snapshot-isolation(ei)");
  ]

type violation = {
  stronger : string;
  weaker : string;
  history : History.t;
}

(** Check every edge on one history: whenever the stronger condition is
    satisfied, the weaker one must be too (budget exhaustion on either side
    is not a violation). *)
let check_history ?budget (h : History.t) : violation list =
  let verdicts = Checkers.matrix ?budget h in
  List.filter_map
    (fun (stronger, weaker) ->
      match (List.assoc stronger verdicts, List.assoc weaker verdicts) with
      | Spec.Sat, Spec.Unsat -> Some { stronger; weaker; history = h }
      | _ -> None)
    edges

(** The weakest-to-strongest chain a history climbs: names of satisfied
    checkers, in registry (strongest-first) order. *)
let profile ?budget (h : History.t) : string list =
  Checkers.satisfied ?budget h
