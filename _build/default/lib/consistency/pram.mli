(** PRAM consistency [Lipton & Sandberg 88], lifted to transactions as in
    the paper's comparison: processor consistency without the same-item
    write-order agreement (condition 1b dropped). *)

open Tm_trace

val check : ?budget:int -> History.t -> Spec.verdict
val checker : Spec.checker

val explain : ?budget:int -> History.t -> Witness.t option
