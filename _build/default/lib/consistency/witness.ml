(* Witnesses: when a checker answers Sat, the serialization it found —
   com(alpha), the per-view block orders, and (for weak adaptive
   consistency) the partition and group typing.  Witnesses are replayable:
   [valid] re-evaluates the blocks and confirms legality, which the test
   suite uses to keep checkers honest. *)

open Tm_base
open Tm_trace

type view = { view_pid : int option; order : Blocks.block list }

type t = {
  com : Tid.t list;
  views : view list;
  groups : (Tid.t list * [ `Si | `Pc ]) list option;
      (** weak adaptive consistency only: the partition with each group's
          typing *)
}

let pp_view ppf (v : view) =
  (match v.view_pid with
  | Some pid -> Fmt.pf ppf "  sigma_p%d: " pid
  | None -> Fmt.pf ppf "  sigma: ");
  Fmt.(list ~sep:(any " < ") Blocks.pp_block) ppf v.order

let pp ppf (w : t) =
  Fmt.pf ppf "com = {%s}"
    (String.concat ", " (List.map Tid.name w.com));
  (match w.groups with
  | None -> ()
  | Some groups ->
      Fmt.pf ppf "@\npartition:";
      List.iter
        (fun (members, typ) ->
          Fmt.pf ppf " [%s:%s]"
            (String.concat "," (List.map Tid.name members))
            (match typ with `Si -> "SI" | `Pc -> "PC"))
        groups);
  List.iter (fun v -> Fmt.pf ppf "@\n%a" pp_view v) w.views

(** Re-evaluate a view's blocks in order against the history: all reads of
    the focused transactions must be legal. *)
let view_legal (h : History.t) ~(focus : Tid.t -> bool) (v : view) : bool =
  let tbl = Blocks.table h in
  let info_of tid = Hashtbl.find tbl tid in
  let initial (_ : Item.t) = Value.initial in
  let rec go state = function
    | [] -> true
    | b :: rest -> (
        match Blocks.eval ~initial ~focus info_of state b with
        | Some state' -> go state' rest
        | None -> false)
  in
  go Item.Map.empty v.order

(** Validity of a whole witness: every view must make its focused
    transactions legal.  Single-view witnesses focus every transaction in
    com; per-process views focus that process's transactions. *)
let valid (h : History.t) (w : t) : bool =
  let com = Tid.Set.of_list w.com in
  List.for_all
    (fun (v : view) ->
      let focus tid =
        Tid.Set.mem tid com
        &&
        match v.view_pid with
        | None -> true
        | Some pid -> History.pid_of_txn h tid = Some pid
      in
      view_legal h ~focus v)
    w.views
