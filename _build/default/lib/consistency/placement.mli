(** The serialization-point placement solver.

    A {e point} carries a {!Blocks.block} and a window of admissible
    positions.  Positions are inter-event gaps of the history: gap [g]
    lies between event [g-1] and event [g]; several points may share a gap
    in any relative order.  The discretization is lossless because the
    paper's definitions only constrain points relative to event positions
    (active execution intervals) and to each other.

    {!solve} enumerates, by depth-first search with on-the-fly legality
    checking, the total orders of the points that respect every window
    (left-to-right, the running maximum of the lows must never exceed a
    point's high), respect the precedence pairs, and induce a legal
    sequential history for the focused transactions. *)

open Tm_base

type point = { block : Blocks.block; lo : int; hi : int }

type problem = {
  points : point array;
  prec : (int * int) list;  (** (a, b): point a before point b *)
  focus : Tid.t -> bool;  (** whose reads must be legal *)
  info_of : Tid.t -> Blocks.txn_info;
  initial : Item.t -> Value.t;
}

type outcome = Exhausted | Stopped | Budget_exceeded

val solve :
  budget:int ref -> problem -> on_solution:(int list -> bool) -> outcome
(** Every complete order found (as a list of point indices) is passed to
    [on_solution]; returning [true] stops the search.  [budget] is a
    shared node counter decremented at every search node. *)

val first_solution : budget:int ref -> problem -> int list option * outcome
val satisfiable : budget:int ref -> problem -> Spec.verdict
