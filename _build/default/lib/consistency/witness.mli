(** Witnesses: when a checker answers Sat, the serialization it found —
    com(alpha), the per-view block orders, and (for weak adaptive
    consistency) the partition with group typing.  Witnesses are
    replayable: {!valid} re-evaluates the blocks and confirms legality,
    which the test suite uses to keep the checkers honest. *)

open Tm_base
open Tm_trace

type view = { view_pid : int option; order : Blocks.block list }

type t = {
  com : Tid.t list;
  views : view list;
  groups : (Tid.t list * [ `Si | `Pc ]) list option;
      (** weak adaptive consistency only *)
}

val pp_view : Format.formatter -> view -> unit
val pp : Format.formatter -> t -> unit

val view_legal : History.t -> focus:(Tid.t -> bool) -> view -> bool
val valid : History.t -> t -> bool
