(** Opacity [Guerraoui & Kapalka 08], in its final-state formulation plus
    an optional all-prefixes mode: one shared real-time-respecting view
    containing every transaction — com(alpha) members installing their
    writes, everything else (aborted, live, unchosen commit-pending) as
    ghost blocks whose reads are checked but whose writes never install.

    The paper notes (Section 5) that opacity and strict serializability
    are defined over execution intervals while its snapshot isolation uses
    active execution intervals, making the families incomparable; this
    checker exists to position implementations on the lattice. *)

open Tm_trace

val check : ?budget:int -> ?all_prefixes:bool -> History.t -> Spec.verdict
val check_final : ?budget:int -> History.t -> Spec.verdict
val prefixes : History.t -> History.t Seq.t
val checker : Spec.checker
