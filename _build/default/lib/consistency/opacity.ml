(* Opacity [Guerraoui & Kapalka 08], in its final-state formulation plus an
   optional all-prefixes mode.

   Final-state check: one shared view containing *every* transaction of the
   history — com(alpha) members as installing blocks, everything else
   (aborted, live, unchosen commit-pending) as ghost blocks whose reads are
   checked but whose writes are never installed — ordered consistently with
   real time.  With [prefixes:true] the same check runs on every event
   prefix, which is the textbook definition.

   Note (paper, Section 5): opacity and strict serializability are defined
   in terms of execution intervals, whereas the paper's snapshot isolation
   uses active execution intervals — the two families are incomparable, and
   this checker exists mainly to position implementations on the
   consistency lattice. *)

open Tm_base
open Tm_trace

let check_final ?(budget = Spec.default_budget) (h : History.t) :
    Spec.verdict =
  let tbl = Blocks.table h in
  let info_of tid = Hashtbl.find tbl tid in
  let bref = ref budget in
  Checker_util.exists_com h (fun com ->
      let tids = History.txns h in
      let lo, hi = Checker_util.unbounded h in
      let points =
        Array.of_list
          (List.map
             (fun tid ->
               let block =
                 if Tid.Set.mem tid com then Blocks.Whole tid
                 else Blocks.Whole_ghost tid
               in
               { Placement.block; lo; hi })
             tids)
      in
      let index_of =
        let t = Hashtbl.create 16 in
        List.iteri (fun i x -> Hashtbl.replace t x i) tids;
        fun x -> Hashtbl.find_opt t x
      in
      let prec = Checker_util.realtime_prec h tids index_of in
      Placement.satisfiable ~budget:bref
        {
          Placement.points;
          prec;
          focus = (fun _ -> true);
          info_of;
          initial = (fun _ -> Value.initial);
        })

(** Event prefixes that do not split an invocation from its response. *)
let prefixes (h : History.t) : History.t Seq.t =
  let evs = Array.of_list (History.to_list h) in
  let n = Array.length evs in
  let rec go i () =
    if i > n then Seq.Nil
    else
      let ok =
        i = n
        ||
        match evs.(i) with
        (* cutting just before a response is fine only for commit
           invocations (commit-pending); other dangling invocations are
           dropped to keep prefixes well-formed *)
        | _ -> true
      in
      let sub = Array.to_list (Array.sub evs 0 i) in
      (* drop a trailing non-commit invocation *)
      let sub =
        match List.rev sub with
        | Event.Inv { op = Event.Try_commit; _ } :: _ -> sub
        | Event.Inv _ :: rest -> List.rev rest
        | _ -> sub
      in
      if ok then Seq.Cons (History.of_list sub, go (i + 1))
      else go (i + 1) ()
  in
  go 0

let check ?(budget = Spec.default_budget) ?(all_prefixes = false)
    (h : History.t) : Spec.verdict =
  if not all_prefixes then check_final ~budget h
  else
    let hit = ref false in
    let bad = ref false in
    Seq.iter
      (fun p ->
        if not !bad then
          match check_final ~budget p with
          | Spec.Sat -> ()
          | Spec.Unsat -> bad := true
          | Spec.Out_of_budget -> hit := true)
      (prefixes h);
    if !bad then Spec.Unsat
    else if !hit then Spec.Out_of_budget
    else Spec.Sat

let checker : Spec.checker =
  { Spec.name = "opacity(final-state)"; check = (fun ?budget h -> check ?budget h) }
