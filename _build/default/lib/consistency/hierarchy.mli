(** The implication lattice between consistency conditions, as asserted by
    the paper and as holding for these checkers:

    opacity => strict serializability => serializability => causal
    serializability => processor consistency => pram; processor
    consistency => weak adaptive; strict serializability => snapshot
    isolation => weak adaptive. *)

open Tm_trace

val edges : (string * string) list
(** (stronger, weaker) pairs by checker name. *)

type violation = { stronger : string; weaker : string; history : History.t }

val check_history : ?budget:int -> History.t -> violation list
(** Violated edges on one history: the stronger checker accepted but the
    weaker one refuted (budget exhaustion on either side never counts). *)

val profile : ?budget:int -> History.t -> string list
