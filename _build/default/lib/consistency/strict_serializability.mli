(** Strict serializability [Papadimitriou 79]: serializability whose order
    additionally respects the real-time precedence T1 <alpha T2 between
    non-overlapping transactions. *)

open Tm_trace

val check : ?budget:int -> History.t -> Spec.verdict
val checker : Spec.checker
