(* Processor consistency, Definition 3.2: each process p_i has its own
   serialization sigma_i of whole transactions such that (1a) transactions
   of the same process keep their real-time order in every view, (1b)
   writes to a common item are ordered identically in all views, and (2)
   every transaction executed by p_i is legal in the history induced by
   sigma_i. *)

open Tm_base
open Tm_trace

(** Build the per-process views for PC-style checkers.  [pairs_on] turns
    write-order agreement on/off (PRAM = off). *)
let build_views (h : History.t) (info_of : Tid.t -> Blocks.txn_info)
    (com : Tid.Set.t) ~(extra_prec : Tid.t list -> (Tid.t -> int option) -> (int * int) list) :
    Views.view list * (Tid.t * Tid.t) list =
  let tids = Tid.Set.elements com in
  let lo, hi = Checker_util.unbounded h in
  let index_of =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun i t -> Hashtbl.replace tbl t i) tids;
    fun t -> Hashtbl.find_opt tbl t
  in
  let points =
    Array.of_list
      (List.map (fun tid -> { Placement.block = Blocks.Whole tid; lo; hi }) tids)
  in
  let base_prec =
    Checker_util.program_order_prec h info_of tids index_of
    @ extra_prec tids index_of
  in
  let pids = Checker_util.view_pids info_of tids in
  let views =
    List.map
      (fun pid ->
        {
          Views.view_pid = pid;
          problem =
            {
              Placement.points;
              prec = base_prec;
              focus =
                (fun t ->
                  Tid.Set.mem t com && (info_of t).Blocks.pid = pid);
              info_of;
              initial = (fun _ -> Value.initial);
            };
          w_point =
            (fun t ->
              if (info_of t).Blocks.writes <> [] then index_of t else None);
        })
      pids
  in
  let pairs = Views.common_writer_pairs info_of tids in
  (views, pairs)

let check ?(budget = Spec.default_budget) (h : History.t) : Spec.verdict =
  let tbl = Blocks.table h in
  let info_of tid = Hashtbl.find tbl tid in
  let bref = ref budget in
  Checker_util.exists_com h (fun com ->
      let views, pairs =
        build_views h info_of com ~extra_prec:(fun _ _ -> [])
      in
      Views.solve_agreeing ~budget:bref views ~pairs)

let checker : Spec.checker = { Spec.name = "processor-consistency"; check }

(** The per-process witness views, when they exist ([pairs] off gives the
    PRAM witness). *)
let explain_views ?(budget = Spec.default_budget) ~(with_pairs : bool)
    (h : History.t) : Witness.t option =
  let tbl = Blocks.table h in
  let info_of tid = Hashtbl.find tbl tid in
  let bref = ref budget in
  let found = ref None in
  Seq.iter
    (fun com ->
      if !found = None then begin
        let views, pairs =
          build_views h info_of com ~extra_prec:(fun _ _ -> [])
        in
        let wref = ref [] in
        match
          Views.solve_agreeing ~witness:wref ~budget:bref views
            ~pairs:(if with_pairs then pairs else [])
        with
        | Spec.Sat ->
            found :=
              Some
                {
                  Witness.com = Tid.Set.elements com;
                  views =
                    List.map
                      (fun (pid, order) ->
                        let v =
                          List.find (fun v -> v.Views.view_pid = pid) views
                        in
                        {
                          Witness.view_pid = Some pid;
                          order =
                            List.map
                              (fun i ->
                                v.Views.problem.Placement.points.(i)
                                  .Placement.block)
                              order;
                        })
                      !wref;
                  groups = None;
                }
        | Spec.Unsat | Spec.Out_of_budget -> ()
      end)
    (Spec.com_candidates h);
  !found

let explain ?budget h = explain_views ?budget ~with_pairs:true h
