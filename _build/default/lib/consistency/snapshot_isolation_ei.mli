(** Snapshot isolation over *execution intervals* — the paper's Section-5
    remark (and the companion report [11]) made executable: the window of
    a live or commit-pending transaction's serialization points extends to
    the end of the history instead of stopping at its last step.  Weaker
    than Definition 3.1 (every active-interval placement is an
    execution-interval placement). *)

open Tm_trace

val check : ?budget:int -> History.t -> Spec.verdict
val checker : Spec.checker
