(* Strict serializability [Papadimitriou 79]: serializability where the
   serialization order additionally respects the real-time precedence
   T1 <alpha T2 between non-overlapping transactions. *)

open Tm_base
open Tm_trace

let check ?(budget = Spec.default_budget) (h : History.t) : Spec.verdict =
  let tbl = Blocks.table h in
  let info_of tid = Hashtbl.find tbl tid in
  let bref = ref budget in
  Checker_util.exists_com h (fun com ->
      let tids = Tid.Set.elements com in
      let lo, hi = Checker_util.unbounded h in
      let points =
        Array.of_list
          (List.map
             (fun tid -> { Placement.block = Blocks.Whole tid; lo; hi })
             tids)
      in
      let index_of =
        let tbl = Hashtbl.create 16 in
        List.iteri (fun i t -> Hashtbl.replace tbl t i) tids;
        fun t -> Hashtbl.find_opt tbl t
      in
      let prec = Checker_util.realtime_prec h tids index_of in
      Placement.satisfiable ~budget:bref
        {
          Placement.points;
          prec;
          focus = (fun t -> Tid.Set.mem t com);
          info_of;
          initial = (fun _ -> Value.initial);
        })

let checker : Spec.checker = { Spec.name = "strict-serializability"; check }
