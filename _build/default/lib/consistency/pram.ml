(* PRAM consistency [Lipton & Sandberg 88], lifted to transactions as in
   the paper's comparison: processor consistency without the requirement
   that writes to the same data item appear in the same order in all
   sequential views (condition 1b dropped). *)

open Tm_trace

let check ?(budget = Spec.default_budget) (h : History.t) : Spec.verdict =
  let tbl = Blocks.table h in
  let info_of tid = Hashtbl.find tbl tid in
  let bref = ref budget in
  Checker_util.exists_com h (fun com ->
      let views, _pairs =
        Processor_consistency.build_views h info_of com
          ~extra_prec:(fun _ _ -> [])
      in
      (* no agreement pairs: each view independent *)
      Views.solve_agreeing ~budget:bref views ~pairs:[])

let checker : Spec.checker = { Spec.name = "pram"; check }

(** The per-process witness views (no write-order agreement). *)
let explain ?budget h =
  Processor_consistency.explain_views ?budget ~with_pairs:false h
