(* Snapshot isolation, Definition 3.1 — the paper's deliberately *weak*
   variant: one shared view; for each T in com(alpha) a global-read point
   and a write point, both inside T's active execution interval, with the
   read point first; the induced history (T_gr and T_w blocks) is legal.

   Deliberately absent, as in the paper: the "first committer wins" rule,
   and any constraint on reads after writes to the same item (local reads).
*)

open Tm_base
open Tm_trace

type plan = {
  points : Placement.point array;
  prec : (int * int) list;
  w_point : Tid.t -> int option;
}

(** Build the SI points for [tids]: a [Greads] point and a [Wblock] point
    per transaction (omitting empty blocks), windows equal to the active
    execution interval, read point before write point.  Shared with the
    weak-adaptive-consistency checker for its SI groups. *)
let si_points (info_of : Tid.t -> Blocks.txn_info) (tids : Tid.t list) : plan
    =
  let points = ref [] and prec = ref [] and n = ref 0 in
  let w_tbl = Hashtbl.create 16 in
  let add block window =
    let lo, hi = window in
    points := { Placement.block; lo; hi } :: !points;
    incr n;
    !n - 1
  in
  List.iter
    (fun tid ->
      let i = info_of tid in
      let window = Checker_util.active_window i in
      let gr =
        if i.Blocks.greads <> [] then Some (add (Blocks.Greads tid) window)
        else None
      in
      let w =
        if i.Blocks.writes <> [] then Some (add (Blocks.Wblock tid) window)
        else None
      in
      Option.iter (fun wi -> Hashtbl.replace w_tbl tid wi) w;
      match (gr, w) with
      | Some g, Some wi -> prec := (g, wi) :: !prec
      | _ -> ())
    tids;
  {
    points = Array.of_list (List.rev !points);
    prec = !prec;
    w_point = (fun t -> Hashtbl.find_opt w_tbl t);
  }

let check ?(budget = Spec.default_budget) (h : History.t) : Spec.verdict =
  let tbl = Blocks.table h in
  let info_of tid = Hashtbl.find tbl tid in
  let bref = ref budget in
  Checker_util.exists_com h (fun com ->
      let tids = Tid.Set.elements com in
      let plan = si_points info_of tids in
      Placement.satisfiable ~budget:bref
        {
          Placement.points = plan.points;
          prec = plan.prec;
          focus = (fun t -> Tid.Set.mem t com);
          info_of;
          initial = (fun _ -> Value.initial);
        })

let checker : Spec.checker = { Spec.name = "snapshot-isolation"; check }

(** The witness placement (read and write points), when one exists. *)
let explain ?(budget = Spec.default_budget) (h : History.t) :
    Witness.t option =
  let tbl = Blocks.table h in
  let info_of tid = Hashtbl.find tbl tid in
  let bref = ref budget in
  let found = ref None in
  Seq.iter
    (fun com ->
      if !found = None then begin
        let tids = Tid.Set.elements com in
        let plan = si_points info_of tids in
        match
          Placement.first_solution ~budget:bref
            { Placement.points = plan.points; prec = plan.prec;
              focus = (fun t -> Tid.Set.mem t com);
              info_of; initial = (fun _ -> Value.initial) }
        with
        | Some order, _ ->
            found :=
              Some
                {
                  Witness.com = tids;
                  views =
                    [ { Witness.view_pid = None;
                        order =
                          List.map
                            (fun i -> plan.points.(i).Placement.block)
                            order } ];
                  groups = None;
                }
        | None, _ -> ()
      end)
    (Spec.com_candidates h);
  !found
