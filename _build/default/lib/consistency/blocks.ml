(* Per-transaction data extracted from a history, and the "block" semantics
   shared by every checker.

   A serialization point stands for a block of operations inserted into the
   induced sequential history H_sigma:

   - [Greads tid]      — T_gr : the transaction's global reads (Def. 3.1/3.3)
   - [Wblock tid]      — T_w  : the transaction's writes
   - [Fused tid]       — T_gr immediately followed by T_w (PC groups in
                         Def. 3.3, where no point may separate them)
   - [Whole tid]       — H|T as one atomic block (Defs 3.2, serializability)
   - [Whole_ghost tid] — H|T with reads checked but writes never installed
                         (aborted/live transactions in the opacity checker)
*)

open Tm_base
open Tm_trace

type op = Rd of Item.t * Value.t * bool (* global? *) | Wr of Item.t * Value.t

type txn_info = {
  tid : Tid.t;
  pid : int;
  status : History.status;
  greads : (Item.t * Value.t) list;
  writes : (Item.t * Value.t) list;
  write_set : Item.Set.t;
  ops : op list;  (** full successful-operation replay, in order *)
  first_pos : int;
  last_pos : int;
}

let info (h : History.t) (tid : Tid.t) : txn_info =
  let pid = Option.value ~default:(-1) (History.pid_of_txn h tid) in
  let reads = History.reads h tid in
  let writes = History.writes h tid in
  (* interleave reads and writes by per-txn event position to build ops *)
  let write_ops =
    (* position of each successful write: recompute by scanning *)
    let rec scan i evs acc =
      match evs with
      | [] -> List.rev acc
      | Event.Resp { op = Event.Write (x, v); resp = Event.R_ok; _ } :: rest
        ->
          scan (i + 1) rest ((i, Wr (x, v)) :: acc)
      | _ :: rest -> scan (i + 1) rest acc
    in
    (* positions here are per-txn indices; only relative order matters and
       per-txn event order equals history order *)
    scan 0 (History.per_txn h tid) []
  in
  let read_ops =
    let rec scan i evs acc =
      match evs with
      | [] -> List.rev acc
      | Event.Resp { op = Event.Read _; resp = Event.R_value _; _ } :: rest
        ->
          scan (i + 1) rest (i :: acc)
      | _ :: rest -> scan (i + 1) rest acc
    in
    let positions = scan 0 (History.per_txn h tid) [] in
    List.map2
      (fun pos (r : History.read) -> (pos, Rd (r.item, r.value, r.global)))
      positions reads
  in
  let ops =
    List.map snd
      (List.sort (fun (a, _) (b, _) -> compare a b) (read_ops @ write_ops))
  in
  let first_pos, last_pos =
    match History.positions_of_txn h tid with
    | Some (f, l) -> (f, l)
    | None -> (0, 0)
  in
  {
    tid;
    pid;
    status = History.status h tid;
    greads = List.map (fun (r : History.read) -> (r.item, r.value))
               (List.filter (fun (r : History.read) -> r.global) reads);
    writes;
    write_set = History.write_set h tid;
    ops;
    first_pos;
    last_pos;
  }

(** Precompute info for every transaction of a history. *)
let table (h : History.t) : (Tid.t, txn_info) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  List.iter (fun tid -> Hashtbl.replace tbl tid (info h tid)) (History.txns h);
  tbl

type block =
  | Greads of Tid.t
  | Wblock of Tid.t
  | Fused of Tid.t
  | Whole of Tid.t
  | Whole_ghost of Tid.t

let block_tid = function
  | Greads t | Wblock t | Fused t | Whole t | Whole_ghost t -> t

let pp_block ppf = function
  | Greads t -> Fmt.pf ppf "%s.gr" (Tid.name t)
  | Wblock t -> Fmt.pf ppf "%s.w" (Tid.name t)
  | Fused t -> Fmt.pf ppf "%s.grw" (Tid.name t)
  | Whole t -> Fmt.pf ppf "%s" (Tid.name t)
  | Whole_ghost t -> Fmt.pf ppf "%s.ghost" (Tid.name t)

(* ------------------------------------------------------------------ *)
(* Block evaluation over a persistent committed-state map *)

type state = Value.t Item.Map.t

let lookup ~initial (state : state) x =
  match Item.Map.find_opt x state with Some v -> v | None -> initial x

let apply_writes (state : state) writes =
  List.fold_left (fun st (x, v) -> Item.Map.add x v st) state writes

let check_greads ~initial (state : state) greads =
  List.for_all
    (fun (x, v) -> Value.equal v (lookup ~initial state x))
    greads

(** Replay H|T against [state]: global reads check the committed state,
    local reads check the transaction's own overlay.  Returns the updated
    overlay (the transaction's writes) on success. *)
let replay_whole ~initial ~check (state : state) (ops : op list) :
    (Item.t * Value.t) list option =
  (* the overlay keeps one binding per item, so application order of the
     returned list is irrelevant *)
  let rec go overlay = function
    | [] -> Some overlay
    | Rd (x, v, _global) :: rest ->
        let expected =
          match List.assoc_opt x overlay with
          | Some w -> w
          | None -> lookup ~initial state x
        in
        if (not check) || Value.equal v expected then go overlay rest
        else None
    | Wr (x, v) :: rest ->
        go ((x, v) :: List.remove_assoc x overlay) rest
  in
  go [] ops

(** [eval ~initial ~focus info_of state block] — [None] if a checked read is
    illegal, otherwise the state after the block. *)
let eval ~initial ~(focus : Tid.t -> bool) (info_of : Tid.t -> txn_info)
    (state : state) (block : block) : state option =
  match block with
  | Greads tid ->
      let i = info_of tid in
      if (not (focus tid)) || check_greads ~initial state i.greads then
        Some state
      else None
  | Wblock tid -> Some (apply_writes state (info_of tid).writes)
  | Fused tid ->
      let i = info_of tid in
      if (not (focus tid)) || check_greads ~initial state i.greads then
        Some (apply_writes state i.writes)
      else None
  | Whole tid -> (
      let i = info_of tid in
      match replay_whole ~initial ~check:(focus tid) state i.ops with
      | Some writes -> Some (apply_writes state writes)
      | None -> None)
  | Whole_ghost tid -> (
      let i = info_of tid in
      match replay_whole ~initial ~check:(focus tid) state i.ops with
      | Some _ -> Some state
      | None -> None)
