(** Serializability [Papadimitriou 79], as used by the paper: all committed
    transactions (and some commit-pending ones) execute as in a legal
    sequential execution.  As is standard in the TM literature — and as
    required for the paper's lattice, where serializability is stronger
    than processor consistency — the serialization respects each process's
    own program order; it need not respect cross-process real time (that
    is strict serializability). *)

open Tm_trace

val check : ?budget:int -> History.t -> Spec.verdict
val checker : Spec.checker

val explain : ?budget:int -> History.t -> Witness.t option
(** The witness serialization, when one exists. *)
