(* Snapshot isolation over *execution intervals* — the Section-5 remark
   made executable.

   The paper notes that its Definition 3.1 uses active execution intervals
   (a live transaction's interval ends at its last step), which makes its
   snapshot isolation incomparable with strict serializability and
   opacity, and that the companion report [11] re-proves the impossibility
   for the execution-interval variant, where the interval of an incomplete
   transaction is the whole suffix of the execution.

   Operationally the only difference is the window of a live
   (commit-pending) transaction's serialization points: here it extends to
   the end of the history, so a pending commit may serialize after
   operations that follow its last step.  This makes the condition weaker
   than Def. 3.1 (every active-interval placement is an execution-interval
   placement) and comparable with the interval-based conditions. *)

open Tm_base
open Tm_trace

let ei_window (h : History.t) (i : Blocks.txn_info) =
  if
    i.Blocks.status = History.Commit_pending
    || i.Blocks.status = History.Live
  then (i.Blocks.first_pos + 1, History.length h)
  else Checker_util.active_window i

let plan (h : History.t) (info_of : Tid.t -> Blocks.txn_info)
    (tids : Tid.t list) =
  let points = ref [] and prec = ref [] and n = ref 0 in
  let add block window =
    let lo, hi = window in
    points := { Placement.block; lo; hi } :: !points;
    incr n;
    !n - 1
  in
  List.iter
    (fun tid ->
      let i = info_of tid in
      let window = ei_window h i in
      let gr =
        if i.Blocks.greads <> [] then Some (add (Blocks.Greads tid) window)
        else None
      in
      let w =
        if i.Blocks.writes <> [] then Some (add (Blocks.Wblock tid) window)
        else None
      in
      match (gr, w) with
      | Some g, Some wi -> prec := (g, wi) :: !prec
      | _ -> ())
    tids;
  (Array.of_list (List.rev !points), !prec)

let check ?(budget = Spec.default_budget) (h : History.t) : Spec.verdict =
  let tbl = Blocks.table h in
  let info_of tid = Hashtbl.find tbl tid in
  let bref = ref budget in
  Checker_util.exists_com h (fun com ->
      let tids = Tid.Set.elements com in
      let points, prec = plan h info_of tids in
      Placement.satisfiable ~budget:bref
        {
          Placement.points;
          prec;
          focus = (fun t -> Tid.Set.mem t com);
          info_of;
          initial = (fun _ -> Value.initial);
        })

let checker : Spec.checker =
  { Spec.name = "snapshot-isolation(ei)"; check }
