(** Snapshot isolation, Definition 3.1 — the paper's deliberately *weak*
    variant: one shared view; for each transaction in com(alpha), a
    global-read point and a write point inside its active execution
    interval with the read point first; the induced history of T_gr/T_w
    blocks is legal.  Deliberately absent, as in the paper: the
    first-committer-wins rule, and any constraint on reads following a
    write to the same item. *)

open Tm_base
open Tm_trace

val check : ?budget:int -> History.t -> Spec.verdict
val checker : Spec.checker

(** {1 Shared with the weak-adaptive checker} *)

type plan = {
  points : Placement.point array;
  prec : (int * int) list;
  w_point : Tid.t -> int option;
}

val si_points : (Tid.t -> Blocks.txn_info) -> Tid.t list -> plan
(** Build the SI points for the given transactions: a [Greads] and a
    [Wblock] point per transaction (empty blocks omitted), windows equal to
    the active execution interval, read point before write point. *)

val explain : ?budget:int -> History.t -> Witness.t option
(** The witness placement (read and write points), when one exists. *)
