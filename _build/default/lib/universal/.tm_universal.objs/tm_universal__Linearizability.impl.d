lib/universal/linearizability.ml: Array List Seq_object Tm_base Value
