lib/universal/linearizability.mli: Seq_object Tm_base Value
