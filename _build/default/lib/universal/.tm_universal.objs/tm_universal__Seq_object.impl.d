lib/universal/seq_object.ml: Tm_base Value
