lib/universal/universal.mli: Memory Seq_object Tid Tm_base Value
