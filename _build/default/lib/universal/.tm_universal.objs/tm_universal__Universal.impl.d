lib/universal/universal.ml: Array List Memory Oid Printf Proc Seq_object Tm_base Tm_runtime Value
