lib/universal/seq_object.mli: Tm_base Value
