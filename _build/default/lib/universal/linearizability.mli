(** Wing & Gong style linearizability checking for runs of the universal
    constructions: find a real-time-respecting total order of the recorded
    operations that replays correctly through the sequential spec. *)

open Tm_base

type recorded_op = {
  pid : int;
  op : Value.t;
  result : Value.t;
  inv : int;  (** step count at invocation *)
  resp : int;  (** step count at response *)
}

val check : (module Seq_object.S) -> recorded_op list -> bool
