(* Sequential object specifications for the universal constructions
   (Section 2's related work: Herlihy's universal constructions [23, 24]
   and their disjoint-access-parallel refinements [1, 2, 9, 15, 37]).

   A sequential object is a pure transition function over Value.t states;
   the constructions turn it into a linearizable concurrent object built
   from base objects. *)

open Tm_base

module type S = sig
  val name : string
  val init : Value.t

  val apply : Value.t -> Value.t -> Value.t * Value.t
  (** [apply op state] is [(state', response)]. *)
end

(** A fetch&add counter: ops are [VInt delta], responses the old value. *)
module Counter : S = struct
  let name = "counter"
  let init = Value.int 0

  let apply op state =
    let d = Value.to_int_exn op and v = Value.to_int_exn state in
    (Value.int (v + d), Value.int v)
end

(** A read/write register: op [VPair (VBool true, v)] writes [v] and
    returns the old value; [VPair (VBool false, _)] reads. *)
module Register : S = struct
  let name = "register"
  let init = Value.initial

  let apply op state =
    match op with
    | Value.VPair (Value.VBool true, v) -> (v, state)
    | Value.VPair (Value.VBool false, _) -> (state, state)
    | _ -> invalid_arg "Register.apply: bad op"
end

(** A FIFO queue of values: op [VPair (VBool true, v)] enqueues,
    [VPair (VBool false, _)] dequeues (response [VList []] when empty,
    [VList [v]] otherwise). *)
module Queue : S = struct
  let name = "queue"
  let init = Value.list []

  let apply op state =
    let items = Value.to_list_exn state in
    match op with
    | Value.VPair (Value.VBool true, v) ->
        (Value.list (items @ [ v ]), Value.unit)
    | Value.VPair (Value.VBool false, _) -> (
        match items with
        | [] -> (state, Value.list [])
        | v :: rest -> (Value.list rest, Value.list [ v ]))
    | _ -> invalid_arg "Queue.apply: bad op"
end

let enq v = Value.pair (Value.bool true) v
let deq = Value.pair (Value.bool false) Value.unit
let write v = Value.pair (Value.bool true) v
let read_op = Value.pair (Value.bool false) Value.unit
