(** Sequential object specifications for the universal constructions:
    pure transition functions over {!Tm_base.Value.t} states, which the
    constructions lift to linearizable concurrent objects. *)

open Tm_base

module type S = sig
  val name : string
  val init : Value.t

  val apply : Value.t -> Value.t -> Value.t * Value.t
  (** [apply op state] is [(state', response)]. *)
end

module Counter : S
(** Fetch&add counter: ops are [VInt delta], responses the old value. *)

module Register : S
(** Read/write register; see {!write} and {!read_op} for op encoding. *)

module Queue : S
(** FIFO queue; see {!enq} and {!deq}. *)

val enq : Value.t -> Value.t
val deq : Value.t
val write : Value.t -> Value.t
val read_op : Value.t
