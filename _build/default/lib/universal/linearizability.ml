(* Wing & Gong style linearizability checking for runs of the universal
   constructions: search for a total order of the recorded operations that
   respects real time (an operation whose response preceded another's
   invocation must come first) and replays correctly through the
   sequential specification.

   This closes the loop on {!Universal}: the constructions claim
   linearizability, the test suite enumerates interleavings with
   {!Tm_runtime.Explorer} and verifies every run here. *)

open Tm_base

type recorded_op = {
  pid : int;
  op : Value.t;
  result : Value.t;
  inv : int;  (** step count at invocation *)
  resp : int;  (** step count at response *)
}

(** Is there a linearization of [ops] legal for the sequential object? *)
let check (module S : Seq_object.S) (ops : recorded_op list) : bool =
  let n = List.length ops in
  let arr = Array.of_list ops in
  let used = Array.make n false in
  let rec go placed state =
    if placed = n then true
    else begin
      (* o may come next iff no other remaining operation finished before
         o started *)
      let candidate i =
        (not used.(i))
        &&
        let o = arr.(i) in
        not
          (Array.exists
             (fun j -> j)
             (Array.init n (fun j ->
                  (not used.(j)) && j <> i && arr.(j).resp < o.inv)))
      in
      let rec try_ops i =
        if i >= n then false
        else if candidate i then begin
          let o = arr.(i) in
          let state', result = S.apply o.op state in
          if Value.equal result o.result then begin
            used.(i) <- true;
            if go (placed + 1) state' then true
            else begin
              used.(i) <- false;
              try_ops (i + 1)
            end
          end
          else try_ops (i + 1)
        end
        else try_ops (i + 1)
      in
      try_ops 0
    end
  in
  go 0 S.init
