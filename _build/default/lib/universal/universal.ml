(* Universal constructions over the shared-memory substrate.

   Two classical designs, both centralizing the object in a single base
   object — which is precisely why they are NOT disjoint-access-parallel
   and why the paper's Section-2 lineage ([2], [15], [37]) worked to
   localize them.  The dap_audit example shows every pair of operations
   contending on the state cell.

   - {!Lock_free}: the compact CAS-retry construction.  System-wide
     progress always (a failed CAS means someone else's succeeded), but an
     individual operation can starve.

   - {!Wait_free}: announce-and-help in the apply-all style of Herlihy's
     construction [24].  An operation announces itself, then keeps trying
     to CAS a record holding (state, per-process applied counts,
     per-process last responses); every successful CAS applies ALL
     currently announced pending operations, so any two successful CASes
     after an announce are guaranteed to include it — each operation
     finishes within a bounded number of interfering steps. *)

open Tm_base
open Tm_runtime

module Lock_free = struct
  type t = { state : Oid.t; apply : Value.t -> Value.t -> Value.t * Value.t }

  let create mem (module S : Seq_object.S) =
    {
      state = Memory.alloc mem ~name:("ulf:" ^ S.name) S.init;
      apply = S.apply;
    }

  (** Apply one operation; lock-free (retries only when an interfering
      CAS succeeded). *)
  let invoke t ?tid (op : Value.t) : Value.t =
    let rec loop () =
      let cur = Proc.read ?tid t.state in
      let next, response = t.apply op cur in
      if Proc.cas ?tid t.state ~expected:cur ~desired:next then response
      else loop ()
    in
    loop ()
end

module Wait_free = struct
  type t = {
    n : int;
    record : Oid.t;
        (* VList [state; VList applied_seq per proc; VList last_resp per proc] *)
    announce : Oid.t array;  (* per proc: VList [VInt seq; op] *)
    apply : Value.t -> Value.t -> Value.t * Value.t;
    seqs : int array;  (* process-local operation counters *)
  }

  let create mem (module S : Seq_object.S) ~n_procs =
    let zeros = List.init n_procs (fun _ -> Value.int 0) in
    let units = List.init n_procs (fun _ -> Value.unit) in
    {
      n = n_procs;
      record =
        Memory.alloc mem
          ~name:("uwf:" ^ S.name)
          (Value.list [ S.init; Value.list zeros; Value.list units ]);
      announce =
        Array.init n_procs (fun i ->
            Memory.alloc mem
              ~name:(Printf.sprintf "uwf-ann:%s:%d" S.name i)
              (Value.list [ Value.int 0; Value.unit ]));
      apply = S.apply;
      seqs = Array.make n_procs 0;
    }

  let decode_record v =
    match v with
    | Value.VList [ state; Value.VList applied; Value.VList resps ] ->
        (state, applied, resps)
    | _ -> invalid_arg "universal: bad record"

  let nth l i = List.nth l i
  let set l i x = List.mapi (fun j y -> if j = i then x else y) l

  (** Apply one operation on behalf of process [me] (0-based slot);
      wait-free via helping. *)
  let invoke t ~me ?tid (op : Value.t) : Value.t =
    if me < 0 || me >= t.n then invalid_arg "universal: bad process slot";
    t.seqs.(me) <- t.seqs.(me) + 1;
    let my_seq = t.seqs.(me) in
    (* announce *)
    Proc.write ?tid t.announce.(me) (Value.list [ Value.int my_seq; op ]);
    let rec loop () =
      let cur = Proc.read ?tid t.record in
      let state, applied, resps = decode_record cur in
      if Value.to_int_exn (nth applied me) >= my_seq then
        (* somebody (possibly us) already applied our op *)
        nth resps me
      else begin
        (* help everyone: apply every announced-but-unapplied op, in
           process order *)
        let state = ref state and applied = ref applied and resps = ref resps in
        for i = 0 to t.n - 1 do
          match Proc.read ?tid t.announce.(i) with
          | Value.VList [ Value.VInt seq; op_i ]
            when seq = Value.to_int_exn (nth !applied i) + 1 ->
              let st', r = t.apply op_i !state in
              state := st';
              applied := set !applied i (Value.int seq);
              resps := set !resps i r
          | _ -> ()
        done;
        let next =
          Value.list [ !state; Value.list !applied; Value.list !resps ]
        in
        ignore (Proc.cas ?tid t.record ~expected:cur ~desired:next);
        loop ()
      end
    in
    loop ()
end
