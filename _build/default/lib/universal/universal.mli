(** Universal constructions over the shared-memory substrate — the
    Section-2 related-work lineage, runnable.  Both centralize the object
    in one base object, which is exactly why they are not
    disjoint-access-parallel and why [2, 15, 37] worked to localize them. *)

open Tm_base

(** The compact CAS-retry construction: lock-free (a failed CAS means
    someone else's succeeded), but an individual operation can starve. *)
module Lock_free : sig
  type t

  val create : Memory.t -> (module Seq_object.S) -> t
  val invoke : t -> ?tid:Tid.t -> Value.t -> Value.t
end

(** Announce-and-help in the apply-all style of Herlihy's wait-free
    construction: every successful CAS applies all announced pending
    operations, so each operation finishes within a bounded number of
    interfering steps. *)
module Wait_free : sig
  type t

  val create : Memory.t -> (module Seq_object.S) -> n_procs:int -> t

  val invoke : t -> me:int -> ?tid:Tid.t -> Value.t -> Value.t
  (** [me] is the process slot in [0 .. n_procs-1].
      @raise Invalid_argument on a bad slot. *)
end
