(* The trivial unsynchronized TM — the paper's Section-5 witness that
   weakening *consistency* to PRAM makes the other two properties
   achievable: "allowing writes to the same data item to be viewed
   differently, as in PRAM consistency, makes it possible to trivially
   ensure strict disjoint-access-parallelism and wait-freedom ... without
   any synchronization between processes".

     Parallelism: strict DAP — vacuously, no shared base object is ever
                  accessed (zero contention).
     Consistency: PRAM only — each process sees its own committed writes
                  in order and never observes anyone else's.
     Liveness:    wait-free — every operation finishes in a bounded number
                  of (zero) shared steps and transactions never abort.

   All state is process-local: a per-process committed store. *)

open Tm_base

let name = "pram-local"
let describe = "strict DAP + wait-free, PRAM consistency only (weakens C)"

type t = { stores : (int * Item.t, Value.t) Hashtbl.t }

let create (_ : Memory.t) ~items:(_ : Item.t list) =
  { stores = Hashtbl.create 64 }

type ctx = {
  t : t;
  pid : int;
  mutable wset : (Item.t * Value.t) list;
  mutable dead : bool;
}

let begin_txn t ~pid ~tid:(_ : Tid.t) = { t; pid; wset = []; dead = false }

let read c x =
  if c.dead then Error ()
  else
    match List.assoc_opt x c.wset with
    | Some v -> Ok v
    | None -> (
        match Hashtbl.find_opt c.t.stores (c.pid, x) with
        | Some v -> Ok v
        | None -> Ok Value.initial)

let write c x v =
  if c.dead then Error ()
  else begin
    c.wset <- (x, v) :: List.remove_assoc x c.wset;
    Ok ()
  end

let try_commit c =
  if c.dead then Error ()
  else begin
    List.iter
      (fun (x, v) -> Hashtbl.replace c.t.stores (c.pid, x) v)
      (List.rev c.wset);
    c.dead <- true;
    Ok ()
  end

let abort c = c.dead <- true
