(** The client-facing API: a TM instance packaged as closures, with every
    transactional routine recorded as invocation/response events — the
    single place histories are produced, so every TM is instrumented
    identically. *)

open Tm_base
open Tm_trace

type txn = {
  tid : Tid.t;
  pid : int;
  read : Item.t -> (Value.t, unit) result;
  write : Item.t -> Value.t -> (unit, unit) result;
  try_commit : unit -> (unit, unit) result;
  abort : unit -> unit;
}

type handle = {
  tm_name : string;
  begin_txn : pid:int -> tid:Tid.t -> txn;
  fresh_tid : unit -> Tid.t;
      (** unique transaction ids for retry loops; deterministic per handle
          (and therefore per replay) *)
}

val instantiate :
  Tm_intf.impl -> Memory.t -> Recorder.t -> items:Item.t list -> handle
