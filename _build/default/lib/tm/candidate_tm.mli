(** The candidate TM — the theorem's victim.  Per-item versioned registers
    and nothing else: strictly DAP and obstruction-free, hence — by the
    PCL theorem — necessarily inconsistent: the per-item CAS write-back
    lets concurrent readers observe half of a commit, and the harness
    exhibits the executions of Figures 3-6 against it. *)

include Tm_intf.S
