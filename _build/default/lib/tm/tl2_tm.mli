(** TL2-style global-version-clock TM [Dice, Shalev & Shavit 06] — the
    ablation of the candidate TM: adding one global object (the version
    clock) and commit-time locking repairs consistency (opacity) at the
    price of both remaining legs — not DAP (clock contention) and blocking
    (lock spins, and readers abort solo against a suspended committer). *)

include Tm_intf.S
