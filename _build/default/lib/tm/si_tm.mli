(** Global-clock multiversion snapshot isolation, after SI-STM [Riegel,
    Fetzer & Felber 06] — the other corner that weakens {e parallelism}:
    every transaction reads the global clock and every committing writer
    fetch&adds it, so even fully disjoint transactions contend (the
    paper's Section-2 remark about SI-STM).  Satisfies the paper's weak
    Def. 3.1 (no first-committer-wins); obstruction-free, with reader
    helping for suspended committers. *)

include Tm_intf.S
