lib/tm/static_txn.ml: Hashtbl Item List Tid Tm_base Txn_api Value
