lib/tm/pram_tm.mli: Tm_intf
