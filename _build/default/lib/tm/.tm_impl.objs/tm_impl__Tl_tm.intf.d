lib/tm/tl_tm.mli: Tm_intf
