lib/tm/candidate_tm.mli: Tm_intf
