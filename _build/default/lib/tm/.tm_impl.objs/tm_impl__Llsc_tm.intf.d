lib/tm/llsc_tm.mli: Tm_intf
