lib/tm/atomically.mli: Item Tm_base Txn_api Value
