lib/tm/dstm_tm.mli: Tm_intf
