lib/tm/registry.ml: Candidate_tm Dstm_tm List Llsc_tm Norec_tm Pram_tm Printf Si_tm Tl2_tm Tl_tm Tm_intf
