lib/tm/si_tm.ml: Hashtbl Item List Memory Oid Printf Proc Tid Tm_base Tm_runtime Value
