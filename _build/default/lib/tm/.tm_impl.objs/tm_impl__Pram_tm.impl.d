lib/tm/pram_tm.ml: Hashtbl Item List Memory Tid Tm_base Value
