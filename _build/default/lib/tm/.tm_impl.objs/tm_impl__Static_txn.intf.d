lib/tm/static_txn.mli: Hashtbl Item Tid Tm_base Txn_api Value
