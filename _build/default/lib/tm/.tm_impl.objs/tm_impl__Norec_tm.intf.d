lib/tm/norec_tm.mli: Tm_intf
