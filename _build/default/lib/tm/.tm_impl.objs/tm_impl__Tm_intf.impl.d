lib/tm/tm_intf.ml: Item Memory Tid Tm_base Value
