lib/tm/txn_api.ml: Event Item Memory Recorder Tid Tm_base Tm_intf Tm_trace Value
