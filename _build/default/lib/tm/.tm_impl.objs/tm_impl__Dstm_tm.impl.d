lib/tm/dstm_tm.ml: Hashtbl Item List Memory Oid Printf Proc Result Tid Tm_base Tm_runtime Value
