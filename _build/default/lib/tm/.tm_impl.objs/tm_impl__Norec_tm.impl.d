lib/tm/norec_tm.ml: Hashtbl Item List Memory Oid Proc Result Tid Tm_base Tm_runtime Value
