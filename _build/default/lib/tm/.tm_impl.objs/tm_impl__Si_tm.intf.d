lib/tm/si_tm.mli: Tm_intf
