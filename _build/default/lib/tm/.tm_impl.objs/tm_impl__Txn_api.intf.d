lib/tm/txn_api.mli: Item Memory Recorder Tid Tm_base Tm_intf Tm_trace Value
