lib/tm/candidate_tm.ml: Hashtbl Item List Memory Oid Proc Tid Tm_base Tm_runtime Value
