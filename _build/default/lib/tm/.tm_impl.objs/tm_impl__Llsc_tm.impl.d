lib/tm/llsc_tm.ml: Hashtbl Item List Memory Oid Primitive Proc Tid Tm_base Tm_runtime Value
