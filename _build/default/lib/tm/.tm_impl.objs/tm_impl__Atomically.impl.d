lib/tm/atomically.ml: Item Stdlib Tm_base Txn_api Value
