lib/tm/tl2_tm.mli: Tm_intf
