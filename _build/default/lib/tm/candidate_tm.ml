(* The candidate TM — the theorem's victim.

   A natural attempt to get all three properties at once: per-item
   versioned registers and nothing else (no clock, no status words, no
   locks), optimistic reads, commit-time read-set validation and per-item
   CAS write-back.

     Parallelism: strict DAP — a transaction only ever touches the base
                  objects of its own data set.
     Liveness:    obstruction-free — the only aborts are validation or CAS
                  failures, which can only be caused by another process's
                  step inside the transaction's interval; running solo it
                  always commits.
     Consistency: by the PCL theorem it therefore CANNOT satisfy even weak
                  adaptive consistency.  And indeed it does not: the
                  commit write-back installs items one CAS at a time, so a
                  concurrent reader can observe half of a commit — the PCL
                  harness exhibits exactly the executions of Figures 3-6
                  against it, and the weak-adaptive checker refutes the
                  resulting histories.

   Per item x: [cell:x] = VPair (value, VInt version). *)

open Tm_base
open Tm_runtime

let name = "candidate"
let describe = "strict DAP + obstruction-free; consistency broken (the PCL victim)"

type t = { cell_of : Item.t -> Oid.t }

let create mem ~items =
  let cells = Hashtbl.create 16 in
  List.iter
    (fun x ->
      Hashtbl.replace cells x
        (Memory.alloc mem
           ~name:("cell:" ^ Item.name x)
           (Value.pair Value.initial (Value.int 0))))
    items;
  { cell_of = (fun x -> Hashtbl.find cells x) }

type ctx = {
  t : t;
  pid : int;
  tid : Tid.t;
  mutable rset : (Item.t * (Value.t * int)) list;
      (* item -> value and version at first read *)
  mutable wset : (Item.t * Value.t) list;
  mutable dead : bool;
}

let begin_txn t ~pid ~tid = { t; pid; tid; rset = []; wset = []; dead = false }

let read_cell c x = Value.to_pair_exn (Proc.read ~tid:c.tid (c.t.cell_of x))

let read c x =
  if c.dead then Error ()
  else
    match List.assoc_opt x c.wset with
    | Some v -> Ok v
    | None ->
        let v, ver = read_cell c x in
        if not (List.mem_assoc x c.rset) then
          c.rset <- (x, (v, Value.to_int_exn ver)) :: c.rset;
        Ok v

let write c x v =
  if c.dead then Error ()
  else begin
    c.wset <- (x, v) :: List.remove_assoc x c.wset;
    Ok ()
  end

let try_commit c =
  if c.dead then Error ()
  else begin
    (* validate read-only items: first-read version unchanged.  A failure
       implies an interfering step, so aborting preserves
       obstruction-freedom.  Read-write items are enforced by the install
       CAS below, which is pinned to the first-read state — re-reading
       here would open a lost-update window. *)
    let valid =
      List.for_all
        (fun (x, (_, ver0)) ->
          List.mem_assoc x c.wset
          ||
          let _, ver = read_cell c x in
          Value.to_int_exn ver = ver0)
        c.rset
    in
    if not valid then begin
      c.dead <- true;
      Error ()
    end
    else begin
      (* install item by item — the non-atomic MULTI-item write-back is
         the consistency defect the theorem mandates; each single item is
         updated atomically from its validated state *)
      let rec install = function
        | [] -> Ok ()
        | (x, v) :: rest ->
            let expected =
              match List.assoc_opt x c.rset with
              | Some (v0, ver0) -> Value.pair v0 (Value.int ver0)
              | None ->
                  let cur_v, ver = read_cell c x in
                  Value.pair cur_v ver
            in
            let ver =
              Value.to_int_exn (snd (Value.to_pair_exn expected))
            in
            if
              Proc.cas ~tid:c.tid (c.t.cell_of x) ~expected
                ~desired:(Value.pair v (Value.int (ver + 1)))
            then install rest
            else Error () (* contention: abort, obstruction-free *)
      in
      let sorted =
        List.sort (fun (a, _) (b, _) -> Item.compare a b) c.wset
      in
      let r = install sorted in
      c.dead <- true;
      r
    end
  end

let abort c = c.dead <- true
