(** The trivial unsynchronized TM — the paper's Section-5 witness that
    weakening {e consistency} to PRAM makes the other two properties
    achievable: strict DAP (vacuously — no shared base object is ever
    accessed) and wait-freedom, with each process seeing only its own
    committed writes. *)

include Tm_intf.S
