(* TL2-style global-version-clock TM [Dice, Shalev & Shavit 06] — included
   as the *ablation* of the candidate TM: keep its per-item versioned
   registers and optimistic reads, add one global object (the version
   clock) and commit-time locking, and consistency is repaired (opacity)
   at the price of BOTH remaining legs:

     Parallelism: NOT DAP — every transaction reads the clock at begin and
                  every committing writer fetch&adds it, so fully disjoint
                  transactions contend.
     Consistency: opacity — reads are version-filtered against the begin
                  snapshot (ver <= rv, unlocked), and commits lock the
                  write set, re-validate the read set under those locks,
                  and install with a fresh clock value.
     Liveness:    blocking — commit spins on the per-item lock words, and
                  readers abort when they meet a locked or too-new item.

   Per item x: one object [tv:x] = VList [VInt owner; value; VInt version]
   where owner = -1 when unlocked (lock word, value and version share one
   object so that reads and installs are single atomic steps). *)

open Tm_base
open Tm_runtime

let name = "tl2-clock"
let describe = "opacity via a global clock; neither DAP nor non-blocking (ablation)"

type t = { gv : Oid.t; cell_of : Item.t -> Oid.t }

let create mem ~items =
  let gv = Memory.alloc mem ~name:"gv" (Value.int 0) in
  let cells = Hashtbl.create 16 in
  List.iter
    (fun x ->
      Hashtbl.replace cells x
        (Memory.alloc mem
           ~name:("tv:" ^ Item.name x)
           (Value.list [ Value.int (-1); Value.initial; Value.int 0 ])))
    items;
  { gv; cell_of = (fun x -> Hashtbl.find cells x) }

type ctx = {
  t : t;
  pid : int;
  tid : Tid.t;
  rv : int;  (* read version: clock snapshot at begin *)
  mutable rset : Item.t list;
  mutable wset : (Item.t * Value.t) list;
  mutable dead : bool;
}

let begin_txn t ~pid ~tid =
  let rv = Value.to_int_exn (Proc.read ~tid t.gv) in
  { t; pid; tid; rv; rset = []; wset = []; dead = false }

let decode = function
  | Value.VList [ Value.VInt owner; v; Value.VInt ver ] -> (owner, v, ver)
  | _ -> invalid_arg "tl2: bad cell"

let encode owner v ver = Value.list [ Value.int owner; v; Value.int ver ]

let read c x =
  if c.dead then Error ()
  else
    match List.assoc_opt x c.wset with
    | Some v -> Ok v
    | None ->
        let owner, v, ver = decode (Proc.read ~tid:c.tid (c.t.cell_of x)) in
        if owner <> -1 || ver > c.rv then begin
          (* locked by a committer, or written after our snapshot: the
             snapshot cannot be extended — abort (TL2's read filter) *)
          c.dead <- true;
          Error ()
        end
        else begin
          if not (List.mem x c.rset) then c.rset <- x :: c.rset;
          Ok v
        end

let write c x v =
  if c.dead then Error ()
  else begin
    c.wset <- (x, v) :: List.remove_assoc x c.wset;
    Ok ()
  end

let try_commit c =
  if c.dead then Error ()
  else begin
    c.dead <- true;
    if c.wset = [] then Ok () (* read-only fast path, as in TL2 *)
    else begin
      let items = List.sort Item.compare (List.map fst c.wset) in
      (* lock the write set in item order (spin: the blocking part) *)
      let rec lock_all held = function
        | [] -> held
        | x :: rest ->
            let oid = c.t.cell_of x in
            let cur = Proc.read ~tid:c.tid oid in
            let owner, v, ver = decode cur in
            if owner <> -1 then lock_all held (x :: rest) (* spin *)
            else if
              Proc.cas ~tid:c.tid oid ~expected:cur
                ~desired:(encode c.pid v ver)
            then lock_all ((x, v, ver) :: held) rest
            else lock_all held (x :: rest)
      in
      let held = lock_all [] items in
      let release () =
        List.iter
          (fun (x, v, ver) ->
            Proc.write ~tid:c.tid (c.t.cell_of x) (encode (-1) v ver))
          held
      in
      (* fresh write version *)
      let wv = 1 + Proc.fetch_add ~tid:c.tid c.t.gv 1 in
      (* validate the read set under the locks.  Items we also write are
         locked by us and validate by version alone — skipping them would
         re-admit the lost update. *)
      let valid =
        List.for_all
          (fun x ->
            let owner, _, ver = decode (Proc.read ~tid:c.tid (c.t.cell_of x)) in
            (owner = -1 || owner = c.pid) && ver <= c.rv)
          c.rset
      in
      if not valid then begin
        release ();
        Error ()
      end
      else begin
        (* install and unlock in one atomic write per item *)
        List.iter
          (fun (x, _, _) ->
            let v = List.assoc x c.wset in
            Proc.write ~tid:c.tid (c.t.cell_of x) (encode (-1) v wv))
          held;
        Ok ()
      end
    end
  end

let abort c = c.dead <- true
