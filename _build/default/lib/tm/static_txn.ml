(* Static transactions (Section 3, "Disjoint-access-parallelism"): the data
   items a transaction accesses are fixed and derivable from its code.  The
   PCL proof's T1..T7 are exactly of this shape: read a list of items, then
   write a list of items, then commit. *)

open Tm_base

type spec = {
  tid : Tid.t;
  pid : int;
  reads : Item.t list;
  writes : (Item.t * Value.t) list;
}

(** D(T): the static data set. *)
let data_set (s : spec) : Item.Set.t =
  Item.Set.union
    (Item.set_of_list s.reads)
    (Item.set_of_list (List.map fst s.writes))

let data_sets (specs : spec list) : (Tid.t * Item.Set.t) list =
  List.map (fun s -> (s.tid, data_set s)) specs

type status = Committed | Aborted | Unstarted
[@@warning "-37"]

type outcome = {
  mutable read_values : (Item.t * Value.t) list;  (* in read order *)
  mutable status : status;
}

let new_outcome () = { read_values = []; status = Unstarted }

(** The value the transaction read for [x], if it got that far. *)
let read_value (o : outcome) x = List.assoc_opt x o.read_values

(** Build the process program executing [spec] once (no retry — the
    paper's transactions run once and either commit or abort).  The
    outcome is written into [outcomes] keyed by tid. *)
let program (handle : Txn_api.handle) (spec : spec)
    ~(outcomes : (Tid.t, outcome) Hashtbl.t) : unit -> unit =
 fun () ->
  let o = new_outcome () in
  Hashtbl.replace outcomes spec.tid o;
  let txn = handle.Txn_api.begin_txn ~pid:spec.pid ~tid:spec.tid in
  let rec do_reads = function
    | [] -> Ok ()
    | x :: rest -> (
        match txn.Txn_api.read x with
        | Ok v ->
            o.read_values <- o.read_values @ [ (x, v) ];
            do_reads rest
        | Error () -> Error ())
  in
  let rec do_writes = function
    | [] -> Ok ()
    | (x, v) :: rest -> (
        match txn.Txn_api.write x v with
        | Ok () -> do_writes rest
        | Error () -> Error ())
  in
  let result =
    match do_reads spec.reads with
    | Error () -> Error ()
    | Ok () -> (
        match do_writes spec.writes with
        | Error () -> Error ()
        | Ok () -> txn.Txn_api.try_commit ())
  in
  o.status <- (match result with Ok () -> Committed | Error () -> Aborted)

(** Items appearing in any of the specs (for [Tm_intf.S.create]). *)
let items_of (specs : spec list) : Item.t list =
  Item.Set.elements
    (List.fold_left
       (fun acc s -> Item.Set.union acc (data_set s))
       Item.Set.empty specs)
