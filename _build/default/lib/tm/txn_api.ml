(* The client-facing API: a TM instance packaged as closures, with every
   transactional routine recorded as invocation/response events in a
   history (the paper's H_alpha).  This is the single place where histories
   are produced, so every TM is instrumented identically. *)

open Tm_base
open Tm_trace

type txn = {
  tid : Tid.t;
  pid : int;
  read : Item.t -> (Value.t, unit) result;
  write : Item.t -> Value.t -> (unit, unit) result;
  try_commit : unit -> (unit, unit) result;
  abort : unit -> unit;
}

type handle = {
  tm_name : string;
  begin_txn : pid:int -> tid:Tid.t -> txn;
  fresh_tid : unit -> Tid.t;
      (** unique transaction ids for retry loops; deterministic per handle
          (and therefore per replay) *)
}

(** Instantiate a TM implementation over [mem], recording all events into
    [recorder].  The event timestamps are the global step counts, placing
    history events on the same axis as access-log steps. *)
let instantiate (module M : Tm_intf.S) (mem : Memory.t)
    (recorder : Recorder.t) ~(items : Item.t list) : handle =
  let t = M.create mem ~items in
  let now () = Memory.step_count mem in
  let tid_counter = ref 0 in
  let fresh_tid () =
    incr tid_counter;
    Tid.v (50_000 + !tid_counter)
  in
  let begin_txn ~pid ~tid =
    Recorder.inv recorder ~tid ~pid ~at:(now ()) Event.Begin;
    let ctx = M.begin_txn t ~pid ~tid in
    Recorder.resp recorder ~tid ~pid ~at:(now ()) Event.Begin Event.R_ok;
    let read x =
      Recorder.inv recorder ~tid ~pid ~at:(now ()) (Event.Read x);
      match M.read ctx x with
      | Ok v ->
          Recorder.resp recorder ~tid ~pid ~at:(now ()) (Event.Read x)
            (Event.R_value v);
          Ok v
      | Error () ->
          Recorder.resp recorder ~tid ~pid ~at:(now ()) (Event.Read x)
            Event.R_aborted;
          Error ()
    in
    let write x v =
      Recorder.inv recorder ~tid ~pid ~at:(now ()) (Event.Write (x, v));
      match M.write ctx x v with
      | Ok () ->
          Recorder.resp recorder ~tid ~pid ~at:(now ()) (Event.Write (x, v))
            Event.R_ok;
          Ok ()
      | Error () ->
          Recorder.resp recorder ~tid ~pid ~at:(now ()) (Event.Write (x, v))
            Event.R_aborted;
          Error ()
    in
    let try_commit () =
      Recorder.inv recorder ~tid ~pid ~at:(now ()) Event.Try_commit;
      match M.try_commit ctx with
      | Ok () ->
          Recorder.resp recorder ~tid ~pid ~at:(now ()) Event.Try_commit
            Event.R_committed;
          Ok ()
      | Error () ->
          Recorder.resp recorder ~tid ~pid ~at:(now ()) Event.Try_commit
            Event.R_aborted;
          Error ()
    in
    let abort () =
      Recorder.inv recorder ~tid ~pid ~at:(now ()) Event.Abort_call;
      M.abort ctx;
      Recorder.resp recorder ~tid ~pid ~at:(now ()) Event.Abort_call
        Event.R_aborted
    in
    { tid; pid; read; write; try_commit; abort }
  in
  { tm_name = M.name; begin_txn; fresh_tid }
