(** The candidate TM rebuilt on load-linked/store-conditional: the same
    doomed triangle corner (strict DAP + obstruction-free, consistency
    necessarily broken) reached through different primitives — the PCL
    theorem is primitive-agnostic. *)

include Tm_intf.S
