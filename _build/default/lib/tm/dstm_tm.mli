(** DSTM-style obstruction-free TM [Herlihy, Luchangco, Moir & Scherer 03]
    — a corner that weakens {e parallelism}: per-item locators point to
    the owner's status word, and aborting an enemy CASes that word, so two
    mutually disjoint transactions that both conflict with a third contend
    on the third's status object (chain-style weak DAP, as in the authors'
    DSTM variant [11]).  Obstruction-free; strictly serializable for
    committed transactions (reads are validated on every open and acquired
    visibly at commit). *)

include Tm_intf.S
