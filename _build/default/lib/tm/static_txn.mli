(** Static transactions (Section 3): the data items a transaction accesses
    are fixed and derivable from its code.  The PCL proof's T1..T7 are of
    exactly this shape — read a list of items, write a list of items,
    commit. *)

open Tm_base

type spec = {
  tid : Tid.t;
  pid : int;
  reads : Item.t list;
  writes : (Item.t * Value.t) list;
}

val data_set : spec -> Item.Set.t
(** D(T): the static data set (reads union writes). *)

val data_sets : spec list -> (Tid.t * Item.Set.t) list

type status = Committed | Aborted | Unstarted

type outcome = {
  mutable read_values : (Item.t * Value.t) list;  (** in read order *)
  mutable status : status;
}

val new_outcome : unit -> outcome
val read_value : outcome -> Item.t -> Value.t option

val program :
  Txn_api.handle ->
  spec ->
  outcomes:(Tid.t, outcome) Hashtbl.t ->
  unit ->
  unit
(** The process program executing the spec once (no retry — the paper's
    transactions run once and either commit or abort), writing its outcome
    into [outcomes]. *)

val items_of : spec list -> Item.t list
