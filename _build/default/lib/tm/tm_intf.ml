(* The TM-implementation signature (Section 3, "Transactions"): a TM
   algorithm provides begin_T, x.read(), x.write(v), commit_T and abort_T,
   implemented from atomic base-object primitives.

   Conventions:
   - All shared state lives in {!Tm_base.Memory} base objects, accessed
     exclusively through {!Tm_runtime.Proc.access}, so every shared access
     is one logged atomic step.  Context-local state is private to the
     process and invisible to others, as in the model.
   - [Error ()] is the paper's A_T answer: the transaction is aborted and
     no further operation may be invoked on the context.
   - [create] pre-allocates the shared representation of the given data
     items (the objects exist in the initial configuration). *)

open Tm_base

module type S = sig
  val name : string

  val describe : string
  (** one-line positioning on the P/C/L triangle *)

  type t
  (** shared instance over one memory *)

  val create : Memory.t -> items:Item.t list -> t

  type ctx
  (** per-transaction context (process-local) *)

  val begin_txn : t -> pid:int -> tid:Tid.t -> ctx

  val read : ctx -> Item.t -> (Value.t, unit) result

  val write : ctx -> Item.t -> Value.t -> (unit, unit) result

  val try_commit : ctx -> (unit, unit) result

  val abort : ctx -> unit
end

type impl = (module S)
