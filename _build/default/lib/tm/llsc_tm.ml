(* The candidate TM rebuilt on load-linked/store-conditional — the same
   doomed corner of the triangle reached through different primitives.
   The paper's model allows base objects with any primitives; the PCL
   theorem is primitive-agnostic, and this implementation demonstrates it:

     Parallelism: strict DAP — only the items' own cells are accessed.
     Liveness:    obstruction-free — an SC fails only because another
                  process's step invalidated the reservation; running solo
                  every SC succeeds.
     Consistency: broken, exactly like {!Candidate_tm}: the commit
                  installs items one SC at a time, so a concurrent reader
                  can observe half of a commit.  The PCL harness finds the
                  same Figure-5/6 violations, with s1/s2 now being SC
                  steps instead of CASes.

   Per item x: one plain register [ll:x]; reads LL it (leaving a
   reservation that doubles as validation), commits SC it (read-write
   items reuse the read's reservation, so lost updates are impossible on a
   single item; read-only items are validated by an SC of the same value,
   which makes reads visible at commit, as the paper permits). *)

open Tm_base
open Tm_runtime

let name = "llsc-candidate"
let describe =
  "strict DAP + obstruction-free via LL/SC; consistency broken (the \
   primitive-agnostic victim)"

type t = { cell_of : Item.t -> Oid.t }

let create mem ~items =
  let cells = Hashtbl.create 16 in
  List.iter
    (fun x ->
      Hashtbl.replace cells x
        (Memory.alloc mem ~name:("ll:" ^ Item.name x) Value.initial))
    items;
  { cell_of = (fun x -> Hashtbl.find cells x) }

type ctx = {
  t : t;
  pid : int;
  tid : Tid.t;
  mutable rset : (Item.t * Value.t) list;  (* value at load-linked *)
  mutable wset : (Item.t * Value.t) list;
  mutable dead : bool;
}

let begin_txn t ~pid ~tid = { t; pid; tid; rset = []; wset = []; dead = false }

let ll c x =
  Proc.access ~tid:c.tid (c.t.cell_of x) (Primitive.Load_linked c.pid)

let sc c x v =
  Value.to_bool_exn
    (Proc.access ~tid:c.tid (c.t.cell_of x)
       (Primitive.Store_conditional (c.pid, v)))

let read c x =
  if c.dead then Error ()
  else
    match List.assoc_opt x c.wset with
    | Some v -> Ok v
    | None ->
        let v = ll c x in
        if not (List.mem_assoc x c.rset) then c.rset <- (x, v) :: c.rset;
        Ok v

let write c x v =
  if c.dead then Error ()
  else begin
    c.wset <- (x, v) :: List.remove_assoc x c.wset;
    Ok ()
  end

let try_commit c =
  if c.dead then Error ()
  else begin
    c.dead <- true;
    (* 1. validate read-only items: SC their own value back — succeeds iff
       nothing touched the cell since our LL *)
    let reads_ok =
      List.for_all
        (fun (x, v) -> List.mem_assoc x c.wset || sc c x v)
        c.rset
    in
    if not reads_ok then Error ()
    else begin
      (* 2. install the write set one SC at a time (the torn write-back);
         read-write items reuse the read's reservation, write-only items
         take a fresh LL immediately before their SC *)
      let rec install = function
        | [] -> Ok ()
        | (x, v) :: rest ->
            if not (List.mem_assoc x c.rset) then ignore (ll c x);
            if sc c x v then install rest
            else Error () (* someone interfered: abort, obstruction-free *)
      in
      install (List.sort (fun (a, _) (b, _) -> Item.compare a b) c.wset)
    end
  end

let abort c = c.dead <- true
