(** TL-style lock-based TM [Dice & Shavit 06] — the paper's witness that
    weakening {e liveness} makes the other two properties achievable:
    strict DAP (only per-item objects are touched) and strict
    serializability (commit-time locking of the read and write sets in
    item order, plus version validation), at the price of blocking. *)

include Tm_intf.S
