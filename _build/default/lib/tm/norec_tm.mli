(** NOrec [Dalessandro, Spear & Scott 10]: one global sequence lock and
    value-based revalidation — opacity from minimal metadata, at the price
    of both other legs: every transaction contends on the sequence word
    (not DAP) and spins while a writer is writing back (blocking). *)

include Tm_intf.S
