(* TL-style lock-based TM [Dice & Shavit 06], the paper's witness that
   weakening *liveness* makes the other two properties achievable:

     Parallelism: strict DAP — only per-item base objects are touched.
     Consistency: strict serializability — commit-time locking of the
                  read AND write sets (in item order, so commits never
                  deadlock) plus version validation of the read set.
                  Locking the read set closes the validate-to-install
                  window through which a conflicting writer could
                  otherwise slip (the race that motivated TL2's global
                  clock; here read locks keep the TM strictly DAP).
     Liveness:    blocking — commit spins on per-item locks, so a
                  suspended lock holder stalls everyone conflicting.

   Per item x: a lock object [lock:x] and a versioned value [val:x]
   holding VPair (value, VInt version). *)

open Tm_base
open Tm_runtime

let name = "tl-lock"
let describe = "strict DAP + strict serializability, blocking (weakens L)"

type t = {
  val_of : Item.t -> Oid.t;
  lock_of : Item.t -> Oid.t;
}

let create mem ~items =
  let vals = Hashtbl.create 16 and locks = Hashtbl.create 16 in
  List.iter
    (fun x ->
      Hashtbl.replace vals x
        (Memory.alloc mem
           ~name:("val:" ^ Item.name x)
           (Value.pair Value.initial (Value.int 0)));
      Hashtbl.replace locks x
        (Memory.alloc mem ~name:("lock:" ^ Item.name x) Value.unit))
    items;
  {
    val_of = (fun x -> Hashtbl.find vals x);
    lock_of = (fun x -> Hashtbl.find locks x);
  }

type ctx = {
  t : t;
  pid : int;
  tid : Tid.t;
  mutable rset : (Item.t * int) list;  (* item, version at first read *)
  mutable wset : (Item.t * Value.t) list;  (* newest binding first *)
  mutable dead : bool;
}

let begin_txn t ~pid ~tid = { t; pid; tid; rset = []; wset = []; dead = false }

let read_cell c x =
  Value.to_pair_exn (Proc.read ~tid:c.tid (c.t.val_of x))

let read c x =
  if c.dead then Error ()
  else
    match List.assoc_opt x c.wset with
    | Some v -> Ok v
    | None ->
        let v, ver = read_cell c x in
        let ver = Value.to_int_exn ver in
        if not (List.mem_assoc x c.rset) then c.rset <- (x, ver) :: c.rset;
        Ok v

let write c x v =
  if c.dead then Error ()
  else begin
    c.wset <- (x, v) :: List.remove_assoc x c.wset;
    Ok ()
  end

let write_items c = List.sort Item.compare (List.map fst c.wset)

(* every item the commit must lock: read set union write set, in item
   order so that concurrent commits never deadlock *)
let lock_items c =
  List.sort_uniq Item.compare (List.map fst c.wset @ List.map fst c.rset)

let release c held =
  List.iter (fun x -> Proc.unlock ~tid:c.tid ~pid:c.pid (c.t.lock_of x)) held

let try_commit c =
  if c.dead then Error ()
  else begin
    (* acquire read+write locks in item order; spin — the blocking part *)
    let rec acquire held = function
      | [] -> held
      | x :: rest ->
          if Proc.try_lock ~tid:c.tid ~pid:c.pid (c.t.lock_of x) then
            acquire (x :: held) rest
          else acquire held (x :: rest)
    in
    let held = acquire [] (lock_items c) in
    (* validate the read set: versions unchanged since first read *)
    let valid =
      List.for_all
        (fun (x, ver0) ->
          let _, ver = read_cell c x in
          Value.to_int_exn ver = ver0)
        c.rset
    in
    if not valid then begin
      release c held;
      c.dead <- true;
      Error ()
    end
    else begin
      (* write back, then release everything *)
      List.iter
        (fun x ->
          let v = List.assoc x c.wset in
          let _, ver = read_cell c x in
          Proc.write ~tid:c.tid (c.t.val_of x)
            (Value.pair v (Value.int (Value.to_int_exn ver + 1))))
        (write_items c);
      release c held;
      c.dead <- true;
      Ok ()
    end
  end

let abort c = c.dead <- true
