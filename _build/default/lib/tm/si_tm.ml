(* Global-clock multiversion snapshot isolation, after SI-STM [Riegel,
   Fetzer & Felber 06] — the other corner that weakens *parallelism*:

     Parallelism: NOT disjoint-access-parallel in any variant: every
                  transaction reads the global clock and every committing
                  writer fetch&adds it, so even fully disjoint transactions
                  contend on the clock (exactly the paper's remark about
                  SI-STM, Section 2).
     Consistency: snapshot isolation (the paper's weak Def. 3.1 — no
                  first-committer-wins rule: concurrent writers to the same
                  item may both commit).
     Liveness:    obstruction-free — installs retry only when an
                  interfering step changed the version list; commits never
                  fail.

   Objects: [clock] = VInt; per item [ver:x] = VList of version entries
   VList [VInt owner; VInt ts; value].  A pending entry carries the oid of
   its owner's commit record [sic:T] = VPair (VInt state, VInt ts); all of
   a transaction's versions become visible atomically when that record is
   CASed to committed, which closes the torn-snapshot race of naive
   install-then-publish designs.

   Commit protocol: install all pending entries (state 0, invisible), seal
   the record (state 3), fetch&add the clock, publish (state 1 with the
   timestamp).  A reader that meets a sealed record *helps*: it fetch&adds
   the clock itself and tries to publish on the owner's behalf, so
   resolution is non-blocking even if the committer is suspended between
   its last two steps. *)

open Tm_base
open Tm_runtime

let name = "si-clock"
let describe = "snapshot isolation + obstruction-free, no DAP (weakens P)"

type t = { mem : Memory.t; clock : Oid.t; ver_of : Item.t -> Oid.t }

let create mem ~items =
  let clock = Memory.alloc mem ~name:"clock" (Value.int 0) in
  let vers = Hashtbl.create 16 in
  List.iter
    (fun x ->
      Hashtbl.replace vers x
        (Memory.alloc mem
           ~name:("ver:" ^ Item.name x)
           (Value.list
              [ Value.list [ Value.int (-1); Value.int 0; Value.initial ] ])))
    items;
  { mem; clock; ver_of = (fun x -> Hashtbl.find vers x) }

type ctx = {
  t : t;
  pid : int;
  tid : Tid.t;
  snap : int;  (* snapshot timestamp taken at begin *)
  record : Oid.t;  (* commit record *)
  mutable wset : (Item.t * Value.t) list;
  mutable dead : bool;
}

let begin_txn t ~pid ~tid =
  let record =
    Memory.alloc t.mem
      ~name:(Printf.sprintf "sic:%s" (Tid.name tid))
      (Value.pair (Value.int 0) (Value.int (-1)))
  in
  let snap = Value.to_int_exn (Proc.read ~tid t.clock) in
  { t; pid; tid; snap; record; wset = []; dead = false }

let decode_entry = function
  | Value.VList [ Value.VInt owner; Value.VInt ts; v ] -> (owner, ts, v)
  | _ -> invalid_arg "si: bad version entry"

(* commit timestamp of an entry: immediate for committed-at-creation
   entries, read from the owner's commit record for pending ones.  A
   sealed record (state 3) is helped to completion. *)
let rec entry_ts c ((owner, ts, _v) as e) =
  if owner = -1 then Some ts
  else
    match Proc.read ~tid:c.tid (Oid.of_int owner) with
    | Value.VPair (Value.VInt 1, Value.VInt cts) -> Some cts
    | Value.VPair (Value.VInt 3, _) ->
        let hts = 1 + Proc.fetch_add ~tid:c.tid c.t.clock 1 in
        ignore
          (Proc.cas ~tid:c.tid (Oid.of_int owner)
             ~expected:(Value.pair (Value.int 3) (Value.int (-1)))
             ~desired:(Value.pair (Value.int 1) (Value.int hts)));
        entry_ts c e
    | _ -> None (* owner still active: invisible *)

let read c x =
  if c.dead then Error ()
  else
    match List.assoc_opt x c.wset with
    | Some v -> Ok v
    | None ->
        let entries =
          List.map decode_entry
            (Value.to_list_exn (Proc.read ~tid:c.tid (c.t.ver_of x)))
        in
        (* newest visible version with ts <= snapshot *)
        let best =
          List.fold_left
            (fun acc e ->
              match entry_ts c e with
              | Some ts when ts <= c.snap -> (
                  let _, _, v = e in
                  match acc with
                  | Some (ts', _) when ts' >= ts -> acc
                  | _ -> Some (ts, v))
              | _ -> acc)
            None entries
        in
        Ok (match best with Some (_, v) -> v | None -> Value.initial)

let write c x v =
  if c.dead then Error ()
  else begin
    c.wset <- (x, v) :: List.remove_assoc x c.wset;
    Ok ()
  end

let max_versions = 8

let rec install c x v =
  let oid = c.t.ver_of x in
  let cur = Proc.read ~tid:c.tid oid in
  let entries = Value.to_list_exn cur in
  let entry =
    Value.list [ Value.int (Oid.to_int c.record); Value.int (-1); v ]
  in
  let keep =
    if List.length entries >= max_versions then
      List.filteri (fun i _ -> i < max_versions - 1) entries
    else entries
  in
  if
    Proc.cas ~tid:c.tid oid ~expected:cur
      ~desired:(Value.list (entry :: keep))
  then ()
  else install c x v (* interfering step: retry, obstruction-free *)

let try_commit c =
  if c.dead then Error ()
  else begin
    if c.wset <> [] then begin
      List.iter (fun (x, v) -> install c x v) (List.rev c.wset);
      (* seal: from here on helpers may finish the publish for us *)
      ignore
        (Proc.cas ~tid:c.tid c.record
           ~expected:(Value.pair (Value.int 0) (Value.int (-1)))
           ~desired:(Value.pair (Value.int 3) (Value.int (-1))));
      let ts = 1 + Proc.fetch_add ~tid:c.tid c.t.clock 1 in
      (* publish atomically: every pending version becomes visible here
         (the CAS fails harmlessly if a helper already published) *)
      ignore
        (Proc.cas ~tid:c.tid c.record
           ~expected:(Value.pair (Value.int 3) (Value.int (-1)))
           ~desired:(Value.pair (Value.int 1) (Value.int ts)))
    end;
    c.dead <- true;
    Ok ()
  end

let abort c = c.dead <- true
