(* All TM implementations, one per corner of the paper's triangle plus the
   candidate the theorem kills. *)

let all : Tm_intf.impl list =
  [
    (module Tl_tm);
    (module Pram_tm);
    (module Dstm_tm);
    (module Si_tm);
    (module Candidate_tm);
    (module Tl2_tm);
    (module Norec_tm);
    (module Llsc_tm);
  ]

let name (module M : Tm_intf.S) = M.name
let describe (module M : Tm_intf.S) = M.describe

let find n : Tm_intf.impl option =
  List.find_opt (fun (module M : Tm_intf.S) -> M.name = n) all

let find_exn n =
  match find n with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Registry.find_exn: %s" n)
