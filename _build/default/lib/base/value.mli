(** Values stored in base objects and data items.

    The paper models data items as integer cells (every item starts at 0),
    but base objects of real TM algorithms hold richer state: version
    pairs, locator tuples, commit records.  This small structured universe
    covers all of them, so that one {!Base_object} type serves every
    implementation. *)

type t =
  | VUnit
  | VBool of bool
  | VInt of int
  | VStr of string
  | VPair of t * t
  | VList of t list

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

(** {1 Constructors} *)

val unit : t
val bool : bool -> t
val int : int -> t
val str : string -> t
val pair : t -> t -> t
val list : t list -> t

val initial : t
(** The initial value of every data item — the paper's 0. *)

(** {1 Projections}

    The [_exn] variants raise [Invalid_argument] on a constructor
    mismatch; they are used by TM implementations whose object layouts are
    invariants, so a mismatch is a bug, not a runtime condition. *)

val to_int : t -> int option
val to_int_exn : t -> int
val to_bool : t -> bool option
val to_bool_exn : t -> bool
val to_pair_exn : t -> t * t
val to_list_exn : t -> t list

(** {1 Printing} *)

val pp_compact : Format.formatter -> t -> unit
(** Compact rendering for tables and figures: integers print bare. *)

val to_string : t -> string
(** [to_string v] is [pp_compact] rendered to a string. *)
