(** Transaction identifiers.

    Chosen by the client — the PCL harness uses 1..7 for the paper's
    T1..T7.  Uniqueness within a run is the client's responsibility and is
    checked by history well-formedness. *)

type t = int

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

val v : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int

val pp_name : Format.formatter -> t -> unit
(** Prints ["T3"]-style names, as in the paper. *)

val name : t -> string

module Set : Set.S with type elt = int
module Map : Map.S with type key = int
