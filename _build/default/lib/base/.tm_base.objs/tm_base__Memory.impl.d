lib/base/memory.pp.ml: Access_log Array Base_object Fmt Hashtbl Oid Primitive Printf Value
