lib/base/primitive.pp.ml: Fmt Ppx_deriving_runtime Value
