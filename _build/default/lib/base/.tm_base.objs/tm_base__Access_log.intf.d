lib/base/access_log.pp.mli: Format Oid Primitive Tid Value
