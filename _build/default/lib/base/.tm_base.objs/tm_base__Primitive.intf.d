lib/base/primitive.pp.mli: Format Value
