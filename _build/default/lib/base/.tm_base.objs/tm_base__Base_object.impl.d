lib/base/base_object.pp.ml: Int Primitive Set Value
