lib/base/oid.pp.mli: Format Map Set
