lib/base/tid.pp.mli: Format Map Set
