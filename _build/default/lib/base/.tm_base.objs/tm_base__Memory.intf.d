lib/base/memory.pp.mli: Access_log Format Oid Primitive Tid Value
