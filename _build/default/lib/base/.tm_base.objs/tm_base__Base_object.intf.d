lib/base/base_object.pp.mli: Primitive Value
