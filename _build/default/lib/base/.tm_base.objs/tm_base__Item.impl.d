lib/base/item.pp.ml: Map Ppx_deriving_runtime Set String
