lib/base/oid.pp.ml: Int Map Ppx_deriving_runtime Set
