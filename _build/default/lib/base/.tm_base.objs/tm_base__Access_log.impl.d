lib/base/access_log.pp.ml: Fmt List Oid Option Primitive Tid Value
