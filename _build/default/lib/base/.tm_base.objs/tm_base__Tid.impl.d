lib/base/tid.pp.ml: Fmt Int Map Ppx_deriving_runtime Set
