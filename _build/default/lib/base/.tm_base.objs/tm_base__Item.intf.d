lib/base/item.pp.mli: Format Map Set
