lib/base/value.pp.mli: Format
