(* Transaction identifiers.  Chosen by the client (the PCL harness uses
   1..7 for the paper's T1..T7); uniqueness per run is the client's
   responsibility and is enforced by history well-formedness checks. *)

type t = int [@@deriving show { with_path = false }, eq, ord]

let v (i : int) : t =
  if i < 0 then invalid_arg "Tid.v: negative" else i

let to_int (t : t) : int = t

let pp_name ppf (t : t) = Fmt.pf ppf "T%d" t
let name (t : t) = Fmt.str "%a" pp_name t

module Set = Set.Make (Int)
module Map = Map.Make (Int)
