(* Base-object identifiers.  Allocation is owned by {!Memory}; identifiers
   are dense non-negative integers so logs index arrays directly. *)

type t = int [@@deriving show { with_path = false }, eq, ord]

let to_int (t : t) : int = t
let of_int (i : int) : t =
  if i < 0 then invalid_arg "Oid.of_int: negative" else i

let hash (t : t) = t

module Set = Set.Make (Int)
module Map = Map.Make (Int)
