(** Base-object identifiers.

    Identifiers are dense non-negative integers allocated by {!Memory}, so
    access logs can index arrays directly and figures can print them
    stably across replays (allocation is deterministic). *)

type t = int

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int
val hash : t -> int

module Set : Set.S with type elt = int
module Map : Map.S with type key = int
