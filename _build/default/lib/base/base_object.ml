(* A base object: a value cell plus lock/reservation words so that the same
   object type can serve as register, CAS word, fetch&add counter, lock, or
   LL/SC cell.  [apply] is the atomic step semantics. *)

module Int_set = Set.Make (Int)

type t = {
  mutable value : Value.t;
  mutable lock_holder : int option;
  mutable reservations : Int_set.t;
      (* pids holding a valid load-linked reservation *)
}

let create value = { value; lock_holder = None; reservations = Int_set.empty }

let value t = t.value
let lock_holder t = t.lock_holder
let locked t = t.lock_holder <> None

(** [apply t prim] atomically applies [prim]; returns [(response, changed)]
    where [changed] reports whether any component of the state mutated. *)
let apply t (prim : Primitive.t) : Value.t * bool =
  match prim with
  | Read -> (t.value, false)
  | Write v ->
      let changed = not (Value.equal t.value v) in
      t.value <- v;
      (* any write invalidates outstanding LL reservations *)
      let changed = changed || not (Int_set.is_empty t.reservations) in
      t.reservations <- Int_set.empty;
      (Value.unit, changed)
  | Cas { expected; desired } ->
      if Value.equal t.value expected then begin
        let changed =
          (not (Value.equal t.value desired))
          || not (Int_set.is_empty t.reservations)
        in
        t.value <- desired;
        t.reservations <- Int_set.empty;
        (Value.bool true, changed)
      end
      else (Value.bool false, false)
  | Fetch_add n ->
      let old = Value.to_int_exn t.value in
      t.value <- Value.int (old + n);
      t.reservations <- Int_set.empty;
      (Value.int old, n <> 0)
  | Try_lock pid -> (
      match t.lock_holder with
      | None ->
          t.lock_holder <- Some pid;
          (Value.bool true, true)
      | Some holder -> (Value.bool (holder = pid), false))
  | Unlock pid -> (
      match t.lock_holder with
      | Some holder when holder = pid ->
          t.lock_holder <- None;
          (Value.unit, true)
      | Some _ | None -> (Value.unit, false))
  | Load_linked pid ->
      t.reservations <- Int_set.add pid t.reservations;
      (t.value, false)
  | Store_conditional (pid, v) ->
      if Int_set.mem pid t.reservations then begin
        t.value <- v;
        t.reservations <- Int_set.empty;
        (Value.bool true, true)
      end
      else (Value.bool false, false)
