(* Data items — the high-level pieces of data accessed by transactions,
   as opposed to the base objects the TM uses to represent them. *)

type t = string [@@deriving show { with_path = false }, eq, ord]

let v (s : string) : t =
  if s = "" then invalid_arg "Item.v: empty name" else s

let name (t : t) : string = t

module Set = Set.Make (String)
module Map = Map.Make (String)

let set_of_list l = Set.of_list l
