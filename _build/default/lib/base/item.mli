(** Data items — the high-level pieces of data accessed by transactions
    (the paper's x, y, b1, e1_3, ...), as opposed to the base objects a TM
    uses to represent them. *)

type t = string

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

val v : string -> t
(** [v name] names a data item.
    @raise Invalid_argument on the empty string. *)

val name : t -> string

module Set : Set.S with type elt = string
module Map : Map.S with type key = string

val set_of_list : t list -> Set.t
