(* Conflicts and conflict graphs (Section 2/3).

   Two (static) transactions conflict if their data sets intersect.  The
   conflict graph of an execution interval has transactions as nodes and
   conflict edges; the weaker DAP variants allow contention between
   transactions connected by a path. *)

open Tm_base

(** Static data sets: D(T) is derivable from the transaction's code.  The
    PCL harness registers the declared read/write sets; dynamic workloads
    register the sets actually accessed. *)
type data_sets = (Tid.t * Item.Set.t) list

let data_set (ds : data_sets) tid =
  match List.assoc_opt tid ds with
  | Some s -> s
  | None -> Item.Set.empty

let conflict (ds : data_sets) t1 t2 =
  (not (Tid.equal t1 t2))
  && not (Item.Set.is_empty (Item.Set.inter (data_set ds t1) (data_set ds t2)))

(** Adjacency-list conflict graph over the given transactions. *)
type graph = { nodes : Tid.t list; adj : (Tid.t, Tid.t list) Hashtbl.t }

let graph (ds : data_sets) (nodes : Tid.t list) : graph =
  let adj = Hashtbl.create 16 in
  List.iter
    (fun t1 ->
      let neighbours =
        List.filter (fun t2 -> conflict ds t1 t2) nodes
      in
      Hashtbl.replace adj t1 neighbours)
    nodes;
  { nodes; adj }

let neighbours (g : graph) tid =
  Option.value ~default:[] (Hashtbl.find_opt g.adj tid)

(** Length (in edges) of a shortest conflict path between two transactions,
    if one exists.  [Some 0] means [t1 = t2]. *)
let distance (g : graph) t1 t2 : int option =
  if Tid.equal t1 t2 then Some 0
  else begin
    let visited = Hashtbl.create 16 in
    Hashtbl.replace visited t1 ();
    let q = Queue.create () in
    Queue.push (t1, 0) q;
    let found = ref None in
    while !found = None && not (Queue.is_empty q) do
      let node, d = Queue.pop q in
      List.iter
        (fun n ->
          if not (Hashtbl.mem visited n) then begin
            Hashtbl.replace visited n ();
            if Tid.equal n t2 then found := Some (d + 1)
            else Queue.push (n, d + 1) q
          end)
        (neighbours g node)
    done;
    !found
  end

let connected (g : graph) t1 t2 = Option.is_some (distance g t1 t2)
