(** Conflicts and conflict graphs (Sections 2-3).

    Two (static) transactions conflict if their data sets intersect; the
    conflict graph of an execution has its transactions as nodes and
    conflict edges.  The weaker DAP variants allow contention between
    transactions connected by a path. *)

open Tm_base

type data_sets = (Tid.t * Item.Set.t) list
(** D(T) per transaction — derivable from static transaction code, or
    collected from the accesses actually performed. *)

val data_set : data_sets -> Tid.t -> Item.Set.t
val conflict : data_sets -> Tid.t -> Tid.t -> bool

type graph = { nodes : Tid.t list; adj : (Tid.t, Tid.t list) Hashtbl.t }

val graph : data_sets -> Tid.t list -> graph
val neighbours : graph -> Tid.t -> Tid.t list

val distance : graph -> Tid.t -> Tid.t -> int option
(** Length in edges of a shortest conflict path, [Some 0] for equal
    transactions, [None] if disconnected. *)

val connected : graph -> Tid.t -> Tid.t -> bool
