lib/dap/graph_dap.ml: Access_log Conflict Contention List Oid Tid Tm_base
