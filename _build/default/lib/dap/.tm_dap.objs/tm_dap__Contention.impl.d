lib/dap/contention.ml: Access_log Hashtbl List Oid Option Primitive Tid Tm_base
