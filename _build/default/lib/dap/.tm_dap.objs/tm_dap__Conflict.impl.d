lib/dap/conflict.ml: Hashtbl Item List Option Queue Tid Tm_base
