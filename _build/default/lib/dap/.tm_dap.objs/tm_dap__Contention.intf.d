lib/dap/contention.mli: Access_log Oid Tid Tm_base
