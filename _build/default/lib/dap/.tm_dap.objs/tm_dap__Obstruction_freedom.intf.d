lib/dap/obstruction_freedom.mli: Access_log Format History Tid Tm_base Tm_trace
