lib/dap/strict_dap.ml: Access_log Conflict Contention Fmt List Oid Tid Tm_base
