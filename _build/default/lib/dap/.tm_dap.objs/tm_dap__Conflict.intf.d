lib/dap/conflict.mli: Hashtbl Item Tid Tm_base
