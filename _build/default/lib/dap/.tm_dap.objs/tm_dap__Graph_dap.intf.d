lib/dap/graph_dap.mli: Access_log Conflict Oid Tid Tm_base
