lib/dap/strict_dap.mli: Access_log Conflict Format Oid Tid Tm_base
