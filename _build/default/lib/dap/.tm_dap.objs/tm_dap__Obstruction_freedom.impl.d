lib/dap/obstruction_freedom.ml: Access_log Event Fmt History List Option Tid Tm_base Tm_trace
