(** The weaker conflict-graph variants of disjoint-access-parallelism
    (Section 2): contention is allowed between transactions connected by a
    conflict path in the execution — bounded by [d] for the d-local
    contention property [Afek et al.], unbounded for the variant of
    [Attiya-Hillel-Milani 09] and [Perelman-Fan-Keidar 10]. *)

open Tm_base

type violation = {
  t1 : Tid.t;
  t2 : Tid.t;
  objects : Oid.t list;
  distance : int option;  (** conflict-graph distance, None = disconnected *)
}

val violations :
  ?d:int ->
  data_sets:Conflict.data_sets ->
  Access_log.entry list ->
  violation list

val holds :
  ?d:int -> data_sets:Conflict.data_sets -> Access_log.entry list -> bool
