(** Obstruction-freedom (Section 3): a transaction may be aborted only if
    other processes take steps during its execution interval.  The
    detector flags every abort without step contention; solo-run
    non-termination (blocking) is detected separately by scheduler step
    budgets. *)

open Tm_base
open Tm_trace

type violation = {
  tid : Tid.t;
  interval : int * int;  (** step interval of the transaction *)
}

val pp_violation : Format.formatter -> violation -> unit

val step_interval :
  History.t -> Access_log.entry list -> Tid.t -> (int * int) option

val violations : History.t -> Access_log.entry list -> violation list
val holds : History.t -> Access_log.entry list -> bool
