(** Strict disjoint-access-parallelism (Section 3): two transactions
    contend on a base object only if their data sets intersect.  The
    checker is per-execution — one violation refutes strict DAP of the
    implementation. *)

open Tm_base

type violation = { t1 : Tid.t; t2 : Tid.t; objects : Oid.t list }

val pp_violation :
  name_of:(Oid.t -> string) -> Format.formatter -> violation -> unit

val violations :
  data_sets:Conflict.data_sets -> Access_log.entry list -> violation list

val holds : data_sets:Conflict.data_sets -> Access_log.entry list -> bool
