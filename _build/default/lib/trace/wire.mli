(** A compact textual wire format for histories — save, diff and feed
    histories to the checkers from the command line.

    One token per event: invocations [+b1@2 +r1(x) +w1(x)=5 +c1 +a1],
    responses [-ok1 -v1=0 -C1 -A1]; [#] starts a comment.  Response
    operations are reconstructed from the transaction's pending
    invocation, which is unambiguous for well-formed histories.  Values
    are integers. *)

val print_event : Event.t -> string

val print : History.t -> string
(** @raise Invalid_argument on non-integer values. *)

val parse : string -> (History.t, string) result
