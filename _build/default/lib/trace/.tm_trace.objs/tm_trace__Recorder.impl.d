lib/trace/recorder.pp.ml: Event History List Tid Tm_base
