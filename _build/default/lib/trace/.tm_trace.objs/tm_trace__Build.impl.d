lib/trace/build.pp.ml: Event Hashtbl History Item List Printf Tid Tm_base Value
