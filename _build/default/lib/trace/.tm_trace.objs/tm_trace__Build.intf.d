lib/trace/build.pp.mli: History Tm_base Value
