lib/trace/recorder.pp.mli: Event History Tid Tm_base
