lib/trace/wire.pp.ml: Buffer Event Hashtbl History Item List Printf String Tid Tm_base Value
