lib/trace/event.pp.ml: Fmt Item Ppx_deriving_runtime Tid Tm_base Value
