lib/trace/history.pp.mli: Event Format Item Tid Tm_base Value
