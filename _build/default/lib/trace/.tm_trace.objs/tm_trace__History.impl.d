lib/trace/history.pp.ml: Array Event Fmt Hashtbl Item List Option Ppx_deriving_runtime Result Tid Tm_base Value
