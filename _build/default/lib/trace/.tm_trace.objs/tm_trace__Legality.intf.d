lib/trace/legality.pp.mli: Format History Item Tid Tm_base Value
