lib/trace/event.pp.mli: Format Item Tid Tm_base Value
