lib/trace/wire.pp.mli: Event History
