lib/trace/legality.pp.ml: Event Fmt Hashtbl History Item List Result Tid Tm_base Value
