(* Accumulates history events during a run.  The scheduler/TM front-end
   calls [inv]/[resp] around each transactional routine; [at] is the global
   step count at the time of the event, which places events on the same
   axis as access-log steps. *)

open Tm_base

type t = { mutable events_rev : Event.t list; mutable count : int }

let create () = { events_rev = []; count = 0 }

let add t e =
  t.events_rev <- e :: t.events_rev;
  t.count <- t.count + 1

let inv t ~tid ~pid ~at op = add t (Event.Inv { tid; pid; op; at })

let resp t ~tid ~pid ~at op resp =
  add t (Event.Resp { tid; pid; op; resp; at })

let history t = History.of_list (List.rev t.events_rev)
let length t = t.count

let _ = Tid.equal (* keep tm_base opened deps explicit *)
