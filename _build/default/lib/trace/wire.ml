(* A compact textual wire format for histories, so that histories can be
   saved, diffed, and fed to the checkers from the command line
   (`pcl_tm check-file`).

   One token per event, whitespace-separated; `#` starts a line comment.

     invocations                      responses
     +b<tid>@<pid>   begin            -ok<tid>     R_ok
     +r<tid>(<item>) read             -v<tid>=<n>  R_value n
     +w<tid>(<item>)=<n> write        -C<tid>      committed
     +c<tid>         try-commit       -A<tid>      aborted
     +a<tid>         abort call

   Responses name only the transaction: the operation is reconstructed
   from the transaction's pending invocation, which is unambiguous for
   well-formed histories.  Values are restricted to integers — all the
   checkers need.  Example (a lost update):

     +b1@1 -ok1  +b2@2 -ok2
     +r1(x) -v1=0  +r2(x) -v2=0
     +w1(x)=1 -ok1  +w2(x)=2 -ok2
     +c1 -C1  +c2 -C2
*)

open Tm_base

let print_value v =
  match Value.to_int v with
  | Some n -> string_of_int n
  | None ->
      invalid_arg
        (Printf.sprintf "Wire.print: non-integer value %s" (Value.show v))

let print_event (e : Event.t) : string =
  match e with
  | Event.Inv { tid; pid; op; _ } -> (
      let t = Tid.to_int tid in
      match op with
      | Event.Begin -> Printf.sprintf "+b%d@%d" t pid
      | Event.Read x -> Printf.sprintf "+r%d(%s)" t (Item.name x)
      | Event.Write (x, v) ->
          Printf.sprintf "+w%d(%s)=%s" t (Item.name x) (print_value v)
      | Event.Try_commit -> Printf.sprintf "+c%d" t
      | Event.Abort_call -> Printf.sprintf "+a%d" t)
  | Event.Resp { tid; resp; _ } -> (
      let t = Tid.to_int tid in
      match resp with
      | Event.R_ok -> Printf.sprintf "-ok%d" t
      | Event.R_value v -> Printf.sprintf "-v%d=%s" t (print_value v)
      | Event.R_committed -> Printf.sprintf "-C%d" t
      | Event.R_aborted -> Printf.sprintf "-A%d" t)

(** Render a history in the wire format, one transaction event per token,
    eight tokens per line. *)
let print (h : History.t) : string =
  let buf = Buffer.create 256 in
  List.iteri
    (fun i e ->
      if i > 0 then
        Buffer.add_string buf (if i mod 8 = 0 then "\n" else " ");
      Buffer.add_string buf (print_event e))
    (History.to_list h);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* split "r12(x)=3"-style payloads *)
let scan_tid_rest (s : string) : int * string =
  let n = String.length s in
  let rec digits i = if i < n && s.[i] >= '0' && s.[i] <= '9' then digits (i + 1) else i in
  let stop = digits 0 in
  if stop = 0 then fail "expected a transaction id in %S" s;
  (int_of_string (String.sub s 0 stop), String.sub s stop (n - stop))

let scan_paren (s : string) : string * string =
  if String.length s = 0 || s.[0] <> '(' then fail "expected '(' in %S" s;
  match String.index_opt s ')' with
  | None -> fail "missing ')' in %S" s
  | Some j ->
      (String.sub s 1 (j - 1), String.sub s (j + 1) (String.length s - j - 1))

let scan_eq_int (s : string) : int =
  if String.length s = 0 || s.[0] <> '=' then fail "expected '=' in %S" s;
  match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
  | Some n -> n
  | None -> fail "expected an integer in %S" s

type pending = { pid : int; mutable last_inv : Event.op option }

let parse (text : string) : (History.t, string) result =
  let tokens =
    String.split_on_char '\n' text
    |> List.concat_map (fun line ->
           let line =
             match String.index_opt line '#' with
             | Some i -> String.sub line 0 i
             | None -> line
           in
           String.split_on_char ' ' line)
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "")
  in
  let txns : (int, pending) Hashtbl.t = Hashtbl.create 8 in
  let state t =
    match Hashtbl.find_opt txns t with
    | Some p -> p
    | None -> fail "T%d used before its begin" t
  in
  let events = ref [] in
  let at = ref 0 in
  let emit e =
    events := e :: !events;
    incr at
  in
  let parse_token tok =
    let n = String.length tok in
    if n < 2 then fail "token too short: %S" tok;
    let body = String.sub tok 2 (n - 2) in
    match (tok.[0], tok.[1]) with
    | '+', 'b' ->
        let t, rest = scan_tid_rest body in
        let pid =
          if String.length rest > 0 && rest.[0] = '@' then
            match int_of_string_opt (String.sub rest 1 (String.length rest - 1)) with
            | Some p -> p
            | None -> fail "bad pid in %S" tok
          else fail "begin needs @pid: %S" tok
        in
        Hashtbl.replace txns t { pid; last_inv = Some Event.Begin };
        emit (Event.Inv { tid = Tid.v t; pid; op = Event.Begin; at = !at })
    | '+', 'r' ->
        let t, rest = scan_tid_rest body in
        let item, _ = scan_paren rest in
        let p = state t in
        let op = Event.Read (Item.v item) in
        p.last_inv <- Some op;
        emit (Event.Inv { tid = Tid.v t; pid = p.pid; op; at = !at })
    | '+', 'w' ->
        let t, rest = scan_tid_rest body in
        let item, rest = scan_paren rest in
        let v = scan_eq_int rest in
        let p = state t in
        let op = Event.Write (Item.v item, Value.int v) in
        p.last_inv <- Some op;
        emit (Event.Inv { tid = Tid.v t; pid = p.pid; op; at = !at })
    | '+', 'c' ->
        let t, _ = scan_tid_rest body in
        let p = state t in
        p.last_inv <- Some Event.Try_commit;
        emit
          (Event.Inv
             { tid = Tid.v t; pid = p.pid; op = Event.Try_commit; at = !at })
    | '+', 'a' ->
        let t, _ = scan_tid_rest body in
        let p = state t in
        p.last_inv <- Some Event.Abort_call;
        emit
          (Event.Inv
             { tid = Tid.v t; pid = p.pid; op = Event.Abort_call; at = !at })
    | '-', _ ->
        let kind, payload =
          match tok.[1] with
          | 'o' ->
              if n < 3 || tok.[2] <> 'k' then fail "bad token %S" tok
              else (`Ok, String.sub tok 3 (n - 3))
          | 'v' -> (`Value, body)
          | 'C' -> (`Committed, body)
          | 'A' -> (`Aborted, body)
          | _ -> fail "bad response token %S" tok
        in
        let t, rest = scan_tid_rest payload in
        let p = state t in
        let op =
          match p.last_inv with
          | Some op -> op
          | None -> fail "response without pending invocation for T%d" t
        in
        let resp =
          match kind with
          | `Ok -> Event.R_ok
          | `Committed -> Event.R_committed
          | `Aborted -> Event.R_aborted
          | `Value -> Event.R_value (Value.int (scan_eq_int rest))
        in
        p.last_inv <- None;
        emit (Event.Resp { tid = Tid.v t; pid = p.pid; op; resp; at = !at })
    | _ -> fail "unknown token %S" tok
  in
  match List.iter parse_token tokens with
  | () -> Ok (History.of_list (List.rev !events))
  | exception Parse_error msg -> Error msg
