(** A tiny DSL for writing histories by hand — used by tests, the anomaly
    catalogue and the generators.  Each instruction expands to an
    invocation/response pair; concurrency is expressed by interleaving
    instructions of different transactions.

    Example (a lost update):
    {[
      Build.history
        [ B (1, 1); B (2, 2);
          R (1, "x", 0); R (2, "x", 0);
          W (1, "x", 1); W (2, "x", 2);
          C 1; C 2 ]
    ]} *)

open Tm_base

type instr =
  | B of int * int  (** [B (tid, pid)] — begin . ok *)
  | R of int * string * int  (** read returning an int value *)
  | Rv of int * string * Value.t  (** read returning an arbitrary value *)
  | W of int * string * int  (** write of an int value . ok *)
  | Wv of int * string * Value.t
  | Ra of int * string  (** read invocation answered A_T *)
  | Wa of int * string * int  (** write invocation answered A_T *)
  | C of int  (** commit . C_T *)
  | Ca of int  (** commit . A_T *)
  | Cp of int  (** commit invocation only — commit-pending *)
  | A of int  (** abort_T . A_T *)

val history : instr list -> History.t
(** @raise Invalid_argument if a transaction is used before its [B]. *)
