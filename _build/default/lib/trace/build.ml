(* A tiny DSL for writing histories by hand — used by tests, the anomaly
   catalogue, and the qcheck generators.  Each instruction expands to an
   invocation/response pair; concurrency is expressed by interleaving
   instructions of different transactions. *)

open Tm_base

type instr =
  | B of int * int  (** [B (tid, pid)] — begin . ok *)
  | R of int * string * int  (** read returning an int value *)
  | Rv of int * string * Value.t  (** read returning an arbitrary value *)
  | W of int * string * int  (** write of an int value . ok *)
  | Wv of int * string * Value.t
  | Ra of int * string  (** read invocation answered A_T *)
  | Wa of int * string * int  (** write invocation answered A_T *)
  | C of int  (** commit . C_T *)
  | Ca of int  (** commit . A_T *)
  | Cp of int  (** commit invocation only — commit-pending *)
  | A of int  (** abort_T . A_T *)

let history (instrs : instr list) : History.t =
  let pid_of = Hashtbl.create 8 in
  let at = ref 0 in
  let events = ref [] in
  let push e = events := e :: !events in
  let emit tid op responses =
    let pid =
      match Hashtbl.find_opt pid_of tid with
      | Some p -> p
      | None ->
          invalid_arg
            (Printf.sprintf "Build.history: T%d used before B" tid)
    in
    push (Event.Inv { tid = Tid.v tid; pid; op; at = !at });
    incr at;
    List.iter
      (fun resp ->
        push (Event.Resp { tid = Tid.v tid; pid; op; resp; at = !at });
        incr at)
      responses
  in
  let step = function
    | B (tid, pid) ->
        Hashtbl.replace pid_of tid pid;
        emit tid Event.Begin [ Event.R_ok ]
    | R (tid, x, v) ->
        emit tid (Event.Read (Item.v x)) [ Event.R_value (Value.int v) ]
    | Rv (tid, x, v) -> emit tid (Event.Read (Item.v x)) [ Event.R_value v ]
    | W (tid, x, v) ->
        emit tid (Event.Write (Item.v x, Value.int v)) [ Event.R_ok ]
    | Wv (tid, x, v) -> emit tid (Event.Write (Item.v x, v)) [ Event.R_ok ]
    | Ra (tid, x) -> emit tid (Event.Read (Item.v x)) [ Event.R_aborted ]
    | Wa (tid, x, v) ->
        emit tid (Event.Write (Item.v x, Value.int v)) [ Event.R_aborted ]
    | C tid -> emit tid Event.Try_commit [ Event.R_committed ]
    | Ca tid -> emit tid Event.Try_commit [ Event.R_aborted ]
    | Cp tid -> emit tid Event.Try_commit []
    | A tid -> emit tid Event.Abort_call [ Event.R_aborted ]
  in
  List.iter step instrs;
  History.of_list (List.rev !events)
