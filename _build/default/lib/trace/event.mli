(** History events: invocations and responses of the transactional
    routines begin_T, x.read(), x.write(v), commit_T and abort_T
    (Section 3, "Histories"). *)

open Tm_base

type op =
  | Begin
  | Read of Item.t
  | Write of Item.t * Value.t
  | Try_commit
  | Abort_call  (** the explicit abort_T routine *)

val pp_op : Format.formatter -> op -> unit
val show_op : op -> string
val equal_op : op -> op -> bool

type resp =
  | R_ok  (** response to begin / successful write *)
  | R_value of Value.t  (** response to a successful read *)
  | R_committed  (** C_T *)
  | R_aborted  (** A_T *)

val pp_resp : Format.formatter -> resp -> unit
val show_resp : resp -> string
val equal_resp : resp -> resp -> bool

type t =
  | Inv of { tid : Tid.t; pid : int; op : op; at : int }
  | Resp of { tid : Tid.t; pid : int; op : op; resp : resp; at : int }

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool

val tid : t -> Tid.t
val pid : t -> int

val at : t -> int
(** Global step count at which the event occurred.  Events are not steps
    themselves; [at] places them on the same axis as access-log steps. *)

val op : t -> op
val is_inv : t -> bool
val is_resp : t -> bool

val pp_compact : Format.formatter -> t -> unit
