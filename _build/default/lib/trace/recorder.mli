(** Accumulates history events during a run.  The TM front-end
    ({!Tm_impl.Txn_api}) calls {!inv}/{!resp} around each transactional
    routine; [at] is the global step count at event time, placing events
    on the same axis as access-log steps. *)

open Tm_base

type t

val create : unit -> t
val add : t -> Event.t -> unit
val inv : t -> tid:Tid.t -> pid:int -> at:int -> Event.op -> unit
val resp : t -> tid:Tid.t -> pid:int -> at:int -> Event.op -> Event.resp -> unit
val history : t -> History.t
val length : t -> int
