(** Legality of complete sequential histories (Section 3).

    Transaction T is legal in a sequential history H if every x.read()
    returning v satisfies: (i) if T wrote x before the read, v is the
    argument of the last such write; otherwise (ii) if a committed
    transaction preceding T wrote x, v is the argument of the last such
    write in H; otherwise (iii) v is the initial value of x. *)

open Tm_base

type violation = {
  tid : Tid.t;
  item : Item.t;
  got : Value.t;
  expected : Value.t;
}

val pp_violation : Format.formatter -> violation -> unit

val check :
  ?initial:(Item.t -> Value.t) -> History.t -> (unit, violation) result
(** [check h] checks legality of the sequential history [h] ([initial]
    defaults to the paper's 0 for every item).
    @raise Invalid_argument if [h] is not sequential. *)

val legal : ?initial:(Item.t -> Value.t) -> History.t -> bool
