(* History events: invocations and responses of the transactional routines
   begin_T, x.read(), x.write(v), commit_T, abort_T (Section 3,
   "Histories"). *)

open Tm_base

type op =
  | Begin
  | Read of Item.t
  | Write of Item.t * Value.t
  | Try_commit
  | Abort_call  (** the explicit [abort_T] routine *)
[@@deriving show { with_path = false }, eq]

type resp =
  | R_ok  (** response to begin / successful write *)
  | R_value of Value.t  (** response to a successful read *)
  | R_committed  (** C_T *)
  | R_aborted  (** A_T *)
[@@deriving show { with_path = false }, eq]

type t =
  | Inv of { tid : Tid.t; pid : int; op : op; at : int }
  | Resp of { tid : Tid.t; pid : int; op : op; resp : resp; at : int }
[@@deriving show { with_path = false }, eq]

let tid = function Inv { tid; _ } | Resp { tid; _ } -> tid
let pid = function Inv { pid; _ } | Resp { pid; _ } -> pid

(** Global step count at which the event occurred (events are not steps of
    the access log themselves; [at] places them on the step axis). *)
let at = function Inv { at; _ } | Resp { at; _ } -> at

let op = function Inv { op; _ } | Resp { op; _ } -> op

let is_inv = function Inv _ -> true | Resp _ -> false
let is_resp = function Inv _ -> false | Resp _ -> true

let pp_compact ppf = function
  | Inv { tid; op; _ } -> (
      match op with
      | Begin -> Fmt.pf ppf "inv begin_%s" (Tid.name tid)
      | Read x -> Fmt.pf ppf "inv %s:%s.read" (Tid.name tid) (Item.name x)
      | Write (x, v) ->
          Fmt.pf ppf "inv %s:%s.write(%a)" (Tid.name tid) (Item.name x)
            Value.pp_compact v
      | Try_commit -> Fmt.pf ppf "inv commit_%s" (Tid.name tid)
      | Abort_call -> Fmt.pf ppf "inv abort_%s" (Tid.name tid))
  | Resp { tid; resp; op; _ } -> (
      match resp with
      | R_ok -> Fmt.pf ppf "resp %s:ok" (Tid.name tid)
      | R_value v ->
          let item =
            match op with Read x -> Item.name x | _ -> "?"
          in
          Fmt.pf ppf "resp %s:%s=%a" (Tid.name tid) item Value.pp_compact v
      | R_committed -> Fmt.pf ppf "resp C_%s" (Tid.name tid)
      | R_aborted -> Fmt.pf ppf "resp A_%s" (Tid.name tid))
