(* Legality of complete sequential histories (Section 3):

   Transaction T is legal in a sequential history H if for every x.read()
   by T returning v: (i) if T wrote x before the read, v is the argument of
   the last such write; otherwise (ii) if a committed transaction preceding
   T wrote x, v is the argument of the last such write in H; otherwise
   (iii) v is the initial value of x.

   A complete sequential history is legal if every transaction is legal. *)

open Tm_base

type violation = {
  tid : Tid.t;
  item : Item.t;
  got : Value.t;
  expected : Value.t;
}

let pp_violation ppf v =
  Fmt.pf ppf "%s read %s=%a, legality requires %a" (Tid.name v.tid)
    (Item.name v.item) Value.pp_compact v.got Value.pp_compact v.expected

(** [check ?initial h] checks legality of the complete sequential history
    [h].  [initial] gives initial item values (default: the paper's 0). *)
let check ?(initial = fun (_ : Item.t) -> Value.initial) (h : History.t) :
    (unit, violation) result =
  if not (History.sequential h) then
    invalid_arg "Legality.check: history is not sequential";
  let committed_state : (Item.t, Value.t) Hashtbl.t = Hashtbl.create 16 in
  let lookup x =
    match Hashtbl.find_opt committed_state x with
    | Some v -> v
    | None -> initial x
  in
  let check_txn tid : (unit, violation) result =
    (* replay T's operations in order, tracking its own writes *)
    let own : (Item.t, Value.t) Hashtbl.t = Hashtbl.create 8 in
    let rec go = function
      | [] -> Ok ()
      | Event.Inv { op = Event.Write (x, v); _ } :: rest ->
          (* a write becomes "performed by T" once it gets an ok response;
             the next event is that response in a well-formed history *)
          (match rest with
          | Event.Resp { resp = Event.R_ok; _ } :: _ ->
              Hashtbl.replace own x v
          | _ -> ());
          go rest
      | Event.Resp { op = Event.Read x; resp = Event.R_value v; _ } :: rest
        ->
          let expected =
            match Hashtbl.find_opt own x with
            | Some w -> w
            | None -> lookup x
          in
          if Value.equal v expected then go rest
          else Error { tid; item = x; got = v; expected }
      | _ :: rest -> go rest
    in
    go (History.per_txn h tid)
  in
  let rec all = function
    | [] -> Ok ()
    | tid :: rest -> (
        match check_txn tid with
        | Ok () ->
            if History.committed h tid then
              List.iter
                (fun (x, v) -> Hashtbl.replace committed_state x v)
                (History.writes h tid);
            all rest
        | Error _ as e -> e)
  in
  all (History.begin_order h)

let legal ?initial h = Result.is_ok (check ?initial h)
