(** Replay-style simulation: every execution is (re)generated from the
    initial configuration C0 by a schedule, so "the configuration after a
    prefix" is simply the state reached by replaying that prefix — no
    continuation snapshots needed. *)

open Tm_base
open Tm_trace

type setup = Memory.t -> Recorder.t -> (int * (unit -> unit)) list
(** A world under test: given fresh memory and a fresh recorder, set up
    shared state and return the per-process programs to spawn. *)

type result = {
  mem : Memory.t;
  history : History.t;
  log : Access_log.entry list;
  report : Schedule.report;
  finished : int -> bool;
  steps_of : int -> int;  (** steps taken by a pid over the whole run *)
}

val replay : ?budget:int -> setup -> Schedule.atom list -> result

val solo_length :
  ?budget:int -> setup -> prefix:Schedule.atom list -> int -> int option
(** Number of steps a process needs to run solo to completion after
    replaying [prefix], or [None] if it exceeds the budget. *)
