(** Bounded exhaustive exploration of interleavings — a small stateless
    model checker.  Because executions replay from C0, backtracking needs
    no snapshots: a search node is the sequence of pids stepped so far.

    Used to verify properties over {e all} executions of short workloads
    ("every interleaving of these transactions on TL is strictly
    serializable"; "the candidate TM has an interleaving violating
    snapshot isolation"). *)

type stats = {
  mutable executions : int;  (** complete executions enumerated *)
  mutable nodes : int;  (** search-tree nodes (replays) *)
  mutable truncated : bool;  (** a bound was hit before finishing *)
}

val explore :
  ?max_steps:int ->
  ?max_executions:int ->
  ?max_nodes:int ->
  Sim.setup ->
  pids:int list ->
  on_execution:(Sim.result -> unit) ->
  stats

val for_all :
  ?max_steps:int ->
  ?max_executions:int ->
  ?max_nodes:int ->
  Sim.setup ->
  pids:int list ->
  (Sim.result -> bool) ->
  (stats, Sim.result) result
(** Does the property hold of every complete bounded execution?  Returns
    the first counterexample otherwise. *)

val exists :
  ?max_steps:int ->
  ?max_executions:int ->
  ?max_nodes:int ->
  Sim.setup ->
  pids:int list ->
  (Sim.result -> bool) ->
  Sim.result option
(** A witness execution satisfying the property, if the bounded search
    finds one. *)
