lib/runtime/scheduler.mli: Memory Tm_base
