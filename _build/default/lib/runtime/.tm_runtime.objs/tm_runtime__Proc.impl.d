lib/runtime/proc.ml: Effect Oid Primitive Tid Tm_base Value
