lib/runtime/schedule.mli: Format Scheduler
