lib/runtime/explorer.mli: Sim
