lib/runtime/scheduler.ml: Effect Hashtbl List Memory Printf Proc Tm_base Value
