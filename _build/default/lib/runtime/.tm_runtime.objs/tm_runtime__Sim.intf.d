lib/runtime/sim.mli: Access_log History Memory Recorder Schedule Tm_base Tm_trace
