lib/runtime/proc.mli: Effect Oid Primitive Tid Tm_base Value
