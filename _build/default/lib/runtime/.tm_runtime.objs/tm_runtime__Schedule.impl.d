lib/runtime/schedule.ml: Fmt List Scheduler
