lib/runtime/explorer.ml: List Schedule Sim
