lib/runtime/sim.ml: Access_log History List Memory Recorder Schedule Scheduler Tm_base Tm_trace
