(* Tests for the universal constructions: linearizable behaviour under all
   interleavings, helping, wait-free interference bounds, and the non-DAP
   centralization that motivated the paper's Section-2 lineage. *)

open Core

let check = Alcotest.(check bool)

(* run a two-process world where each process performs [ops] via [invoke]
   and records responses *)
let world ~mk_obj ~ops_of =
  let responses : (int, Value.t list) Hashtbl.t = Hashtbl.create 4 in
  let setup mem (_ : Recorder.t) =
    (* a fresh replay starts a fresh world: drop previous responses *)
    Hashtbl.reset responses;
    let invoke = mk_obj mem in
    List.map
      (fun pid ->
        ( pid,
          fun () ->
            List.iter
              (fun op ->
                let r = invoke ~pid op in
                Hashtbl.replace responses pid
                  (Option.value ~default:[] (Hashtbl.find_opt responses pid)
                  @ [ r ]))
              (ops_of pid) ))
      [ 1; 2 ]
  in
  (setup, responses)

let lf_counter mem =
  let c = Universal.Lock_free.create mem (module Seq_object.Counter) in
  fun ~pid:_ op -> Universal.Lock_free.invoke c op

let wf_counter mem =
  let c =
    Universal.Wait_free.create mem (module Seq_object.Counter) ~n_procs:3
  in
  fun ~pid op -> Universal.Wait_free.invoke c ~me:(pid - 1) op

let incs _pid = [ Value.int 1; Value.int 1 ]

let counter_props name mk_obj =
  [
    Alcotest.test_case (name ^ ": sequential counter semantics") `Quick
      (fun () ->
        let setup, responses = world ~mk_obj ~ops_of:incs in
        let r =
          Sim.replay setup [ Schedule.Until_done 1; Schedule.Until_done 2 ]
        in
        check "completed" true (r.Sim.report.Schedule.stop = Schedule.Completed);
        let all =
          List.concat_map
            (fun pid ->
              Option.value ~default:[] (Hashtbl.find_opt responses pid))
            [ 1; 2 ]
        in
        let ints = List.sort compare (List.map Value.to_int_exn all) in
        check "responses are 0..3" true (ints = [ 0; 1; 2; 3 ]));
    Alcotest.test_case (name ^ ": all interleavings linearizable") `Quick
      (fun () ->
        let setup, responses = world ~mk_obj ~ops_of:incs in
        let result =
          Explorer.for_all ~max_nodes:400_000 setup ~pids:[ 1; 2 ] (fun r ->
              r.Sim.report.Schedule.stop = Schedule.Completed
              &&
              let all =
                List.concat_map
                  (fun pid ->
                    Option.value ~default:[]
                      (Hashtbl.find_opt responses pid))
                  [ 1; 2 ]
              in
              List.sort compare (List.map Value.to_int_exn all)
              = [ 0; 1; 2; 3 ])
        in
        check "holds" true (Result.is_ok result));
  ]

let helping_tests =
  [
    Alcotest.test_case "wait-free: a helper completes a suspended op" `Quick
      (fun () ->
        (* p1 announces an increment then suspends; p2 performs its own
           increment — which must also apply p1's *)
        let got1 = ref None and got2 = ref None in
        let setup mem (_ : Recorder.t) =
          let c =
            Universal.Wait_free.create mem (module Seq_object.Counter)
              ~n_procs:2
          in
          [ (1, fun () -> got1 := Some (Universal.Wait_free.invoke c ~me:0 (Value.int 1)));
            (2, fun () -> got2 := Some (Universal.Wait_free.invoke c ~me:1 (Value.int 1))) ]
        in
        (* one step of p1 = its announce write; then p2 runs fully *)
        let r =
          Sim.replay setup
            [ Schedule.Steps (1, 1); Schedule.Until_done 2;
              Schedule.Until_done 1 ]
        in
        check "completed" true (r.Sim.report.Schedule.stop = Schedule.Completed);
        let v1 = Value.to_int_exn (Option.get !got1) in
        let v2 = Value.to_int_exn (Option.get !got2) in
        check "distinct results" true (v1 <> v2);
        check "both from {0,1}" true
          (List.sort compare [ v1; v2 ] = [ 0; 1 ]);
        (* after p2's single successful CAS both ops are applied: p1 only
           needs a couple of reads to pick up its response *)
        check "p1 finished cheaply" true (r.Sim.steps_of 1 <= 6));
    Alcotest.test_case "wait-free: bounded steps under strict alternation"
      `Quick (fun () ->
        let setup, _ = world ~mk_obj:wf_counter ~ops_of:incs in
        let atoms =
          List.concat
            (List.init 200 (fun _ ->
                 [ Schedule.Steps (1, 1); Schedule.Steps (2, 1) ]))
        in
        let r = Sim.replay setup atoms in
        check "both done well within the alternation" true
          (r.Sim.finished 1 && r.Sim.finished 2));
    Alcotest.test_case "queue: enqueues from two processes, fifo drain"
      `Quick (fun () ->
        let drained = ref [] in
        let setup mem (_ : Recorder.t) =
          let q = Universal.Lock_free.create mem (module Seq_object.Queue) in
          [ (1, fun () ->
               ignore (Universal.Lock_free.invoke q (Seq_object.enq (Value.int 1)));
               ignore (Universal.Lock_free.invoke q (Seq_object.enq (Value.int 2))));
            (2, fun () ->
               ignore (Universal.Lock_free.invoke q (Seq_object.enq (Value.int 3))));
            (3, fun () ->
               for _ = 1 to 3 do
                 match Universal.Lock_free.invoke q Seq_object.deq with
                 | Value.VList [ v ] -> drained := Value.to_int_exn v :: !drained
                 | _ -> ()
               done) ]
        in
        let r =
          Sim.replay setup
            [ Schedule.Until_done 1; Schedule.Until_done 2;
              Schedule.Until_done 3 ]
        in
        check "completed" true (r.Sim.report.Schedule.stop = Schedule.Completed);
        (* p1's enqueues keep their order; p2's lands somewhere *)
        let order = List.rev !drained in
        check "all three" true (List.sort compare order = [ 1; 2; 3 ]);
        check "1 before 2" true
          (let i1 = List.nth order (0) in
           ignore i1;
           let rec idx v = function
             | [] -> -1
             | x :: r -> if x = v then 0 else 1 + idx v r
           in
           idx 1 order < idx 2 order));
  ]

let dap_tests =
  [
    Alcotest.test_case
      "universal constructions centralize: disjoint ops contend" `Quick
      (fun () ->
        (* two processes touch 'logically disjoint' halves of a register
           object; they still collide on the single state cell — the
           motivation for DAP universal constructions [2,15,37] *)
        let setup mem (_ : Recorder.t) =
          let c = Universal.Lock_free.create mem (module Seq_object.Counter) in
          [ (1, fun () ->
               ignore (Universal.Lock_free.invoke c ~tid:(Tid.v 1) (Value.int 1)));
            (2, fun () ->
               ignore (Universal.Lock_free.invoke c ~tid:(Tid.v 2) (Value.int 1))) ]
        in
        let r =
          Sim.replay setup [ Schedule.Until_done 1; Schedule.Until_done 2 ]
        in
        check "contention exists" true
          (Contention.all_contentions r.Sim.log <> []));
  ]


(* full linearizability checking over all interleavings, for both
   constructions, on the register object (writes and reads) *)
let linearizability_tests =
  let ops_of pid =
    [ Seq_object.write (Value.int pid); Seq_object.read_op ]
  in
  let recorded = ref [] in
  let record_world mk_invoke : Sim.setup =
   fun mem _ ->
    recorded := [];
    let invoke = mk_invoke mem in
    List.map
      (fun pid ->
        ( pid,
          fun () ->
            List.iter
              (fun op ->
                let inv = Memory.step_count mem in
                let result = invoke ~pid op in
                let resp = Memory.step_count mem in
                recorded :=
                  { Linearizability.pid; op; result; inv; resp } :: !recorded)
              (ops_of pid) ))
      [ 1; 2 ]
  in
  let mk_lf mem =
    let c = Universal.Lock_free.create mem (module Seq_object.Register) in
    fun ~pid:_ op -> Universal.Lock_free.invoke c op
  in
  let mk_wf mem =
    let c =
      Universal.Wait_free.create mem (module Seq_object.Register) ~n_procs:2
    in
    fun ~pid op -> Universal.Wait_free.invoke c ~me:(pid - 1) op
  in
  List.map
    (fun (name, mk) ->
      Alcotest.test_case (name ^ ": every interleaving linearizable") `Quick
        (fun () ->
          let result =
            Explorer.for_all ~max_nodes:500_000 (record_world mk)
              ~pids:[ 1; 2 ] (fun r ->
                r.Sim.report.Schedule.stop = Schedule.Completed
                && Linearizability.check (module Seq_object.Register)
                     !recorded)
          in
          check "holds" true (Result.is_ok result)))
    [ ("lock-free register", mk_lf); ("wait-free register", mk_wf) ]

let lin_unit_tests =
  [
    Alcotest.test_case "rejects an impossible run" `Quick (fun () ->
        (* read returns 5 though nobody wrote 5, with disjoint intervals *)
        let ops =
          [ { Linearizability.pid = 1; op = Seq_object.write (Value.int 1);
              result = Value.initial; inv = 0; resp = 1 };
            { Linearizability.pid = 2; op = Seq_object.read_op;
              result = Value.int 5; inv = 2; resp = 3 } ]
        in
        check "rejected" false
          (Linearizability.check (module Seq_object.Register) ops));
    Alcotest.test_case "respects real time" `Quick (fun () ->
        (* the read finished before the write began, yet saw its value *)
        let ops =
          [ { Linearizability.pid = 2; op = Seq_object.read_op;
              result = Value.int 1; inv = 0; resp = 1 };
            { Linearizability.pid = 1; op = Seq_object.write (Value.int 1);
              result = Value.initial; inv = 2; resp = 3 } ]
        in
        check "rejected" false
          (Linearizability.check (module Seq_object.Register) ops);
        (* overlapping intervals make it fine *)
        let ops_ok =
          [ { Linearizability.pid = 2; op = Seq_object.read_op;
              result = Value.int 1; inv = 0; resp = 3 };
            { Linearizability.pid = 1; op = Seq_object.write (Value.int 1);
              result = Value.initial; inv = 1; resp = 2 } ]
        in
        check "accepted" true
          (Linearizability.check (module Seq_object.Register) ops_ok));
  ]

let () =
  Alcotest.run "universal"
    [
      ("lock-free counter", counter_props "lock-free" lf_counter);
      ("linearizability", lin_unit_tests @ linearizability_tests);
      ("wait-free counter", counter_props "wait-free" wf_counter);
      ("helping", helping_tests);
      ("dap", dap_tests);
    ]
