(* End-to-end integration tests: full pipelines from scheduled executions
   through histories, logs, checkers and detectors, plus randomized
   cross-TM properties. *)

open Core

let check = Alcotest.(check bool)

let x = Item.v "x"
let y = Item.v "y"
let z = Item.v "z"

let spec tid pid reads writes =
  { Static_txn.tid = Tid.v tid; pid; reads;
    writes = List.map (fun (i, v) -> (i, Value.int v)) writes }

let setup impl specs outcomes : Sim.setup =
 fun mem recorder ->
  let handle =
    Txn_api.instantiate impl mem recorder ~items:(Static_txn.items_of specs)
  in
  List.map
    (fun s -> (s.Static_txn.pid, Static_txn.program handle s ~outcomes))
    specs

let three_txns =
  [ spec 1 1 [ x ] [ (y, 1) ]; spec 2 2 [ y ] [ (z, 2) ];
    spec 3 3 [ z ] [ (x, 3) ] ]

(* random (but seeded) schedules over three processes *)
let random_schedule st =
  let atoms = ref [] in
  for _ = 1 to 10 do
    let pid = 1 + Random.State.int st 3 in
    let n = 1 + Random.State.int st 4 in
    atoms := Schedule.Steps (pid, n) :: !atoms
  done;
  List.rev
    (Schedule.Until_done 3 :: Schedule.Until_done 2 :: Schedule.Until_done 1
   :: !atoms)

let pipeline_tests =
  List.map
    (fun impl ->
      let (module M : Tm_intf.S) = impl in
      Alcotest.test_case
        (M.name ^ ": random schedules produce coherent artifacts") `Quick
        (fun () ->
          let st = Random.State.make [| 42 |] in
          for _ = 1 to 25 do
            let schedule = random_schedule st in
            let outcomes = Hashtbl.create 8 in
            let r =
              Sim.replay ~budget:2_000 (setup impl three_txns outcomes)
                schedule
            in
            (* history well-formed *)
            (match History.well_formed r.Sim.history with
            | Ok () -> ()
            | Error e -> Alcotest.failf "%s: %s" M.name e);
            (* events and steps agree on attribution *)
            let log_tids =
              List.sort_uniq compare
                (List.filter_map
                   (fun (e : Access_log.entry) -> e.Access_log.tid)
                   r.Sim.log)
            in
            let hist_tids = History.txns r.Sim.history in
            check "log txns appear in history" true
              (List.for_all (fun t -> List.mem t hist_tids) log_tids);
            (* outcome statuses match history statuses *)
            Hashtbl.iter
              (fun tid (o : Static_txn.outcome) ->
                match o.Static_txn.status with
                | Static_txn.Committed ->
                    check "history agrees committed" true
                      (History.committed r.Sim.history tid)
                | Static_txn.Aborted ->
                    check "history agrees aborted" true
                      (History.aborted r.Sim.history tid)
                | Static_txn.Unstarted -> ())
              outcomes
          done))
    Registry.all

(* strict-DAP TMs never contend when disjoint, whatever the schedule *)
let dap_property_tests =
  List.filter_map
    (fun impl ->
      let (module M : Tm_intf.S) = impl in
      if List.mem M.name [ "tl-lock"; "pram-local"; "candidate"; "llsc-candidate" ]
      then
        Some
          (Alcotest.test_case
             (M.name ^ ": strict DAP under random schedules") `Quick
             (fun () ->
               let disjoint =
                 [ spec 1 1 [ x ] [ (x, 1) ]; spec 2 2 [ y ] [ (y, 2) ];
                   spec 3 3 [ z ] [ (z, 3) ] ]
               in
               let st = Random.State.make [| 7 |] in
               for _ = 1 to 25 do
                 let outcomes = Hashtbl.create 8 in
                 let r =
                   Sim.replay ~budget:2_000 (setup impl disjoint outcomes)
                     (random_schedule st)
                 in
                 check "no contention at all" true
                   (Contention.all_contentions r.Sim.log = [])
               done))
      else None)
    Registry.all

(* obstruction-free TMs: no spurious aborts under random schedules *)
let of_property_tests =
  List.filter_map
    (fun impl ->
      let (module M : Tm_intf.S) = impl in
      if
        List.mem M.name
          [ "dstm"; "si-clock"; "candidate"; "pram-local"; "llsc-candidate" ]
      then
        Some
          (Alcotest.test_case
             (M.name ^ ": obstruction-freedom under random schedules") `Quick
             (fun () ->
               let st = Random.State.make [| 13 |] in
               for _ = 1 to 25 do
                 let outcomes = Hashtbl.create 8 in
                 let r =
                   Sim.replay ~budget:2_000 (setup impl three_txns outcomes)
                     (random_schedule st)
                 in
                 match
                   Obstruction_freedom.violations r.Sim.history r.Sim.log
                 with
                 | [] -> ()
                 | v :: _ ->
                     Alcotest.failf "%s: %a" M.name
                       Obstruction_freedom.pp_violation v
               done))
      else None)
    Registry.all

(* committed sub-histories of tl and dstm are strictly serializable under
   random schedules *)
let consistency_property_tests =
  List.filter_map
    (fun impl ->
      let (module M : Tm_intf.S) = impl in
      let target =
        match M.name with
        | "tl-lock" | "dstm" | "tl2-clock" ->
            Some (fun h -> Strict_serializability.check h)
        | "si-clock" -> Some (fun h -> Snapshot_isolation.check h)
        | _ -> None
      in
      Option.map
        (fun checkf ->
          Alcotest.test_case
            (M.name ^ ": consistency target under random schedules") `Quick
            (fun () ->
              let st = Random.State.make [| 99 |] in
              for i = 1 to 25 do
                let outcomes = Hashtbl.create 8 in
                let r =
                  Sim.replay ~budget:2_000 (setup impl three_txns outcomes)
                    (random_schedule st)
                in
                match checkf r.Sim.history with
                | Spec.Sat -> ()
                | Spec.Out_of_budget -> ()
                | Spec.Unsat ->
                    Alcotest.failf "%s: schedule %d produced a violating \
                                    history" M.name i
              done))
        target)
    Registry.all

(* cross-validation: on histories of TMs whose reads return the latest
   conflicting write in history order (the strictly serializable ones),
   the polynomial conflict-serializability check implies the value-based
   serializability search.  Snapshot reads (si-clock), torn reads
   (candidate) and process-local reads (pram-local) legitimately break
   the op-order => data-flow link, so they are excluded. *)
let csr_cross_validation_tests =
  List.filter_map
    (fun impl ->
      let (module M : Tm_intf.S) = impl in
      if not (List.mem M.name [ "tl-lock"; "dstm"; "tl2-clock"; "norec" ])
      then None
      else
        Some
          (Alcotest.test_case (M.name ^ ": CSR implies value-based ser")
             `Quick (fun () ->
               let st = Random.State.make [| 2024 |] in
               for _ = 1 to 25 do
                 let outcomes = Hashtbl.create 8 in
                 let r =
                   Sim.replay ~budget:2_000 (setup impl three_txns outcomes)
                     (random_schedule st)
                 in
                 let csr = Conflict_serializability.check r.Sim.history in
                 let ser = Serializability.check r.Sim.history in
                 match (csr, ser) with
                 | Spec.Sat, Spec.Unsat ->
                     Alcotest.failf "%s: CSR sat but value-based ser unsat"
                       M.name
                 | _ -> ()
               done)))
    Registry.all

(* the paper's delta executions re-created end to end on the candidate TM *)
let delta_tests =
  [
    Alcotest.test_case "delta1 on candidate matches the paper" `Quick
      (fun () ->
        (* T1 solo to commit, then T3 solo: T3 must read b1 = 1 *)
        let r = Pcl_harness.run (module Candidate_tm) Pcl_constructions.delta1 in
        check "T1 committed" true (Pcl_harness.committed r (Tid.v 1));
        check "T3 committed" true (Pcl_harness.committed r (Tid.v 3));
        check "T3 reads b1=1" true
          (Pcl_harness.read_of r (Tid.v 3) Pcl_txns.b1 = Some (Value.int 1));
        check "T3 reads b4=0" true
          (Pcl_harness.read_of r (Tid.v 3) Pcl_txns.b4 = Some (Value.int 0));
        (* and the resulting history satisfies everything *)
        check "wac sat" true (Spec.sat (Weak_adaptive.check r.Pcl_harness.sim.Sim.history)));
    Alcotest.test_case "solo runs of all seven transactions commit" `Quick
      (fun () ->
        List.iter
          (fun impl ->
            let (module M : Tm_intf.S) = impl in
            List.iteri
              (fun i _ ->
                let pid = i + 1 in
                let r =
                  Pcl_harness.run impl [ Schedule.Until_done pid ]
                in
                check
                  (Printf.sprintf "%s: T%d commits solo" M.name pid)
                  true
                  (Pcl_harness.committed r (Tid.v pid)))
              Pcl_txns.specs)
          Registry.all);
  ]

let () =
  Alcotest.run "integration"
    [
      ("pipeline", pipeline_tests);
      ("dap-properties", dap_property_tests);
      ("of-properties", of_property_tests);
      ("consistency-properties", consistency_property_tests);
      ("csr-cross-validation", csr_cross_validation_tests);
      ("delta-executions", delta_tests);
    ]
