(* Tests for conflicts, contention, the DAP variants and the
   obstruction-freedom detector (tm_dap). *)

open Core
open Build

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let items l = Item.set_of_list (List.map Item.v l)

let ds =
  [ (Tid.v 1, items [ "x"; "y" ]);
    (Tid.v 2, items [ "y"; "z" ]);
    (Tid.v 3, items [ "z" ]);
    (Tid.v 4, items [ "w" ]) ]

let conflict_tests =
  [
    Alcotest.test_case "conflict iff data sets intersect" `Quick (fun () ->
        check "1-2 conflict" true (Conflict.conflict ds (Tid.v 1) (Tid.v 2));
        check "2-3 conflict" true (Conflict.conflict ds (Tid.v 2) (Tid.v 3));
        check "1-3 disjoint" false (Conflict.conflict ds (Tid.v 1) (Tid.v 3));
        check "no self conflict" false (Conflict.conflict ds (Tid.v 1) (Tid.v 1));
        check "unknown tid empty set" false
          (Conflict.conflict ds (Tid.v 1) (Tid.v 9)));
    Alcotest.test_case "graph distances" `Quick (fun () ->
        let g = Conflict.graph ds [ Tid.v 1; Tid.v 2; Tid.v 3; Tid.v 4 ] in
        check "d(1,1)=0" true (Conflict.distance g (Tid.v 1) (Tid.v 1) = Some 0);
        check "d(1,2)=1" true (Conflict.distance g (Tid.v 1) (Tid.v 2) = Some 1);
        check "d(1,3)=2" true (Conflict.distance g (Tid.v 1) (Tid.v 3) = Some 2);
        check "4 disconnected" true
          (Conflict.distance g (Tid.v 1) (Tid.v 4) = None);
        check "connected" true (Conflict.connected g (Tid.v 1) (Tid.v 3));
        check "not connected" false (Conflict.connected g (Tid.v 1) (Tid.v 4)));
  ]

(* build a synthetic log via a real Memory *)
let synthetic_log accesses =
  let m = Memory.create () in
  let o1 = Memory.alloc m ~name:"o1" (Value.int 0) in
  let o2 = Memory.alloc m ~name:"o2" (Value.int 0) in
  let oid = function 1 -> o1 | _ -> o2 in
  List.iter
    (fun (pid, tid, o, nontrivial) ->
      let prim =
        if nontrivial then Primitive.Write (Value.int pid) else Primitive.Read
      in
      ignore (Memory.apply m ~pid ~tid:(Tid.v tid) (oid o) prim))
    accesses;
  Access_log.entries (Memory.log m)

let contention_tests =
  [
    Alcotest.test_case "no contention between pure readers" `Quick (fun () ->
        let log =
          synthetic_log [ (1, 1, 1, false); (2, 2, 1, false) ]
        in
        check_int "none" 0 (List.length (Contention.all_contentions log)));
    Alcotest.test_case "writer vs reader contend" `Quick (fun () ->
        let log = synthetic_log [ (1, 1, 1, true); (2, 2, 1, false) ] in
        match Contention.all_contentions log with
        | [ c ] ->
            check "objects" true (List.length c.Contention.objects = 1)
        | l -> Alcotest.failf "expected 1 contention, got %d" (List.length l));
    Alcotest.test_case "different objects never contend" `Quick (fun () ->
        let log = synthetic_log [ (1, 1, 1, true); (2, 2, 2, true) ] in
        check_int "none" 0 (List.length (Contention.all_contentions log)));
    Alcotest.test_case "steps without txn attribution are ignored" `Quick
      (fun () ->
        let m = Memory.create () in
        let o = Memory.alloc m ~name:"o" (Value.int 0) in
        ignore (Memory.apply m ~pid:1 o (Primitive.Write (Value.int 1)));
        ignore (Memory.apply m ~pid:2 o (Primitive.Write (Value.int 2)));
        check_int "none" 0
          (List.length
             (Contention.all_contentions (Access_log.entries (Memory.log m)))));
  ]

let dap_tests =
  [
    Alcotest.test_case "strict DAP: conflicting contention allowed" `Quick
      (fun () ->
        let log = synthetic_log [ (1, 1, 1, true); (2, 2, 1, true) ] in
        (* T1 and T2 conflict on y in ds *)
        check "no violation" true (Strict_dap.holds ~data_sets:ds log));
    Alcotest.test_case "strict DAP: disjoint contention flagged" `Quick
      (fun () ->
        let log = synthetic_log [ (1, 1, 1, true); (3, 3, 1, true) ] in
        (* T1 and T3 are disjoint *)
        match Strict_dap.violations ~data_sets:ds log with
        | [ v ] ->
            check "pair" true
              ((Tid.equal v.Strict_dap.t1 (Tid.v 1)
               && Tid.equal v.Strict_dap.t2 (Tid.v 3))
              || (Tid.equal v.Strict_dap.t1 (Tid.v 3)
                 && Tid.equal v.Strict_dap.t2 (Tid.v 1)))
        | l -> Alcotest.failf "expected 1 violation, got %d" (List.length l));
    Alcotest.test_case "graph DAP: chain-justified contention allowed" `Quick
      (fun () ->
        (* T1 and T3 contend but are connected through T2, which also
           executes in the interval (the conflict graph only contains
           transactions of the execution) *)
        let log =
          synthetic_log
            [ (1, 1, 1, true); (2, 2, 2, false); (3, 3, 1, true) ]
        in
        check "strict violated" false (Strict_dap.holds ~data_sets:ds log);
        check "graph ok" true (Graph_dap.holds ~data_sets:ds log));
    Alcotest.test_case "graph DAP: chain absent from execution is no excuse"
      `Quick (fun () ->
        (* same contention, but T2 takes no step: disconnected *)
        let log = synthetic_log [ (1, 1, 1, true); (3, 3, 1, true) ] in
        check "graph violated" false (Graph_dap.holds ~data_sets:ds log));
    Alcotest.test_case "graph DAP: disconnected contention flagged" `Quick
      (fun () ->
        let log = synthetic_log [ (1, 1, 1, true); (4, 4, 1, true) ] in
        match Graph_dap.violations ~data_sets:ds log with
        | [ v ] -> check "disconnected" true (v.Graph_dap.distance = None)
        | l -> Alcotest.failf "expected 1 violation, got %d" (List.length l));
    Alcotest.test_case "d-local contention bound" `Quick (fun () ->
        let log =
          synthetic_log
            [ (1, 1, 1, true); (2, 2, 2, false); (3, 3, 1, true) ]
        in
        (* distance(T1,T3) = 2: allowed at d=2, flagged at d=1 *)
        check "d=2 ok" true (Graph_dap.holds ~d:2 ~data_sets:ds log);
        check "d=1 violated" false (Graph_dap.holds ~d:1 ~data_sets:ds log));
  ]

let of_tests =
  [
    Alcotest.test_case "abort with step contention is fine" `Quick (fun () ->
        let m = Memory.create () in
        let o = Memory.alloc m ~name:"o" (Value.int 0) in
        (* T1's steps bracket a step by p2 *)
        ignore (Memory.apply m ~pid:1 ~tid:(Tid.v 1) o Primitive.Read);
        ignore (Memory.apply m ~pid:2 ~tid:(Tid.v 2) o (Primitive.Write (Value.int 1)));
        ignore (Memory.apply m ~pid:1 ~tid:(Tid.v 1) o Primitive.Read);
        let h =
          Build.history [ B (1, 1); R (1, "x", 0); Ca 1; B (2, 2); C 2 ]
        in
        check "no violation" true
          (Obstruction_freedom.holds h (Access_log.entries (Memory.log m))));
    Alcotest.test_case "abort without contention is flagged" `Quick (fun () ->
        let m = Memory.create () in
        let o = Memory.alloc m ~name:"o" (Value.int 0) in
        ignore (Memory.apply m ~pid:1 ~tid:(Tid.v 1) o Primitive.Read);
        ignore (Memory.apply m ~pid:1 ~tid:(Tid.v 1) o Primitive.Read);
        let h = Build.history [ B (1, 1); R (1, "x", 0); Ca 1 ] in
        match
          Obstruction_freedom.violations h (Access_log.entries (Memory.log m))
        with
        | [ v ] -> check "t1" true (Tid.equal v.Obstruction_freedom.tid (Tid.v 1))
        | l -> Alcotest.failf "expected 1 violation, got %d" (List.length l));
    Alcotest.test_case "committed transactions never flagged" `Quick
      (fun () ->
        let m = Memory.create () in
        let o = Memory.alloc m ~name:"o" (Value.int 0) in
        ignore (Memory.apply m ~pid:1 ~tid:(Tid.v 1) o Primitive.Read);
        let h = Build.history [ B (1, 1); R (1, "x", 0); C 1 ] in
        check "no violation" true
          (Obstruction_freedom.holds h (Access_log.entries (Memory.log m))));
    Alcotest.test_case "zero-step aborted txn uses event interval" `Quick
      (fun () ->
        (* a txn that took no shared steps and aborted alone *)
        let h = Build.history [ B (1, 1); Ca 1 ] in
        match Obstruction_freedom.violations h [] with
        | [ _ ] -> ()
        | l -> Alcotest.failf "expected 1 violation, got %d" (List.length l));
  ]

let () =
  Alcotest.run "dap"
    [
      ("conflict", conflict_tests);
      ("contention", contention_tests);
      ("dap-variants", dap_tests);
      ("obstruction-freedom", of_tests);
    ]
