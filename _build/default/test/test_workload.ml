(* Tests for the workload generator / round-robin driver and the progress
   profiler (tm_probe). *)

open Core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let workload_tests =
  [
    Alcotest.test_case "all transactions commit on every TM" `Quick
      (fun () ->
        List.iter
          (fun impl ->
            let (module M : Tm_intf.S) = impl in
            let cfg =
              { Workload.default with Workload.n_procs = 3; txns_per_proc = 10 }
            in
            let s = Workload.run impl cfg in
            check (M.name ^ " completed") true s.Workload.completed;
            check_int (M.name ^ " commits") 30 s.Workload.commits)
          Registry.all);
    Alcotest.test_case "pram takes zero steps" `Quick (fun () ->
        let s = Workload.run (Registry.find_exn "pram-local") Workload.default in
        check_int "steps" 0 s.Workload.steps);
    Alcotest.test_case "deterministic for a fixed seed" `Quick (fun () ->
        let impl = Registry.find_exn "dstm" in
        let cfg = { Workload.default with Workload.conflict_pct = 50 } in
        let s1 = Workload.run impl cfg and s2 = Workload.run impl cfg in
        check "same stats" true (s1 = s2));
    Alcotest.test_case "different seeds differ under conflict" `Quick
      (fun () ->
        let impl = Registry.find_exn "dstm" in
        let cfg = { Workload.default with Workload.conflict_pct = 100 } in
        let s1 = Workload.run impl cfg in
        let s2 = Workload.run impl { cfg with Workload.seed = 2 } in
        (* not a strong property, but the generator must actually depend
           on the seed *)
        check "stats differ" true (s1 <> s2));
    Alcotest.test_case "no disjoint contention for strict-DAP TMs at 0%"
      `Quick (fun () ->
        List.iter
          (fun name ->
            let s =
              Workload.run (Registry.find_exn name)
                { Workload.default with Workload.conflict_pct = 0 }
            in
            check_int (name ^ " disjoint contentions") 0
              s.Workload.disjoint_contentions)
          [ "tl-lock"; "pram-local"; "candidate" ]);
    Alcotest.test_case "si-clock contends even at 0% conflict" `Quick
      (fun () ->
        let s =
          Workload.run (Registry.find_exn "si-clock")
            { Workload.default with Workload.conflict_pct = 0 }
        in
        check "clock contention" true (s.Workload.disjoint_contentions > 0));
    Alcotest.test_case "conflict raises aborts on optimistic TMs" `Quick
      (fun () ->
        let s0 =
          Workload.run (Registry.find_exn "dstm")
            { Workload.default with Workload.conflict_pct = 0; n_procs = 4 }
        in
        let s100 =
          Workload.run (Registry.find_exn "dstm")
            { Workload.default with Workload.conflict_pct = 100; n_procs = 4 }
        in
        check_int "no aborts disjoint" 0 s0.Workload.aborts;
        check "aborts under conflict" true (s100.Workload.aborts > 0));
  ]

let progress_tests =
  [
    Alcotest.test_case "tl-lock stalls the conflicting probe" `Quick
      (fun () ->
        let p = Progress.run (Registry.find_exn "tl-lock") ~disjoint:false in
        check "stalls" true (p.Progress.stalls > 0));
    Alcotest.test_case "tl-lock never disturbs the disjoint probe" `Quick
      (fun () ->
        let p = Progress.run (Registry.find_exn "tl-lock") ~disjoint:true in
        check_int "no stalls" 0 p.Progress.stalls;
        check_int "no aborts" 0 p.Progress.aborts;
        check_int "all commits" p.Progress.points p.Progress.commits);
    Alcotest.test_case "norec stalls even the disjoint probe" `Quick
      (fun () ->
        let p = Progress.run (Registry.find_exn "norec") ~disjoint:true in
        check "stalls" true (p.Progress.stalls > 0));
    Alcotest.test_case "obstruction-free TMs never stall" `Quick (fun () ->
        List.iter
          (fun name ->
            List.iter
              (fun disjoint ->
                let p = Progress.run (Registry.find_exn name) ~disjoint in
                check_int
                  (Printf.sprintf "%s disjoint=%b stalls" name disjoint)
                  0 p.Progress.stalls)
              [ true; false ])
          [ "dstm"; "si-clock"; "candidate" ]);
    Alcotest.test_case "tl2 aborts but never stalls the conflicting probe"
      `Quick (fun () ->
        let p = Progress.run (Registry.find_exn "tl2-clock") ~disjoint:false in
        check_int "no stalls" 0 p.Progress.stalls;
        check "aborts happen" true (p.Progress.aborts > 0));
  ]

let () =
  Alcotest.run "workload"
    [ ("workload", workload_tests); ("progress", progress_tests) ]
