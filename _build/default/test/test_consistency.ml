(* Tests for the consistency-condition decision procedures: the anomaly
   catalogue matrix, the placement solver, the lazy enumerators, the
   delta_1 case analysis of the paper as a pure history question, and
   randomized implication-lattice properties. *)

open Core
open Build

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let h instrs = Build.history instrs

(* ------------------------------------------------------------------ *)
(* the catalogue matrix: one alcotest case per (anomaly, checker) pair *)

let catalogue_tests =
  List.concat_map
    (fun (a : Anomalies.anomaly) ->
      List.map
        (fun (name, expected) ->
          Alcotest.test_case
            (Printf.sprintf "%s / %s" a.Anomalies.name name)
            `Quick
            (fun () ->
              let c = Checkers.find_exn name in
              let v = c.Spec.check a.Anomalies.history in
              check
                (Printf.sprintf "expected %b" expected)
                expected (Spec.sat v);
              (* verdicts must be decisive on the catalogue *)
              check "decisive" true (v <> Spec.Out_of_budget)))
        a.Anomalies.expected)
    Anomalies.catalogue

(* ------------------------------------------------------------------ *)
(* enumerators *)

let enumerator_tests =
  [
    Alcotest.test_case "compositions count 2^(n-1)" `Quick (fun () ->
        let count l = List.length (List.of_seq (Spec.compositions l)) in
        check_int "n=1" 1 (count [ 1 ]);
        check_int "n=2" 2 (count [ 1; 2 ]);
        check_int "n=4" 8 (count [ 1; 2; 3; 4 ]);
        check_int "n=6" 32 (count [ 1; 2; 3; 4; 5; 6 ]));
    Alcotest.test_case "compositions preserve order and cover" `Quick
      (fun () ->
        Seq.iter
          (fun comp ->
            check "concat restores" true (List.concat comp = [ 1; 2; 3 ]);
            check "non-empty blocks" true
              (List.for_all (fun b -> b <> []) comp))
          (Spec.compositions [ 1; 2; 3 ]));
    Alcotest.test_case "bool_vectors count 2^n" `Quick (fun () ->
        check_int "n=0" 1 (List.length (List.of_seq (Spec.bool_vectors 0)));
        check_int "n=3" 8 (List.length (List.of_seq (Spec.bool_vectors 3))));
    Alcotest.test_case "com candidates: committed forced, pending optional"
      `Quick (fun () ->
        let hh =
          h [ B (1, 1); W (1, "x", 1); C 1; B (2, 2); Cp 2; B (3, 3); Cp 3 ]
        in
        let cands = List.of_seq (Spec.com_candidates hh) in
        check_int "2^2 candidates" 4 (List.length cands);
        check "all contain T1" true
          (List.for_all (fun s -> Tid.Set.mem (Tid.v 1) s) cands);
        check "first is the largest" true
          (Tid.Set.cardinal (List.hd cands) = 3));
  ]

(* ------------------------------------------------------------------ *)
(* placement solver *)

let dummy_info : Tid.t -> Blocks.txn_info =
  let empty tid =
    {
      Blocks.tid;
      pid = 1;
      status = History.Committed;
      greads = [];
      writes = [];
      write_set = Item.Set.empty;
      ops = [];
      first_pos = 0;
      last_pos = 0;
    }
  in
  empty

let mk_problem points prec =
  {
    Placement.points = Array.of_list points;
    prec;
    focus = (fun _ -> true);
    info_of = dummy_info;
    initial = (fun _ -> Value.initial);
  }

let pt lo hi = { Placement.block = Blocks.Wblock (Tid.v 1); lo; hi }

let placement_tests =
  [
    Alcotest.test_case "windows force an order" `Quick (fun () ->
        (* point A in [5,6], point B in [1,2]: B must come first *)
        let budget = ref 10_000 in
        let sols = ref [] in
        ignore
          (Placement.solve ~budget (mk_problem [ pt 5 6; pt 1 2 ] [])
             ~on_solution:(fun o -> sols := o :: !sols; false));
        check "unique order" true (!sols = [ [ 1; 0 ] ]));
    Alcotest.test_case "disjoint windows both orders impossible" `Quick
      (fun () ->
        let budget = ref 10_000 in
        (* A in [5,6], B in [1,2], but precedence A before B: unsat *)
        check "unsat" true
          (Placement.satisfiable ~budget
             (mk_problem [ pt 5 6; pt 1 2 ] [ (0, 1) ])
          = Spec.Unsat));
    Alcotest.test_case "shared gap allows both orders" `Quick (fun () ->
        let budget = ref 10_000 in
        let n = ref 0 in
        ignore
          (Placement.solve ~budget (mk_problem [ pt 3 3; pt 3 3 ] [])
             ~on_solution:(fun _ -> incr n; false));
        check_int "two orders" 2 !n);
    Alcotest.test_case "precedence chain" `Quick (fun () ->
        let budget = ref 10_000 in
        let sols = ref [] in
        ignore
          (Placement.solve ~budget
             (mk_problem [ pt 0 9; pt 0 9; pt 0 9 ] [ (2, 1); (1, 0) ])
             ~on_solution:(fun o -> sols := o :: !sols; false));
        check "only the chain order" true (!sols = [ [ 2; 1; 0 ] ]));
    Alcotest.test_case "precedence cycle is unsat" `Quick (fun () ->
        let budget = ref 10_000 in
        check "unsat" true
          (Placement.satisfiable ~budget
             (mk_problem [ pt 0 9; pt 0 9 ] [ (0, 1); (1, 0) ])
          = Spec.Unsat));
    Alcotest.test_case "budget exhaustion is reported" `Quick (fun () ->
        let budget = ref 3 in
        check "out of budget" true
          (Placement.satisfiable ~budget
             (mk_problem [ pt 0 9; pt 0 9; pt 0 9; pt 0 9 ] [])
          = Spec.Out_of_budget));
    Alcotest.test_case "legality prunes: torn gr block" `Quick (fun () ->
        (* writer installs x=1,y=1 at one point; reader's greads want
           x=1,y=0 — no order can satisfy *)
        let info tid =
          if Tid.to_int tid = 1 then
            {
              (dummy_info tid) with
              Blocks.writes = [ (Item.v "x", Value.int 1); (Item.v "y", Value.int 1) ];
              write_set = Item.set_of_list [ Item.v "x"; Item.v "y" ];
            }
          else
            {
              (dummy_info tid) with
              Blocks.greads = [ (Item.v "x", Value.int 1); (Item.v "y", Value.int 0) ];
            }
        in
        let problem =
          {
            Placement.points =
              [| { Placement.block = Blocks.Wblock (Tid.v 1); lo = 0; hi = 9 };
                 { Placement.block = Blocks.Greads (Tid.v 2); lo = 0; hi = 9 } |];
            prec = [];
            focus = (fun _ -> true);
            info_of = info;
            initial = (fun _ -> Value.initial);
          }
        in
        let budget = ref 10_000 in
        check "unsat" true (Placement.satisfiable ~budget problem = Spec.Unsat));
  ]

(* ------------------------------------------------------------------ *)
(* the delta_1 case analysis as a pure history question: after T1 commits
   solo, a solo T3 *must* read b1=1 under weak adaptive consistency —
   because T1 reads b3 (which T3 writes) and both write e1_3 *)

let delta1_history ~b1 =
  h [ B (1, 1); R (1, "b3", 0); R (1, "b7", 0);
      W (1, "a", 1); W (1, "b1", 1); W (1, "c1", 1); W (1, "d1", 1);
      W (1, "e1_3", 1); C 1;
      B (3, 3); R (3, "b1", b1); R (3, "b4", 0);
      W (3, "b3", 1); W (3, "c3", 1); W (3, "e1_3", 1); W (3, "e3_4", 1);
      C 3 ]

let delta1_tests =
  [
    Alcotest.test_case "T3 reading b1=1 is WAC-satisfiable" `Quick (fun () ->
        check "sat" true
          (Spec.sat (Weak_adaptive.check (delta1_history ~b1:1))));
    Alcotest.test_case "T3 reading b1=0 violates WAC (paper's delta1)" `Quick
      (fun () ->
        check "unsat" true
          (Weak_adaptive.check (delta1_history ~b1:0) = Spec.Unsat));
    Alcotest.test_case "b1=0 also violates SI and PC individually" `Quick
      (fun () ->
        check "si unsat" true
          (Snapshot_isolation.check (delta1_history ~b1:0) = Spec.Unsat);
        check "pc unsat" true
          (Processor_consistency.check (delta1_history ~b1:0) = Spec.Unsat));
    Alcotest.test_case "without the coupling items, b1=0 is WAC-fine" `Quick
      (fun () ->
        (* drop T1's read of b3 and the common e1_3 writes: now a single PC
           group can order T3 before T1 *)
        let weak =
          h [ B (1, 1); R (1, "b7", 0); W (1, "a", 1); W (1, "b1", 1); C 1;
              B (3, 3); R (3, "b1", 0); W (3, "c3", 1); C 3 ]
        in
        check "sat" true (Spec.sat (Weak_adaptive.check weak)));
  ]

(* ------------------------------------------------------------------ *)
(* commit-pending handling in SI (Def 3.1's com(alpha)) *)

let pending_tests =
  [
    Alcotest.test_case "pending write may be included" `Quick (fun () ->
        let hh =
          h [ B (1, 1); W (1, "x", 7); Cp 1; B (2, 2); R (2, "x", 7); C 2 ]
        in
        check "si sat" true (Spec.sat (Snapshot_isolation.check hh)));
    Alcotest.test_case "pending write may be excluded" `Quick (fun () ->
        let hh =
          h [ B (1, 1); W (1, "x", 7); Cp 1; B (2, 2); R (2, "x", 0); C 2 ]
        in
        check "si sat" true (Spec.sat (Snapshot_isolation.check hh)));
    Alcotest.test_case "live (non-pending) writes are never visible" `Quick
      (fun () ->
        let hh =
          h [ B (1, 1); W (1, "x", 7); B (2, 2); R (2, "x", 7); C 2 ]
        in
        (* T1 live: its write cannot justify T2's read *)
        check "si unsat" true (Snapshot_isolation.check hh = Spec.Unsat);
        check "ser unsat" true (Serializability.check hh = Spec.Unsat);
        check "wac unsat" true (Weak_adaptive.check hh = Spec.Unsat));
    Alcotest.test_case "aborted writes are never visible" `Quick (fun () ->
        let hh =
          h [ B (1, 1); W (1, "x", 7); Ca 1; B (2, 2); R (2, "x", 7); C 2 ]
        in
        check "wac unsat" true (Weak_adaptive.check hh = Spec.Unsat));
  ]

(* ------------------------------------------------------------------ *)
(* SI window semantics: serialization points live inside active intervals *)

let si_window_tests =
  [
    Alcotest.test_case "overlapping txns can serialize reads early" `Quick
      (fun () ->
        (* T2 starts before T1 commits, so T2's snapshot may predate T1 *)
        let hh =
          h [ B (1, 1); B (2, 2); W (1, "x", 1); C 1; R (2, "x", 0); C 2 ]
        in
        check "si sat" true (Spec.sat (Snapshot_isolation.check hh)));
    Alcotest.test_case "snapshot is one point: no time travel" `Quick
      (fun () ->
        (* T2 reads x from T1 but misses T1's y write: torn *)
        let hh =
          h [ B (1, 1); W (1, "x", 1); W (1, "y", 1); C 1;
              B (2, 2); R (2, "x", 1); R (2, "y", 0); C 2 ]
        in
        check "si unsat" true (Snapshot_isolation.check hh = Spec.Unsat));
    Alcotest.test_case "writes serialize after global reads" `Quick (fun () ->
        (* two read-modify-writes on x both reading 0: classic SI-allowed *)
        let hh =
          h [ B (1, 1); B (2, 2); R (1, "x", 0); R (2, "x", 0);
              W (1, "x", 1); W (2, "x", 2); C 1; C 2 ]
        in
        check "si sat" true (Spec.sat (Snapshot_isolation.check hh)));
    Alcotest.test_case "local reads are unconstrained (weak SI)" `Quick
      (fun () ->
        (* T1 writes x=5 then reads x=99: weak SI does not care *)
        let hh =
          h [ B (1, 1); W (1, "x", 5); R (1, "x", 99); C 1 ]
        in
        check "si sat" true (Spec.sat (Snapshot_isolation.check hh));
        (* but serializability replays whole transactions and rejects *)
        check "ser unsat" true (Serializability.check hh = Spec.Unsat));
  ]

(* ------------------------------------------------------------------ *)
(* hierarchy on the catalogue + random histories *)

(* generator: 2-3 transactions over 2 items, operations interleaved; reads
   are truthful against an atomic commit-time store with probability ~2/3,
   arbitrary otherwise *)
let gen_history : History.t QCheck.Gen.t =
 fun st ->
  let n_txn = 2 + Random.State.int st 2 in
  let items = [| "x"; "y" |] in
  (* build per-txn op lists *)
  let ops_of = Array.init n_txn (fun _ -> 1 + Random.State.int st 3) in
  let queues =
    Array.init n_txn (fun _ -> Queue.create ())
  in
  Array.iteri
    (fun i n ->
      for _ = 1 to n do
        let item = items.(Random.State.int st 2) in
        if Random.State.bool st then
          Queue.push (`Write (item, 1 + Random.State.int st 3)) queues.(i)
        else Queue.push (`Read item) queues.(i)
      done;
      Queue.push
        (if Random.State.int st 4 = 0 then `Abort else `Commit)
        queues.(i))
    ops_of;
  let store = Hashtbl.create 4 in
  let local = Array.init n_txn (fun _ -> Hashtbl.create 4) in
  let begun = Array.make n_txn false in
  let live = Array.make n_txn true in
  let instrs = ref [] in
  let emit i =
    let tid = i + 1 in
    if not begun.(i) then begin
      begun.(i) <- true;
      instrs := B (tid, tid) :: !instrs
    end
    else
      match Queue.pop queues.(i) with
      | `Read item ->
          let truthful =
            match Hashtbl.find_opt local.(i) item with
            | Some v -> v
            | None ->
                Option.value ~default:0 (Hashtbl.find_opt store item)
          in
          let v =
            if Random.State.int st 3 = 0 then Random.State.int st 4
            else truthful
          in
          instrs := R (tid, item, v) :: !instrs
      | `Write (item, v) ->
          Hashtbl.replace local.(i) item v;
          instrs := W (tid, item, v) :: !instrs
      | `Commit ->
          Hashtbl.iter (fun k v -> Hashtbl.replace store k v) local.(i);
          live.(i) <- false;
          instrs := C tid :: !instrs
      | `Abort ->
          live.(i) <- false;
          instrs := Ca tid :: !instrs
  in
  let rec drive () =
    let candidates =
      List.filter (fun i -> live.(i)) (List.init n_txn (fun i -> i))
    in
    match candidates with
    | [] -> ()
    | _ ->
        let i = List.nth candidates (Random.State.int st (List.length candidates)) in
        emit i;
        drive ()
  in
  drive ();
  Build.history (List.rev !instrs)

let hierarchy_tests =
  [
    Alcotest.test_case "lattice holds on the catalogue" `Quick (fun () ->
        List.iter
          (fun (a : Anomalies.anomaly) ->
            match Hierarchy.check_history a.Anomalies.history with
            | [] -> ()
            | v :: _ ->
                Alcotest.failf "%s: %s sat but %s unsat" a.Anomalies.name
                  v.Hierarchy.stronger v.Hierarchy.weaker)
          Anomalies.catalogue);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:150 ~name:"lattice holds on random histories"
         (QCheck.make gen_history)
         (fun hh ->
           Result.is_ok (History.well_formed hh)
           && Hierarchy.check_history ~budget:400_000 hh = []));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:100
         ~name:"sequential legal histories satisfy everything"
         (QCheck.make gen_history)
         (fun hh ->
           (* restrict to the sequential-and-legal subset *)
           QCheck.assume (History.sequential hh && History.complete hh);
           QCheck.assume (Legality.legal hh);
           List.for_all
             (fun (c : Spec.checker) -> Spec.sat (c.Spec.check hh))
             Checkers.all));
  ]


(* ------------------------------------------------------------------ *)
(* witnesses: every Sat verdict must come with a replayable witness *)

let witness_tests =
  let cases =
    List.concat_map
      (fun (a : Anomalies.anomaly) ->
        List.filter_map
          (fun (name, _) ->
            if List.mem_assoc name Checkers.explainers then
              Some (a, name)
            else None)
          a.Anomalies.expected)
      Anomalies.catalogue
  in
  List.map
    (fun ((a : Anomalies.anomaly), name) ->
      Alcotest.test_case
        (Printf.sprintf "witness %s / %s" a.Anomalies.name name)
        `Quick
        (fun () ->
          let c = Checkers.find_exn name in
          let verdict = c.Spec.check a.Anomalies.history in
          match (verdict, Checkers.explain name a.Anomalies.history) with
          | Spec.Sat, Some w ->
              check "witness validates" true
                (Witness.valid a.Anomalies.history w)
          | Spec.Sat, None -> Alcotest.fail "sat but no witness"
          | Spec.Unsat, Some _ -> Alcotest.fail "unsat but witness produced"
          | Spec.Unsat, None -> ()
          | Spec.Out_of_budget, _ -> ()))
    cases


(* ------------------------------------------------------------------ *)
(* conflict serializability: the polynomial graph check *)

let csr_tests =
  [
    Alcotest.test_case "acyclic history accepted" `Quick (fun () ->
        let hh =
          h [ B (1, 1); W (1, "x", 1); C 1; B (2, 2); R (2, "x", 1); C 2 ]
        in
        check "sat" true (Spec.sat (Conflict_serializability.check hh)));
    Alcotest.test_case "write-skew has no conflict cycle... wait, it does"
      `Quick (fun () ->
        (* r1(x) r1(y) r2(x) r2(y) w1(x) w2(y): r2(x)-w1(x) gives T2->T1,
           r1(y)-w2(y) gives T1->T2 — a cycle *)
        let a = Anomalies.find "write-skew" in
        check "unsat" true
          (Conflict_serializability.check a.Anomalies.history = Spec.Unsat));
    Alcotest.test_case "lost-update cycles" `Quick (fun () ->
        let a = Anomalies.find "lost-update" in
        check "unsat" true
          (Conflict_serializability.check a.Anomalies.history = Spec.Unsat));
    Alcotest.test_case "value-agnostic: impossible reads still accepted"
      `Quick (fun () ->
        (* T2 reads a value nobody wrote: CSR cannot see it, the
           value-based checker can *)
        let hh = h [ B (1, 1); R (1, "x", 42); C 1 ] in
        check "csr sat" true (Spec.sat (Conflict_serializability.check hh));
        check "ser unsat" true (Serializability.check hh = Spec.Unsat));
    Alcotest.test_case "excluding a pending cycle participant helps" `Quick
      (fun () ->
        (* the pending T2 closes a cycle; dropping it from com breaks it *)
        let hh =
          h [ B (1, 1); B (2, 2); R (1, "x", 0); R (2, "y", 0);
              W (2, "x", 2); W (1, "y", 1); C 1; Cp 2 ]
        in
        check "sat by exclusion" true
          (Spec.sat (Conflict_serializability.check hh)));
  ]


(* ------------------------------------------------------------------ *)
(* execution-interval snapshot isolation (the Section-5 variant) *)

let si_ei_tests =
  [
    Alcotest.test_case "pending commit may serialize late under EI" `Quick
      (fun () ->
        (* T1 is commit-pending; T2 (entirely after T1's last event) reads
           the old value, T3 then reads the new one.  Under Def. 3.1 T1's
           write point is trapped inside its (ended) active interval, so
           this is unsatisfiable; under execution intervals the point may
           float between T2 and T3. *)
        let hh =
          h [ B (1, 1); W (1, "x", 1); Cp 1;
              B (2, 2); R (2, "x", 0); C 2;
              B (3, 3); R (3, "x", 1); C 3 ]
        in
        check "active-interval SI refutes" true
          (Snapshot_isolation.check hh = Spec.Unsat);
        check "execution-interval SI accepts" true
          (Spec.sat (Snapshot_isolation_ei.check hh)));
    Alcotest.test_case "for complete histories the two variants agree"
      `Quick (fun () ->
        List.iter
          (fun (a : Anomalies.anomaly) ->
            if History.complete a.Anomalies.history then
              check a.Anomalies.name true
                (Spec.sat (Snapshot_isolation.check a.Anomalies.history)
                = Spec.sat (Snapshot_isolation_ei.check a.Anomalies.history)))
          Anomalies.catalogue);
  ]


(* ------------------------------------------------------------------ *)
(* the folklore equivalence: strict serializability via real-time
   precedence constraints coincides with "whole-transaction points placed
   inside active execution intervals" on finite histories *)

let window_strict_ser ?(budget = 500_000) hh =
  let tbl = Blocks.table hh in
  let info_of tid = Hashtbl.find tbl tid in
  let bref = ref budget in
  Checker_util.exists_com hh (fun com ->
      let tids = Tid.Set.elements com in
      let points =
        Array.of_list
          (List.map
             (fun tid ->
               let lo, hi = Checker_util.active_window (info_of tid) in
               { Placement.block = Blocks.Whole tid; lo; hi })
             tids)
      in
      Placement.satisfiable ~budget:bref
        { Placement.points; prec = [];
          focus = (fun t -> Tid.Set.mem t com);
          info_of; initial = (fun _ -> Value.initial) })

let equivalence_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:150
         ~name:"precedence-based = window-based strict serializability"
         (QCheck.make gen_history)
         (fun hh ->
           let a = Strict_serializability.check ~budget:500_000 hh in
           let b = window_strict_ser hh in
           match (a, b) with
           | Spec.Sat, Spec.Sat | Spec.Unsat, Spec.Unsat -> true
           | Spec.Out_of_budget, _ | _, Spec.Out_of_budget -> true
           | _ -> false));
    Alcotest.test_case "agrees on the whole catalogue" `Quick (fun () ->
        List.iter
          (fun (a : Anomalies.anomaly) ->
            let p = Strict_serializability.check a.Anomalies.history in
            let w = window_strict_ser a.Anomalies.history in
            if Spec.sat p <> Spec.sat w then
              Alcotest.failf "%s: prec=%s window=%s" a.Anomalies.name
                (Spec.verdict_to_string p) (Spec.verdict_to_string w))
          Anomalies.catalogue);
  ]


(* ------------------------------------------------------------------ *)
(* checker completeness: histories correct BY CONSTRUCTION must be
   accepted.  A multiversion simulator generates SI histories (snapshot at
   begin, writes visible at commit); a per-process store generates PRAM
   histories (each process sees only its own writes). *)

let gen_si_instrs : Build.instr list QCheck.Gen.t =
 fun st ->
  (* committed versions per item: (commit_stamp, value) newest first *)
  let versions : (string, (int * int) list) Hashtbl.t = Hashtbl.create 4 in
  let items = [| "x"; "y" |] in
  let stamp = ref 0 in
  let n = 2 + Random.State.int st 2 in
  (* transactions with begin stamps and op lists, interleaved round-robin *)
  let txns =
    Array.init n (fun i ->
        (i + 1, ref None (* snapshot *), ref [] (* writes *),
         1 + Random.State.int st 3 (* ops left *)))
  in
  let live = Array.make n true in
  let instrs = ref [] in
  let read_at snap item writes =
    match List.assoc_opt item !writes with
    | Some v -> v
    | None ->
        let vs = Option.value ~default:[] (Hashtbl.find_opt versions item) in
        let rec find = function
          | [] -> 0
          | (ts, v) :: rest -> if ts <= snap then v else find rest
        in
        find vs
  in
  let step i =
    let tid, snap, writes, _ = txns.(i) in
    match !snap with
    | None ->
        incr stamp;
        snap := Some !stamp;
        instrs := B (tid, tid) :: !instrs
    | Some sn ->
        let _, _, _, ops_left = txns.(i) in
        if ops_left <= 0 || Random.State.int st 4 = 0 then begin
          (* commit: versions become visible at a fresh stamp *)
          incr stamp;
          List.iter
            (fun (item, v) ->
              let vs =
                Option.value ~default:[] (Hashtbl.find_opt versions item)
              in
              Hashtbl.replace versions item ((!stamp, v) :: vs))
            !writes;
          live.(i) <- false;
          instrs := C tid :: !instrs
        end
        else begin
          let item = items.(Random.State.int st 2) in
          let t0, s0, w0, left = txns.(i) in
          txns.(i) <- (t0, s0, w0, left - 1);
          if Random.State.bool st then begin
            let v = 1 + Random.State.int st 9 in
            writes := (item, v) :: List.remove_assoc item !writes;
            instrs := W (tid, item, v) :: !instrs
          end
          else instrs := R (tid, item, read_at sn item writes) :: !instrs
        end
  in
  let rec drive () =
    let cands = List.filter (fun i -> live.(i)) (List.init n (fun i -> i)) in
    match cands with
    | [] -> ()
    | _ ->
        step (List.nth cands (Random.State.int st (List.length cands)));
        drive ()
  in
  drive ();
  List.rev !instrs

let gen_pram_instrs : Build.instr list QCheck.Gen.t =
 fun st ->
  (* per-process committed stores; reads see only the own process's
     committed writes *)
  let stores = Array.init 3 (fun _ -> Hashtbl.create 4) in
  let items = [| "x"; "y" |] in
  let instrs = ref [] in
  let tid = ref 0 in
  for _ = 1 to 2 + Random.State.int st 3 do
    incr tid;
    let p = Random.State.int st 3 in
    let local = Hashtbl.copy stores.(p) in
    instrs := B (!tid, p + 1) :: !instrs;
    for _ = 1 to 1 + Random.State.int st 2 do
      let item = items.(Random.State.int st 2) in
      if Random.State.bool st then begin
        let v = 1 + Random.State.int st 9 in
        Hashtbl.replace local item v;
        instrs := W (!tid, item, v) :: !instrs
      end
      else
        instrs :=
          R (!tid, item,
             Option.value ~default:0 (Hashtbl.find_opt local item))
          :: !instrs
    done;
    Hashtbl.reset stores.(p);
    Hashtbl.iter (fun k v -> Hashtbl.replace stores.(p) k v) local;
    instrs := C !tid :: !instrs
  done;
  List.rev !instrs

let completeness_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:150
         ~name:"multiversion-simulated histories satisfy SI"
         (QCheck.make gen_si_instrs)
         (fun instrs ->
           let hh = Build.history instrs in
           Result.is_ok (History.well_formed hh)
           && Spec.sat (Snapshot_isolation.check ~budget:600_000 hh)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:150
         ~name:"per-process-store histories satisfy PRAM"
         (QCheck.make gen_pram_instrs)
         (fun instrs ->
           let hh = Build.history instrs in
           Result.is_ok (History.well_formed hh)
           && Spec.sat (Pram.check ~budget:600_000 hh)));
  ]


(* ------------------------------------------------------------------ *)
(* opacity: the all-prefixes mode *)

let opacity_prefix_tests =
  [
    Alcotest.test_case "prefixes enumerate cleanly" `Quick (fun () ->
        let hh =
          h [ B (1, 1); W (1, "x", 1); C 1; B (2, 2); R (2, "x", 1); C 2 ]
        in
        let n = Seq.fold_left (fun acc _ -> acc + 1) 0 (Opacity.prefixes hh) in
        check "one prefix per cut" true (n = History.length hh + 1);
        Seq.iter
          (fun p ->
            check "prefix well-formed" true
              (Result.is_ok (History.well_formed p)))
          (Opacity.prefixes hh));
    Alcotest.test_case "all-prefixes agrees with final-state on the                         catalogue" `Quick (fun () ->
        List.iter
          (fun (a : Anomalies.anomaly) ->
            let final = Opacity.check a.Anomalies.history in
            let pref = Opacity.check ~all_prefixes:true a.Anomalies.history in
            (* prefix mode can only be stricter *)
            if Spec.sat pref && not (Spec.sat final) then
              Alcotest.failf "%s: prefixes sat but final unsat"
                a.Anomalies.name)
          Anomalies.catalogue);
    Alcotest.test_case "dirty read caught at the prefix too" `Quick
      (fun () ->
        let a = Anomalies.find "aborted-dirty-read" in
        check "unsat" true
          (Opacity.check ~all_prefixes:true a.Anomalies.history = Spec.Unsat));
  ]


(* ------------------------------------------------------------------ *)
(* independent brute force: enumerate ALL permutations of the points,
   check window realizability greedily and legality by replay — and
   compare with the optimized DFS solver on random small problems *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let brute_force_satisfiable (p : Placement.problem) : bool =
  let n = Array.length p.Placement.points in
  let idxs = List.init n (fun i -> i) in
  List.exists
    (fun order ->
      let pos = Array.make n 0 in
      List.iteri (fun i x -> pos.(x) <- i) order;
      List.for_all (fun (a, b) -> pos.(a) < pos.(b)) p.Placement.prec
      && (let ok = ref true and floor = ref 0 in
          List.iter
            (fun i ->
              let pt = p.Placement.points.(i) in
              floor := max !floor pt.Placement.lo;
              if !floor > pt.Placement.hi then ok := false)
            order;
          !ok)
      &&
      let rec replay state = function
        | [] -> true
        | i :: rest -> (
            match
              Blocks.eval ~initial:p.Placement.initial
                ~focus:p.Placement.focus p.Placement.info_of state
                p.Placement.points.(i).Placement.block
            with
            | Some state' -> replay state' rest
            | None -> false)
      in
      replay Item.Map.empty order)
    (permutations idxs)

(* random small placement problems over the dummy universe *)
let gen_problem : Placement.problem QCheck.Gen.t =
 fun st ->
  let n = 2 + Random.State.int st 3 in
  let items = [| Item.v "x"; Item.v "y" |] in
  let infos = Hashtbl.create 8 in
  let points =
    Array.init n (fun i ->
        let tid = Tid.v (i + 1) in
        let greads =
          if Random.State.bool st then
            [ (items.(Random.State.int st 2), Value.int (Random.State.int st 3)) ]
          else []
        in
        let writes =
          if Random.State.bool st then
            [ (items.(Random.State.int st 2), Value.int (Random.State.int st 3)) ]
          else []
        in
        Hashtbl.replace infos tid
          {
            (dummy_info tid) with
            Blocks.greads;
            writes;
            write_set = Item.set_of_list (List.map fst writes);
          };
        let lo = Random.State.int st 4 in
        let hi = lo + Random.State.int st 4 in
        let block =
          if Random.State.bool st then Blocks.Fused tid else Blocks.Whole tid
        in
        { Placement.block; lo; hi })
  in
  let prec =
    List.filter_map
      (fun _ ->
        let a = Random.State.int st n and b = Random.State.int st n in
        if a <> b then Some (a, b) else None)
      (List.init (Random.State.int st 3) (fun i -> i))
  in
  {
    Placement.points;
    prec;
    focus = (fun _ -> true);
    info_of = (fun tid -> Hashtbl.find infos tid);
    initial = (fun _ -> Value.initial);
  }

let brute_force_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:300
         ~name:"optimized solver = brute force on small problems"
         (QCheck.make gen_problem)
         (fun p ->
           let budget = ref 1_000_000 in
           let fast =
             match Placement.satisfiable ~budget p with
             | Spec.Sat -> true
             | Spec.Unsat -> false
             | Spec.Out_of_budget -> QCheck.assume_fail ()
           in
           fast = brute_force_satisfiable p));
  ]

let () =
  Alcotest.run "consistency"
    [
      ("catalogue", catalogue_tests);
      ("witnesses", witness_tests);
      ("conflict-serializability", csr_tests);
      ("si-execution-intervals", si_ei_tests);
      ("strict-ser-equivalence", equivalence_tests);
      ("completeness", completeness_tests);
      ("opacity-prefixes", opacity_prefix_tests);
      ("brute-force-cross-validation", brute_force_tests);
      ("enumerators", enumerator_tests);
      ("placement", placement_tests);
      ("delta1", delta1_tests);
      ("commit-pending", pending_tests);
      ("si-windows", si_window_tests);
      ("hierarchy", hierarchy_tests);
    ]
