(* Tests for the mechanized PCL construction: the transaction specs, the
   critical-step search, the claims of the proof against each TM, and the
   triangle verdicts. *)

open Core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let t tid = Tid.v tid
let conflict a b = Conflict.conflict Pcl_txns.data_sets (t a) (t b)

let txns_tests =
  [
    Alcotest.test_case "seven transactions on seven processes" `Quick
      (fun () ->
        check_int "count" 7 (List.length Pcl_txns.specs);
        List.iteri
          (fun i s ->
            check "pid = tid" true (s.Static_txn.pid = i + 1);
            check "tid" true (Tid.equal s.Static_txn.tid (Tid.v (i + 1))))
          Pcl_txns.specs);
    Alcotest.test_case "conflict structure of the proof" `Quick (fun () ->
        (* the conflicts the proof relies on *)
        check "T1-T3 conflict (b1, b3, e1_3)" true (conflict 1 3);
        check "T1-T2 conflict (a, b7)" true (conflict 1 2);
        check "T2-T5 conflict (b2, b5, e2_5)" true (conflict 2 5);
        check "T2-T7 conflict (a, e2_7)" true (conflict 2 7);
        check "T1-T7 conflict (a, c1, b7)" true (conflict 1 7);
        check "T3-T4 conflict (b4, c3, e3_4)" true (conflict 3 4);
        check "T5-T6 conflict (b6, c5, e5_6)" true (conflict 5 6);
        check "T1-T6 conflict (d1)" true (conflict 1 6);
        check "T2-T4 conflict (d2)" true (conflict 2 4);
        (* ... and the disjointnesses it needs *)
        check "T2-T3 disjoint" false (conflict 2 3);
        check "T2-T6 disjoint" false (conflict 2 6);
        check "T1-T5 disjoint" false (conflict 1 5);
        check "T1-T4 disjoint" false (conflict 1 4);
        check "T3-T5 disjoint" false (conflict 3 5);
        check "T3-T6 disjoint" false (conflict 3 6);
        check "T3-T7 disjoint" false (conflict 3 7);
        check "T4-T7 disjoint" false (conflict 4 7);
        check "T5-T7 disjoint" false (conflict 5 7);
        check "T6-T7 disjoint" false (conflict 6 7);
        check "T4-T5 disjoint" false (conflict 4 5);
        check "T4-T6 disjoint" false (conflict 4 6));
    Alcotest.test_case "19 data items" `Quick (fun () ->
        check_int "items" 19 (List.length Pcl_txns.items));
  ]

let candidate = (module Candidate_tm : Tm_intf.S)
let pram = (module Pram_tm : Tm_intf.S)
let tl = (module Tl_tm : Tm_intf.S)

let critical_tests =
  [
    Alcotest.test_case "candidate: s1 found with the right flip" `Quick
      (fun () ->
        match
          Pcl_critical_step.find candidate ~prefix:[] ~writer:1 ~reader:3
            ~reader_tid:(Tid.v 3) ~item:Pcl_txns.b1
            ~initial_value:Value.initial
        with
        | Pcl_critical_step.Found f ->
            check "before 0" true
              (Value.equal f.Pcl_critical_step.before Value.initial);
            check "after 1" true
              (Value.equal f.Pcl_critical_step.after (Value.int 1));
            check "non-trivial step" true
              (Primitive.non_trivial f.Pcl_critical_step.step.Access_log.prim);
            check "within the solo run" true
              (f.Pcl_critical_step.k <= f.Pcl_critical_step.writer_total)
        | _ -> Alcotest.fail "expected Found");
    Alcotest.test_case "pram: no flip (consistency signal)" `Quick (fun () ->
        match
          Pcl_critical_step.find pram ~prefix:[] ~writer:1 ~reader:3
            ~reader_tid:(Tid.v 3) ~item:Pcl_txns.b1
            ~initial_value:Value.initial
        with
        | Pcl_critical_step.No_flip { writer_total; value } ->
            check_int "zero steps" 0 writer_total;
            check "still 0" true (Value.equal value Value.initial)
        | _ -> Alcotest.fail "expected No_flip");
    Alcotest.test_case "tl: liveness signal" `Quick (fun () ->
        match
          Pcl_critical_step.find tl ~prefix:[] ~writer:1 ~reader:3
            ~reader_tid:(Tid.v 3) ~item:Pcl_txns.b1
            ~initial_value:Value.initial
        with
        | Pcl_critical_step.Liveness _ -> ()
        | _ -> Alcotest.fail "expected Liveness");
  ]

let construction_tests =
  [
    Alcotest.test_case "candidate: full construction succeeds" `Quick
      (fun () ->
        match Pcl_constructions.build candidate with
        | Ok c ->
            check "k1 positive" true (c.Pcl_constructions.k1 > 0);
            check "k2 positive" true (c.Pcl_constructions.k2 > 0);
            check "o1 <> o2 (claim 3)" false
              (Oid.equal c.Pcl_constructions.s1.Access_log.oid
                 c.Pcl_constructions.s2.Access_log.oid)
        | Error f ->
            Alcotest.failf "unexpected failure: %a" Pcl_constructions.pp_failure
              f);
    Alcotest.test_case "pram: construction reports consistency" `Quick
      (fun () ->
        match Pcl_constructions.build pram with
        | Error (Pcl_constructions.Consistency_no_flip { item; _ }) ->
            check "item b1" true (Item.equal item Pcl_txns.b1)
        | _ -> Alcotest.fail "expected Consistency_no_flip");
    Alcotest.test_case "tl: construction reports liveness" `Quick (fun () ->
        match Pcl_constructions.build tl with
        | Error (Pcl_constructions.Liveness_failure _) -> ()
        | _ -> Alcotest.fail "expected Liveness_failure");
  ]

let claims_tests =
  [
    Alcotest.test_case "candidate: claims and premises hold, figures break \
                        at T7" `Quick (fun () ->
        let r = Pcl_claims.analyse candidate in
        match r.Pcl_claims.outcome with
        | Error _ -> Alcotest.fail "construction should succeed"
        | Ok d ->
            check "claim1" true d.Pcl_claims.claim1;
            check "claim2 s1 non-trivial" true d.Pcl_claims.claim2_s1_nontrivial;
            check "claim2 o1 read after s1" true d.Pcl_claims.claim2_o1_read_by_t3;
            check "claim2 o1 read before s1" true
              d.Pcl_claims.claim2_o1_read_by_t3';
            check "claim2 s2 non-trivial" true d.Pcl_claims.claim2_s2_nontrivial;
            check "claim3" true d.Pcl_claims.claim3;
            check "premise s1 stable" true d.Pcl_claims.premise_s1_stable;
            check "premise alpha2" true d.Pcl_claims.premise_alpha2_noninterfering;
            (* beta: everything up to T7's c1/c2 holds *)
            let failed = Pcl_claims.failed_checks d.Pcl_claims.beta in
            check "beta failures at T7 only" true
              (failed <> []
              && List.for_all
                   (fun c -> Tid.equal c.Pcl_claims.tid (Tid.v 7))
                   failed);
            (* indistinguishability holds for a strictly DAP TM *)
            check "p7 cannot distinguish" true
              (Result.is_ok d.Pcl_claims.indistinguishable_p7);
            (* and the contradiction is never reached on a real TM *)
            check "no contradiction" false d.Pcl_claims.contradiction);
    Alcotest.test_case "candidate: T3/T4 rows of Figure 5 hold exactly"
      `Quick (fun () ->
        let r = Pcl_claims.analyse candidate in
        match r.Pcl_claims.outcome with
        | Error _ -> Alcotest.fail "construction should succeed"
        | Ok d ->
            List.iter
              (fun c ->
                if Tid.to_int c.Pcl_claims.tid <> 7 then
                  check c.Pcl_claims.label true c.Pcl_claims.ok)
              d.Pcl_claims.beta.Pcl_claims.checks);
    Alcotest.test_case "candidate: beta history refutes weak adaptive \
                        consistency" `Quick (fun () ->
        let r = Pcl_claims.analyse candidate in
        match r.Pcl_claims.outcome with
        | Error _ -> Alcotest.fail "construction should succeed"
        | Ok d ->
            let h =
              Pcl_claims.(d.beta.run.Pcl_harness.sim.Sim.history)
            in
            let sub =
              History.restrict h
                (Tid.Set.of_list [ Tid.v 1; Tid.v 2; Tid.v 7 ])
            in
            check "wac unsat" true (Weak_adaptive.check sub = Spec.Unsat));
    Alcotest.test_case "si-clock: both figure tables hold, p7 distinguishes"
      `Quick (fun () ->
        let r = Pcl_claims.analyse (module Si_tm : Tm_intf.S) in
        match r.Pcl_claims.outcome with
        | Error _ -> Alcotest.fail "construction should succeed"
        | Ok d ->
            check "fig5 all ok" true
              (Pcl_claims.failed_checks d.Pcl_claims.beta = []);
            check "fig6 all ok" true
              (Pcl_claims.failed_checks d.Pcl_claims.beta' = []);
            check "p7 distinguishes" true
              (Result.is_error d.Pcl_claims.indistinguishable_p7);
            check "no contradiction" false d.Pcl_claims.contradiction);
  ]

let verdict_tests =
  let expect name p c l =
    Alcotest.test_case (name ^ " verdict") `Quick (fun () ->
        let v = Pcl_verdict.assess (Registry.find_exn name) in
        let leg = function Pcl_verdict.Holds -> true | _ -> false in
        check "parallelism" p (leg v.Pcl_verdict.parallelism);
        check "consistency" c (leg v.Pcl_verdict.consistency);
        check "liveness" l (leg v.Pcl_verdict.liveness);
        check "some leg lost (the theorem)" true
          (not (leg v.Pcl_verdict.parallelism)
          || (not (leg v.Pcl_verdict.consistency))
          || not (leg v.Pcl_verdict.liveness)))
  in
  [
    expect "tl-lock" true true false;
    expect "pram-local" true false true;
    expect "dstm" false true true;
    expect "si-clock" false true true;
    expect "candidate" true false true;
    expect "llsc-candidate" true false true;
  ]


(* the proof's delta lemmas, mechanized: the auxiliary executions are WAC-
   satisfiable, but every satisfying choice of com(alpha) must exclude the
   transaction the proof says it excludes *)
let delta_lemma_tests =
  [
    Alcotest.test_case "delta2: T2 cannot be in com (Claim 4)" `Quick
      (fun () ->
        match Pcl_constructions.build candidate with
        | Error _ -> Alcotest.fail "construction should succeed"
        | Ok c ->
            let r = Pcl_harness.run candidate (Pcl_constructions.delta2 c) in
            let hh = r.Pcl_harness.sim.Sim.history in
            (* sanity: T5 reads 0 for b2 in alpha5' as the proof states *)
            check "T5 reads b2=0" true
              (Pcl_harness.read_of r (Tid.v 5) Pcl_txns.b2
              = Some (Value.int 0));
            check "satisfiable at all" true
              (Spec.sat (Weak_adaptive.check hh));
            check "unsat when T2 forced into com" true
              (Weak_adaptive.check
                 ~com_filter:(fun com -> Tid.Set.mem (Tid.v 2) com)
                 hh
              = Spec.Unsat));
    Alcotest.test_case "delta5: T1 cannot be in com (Claim 5)" `Quick
      (fun () ->
        match Pcl_constructions.build candidate with
        | Error _ -> Alcotest.fail "construction should succeed"
        | Ok c ->
            let r = Pcl_harness.run candidate (Pcl_constructions.delta5 c) in
            let hh = r.Pcl_harness.sim.Sim.history in
            check "T3 reads b1=0" true
              (Pcl_harness.read_of r (Tid.v 3) Pcl_txns.b1
              = Some (Value.int 0));
            check "satisfiable at all" true
              (Spec.sat (Weak_adaptive.check hh));
            check "unsat when T1 forced into com" true
              (Weak_adaptive.check
                 ~com_filter:(fun com -> Tid.Set.mem (Tid.v 1) com)
                 hh
              = Spec.Unsat));
  ]

let () =
  Alcotest.run "pcl"
    [
      ("txns", txns_tests);
      ("delta-lemmas", delta_lemma_tests);
      ("critical-step", critical_tests);
      ("construction", construction_tests);
      ("claims", claims_tests);
      ("verdict", verdict_tests);
    ]
