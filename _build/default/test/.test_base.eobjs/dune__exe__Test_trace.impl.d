test/test_trace.ml: Alcotest Anomalies Array Build Core Event Hashtbl History Item Legality List Option QCheck QCheck_alcotest Random Result Tid Value Wire
