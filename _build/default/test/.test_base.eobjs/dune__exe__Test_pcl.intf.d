test/test_pcl.mli:
