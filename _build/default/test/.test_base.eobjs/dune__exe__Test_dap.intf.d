test/test_dap.mli:
