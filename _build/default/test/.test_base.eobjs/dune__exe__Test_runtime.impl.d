test/test_runtime.ml: Access_log Alcotest Core Explorer List Memory Oid Printf Proc Result Schedule Scheduler Sim Value
