test/test_universal.ml: Alcotest Contention Core Explorer Hashtbl Linearizability List Memory Option Recorder Result Schedule Seq_object Sim Tid Universal Value
