test/test_workload.ml: Alcotest Core List Printf Progress Registry Tm_intf Workload
