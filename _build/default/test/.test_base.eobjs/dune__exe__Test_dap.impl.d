test/test_dap.ml: Access_log Alcotest Build Conflict Contention Core Graph_dap Item List Memory Obstruction_freedom Primitive Strict_dap Tid Value
