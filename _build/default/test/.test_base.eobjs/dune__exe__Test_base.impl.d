test/test_base.ml: Access_log Alcotest Base_object Core List Memory Oid Primitive Printf QCheck QCheck_alcotest Test Tid Value
