test/test_probe.ml: Alcotest Core Liveness_class Printf Registry
