(* Tests for the empirical liveness classifier: every TM must land in its
   textbook class, with the right witness kind. *)

open Core

let check = Alcotest.(check bool)

let classify name =
  Liveness_class.classify (Registry.find_exn name)

let class_tests =
  let expect name cls =
    Alcotest.test_case (Printf.sprintf "%s is %s" name
        (Liveness_class.cls_to_string cls)) `Slow (fun () ->
        let r = classify name in
        if r.Liveness_class.cls <> cls then
          Alcotest.failf "%s classified %s (%s)" name
            (Liveness_class.cls_to_string r.Liveness_class.cls)
            r.Liveness_class.evidence)
  in
  [
    expect "tl-lock" Liveness_class.Blocking;
    expect "tl2-clock" Liveness_class.Blocking;
    expect "norec" Liveness_class.Blocking;
    expect "pram-local" Liveness_class.Wait_free;
    expect "dstm" Liveness_class.Obstruction_free;
    expect "candidate" Liveness_class.Lock_free;
    expect "llsc-candidate" Liveness_class.Lock_free;
    (* si-clock never aborts and never stalls in the probes; its install
       retries are contention-bounded, so the observational class is
       wait-free *)
    expect "si-clock" Liveness_class.Wait_free;
  ]

let probe_tests =
  [
    Alcotest.test_case "solo progress: tl-lock stalls" `Quick (fun () ->
        match Liveness_class.solo_progress (Registry.find_exn "tl-lock") with
        | Liveness_class.Stalls _ -> ()
        | _ -> Alcotest.fail "expected a stall");
    Alcotest.test_case "solo progress: dstm always finishes" `Quick
      (fun () ->
        check "ok" true
          (Liveness_class.solo_progress (Registry.find_exn "dstm")
          = Liveness_class.Solo_ok));
    Alcotest.test_case "solo progress: tl2 aborts solo" `Quick (fun () ->
        match Liveness_class.solo_progress (Registry.find_exn "tl2-clock") with
        | Liveness_class.Solo_abort _ -> ()
        | _ -> Alcotest.fail "expected a solo abort");
    Alcotest.test_case "adversary finds dstm's livelock" `Slow (fun () ->
        check "found" true
          (Liveness_class.find_livelock (Registry.find_exn "dstm") <> None));
    Alcotest.test_case "adversary cannot starve the candidate" `Slow
      (fun () ->
        check "not found" true
          (Liveness_class.find_livelock (Registry.find_exn "candidate")
          = None));
    Alcotest.test_case "adversary cannot starve si-clock" `Slow (fun () ->
        check "not found" true
          (Liveness_class.find_livelock (Registry.find_exn "si-clock")
          = None));
  ]

let () =
  Alcotest.run "probe"
    [ ("classes", class_tests); ("probes", probe_tests) ]
