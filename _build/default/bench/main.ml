(* The benchmark / experiment harness: one section per artifact of the
   paper (see DESIGN.md's experiment index).

     dune exec bench/main.exe             -- every section
     dune exec bench/main.exe -- fig5     -- one section

   Sections:
     fig1..fig6  the proof-construction artifacts (Figures 1-6), run
                 against the two TMs on which the construction completes
                 end to end (candidate and si-clock)
     triangle    the Section-5 triangle verdicts (T-A)
     scaling     disjoint vs conflicting throughput sweep (T-B)
     checkers    decision-procedure microbenchmarks, bechamel (T-C)
     hierarchy   the anomaly x checker separation matrix (T-D)
*)

open Core

let section_enabled name =
  let requested =
    Array.to_list Sys.argv |> List.tl |> List.filter (fun s -> s <> "--")
  in
  requested = [] || List.mem name requested
  || (List.mem "figures" requested
     && String.length name = 4
     && String.sub name 0 3 = "fig")

let banner name = Format.printf "@.=============== %s ===============@." name

(* ------------------------------------------------------------------ *)
(* Figures 1-6 *)

let figure_reports =
  lazy
    (List.filter_map
       (fun name ->
         let impl = Registry.find_exn name in
         let r = Pcl_claims.analyse impl in
         match r.Pcl_claims.outcome with
         | Ok d -> Some (name, d)
         | Error _ -> None)
       [ "candidate"; "si-clock" ])

let fig12 which =
  List.iter
    (fun (name, d) ->
      Format.printf "[%s]@." name;
      Format.printf "%a@."
        (fun ppf () -> Pcl_figures.pp_fig12 ppf which d.Pcl_claims.cons)
        ())
    (Lazy.force figure_reports)

let fig34 which =
  List.iter
    (fun (name, d) ->
      let c = d.Pcl_claims.cons in
      let label, atoms =
        match which with
        | `Fig3 -> ("beta", Pcl_constructions.beta c)
        | `Fig4 -> ("beta'", Pcl_constructions.beta' c)
      in
      Format.printf "[%s] %a@." name Pcl_figures.pp_schedule_line
        (label, atoms))
    (Lazy.force figure_reports)

let fig56 which =
  List.iter
    (fun (name, d) ->
      let side, tids =
        match which with
        | `Fig5 -> (d.Pcl_claims.beta, [ 1; 2; 3; 4; 7 ])
        | `Fig6 -> (d.Pcl_claims.beta', [ 1; 2; 5; 6; 7 ])
      in
      Format.printf "[%s]@.%a" name (Pcl_figures.pp_table tids side) ();
      List.iter
        (fun c -> Format.printf "  %a@." Pcl_figures.pp_check c)
        side.Pcl_claims.checks;
      Format.printf "@.")
    (Lazy.force figure_reports)

(* ------------------------------------------------------------------ *)
(* T-A: the triangle *)

let triangle () =
  let verdicts = List.map Pcl_verdict.assess Registry.all in
  Format.printf "%-12s %-13s %-13s %-13s@." "TM" "Parallelism" "Consistency"
    "Liveness";
  List.iter
    (fun (v : Pcl_verdict.t) ->
      let cell = function
        | Pcl_verdict.Holds -> "holds"
        | Pcl_verdict.Violated _ -> "VIOLATED"
      in
      Format.printf "%-12s %-13s %-13s %-13s@." v.Pcl_verdict.impl_name
        (cell v.Pcl_verdict.parallelism)
        (cell v.Pcl_verdict.consistency)
        (cell v.Pcl_verdict.liveness))
    verdicts;
  Format.printf "@.Details:@.";
  List.iter (fun v -> Format.printf "%a@." Pcl_verdict.pp v) verdicts

(* ------------------------------------------------------------------ *)
(* T-B: scaling sweep *)

let scaling () =
  Format.printf "%-12s %-6s %-9s %8s %8s %8s %12s %12s %10s@." "TM" "procs"
    "conflict" "steps" "commits" "aborts" "steps/commit" "contentions"
    "disjoint!";
  List.iter
    (fun impl ->
      let (module M : Tm_intf.S) = impl in
      List.iter
        (fun n_procs ->
          List.iter
            (fun conflict_pct ->
              let cfg =
                { Workload.default with Workload.n_procs; conflict_pct }
              in
              let s = Workload.run impl cfg in
              Format.printf "%-12s %-6d %-9s %8d %8d %8d %12.1f %12d %10d%s@."
                M.name n_procs
                (Printf.sprintf "%d%%" conflict_pct)
                s.Workload.steps s.Workload.commits s.Workload.aborts
                (if s.Workload.commits = 0 then Float.nan
                 else
                   float_of_int s.Workload.steps
                   /. float_of_int s.Workload.commits)
                s.Workload.contentions s.Workload.disjoint_contentions
                (if s.Workload.completed then "" else "  [STALLED]"))
            [ 0; 50; 100 ])
        [ 2; 4; 8 ];
      Format.printf "@.")
    Registry.all

(* ------------------------------------------------------------------ *)
(* T-C: checker microbenchmarks (bechamel) *)

let sequential_history n_txns =
  let instrs =
    List.concat_map
      (fun k ->
        [ Build.B (k, ((k - 1) mod 3) + 1);
          Build.R (k, "x", k - 1);
          Build.W (k, "x", k); Build.C k ])
      (List.init n_txns (fun i -> i + 1))
  in
  Build.history instrs

let checkers () =
  let open Bechamel in
  let tests =
    List.concat_map
      (fun n ->
        let h = sequential_history n in
        List.map
          (fun (c : Spec.checker) ->
            Test.make
              ~name:(Printf.sprintf "%s/n=%d" c.Spec.name n)
              (Staged.stage (fun () -> ignore (c.Spec.check h))))
          [ Snapshot_isolation.checker; Processor_consistency.checker;
            Weak_adaptive.checker; Serializability.checker ])
      [ 2; 4; 6 ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
  let raw =
    Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"checkers" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ e ] -> Format.printf "  %-54s %14.0f ns/run@." name e
      | _ -> Format.printf "  %-54s (no estimate)@." name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* T-E: liveness profiles *)

let progress () =
  Format.printf
    "probe outcomes over every suspension point of a conflicting 2-item \
     writer:@.";
  Format.printf "%-12s %-22s %8s %8s %8s %8s@." "TM" "probe" "points"
    "commits" "aborts" "stalls";
  List.iter
    (fun impl ->
      let (module M : Tm_intf.S) = impl in
      List.iter
        (fun disjoint ->
          let p = Progress.run impl ~disjoint in
          Format.printf "%-12s %-22s %8d %8d %8d %8d@." M.name
            (if disjoint then "disjoint" else "conflicting")
            p.Progress.points p.Progress.commits p.Progress.aborts
            p.Progress.stalls)
        [ false; true ])
    Registry.all

(* ------------------------------------------------------------------ *)
(* T-F: empirical liveness classes *)

let liveness () =
  Format.printf "%-12s %-18s %s@." "TM" "class" "evidence";
  List.iter
    (fun impl ->
      let (module M : Tm_intf.S) = impl in
      let r = Liveness_class.classify impl in
      Format.printf "%-12s %-18s %s@." M.name
        (Liveness_class.cls_to_string r.Liveness_class.cls)
        r.Liveness_class.evidence)
    Registry.all

(* ------------------------------------------------------------------ *)
(* T-D: hierarchy matrix *)

let hierarchy () =
  let short = function
    | "opacity(final-state)" -> "opac"
    | "strict-serializability" -> "sser"
    | "serializability" -> "ser"
    | "causal-serializability" -> "caus"
    | "processor-consistency" -> "pc"
    | "pram" -> "pram"
    | "snapshot-isolation" -> "si"
  | "snapshot-isolation(ei)" -> "siei"
    | "weak-adaptive" -> "wac"
    | s -> s
  in
  Format.printf "%-28s" "history";
  List.iter
    (fun (c : Spec.checker) -> Format.printf "%-6s" (short c.Spec.name))
    Checkers.all;
  Format.printf "@.";
  List.iter
    (fun (a : Anomalies.anomaly) ->
      Format.printf "%-28s" a.Anomalies.name;
      List.iter
        (fun (c : Spec.checker) ->
          Format.printf "%-6s"
            (match c.Spec.check a.Anomalies.history with
            | Spec.Sat -> "yes"
            | Spec.Unsat -> "no"
            | Spec.Out_of_budget -> "?"))
        Checkers.all;
      Format.printf "@.")
    Anomalies.catalogue

(* ------------------------------------------------------------------ *)

let () =
  let sections =
    [
      ("fig1", fun () -> fig12 `Fig1);
      ("fig2", fun () -> fig12 `Fig2);
      ("fig3", fun () -> fig34 `Fig3);
      ("fig4", fun () -> fig34 `Fig4);
      ("fig5", fun () -> fig56 `Fig5);
      ("fig6", fun () -> fig56 `Fig6);
      ("triangle", triangle);
      ("scaling", scaling);
      ("checkers", checkers);
      ("hierarchy", hierarchy);
      ("progress", progress);
      ("liveness", liveness);
    ]
  in
  List.iter
    (fun (name, f) ->
      if section_enabled name then begin
        banner name;
        f ()
      end)
    sections
