(* The benchmark / experiment harness: one section per artifact of the
   paper (see DESIGN.md's experiment index).

     dune exec bench/main.exe             -- every section
     dune exec bench/main.exe -- fig5     -- one section
     dune exec bench/main.exe -- --json   -- machine-readable summary
                                             (BENCH_summary.json)

   Flags: --json, --out FILE, --iters N (txns per process in the scaling
   sweep, default 25), --seed N.

   Sections:
     fig1..fig6  the proof-construction artifacts (Figures 1-6), run
                 against the two TMs on which the construction completes
                 end to end (candidate and si-clock)
     triangle    the Section-5 triangle verdicts (T-A)
     scaling     disjoint vs conflicting throughput sweep (T-B)
     checkers    decision-procedure microbenchmarks, bechamel (T-C)
     flight      flight-recorder overhead on the mixed workload
     lint        per-pass pclsan cost over the recorded workload
     chaos       fault-hook overhead on the raw Memory.apply step path
     explore     interleaving-sweep throughput, naive DFS vs sleep-set DPOR
     cost        per-TM synchronization-cost matrix (RMRs, RMW-class
                 steps, wasted work) over the figure schedules and the
                 explore sweep
     soak        per-TM runtime cost of the segmented endurance driver
                 (ns/step and allocated words/step — the perf
                 regression gate's inputs)
     hierarchy   the anomaly x checker separation matrix (T-D)
*)

open Core

type cli = {
  json : bool;  (** write the machine-readable summary *)
  out : string;
  iters : int;  (** txns per process in the scaling sweep *)
  seed : int;
  sections : string list;
}

let parse_cli () : cli =
  let json = ref false
  and out = ref "BENCH_summary.json"
  and iters = ref 25
  and seed = ref 1
  and sections = ref [] in
  let int_arg flag = function
    | Some n -> n
    | None -> Fmt.failwith "%s expects an integer" flag
  in
  let rec go = function
    | [] -> ()
    | "--" :: rest -> go rest
    | "--json" :: rest ->
        json := true;
        go rest
    | "--out" :: f :: rest ->
        out := f;
        go rest
    | "--iters" :: n :: rest ->
        iters := int_arg "--iters" (int_of_string_opt n);
        go rest
    | "--seed" :: n :: rest ->
        seed := int_arg "--seed" (int_of_string_opt n);
        go rest
    | s :: _ when String.length s > 2 && String.sub s 0 2 = "--" ->
        Fmt.failwith
          "unknown flag %s (want --json, --out FILE, --iters N, --seed N \
           or section names)"
          s
    | s :: rest ->
        sections := s :: !sections;
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  {
    json = !json;
    out = !out;
    iters = !iters;
    seed = !seed;
    sections = List.rev !sections;
  }

(* --json with no explicit sections runs only the machine-readable
   artifacts (the scaling sweep, the chaos fault-hook overhead and the
   exploration sweep); otherwise no sections means all. *)
let section_enabled cli name =
  let requested = cli.sections in
  (requested = []
  && ((not cli.json) || name = "scaling" || name = "chaos"
     || name = "explore" || name = "cost" || name = "soak"))
  || List.mem name requested
  || (List.mem "figures" requested
     && String.length name = 4
     && String.sub name 0 3 = "fig")

let banner name = Format.printf "@.=============== %s ===============@." name

(* ------------------------------------------------------------------ *)
(* Figures 1-6 *)

let figure_reports =
  lazy
    (List.filter_map
       (fun name ->
         let impl = Registry.find_exn name in
         let r = Pcl_claims.analyse impl in
         match r.Pcl_claims.outcome with
         | Ok d -> Some (name, d)
         | Error _ -> None)
       [ "candidate"; "si-clock" ])

let fig12 which =
  List.iter
    (fun (name, d) ->
      Format.printf "[%s]@." name;
      Format.printf "%a@."
        (fun ppf () -> Pcl_figures.pp_fig12 ppf which d.Pcl_claims.cons)
        ())
    (Lazy.force figure_reports)

let fig34 which =
  List.iter
    (fun (name, d) ->
      let c = d.Pcl_claims.cons in
      let label, atoms =
        match which with
        | `Fig3 -> ("beta", Pcl_constructions.beta c)
        | `Fig4 -> ("beta'", Pcl_constructions.beta' c)
      in
      Format.printf "[%s] %a@." name Pcl_figures.pp_schedule_line
        (label, atoms))
    (Lazy.force figure_reports)

let fig56 which =
  List.iter
    (fun (name, d) ->
      let side, tids =
        match which with
        | `Fig5 -> (d.Pcl_claims.beta, [ 1; 2; 3; 4; 7 ])
        | `Fig6 -> (d.Pcl_claims.beta', [ 1; 2; 5; 6; 7 ])
      in
      Format.printf "[%s]@.%a" name (Pcl_figures.pp_table tids side) ();
      List.iter
        (fun c -> Format.printf "  %a@." Pcl_figures.pp_check c)
        side.Pcl_claims.checks;
      Format.printf "@.")
    (Lazy.force figure_reports)

(* ------------------------------------------------------------------ *)
(* T-A: the triangle *)

let triangle () =
  let verdicts = List.map Pcl_verdict.assess Registry.all in
  Format.printf "%-12s %-13s %-13s %-13s@." "TM" "Parallelism" "Consistency"
    "Liveness";
  List.iter
    (fun (v : Pcl_verdict.t) ->
      let cell = function
        | Pcl_verdict.Holds -> "holds"
        | Pcl_verdict.Violated _ -> "VIOLATED"
      in
      Format.printf "%-12s %-13s %-13s %-13s@." v.Pcl_verdict.impl_name
        (cell v.Pcl_verdict.parallelism)
        (cell v.Pcl_verdict.consistency)
        (cell v.Pcl_verdict.liveness))
    verdicts;
  Format.printf "@.Details:@.";
  List.iter (fun v -> Format.printf "%a@." Pcl_verdict.pp v) verdicts

(* ------------------------------------------------------------------ *)
(* T-B: scaling sweep *)

type scaling_row = {
  tm : string;
  procs : int;
  conflict_pct : int;
  stats : Workload.stats;
}

let scaling ~iters ~seed () : scaling_row list =
  Format.printf "%-12s %-6s %-9s %8s %8s %8s %12s %12s %10s@." "TM" "procs"
    "conflict" "steps" "commits" "aborts" "steps/commit" "contentions"
    "disjoint!";
  let rows = ref [] in
  List.iter
    (fun impl ->
      let (module M : Tm_intf.S) = impl in
      List.iter
        (fun n_procs ->
          List.iter
            (fun conflict_pct ->
              let cfg =
                { Workload.default with Workload.n_procs; conflict_pct;
                  txns_per_proc = iters; seed }
              in
              let s = Workload.run impl cfg in
              rows :=
                { tm = M.name; procs = n_procs; conflict_pct; stats = s }
                :: !rows;
              Format.printf "%-12s %-6d %-9s %8d %8d %8d %12.1f %12d %10d%s@."
                M.name n_procs
                (Printf.sprintf "%d%%" conflict_pct)
                s.Workload.steps s.Workload.commits s.Workload.aborts
                (if s.Workload.commits = 0 then Float.nan
                 else
                   float_of_int s.Workload.steps
                   /. float_of_int s.Workload.commits)
                s.Workload.contentions s.Workload.disjoint_contentions
                (if s.Workload.completed then "" else "  [STALLED]"))
            [ 0; 50; 100 ])
        [ 2; 4; 8 ];
      Format.printf "@.")
    Registry.all;
  List.rev !rows

(* ------------------------------------------------------------------ *)
(* T-C: checker microbenchmarks (bechamel) *)

let sequential_history n_txns =
  let instrs =
    List.concat_map
      (fun k ->
        [ Build.B (k, ((k - 1) mod 3) + 1);
          Build.R (k, "x", k - 1);
          Build.W (k, "x", k); Build.C k ])
      (List.init n_txns (fun i -> i + 1))
  in
  Build.history instrs

let checkers () =
  let open Bechamel in
  let tests =
    List.concat_map
      (fun n ->
        let h = sequential_history n in
        List.map
          (fun (c : Spec.checker) ->
            Test.make
              ~name:(Printf.sprintf "%s/n=%d" c.Spec.name n)
              (Staged.stage (fun () -> ignore (c.Spec.check h))))
          [ Snapshot_isolation.checker; Processor_consistency.checker;
            Weak_adaptive.checker; Serializability.checker ])
      [ 2; 4; 6 ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
  let raw =
    Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"checkers" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ e ] -> Format.printf "  %-54s %14.0f ns/run@." name e
      | _ -> Format.printf "  %-54s (no estimate)@." name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* T-E: liveness profiles *)

let progress () =
  Format.printf
    "probe outcomes over every suspension point of a conflicting 2-item \
     writer:@.";
  Format.printf "%-12s %-22s %8s %8s %8s %8s@." "TM" "probe" "points"
    "commits" "aborts" "stalls";
  List.iter
    (fun impl ->
      let (module M : Tm_intf.S) = impl in
      List.iter
        (fun disjoint ->
          let p = Progress.run impl ~disjoint in
          Format.printf "%-12s %-22s %8d %8d %8d %8d@." M.name
            (if disjoint then "disjoint" else "conflicting")
            p.Progress.points p.Progress.commits p.Progress.aborts
            p.Progress.stalls)
        [ false; true ])
    Registry.all

(* ------------------------------------------------------------------ *)
(* T-F: empirical liveness classes *)

let liveness () =
  Format.printf "%-12s %-18s %s@." "TM" "class" "evidence";
  List.iter
    (fun impl ->
      let (module M : Tm_intf.S) = impl in
      let r = Liveness_class.classify impl in
      Format.printf "%-12s %-18s %s@." M.name
        (Liveness_class.cls_to_string r.Liveness_class.cls)
        r.Liveness_class.evidence)
    Registry.all

(* ------------------------------------------------------------------ *)
(* flight-recorder overhead: the mixed workload with recording off vs on.
   "off" is the shipping default — the only instrumentation on that path
   is a hook-installed check per Memory.apply. *)

let flight_overhead ~iters ~seed () =
  let cfg =
    { Workload.default with Workload.conflict_pct = 50;
      txns_per_proc = iters; seed }
  in
  let time f =
    ignore (f ());
    (* warm-up *)
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Sys.time () in
      ignore (f ());
      let dt = Sys.time () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  Format.printf
    "mixed workload (conflict 50%%, %d txns/proc), best of 5 runs:@." iters;
  Format.printf "%-12s %10s %14s %14s %9s@." "TM" "steps" "off ns/step"
    "on ns/step" "overhead";
  List.iter
    (fun impl ->
      let (module M : Tm_intf.S) = impl in
      let steps = ref 1 in
      let off =
        time (fun () ->
            let s = Workload.run impl cfg in
            steps := max 1 s.Workload.steps)
      in
      let fl = Flight.create () in
      let on =
        time (fun () ->
            Flight.with_recorder fl (fun () -> Workload.run impl cfg))
      in
      let ns t = t *. 1e9 /. float_of_int !steps in
      Format.printf "%-12s %10d %14.1f %14.1f %8.1f%%@." M.name !steps
        (ns off) (ns on)
        ((on -. off) /. off *. 100.))
    [ Registry.find_exn "tl-lock"; Registry.find_exn "candidate" ]

(* ------------------------------------------------------------------ *)
(* pclsan overhead: record the mixed workload once per TM, then time each
   lint pass alone over the same recorded input — the cost a CI lint run
   adds per recorded step, pass by pass. *)

let lint_overhead ~iters ~seed () =
  let cfg =
    { Workload.default with Workload.conflict_pct = 50;
      txns_per_proc = iters; seed }
  in
  let time f =
    ignore (f ());
    (* warm-up *)
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Sys.time () in
      ignore (f ());
      let dt = Sys.time () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let tms = [ Registry.find_exn "tl-lock"; Registry.find_exn "candidate" ] in
  Format.printf
    "per-pass lint cost over the recorded mixed workload (conflict 50%%, \
     %d txns/proc), best of 5 runs:@."
    iters;
  Format.printf "%-16s" "pass \\ TM";
  List.iter
    (fun impl ->
      let (module M : Tm_intf.S) = impl in
      Format.printf "%16s" M.name)
    tms;
  Format.printf "%16s@." "unit";
  let inputs =
    List.map
      (fun impl ->
        let (module M : Tm_intf.S) = impl in
        let fl = Flight.create () in
        Flight.with_recorder fl (fun () -> ignore (Workload.run impl cfg));
        let input =
          { (Lint.input_of_flight fl) with Lint.tm = Some M.name }
        in
        (List.length input.Lint.log, input))
      tms
  in
  (* the happens-before analysis alone: every trace pass pays it *)
  Format.printf "%-16s" "hb-engine";
  List.iter
    (fun (steps, (input : Lint.input)) ->
      let dt =
        time (fun () -> Hb.analyse ~history:input.Lint.history input.Lint.log)
      in
      Format.printf "%16.1f" (dt *. 1e9 /. float_of_int (max 1 steps)))
    inputs;
  Format.printf "%16s@." "ns/step";
  List.iter
    (fun (pass : Lint.pass) ->
      Format.printf "%-16s" pass.Lint.name;
      List.iter
        (fun (steps, input) ->
          let dt = time (fun () -> pass.Lint.run Lint.default input) in
          Format.printf "%16.1f" (dt *. 1e9 /. float_of_int (max 1 steps)))
        inputs;
      Format.printf "%16s@." "ns/step")
    Lint_passes.trace_passes

(* ------------------------------------------------------------------ *)
(* chaos: fault-hook overhead on the raw step path.  The fault hook is
   consulted before every Memory.apply, so the number that matters is
   what an installed but never-firing hook costs per step — the price
   every chaos cell pays on top of the plain simulation (the shipping
   default is no hook at all). *)

type chaos_row = { prim : string; reps : int; off_ns : float; on_ns : float }

let chaos_overhead ~iters () =
  let reps = max 200_000 (iters * 8_000) in
  let time f =
    ignore (f ());
    (* warm-up *)
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Sys.time () in
      ignore (f ());
      let dt = Sys.time () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let never_fires ~pid:_ ~tid:_ ~step:_ _ _ = None in
  let run prim hooked () =
    let mem = Memory.create () in
    let x = Memory.alloc mem ~name:"bench:x" (Value.int 0) in
    if hooked then Memory.set_fault_hook mem never_fires;
    for _ = 1 to reps do
      ignore (Memory.apply mem ~pid:1 x prim)
    done
  in
  Format.printf
    "fault-hook cost per Memory.apply (hook installed, never firing), %d \
     steps per run, best of 5 runs:@."
    reps;
  Format.printf "%-10s %14s %14s %9s@." "prim" "off ns/step" "on ns/step"
    "overhead";
  List.map
    (fun (name, prim) ->
      let off = time (run prim false) in
      let on = time (run prim true) in
      let ns t = t *. 1e9 /. float_of_int reps in
      Format.printf "%-10s %14.2f %14.2f %8.1f%%@." name (ns off) (ns on)
        ((on -. off) /. off *. 100.);
      { prim = name; reps; off_ns = ns off; on_ns = ns on })
    [
      ("read", Primitive.Read);
      ("write", Primitive.Write (Value.int 1));
      ("cas", Primitive.Cas { expected = Value.int 0; desired = Value.int 0 });
    ]

(* ------------------------------------------------------------------ *)
(* explore: interleaving-sweep throughput on the incremental engine —
   the stock writer/reader pair enumerated per TM with the naive DFS and
   again with sleep-set DPOR.  The search is deterministic, so a single
   run per mode suffices; the numbers that matter are nodes visited per
   second (engine throughput) and the reduction ratio (how much of the
   naive tree DPOR proves redundant while enumerating the same final
   histories). *)

type explore_row = {
  etm : string;
  naive_nodes : int;
  naive_execs : int;
  naive_secs : float;
  naive_truncated : bool;
  por_nodes : int;
  por_execs : int;
  por_secs : float;
  por_truncated : bool;
}

let explore_bench () : explore_row list =
  Format.printf
    "stock writer/reader sweep per TM, naive DFS vs sleep-set DPOR:@.";
  Format.printf "%-14s %9s %7s %10s %9s %7s %10s %7s@." "TM" "naive" "execs"
    "nodes/s" "por" "execs" "nodes/s" "ratio";
  List.map
    (fun impl ->
      let (module M : Tm_intf.S) = impl in
      let timed por =
        let t0 = Sys.time () in
        let _rows, st = Explore_sweep.run ~por impl in
        (st, Sys.time () -. t0)
      in
      let n, nt = timed false in
      let p, pt = timed true in
      let rate (st : Explorer.stats) t =
        if t <= 0. then Float.nan else float_of_int st.Explorer.nodes /. t
      in
      Format.printf "%-14s %9d %7d %10.0f %9d %7d %10.0f %6.1fx%s@." M.name
        n.Explorer.nodes n.Explorer.executions (rate n nt) p.Explorer.nodes
        p.Explorer.executions (rate p pt)
        (float_of_int n.Explorer.nodes
        /. float_of_int (max 1 p.Explorer.nodes))
        (if n.Explorer.truncated || p.Explorer.truncated then "  [truncated]"
         else "");
      {
        etm = M.name;
        naive_nodes = n.Explorer.nodes;
        naive_execs = n.Explorer.executions;
        naive_secs = nt;
        naive_truncated = n.Explorer.truncated;
        por_nodes = p.Explorer.nodes;
        por_execs = p.Explorer.executions;
        por_secs = pt;
        por_truncated = p.Explorer.truncated;
      })
    Registry.all

(* ------------------------------------------------------------------ *)
(* cost: the synchronization-cost matrix — deterministic, so the rows
   land in the summary verbatim and CI can diff them against the
   committed baseline *)

let cost_bench () : Cost_run.row list =
  let rows = List.concat_map Cost_run.rows_for Registry.all in
  Format.printf "%a@." Cost_run.pp_table rows;
  (match Cost_run.check rows with
  | [] -> Format.printf "expected-cost check: clean@."
  | vs ->
      List.iter
        (fun (tm, w, fields) ->
          Format.printf "expected-cost VIOLATION %s/%s: %s@." tm w
            (String.concat ", " fields))
        vs);
  rows

(* ------------------------------------------------------------------ *)
(* soak: per-TM runtime cost of the segmented endurance driver — ns per
   step (wall, machine-dependent) and allocated words per step (near
   deterministic for a pinned compiler), the two numbers the perf
   regression gate watches so later runtime work can't silently regress
   the hot path.  Steps and txns are simulator-deterministic and land
   in the baseline exactly. *)

type soak_row = {
  stm : string;
  s_txns : int;
  s_steps : int;
  s_wall_ns : int;
  s_words : float;
}

let soak_bench ~seed () : soak_row list =
  let txns = 2_000 in
  let cfg tm_seed = { Soak.default with Soak.txns; seed = tm_seed } in
  Format.printf
    "segmented soak, %d committed txns per TM (conflict %d%%), warm run:@."
    txns Soak.default.Soak.conflict_pct;
  Format.printf "%-14s %8s %10s %12s %12s@." "TM" "txns" "steps" "ns/step"
    "words/step";
  List.map
    (fun impl ->
      let (module M : Tm_intf.S) = impl in
      ignore (Soak.run impl (cfg seed));
      (* warm-up *)
      let gcm = Gcstat.create () in
      let t0 = Sys.time () in
      let o = Soak.run impl (cfg seed) in
      let wall_ns = int_of_float ((Sys.time () -. t0) *. 1e9) in
      let words = Gcstat.allocated_words gcm in
      let p = o.Soak.progress in
      let fsteps = float_of_int (max 1 p.Soak.steps) in
      (* pram-local commits without memory steps: per-step rates are 0 *)
      Format.printf "%-14s %8d %10d %12.1f %12.1f%s@." M.name
        p.Soak.txns_done p.Soak.steps
        (if p.Soak.steps = 0 then 0. else float_of_int wall_ns /. fsteps)
        (if p.Soak.steps = 0 then 0. else words /. fsteps)
        (if o.Soak.stall = None then "" else "  [STALLED]");
      {
        stm = M.name;
        s_txns = p.Soak.txns_done;
        s_steps = p.Soak.steps;
        s_wall_ns = wall_ns;
        s_words = words;
      })
    Registry.all

(* ------------------------------------------------------------------ *)
(* T-D: hierarchy matrix *)

let hierarchy () =
  let short = function
    | "opacity(final-state)" -> "opac"
    | "strict-serializability" -> "sser"
    | "serializability" -> "ser"
    | "causal-serializability" -> "caus"
    | "processor-consistency" -> "pc"
    | "pram" -> "pram"
    | "snapshot-isolation" -> "si"
  | "snapshot-isolation(ei)" -> "siei"
    | "weak-adaptive" -> "wac"
    | s -> s
  in
  Format.printf "%-28s" "history";
  List.iter
    (fun (c : Spec.checker) -> Format.printf "%-6s" (short c.Spec.name))
    Checkers.all;
  Format.printf "@.";
  List.iter
    (fun (a : Anomalies.anomaly) ->
      Format.printf "%-28s" a.Anomalies.name;
      List.iter
        (fun (c : Spec.checker) ->
          Format.printf "%-6s"
            (match c.Spec.check a.Anomalies.history with
            | Spec.Sat -> "yes"
            | Spec.Unsat -> "no"
            | Spec.Out_of_budget -> "?"))
        Checkers.all;
      Format.printf "@.")
    Anomalies.catalogue

(* ------------------------------------------------------------------ *)
(* the machine-readable summary: scaling rows + the telemetry snapshot *)

let row_json (r : scaling_row) : Obs_json.t =
  let s = r.stats in
  Obs_json.Obj
    [
      ("tm", Obs_json.String r.tm);
      ("procs", Obs_json.Int r.procs);
      ("conflict_pct", Obs_json.Int r.conflict_pct);
      ("steps", Obs_json.Int s.Workload.steps);
      ("commits", Obs_json.Int s.Workload.commits);
      ("aborts", Obs_json.Int s.Workload.aborts);
      ("contentions", Obs_json.Int s.Workload.contentions);
      ("disjoint_contentions", Obs_json.Int s.Workload.disjoint_contentions);
      ("completed", Obs_json.Bool s.Workload.completed);
    ]

let chaos_row_json (r : chaos_row) : Obs_json.t =
  Obs_json.Obj
    [
      ("prim", Obs_json.String r.prim);
      ("steps", Obs_json.Int r.reps);
      ("off_ns_per_step", Obs_json.Float r.off_ns);
      ("on_ns_per_step", Obs_json.Float r.on_ns);
    ]

let explore_row_json (r : explore_row) : Obs_json.t =
  let rate nodes secs =
    if secs <= 0. then 0. else float_of_int nodes /. secs
  in
  Obs_json.Obj
    [
      ("tm", Obs_json.String r.etm);
      ("naive_nodes", Obs_json.Int r.naive_nodes);
      ("naive_executions", Obs_json.Int r.naive_execs);
      ("naive_nodes_per_sec", Obs_json.Float (rate r.naive_nodes r.naive_secs));
      ("naive_truncated", Obs_json.Bool r.naive_truncated);
      ("por_nodes", Obs_json.Int r.por_nodes);
      ("por_executions", Obs_json.Int r.por_execs);
      ("por_nodes_per_sec", Obs_json.Float (rate r.por_nodes r.por_secs));
      ("por_truncated", Obs_json.Bool r.por_truncated);
      ( "reduction_ratio",
        Obs_json.Float
          (float_of_int r.naive_nodes /. float_of_int (max 1 r.por_nodes)) );
    ]

let soak_row_json (r : soak_row) : Obs_json.t =
  (* a TM that commits without shared-memory steps (pram-local) has no
     per-step rates: mark the row degenerate so ratchet tooling skips it
     instead of ratcheting against a 0/0 *)
  let degenerate = r.s_steps = 0 in
  let fsteps = float_of_int (max 1 r.s_steps) in
  Obs_json.Obj
    [
      ("tm", Obs_json.String r.stm);
      ("txns", Obs_json.Int r.s_txns);
      ("steps", Obs_json.Int r.s_steps);
      ("degenerate", Obs_json.Bool degenerate);
      ( "ns_per_step",
        Obs_json.Float
          (if degenerate then 0. else float_of_int r.s_wall_ns /. fsteps) );
      ( "words_per_step",
        Obs_json.Float (if degenerate then 0. else r.s_words /. fsteps) );
    ]

let write_summary cli (rows : scaling_row list) (chaos : chaos_row list)
    (explore : explore_row list) (cost : Cost_run.row list)
    (soak : soak_row list) =
  let metric_lines =
    List.filter
      (fun j ->
        Obs_json.member "type" j = Some (Obs_json.String "metric"))
      (Sink.jsonl_values Sink.default)
  in
  let doc =
    Obs_json.Obj
      [
        Schema.field;
        ("tool", Obs_json.String "bench");
        ("iters", Obs_json.Int cli.iters);
        ("seed", Obs_json.Int cli.seed);
        ("scaling", Obs_json.List (List.map row_json rows));
        ("chaos", Obs_json.List (List.map chaos_row_json chaos));
        ("explore", Obs_json.List (List.map explore_row_json explore));
        ("cost", Obs_json.List (List.map Cost_run.row_json cost));
        ("soak", Obs_json.List (List.map soak_row_json soak));
        ("metrics", Obs_json.List metric_lines);
      ]
  in
  let oc = open_out cli.out in
  output_string oc (Obs_json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.wrote %s (%d scaling rows, %d metric samples)@." cli.out
    (List.length rows) (List.length metric_lines)

let () =
  let cli = parse_cli () in
  Sink.set_meta Sink.default "tool" "bench";
  Sink.set_meta Sink.default "iters" (string_of_int cli.iters);
  Sink.set_meta Sink.default "seed" (string_of_int cli.seed);
  let scaling_rows = ref [] in
  let chaos_rows = ref [] in
  let explore_rows = ref [] in
  let cost_rows = ref [] in
  let soak_rows = ref [] in
  let sections =
    [
      ("fig1", fun () -> fig12 `Fig1);
      ("fig2", fun () -> fig12 `Fig2);
      ("fig3", fun () -> fig34 `Fig3);
      ("fig4", fun () -> fig34 `Fig4);
      ("fig5", fun () -> fig56 `Fig5);
      ("fig6", fun () -> fig56 `Fig6);
      ("triangle", triangle);
      ( "scaling",
        fun () ->
          scaling_rows := scaling ~iters:cli.iters ~seed:cli.seed () );
      ("checkers", checkers);
      ("flight", fun () -> flight_overhead ~iters:cli.iters ~seed:cli.seed ());
      ("lint", fun () -> lint_overhead ~iters:cli.iters ~seed:cli.seed ());
      ("chaos", fun () -> chaos_rows := chaos_overhead ~iters:cli.iters ());
      ("explore", fun () -> explore_rows := explore_bench ());
      ("cost", fun () -> cost_rows := cost_bench ());
      ("soak", fun () -> soak_rows := soak_bench ~seed:cli.seed ());
      ("hierarchy", hierarchy);
      ("progress", progress);
      ("liveness", liveness);
    ]
  in
  List.iter
    (fun (name, f) ->
      if section_enabled cli name then begin
        banner name;
        f ()
      end)
    sections;
  if cli.json then
    write_summary cli !scaling_rows !chaos_rows !explore_rows !cost_rows
      !soak_rows
