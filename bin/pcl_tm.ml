(* pcl_tm — the command-line front end of the workbench.

     pcl_tm list                          available TMs, checkers, anomalies
     pcl_tm verdict [-t TM]               triangle verdict(s)
     pcl_tm figures [-t TM]               full proof-construction report
     pcl_tm anomalies                     anomaly x checker matrix
     pcl_tm check -a ANOMALY [-c CHECKER] run checkers on a catalogue history
     pcl_tm explore -t TM                 exhaustive interleavings of a small
                                          conflicting workload, with the
                                          strongest condition each satisfies
     pcl_tm lint [TRACE..] [-t TM]        pclsan: happens-before and lint
                                          passes over dumped artifacts or
                                          live recorded runs
*)

open Core
open Cmdliner

let tm_arg =
  let doc = "TM implementation (see `pcl_tm list')." in
  Arg.(value & opt (some string) None & info [ "t"; "tm" ] ~docv:"TM" ~doc)

let impls_of = function
  | None -> Registry.all
  | Some n -> (
      match Registry.lookup n with
      | Registry.Found i -> [ i ]
      | Registry.Ambiguous candidates ->
          Fmt.failwith "ambiguous TM %S: matches %s" n
            (String.concat ", " candidates)
      | Registry.Unknown -> Fmt.failwith "unknown TM %S (try `pcl_tm list')" n)

let width_arg =
  Arg.(
    value & opt int 72
    & info [ "width" ] ~docv:"COLS" ~doc:"Timeline band width in columns.")

let watch_arg =
  Arg.(
    value & flag
    & info [ "watch" ]
        ~doc:
          "Live telemetry: render a one-line progress/metrics snapshot on \
           stderr every few hundred progress ticks (executions, \
           iterations, cells), read from the metrics registry.  Never \
           touches stdout, so $(b,--json) output stays clean.")

(* the metric names a watch line samples, by command *)
let watch_counters =
  [
    ("nodes", "explorer_nodes_total");
    ("pruned", "explorer_sleep_pruned_total");
    ("commits", "tm_commit_total");
    ("aborts", "tm_abort_total");
    ("rmrs", "cost_rmr_total");
  ]

let make_watch ~enabled ~label ~every =
  if enabled then Some (Watch.create ~every ~label watch_counters) else None

let watch_tick = Option.iter Watch.tick
let watch_finish = Option.iter Watch.finish

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Format.printf "TM implementations:@.";
    List.iter
      (fun (module M : Tm_intf.S) ->
        Format.printf "  %-12s %s@." M.name M.describe)
      Registry.all;
    Format.printf "@.Consistency checkers:@.";
    List.iter
      (fun (c : Spec.checker) -> Format.printf "  %s@." c.Spec.name)
      Checkers.all;
    Format.printf "@.Anomaly histories:@.";
    List.iter
      (fun (a : Anomalies.anomaly) ->
        Format.printf "  %-28s %s@." a.Anomalies.name a.Anomalies.description)
      Anomalies.catalogue
  in
  Cmd.v (Cmd.info "list" ~doc:"List TMs, checkers and anomaly histories.")
    Term.(const run $ const ())

let verdict_cmd =
  let run tm =
    List.iter
      (fun impl ->
        let v = Pcl_verdict.assess impl in
        Format.printf "%a@.@." Pcl_verdict.pp v)
      (impls_of tm)
  in
  Cmd.v
    (Cmd.info "verdict"
       ~doc:"Run the PCL harness and report the P/C/L triangle verdict.")
    Term.(const run $ tm_arg)

let figures_cmd =
  let render =
    Arg.(
      value & flag
      & info [ "render" ]
          ~doc:
            "Render Figures 1-6 as per-process timeline art (flight-recorder \
             replays with the critical steps s1/s2 highlighted) instead of \
             the textual claims report.")
  in
  let run tm render width =
    List.iter
      (fun impl ->
        if render then begin
          let (module M : Tm_intf.S) = impl in
          match Pcl_constructions.build impl with
          | Error f ->
              Format.printf "=== %s: construction stopped: %a@.@." M.name
                Pcl_constructions.pp_failure f
          | Ok c ->
              Format.printf "=== PCL figures for %s ===@.%s@." M.name
                (Pcl_figures.render_constructions ~width c)
        end
        else
          let report = Pcl_claims.analyse impl in
          Format.printf "%a@." Pcl_figures.pp_report report)
      (impls_of tm)
  in
  Cmd.v
    (Cmd.info "figures"
       ~doc:
         "Re-enact the proof construction (Figures 1-6, Claims 1-5) against \
          a TM; $(b,--render) draws them as step-level timelines.")
    Term.(const run $ tm_arg $ render $ width_arg)

let anomalies_cmd =
  let run () =
    List.iter
      (fun (a : Anomalies.anomaly) ->
        Format.printf "%-28s satisfies: %s@." a.Anomalies.name
          (String.concat ", " (Checkers.satisfied a.Anomalies.history)))
      Anomalies.catalogue
  in
  Cmd.v
    (Cmd.info "anomalies"
       ~doc:"Evaluate every checker on the anomaly catalogue.")
    Term.(const run $ const ())

let checker_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "c"; "checker" ] ~docv:"CHECKER"
        ~doc:"Checker name (default: all).")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "When a checker answers sat, print the witness serialization it \
           found (supported for serializability, snapshot-isolation, \
           processor-consistency, pram and weak-adaptive).")

let run_checkers history checker explain =
  let checkers =
    match checker with
    | None -> Checkers.all
    | Some n -> [ Checkers.find_exn n ]
  in
  List.iter
    (fun (c : Spec.checker) ->
      let v = c.Spec.check history in
      Format.printf "  %-26s %a@." c.Spec.name Spec.pp_verdict v;
      if explain && Spec.sat v then
        match Checkers.explain c.Spec.name history with
        | Some w -> Format.printf "%a@." Witness.pp w
        | None -> ())
    checkers

let check_cmd =
  let anomaly =
    Arg.(
      required
      & opt (some string) None
      & info [ "a"; "anomaly" ] ~docv:"NAME" ~doc:"Catalogue history name.")
  in
  let run anomaly checker explain =
    let a =
      try Anomalies.find anomaly
      with Not_found -> Fmt.failwith "unknown anomaly %S" anomaly
    in
    Format.printf "%s: %s@.@.%a@.@." a.Anomalies.name a.Anomalies.description
      History.pp a.Anomalies.history;
    run_checkers a.Anomalies.history checker explain
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Run consistency checkers on a catalogue history.")
    Term.(const run $ anomaly $ checker_arg $ explain_arg)

let check_file_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "History in the wire format: invocations +b1\\@2 +r1(x) \
             +w1(x)=5 +c1 +a1; responses -ok1 -v1=0 -C1 -A1; '#' comments.")
  in
  let run file checker explain =
    let ic = open_in file in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    match Wire.parse text with
    | Error msg -> Fmt.failwith "parse error: %s" msg
    | Ok history -> (
        match History.well_formed history with
        | Error msg -> Fmt.failwith "ill-formed history: %s" msg
        | Ok () ->
            Format.printf "%a@.@." History.pp history;
            run_checkers history checker explain)
  in
  Cmd.v
    (Cmd.info "check-file"
       ~doc:"Run consistency checkers on a history from a file.")
    Term.(const run $ file $ checker_arg $ explain_arg)

let liveness_cmd =
  let run tm =
    List.iter
      (fun impl ->
        let (module M : Tm_intf.S) = impl in
        let r = Liveness_class.classify impl in
        Format.printf "%-12s %-18s %s@." M.name
          (Liveness_class.cls_to_string r.Liveness_class.cls)
          r.Liveness_class.evidence)
      (impls_of tm)
  in
  Cmd.v
    (Cmd.info "liveness"
       ~doc:
         "Classify each TM's liveness empirically (wait-free / lock-free / \
          obstruction-free / blocking) with probe witnesses, including the \
          adaptive commit-avoiding adversary that exhibits DSTM's \
          mutual-abort livelock.")
    Term.(const run $ tm_arg)

(* --record / --dump-dir: dump failing executions as replayable
   flight-recorder artifacts *)

let record_arg =
  Arg.(
    value & flag
    & info [ "record" ]
        ~doc:
          "Record executions with the flight recorder and dump every \
           violating one as a replayable .trace.jsonl artifact (see \
           $(b,--dump-dir) and `pcl_tm explain').")

let dump_dir_arg =
  Arg.(
    value & opt string "traces"
    & info [ "dump-dir" ] ~docv:"DIR"
        ~doc:"Directory for dumped trace artifacts (created if missing).")

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let lint_flag =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Run the pclsan trace passes (race, strict-dap, of-stall, \
           anomalies) on every execution; findings outside the TM's \
           expected set count as violations (see `pcl_tm lint').")

let por_flag =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "por" ]
              ~doc:
                "Sleep-set dynamic partial-order reduction: skip \
                 interleavings that only reorder independent steps \
                 (default).  The set of consistency verdicts is \
                 unchanged; node and execution counts shrink." );
          ( false,
            info [ "no-por" ]
              ~doc:
                "Disable partial-order reduction and enumerate every \
                 interleaving naively (the pre-reduction engine's exact \
                 behaviour)." );
        ])

(** Sweep the standard writer/reader pair ({!Explore_sweep}) on one TM.
    With [dump_dir], the first execution satisfying nothing at all is
    dumped as a trace artifact; with [lint], the pclsan trace passes run
    on every execution and the number of executions with unexpected
    findings is returned. *)
let run_explore ?dump_dir ?(lint = false) ?(por = true)
    ?(on_progress = fun () -> ()) impl :
    (string * int) list * Explorer.stats * string list * int =
  let dumped = ref [] in
  let dump_violation (r : Sim.result) =
    match (dump_dir, Flight.default ()) with
    | Some dir, Some fl when !dumped = [] ->
        (* even the weakest condition rejects this execution; its unsat
           core is the provenance to attach *)
        let weakest = List.nth Checkers.all (List.length Checkers.all - 1) in
        (match
           Provenance.of_unsat ~log:r.Sim.log weakest r.Sim.history
         with
        | Some p -> Flight.add_verdict fl (Provenance.to_flight p)
        | None -> ());
        Flight.set_meta fl "tm" (Registry.name impl);
        Flight.set_meta fl "workload" "explore";
        let path =
          Filename.concat dir
            (Printf.sprintf "explore-%s.trace.jsonl" (Registry.name impl))
        in
        Flight.write_jsonl fl path;
        dumped := [ path ]
    | _ -> ()
  in
  let lint_unexpected = ref 0 in
  let on_execution ~strongest (r : Sim.result) =
    on_progress ();
    if strongest = "none" then dump_violation r;
    if lint then begin
      let input =
        {
          Lint.log = r.Sim.log;
          history = r.Sim.history;
          name_of = Memory.name_of r.Sim.mem;
          data_sets = Some Explore_sweep.data_sets;
          tm = Some (Registry.name impl);
          meta = [];
        }
      in
      let res = Lints.run_passes Lint_passes.trace_passes input in
      if res.Lints.unexpected <> [] then incr lint_unexpected
    end
  in
  let sweep () = Explore_sweep.run ~por ~on_execution impl in
  let profiles, stats =
    match dump_dir with
    | Some dir ->
        ensure_dir dir;
        Flight.with_recorder (Flight.create ()) sweep
    | None -> sweep ()
  in
  (profiles, stats, !dumped, !lint_unexpected)

let explore_cmd =
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Sweep seed, stamped into the JSONL rows.  The sweep itself \
             is exhaustive and deterministic — every seed yields the \
             same verdict profile; the flag exists so every sweep \
             subcommand shares the $(b,--seed)/$(b,--json)/$(b,-o)/\
             $(b,--watch) vocabulary.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one JSONL row per TM on stdout instead of the table.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Also write the JSONL rows to $(docv).")
  in
  let run tm record dump_dir lint por seed json output watch =
    let violations = ref 0 and executions = ref 0 in
    let impls = impls_of tm in
    let json_lines = ref [] in
    List.iter
      (fun impl ->
        let (module M : Tm_intf.S) = impl in
        let w =
          make_watch ~enabled:watch ~label:("explore:" ^ M.name) ~every:200
        in
        let profiles, stats, dumped, lint_unexpected =
          run_explore
            ?dump_dir:(if record then Some dump_dir else None)
            ~lint ~por
            ~on_progress:(fun () -> watch_tick w)
            impl
        in
        watch_finish w;
        executions := !executions + stats.Explorer.executions;
        json_lines :=
          Obs_json.Obj
            [
              Schema.field;
              ("type", Obs_json.String "explore");
              ("tm", Obs_json.String M.name);
              ("seed", Obs_json.Int seed);
              ("executions", Obs_json.Int stats.Explorer.executions);
              ("nodes", Obs_json.Int stats.Explorer.nodes);
              ("sleep_pruned", Obs_json.Int stats.Explorer.sleep_pruned);
              ("replays", Obs_json.Int stats.Explorer.replays);
              ("truncated", Obs_json.Bool stats.Explorer.truncated);
              ( "profiles",
                Obs_json.Obj
                  (List.map
                     (fun (name, n) -> (name, Obs_json.Int n))
                     profiles) );
            ]
          :: !json_lines;
        if not json then begin
          Format.printf
            "%s: %d complete interleavings (%d nodes%s%s), strongest \
             condition satisfied:@."
            M.name stats.Explorer.executions stats.Explorer.nodes
            (if por then
               Printf.sprintf ", %d sleep-set prunes, %d replays"
                 stats.Explorer.sleep_pruned stats.Explorer.replays
             else "")
            (if stats.Explorer.truncated then ", truncated" else "")
        end;
        List.iter
          (fun (name, n) ->
            if name = "none" then violations := !violations + n;
            if not json then Format.printf "  %-26s %d executions@." name n)
          profiles;
        if lint then begin
          violations := !violations + lint_unexpected;
          if not json then
            Format.printf "  %-26s %d executions@." "unexpected-lint"
              lint_unexpected
        end;
        if not json then
          List.iter
            (fun path ->
              Format.printf "  violating trace dumped to %s@." path)
            dumped)
      impls;
    let jsonl =
      String.concat ""
        (List.rev_map (fun j -> Obs_json.to_string j ^ "\n") !json_lines)
    in
    (match output with
    | Some f ->
        let oc = open_out f in
        output_string oc jsonl;
        close_out oc
    | None -> ());
    if json then print_string jsonl;
    if !violations > 0 then begin
      if not json then
        Format.printf
          "%d execution(s) satisfy no consistency condition at all@."
          !violations;
      Reason.exit_with
        (Reason.No_consistency
           {
             failing = !violations;
             executions = !executions;
             tms = List.map Registry.name impls;
           })
    end
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Enumerate the interleavings of a writer/reader pair and classify \
          each execution by the strongest condition it satisfies.  \
          Sleep-set partial-order reduction prunes interleavings that only \
          reorder independent steps ($(b,--no-por) enumerates all of them \
          naively; the verdict set is identical either way).  Exits \
          non-zero if some execution satisfies nothing; with $(b,--record) \
          the first such execution is dumped as a replayable trace; with \
          $(b,--lint) the pclsan trace passes run on every execution.")
    Term.(
      const run $ tm_arg $ record_arg $ dump_dir_arg $ lint_flag $ por_flag
      $ seed $ json $ output $ watch_arg)

let trace_cmd =
  let schedule_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCHEDULE"
          ~doc:
            "Comma-separated schedule over the paper's T1..T7, e.g. \
             'p1:7,p2:7,p1:1,p3:*,p4:*,p2:1,p7:*' — 'pN:K' runs K steps of \
             process N, 'pN:*' runs it until its transaction finishes.")
  in
  let show_log =
    Arg.(value & flag & info [ "log" ] ~doc:"Also dump the step-level access log.")
  in
  let run tm schedule show_log =
    let impl =
      match tm with
      | Some n -> Registry.find_exn n
      | None -> Registry.find_exn "candidate"
    in
    let (module M : Tm_intf.S) = impl in
    let atoms =
      match Schedule.of_string schedule with
      | Ok atoms -> atoms
      | Error msg -> Fmt.failwith "%s" msg
    in
    let r = Pcl_harness.run impl atoms in
    Format.printf "# %s under %a@." M.name Schedule.pp atoms;
    Format.printf "%s@." (Wire.print r.Pcl_harness.sim.Sim.history);
    Format.printf "@.satisfies: %s@."
      (String.concat ", " (Checkers.satisfied r.Pcl_harness.sim.Sim.history));
    if show_log then begin
      let name_of oid = Memory.name_of r.Pcl_harness.sim.Sim.mem oid in
      List.iter
        (fun e ->
          Format.printf "%a@." (Access_log.pp_entry ~name_of) e)
        r.Pcl_harness.sim.Sim.log
    end;
    match r.Pcl_harness.sim.Sim.report.Schedule.stop with
    | Schedule.Budget_exhausted { stalled_pid; last } ->
        Format.printf "@.schedule stalled: %s@."
          (Schedule.stop_to_string
             r.Pcl_harness.sim.Sim.report.Schedule.stop);
        Reason.exit_with
          (Reason.Stall
             {
               pid = stalled_pid;
               step = Option.map (fun e -> e.Access_log.index) last;
               obj =
                 Option.map
                   (fun e ->
                     Memory.name_of r.Pcl_harness.sim.Sim.mem
                       e.Access_log.oid)
                   last;
               prim =
                 Option.map
                   (fun e -> Primitive.kind_name e.Access_log.prim)
                   last;
             })
    | Schedule.Completed | Schedule.Crashed _ -> ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the paper's seven transactions under an explicit adversarial \
          schedule, print the resulting history in the wire format, and \
          report which conditions it satisfies.")
    Term.(const run $ tm_arg $ schedule_arg $ show_log)

type fuzz_totals = {
  wf_bad : int;
  of_bad : int;
  dap_bad : int;
  cons_bad : int;
  lint_bad : int;  (** runs with unexpected pclsan findings *)
  stalled : int;
  dumped : string list;  (** trace artifacts written for violating runs *)
}

let fuzz_violations t = t.wf_bad + t.of_bad + t.dap_bad + t.cons_bad + t.lint_bad

(** Fuzz one TM with random transactions and schedules, the detectors and
    checkers as oracles.  Shared by [fuzz] and [report].  With [dump_dir],
    every violating execution is dumped as a replayable trace artifact
    with its verdict provenance attached.  With [lint], the pclsan trace
    passes additionally run on every execution; findings outside the TM's
    expected set count as violations (and are dumped as verdicts too). *)
let run_fuzz ?dump_dir ?(lint = false) ?(on_progress = fun () -> ()) impl
    ~iters ~seed : fuzz_totals =
  let (module M : Tm_intf.S) = impl in
  let st = Random.State.make [| seed |] in
  let items = [ Item.v "x"; Item.v "y"; Item.v "z" ] in
  let wf_bad = ref 0
  and of_bad = ref 0
  and dap_bad = ref 0
  and cons_bad = ref 0
  and lint_bad = ref 0
  and stalled = ref 0
  and dumped = ref [] in
  let target_checker =
    (* weakest claim each TM makes about committed transactions *)
    match M.name with
    | "pram-local" -> Checkers.find_exn "pram"
    | "si-clock" -> Checkers.find_exn "snapshot-isolation"
    | "candidate" | "llsc-candidate" -> Checkers.find_exn "weak-adaptive"
    | _ -> Checkers.find_exn "strict-serializability"
  in
  let iteration i =
    (* random static transactions over three items *)
    let spec tid pid =
      let pick () = List.nth items (Random.State.int st 3) in
      {
        Static_txn.tid = Tid.v tid;
        pid;
        reads = List.init (1 + Random.State.int st 2) (fun _ -> pick ());
        writes =
          List.init (1 + Random.State.int st 2) (fun i ->
              (pick (), Value.int ((100 * tid) + i)));
      }
    in
    let specs = List.init 3 (fun i -> spec (i + 1) (i + 1)) in
    let schedule =
      let atoms = ref [] in
      for _ = 1 to 8 do
        atoms :=
          Schedule.Steps
            (1 + Random.State.int st 3, 1 + Random.State.int st 5)
          :: !atoms
      done;
      List.rev !atoms
      @ [ Schedule.Until_done 1; Schedule.Until_done 2;
          Schedule.Until_done 3 ]
    in
    let outcomes = Hashtbl.create 8 in
    let setup mem recorder =
      let handle =
        Txn_api.instantiate impl mem recorder
          ~items:(Static_txn.items_of specs)
      in
      List.map
        (fun s ->
          (s.Static_txn.pid, Static_txn.program handle s ~outcomes))
        specs
    in
    let r = Sim.replay ~budget:3_000 setup schedule in
    (match r.Sim.report.Schedule.stop with
    | Schedule.Completed -> ()
    | _ -> incr stalled);
    (* every oracle that fires contributes a verdict-provenance line to
       the dumped artifact *)
    let verdicts = ref [] in
    let add v = verdicts := v :: !verdicts in
    (match History.well_formed r.Sim.history with
    | Ok () -> ()
    | Error msg ->
        incr wf_bad;
        add
          {
            Flight.source = "well-formed";
            verdict = "violated";
            axiom = msg;
            witness_txns = [];
            witness_steps = [];
          });
    if
      (* the blocking TMs stall instead of aborting; lp-progressive
         aborts on conflicts with *suspended* lock holders, which is
         progressive but not obstruction-free *)
      M.name <> "tl-lock" && M.name <> "tl2-clock" && M.name <> "norec"
      && M.name <> "lp-progressive"
    then begin
      match Obstruction_freedom.violations r.Sim.history r.Sim.log with
      | [] -> ()
      | vs ->
          incr of_bad;
          List.iter
            (fun (v : Obstruction_freedom.violation) ->
              add
                {
                  Flight.source = "obstruction-freedom";
                  verdict = "violated";
                  axiom =
                    "a transaction aborted although no other process took \
                     a step inside its execution interval";
                  witness_txns = [ v.Obstruction_freedom.tid ];
                  witness_steps =
                    [
                      fst v.Obstruction_freedom.interval;
                      snd v.Obstruction_freedom.interval;
                    ];
                })
            vs
    end;
    if
      List.mem M.name [ "tl-lock"; "pram-local"; "candidate"; "lp-progressive" ]
    then begin
      match
        Strict_dap.violations
          ~data_sets:(Static_txn.data_sets specs)
          r.Sim.log
      with
      | [] -> ()
      | vs ->
          incr dap_bad;
          List.iter
            (fun (v : Strict_dap.violation) ->
              let tids = [ v.Strict_dap.t1; v.Strict_dap.t2 ] in
              add
                {
                  Flight.source = "strict-dap";
                  verdict = "violated";
                  axiom =
                    "transactions with disjoint data sets contended on a \
                     common base object";
                  witness_txns = tids;
                  witness_steps =
                    List.filter_map
                      (fun (e : Access_log.entry) ->
                        match e.Access_log.tid with
                        | Some t
                          when List.exists (Tid.equal t) tids
                               && List.exists
                                    (Oid.equal e.Access_log.oid)
                                    v.Strict_dap.objects ->
                            Some e.Access_log.index
                        | _ -> None)
                      r.Sim.log;
                })
            vs
    end;
    (match target_checker.Spec.check ~budget:400_000 r.Sim.history with
    | Spec.Unsat -> (
        incr cons_bad;
        match
          Provenance.of_unsat ~budget:400_000 ~log:r.Sim.log target_checker
            r.Sim.history
        with
        | Some p -> add (Provenance.to_flight p)
        | None -> ())
    | Spec.Sat | Spec.Out_of_budget -> ());
    if lint then begin
      let input =
        {
          Lint.log = r.Sim.log;
          history = r.Sim.history;
          name_of = Memory.name_of r.Sim.mem;
          data_sets = Some (Static_txn.data_sets specs);
          tm = Some M.name;
          meta = [];
        }
      in
      let res = Lints.run_passes Lint_passes.trace_passes input in
      if res.Lints.unexpected <> [] then begin
        incr lint_bad;
        List.iter
          (fun f -> add (Lint.to_flight_verdict f))
          res.Lints.unexpected
      end
    end;
    match (dump_dir, Flight.default (), List.rev !verdicts) with
    | Some dir, Some fl, (_ :: _ as vs) ->
        List.iter (Flight.add_verdict fl) vs;
        Flight.set_meta fl "tm" M.name;
        Flight.set_meta fl "workload" "fuzz";
        Flight.set_meta fl "seed" (string_of_int seed);
        Flight.set_meta fl "iteration" (string_of_int i);
        let path =
          Filename.concat dir
            (Printf.sprintf "fuzz-%s-seed%d-iter%d.trace.jsonl" M.name seed
               i)
        in
        Flight.write_jsonl fl path;
        dumped := path :: !dumped
    | _ -> ()
  in
  let loop () =
    for i = 1 to iters do
      iteration i;
      on_progress ()
    done
  in
  (match dump_dir with
  | Some dir ->
      ensure_dir dir;
      Flight.with_recorder (Flight.create ()) loop
  | None -> loop ());
  {
    wf_bad = !wf_bad;
    of_bad = !of_bad;
    dap_bad = !dap_bad;
    cons_bad = !cons_bad;
    lint_bad = !lint_bad;
    stalled = !stalled;
    dumped = List.rev !dumped;
  }

let fuzz_cmd =
  let iters =
    Arg.(
      value & opt int 200
      & info [ "n"; "iterations" ] ~docv:"N" ~doc:"Random executions to try.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one JSONL row per TM on stdout instead of the table.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Also write the JSONL rows to $(docv).")
  in
  let run tm iters seed record dump_dir lint json output watch =
    let violations = ref 0 and runs = ref 0 in
    let kinds = Hashtbl.create 8 in
    let count kind n =
      if n > 0 then
        Hashtbl.replace kinds kind
          (n + Option.value ~default:0 (Hashtbl.find_opt kinds kind))
    in
    let json_lines = ref [] in
    List.iter
      (fun impl ->
        let (module M : Tm_intf.S) = impl in
        let w =
          make_watch ~enabled:watch ~label:("fuzz:" ^ M.name) ~every:50
        in
        let t =
          run_fuzz
            ?dump_dir:(if record then Some dump_dir else None)
            ~lint
            ~on_progress:(fun () -> watch_tick w)
            impl ~iters ~seed
        in
        watch_finish w;
        violations := !violations + fuzz_violations t;
        runs := !runs + iters;
        count "ill-formed" t.wf_bad;
        count "obstruction-freedom" t.of_bad;
        count "strict-dap" t.dap_bad;
        count "consistency" t.cons_bad;
        count "lint" t.lint_bad;
        json_lines :=
          Obs_json.Obj
            [
              Schema.field;
              ("type", Obs_json.String "fuzz");
              ("tm", Obs_json.String M.name);
              ("seed", Obs_json.Int seed);
              ("runs", Obs_json.Int iters);
              ("ill_formed", Obs_json.Int t.wf_bad);
              ("of_violations", Obs_json.Int t.of_bad);
              ("dap_violations", Obs_json.Int t.dap_bad);
              ("consistency_violations", Obs_json.Int t.cons_bad);
              ("lint_unexpected", Obs_json.Int t.lint_bad);
              ("stalled", Obs_json.Int t.stalled);
            ]
          :: !json_lines;
        if not json then begin
          Format.printf
            "%-12s %d runs: ill-formed %d, OF violations %d, strict-DAP \
             violations %d, consistency-target violations %d%s, stalled \
             %d@."
            M.name iters t.wf_bad t.of_bad t.dap_bad t.cons_bad
            (if lint then
               Printf.sprintf ", unexpected lint findings %d" t.lint_bad
             else "")
            t.stalled;
          List.iter
            (fun path ->
              Format.printf "  violating trace dumped to %s@." path)
            t.dumped
        end)
      (impls_of tm);
    let jsonl =
      String.concat ""
        (List.rev_map (fun j -> Obs_json.to_string j ^ "\n") !json_lines)
    in
    (match output with
    | Some f ->
        let oc = open_out f in
        output_string oc jsonl;
        close_out oc
    | None -> ());
    if json then print_string jsonl;
    if !violations > 0 then begin
      if not json then
        Format.printf "%d contract violation(s) found@." !violations;
      Reason.exit_with
        (Reason.Contract_violation
           {
             violations = !violations;
             runs = !runs;
             kinds =
               List.sort compare
                 (Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds []);
           })
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Fuzz a TM with random transactions and schedules, using the \
          detectors and checkers as oracles; every TM must uphold its own \
          advertised contract (the candidate's is weak-adaptive, which it \
          may violate — that is the theorem).  Exits non-zero when a \
          violation is found; with $(b,--record) each violating execution \
          is dumped as a replayable trace for `pcl_tm explain'; with \
          $(b,--lint) the pclsan trace passes run on every execution and \
          findings outside the TM's expected set count as violations.")
    Term.(const run $ tm_arg $ iters $ seed $ record_arg $ dump_dir_arg
          $ lint_flag $ json $ output $ watch_arg)

(* ------------------------------------------------------------------ *)
(* explain: replay a dumped trace artifact — render its timeline with the
   witness steps highlighted and print the verdict provenance. *)

let pp_flight_verdict ppf (v : Flight.verdict) =
  Format.fprintf ppf "%s: %s@\n  witness: {%s}%s@\n  axiom: %s"
    v.Flight.source v.Flight.verdict
    (String.concat ", " (List.map Tid.name v.Flight.witness_txns))
    (match v.Flight.witness_steps with
    | [] -> ""
    | steps ->
        Printf.sprintf " at steps %s"
          (String.concat "," (List.map string_of_int steps)))
    v.Flight.axiom

(* "p1@42,p2@100" — the crashes meta written by Sim — as (pid, step) *)
let pid_steps_of_meta s =
  List.filter_map
    (fun tok ->
      match String.index_opt tok '@' with
      | Some i when String.length tok > 1 && tok.[0] = 'p' ->
          let pid = int_of_string_opt (String.sub tok 1 (i - 1)) in
          let step =
            int_of_string_opt
              (String.sub tok (i + 1) (String.length tok - i - 1))
          in
          (match (pid, step) with
          | Some p, Some s -> Some (p, s)
          | _ -> None)
      | _ -> None)
    (String.split_on_char ',' s)

(* "budget-exhausted:p1@#42" / "...@start" -> (pid, last step index) *)
let stall_of_stop s =
  let pfx = "budget-exhausted:" in
  let n = String.length pfx in
  if String.length s > n && String.sub s 0 n = pfx then
    let rest = String.sub s n (String.length s - n) in
    match String.index_opt rest '@' with
    | Some i when i > 1 && rest.[0] = 'p' -> (
        let tail = String.sub rest (i + 1) (String.length rest - i - 1) in
        let step =
          if String.length tail > 1 && tail.[0] = '#' then
            int_of_string_opt (String.sub tail 1 (String.length tail - 1))
          else None
        in
        match int_of_string_opt (String.sub rest 1 (i - 1)) with
        | Some pid -> Some (pid, step)
        | None -> None)
    | _ -> None
  else None

let explain_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE"
          ~doc:
            "Flight-recorder artifact (.trace.jsonl) dumped by `pcl_tm \
             fuzz --record' / `pcl_tm explore --record'.")
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Also export the trace as Chrome trace-event JSON \
             (Perfetto-loadable) to $(docv).")
  in
  let run file checker width chrome =
    match Flight.load file with
    | Error msg -> Fmt.failwith "cannot load %s: %s" file msg
    | Ok fl ->
        Format.printf "trace: %s@." file;
        List.iter
          (fun (k, v) -> Format.printf "  %-10s %s@." k v)
          (Flight.meta fl);
        Format.printf "  %-10s %d recorded, %d retained, %d dropped@.@."
          "ring" (Flight.recorded fl)
          (List.length (Flight.steps fl))
          (Flight.dropped fl);
        (* stall attribution: the stop meta names the wedged process and
           the index of its last step; resolve it in the ring if it was
           retained *)
        (match Option.bind (Flight.meta_value fl "stop") stall_of_stop with
        | Some (pid, None) ->
            Format.printf
              "stall: p%d exhausted the budget without taking a step@." pid
        | Some (pid, Some k) -> (
            match Flight.find_step fl k with
            | Some e ->
                Format.printf "stall: p%d wedged after %a@." pid
                  (Access_log.pp_entry ~name_of:(Flight.name_of fl))
                  e
            | None ->
                Format.printf
                  "stall: p%d wedged after step #%d (not retained in the \
                   ring)@."
                  pid k)
        | None -> ());
        let crash_steps =
          match Flight.meta_value fl "crashes" with
          | Some s -> pid_steps_of_meta s
          | None -> []
        in
        List.iter
          (fun (pid, step) ->
            Format.printf "crash: p%d crash-stopped at step #%d@." pid step)
          crash_steps;
        if crash_steps <> [] then Format.printf "@.";
        let history = Flight.history fl in
        let log = Flight.steps fl in
        (* stored verdicts are the trace's own provenance; -c recomputes
           against a chosen checker; with neither, fall back to the first
           checker (strongest to weakest) that rejects the history *)
        let recomputed =
          match checker with
          | Some name -> (
              let c = Checkers.find_exn name in
              match Provenance.of_unsat ~log c history with
              | Some p -> [ Provenance.to_flight p ]
              | None ->
                  Format.printf "%s does not reject this history@.@." name;
                  [])
          | None ->
              if Flight.verdicts fl <> [] then []
              else
                List.find_map
                  (fun c -> Provenance.of_unsat ~log c history)
                  Checkers.all
                |> Option.map Provenance.to_flight
                |> Option.to_list
        in
        let verdicts = Flight.verdicts fl @ recomputed in
        let highlight =
          List.concat_map (fun v -> v.Flight.witness_steps) verdicts
          @ List.map snd crash_steps
          |> List.sort_uniq compare
        in
        print_string
          (Timeline.render ~width ~highlight
             ~names:(Flight.name_of fl)
             history log);
        List.iter
          (fun v -> Format.printf "@.%a@." pp_flight_verdict v)
          verdicts;
        if verdicts = [] then
          Format.printf "@.no verdicts: the recorded history is consistent@.";
        (match chrome with
        | Some out ->
            Flight.write_chrome fl out;
            Format.printf "@.chrome trace written to %s@." out
        | None -> ());
        (* a trace judged a violation (stored or recomputed verdicts) makes
           the replay fail, so CI can gate on `explain` directly *)
        if verdicts <> [] then
          Reason.exit_with
            (Reason.Violation_trace
               {
                 trace = file;
                 verdicts = List.length verdicts;
                 sources =
                   List.sort_uniq compare
                     (List.map (fun v -> v.Flight.source) verdicts);
               })
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Replay a recorded trace artifact: render its step-level timeline \
          with the witness steps highlighted, and print the verdict \
          provenance (which axiom failed, which transactions and steps \
          witness it).  Exits non-zero when the replayed trace is judged a \
          violation.")
    Term.(const run $ file $ checker_arg $ width_arg $ chrome)

(* ------------------------------------------------------------------ *)
(* lint: pclsan — the happens-before engine and lint passes, over dumped
   artifacts and/or live recorded workload runs. *)

let lint_cmd =
  let traces =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"TRACE"
          ~doc:
            "Flight-recorder artifacts (.trace.jsonl) to lint; without \
             any, live recorded workload runs are linted instead (every \
             registered TM, or just $(b,-t) TM).")
  in
  let pass_filter =
    Arg.(
      value & opt_all string []
      & info [ "p"; "pass" ] ~docv:"PASS"
          ~doc:
            "Run only this pass (repeatable; unique prefixes resolve, \
             e.g. $(b,-p tor) for torn-snapshot).  Default: all trace \
             passes, plus figure-consistency when linting live TMs.")
  in
  let all_tms =
    Arg.(
      value & flag
      & info [ "all-tms" ]
          ~doc:
            "Lint live runs of every TM in the registry (the default when \
             no TRACE and no $(b,-t) is given).")
  in
  let horizon =
    Arg.(
      value & opt int Lint.default.Lint.horizon
      & info [ "horizon" ] ~docv:"STEPS"
          ~doc:
            "of-stall: solo steps a transaction may run contention-free \
             without completing before it is flagged.")
  in
  let connectivity =
    Arg.(
      value
      & opt (enum [ ("direct", `Direct); ("path", `Path) ]) `Direct
      & info [ "connectivity" ] ~docv:"KIND"
          ~doc:
            "strict-dap: flag contention between transactions with \
             $(b,direct)ly disjoint data sets (the paper's strict DAP) or \
             only between conflict-graph-disconnected ones ($(b,path)).")
  in
  let max_findings =
    Arg.(
      value & opt int Lint.default.Lint.max_findings
      & info [ "max-findings" ] ~docv:"N" ~doc:"Findings reported per pass.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit findings as JSONL on stdout.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Also write the JSONL export to $(docv).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Seed of the live recorded workload runs (ignored when \
             linting TRACE files, which carry their own seed in their \
             meta).")
  in
  let run tm traces pass_filter all_tms horizon connectivity max_findings
      seed json output watch =
    let config =
      { Lint.horizon; dap_connectivity = connectivity; max_findings }
    in
    (* one watch tick per lint target (trace file or live TM run) *)
    let w = make_watch ~enabled:watch ~label:"lint" ~every:1 in
    let chosen ~default =
      match pass_filter with
      | [] -> default
      | names -> List.map Lints.find_exn names
    in
    let json_lines = ref [] in
    let findings_total = ref 0 and unexpected_total = ref 0 in
    let unexpected_passes = ref [] in
    (* first unexpected progress-guarantee finding, kept whole so the exit
       can go through PCL-E109 with a step-level witness *)
    let progress_failure = ref None in
    let lint_one ~target (input : Lint.input) passes =
      let res = Lints.run_passes ~config passes input in
      watch_tick w;
      findings_total := !findings_total + List.length res.Lints.findings;
      unexpected_total := !unexpected_total + List.length res.Lints.unexpected;
      unexpected_passes :=
        List.map (fun (f : Lint.finding) -> f.Lint.pass) res.Lints.unexpected
        @ !unexpected_passes;
      List.iter
        (fun (f : Lint.finding) ->
          match !progress_failure with
          | Some _ -> ()
          | None when f.Lint.pass <> "progressiveness" && f.Lint.pass <> "pwf"
            ->
              ()
          | None ->
              let txn =
                match f.Lint.txns with t :: _ -> Some t | [] -> None
              in
              let witness_step =
                match (f.Lint.step, f.Lint.witness_steps) with
                | Some s, _ -> Some s
                | None, s :: _ -> Some s
                | None, [] -> None
              in
              progress_failure :=
                Some
                  ( res.Lints.tm,
                    f.Lint.pass,
                    Option.bind txn (History.pid_of_txn input.Lint.history),
                    Option.map Tid.to_int txn,
                    witness_step ))
        res.Lints.unexpected;
      if not json then begin
        Format.printf "== %s (tm: %s)@." target
          (Option.value ~default:"unknown" res.Lints.tm);
        if res.Lints.findings = [] then
          Format.printf "  clean (%s)@."
            (String.concat ", " res.Lints.passes_run)
        else
          List.iter
            (fun f ->
              let tag =
                if Lints.is_expected ~tm:res.Lints.tm f then "expected"
                else "UNEXPECTED"
              in
              Format.printf "  @[<v>(%s) %a@]@." tag
                (Lint.pp_finding ~name_of:input.Lint.name_of)
                f)
            res.Lints.findings
      end;
      json_lines :=
        Obs_json.Obj
          [
            Schema.field;
            ("type", Obs_json.String "lint-run");
            ("target", Obs_json.String target);
            ( "tm",
              match res.Lints.tm with
              | Some t -> Obs_json.String t
              | None -> Obs_json.Null );
            ( "passes",
              Obs_json.List
                (List.map (fun p -> Obs_json.String p) res.Lints.passes_run)
            );
            ("findings", Obs_json.Int (List.length res.Lints.findings));
            ("unexpected", Obs_json.Int (List.length res.Lints.unexpected));
          ]
        :: List.map
             (fun f ->
               match Lint.finding_json f with
               | Obs_json.Obj fields ->
                   Obs_json.Obj
                     (fields
                     @ [
                         ("target", Obs_json.String target);
                         ( "expected",
                           Obs_json.Bool
                             (Lints.is_expected ~tm:res.Lints.tm f) );
                       ])
               | j -> j)
             res.Lints.findings
        |> List.append !json_lines
    in
    List.iter
      (fun file ->
        match Flight.load file with
        | Error msg -> Fmt.failwith "cannot load %s: %s" file msg
        | Ok fl ->
            lint_one ~target:file
              (Lint.input_of_flight fl)
              (chosen
                 ~default:
                   (Lint_passes.trace_passes
                   @ [ Progress_lint.progressiveness ]
                   @ Lint.registered ())))
      traces;
    let impls =
      if all_tms then Registry.all
      else
        match tm with
        | Some _ -> impls_of tm
        | None -> if traces = [] then Registry.all else []
    in
    List.iter
      (fun impl ->
        let (module M : Tm_intf.S) = impl in
        let fl = Flight.create () in
        Flight.with_recorder fl (fun () ->
            ignore
              (Workload.run impl
                 {
                   Workload.default with
                   Workload.conflict_pct = 50;
                   txns_per_proc = 10;
                   seed;
                 }));
        lint_one
          ~target:(Printf.sprintf "workload:%s" M.name)
          { (Lint.input_of_flight fl) with Lint.tm = Some M.name }
          (chosen ~default:(Lints.all ())))
      impls;
    watch_finish w;
    let jsonl =
      String.concat ""
        (List.map (fun j -> Obs_json.to_string j ^ "\n") !json_lines)
    in
    (match output with
    | Some f ->
        let oc = open_out f in
        output_string oc jsonl;
        close_out oc
    | None -> ());
    if json then print_string jsonl
    else
      Format.printf "@.%d finding(s), %d unexpected@." !findings_total
        !unexpected_total;
    if !unexpected_total > 0 then
      Reason.exit_with
        (match !progress_failure with
        | Some (tm, pass, pid, txn, witness_step) ->
            (* a progress-guarantee detector tripped: exit PCL-E109 naming
               the witness rather than the generic unexpected-findings code *)
            Reason.Progress_violation
              {
                tm;
                pass;
                pid;
                txn;
                witness_step;
                unexpected = !unexpected_total;
              }
        | None ->
            Reason.Unexpected_findings
              {
                unexpected = !unexpected_total;
                total = !findings_total;
                lints = List.sort_uniq compare !unexpected_passes;
              })
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "pclsan: run the happens-before engine and lint passes (race, \
          strict-dap, of-stall, lost-update, write-skew, torn-snapshot, \
          progressiveness, pwf, figure-consistency) over dumped trace \
          artifacts or live recorded runs.  Findings are classified against each \
          TM's expected set (the lint confirming what the theorem says \
          about it); exits non-zero on any unexpected finding.")
    Term.(
      const run $ tm_arg $ traces $ pass_filter $ all_tms $ horizon
      $ connectivity $ max_findings $ seed $ json $ output $ watch_arg)

(* ------------------------------------------------------------------ *)
(* chaos: fault injection x contention management, the per-TM robustness
   matrix. *)

let chaos_cmd =
  let all_tms =
    Arg.(
      value & flag
      & info [ "all-tms" ]
          ~doc:
            "Sweep every TM in the registry (the default when no $(b,-t) \
             is given).")
  in
  let faults =
    Arg.(
      value & opt_all string []
      & info [ "fault" ] ~docv:"CLASS"
          ~doc:
            "Fault class to inject: none, crash, park, spurious or poison \
             (repeatable; default all).")
  in
  let cms =
    Arg.(
      value & opt_all string []
      & info [ "cm" ] ~docv:"POLICY"
          ~doc:
            "Contention manager: immediate, backoff, polite or karma \
             (repeatable; default all).")
  in
  let iters =
    Arg.(
      value & opt string "default"
      & info [ "iters" ] ~docv:"N"
          ~doc:
            "Transactions per process, or the preset $(b,small) (the CI \
             smoke size).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Sweep seed: victim selection, fault placement and backoff \
             jitter all derive from it, so the same seed reproduces the \
             matrix byte for byte.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the matrix as JSONL on stdout.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Also write the JSONL matrix to $(docv).")
  in
  let run tm all_tms faults cms iters seed json output record dump_dir watch
      =
    let tms = if all_tms then Registry.all else impls_of tm in
    let base =
      match iters with
      | "default" -> Chaos_run.default
      | "small" -> Chaos_run.small
      | s -> (
          match int_of_string_opt s with
          | Some n when n > 0 -> { Chaos_run.default with txns_per_proc = n }
          | _ ->
              Fmt.failwith "--iters expects a positive integer or `small'")
    in
    let faults =
      match faults with
      | [] -> Fault.all
      | names -> List.map Fault.of_name_exn names
    in
    let cms =
      match cms with [] -> Cm.all | names -> List.map Cm.find_exn names
    in
    let cfg = { base with Chaos_run.tms; faults; cms; seed } in
    if record then ensure_dir dump_dir;
    let artifacts = ref [] in
    let w = make_watch ~enabled:watch ~label:"chaos" ~every:10 in
    let cells =
      Chaos_run.finalize cfg
        (List.map
           (fun (impl, klass, policy) ->
             watch_tick w;
             if not record then Chaos_run.run_cell cfg impl klass policy
             else begin
               let fl = Flight.create () in
               let c =
                 Flight.with_recorder fl (fun () ->
                     Chaos_run.run_cell cfg impl klass policy)
               in
               Flight.set_meta fl "tm" c.Chaos_run.tm;
               Flight.set_meta fl "fault" c.Chaos_run.fault;
               Flight.set_meta fl "cm" c.Chaos_run.cm;
               Flight.set_meta fl "seed" (string_of_int seed);
               let file =
                 Filename.concat dump_dir
                   (Printf.sprintf "chaos-%s-%s-%s.trace.jsonl"
                      c.Chaos_run.tm c.Chaos_run.fault c.Chaos_run.cm)
               in
               Flight.write_jsonl fl file;
               artifacts := file :: !artifacts;
               c
             end)
           (Chaos_run.combos cfg))
    in
    watch_finish w;
    let violations =
      List.fold_left
        (fun acc c -> acc + c.Chaos_run.closure_violations)
        0 cells
    in
    let jsonl =
      String.concat ""
        (List.map
           (fun c -> Obs_json.to_string (Chaos_run.cell_json c) ^ "\n")
           cells)
    in
    (match output with
    | Some f ->
        let oc = open_out f in
        output_string oc jsonl;
        close_out oc
    | None -> ());
    if json then print_string jsonl
    else begin
      Format.printf "%-14s %-9s %-10s %-14s %-8s %-8s %-11s %s@." "TM"
        "fault" "cm" "commits/exp" "gave-up" "skipped" "degradation" "stop";
      List.iter
        (fun (c : Chaos_run.cell) ->
          Format.printf "%-14s %-9s %-10s %5d/%-8d %-8d %-8d %-11s %s%s@."
            c.Chaos_run.tm c.Chaos_run.fault c.Chaos_run.cm
            c.Chaos_run.commits c.Chaos_run.expected c.Chaos_run.gave_up
            c.Chaos_run.skipped c.Chaos_run.degradation c.Chaos_run.stop
            (if c.Chaos_run.closure_violations > 0 then
               Printf.sprintf "  ** %d crash-closure violation(s)"
                 c.Chaos_run.closure_violations
             else ""))
        cells;
      let wac =
        List.fold_left
          (fun acc c -> acc + c.Chaos_run.wac_witnesses)
          0 cells
      in
      Format.printf
        "@.%d cell(s), %d crash-closure violation(s), %d wac-adaptivity \
         witness(es)@."
        (List.length cells) violations wac;
      if !artifacts <> [] then
        Format.printf "recorded %d artifact(s) under %s/@."
          (List.length !artifacts) dump_dir
    end;
    (* an unexpected Sat -> Unsat flip under crash truncation is a checker
       bug by definition — fail the sweep so CI catches it *)
    if violations > 0 then
      Reason.exit_with
        (Reason.Closure_violation
           {
             violations;
             cells = List.length cells;
             witnesses =
               List.filter_map
                 (fun (c : Chaos_run.cell) ->
                   if c.Chaos_run.closure_violations > 0 then
                     Some
                       (Printf.sprintf "%s/%s/%s" c.Chaos_run.tm
                          c.Chaos_run.fault c.Chaos_run.cm)
                   else None)
                 cells;
           })
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Chaos sweep: every selected TM crossed with fault classes \
          (crash-stop, park/unpark, spurious RMW failure, transaction \
          poison) and contention-manager policies (immediate, backoff, \
          polite, karma).  Prints the per-TM robustness matrix — commit \
          rate, retries, degradation class, crash-closure status — and \
          exits non-zero on any crash-closure violation.  With \
          $(b,--record), each cell dumps a replayable trace artifact that \
          `pcl_tm explain' and `pcl_tm lint' consume.")
    Term.(
      const run $ tm_arg $ all_tms $ faults $ cms $ iters $ seed $ json
      $ output $ record_arg $ dump_dir_arg $ watch_arg)

(* ------------------------------------------------------------------ *)
(* cost: the synchronization-cost observatory — RMR/RMW metering over
   the figure schedules and the explore sweep, per TM. *)

let cost_cmd =
  let all_tms =
    Arg.(
      value & flag
      & info [ "all-tms" ]
          ~doc:
            "Meter every TM in the registry (the default when no $(b,-t) \
             is given).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the cost matrix as JSONL on stdout.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Also write the JSONL matrix to $(docv).")
  in
  let per_txn =
    Arg.(
      value & flag
      & info [ "per-txn" ]
          ~doc:
            "Also print the per-transaction cost breakdown of each figure \
             workload (table mode only).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Accepted for sweep-flag uniformity ($(b,--seed)/$(b,--json)/\
             $(b,-o)/$(b,--watch) across every sweep subcommand).  The \
             cost matrix derives from the fixed figure schedules and the \
             exhaustive explore sweep, so it is seed-free: every seed \
             yields the identical matrix.")
  in
  let run tm all_tms json output per_txn _seed watch =
    let impls = if all_tms then Registry.all else impls_of tm in
    let rows =
      List.concat_map
        (fun impl ->
          let w =
            make_watch ~enabled:watch
              ~label:("cost:" ^ Registry.name impl)
              ~every:200
          in
          let rows =
            Cost_run.rows_for ~on_execution:(fun () -> watch_tick w) impl
          in
          watch_finish w;
          rows)
        impls
    in
    let jsonl = Cost_run.to_jsonl rows in
    (match output with
    | Some f ->
        let oc = open_out f in
        output_string oc jsonl;
        close_out oc
    | None -> ());
    if json then print_string jsonl
    else begin
      Format.printf "%a@." Cost_run.pp_table rows;
      if per_txn then
        List.iter
          (fun impl ->
            List.iter
              (fun (r : Cost_run.row) ->
                if r.Cost_run.status = "ok" && r.Cost_run.cost.Cost.txns <> []
                then begin
                  Format.printf "@.%s / %s:@." r.Cost_run.tm
                    r.Cost_run.workload;
                  List.iter
                    (fun txn -> Format.printf "  %a@." Cost.pp_txn txn)
                    r.Cost_run.cost.Cost.txns
                end)
              (Cost_run.figure_rows impl))
          impls;
      Format.printf "@.%a@." Cost_run.pp_expectations ()
    end;
    match Cost_run.check rows with
    | [] -> ()
    | (tm, workload, violated) :: _ as all ->
        Format.eprintf "%d cost expectation violation(s)@."
          (List.length all);
        Reason.exit_with (Reason.Cost_expectation { tm; workload; violated })
  in
  Cmd.v
    (Cmd.info "cost"
       ~doc:
         "The cost observatory: derive per-TM synchronization-cost metrics \
          — remote memory references (RMRs), RMW/CAS-class steps, \
          reads-after-remote-writes, protected-data footprint versus data \
          set, and wasted work split by abort cause — from the proof's \
          figure schedules (Figures 1-6) and the stock explore sweep.  \
          Deterministic: the JSONL is byte-identical across runs.  Exits \
          non-zero when the observed matrix violates the expected-cost \
          (\"PCL tax\") table or a universal cost law.")
    Term.(
      const run $ tm_arg $ all_tms $ json $ output $ per_txn $ seed
      $ watch_arg)

(* ------------------------------------------------------------------ *)
(* soak: million-transaction endurance runs with continuous phase
   profiling and GC/allocation metering.  The stdout stream leads with
   one byte-deterministic {"type":"soak"} line per TM (totals only);
   the wall-clock and GC numbers ride in separate schema-stamped
   {"type":"perf"} records so determinism gates on the head still
   hold. *)

let soak_cmd =
  let txns =
    Arg.(
      value & opt int 1_000_000
      & info [ "n"; "txns" ] ~docv:"N"
          ~doc:"Committed-transaction target per TM.")
  in
  let all_tms =
    Arg.(
      value & flag
      & info [ "all-tms" ]
          ~doc:
            "Soak every TM in the registry (the default when no $(b,-t) \
             is given).")
  in
  let procs =
    Arg.(
      value & opt int Soak.default.Soak.n_procs
      & info [ "procs" ] ~docv:"P" ~doc:"Concurrent processes.")
  in
  let conflict =
    Arg.(
      value & opt int Soak.default.Soak.conflict_pct
      & info [ "conflict" ] ~docv:"PCT"
          ~doc:"Probability (0..100) a transaction touches shared items.")
  in
  let seed =
    Arg.(
      value & opt int Soak.default.Soak.seed
      & info [ "seed" ] ~docv:"SEED" ~doc:"Base RNG seed.")
  in
  let segment =
    Arg.(
      value & opt int Soak.default.Soak.segment_txns
      & info [ "segment" ] ~docv:"TXNS"
          ~doc:
            "Transactions per process per segment (each segment is a \
             fresh bounded simulator world, so memory stays flat).")
  in
  let budget =
    Arg.(
      value & opt int Soak.default.Soak.budget
      & info [ "budget" ] ~docv:"STEPS"
          ~doc:
            "Step budget per segment — the liveness fence; a segment \
             that exhausts it stalls the soak (PCL-E108).")
  in
  let tick =
    Arg.(
      value & opt int Soak.default.Soak.tick_steps
      & info [ "tick" ] ~docv:"STEPS"
          ~doc:
            "Steps between observer ticks (watch snapshots, GC \
             samples); tick boundaries are deterministic.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the soak/perf records as JSONL on stdout.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Also write the JSONL records to $(docv).")
  in
  let profile_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:
            "Write the aggregated phase profile as collapsed stacks \
             (flamegraph.pl / speedscope input) to $(docv).")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Write the phase spans as a Chrome trace-event file (load \
             via chrome://tracing or Perfetto) to $(docv).")
  in
  let gc_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "gc" ] ~docv:"FILE"
          ~doc:
            "Write per-tick GC/allocation samples as JSONL to $(docv) \
             (the closing perf record is always emitted on the main \
             stream).")
  in
  let run tm all_tms txns procs conflict seed segment budget tick json
      output profile_file chrome_file gc_file watch =
    let impls = if all_tms then Registry.all else impls_of tm in
    let profiling = profile_file <> None || chrome_file <> None in
    let tracer = Sink.tracer Sink.default in
    let prof = Prof.create () in
    let chrome_spans = ref [] in
    let gc_lines = ref [] in
    let lines = ref [] in
    let first_stall = ref None in
    List.iter
      (fun impl ->
        let (module M : Tm_intf.S) = impl in
        if !first_stall = None then begin
          let cfg =
            {
              Soak.default with
              Soak.txns;
              n_procs = procs;
              conflict_pct = conflict;
              seed;
              segment_txns = segment;
              budget;
              tick_steps = tick;
            }
          in
          let w =
            make_watch ~enabled:watch ~label:("soak:" ^ M.name) ~every:10
          in
          let gcm = Gcstat.create () in
          if profiling then Span.reset tracer;
          let on_tick (p : Soak.progress) =
            watch_tick w;
            let s =
              Gcstat.sample gcm
                ~tick:(p.Soak.steps / max 1 tick)
                ~steps:p.Soak.steps ~txns:p.Soak.txns_done
            in
            if gc_file <> None then
              gc_lines :=
                Obs_json.Obj
                  [
                    Schema.field;
                    ("type", Obs_json.String "perf_sample");
                    ("tm", Obs_json.String M.name);
                    ("tick", Obs_json.Int s.Gcstat.tick);
                    ("steps", Obs_json.Int s.Gcstat.steps);
                    ("txns", Obs_json.Int s.Gcstat.txns);
                    ("alloc_words", Obs_json.Float s.Gcstat.alloc_words);
                    ( "minor_collections",
                      Obs_json.Int s.Gcstat.minor_collections );
                    ( "major_collections",
                      Obs_json.Int s.Gcstat.major_collections );
                  ]
                :: !gc_lines
          in
          (* fold each segment's spans into the profile and reset the
             tracer, so the span buffer never overflows over a million
             transactions *)
          let on_segment (_ : Soak.progress) =
            if profiling then begin
              let spans = Span.spans tracer in
              Prof.add_spans prof spans;
              if chrome_file <> None then
                chrome_spans := List.rev_append spans !chrome_spans;
              Span.reset tracer
            end
          in
          let t0 = Unix.gettimeofday () in
          let o = Soak.run ~on_tick ~on_segment impl cfg in
          let wall_ns =
            int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)
          in
          watch_finish w;
          let p = o.Soak.progress in
          (* the byte-deterministic totals line *)
          lines :=
            Obs_json.Obj
              [
                Schema.field;
                ("type", Obs_json.String "soak");
                ("tm", Obs_json.String M.name);
                ("txns", Obs_json.Int p.Soak.txns_done);
                ("target", Obs_json.Int txns);
                ("aborts", Obs_json.Int p.Soak.aborts);
                ("steps", Obs_json.Int p.Soak.steps);
                ("segments", Obs_json.Int p.Soak.segments);
                ( "stop",
                  Obs_json.String
                    (match o.Soak.stall with
                    | None -> "completed"
                    | Some _ -> "stalled") );
              ]
            :: !lines;
          (* the perf record: the one place wall-clock and GC numbers
             are allowed *)
          (match
             Gcstat.report gcm ~wall_ns ~steps:p.Soak.steps
               ~txns:p.Soak.txns_done
           with
          | Obs_json.Obj fields ->
              lines :=
                Obs_json.Obj (fields @ [ ("tm", Obs_json.String M.name) ])
                :: !lines
          | j -> lines := j :: !lines);
          if not json then begin
            Format.printf "soak %-12s %d/%d txns (%d aborts) in %d steps, \
                           %d segments [%s]@."
              M.name p.Soak.txns_done txns p.Soak.aborts p.Soak.steps
              p.Soak.segments
              (match o.Soak.stall with
              | None -> "completed"
              | Some _ -> "STALLED");
            let fsteps = float_of_int (max 1 p.Soak.steps) in
            Format.printf "  perf: %.1f ns/step, %.1f words/step@."
              (float_of_int wall_ns /. fsteps)
              (Gcstat.allocated_words gcm /. fsteps)
          end;
          match o.Soak.stall with
          | None -> ()
          | Some st ->
              first_stall :=
                Some
                  (Reason.Soak_stall
                     {
                       tm = M.name;
                       pid = st.Soak.pid;
                       step = st.Soak.step;
                       obj = st.Soak.obj;
                       prim = st.Soak.prim;
                       txns = p.Soak.txns_done;
                       target = txns;
                     })
        end)
      impls;
    let jsonl =
      String.concat ""
        (List.rev_map (fun j -> Obs_json.to_string j ^ "\n") !lines)
    in
    (match output with
    | Some f ->
        let oc = open_out f in
        output_string oc jsonl;
        close_out oc
    | None -> ());
    if json then print_string jsonl;
    (match profile_file with
    | Some f ->
        let oc = open_out f in
        output_string oc (Prof.to_collapsed ~metric:Prof.Wall_ns prof);
        close_out oc;
        if not json then Format.printf "@.%a@." Prof.pp prof
    | None -> ());
    (match chrome_file with
    | Some f ->
        let oc = open_out f in
        output_string oc
          (Obs_json.to_string
             (Prof.spans_to_chrome (List.rev !chrome_spans)));
        close_out oc
    | None -> ());
    (match gc_file with
    | Some f ->
        let oc = open_out f in
        List.iter
          (fun j -> output_string oc (Obs_json.to_string j ^ "\n"))
          (List.rev !gc_lines);
        close_out oc
    | None -> ());
    match !first_stall with
    | Some r -> Reason.exit_with r
    | None -> ()
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "The soak observatory: drive N (default 10^6) committed \
          transactions per TM through the stock workload in fresh \
          bounded segments, with live $(b,--watch) snapshots, \
          continuous phase profiling ($(b,--profile) collapsed stacks, \
          $(b,--chrome) trace events) and GC/allocation metering \
          ($(b,--gc), plus a closing schema-stamped perf record).  The \
          leading JSONL line per TM is byte-deterministic.  A segment \
          that exhausts its step budget stalls the soak: exactly one \
          machine-readable PCL-E108 reason line naming the wedged \
          process, step and object, and a nonzero exit.")
    Term.(
      const run $ tm_arg $ all_tms $ txns $ procs $ conflict $ seed
      $ segment $ budget $ tick $ json $ output $ profile_arg
      $ chrome_arg $ gc_arg $ watch_arg)

(* ------------------------------------------------------------------ *)
(* conform: the scenario catalogue — run every scenario's TM x CM cells
   and judge each against its declared expectation.  Crash-contained,
   budget-fenced, resumable. *)

let conform_cmd =
  let files =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"CATALOGUE"
          ~doc:
            "Scenario catalogue files (JSON; see scenarios/*.json and the \
             committed scenario.schema.json).  Without any, every \
             catalogue under $(b,--dir) is loaded.")
  in
  let dir =
    Arg.(
      value & opt string "scenarios"
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Catalogue directory loaded when no CATALOGUE file is given \
             ($(b,*.schema.json) is skipped).")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Run the full catalogue (the default when no $(b,--scenario) \
             filter is given; the flag exists so intent is explicit in \
             CI scripts).")
  in
  let scenario_filter =
    Arg.(
      value & opt_all string []
      & info [ "scenario" ] ~docv:"ID"
          ~doc:"Run only this scenario id (repeatable).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Sweep seed: per-cell sub-seeds derive from it and the \
             scenario id, so the same seed reproduces the run byte for \
             byte.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the conformance rows as JSONL on stdout.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Also write the JSONL rows to $(docv).")
  in
  let cells_flag =
    Arg.(
      value & flag
      & info [ "cells" ]
          ~doc:
            "Also emit one $(b,conform_cell) row per TM x CM cell \
             (freshly-run scenarios only — journal-reused rows carry no \
             cell detail).")
  in
  let journal_arg =
    Arg.(
      value & opt string "conform.journal"
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Resume journal: one conformance row is appended (and \
             flushed) as each scenario finishes.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Reuse the journal's rows for scenarios that already passed \
             (or are quarantined) and re-run only the rest; the final \
             output is byte-identical to an uninterrupted run.")
  in
  let check_only =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Validate the catalogue (schema, ids, names) and exit.")
  in
  let list_only =
    Arg.(value & flag & info [ "list" ] ~doc:"List the scenarios and exit.")
  in
  let inject_crash =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject-crash" ] ~docv:"ID"
          ~doc:
            "Containment test: raise an exception inside $(docv)'s first \
             cell; the sweep must report it as that cell's failure and \
             carry on.")
  in
  let inject_stall =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject-stall" ] ~docv:"ID"
          ~doc:
            "Containment test: shrink $(docv)'s first cell's step budget \
             to a handful of steps, forcing a budget-exhaustion (timeout) \
             failure attributed to that cell.")
  in
  let run tm files dir _all scenario_filter seed json output cells_flag
      journal_file resume check_only list_only inject_crash inject_stall
      watch =
    let scenarios =
      match
        (match files with
        | [] -> Scenario.load_dir dir
        | fs -> Scenario.load_files fs)
      with
      | Ok ss -> ss
      | Error msg -> Fmt.failwith "%s" msg
    in
    let scenarios =
      match scenario_filter with
      | [] -> scenarios
      | ids ->
          List.iter
            (fun id ->
              if
                not
                  (List.exists (fun s -> s.Scenario.id = id) scenarios)
              then Fmt.failwith "unknown scenario id %S" id)
            ids;
          List.filter
            (fun s -> List.mem s.Scenario.id ids)
            scenarios
    in
    (* -t TM restricts every scenario's cell space to that TM; scenarios
       pinned to other TMs drop out of the sweep *)
    let scenarios =
      match tm with
      | None -> scenarios
      | Some _ ->
          let name =
            match impls_of tm with
            | [ impl ] -> Registry.name impl
            | _ -> assert false
          in
          List.filter_map
            (fun s ->
              if s.Scenario.tms = [] || List.mem name s.Scenario.tms then
                Some { s with Scenario.tms = [ name ] }
              else None)
            scenarios
    in
    if scenarios = [] then Fmt.failwith "no scenarios selected";
    if check_only then
      Format.printf "%d scenario(s) valid@." (List.length scenarios)
    else if list_only then
      List.iter
        (fun s ->
          Format.printf "%-32s %-14s %-9s %3d cells%s  %s@." s.Scenario.id
            (Scenario.family_to_string s.Scenario.family)
            (Fault.name s.Scenario.fault)
            (List.length (Scenario_run.cells_of s))
            (if s.Scenario.quarantine then "  [quarantined]" else "")
            s.Scenario.describe)
        scenarios
    else begin
      (* journal-reused rows for --resume: id -> (status, raw line), last
         occurrence wins (a re-run scenario appends a newer row) *)
      let reusable = Hashtbl.create 64 in
      if resume then
        List.iter
          (fun (id, status, line) ->
            if status = "pass" || status = "quarantine" then
              Hashtbl.replace reusable id line
            else Hashtbl.remove reusable id)
          (Scenario_run.journal_load journal_file);
      let journal =
        open_out_gen
          (if resume then [ Open_append; Open_creat ]
           else [ Open_wronly; Open_trunc; Open_creat ])
          0o644 journal_file
      in
      let w = make_watch ~enabled:watch ~label:"conform" ~every:10 in
      let lines = ref [] in
      let failed = ref [] and timeouts = ref [] in
      let quarantined = ref 0 and total_cells = ref 0 and reused = ref 0 in
      let table = ref [] in
      List.iter
        (fun s ->
          let id = s.Scenario.id in
          match Hashtbl.find_opt reusable id with
          | Some line ->
              incr reused;
              lines := (line ^ "\n") :: !lines;
              let status, cells =
                match Obs_json.parse line with
                | Ok j ->
                    ( Option.value ~default:"pass"
                        (Option.bind (Obs_json.member "status" j)
                           Obs_json.to_str),
                      Option.value ~default:0
                        (Option.bind (Obs_json.member "cells" j)
                           Obs_json.to_int) )
                | Error _ -> ("pass", 0)
              in
              if status = "quarantine" then incr quarantined;
              total_cells := !total_cells + cells;
              table := (id, status, cells, 0, true) :: !table
          | None ->
              let inject =
                if inject_crash = Some id then Scenario_run.Inject_crash
                else if inject_stall = Some id then Scenario_run.Inject_stall
                else Scenario_run.No_inject
              in
              let cell_lines = ref [] in
              let row = Scenario_run.run_row ~tick:(fun () -> watch_tick w)
                  ~inject ~seed s
              in
              if cells_flag then begin
                (* re-run cells are not re-executed here: cell rows ride
                   the same sweep, rendered from the row's failures plus
                   the passing cell list *)
                let failures = row.Scenario_run.failures in
                List.iter
                  (fun (impl, policy) ->
                    let tm = Registry.name impl in
                    let cm = policy.Cm.name in
                    let c =
                      match
                        List.find_opt
                          (fun (f : Scenario_run.cell) ->
                            f.Scenario_run.tm = tm
                            && f.Scenario_run.cm = cm)
                          failures
                      with
                      | Some f -> f
                      | None ->
                          {
                            Scenario_run.tm;
                            cm;
                            reason = None;
                            detail = "";
                          }
                    in
                    cell_lines :=
                      (Obs_json.to_string (Scenario_run.cell_json ~id c)
                      ^ "\n")
                      :: !cell_lines)
                  (Scenario_run.cells_of s)
              end;
              let line = Obs_json.to_string (Scenario_run.row_json row) in
              output_string journal (line ^ "\n");
              flush journal;
              lines := (line ^ "\n") :: List.rev_append !cell_lines !lines;
              if row.Scenario_run.status = "fail" then begin
                failed := id :: !failed;
                if
                  List.exists
                    (fun (f : Scenario_run.cell) ->
                      f.Scenario_run.reason = Some "timeout")
                    row.Scenario_run.failures
                then timeouts := id :: !timeouts
              end;
              if row.Scenario_run.status = "quarantine" then
                incr quarantined;
              total_cells := !total_cells + row.Scenario_run.cells;
              table :=
                (id, row.Scenario_run.status, row.Scenario_run.cells,
                 row.Scenario_run.failed, false)
                :: !table)
        scenarios;
      close_out journal;
      watch_finish w;
      let jsonl = String.concat "" (List.rev !lines) in
      (match output with
      | Some f ->
          let oc = open_out f in
          output_string oc jsonl;
          close_out oc
      | None -> ());
      if json then print_string jsonl
      else begin
        Format.printf "%-32s %-11s %5s %6s@." "scenario" "status" "cells"
          "failed";
        List.iter
          (fun (id, status, cells, failed, from_journal) ->
            Format.printf "%-32s %-11s %5d %6d%s@." id status cells failed
              (if from_journal then "  (journal)" else ""))
          (List.rev !table);
        Format.printf
          "@.%d scenario(s) (%d from the journal), %d cell(s), %d \
           failed, %d quarantined@."
          (List.length scenarios) !reused !total_cells
          (List.length !failed) !quarantined
      end;
      if !failed <> [] then
        Reason.exit_with
          (Reason.Conform_failure
             {
               failed = List.rev !failed;
               timeouts = List.rev !timeouts;
               scenarios = List.length scenarios;
               cells = !total_cells;
               quarantined = !quarantined;
             })
    end
  in
  Cmd.v
    (Cmd.info "conform"
       ~doc:
         "Run the scenario catalogue: every scenario's TM x CM cells, \
          each judged against the scenario's declared expectation \
          (consistency verdict, stop reason, lint findings, commit \
          floor).  Crash-contained — an exception or a stall inside one \
          cell is reported as that cell's failure and never aborts the \
          sweep.  Each finished scenario is journaled, so $(b,--resume) \
          re-runs only unfinished ids with byte-identical final output.  \
          Exits non-zero (one PCL-E110 reason line naming the failed \
          ids) when any non-quarantined scenario fails.")
    Term.(
      const run $ tm_arg $ files $ dir $ all $ scenario_filter $ seed
      $ json $ output $ cells_flag $ journal_arg $ resume $ check_only
      $ list_only $ inject_crash $ inject_stall $ watch_arg)

(* ------------------------------------------------------------------ *)
(* report: run a workload silently, then dump the telemetry sink. *)

let report_workloads =
  [ "mixed"; "fuzz"; "scaling"; "verdict"; "liveness"; "explore" ]

(** Drive one silent workload over [impl]; all output happens through the
    default sink. *)
let report_drive workload ~iters ~seed impl =
  match workload with
  | "mixed" ->
      ignore
        (Workload.run impl
           { Workload.default with txns_per_proc = iters; seed });
      ignore (run_fuzz impl ~iters ~seed)
  | "fuzz" -> ignore (run_fuzz impl ~iters ~seed)
  | "scaling" ->
      List.iter
        (fun n_procs ->
          List.iter
            (fun conflict_pct ->
              ignore
                (Workload.run impl
                   {
                     Workload.default with
                     n_procs;
                     conflict_pct;
                     txns_per_proc = iters;
                     seed;
                   }))
            [ 0; 50; 100 ])
        [ 2; 4; 8 ]
  | "verdict" -> ignore (Pcl_verdict.assess impl)
  | "liveness" -> ignore (Liveness_class.classify impl)
  | "explore" -> ignore (run_explore impl)
  | w -> Fmt.failwith "unknown workload %S (one of %s)" w
           (String.concat ", " report_workloads)

let report_cmd =
  let workload =
    Arg.(
      value
      & opt (enum (List.map (fun w -> (w, w)) report_workloads)) "mixed"
      & info [ "w"; "workload" ] ~docv:"WORKLOAD"
          ~doc:
            "Workload to instrument: $(b,mixed) (scaling run + fuzz), \
             $(b,fuzz), $(b,scaling) (procs x conflict grid), \
             $(b,verdict), $(b,liveness) or $(b,explore).")
  in
  let iters =
    Arg.(
      value & opt int 10
      & info [ "n"; "iterations" ] ~docv:"N"
          ~doc:"Iterations (fuzz runs / txns per process).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the sink as JSONL on stdout instead of a table.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Also write the JSONL export to $(docv).")
  in
  let run tm workload iters seed json output =
    let impls = impls_of tm in
    let sink = Sink.default in
    Sink.reset sink;
    Sink.set_meta sink "tool" "pcl_tm report";
    Sink.set_meta sink "workload" workload;
    Sink.set_meta sink "iterations" (string_of_int iters);
    Sink.set_meta sink "seed" (string_of_int seed);
    Sink.set_meta sink "tm"
      (match (tm, impls) with
      | Some _, [ (module M : Tm_intf.S) ] -> M.name
      | _ -> "all");
    List.iter (report_drive workload ~iters ~seed) impls;
    (match output with Some f -> Sink.write_jsonl sink f | None -> ());
    if json then print_string (Sink.to_jsonl sink)
    else if output = None then Format.printf "%a@." Sink.pp_table sink
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run a workload with the telemetry sink enabled and report the \
          aggregated counters, histograms and spans — as a table, as JSONL \
          on stdout ($(b,--json)), or to a file ($(b,-o)).")
    Term.(const run $ tm_arg $ workload $ iters $ seed $ json $ output)

(* The exit funnel: every nonzero exit leaves through here with exactly
   one machine-readable reason line on stderr.  Commands raise
   [Reason.Exit_reason]; [Fmt.failwith] (Failure) and registry lookups
   (Invalid_argument) map to invalid input; anything else is an internal
   error; and a nonzero return from cmdliner itself (usage/parse errors,
   which print their own diagnostics) is stamped [Cli_error] — guarded by
   [Reason.emitted] so a reason raised through a command never doubles. *)
let () =
  (* the chaos library's lint pass rides the pclsan plug-in registry *)
  Crash_closure.register ();
  let info =
    Cmd.info "pcl_tm" ~version:"1.0"
      ~doc:"The PCL-theorem transactional-memory workbench."
  in
  let group =
    Cmd.group info
      [ list_cmd; verdict_cmd; figures_cmd; anomalies_cmd; check_cmd;
        check_file_cmd; liveness_cmd; explore_cmd; trace_cmd; fuzz_cmd;
        explain_cmd; lint_cmd; chaos_cmd; cost_cmd; soak_cmd; conform_cmd;
        report_cmd ]
  in
  let rc =
    try Cmd.eval ~catch:false group with
    | Reason.Exit_reason r ->
        Reason.emit r;
        1
    | Failure msg | Invalid_argument msg ->
        Reason.emit (Reason.Invalid_input { msg });
        1
    | e ->
        Reason.emit (Reason.Internal_error { exn = Printexc.to_string e });
        125
  in
  if rc <> 0 && not (Reason.emitted ()) then
    Reason.emit (Reason.Cli_error { rc });
  exit rc
