(** The figure-consistency pass: re-run the paper's constructions
    (Figures 1-6) against a live TM and assert that the trace passes fire
    exactly where the proof says they must.

    For every TM the serial execution delta1 (T1 to commit, then T3 to
    commit) must be lint-clean.  The adversarial side then splits on how
    the TM pays its PCL tax:
    - if beta / beta' can be assembled, they must trip exactly the passes
      recorded in the expectation table (strict-DAP on centralized
      metadata, races on unsynchronized accesses, ...);
    - if the construction fails, the failure kind must match: a liveness
      failure for the blocking corner, a missing flip for the
      weak-consistency corner;
    - TMs marked [stalls] must additionally trip [of-stall] on the stall
      probe (the writer paused mid-run, the reader running solo past the
      horizon).

    Any drift — a pass newly firing, an expected one falling silent, or a
    changed failure kind — is reported as an [Error] finding. *)

open Tm_impl

type outcome =
  | Built of string list
      (** construction succeeded; passes fired on beta or beta' (sorted,
          deduplicated) *)
  | Liveness_blocked of string
      (** rendered liveness failure: some solo run never completed *)
  | No_flip of string
      (** rendered consistency failure: the reader never observes the
          committed write, so no critical step exists *)
  | Crashed of string

type observation = {
  serial : string list;
      (** trace passes that fired on delta1 — must be empty *)
  outcome : outcome;
  stall : string list;
      (** passes fired on the first stall probe that trips [of-stall]
          (writer paused after k steps, reader solo for 3x horizon);
          empty when no probe stalls *)
}

val observe : ?config:Lint.config -> Tm_intf.impl -> observation
(** Replay delta1, the construction and the stall probes with a private
    flight recorder, running every trace pass on each recording. *)

type expectation = {
  build : [ `Ok | `Blocks | `No_flip ];
  fires : string list;  (** passes expected on beta / beta' under [`Ok] *)
  stalls : bool;  (** must the stall probe trip [of-stall]? *)
}

val expected : string -> expectation option
(** The per-TM expectation table, keyed by registry name. *)

val pass : Lint.pass
(** ["figure-consistency"]: needs [input.tm] to name a registered TM
    (silent otherwise, since it replays executions rather than reading
    the input trace). *)
