(** The pclsan happens-before engine: one pass over an execution's step
    trace assigns every atomic step a vector clock.

    The synchronizes-with model follows the sanitizer convention for the
    paper's base objects (cf. Kuznetsov & Ravi's per-step stall/footprint
    characterizations): plain [Read]/[Write] primitives are raced data
    accesses and induce no cross-process ordering, while the atomic
    read-modify-write primitives (CAS, fetch&add, try-lock/unlock, LL/SC)
    are synchronization — each such step acquires the clock last released
    on its base object and releases its own, so RMW chains through one
    object are totally ordered.  Program order always holds, and when a
    history is supplied, so does realtime order between non-overlapping
    transactions (a TM may rely on "T' completed before T began", which
    makes serial executions totally ordered and lint-clean).

    Happens-before is then the usual vector-clock order: step [a] precedes
    step [b] iff [a]'s clock is pointwise [<=] [b]'s clock ([a <> b]). *)

open Tm_base
open Tm_trace

type step = {
  pos : int;  (** position in the analysed trace, 0-based and dense *)
  entry : Access_log.entry;
  before : Vclock.t;  (** the acting process's clock before the step *)
  after : Vclock.t;  (** after ticking and acquiring — the step's clock *)
  sync : bool;  (** did the step synchronize through its base object? *)
}

type t

val analyse : ?history:History.t -> Access_log.entry list -> t
(** One linear pass; O(steps x live pids).  With [?history], the first
    step of each transaction additionally acquires the final clocks of all
    transactions that completed before it was invoked. *)

val analyse_log : ?history:History.t -> Access_log.t -> t
(** [analyse] over the log structure itself: steps are fetched by index
    from the flat columns, no entry list is rescanned. *)

val steps : t -> step list
(** In trace order. *)

val length : t -> int
val step : t -> int -> step
(** By dense position.  @raise Invalid_argument when out of range. *)

val pos_of_index : t -> int -> int option
(** Resolve a global step index ([Access_log.entry.index]) to a position
    in the analysed trace ([None] if the index was not in the trace, e.g.
    lost to flight-ring wraparound). *)

val happens_before : t -> int -> int -> bool
(** [happens_before t a b] — by dense positions; irreflexive. *)

val concurrent_pos : t -> int -> int -> bool

val clock_of_pid : t -> int -> Vclock.t
(** Final clock of a process after the whole trace. *)

val is_sync : Primitive.t -> bool
(** Does a primitive kind synchronize (RMW-class), as opposed to a plain
    read/write data access? *)
