(* Vector clocks over pids, as balanced maps: pid sets are tiny (a
   handful of processes), traces are long, so persistent sharing between
   the per-step clocks stored by the happens-before engine matters more
   than constant-factor array access.  Zero components are never stored,
   making structural emptiness and [to_list] canonical. *)

module Imap = Map.Make (Int)

type t = int Imap.t

let empty = Imap.empty
let get c pid = Option.value ~default:0 (Imap.find_opt pid c)
let tick c pid = Imap.add pid (get c pid + 1) c

let join a b =
  Imap.union (fun _pid x y -> Some (max x y)) a b

(* [a <= b] pointwise: every component of [a] is covered by [b].  Only
   [a]'s bindings need checking — absent components are 0. *)
let leq a b = Imap.for_all (fun pid n -> n <= get b pid) a
let equal a b = Imap.equal Int.equal a b
let lt a b = leq a b && not (equal a b)
let concurrent a b = (not (leq a b)) && not (leq b a)
let to_list c = Imap.bindings c
let of_list l =
  List.fold_left
    (fun c (pid, n) -> if n = 0 then c else Imap.add pid n c)
    empty l

let pp ppf c =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (pid, n) -> Format.fprintf ppf "p%d:%d" pid n))
    (to_list c)
