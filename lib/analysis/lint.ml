(* The lint framework: finding/pass types, configuration, inputs and the
   plug-in registry.  The built-in passes live in the pass modules and are
   assembled (with name lookup) in Lints; this module holds only what the
   passes themselves need, so a pass can be written against Lint alone. *)

open Tm_base
open Tm_trace
open Tm_dap
module J = Tm_obs.Obs_json

type severity = Info | Warning | Error

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

type finding = {
  pass : string;
  severity : severity;
  step : int option;
  txns : Tid.t list;
  oids : Oid.t list;
  witness_steps : int list;
  message : string;
}

let pp_finding ?(name_of = fun oid -> Printf.sprintf "oid%d" (Oid.to_int oid))
    ppf (f : finding) =
  Format.fprintf ppf "[%s] %s:%s %s" (severity_to_string f.severity) f.pass
    (match f.step with
    | Some s -> Printf.sprintf " step %d:" s
    | None -> "")
    f.message;
  if f.txns <> [] then
    Format.fprintf ppf "@\n  txns: %s"
      (String.concat ", " (List.map Tid.name f.txns));
  if f.oids <> [] then
    Format.fprintf ppf "@\n  objects: %s"
      (String.concat ", " (List.map name_of f.oids));
  if f.witness_steps <> [] then
    Format.fprintf ppf "@\n  witness steps: %s"
      (String.concat "," (List.map string_of_int f.witness_steps))

let finding_json (f : finding) : J.t =
  J.Obj
    [
      Tm_obs.Schema.field;
      ("type", J.String "finding");
      ("pass", J.String f.pass);
      ("severity", J.String (severity_to_string f.severity));
      ( "step",
        match f.step with Some s -> J.Int s | None -> J.Null );
      ("txns", J.List (List.map (fun t -> J.Int (Tid.to_int t)) f.txns));
      ("oids", J.List (List.map (fun o -> J.Int (Oid.to_int o)) f.oids));
      ("witness_steps", J.List (List.map (fun s -> J.Int s) f.witness_steps));
      ("message", J.String f.message);
    ]

let to_flight_verdict (f : finding) : Flight.verdict =
  {
    Flight.source = Printf.sprintf "lint:%s" f.pass;
    verdict = severity_to_string f.severity;
    axiom = f.message;
    witness_txns = f.txns;
    witness_steps = f.witness_steps;
  }

type config = {
  horizon : int;
  dap_connectivity : [ `Direct | `Path ];
  max_findings : int;
}

let default = { horizon = 128; dap_connectivity = `Direct; max_findings = 16 }

type input = {
  log : Access_log.entry list;
  history : History.t;
  name_of : Oid.t -> string;
  data_sets : Conflict.data_sets option;
  tm : string option;
  meta : (string * string) list;
}

let input_of_flight fl : input =
  {
    log = Flight.steps fl;
    history = Flight.history fl;
    name_of = Flight.name_of fl;
    data_sets = None;
    tm = Flight.meta_value fl "tm";
    meta = Flight.meta fl;
  }

(* Dynamic footprints: the per-transaction item sets actually touched in
   the history.  Successful reads and writes are in the history's
   read/write sets; *invoked* operations that were answered with A_T are
   not, yet the transaction declared interest in those items and may have
   taken base steps on their behalf — a TM that aborts a transaction on
   its very first read (progressive TMs do) would otherwise leave it with
   an empty footprint and fabricate disjoint-access findings against it.
   The union of both is still an under-approximation of the static data
   set for partially-run transactions, which can only mask (never
   fabricate) a disjointness violation. *)
let effective_data_sets (i : input) : Conflict.data_sets =
  match i.data_sets with
  | Some ds -> ds
  | None ->
      let invoked tid =
        List.fold_left
          (fun acc ev ->
            match ev with
            | Event.Inv { tid = t; op = Event.Read x; _ }
            | Event.Inv { tid = t; op = Event.Write (x, _); _ }
              when Tid.equal t tid ->
                Item.Set.add x acc
            | _ -> acc)
          Item.Set.empty
          (History.to_list i.history)
      in
      List.map
        (fun tid ->
          ( tid,
            Item.Set.union (invoked tid)
              (Item.Set.union
                 (History.read_set i.history tid)
                 (History.write_set i.history tid)) ))
        (History.txns i.history)

type pass = {
  name : string;
  describe : string;
  paper : string;
  run : config -> input -> finding list;
}

(* plug-in registry: later registrations of the same name win, so a test
   or downstream tool can shadow a built-in pass *)
let plugins : pass list ref = ref []

let register p =
  plugins := List.filter (fun q -> q.name <> p.name) !plugins @ [ p ]

let registered () = !plugins
