(* The figure-consistency pass.

   Unlike the trace passes, this one does not read its input's log: it
   uses the input only to name a TM, then replays the paper's
   constructions (delta1 serial; beta and beta' adversarial; the stall
   probes) with a private flight recorder and runs every trace pass over
   the recordings.  The expectation table below pins, per TM, which
   passes the proof says must fire — the executable form of "Figures 1-6
   trip exactly these lints and no others". *)

open Tm_base
open Tm_impl
open Tm_runtime
open Pcl
open Lint

type outcome =
  | Built of string list
  | Liveness_blocked of string
  | No_flip of string
  | Crashed of string

type observation = {
  serial : string list;
  outcome : outcome;
  stall : string list;
}

let fired_passes ?(passes = Passes.trace_passes) (cfg : config)
    (impl : Tm_intf.impl) atoms : string list =
  let module M = (val impl : Tm_intf.S) in
  let _run, fl = Figures.record_run impl atoms in
  let i =
    {
      (input_of_flight fl) with
      data_sets = Some Txns.data_sets;
      tm = Some M.name;
    }
  in
  List.filter_map
    (fun (p : pass) -> if p.run cfg i <> [] then Some p.name else None)
    passes

(* The stall probe: pause the writer T1 after its k-th step and let the
   reader T3 run solo for three horizons.  A blocking TM leaves T3
   spinning on whatever T1 still holds (the global lock, a locked
   write-set entry, an odd sequence number), which is precisely an
   of-stall; an obstruction-free TM lets T3 complete (or abort) solo.
   We scan k because "mid-critical-section" lands at different depths in
   different commit protocols. *)
let max_pause_depth = 40

let stall_probe (cfg : config) (impl : Tm_intf.impl) : string list =
  let solo = 3 * cfg.horizon in
  let of_stall =
    List.filter (fun (p : pass) -> p.name = "of-stall") Passes.trace_passes
  in
  (* scan with just the of-stall pass (the only one that decides whether
     to keep scanning), then run the full pass set once at the stalling
     depth — same result, a fraction of the lint work per probe *)
  let rec scan k =
    if k > max_pause_depth then []
    else
      let atoms = [ Schedule.Steps (1, k); Schedule.Steps (3, solo) ] in
      if fired_passes ~passes:of_stall cfg impl atoms <> [] then
        fired_passes cfg impl atoms
      else scan (k + 1)
  in
  scan 1

let observe ?(config = default) (impl : Tm_intf.impl) : observation =
  let serial = fired_passes config impl Constructions.delta1 in
  let stall = stall_probe config impl in
  let outcome =
    match Constructions.build impl with
    | Error (Constructions.Liveness_failure { phase; detail }) ->
        Liveness_blocked (Printf.sprintf "%s: %s" phase detail)
    | Error (Constructions.Consistency_no_flip { writer; reader; item; _ }) ->
        No_flip
          (Printf.sprintf "%s never observes %s's committed write to %s"
             (Tid.name reader) (Tid.name writer) (Item.name item))
    | Error (Constructions.Crash msg) -> Crashed msg
    | Ok c ->
        Built
          (List.sort_uniq String.compare
             (fired_passes config impl (Constructions.beta c)
             @ fired_passes config impl (Constructions.beta' c)))
  in
  { serial; outcome; stall }

type expectation = {
  build : [ `Ok | `Blocks | `No_flip ];
  fires : string list;
  stalls : bool;
}

(* Filled in from the proof's case analysis, confirmed against the
   implementations (test/test_analysis.ml locks these in):
   - tl-lock, tl2-clock and norec block: a paused lock/version holder
     leaves the reader spinning, so the adversary cannot assemble alpha2
     and the stall probe trips of-stall — the L corner.
   - pram-local forgoes consistency: T3 never observes T1's committed
     write, so no critical step exists and the construction has nothing
     to flip — the C corner.
   - si-clock and dstm assemble: both trip strict-dap (si's global clock;
     dstm's centralized contention metadata) and race (plain accesses of
     overlapping transactions).
   - candidate assembles and races — the theorem's victim pays on the
     adversarial schedules.
   - llsc-candidate is clean here: every access is LL/SC-synchronized,
     per-item, and solo runs complete.  (The theorem says it must pay
     elsewhere: it livelocks under step contention, which these
     contention-free probes never exhibit.) *)
let table : (string * expectation) list =
  [
    ("tl-lock", { build = `Blocks; fires = []; stalls = true });
    ("pram-local", { build = `No_flip; fires = []; stalls = false });
    ("dstm", { build = `Ok; fires = [ "race"; "strict-dap" ]; stalls = false });
    ( "si-clock",
      { build = `Ok; fires = [ "race"; "strict-dap" ]; stalls = false } );
    ("candidate", { build = `Ok; fires = [ "race" ]; stalls = false });
    ("tl2-clock", { build = `Blocks; fires = []; stalls = true });
    ("norec", { build = `Blocks; fires = []; stalls = true });
    ("llsc-candidate", { build = `Ok; fires = []; stalls = false });
    (* lp-progressive is the L corner again, by aborts instead of spins: a
       paused writer's lock makes the reader abort itself forever, so the
       construction blocks and the stall probe's forced aborts trip
       of-stall's uncontended-abort arm *)
    ("lp-progressive", { build = `Blocks; fires = []; stalls = true });
    (* pwf-readers pays the P corner maximally: every transaction crosses
       the snapshot root *)
    ( "pwf-readers",
      { build = `Ok; fires = [ "race"; "strict-dap" ]; stalls = false } );
  ]

let expected name = List.assoc_opt name table

let finding ?step ~severity message =
  {
    pass = "figure-consistency";
    severity;
    step;
    txns = [];
    oids = [];
    witness_steps = [];
    message;
  }

let describe_outcome = function
  | Built fired ->
      if fired = [] then "built; no passes fired"
      else Printf.sprintf "built; fired %s" (String.concat ", " fired)
  | Liveness_blocked f -> Printf.sprintf "liveness failure (%s)" f
  | No_flip f -> Printf.sprintf "no flip (%s)" f
  | Crashed msg -> Printf.sprintf "crash (%s)" msg

let check (cfg : config) (impl : Tm_intf.impl) : finding list =
  let module M = (val impl : Tm_intf.S) in
  let obs = observe ~config:cfg impl in
  let serial_findings =
    List.map
      (fun p ->
        finding ~severity:Error
          (Printf.sprintf
             "serial execution delta1 tripped pass %s on %s: serial runs \
              must be lint-clean"
             p M.name))
      obs.serial
  in
  match expected M.name with
  | None ->
      serial_findings
      @ [
          finding ~severity:Info
            (Printf.sprintf
               "no figure expectation recorded for %s (observed: %s; stall \
                probe: %s)"
               M.name
               (describe_outcome obs.outcome)
               (if obs.stall = [] then "clean"
                else String.concat ", " obs.stall));
        ]
  | Some exp ->
      let build_findings =
        match (obs.outcome, exp.build) with
        | Built fired, `Ok ->
            let missing =
              List.filter (fun p -> not (List.mem p fired)) exp.fires
            and unexpected =
              List.filter (fun p -> not (List.mem p exp.fires)) fired
            in
            List.map
              (fun p ->
                finding ~severity:Error
                  (Printf.sprintf
                     "pass %s did not fire on beta/beta' for %s, but the \
                      proof says it must"
                     p M.name))
              missing
            @ List.map
                (fun p ->
                  finding ~severity:Error
                    (Printf.sprintf
                       "pass %s fired on beta/beta' for %s but is not in \
                        its expectation set"
                       p M.name))
                unexpected
        | Liveness_blocked _, `Blocks | No_flip _, `No_flip -> []
        | outcome, exp_build ->
            [
              finding ~severity:Error
                (Printf.sprintf
                   "construction outcome for %s was %s, but the proof \
                    expects %s"
                   M.name
                   (describe_outcome outcome)
                   (match exp_build with
                   | `Ok -> "beta/beta' to assemble"
                   | `Blocks -> "a liveness failure (blocking TM)"
                   | `No_flip -> "no flip (weak-consistency TM)"));
            ]
      in
      let stall_findings =
        match (List.mem "of-stall" obs.stall, exp.stalls) with
        | true, true | false, false -> []
        | false, true ->
            [
              finding ~severity:Error
                (Printf.sprintf
                   "the stall probe never tripped of-stall on %s, but this \
                    TM blocks"
                   M.name);
            ]
        | true, false ->
            [
              finding ~severity:Error
                (Printf.sprintf
                   "the stall probe tripped of-stall on %s, which is \
                    expected to be obstruction-free"
                   M.name);
            ]
      in
      serial_findings @ build_findings @ stall_findings

let run (cfg : config) (i : input) : finding list =
  match i.tm with
  | None -> []
  | Some name -> (
      match Registry.find name with
      | None -> []
      | Some impl -> check cfg impl)

let pass : pass =
  {
    name = "figure-consistency";
    describe =
      "the paper's Figure 1-6 constructions trip exactly the expected \
       passes and no others";
    paper = "Section 4 (the constructions), Figures 1-6";
    run;
  }
