(* The built-in trace-level lint passes.

   Every pass follows the same discipline: walk the execution forward,
   diagnose the property at the FIRST step where it becomes refutable, and
   attach a witness (transactions + global step indices).  This is the
   sanitizer reading of the paper's properties — strict-DAP contention,
   obstruction-free stalls and inconsistent reads all admit per-step
   characterizations (cf. Kuznetsov & Ravi), so none of them needs a full
   checker-lattice pass to detect. *)

open Tm_base
open Tm_trace
open Tm_dap
open Lint

let cap (cfg : config) findings =
  if List.length findings <= cfg.max_findings then findings
  else
    let rec take n = function
      | x :: rest when n > 0 -> x :: take (n - 1) rest
      | _ -> []
    in
    take cfg.max_findings findings

let tid_list tids = List.sort_uniq Tid.compare tids

(* ------------------------------------------------------------------ *)
(* race: two hb-unordered accesses to one base object, one non-trivial.
   FastTrack-style bookkeeping: per object, remember the last access of
   each process (clock + kind); a new access races with a remembered one
   iff they conflict and the remembered clock is not below the current
   step's clock.  Two sync (RMW-class) accesses never race — the engine
   orders them through the object itself. *)

module Last = Map.Make (Int)

type epoch = {
  e_idx : int;  (** global step index *)
  e_tid : Tid.t option;
  e_kind : string;
  e_clock : Vclock.t;  (** the access's after-clock *)
}

(* Per object we remember, for each pid, its latest access of any kind and
   its latest non-trivial access (FastTrack's epoch optimization: program
   order makes the latest access dominate all earlier ones of the same
   class).  A new access is checked against other pids' last non-trivial
   epochs always, and — when itself non-trivial — against their last
   accesses of any kind too. *)
type obj_state = { any : epoch Last.t; nontrivial : epoch Last.t }

let empty_obj = { any = Last.empty; nontrivial = Last.empty }

let race_run (cfg : config) (i : input) : finding list =
  let hb = Hb.analyse ~history:i.history i.log in
  let per_obj : (Oid.t, obj_state) Hashtbl.t = Hashtbl.create 64 in
  let seen_pair : (int * int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let findings = ref [] in
  List.iter
    (fun (s : Hb.step) ->
      let e = s.Hb.entry in
      let o = e.Access_log.oid in
      let pid = e.Access_log.pid in
      let nt = Primitive.non_trivial e.Access_log.prim in
      let st = Option.value ~default:empty_obj (Hashtbl.find_opt per_obj o) in
      let report q (prev : epoch) =
        (* two sync accesses are always ordered through the object's
           release clock, so only pairs involving a plain read/write can
           reach the unordered case *)
        if not (Vclock.leq prev.e_clock s.Hb.after) then begin
          let key = (Oid.to_int o, min q pid, max q pid) in
          if not (Hashtbl.mem seen_pair key) then begin
            Hashtbl.add seen_pair key ();
            findings :=
              {
                pass = "race";
                severity = Warning;
                step = Some e.Access_log.index;
                txns =
                  tid_list
                    (List.filter_map Fun.id [ e.Access_log.tid; prev.e_tid ]);
                oids = [ o ];
                witness_steps = [ prev.e_idx; e.Access_log.index ];
                message =
                  Printf.sprintf
                    "unordered conflicting accesses to %s: p%d's %s (step \
                     %d) and p%d's %s (step %d) have no happens-before edge"
                    (i.name_of o) q prev.e_kind prev.e_idx pid
                    (Primitive.kind_name e.Access_log.prim)
                    e.Access_log.index;
              }
              :: !findings
          end
        end
      in
      Last.iter (fun q prev -> if q <> pid then report q prev) st.nontrivial;
      if nt then
        Last.iter
          (fun q prev ->
            (* skip epochs already compared via the non-trivial map *)
            let dup =
              match Last.find_opt q st.nontrivial with
              | Some p -> p.e_idx = prev.e_idx
              | None -> false
            in
            if q <> pid && not dup then report q prev)
          st.any;
      let epoch =
        {
          e_idx = e.Access_log.index;
          e_tid = e.Access_log.tid;
          e_kind = Primitive.kind_name e.Access_log.prim;
          e_clock = s.Hb.after;
        }
      in
      Hashtbl.replace per_obj o
        {
          any = Last.add pid epoch st.any;
          nontrivial =
            (if nt then Last.add pid epoch st.nontrivial else st.nontrivial);
        })
    (Hb.steps hb);
  cap cfg (List.rev !findings)

let race : pass =
  {
    name = "race";
    describe =
      "two happens-before-unordered accesses to one base object, at least \
       one non-trivial";
    paper = "Section 3 (base objects and primitives); sanitizer model";
    run = race_run;
  }

(* ------------------------------------------------------------------ *)
(* strict-dap: contention between disjoint (or graph-disconnected)
   transactions, flagged at the step where the second access lands — the
   per-step version of Dap.Strict_dap over Access_log summaries and
   Conflict data sets. *)

let dap_run (cfg : config) (i : input) : finding list =
  let data_sets = effective_data_sets i in
  let related =
    match cfg.dap_connectivity with
    | `Direct -> fun t1 t2 -> Conflict.conflict data_sets t1 t2
    | `Path ->
        let tids = List.map fst data_sets in
        let g = Conflict.graph data_sets tids in
        fun t1 t2 -> Conflict.connected g t1 t2
  in
  (* per object: every transaction that touched it, with first index and
     whether any of its accesses was non-trivial *)
  let per_obj : (Oid.t, (Tid.t * int * bool) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let seen_pair : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let findings = ref [] in
  List.iter
    (fun (e : Access_log.entry) ->
      match e.Access_log.tid with
      | None -> ()
      | Some t ->
          let o = e.Access_log.oid in
          let nt = Primitive.non_trivial e.Access_log.prim in
          let prior = Option.value ~default:[] (Hashtbl.find_opt per_obj o) in
          List.iter
            (fun (t', idx', nt') ->
              if
                (not (Tid.equal t t'))
                && (nt || nt')
                && not (related t t')
              then begin
                let key =
                  ( min (Tid.to_int t) (Tid.to_int t'),
                    max (Tid.to_int t) (Tid.to_int t') )
                in
                if not (Hashtbl.mem seen_pair key) then begin
                  Hashtbl.add seen_pair key ();
                  findings :=
                    {
                      pass = "strict-dap";
                      severity = Error;
                      step = Some e.Access_log.index;
                      txns = tid_list [ t; t' ];
                      oids = [ o ];
                      witness_steps = [ idx'; e.Access_log.index ];
                      message =
                        Printf.sprintf
                          "%s and %s have %s data sets but contend on %s \
                           (first contact at step %d)"
                          (Tid.name t') (Tid.name t)
                          (match cfg.dap_connectivity with
                          | `Direct -> "disjoint"
                          | `Path -> "conflict-graph-disconnected")
                          (i.name_of o) e.Access_log.index;
                    }
                    :: !findings
                end
              end)
            prior;
          (* keep one record per transaction, upgrading the nontrivial flag *)
          let prior' =
            if List.exists (fun (t', _, _) -> Tid.equal t t') prior then
              List.map
                (fun (t', idx', nt') ->
                  if Tid.equal t t' then (t', idx', nt' || nt)
                  else (t', idx', nt'))
                prior
            else (t, e.Access_log.index, nt) :: prior
          in
          Hashtbl.replace per_obj o prior')
    i.log;
  cap cfg (List.rev !findings)

let strict_dap : pass =
  {
    name = "strict-dap";
    describe =
      "contention on a base object between transactions with disjoint data \
       sets";
    paper = "Section 3 (strict disjoint-access-parallelism), Def. of D(T)";
    run = dap_run;
  }

(* ------------------------------------------------------------------ *)
(* of-stall: the obstruction-freedom obligations made local.  Two arms:
   (1) stall — a transaction running step-contention-free past the
   horizon without completing (maximal runs of consecutive log entries
   attributed to one transaction, no intervening step by any other
   process); (2) uncontended abort — a transaction aborted although no
   other process stepped during its interval, delegated to
   Obstruction_freedom.violations.  Either refutes the property: an
   obstruction-free TM must let a solo transaction commit. *)

let of_stall_run (cfg : config) (i : input) : finding list =
  (* completion stamps: step count at which each transaction committed or
     aborted, from the history's response events *)
  let completion : (Tid.t, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match ev with
      | Event.Resp { tid; resp = Event.R_committed | Event.R_aborted; at; _ }
        ->
          Hashtbl.replace completion tid at
      | _ -> ())
    (History.to_list i.history);
  let findings = ref [] in
  let flagged : (Tid.t, unit) Hashtbl.t = Hashtbl.create 4 in
  let cur : (Tid.t * int * int) option ref = ref None in
  (* (txn, first index of the solo run, length) *)
  List.iter
    (fun (e : Access_log.entry) ->
      let continue_run t first len =
        let len = len + 1 in
        if len > cfg.horizon && not (Hashtbl.mem flagged t) then begin
          Hashtbl.add flagged t ();
          findings :=
            {
              pass = "of-stall";
              severity = Error;
              step = Some e.Access_log.index;
              txns = [ t ];
              oids = [];
              witness_steps = [ first; e.Access_log.index ];
              message =
                Printf.sprintf
                  "%s has run %d steps step-contention-free (since step %d) \
                   without committing or aborting (horizon %d)"
                  (Tid.name t) len first cfg.horizon;
            }
            :: !findings
        end;
        cur := Some (t, first, len)
      in
      match (e.Access_log.tid, !cur) with
      | Some t, Some (t', first, len)
        when Tid.equal t t'
             && not (Hashtbl.mem completion t) ->
          continue_run t first len
      | Some t, _ when not (Hashtbl.mem completion t) ->
          continue_run t e.Access_log.index 0
      | _ -> cur := None)
    i.log;
  let uncontended_aborts =
    List.map
      (fun (v : Obstruction_freedom.violation) ->
        let lo, hi = v.Obstruction_freedom.interval in
        {
          pass = "of-stall";
          severity = Error;
          step = Some hi;
          txns = [ v.Obstruction_freedom.tid ];
          oids = [];
          witness_steps = [ lo; hi ];
          message =
            Printf.sprintf
              "%s aborted although no other process stepped during its \
               interval (steps %d..%d): obstruction-freedom permits aborts \
               only under step contention"
              (Tid.name v.Obstruction_freedom.tid) lo hi;
        })
      (Obstruction_freedom.violations i.history i.log)
  in
  cap cfg (List.rev !findings @ uncontended_aborts)

let of_stall : pass =
  {
    name = "of-stall";
    describe =
      "a transaction stalling step-contention-free past the horizon, or \
       aborted without step contention";
    paper = "Section 3 (obstruction-freedom); Kuznetsov-Ravi stalls";
    run = of_stall_run;
  }

(* ------------------------------------------------------------------ *)
(* anomaly lints: history-level patterns (lost update, write skew, torn
   snapshot) with provenance-style witnesses.  The step indices come from
   the events' [at] stamps, which live on the same axis as the access
   log. *)

let stamp h pos = Event.at (History.get h pos)

(** The global reads of [tid], as (item, value, at-stamp). *)
let global_reads_at h tid =
  List.filter_map
    (fun (r : History.read) ->
      if r.History.global then
        Some (r.History.item, r.History.value, stamp h r.History.pos)
      else None)
    (History.reads h tid)

let commit_stamp h tid =
  match History.positions_of_txn h tid with
  | Some (_, last) -> stamp h last
  | None -> 0

let pairs l =
  let rec go acc = function
    | [] -> acc
    | x :: rest -> go (List.fold_left (fun a y -> (x, y) :: a) acc rest) rest
  in
  List.rev (go [] l)

let lost_update_run (cfg : config) (i : input) : finding list =
  let h = i.history in
  let committed = List.filter (History.committed h) (History.txns h) in
  let findings =
    List.filter_map
      (fun (t1, t2) ->
        if not (History.concurrent h t1 t2) then None
        else
          let w1 = History.writes h t1 and w2 = History.writes h t2 in
          let r1 = global_reads_at h t1 and r2 = global_reads_at h t2 in
          List.find_map
            (fun (x, v, at1) ->
              match
                List.find_opt
                  (fun (x', v', _) -> Item.equal x x' && Value.equal v v')
                  r2
              with
              | Some (_, _, at2)
                when List.exists (fun (xi, _) -> Item.equal xi x) w1
                     && List.exists (fun (xi, _) -> Item.equal xi x) w2 ->
                  let step = max (commit_stamp h t1) (commit_stamp h t2) in
                  Some
                    {
                      pass = "lost-update";
                      severity = Error;
                      step = Some step;
                      txns = tid_list [ t1; t2 ];
                      oids = [];
                      witness_steps = List.sort_uniq compare [ at1; at2; step ];
                      message =
                        Printf.sprintf
                          "%s and %s both read %s = %s and both wrote %s \
                           before committing: one update is lost under any \
                           serialization"
                          (Tid.name t1) (Tid.name t2) (Item.name x)
                          (Value.show v) (Item.name x);
                    }
              | _ -> None)
            r1)
      (pairs committed)
  in
  cap cfg findings

let lost_update : pass =
  {
    name = "lost-update";
    describe =
      "two concurrent committed read-modify-writes of one item that both \
       read the same pre-state";
    paper = "Section 3 (serializability vs Def. 3.1 snapshot isolation)";
    run = lost_update_run;
  }

let write_skew_run (cfg : config) (i : input) : finding list =
  let h = i.history in
  let committed = List.filter (History.committed h) (History.txns h) in
  let findings =
    List.filter_map
      (fun (t1, t2) ->
        if not (History.concurrent h t1 t2) then None
        else
          let w1 = History.writes h t1 and w2 = History.writes h t2 in
          let r1 = global_reads_at h t1 and r2 = global_reads_at h t2 in
          (* x written by t1 only, y written by t2 only; each read the
             other's item in its pre-state *)
          let only_in w w' =
            List.filter
              (fun (xi, _) ->
                not (List.exists (fun (yi, _) -> Item.equal xi yi) w'))
              w
          in
          (* a read of [item] counts as a pre-state read w.r.t. [writer]
             only when the observed value cannot come from [writer] or
             from anything later: it differs from [writer]'s value and
             every transaction that installed it completed before
             [writer] began (the initial value qualifies vacuously) *)
          let pre_state_read rr ~item ~not_value ~writer =
            List.find_opt
              (fun (it, v, _) ->
                Item.equal it item
                && (not (Value.equal v not_value))
                && not
                     (List.exists
                        (fun tu ->
                          (not (Tid.equal tu writer))
                          && List.exists
                               (fun (yi, wv) ->
                                 Item.equal yi item && Value.equal wv v)
                               (History.writes h tu)
                          && not (History.precedes h tu writer))
                        (History.txns h)))
              rr
          in
          List.find_map
            (fun (x, vx) ->
              List.find_map
                (fun (y, vy) ->
                  if Item.equal x y then None
                  else
                    match
                      ( pre_state_read r1 ~item:y ~not_value:vy ~writer:t2,
                        pre_state_read r2 ~item:x ~not_value:vx ~writer:t1 )
                    with
                    | Some (_, _, at1), Some (_, _, at2) ->
                        let step =
                          max (commit_stamp h t1) (commit_stamp h t2)
                        in
                        Some
                          {
                            pass = "write-skew";
                            severity = Error;
                            step = Some step;
                            txns = tid_list [ t1; t2 ];
                            oids = [];
                            witness_steps =
                              List.sort_uniq compare [ at1; at2; step ];
                            message =
                              Printf.sprintf
                                "%s wrote %s while %s wrote %s, each \
                                 guarded by a pre-state read of the \
                                 other's item: disjoint writes with \
                                 crossing read dependencies"
                                (Tid.name t1) (Item.name x) (Tid.name t2)
                                (Item.name y);
                          }
                    | _ -> None)
                (only_in w2 w1))
            (only_in w1 w2))
      (pairs committed)
  in
  cap cfg findings

let write_skew : pass =
  {
    name = "write-skew";
    describe =
      "concurrent committed transactions with disjoint writes, each \
       guarded by a pre-state read of the other's written item";
    paper = "Section 3 (snapshot isolation, Def. 3.1)";
    run = write_skew_run;
  }

let torn_snapshot_run (cfg : config) (i : input) : finding list =
  let h = i.history in
  let txns = History.txns h in
  let committed = List.filter (History.committed h) txns in
  (* one history walk up front: per-txn write sets, and an
     (item, value) -> writers index for attribution queries *)
  let writes_of = List.map (fun t -> (t, History.writes h t)) txns in
  let writers : (string, Tid.t list) Hashtbl.t = Hashtbl.create 64 in
  let key x v = Item.name x ^ "=" ^ Value.show v in
  List.iter
    (fun (t, ws) ->
      List.iter
        (fun (x, v) ->
          let k = key x v in
          Hashtbl.replace writers k
            (t :: Option.value ~default:[] (Hashtbl.find_opt writers k)))
        ws)
    writes_of;
  let writers_of x v =
    Option.value ~default:[] (Hashtbl.find_opt writers (key x v))
  in
  let reads_of = List.map (fun t -> (t, global_reads_at h t)) txns in
  let findings =
    List.filter_map
      (fun tw ->
        let ww = List.assoc tw writes_of in
        List.find_map
          (fun (tr, rr) ->
            if Tid.equal tr tw then None
            else
              List.find_map
                (fun (x, vx) ->
                  (* attribute the read to tw only when the value pins the
                     writer: under lost updates (allowed by the paper's SI)
                     two writers can install the same value, and blaming tw
                     for another writer's copy would fabricate a tear *)
                  let ambiguous =
                    List.exists
                      (fun tu -> not (Tid.equal tu tw))
                      (writers_of x vx)
                  in
                  match
                    if ambiguous then None
                    else
                      List.find_opt
                        (fun (it, v, _) ->
                          Item.equal it x && Value.equal v vx)
                        rr
                  with
                  | None -> None
                  | Some (_, _, atx) ->
                      List.find_map
                        (fun (y, vy) ->
                          if Item.equal x y then None
                          else
                            match
                              List.find_opt
                                (fun (it, v, _) ->
                                  Item.equal it y && not (Value.equal v vy))
                                rr
                            with
                            | None -> None
                            | Some (_, u, aty) ->
                                (* u must predate tw's write: not the value
                                   of any writer tw does not precede *)
                                let explained =
                                  List.exists
                                    (fun tu ->
                                      (not (Tid.equal tu tw))
                                      && not (History.precedes h tu tw))
                                    (writers_of y u)
                                in
                                if explained then None
                                else
                                  Some
                                    {
                                      pass = "torn-snapshot";
                                      severity = Error;
                                      step = Some (max atx aty);
                                      txns = tid_list [ tw; tr ];
                                      oids = [];
                                      witness_steps =
                                        List.sort_uniq compare [ atx; aty ];
                                      message =
                                        Printf.sprintf
                                          "%s observed %s's write to %s but \
                                           read %s from strictly before it: \
                                           the snapshot is torn across %s's \
                                           atomic write set"
                                          (Tid.name tr) (Tid.name tw)
                                          (Item.name x) (Item.name y)
                                          (Tid.name tw);
                                    })
                        ww)
                ww)
          reads_of)
      committed
  in
  cap cfg findings

let torn_snapshot : pass =
  {
    name = "torn-snapshot";
    describe =
      "a reader observing part of a committed writer's atomic write set \
       together with strictly older state";
    paper = "Section 3 (weak adaptive consistency, Def. 3.3 blocks)";
    run = torn_snapshot_run;
  }

let trace_passes =
  [ race; strict_dap; of_stall; lost_update; write_skew; torn_snapshot ]
