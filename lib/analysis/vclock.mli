(** Vector clocks over process ids — the partial order underlying the
    pclsan happens-before engine.

    A clock maps each pid to the number of causally-preceding steps of
    that process; absent pids are implicitly 0, so the empty clock is the
    bottom element and [join] is a pointwise max.  The laws the engine
    relies on (join associativity/commutativity/idempotence, monotonicity
    of [tick] and [join], antisymmetry of [leq]) are property-tested in
    test/test_analysis.ml. *)

type t

val empty : t
(** Bottom: every component 0. *)

val get : t -> int -> int
(** [get c pid] is [pid]'s component (0 when absent). *)

val tick : t -> int -> t
(** Advance one pid's component by one — a local step. *)

val join : t -> t -> t
(** Pointwise maximum — the least upper bound. *)

val leq : t -> t -> bool
(** Pointwise [<=] — the happens-before-or-equal order. *)

val lt : t -> t -> bool
(** [leq] and not equal — strict happens-before. *)

val equal : t -> t -> bool

val concurrent : t -> t -> bool
(** Neither [leq a b] nor [leq b a]. *)

val to_list : t -> (int * int) list
(** Non-zero components, sorted by pid. *)

val of_list : (int * int) list -> t

val pp : Format.formatter -> t -> unit
(** Renders like [{p1:3 p2:1}]. *)
