(** The built-in trace-level lint passes.

    Each pass runs over one execution ({!Lint.input}) and flags the first
    offending step with a provenance-style witness.  Paper references are
    on the pass records; the model behind the race pass is documented in
    {!Hb}. *)

val race : Lint.pass
(** Base-object race: two happens-before-unordered accesses to the same
    base object from different processes, at least one non-trivial —
    flagged at the step where the second access lands. *)

val strict_dap : Lint.pass
(** Per-step strict disjoint-access-parallelism: contention on a base
    object between transactions whose data sets are disjoint (or, with
    [`Path] connectivity, conflict-graph-disconnected) — flagged at the
    step where the contending access lands. *)

val of_stall : Lint.pass
(** Obstruction-freedom: a transaction running step-contention-free past
    [config.horizon] consecutive steps without committing or aborting, or
    aborted although no other process stepped during its interval
    (reusing [Tm_dap.Obstruction_freedom.violations]). *)

val lost_update : Lint.pass
(** Two concurrent committed read-modify-writes of one item that both
    read the same pre-state. *)

val write_skew : Lint.pass
(** Concurrent committed transactions with disjoint writes, each guarded
    by a read of the other's written item in its pre-state. *)

val torn_snapshot : Lint.pass
(** A reader observing one item from a committed writer and another item
    from strictly before that writer — half of an atomic write set. *)

val trace_passes : Lint.pass list
(** All of the above, in severity-then-name order — the passes that can
    run on any recorded trace (the figure-consistency pass, which needs a
    live TM, lives in {!Figure_lint}). *)
