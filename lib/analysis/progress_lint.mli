(** The progress-guarantee passes, after the Kuznetsov–Ravi corpus:
    detectors for {e progressiveness} ("Progressive Transactional Memory
    in Time and Space") and {e partial wait-freedom} ("On Partial
    Wait-Freedom in Transactional Memory") — the two triangle corners
    adjacent to the PCL theorem's.

    [progressiveness] is trace-level: every TM-forced abort must be
    attributable to a read-write conflict with a concurrent transaction
    (from the history's invoked/effective data sets), and every
    step-contention-free transaction must commit within the horizon.

    [pwf] is probe-driven (the input only names a TM): a branch scan
    suspends a conflicting writer at every depth of its solo run and
    requires the read-only transaction to commit solo, then a fair
    round-robin contention probe counts read-only aborts.  Failures are
    [Error] findings with the suspension depth as the step-level witness;
    the per-role classification (read-only vs updating transactions) is
    an always-expected [Info] finding, with the updater side delegated to
    {!Tm_probe.Liveness_class}. *)

open Tm_impl

val progressiveness : Lint.pass
(** ["progressiveness"]: unattributable forced aborts + solo stalls. *)

val pwf : Lint.pass
(** ["pwf"]: the read-only wait-freedom probes.  Needs [input.tm] to name
    a registered TM (silent otherwise). *)

type reader_outcome =
  | Reader_wait_free
  | Reader_aborts of int  (** suspension depth of the passive writer *)
  | Reader_stalls of int

val reader_scan : Lint.config -> Tm_intf.impl -> reader_outcome
(** The branch scan behind [pwf]'s probe (a), exposed for tests. *)

val reader_aborts_under_contention : Tm_intf.impl -> int
(** Probe (b): read-only aborts under fair round-robin contention. *)

val passes : Lint.pass list
(** [[progressiveness; pwf]], in registration order. *)
