(* Pass aggregation, name lookup and expected-findings classification. *)

open Tm_trace

let builtin =
  Passes.trace_passes @ Progress_lint.passes @ [ Figure_lint.pass ]

let all () =
  let plugins = Lint.registered () in
  let shadowed n = List.exists (fun (p : Lint.pass) -> p.Lint.name = n) plugins in
  List.filter (fun (p : Lint.pass) -> not (shadowed p.Lint.name)) builtin
  @ plugins

let is_prefix p s =
  String.length p <= String.length s && String.sub s 0 (String.length p) = p

type lookup =
  | Found of Lint.pass
  | Ambiguous of string list  (** pass names the prefix matches *)
  | Unknown

let lookup n : lookup =
  let passes = all () in
  match List.find_opt (fun (p : Lint.pass) -> p.Lint.name = n) passes with
  | Some p -> Found p
  | None -> (
      match
        List.filter (fun (p : Lint.pass) -> is_prefix n p.Lint.name) passes
      with
      | [ p ] -> Found p
      | [] -> Unknown
      | several -> Ambiguous (List.map (fun (p : Lint.pass) -> p.Lint.name) several))

let find n = match lookup n with Found p -> Some p | _ -> None

let find_exn n =
  match lookup n with
  | Found p -> p
  | Ambiguous candidates ->
      invalid_arg
        (Printf.sprintf "Lints.find_exn: %S is ambiguous (matches %s)" n
           (String.concat ", " candidates))
  | Unknown ->
      invalid_arg (Printf.sprintf "Lints.find_exn: no pass named %S" n)

(* Findings the theorem already predicts for each TM: the lint firing is
   the TM paying its PCL tax, not a regression.

   - race: every optimistic TM reads [val:x] with a plain load that a
     committer's locked write-back overwrites — unordered at the base
     level, benign only through validation (the STM analogue of a
     seqlock race).  Only llsc-candidate, whose every data access is an
     LL/SC pair, is race-free.
   - strict-dap / of-stall: exactly the corner of the PCL triangle the
     TM gives up (centralized contention vs blocking commits).  The
     blocking TMs also stall under adversarial schedules: a paused lock
     holder leaves everyone else spinning step-contention-free.
   - anomalies: tl-lock is strictly serializable but not opaque — a
     doomed reader can observe a commit's half-installed write set
     (torn-snapshot); the paper's SI drops first-committer-wins, so
     si-clock admits lost-update on top of write-skew; the weak TMs
     admit the full catalogue.
   - pwf: partial wait-freedom of read-only transactions is the rarest
     guarantee on the board — only the multiversion snapshot designs
     (si-clock, pwf-readers) and the no-communication corner
     (pram-local) keep readers wait-free.  The blocking TMs stall the
     reader on a suspended writer's locks, lp-progressive and tl2-clock
     abort it, and the invalidation designs (dstm, candidate,
     llsc-candidate) revoke readers under fair contention.
   - progressiveness never appears below: every stock TM's forced
     aborts are attributable to a read-write conflict with a concurrent
     transaction on these workloads, and the blocking TMs pay as
     of-stall/pwf stalls rather than unattributable aborts.  (The pass
     earns its keep on adversarial traces — see the stall fixtures in
     test_analysis — and as the obligation the two new TMs are verified
     against.) *)
let expected_table : (string * string list) list =
  [
    ("tl-lock", [ "race"; "torn-snapshot"; "of-stall"; "pwf" ]);
    ("pram-local", [ "race"; "lost-update"; "write-skew"; "torn-snapshot" ]);
    ("dstm", [ "race"; "strict-dap"; "pwf" ]);
    ("si-clock", [ "race"; "strict-dap"; "lost-update"; "write-skew" ]);
    ( "candidate",
      [ "race"; "lost-update"; "write-skew"; "torn-snapshot"; "pwf" ] );
    ("tl2-clock", [ "race"; "strict-dap"; "of-stall"; "pwf" ]);
    ("norec", [ "race"; "strict-dap"; "of-stall"; "pwf" ]);
    ("llsc-candidate",
     [ "lost-update"; "write-skew"; "torn-snapshot"; "of-stall"; "pwf" ]);
    ("lp-progressive", [ "race"; "of-stall"; "pwf" ]);
    ("pwf-readers", [ "race"; "strict-dap" ]);
  ]

let expected_for = function
  | None -> []
  | Some tm -> Option.value ~default:[] (List.assoc_opt tm expected_table)

let is_expected ~tm (f : Lint.finding) =
  List.mem f.Lint.pass (expected_for tm) || f.Lint.severity = Lint.Info

type run_result = {
  tm : string option;
  findings : Lint.finding list;
  unexpected : Lint.finding list;
  passes_run : string list;
}

let run_passes ?(config = Lint.default) passes (i : Lint.input) : run_result =
  let findings =
    List.concat_map (fun (p : Lint.pass) -> p.Lint.run config i) passes
  in
  {
    tm = i.Lint.tm;
    findings;
    unexpected =
      List.filter (fun f -> not (is_expected ~tm:i.Lint.tm f)) findings;
    passes_run = List.map (fun (p : Lint.pass) -> p.Lint.name) passes;
  }

let attach_verdicts fl findings =
  List.iter (fun f -> Flight.add_verdict fl (Lint.to_flight_verdict f)) findings
