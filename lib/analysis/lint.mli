(** The pclsan lint framework: findings, pass interface, configuration,
    inputs, and a plug-in registry.

    A {e pass} inspects one execution — its step trace, history and
    derived footprints — and reports findings localized at the first
    offending step, each carrying a provenance-style witness (the
    transactions and global step indices that exhibit the property).
    Built-in passes live in {!Lints}; external code can {!register} more
    (the registry mirrors [Tm_impl.Registry]'s name/prefix lookup). *)

open Tm_base
open Tm_trace
open Tm_dap

(** {1 Findings} *)

type severity = Info | Warning | Error

val severity_to_string : severity -> string

type finding = {
  pass : string;  (** the reporting pass *)
  severity : severity;
  step : int option;  (** global index of the first offending step *)
  txns : Tid.t list;  (** offending transactions *)
  oids : Oid.t list;  (** base objects involved *)
  witness_steps : int list;  (** global step indices of the witness *)
  message : string;
}

val pp_finding :
  ?name_of:(Oid.t -> string) -> Format.formatter -> finding -> unit

val finding_json : finding -> Tm_obs.Obs_json.t
(** One JSONL line: [{"type":"finding","pass":...,...}]. *)

val to_flight_verdict : finding -> Flight.verdict
(** A finding as a flight-recorder verdict line, so `pcl_tm lint` results
    can be attached to trace artifacts and rendered by `explain`. *)

(** {1 Configuration} *)

type config = {
  horizon : int;
      (** of-stall: solo steps a transaction may run contention-free
          without completing before it is flagged *)
  dap_connectivity : [ `Direct | `Path ];
      (** strict-dap: flag contention between transactions whose data sets
          are disjoint ([`Direct], the paper's strict DAP) or that are not
          even connected in the conflict graph ([`Path], the weaker
          graph-DAP reading) *)
  max_findings : int;  (** per pass, to keep floods readable *)
}

val default : config

(** {1 Inputs} *)

type input = {
  log : Access_log.entry list;  (** the step trace, oldest first *)
  history : History.t;
  name_of : Oid.t -> string;
  data_sets : Conflict.data_sets option;
      (** static per-transaction data sets when known (fuzz/figures);
          passes fall back to footprints derived from the history *)
  tm : string option;  (** the TM that produced the trace, when known *)
  meta : (string * string) list;
}

val input_of_flight : Flight.t -> input
(** Lint a recorded artifact: steps, history, names and the ["tm"] meta
    key are taken from the recorder. *)

val effective_data_sets : input -> Conflict.data_sets
(** The static data sets if given, else per-transaction read/write item
    sets derived from the history — the dynamic footprint
    over-approximation used by the strict-DAP pass. *)

(** {1 Passes} *)

type pass = {
  name : string;
  describe : string;
  paper : string;  (** paper reference(s) for the property *)
  run : config -> input -> finding list;
}

val register : pass -> unit
(** Add a pass to the plug-in registry (deduplicated by name; later
    registrations win).  Built-in passes need no registration. *)

val registered : unit -> pass list
(** Plug-in passes, in registration order. *)
