(* The happens-before engine: a single forward pass over the step trace
   maintaining one vector clock per process and one release clock per base
   object.

   Ordering sources:
   - program order: each step ticks its process's own component;
   - synchronization: an RMW-class primitive (CAS, fetch&add, try-lock,
     unlock, LL/SC) on object o joins the process clock with o's release
     clock and stores the result back — so all RMW steps on one object
     form a chain, exactly the total order their atomicity gives them.

   - realtime transaction order (only when a history is supplied): the
     first step of transaction T joins the clocks of every transaction
     that completed before T was invoked.  A TM is entitled to rely on
     "T' finished before T began", so a serial execution is totally
     ordered and lint-clean even if the TM uses only plain accesses.

   Plain reads and writes deliberately do NOT synchronize: they are the
   data accesses the race pass checks for unordered conflicting pairs.  A
   TM whose only ordering between two conflicting data accesses of
   overlapping transactions is "they happened to linearize in this order"
   has a base-object race; a TM that protects them with locks/CAS metadata
   induces a happens-before edge through that metadata and is race-free. *)

open Tm_base
open Tm_trace

type step = {
  pos : int;
  entry : Access_log.entry;
  before : Vclock.t;
  after : Vclock.t;
  sync : bool;
}

type t = {
  arr : step array;
  by_index : (int, int) Hashtbl.t;  (** global step index -> pos *)
  final : (int, Vclock.t) Hashtbl.t;  (** pid -> final clock *)
}

let is_sync : Primitive.t -> bool = function
  | Primitive.Read | Primitive.Write _ -> false
  | Primitive.Cas _ | Primitive.Fetch_add _ | Primitive.Try_lock _
  | Primitive.Unlock _ | Primitive.Load_linked _
  | Primitive.Store_conditional _ ->
      true

let analyse_core ?history ~(len : int) ~(get : int -> Access_log.entry) () :
    t =
  let pid_clock : (int, Vclock.t) Hashtbl.t = Hashtbl.create 8 in
  let obj_clock : (Oid.t, Vclock.t) Hashtbl.t = Hashtbl.create 64 in
  let tid_clock : (Tid.t, Vclock.t) Hashtbl.t = Hashtbl.create 8 in
  let started : (Tid.t, unit) Hashtbl.t = Hashtbl.create 8 in
  let clock_of tbl k =
    Option.value ~default:Vclock.empty (Hashtbl.find_opt tbl k)
  in
  (* realtime order, precomputed: completed transactions sorted by
     completion position.  The join over "everything that completed
     before [t] began" is a prefix of that array (completion position <
     [t]'s begin position), so cached prefix joins make the whole walk
     amortized linear in the number of transactions.  A prefix entry is
     only demanded once the later transaction's first step is reached,
     by which point the completed predecessor has taken all its steps and
     its [tid_clock] is final. *)
  let completions =
    match history with
    | None -> [||]
    | Some h ->
        Array.of_list
          (List.sort compare
             (List.filter_map
                (fun t' ->
                  if History.live h t' then None
                  else
                    Option.map (fun l -> (l, t')) (History.last_pos h t'))
                (History.txns h)))
  in
  let prefix = Array.make (Array.length completions + 1) Vclock.empty in
  let filled = ref 0 in
  let prefix_join k =
    while !filled < k do
      let _, t' = completions.(!filled) in
      prefix.(!filled + 1) <-
        Vclock.join prefix.(!filled) (clock_of tid_clock t');
      incr filled
    done;
    prefix.(k)
  in
  let begin_pos =
    match history with
    | None -> fun _ -> None
    | Some h -> fun t -> History.begin_pos h t
  in
  (* the join of the final clocks of every txn that completed before [t]
     was invoked: the prefix of completions below [t]'s begin position *)
  let predecessor_clock t =
    match begin_pos t with
    | None -> Vclock.empty
    | Some b ->
        let rec count lo hi =
          (* completions.(0..count-1) have completion position < b *)
          if lo >= hi then lo
          else
            let mid = (lo + hi) / 2 in
            if fst completions.(mid) < b then count (mid + 1) hi
            else count lo mid
        in
        prefix_join (count 0 (Array.length completions))
  in
  let by_index = Hashtbl.create (max 16 len) in
  let arr =
    Array.init len (fun pos ->
        let e = get pos in
        let before = clock_of pid_clock e.Access_log.pid in
        let before =
          match e.Access_log.tid with
          | Some t when not (Hashtbl.mem started t) ->
              Hashtbl.add started t ();
              Vclock.join before (predecessor_clock t)
          | _ -> before
        in
        let ticked = Vclock.tick before e.Access_log.pid in
        let sync = is_sync e.Access_log.prim in
        let after =
          if sync then begin
            let joined =
              Vclock.join ticked (clock_of obj_clock e.Access_log.oid)
            in
            Hashtbl.replace obj_clock e.Access_log.oid joined;
            joined
          end
          else ticked
        in
        Hashtbl.replace pid_clock e.Access_log.pid after;
        (match e.Access_log.tid with
        | Some t -> Hashtbl.replace tid_clock t after
        | None -> ());
        Hashtbl.replace by_index e.Access_log.index pos;
        { pos; entry = e; before; after; sync })
  in
  { arr; by_index; final = pid_clock }

let analyse ?history (log : Access_log.entry list) : t =
  let items = Array.of_list log in
  analyse_core ?history ~len:(Array.length items) ~get:(Array.get items) ()

(** [analyse] over the log structure itself: steps are fetched by index
    from the flat columns, no entry list is rescanned. *)
let analyse_log ?history (log : Access_log.t) : t =
  analyse_core ?history ~len:(Access_log.length log)
    ~get:(Access_log.get log) ()

let steps t = Array.to_list t.arr
let length t = Array.length t.arr

let step t pos =
  if pos < 0 || pos >= Array.length t.arr then
    invalid_arg (Printf.sprintf "Hb.step: position %d out of range" pos);
  t.arr.(pos)

let pos_of_index t index = Hashtbl.find_opt t.by_index index

(* a happens-before b iff a's step clock is below b's: a's tick is
   included in b's knowledge.  Comparing [after a <= after b] plus
   distinctness gives irreflexivity and matches the epoch reading: step a
   of pid p is the (get (after a) p)-th step of p, and b knows it iff
   get (after b) p >= that. *)
let happens_before t a b =
  a <> b && Vclock.leq (step t a).after (step t b).after

let concurrent_pos t a b =
  (not (happens_before t a b)) && not (happens_before t b a)

let clock_of_pid t pid =
  Option.value ~default:Vclock.empty (Hashtbl.find_opt t.final pid)
