(** The assembled pass set: built-ins plus plug-ins, with the same
    name/prefix lookup discipline as [Tm_impl.Registry], and the per-TM
    expected-findings table that separates "the lint confirming what the
    theorem says about this TM" from "a genuine surprise". *)

open Tm_trace

val builtin : Lint.pass list
(** The trace passes ({!Passes.trace_passes}) plus
    {!Figure_lint.pass}. *)

val all : unit -> Lint.pass list
(** Built-ins with plug-in shadowing applied ({!Lint.register}ed passes
    replace same-named built-ins and append otherwise). *)

type lookup =
  | Found of Lint.pass
  | Ambiguous of string list  (** pass names the prefix matches *)
  | Unknown

val lookup : string -> lookup
(** Exact name match, or a unique-prefix match ([tor] resolves to
    [torn-snapshot]); an ambiguous prefix reports its candidates. *)

val find : string -> Lint.pass option
val find_exn : string -> Lint.pass
(** @raise Invalid_argument on unknown or ambiguous names. *)

val expected_for : string option -> string list
(** Pass names whose findings are {e expected} for the named TM — the
    lint confirming a property the theorem already denies it (e.g.
    [strict-dap] on the global-clock TMs, [of-stall] on the lock-based
    one).  [None] (TM unknown) expects nothing. *)

val is_expected : tm:string option -> Lint.finding -> bool

type run_result = {
  tm : string option;
  findings : Lint.finding list;  (** in pass order *)
  unexpected : Lint.finding list;  (** subset not in the expected table *)
  passes_run : string list;
}

val run_passes :
  ?config:Lint.config -> Lint.pass list -> Lint.input -> run_result
(** Run the given passes over one input and classify the findings
    against the input's TM. *)

val attach_verdicts : Flight.t -> Lint.finding list -> unit
(** Record findings as verdict-provenance lines on a recorder, so dumped
    artifacts carry their lint results. *)
