(* The progress-guarantee passes [Kuznetsov & Ravi, "Progressive
   Transactional Memory in Time and Space"; "On Partial Wait-Freedom in
   Transactional Memory"].

   Two detectors, one per paper:

   - progressiveness — trace-level.  A progressive TM may forcibly abort
     a transaction only over a read-write conflict with a concurrent
     transaction, and must commit every transaction that runs without
     step contention.  Arm (1) walks the history: for every TM-forced
     abort it searches for an attribution — a concurrent transaction
     whose (invoked or effective) data set intersects the victim's on an
     item at least one of the two writes.  No attribution means the TM
     invented the conflict.  Arm (2) re-reads the access log for the
     complementary obligation: a transaction running step-contention-free
     past the horizon without completing (a spinning commit is just as
     much a progressiveness violation as an unattributable abort).

   - pwf (partial wait-freedom) — probe-driven, like figure-consistency:
     the input only names a TM, which is then replayed against scripted
     branch scans.  Probe (a) suspends a conflicting writer at every
     depth of its solo run and requires the read-only transaction to
     commit solo — a TM that forcibly aborts an uncontended read-only
     transaction, aborts it over a passive suspended writer, or stalls
     it, is not partially wait-free.  Probe (b) runs reader vs updater
     under fair round-robin contention: any read-only abort refutes the
     wait-freedom of readers.  The per-role classification (read-only
     vs updating transactions, each wait-free / lock-free /
     obstruction-free / blocking) is emitted as an always-expected Info
     finding, with the updater side delegated to the
     {!Tm_probe.Liveness_class} adversaries. *)

open Tm_base
open Tm_trace
open Tm_impl
open Tm_runtime
open Lint

let cap (cfg : config) findings =
  if List.length findings <= cfg.max_findings then findings
  else
    let rec take n = function
      | x :: rest when n > 0 -> x :: take (n - 1) rest
      | _ -> []
    in
    take cfg.max_findings findings

(* ------------------------------------------------------------------ *)
(* progressiveness *)

(* write-intent items of [tid]: invoked writes (even those answered with
   A_T) plus the history's effective write set *)
let write_intent (h : History.t) tid : Item.Set.t =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Event.Inv { tid = t; op = Event.Write (x, _); _ }
        when Tid.equal t tid ->
          Item.Set.add x acc
      | _ -> acc)
    (History.write_set h tid)
    (History.to_list h)

(* was the abort requested by the client's own abort_T call? *)
let client_aborted (h : History.t) tid =
  List.exists
    (fun ev ->
      match ev with
      | Event.Inv { tid = t; op = Event.Abort_call; _ } -> Tid.equal t tid
      | _ -> false)
    (History.to_list h)

let abort_stamp (h : History.t) tid =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Event.Resp { tid = t; resp = Event.R_aborted; at; _ }
        when Tid.equal t tid ->
          Some at
      | _ -> acc)
    None (History.to_list h)

let progressiveness_run (cfg : config) (i : input) : finding list =
  let h = i.history in
  let data_sets = effective_data_sets i in
  let data_of tid =
    Option.value ~default:Item.Set.empty (List.assoc_opt tid data_sets)
  in
  (* arm 1: every TM-forced abort needs a conflicting concurrent txn *)
  let unattributed =
    List.filter_map
      (fun tid ->
        if not (History.aborted h tid) || client_aborted h tid then None
        else begin
          let mine = data_of tid and my_writes = write_intent h tid in
          let attribution =
            List.find_opt
              (fun other ->
                (not (Tid.equal other tid))
                && History.concurrent h tid other
                &&
                let shared = Item.Set.inter mine (data_of other) in
                (not (Item.Set.is_empty shared))
                && not
                     (Item.Set.is_empty
                        (Item.Set.inter shared
                           (Item.Set.union my_writes
                              (write_intent h other)))))
              (History.txns h)
          in
          match attribution with
          | Some _ -> None
          | None ->
              let interval =
                match History.positions_of_txn h tid with
                | Some (f, l) ->
                    [ Event.at (History.get h f); Event.at (History.get h l) ]
                | None -> []
              in
              Some
                {
                  pass = "progressiveness";
                  severity = Error;
                  step = abort_stamp h tid;
                  txns = [ tid ];
                  oids = [];
                  witness_steps = interval;
                  message =
                    Printf.sprintf
                      "%s was forcibly aborted with no read-write conflict \
                       against any concurrent transaction: a progressive TM \
                       may abort only over such a conflict"
                      (Tid.name tid);
                }
        end)
      (History.txns h)
  in
  (* arm 2: a step-contention-free run past the horizon without
     completing — the commit obligation of progressiveness *)
  let completion : (Tid.t, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match ev with
      | Event.Resp { tid; resp = Event.R_committed | Event.R_aborted; at; _ }
        ->
          Hashtbl.replace completion tid at
      | _ -> ())
    (History.to_list h);
  let stalls = ref [] in
  let flagged : (Tid.t, unit) Hashtbl.t = Hashtbl.create 4 in
  let cur : (Tid.t * int * int) option ref = ref None in
  List.iter
    (fun (e : Access_log.entry) ->
      let continue_run t first len =
        let len = len + 1 in
        if len > cfg.horizon && not (Hashtbl.mem flagged t) then begin
          Hashtbl.add flagged t ();
          stalls :=
            {
              pass = "progressiveness";
              severity = Error;
              step = Some e.Access_log.index;
              txns = [ t ];
              oids = [];
              witness_steps = [ first; e.Access_log.index ];
              message =
                Printf.sprintf
                  "%s has run %d steps step-contention-free (since step %d) \
                   without committing: a progressive TM must commit every \
                   step-contention-free transaction (horizon %d)"
                  (Tid.name t) len first cfg.horizon;
            }
            :: !stalls
        end;
        cur := Some (t, first, len)
      in
      match (e.Access_log.tid, !cur) with
      | Some t, Some (t', first, len)
        when Tid.equal t t' && not (Hashtbl.mem completion t) ->
          continue_run t first len
      | Some t, _ when not (Hashtbl.mem completion t) ->
          continue_run t e.Access_log.index 0
      | _ -> cur := None)
    i.log;
  cap cfg (unattributed @ List.rev !stalls)

let progressiveness : pass =
  {
    name = "progressiveness";
    describe =
      "a forced abort with no read-write conflict against a concurrent \
       transaction, or a step-contention-free run past the horizon \
       without committing";
    paper = "Kuznetsov-Ravi, Progressive TM in Time and Space";
    run = progressiveness_run;
  }

(* ------------------------------------------------------------------ *)
(* pwf: the partial-wait-freedom probes *)

let x_item = Item.v "x"
let y_item = Item.v "y"

let spec tid pid reads writes =
  {
    Static_txn.tid = Tid.v tid;
    pid;
    reads;
    writes = List.map (fun (i, v) -> (i, Value.int v)) writes;
  }

let static_setup impl specs outcomes : Sim.setup =
 fun mem recorder ->
  let handle =
    Txn_api.instantiate impl mem recorder ~items:(Static_txn.items_of specs)
  in
  List.map
    (fun s -> (s.Static_txn.pid, Static_txn.program handle s ~outcomes))
    specs

type reader_outcome =
  | Reader_wait_free
  | Reader_aborts of int  (** suspension depth of the passive writer *)
  | Reader_stalls of int

(* probe (a): branch scan over writer suspension depths.  The writer
   (writes x and y) is paused after its k-th solo step for every k, and
   the read-only transaction (reads x then y) must then commit running
   solo.  k = 0 is the fully uncontended case. *)
let reader_scan (cfg : config) impl : reader_outcome =
  let writer = spec 21 21 [] [ (x_item, 7); (y_item, 7) ]
  and reader = spec 23 23 [ x_item; y_item ] [] in
  let specs = [ writer; reader ] in
  let solo_outcomes = Hashtbl.create 4 in
  let solo =
    Sim.replay ~budget:5_000
      (static_setup impl specs solo_outcomes)
      [ Schedule.Until_done 21 ]
  in
  let n = solo.Sim.steps_of 21 in
  let budget = 3 * cfg.horizon in
  let rec go k =
    if k > n then Reader_wait_free
    else begin
      let outcomes = Hashtbl.create 4 in
      let r =
        Sim.replay ~budget
          (static_setup impl specs outcomes)
          [ Schedule.Steps (21, k); Schedule.Steps (23, budget) ]
      in
      ignore r;
      match Hashtbl.find_opt outcomes (Tid.v 23) with
      | Some o when o.Static_txn.status = Static_txn.Committed -> go (k + 1)
      | Some o when o.Static_txn.status = Static_txn.Aborted ->
          Reader_aborts k
      | _ -> Reader_stalls k
    end
  in
  go 0

(* probe (b): reader vs updater under fair round-robin contention; count
   the read-only aborts.  Bounded and deterministic. *)
let reader_client (handle : Txn_api.handle) ~pid ~committed () =
  let rec attempt n =
    if !committed >= 20 then ()
    else begin
      let tid = Tid.v ((pid * 1000) + n) in
      let txn = handle.Txn_api.begin_txn ~pid ~tid in
      let result : (unit, unit) result =
        match txn.Txn_api.read x_item with
        | Stdlib.Error () -> Stdlib.Error ()
        | Ok _ -> (
            match txn.Txn_api.read y_item with
            | Stdlib.Error () -> Stdlib.Error ()
            | Ok _ -> txn.Txn_api.try_commit ())
      in
      (match result with Ok () -> incr committed | Stdlib.Error () -> ());
      attempt (n + 1)
    end
  in
  attempt 0

let updater_client (handle : Txn_api.handle) ~pid ~committed () =
  let rec attempt n =
    if !committed >= 20 then ()
    else begin
      let tid = Tid.v ((pid * 1000) + n) in
      let txn = handle.Txn_api.begin_txn ~pid ~tid in
      let result : (unit, unit) result =
        match txn.Txn_api.write x_item (Value.int n) with
        | Stdlib.Error () -> Stdlib.Error ()
        | Ok () -> (
            match txn.Txn_api.write y_item (Value.int n) with
            | Stdlib.Error () -> Stdlib.Error ()
            | Ok () -> txn.Txn_api.try_commit ())
      in
      (match result with Ok () -> incr committed | Stdlib.Error () -> ());
      attempt (n + 1)
    end
  in
  attempt 0

let reader_aborts_under_contention impl : int =
  let rc = ref 0 and uc = ref 0 in
  let mem = Memory.create () in
  let recorder = Recorder.create () in
  let handle =
    Txn_api.instantiate impl mem recorder ~items:[ x_item; y_item ]
  in
  let sched = Scheduler.create mem in
  Scheduler.spawn sched ~pid:1 (reader_client handle ~pid:1 ~committed:rc);
  Scheduler.spawn sched ~pid:2 (updater_client handle ~pid:2 ~committed:uc);
  let steps = ref 0 in
  while
    !steps < 5_000
    && not (Scheduler.finished sched 1 && Scheduler.finished sched 2)
  do
    List.iter
      (fun pid ->
        if not (Scheduler.finished sched pid) then begin
          ignore (Scheduler.step sched pid);
          incr steps
        end)
      [ 1; 2 ]
  done;
  let h = Recorder.history recorder in
  List.length
    (List.filter
       (fun t -> Tid.to_int t < 2000 && History.aborted h t)
       (History.txns h))

let finding ?step ?(txns = []) ?(witness = []) ~severity message =
  {
    pass = "pwf";
    severity;
    step;
    txns;
    oids = [];
    witness_steps = witness;
    message;
  }

let check (cfg : config) (impl : Tm_intf.impl) : finding list =
  let module M = (val impl : Tm_intf.S) in
  let scan = reader_scan cfg impl in
  let scan_findings =
    match scan with
    | Reader_wait_free -> []
    | Reader_aborts 0 ->
        [
          finding ~severity:Error ~step:0 ~txns:[ Tid.v 23 ] ~witness:[ 0 ]
            (Printf.sprintf
               "%s forcibly aborts an uncontended read-only transaction: \
                partial wait-freedom requires invisible read-only \
                transactions to commit"
               M.name);
        ]
    | Reader_aborts k ->
        [
          finding ~severity:Error ~step:k ~txns:[ Tid.v 23 ] ~witness:[ k ]
            (Printf.sprintf
               "a read-only transaction aborts although the conflicting \
                writer is suspended after step %d and takes no further \
                steps: read-only transactions are not wait-free on %s"
               k M.name);
        ]
    | Reader_stalls k ->
        [
          finding ~severity:Error ~step:k ~txns:[ Tid.v 23 ] ~witness:[ k ]
            (Printf.sprintf
               "a read-only transaction cannot complete solo while the \
                conflicting writer is suspended after step %d (ran %d \
                steps): read-only transactions block on %s"
               k (3 * cfg.horizon) M.name);
        ]
  in
  let contention_aborts = reader_aborts_under_contention impl in
  let contention_findings =
    if contention_aborts = 0 || scan <> Reader_wait_free then []
      (* when the branch scan already refuted reader wait-freedom, the
         contention count is the same defect observed twice *)
    else
      [
        finding ~severity:Error ~txns:[]
          (Printf.sprintf
             "read-only transactions aborted %d time(s) under fair \
              round-robin contention with an updater: reads are visible \
              or revocable, so readers are not wait-free on %s"
             contention_aborts M.name);
      ]
  in
  let readers_class =
    match scan with
    | Reader_wait_free when contention_aborts = 0 -> "wait-free"
    | Reader_wait_free ->
        Printf.sprintf "aborting under contention (%d aborts)"
          contention_aborts
    | Reader_aborts k -> Printf.sprintf "aborting (writer paused at %d)" k
    | Reader_stalls k -> Printf.sprintf "blocking (writer paused at %d)" k
  in
  let updaters = Tm_probe.Liveness_class.classify impl in
  [
    finding ~severity:Info
      (Printf.sprintf
         "partial-wait-freedom classification for %s: read-only %s, \
          updaters %s"
         M.name readers_class
         (Tm_probe.Liveness_class.cls_to_string
            updaters.Tm_probe.Liveness_class.cls));
  ]
  @ scan_findings @ contention_findings

let pwf_run (cfg : config) (i : input) : finding list =
  match i.tm with
  | None -> []
  | Some name -> (
      match Registry.find name with
      | None -> []
      | Some impl -> check cfg impl)

let pwf : pass =
  {
    name = "pwf";
    describe =
      "read-only transactions that abort or stall uncontended, under a \
       suspended writer, or under fair contention — with a per-role \
       wait-free / lock-free / obstruction-free / blocking classification";
    paper = "Kuznetsov-Ravi, On Partial Wait-Freedom in TM";
    run = pwf_run;
  }

let passes = [ progressiveness; pwf ]
