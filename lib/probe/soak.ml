(* Million-transaction soak driver.

   A soak pushes a TM far past what one simulator world can hold: the
   access log, history recorder and cursor path all grow linearly with
   steps, so 10^6 transactions in one world would cost hundreds of MB
   and an O(n) teardown.  The driver therefore runs in *segments* —
   each segment is a fresh, small workload world (fresh memory,
   recorder, cursor) driven round-robin to completion and then dropped
   whole — and only O(1) aggregate counters survive segment
   boundaries.  Per-segment seeds derive deterministically from the
   base seed, so the whole soak is one reproducible execution stream:
   same config, same totals, same stall (if any), bit for bit.

   Liveness is policed per segment: a segment that exhausts its step
   budget is the soak's stall signal, attributed like the schedule
   layer attributes a [Budget_exhausted] stop — the wedged process and
   the last step it took (object and primitive included).  The caller
   turns that into the PCL-E108 reason exit.

   Observability: the driver ticks observers on deterministic
   boundaries — [on_tick] every [tick_steps] executed steps (riding
   the {!Schedule.session} tick hook through {!Sim.on_tick}) and
   [on_segment] at each segment boundary.  Each segment body is traced
   as a "soak.segment" span with "soak.drive" nested inside, so the
   span tracer feeds {!Tm_obs.Prof} a stable two-level phase tree. *)

open Tm_base
open Tm_runtime
open Tm_impl

type config = {
  txns : int;  (** target committed transactions (the soak's N) *)
  n_procs : int;
  conflict_pct : int;  (** 0..100, as in {!Workload.config} *)
  items_per_txn : int;
  shared_items : int;
  seed : int;
  max_retries : int;
  segment_txns : int;  (** transactions per process per segment *)
  budget : int;  (** step budget per segment — the liveness fence *)
  tick_steps : int;  (** steps between [on_tick] observer calls *)
}

let default =
  {
    txns = 1_000_000;
    n_procs = 4;
    conflict_pct = 25;
    items_per_txn = 2;
    shared_items = 4;
    seed = 1;
    max_retries = 8;
    segment_txns = 25;
    budget = 200_000;
    tick_steps = 5_000;
  }

type stall = {
  pid : int;  (** the wedged process *)
  step : int option;  (** global index of its last step within its segment *)
  obj : string option;
  prim : string option;
}

type progress = {
  txns_done : int;  (** committed transactions so far *)
  aborts : int;
  steps : int;  (** executed steps, cumulative over all segments *)
  segments : int;  (** segments completed *)
}

type outcome = { progress : progress; stall : stall option }

(* one segment = one small fresh workload world, stepped round-robin to
   completion (every process finished) or to the budget fence *)
let run_segment (impl : Tm_intf.impl) cfg ~segment ~txns_per_proc ~commits
    ~aborts ~tick =
  let wl =
    {
      Workload.n_procs = cfg.n_procs;
      txns_per_proc;
      conflict_pct = cfg.conflict_pct;
      items_per_txn = cfg.items_per_txn;
      shared_items = cfg.shared_items;
      (* deterministic per-segment seed: segments differ, reruns don't *)
      seed = cfg.seed + (7919 * segment);
      max_retries = cfg.max_retries;
    }
  in
  let pids = List.init cfg.n_procs (fun p -> p + 1) in
  let setup mem recorder =
    let handle =
      Txn_api.instantiate impl mem recorder ~items:(Workload.items_for wl)
    in
    List.map
      (fun pid -> (pid, Workload.client wl handle ~pid ~commits ~aborts))
      pids
  in
  let c = Sim.start ~budget:cfg.budget setup in
  Sim.on_tick c tick;
  let check_real_crash pid =
    match Sim.crashed c pid with
    | Some e when not (Scheduler.injected e) -> raise e
    | Some _ | None -> ()
  in
  (* closure-free round loop: one pass both steps the unfinished
     processes and detects completion, so a round allocates nothing *)
  let pid_arr = Array.of_list pids in
  let rec round () =
    if Sim.steps_taken c > cfg.budget then false
    else begin
      let all_done = ref true in
      for i = 0 to Array.length pid_arr - 1 do
        let pid = Array.unsafe_get pid_arr i in
        if not (Sim.finished c pid) then begin
          all_done := false;
          ignore (Sim.step c pid);
          check_real_crash pid
        end
      done;
      if !all_done then true else round ()
    end
  in
  let completed = Tm_obs.Sink.span "soak.drive" round in
  let steps = Sim.steps_taken c in
  let stall =
    if completed then None
    else begin
      let wedged =
        List.find_opt (fun pid -> not (Sim.finished c pid)) pids
      in
      let pid = Option.value ~default:1 wedged in
      let r = Sim.snapshot ~flight:false c in
      let last = Access_log.last_by_pid (Memory.log r.Sim.mem) pid in
      Some
        {
          pid;
          step = Option.map (fun e -> e.Access_log.index) last;
          obj =
            Option.map
              (fun e -> Memory.name_of r.Sim.mem e.Access_log.oid)
              last;
          prim =
            Option.map
              (fun e -> Tm_base.Primitive.kind_name e.Access_log.prim)
              last;
        }
    end
  in
  (steps, stall)

(** Drive the soak: segments of [segment_txns] transactions per process
    until [txns] transactions have committed, or a segment wedges.
    [on_tick] fires on deterministic [tick_steps] boundaries of the
    cumulative step count; [on_segment] at every segment boundary. *)
let run ?(on_tick = fun (_ : progress) -> ())
    ?(on_segment = fun (_ : progress) -> ()) (impl : Tm_intf.impl)
    (cfg : config) : outcome =
  let (module M : Tm_intf.S) = impl in
  let tm_l = [ ("tm", M.name) ] in
  let commits = ref 0 and aborts = ref 0 in
  let steps_before = ref 0 (* completed segments' steps *) in
  let segments = ref 0 in
  let next_tick = ref cfg.tick_steps in
  let progress ~steps =
    {
      txns_done = !commits;
      aborts = !aborts;
      steps;
      segments = !segments;
    }
  in
  let tick segment_steps =
    let total = !steps_before + segment_steps in
    if total >= !next_tick then begin
      next_tick := total + cfg.tick_steps;
      on_tick (progress ~steps:total)
    end
  in
  let stall = ref None in
  let per_segment = max 1 cfg.segment_txns * cfg.n_procs in
  while !stall = None && !commits < cfg.txns do
    let remaining = cfg.txns - !commits in
    (* shrink the last segment so the target is hit, not overshot; the
       per-process count still covers the whole remainder when commits
       lag attempts (retries exhausted count as aborts, not commits) *)
    let txns_per_proc =
      if remaining >= per_segment then max 1 cfg.segment_txns
      else max 1 ((remaining + cfg.n_procs - 1) / cfg.n_procs)
    in
    let before = !commits in
    let seg_steps, seg_stall =
      Tm_obs.Sink.span ~labels:tm_l "soak.segment" (fun () ->
          run_segment impl cfg ~segment:!segments ~txns_per_proc ~commits
            ~aborts ~tick)
    in
    steps_before := !steps_before + seg_steps;
    incr segments;
    stall := seg_stall;
    (* a segment that commits nothing and reports no budget stall would
       loop forever: treat it as a wedge on its first process *)
    if !stall = None && !commits = before then
      stall := Some { pid = 1; step = None; obj = None; prim = None };
    on_segment (progress ~steps:!steps_before)
  done;
  let progress = progress ~steps:!steps_before in
  Tm_obs.Sink.incr ~labels:tm_l "soak_runs_total";
  Tm_obs.Sink.add ~labels:tm_l "soak_txns_total" progress.txns_done;
  Tm_obs.Sink.add ~labels:tm_l "soak_aborts_total" progress.aborts;
  Tm_obs.Sink.add ~labels:tm_l "soak_steps_total" progress.steps;
  Tm_obs.Sink.add ~labels:tm_l "soak_segments_total" progress.segments;
  if !stall <> None then Tm_obs.Sink.incr ~labels:tm_l "soak_stalled_total";
  { progress; stall = !stall }
