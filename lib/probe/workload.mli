(** Workload generator and round-robin driver for the scaling experiment
    (T-B): n processes each run a stream of read-modify-write transactions
    over item pools with a configurable conflict ratio; aborted
    transactions retry with fresh ids.  Fully deterministic for a fixed
    seed. *)

open Tm_base
open Tm_impl

type config = {
  n_procs : int;
  txns_per_proc : int;
  conflict_pct : int;  (** 0..100: probability a txn touches shared items *)
  items_per_txn : int;
  shared_items : int;
  seed : int;
  max_retries : int;
}

val default : config

type stats = {
  steps : int;
  commits : int;
  aborts : int;
  contentions : int;
  disjoint_contentions : int;
  completed : bool;  (** all processes finished within the step budget *)
}

val items_for : config -> Item.t list

val client :
  config ->
  Txn_api.handle ->
  pid:int ->
  commits:int ref ->
  aborts:int ref ->
  unit ->
  unit
(** One client process: the configured transaction stream with retries,
    bumping [commits]/[aborts] as it goes — exposed so other drivers
    (the soak observatory) reuse the exact workload semantics. *)

val run : Tm_intf.impl -> config -> stats
