(* Empirical liveness classification.

   Liveness conditions quantify over all executions, so code can refute
   but never prove them; the classifier runs a battery of adversarial
   probes and reports the strongest class consistent with what it
   observed, together with the witness for every exclusion:

     Blocking          — some probe could not finish solo (stall), or a
                         solo run aborted without step contention;
     Obstruction_free  — solo progress always, but a mutual-abort livelock
                         was witnessed under an alternating schedule;
     Lock_free         — no livelock found, but single transactions can
                         abort under contention (no individual bound);
     Wait_free         — no aborts and no stalls under any probe.

   The classical placements come out: pram-local is wait-free, si-clock
   lock-free (commits never fail, installs retry under contention), dstm
   obstruction-free only (the textbook mutual-abort livelock is found and
   replayed), tl-lock / tl2-clock / norec blocking. *)

open Tm_base
open Tm_runtime
open Tm_impl

type cls = Wait_free | Lock_free | Obstruction_free | Blocking

let cls_to_string = function
  | Wait_free -> "wait-free"
  | Lock_free -> "lock-free"
  | Obstruction_free -> "obstruction-free"
  | Blocking -> "blocking"

let pp_cls ppf c = Fmt.string ppf (cls_to_string c)

type report = { cls : cls; evidence : string }

let x_item = Item.v "x"
let y_item = Item.v "y"

let spec tid pid reads writes =
  { Static_txn.tid = Tid.v tid; pid; reads;
    writes = List.map (fun (i, v) -> (i, Value.int v)) writes }

let static_setup impl specs outcomes : Sim.setup =
 fun mem recorder ->
  let handle =
    Txn_api.instantiate impl mem recorder ~items:(Static_txn.items_of specs)
  in
  List.map
    (fun s -> (s.Static_txn.pid, Static_txn.program handle s ~outcomes))
    specs

(* --------------------------------------------------------------- *)
(* Probe 1: solo progress against a suspended conflicting enemy.
   A stall refutes everything non-blocking; a solo abort refutes
   obstruction-freedom (and we fold it into Blocking as well, since the
   TM cannot guarantee solo commit). *)

type solo_result = Solo_ok | Stalls of int | Solo_abort of int

let solo_progress impl : solo_result =
  let specs =
    [ spec 11 11 [ x_item ] [ (x_item, 1) ];
      spec 12 12 [] [ (x_item, 2); (y_item, 2) ] ]
  in
  let solo_outcomes = Hashtbl.create 4 in
  let solo =
    Sim.replay ~budget:5_000 (static_setup impl specs solo_outcomes)
      [ Schedule.Until_done 12 ]
  in
  let n = solo.Sim.steps_of 12 in
  let rec go k =
    if k > n then Solo_ok
    else begin
      let outcomes = Hashtbl.create 4 in
      let r =
        Sim.replay ~budget:1_000 (static_setup impl specs outcomes)
          [ Schedule.Steps (12, k); Schedule.Until_done 11 ]
      in
      match r.Sim.report.Schedule.stop with
      | Schedule.Budget_exhausted _ | Schedule.Crashed _ -> Stalls k
      | Schedule.Completed -> (
          match Hashtbl.find_opt outcomes (Tid.v 11) with
          | Some o when o.Static_txn.status = Static_txn.Committed ->
              go (k + 1)
          | Some _ -> Solo_abort k
          | None -> Stalls k)
    end
  in
  go 0

(* --------------------------------------------------------------- *)
(* Probe 2: mutual-abort livelock under alternating schedules.  Two
   conflicting retry-forever clients are advanced [k] steps each in strict
   alternation; if neither ever commits over many rounds for some phase
   [k], a livelock is witnessed. *)

let retry_client (handle : Txn_api.handle) ~pid ~committed () =
  let rec attempt n =
    let tid = Tid.v ((pid * 1000) + n) in
    let txn = handle.Txn_api.begin_txn ~pid ~tid in
    let result =
      match txn.Txn_api.read x_item with
      | Error () -> Error ()
      | Ok v -> (
          let v' =
            Value.int (Option.value ~default:0 (Value.to_int v) + 1)
          in
          match txn.Txn_api.write x_item v' with
          | Error () -> Error ()
          | Ok () -> txn.Txn_api.try_commit ())
    in
    match result with
    | Ok () -> incr committed
    | Error () -> attempt (n + 1)
  in
  attempt 0

let livelock_setup impl committed1 committed2 : Sim.setup =
 fun mem recorder ->
  let handle =
    Txn_api.instantiate impl mem recorder ~items:[ x_item; y_item ]
  in
  [
    (1, retry_client handle ~pid:1 ~committed:committed1);
    (2, retry_client handle ~pid:2 ~committed:committed2);
  ]

(** The adaptive commit-avoiding adversary.

    Two conflicting retry-forever clients; at every decision point the
    adversary replays the extended path and steps a process only if that
    step does not commit anybody.  If it can keep both clients stepping
    for [horizon] steps with zero commits, a mutual-abort livelock pattern
    is witnessed (obstruction-freedom's adversary); if at some point every
    available step commits someone, system-wide progress is unavoidable —
    the lock-freedom signature.

    This cleanly separates DSTM-style designs (aborting an enemy is a step
    that commits nobody, so the adversary can starve everyone forever)
    from invalidation-by-commit designs like the candidate TM (the only
    step that invalidates a peer is itself a committing step). *)
let find_livelock ?(horizon = 300) impl : int option =
  let run_path path_rev =
    let c1 = ref 0 and c2 = ref 0 in
    let atoms = List.rev_map (fun pid -> Schedule.Steps (pid, 1)) path_rev in
    let r = Sim.replay ~budget:10_000 (livelock_setup impl c1 c2) atoms in
    (!c1 + !c2, r)
  in
  let rec go path_rev n last =
    if n >= horizon then Some n
    else
      (* prefer alternation so both clients keep taking steps *)
      let order = if last = 1 then [ 2; 1 ] else [ 1; 2 ] in
      let rec try_pids = function
        | [] -> None
        | pid :: rest ->
            let commits, r = run_path (pid :: path_rev) in
            if commits = 0 && not (r.Sim.finished pid) then
              go (pid :: path_rev) (n + 1) pid
            else try_pids rest
      in
      try_pids order
  in
  go [] 0 2

(* --------------------------------------------------------------- *)
(* Probe 3: individual progress under fair contention.  Run the two
   retry-forever clients round-robin; wait-freedom is refuted by any
   abort (some transaction needed unboundedly many attempts under an
   adversarial extension of the same pattern). *)

let aborts_under_contention impl : int =
  let c1 = ref 0 and c2 = ref 0 in
  let mem = Memory.create () in
  let recorder = Tm_trace.Recorder.create () in
  let handle =
    Txn_api.instantiate impl mem recorder ~items:[ x_item; y_item ]
  in
  let sched = Scheduler.create mem in
  Scheduler.spawn sched ~pid:1 (retry_client handle ~pid:1 ~committed:c1);
  Scheduler.spawn sched ~pid:2 (retry_client handle ~pid:2 ~committed:c2);
  let steps = ref 0 in
  while
    !steps < 5_000
    && not (Scheduler.finished sched 1 && Scheduler.finished sched 2)
  do
    List.iter
      (fun pid ->
        if not (Scheduler.finished sched pid) then begin
          ignore (Scheduler.step sched pid);
          incr steps
        end)
      [ 1; 2 ]
  done;
  let h = Tm_trace.Recorder.history recorder in
  List.length
    (List.filter (fun t -> Tm_trace.History.aborted h t)
       (Tm_trace.History.txns h))

(* --------------------------------------------------------------- *)

let classify_inner (impl : Tm_intf.impl) : report =
  match solo_progress impl with
  | Stalls k ->
      {
        cls = Blocking;
        evidence =
          Printf.sprintf
            "a conflicting transaction stalls solo when the enemy is \
             suspended after %d steps"
            k;
      }
  | Solo_abort k ->
      {
        cls = Blocking;
        evidence =
          Printf.sprintf
            "a transaction running solo aborts (enemy suspended after %d \
             steps): solo commit is not guaranteed"
            k;
      }
  | Solo_ok -> (
      match find_livelock impl with
      | Some n ->
          {
            cls = Obstruction_free;
            evidence =
              Printf.sprintf
                "the commit-avoiding adversary kept both clients stepping \
                 for %d steps with zero commits (mutual-abort livelock)"
                n;
          }
      | None ->
          let aborts = aborts_under_contention impl in
          if aborts = 0 then
            {
              cls = Wait_free;
              evidence =
                "no stalls, no livelock, and no aborts under any probe";
            }
          else
            {
              cls = Lock_free;
              evidence =
                Printf.sprintf
                  "no livelock found, but %d aborts under fair contention \
                   (individual progress is not bounded)"
                  aborts;
            })

let classify (impl : Tm_intf.impl) : report =
  let (module M : Tm_intf.S) = impl in
  let r =
    Tm_obs.Sink.span
      ~labels:[ ("tm", M.name) ]
      "probe.liveness_classify"
      (fun () -> classify_inner impl)
  in
  Tm_obs.Sink.incr
    ~labels:[ ("tm", M.name); ("cls", cls_to_string r.cls) ]
    "probe_liveness_class_total";
  r
