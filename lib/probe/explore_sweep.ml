(* The standard explore workload: a conflicting writer/reader pair —
   T1 reads x then writes x and y, T2 reads x and y — whose bounded
   interleaving space is the repo's stock exploration benchmark.  Every
   front end that sweeps it (`pcl_tm explore`, the bench explore section,
   the engine-equivalence tests, the CI smoke job) goes through this one
   module so they are guaranteed to be measuring the same search. *)

open Tm_base
open Tm_runtime
open Tm_impl

let x = Item.v "x"
let y = Item.v "y"

let specs : Static_txn.spec list =
  [
    {
      Static_txn.tid = Tid.v 1;
      pid = 1;
      reads = [ x ];
      writes = [ (x, Value.int 1); (y, Value.int 1) ];
    };
    { Static_txn.tid = Tid.v 2; pid = 2; reads = [ x; y ]; writes = [] };
  ]

let pids = List.map (fun s -> s.Static_txn.pid) specs
let data_sets = Static_txn.data_sets specs

let setup (impl : Tm_intf.impl) : Sim.setup =
  let outcomes = Hashtbl.create 4 in
  fun mem recorder ->
    let handle =
      Txn_api.instantiate impl mem recorder ~items:(Static_txn.items_of specs)
    in
    List.map
      (fun s -> (s.Static_txn.pid, Static_txn.program handle s ~outcomes))
      specs

(** Sweep the workload's interleavings on one TM, classifying every
    complete execution by the strongest consistency condition it
    satisfies ("none" if it satisfies nothing at all).  Returns the
    profile — (condition, executions) rows sorted by condition name —
    and the search statistics.  [on_execution] additionally sees each
    execution with its classification (the `pcl_tm explore` front end
    dumps and lints from it).  Bounds default to the stock sweep's:
    max_steps 80, max_nodes 300_000. *)
let run ?(max_steps = 80) ?(max_nodes = 300_000) ?max_executions
    ?(por = false) ?(on_execution = fun ~strongest:_ _ -> ())
    (impl : Tm_intf.impl) : (string * int) list * Explorer.stats =
  let profiles = Hashtbl.create 8 in
  let stats =
    Explorer.explore ~max_nodes ~max_steps ?max_executions ~por (setup impl)
      ~pids
      ~on_execution:(fun r ->
        let strongest =
          match Tm_consistency.Checkers.satisfied r.Sim.history with
          | s :: _ -> s
          | [] -> "none"
        in
        on_execution ~strongest r;
        Hashtbl.replace profiles strongest
          (1 + Option.value ~default:0 (Hashtbl.find_opt profiles strongest)))
  in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) profiles [] in
  (List.sort compare rows, stats)
