(** Million-transaction soak driver.

    Runs the stock read-modify-write workload in {e segments} — each a
    fresh, small simulator world driven round-robin to completion and
    then dropped whole — so memory stays bounded while the committed
    transaction count climbs to the target.  Per-segment seeds derive
    deterministically from the base seed: same config, same totals,
    same stall, bit for bit.

    A segment that exhausts its step budget is the soak's stall
    signal, attributed to the wedged process and the last step it took
    (object and primitive included) — the caller turns that into the
    PCL-E108 reason exit.  Observers ride deterministic boundaries:
    [on_tick] every [tick_steps] cumulative executed steps (via the
    {!Tm_runtime.Schedule} session tick hook), [on_segment] at every
    segment boundary.  Segment bodies are traced as "soak.segment" /
    "soak.drive" spans, feeding {!Tm_obs.Prof}. *)

open Tm_impl

type config = {
  txns : int;  (** target committed transactions (the soak's N) *)
  n_procs : int;
  conflict_pct : int;  (** 0..100, as in {!Workload.config} *)
  items_per_txn : int;
  shared_items : int;
  seed : int;
  max_retries : int;
  segment_txns : int;  (** transactions per process per segment *)
  budget : int;  (** step budget per segment — the liveness fence *)
  tick_steps : int;  (** steps between [on_tick] observer calls *)
}

val default : config
(** 10^6 transactions, 4 processes, 25% conflicts, segments of 25
    transactions per process under a 200k-step budget, ticks every
    5000 steps. *)

type stall = {
  pid : int;  (** the wedged process *)
  step : int option;  (** global index of its last step within its segment *)
  obj : string option;
  prim : string option;
}

type progress = {
  txns_done : int;  (** committed transactions so far *)
  aborts : int;
  steps : int;  (** executed steps, cumulative over all segments *)
  segments : int;  (** segments completed *)
}

type outcome = { progress : progress; stall : stall option }

val run :
  ?on_tick:(progress -> unit) ->
  ?on_segment:(progress -> unit) ->
  Tm_intf.impl ->
  config ->
  outcome
(** Drive the soak to the transaction target or the first wedged
    segment.  All [outcome] fields are deterministic for a fixed
    config. *)
