(* Workload generator and round-robin driver for the scaling experiment
   (T-B in DESIGN.md): n processes each execute a stream of
   read-modify-write transactions over item pools with a configurable
   conflict ratio; aborted transactions retry with a fresh tid (as in the
   paper's restart model).  All measurements are simulator-deterministic:
   steps, commits, aborts, contentions. *)

open Tm_base
open Tm_trace
open Tm_runtime
open Tm_impl
open Tm_dap

type config = {
  n_procs : int;
  txns_per_proc : int;
  conflict_pct : int;  (** 0..100: probability a txn touches shared items *)
  items_per_txn : int;
  shared_items : int;
  seed : int;
  max_retries : int;
}

let default =
  {
    n_procs = 4;
    txns_per_proc = 25;
    conflict_pct = 0;
    items_per_txn = 2;
    shared_items = 4;
    seed = 1;
    max_retries = 8;
  }

type stats = {
  steps : int;
  commits : int;
  aborts : int;
  contentions : int;
  disjoint_contentions : int;
  completed : bool;  (** all processes finished within the step budget *)
}

let items_for (cfg : config) : Item.t list =
  let shared =
    List.init cfg.shared_items (fun i -> Item.v (Printf.sprintf "s%d" i))
  in
  let private_ =
    List.concat_map
      (fun p ->
        List.init cfg.items_per_txn (fun i ->
            Item.v (Printf.sprintf "p%d_%d" p i)))
      (List.init cfg.n_procs (fun p -> p + 1))
  in
  shared @ private_

(* the item set of one transaction attempt, decided deterministically from
   the seeded RNG.  Items are drawn from pools rendered once per client,
   so the per-transaction cost is the RNG draws alone; the draw sequence
   (one conflict roll, then one pool index per item on the shared path,
   in item order) is exactly the one [List.init] over sprintf produced. *)
let txn_items cfg st ~shared_pool ~private_items =
  let shared = Random.State.int st 100 < cfg.conflict_pct in
  let rec go i =
    if i >= cfg.items_per_txn then []
    else
      let x =
        if shared then shared_pool.(Random.State.int st cfg.shared_items)
        else private_items.(i)
      in
      x :: go (i + 1)
  in
  go 0

(* the read-modify-write body of one attempt (top-level, so a
   transaction allocates no per-attempt closure) *)
let rec run_ops (txn : Txn_api.txn) = function
  | [] -> txn.Txn_api.try_commit ()
  | x :: rest -> (
      match txn.Txn_api.read x with
      | Error () -> Error ()
      | Ok v -> (
          let v' =
            Value.int ((match v with Value.VInt n -> n | _ -> 0) + 1)
          in
          match txn.Txn_api.write x v' with
          | Error () -> Error ()
          | Ok () -> run_ops txn rest))

let rec attempt cfg (handle : Txn_api.handle) ~pid ~k ~commits ~aborts items n
    =
  let tid = Tid.v ((pid * 1_000_000) + (k * 100) + n) in
  let txn = handle.Txn_api.begin_txn ~pid ~tid in
  match run_ops txn items with
  | Ok () -> incr commits
  | Error () ->
      incr aborts;
      if n < cfg.max_retries then
        attempt cfg handle ~pid ~k ~commits ~aborts items (n + 1)

(* one client process: run its transaction stream with retries *)
let client cfg (handle : Txn_api.handle) ~pid ~commits ~aborts () =
  let st = Random.State.make [| cfg.seed; pid |] in
  let shared_pool =
    Array.init cfg.shared_items (fun i -> Item.v (Printf.sprintf "s%d" i))
  in
  let private_items =
    Array.init cfg.items_per_txn (fun i ->
        Item.v (Printf.sprintf "p%d_%d" pid i))
  in
  for k = 1 to cfg.txns_per_proc do
    let items = txn_items cfg st ~shared_pool ~private_items in
    attempt cfg handle ~pid ~k ~commits ~aborts items 0
  done

(** Run the workload under a fair round-robin schedule (one step per
    process per turn) and collect the statistics.  Driven through the
    incremental engine: one live {!Sim.cursor} advanced a step at a time
    (the cursor wires in the flight recorder, exactly as a scripted
    replay does). *)
let run (impl : Tm_intf.impl) (cfg : config) : stats =
  let (module M : Tm_intf.S) = impl in
  let tm_l = [ ("tm", M.name) ] in
  Tm_obs.Sink.span ~labels:tm_l "workload.run" (fun () ->
  let commits = ref 0 and aborts = ref 0 in
  let pids = List.init cfg.n_procs (fun p -> p + 1) in
  let setup mem recorder =
    let handle =
      Txn_api.instantiate impl mem recorder ~items:(items_for cfg)
    in
    List.map
      (fun pid -> (pid, client cfg handle ~pid ~commits ~aborts))
      pids
  in
  let budget = 200_000 in
  let c = Sim.start ~budget setup in
  (* a genuine exception escaping a client is a TM bug: re-raise rather
     than silently folding it into a budget-exhausted stall (injected
     crash-stops, by contrast, just leave the process unfinished) *)
  let check_real_crash pid =
    match Sim.crashed c pid with
    | Some e when not (Scheduler.injected e) -> raise e
    | Some _ | None -> ()
  in
  (* closure-free round loop: one pass both steps the unfinished
     processes and detects completion, so a round allocates nothing *)
  let pid_arr = Array.of_list pids in
  let rec round steps =
    if steps > budget then false
    else begin
      let all_done = ref true in
      for i = 0 to Array.length pid_arr - 1 do
        let pid = Array.unsafe_get pid_arr i in
        if not (Sim.finished c pid) then begin
          all_done := false;
          ignore (Sim.step c pid);
          check_real_crash pid
        end
      done;
      if !all_done then true else round (steps + cfg.n_procs)
    end
  in
  let completed = round 0 in
  (* snapshot without the scripted-schedule flight context — the scaling
     workload writes its own run metadata below *)
  let r = Sim.snapshot ~flight:false c in
  let alog = Memory.log r.Sim.mem in
  (* fill in the run context so an installed recorder's artifact is
     replayable/lintable, as Sim.replay does for scripted schedules *)
  (match Flight.default () with
  | Some fl ->
      Flight.set_names fl
        (Array.init (Memory.n_objects r.Sim.mem) (Memory.name_of r.Sim.mem));
      Flight.set_history fl r.Sim.history;
      Flight.set_meta fl "tm" M.name;
      Flight.set_meta fl "workload" "scaling";
      Flight.set_meta fl "seed" (string_of_int cfg.seed);
      Flight.set_meta fl "stop"
        (if completed then "completed" else "budget-exhausted");
      Flight.set_meta fl "steps" (string_of_int (Access_log.length alog))
  | None -> ());
  let contentions = Contention.all_contentions_log alog in
  (* data sets for DAP classification: collect per-txn items from the
     history *)
  let h = r.Sim.history in
  let data_sets =
    List.map
      (fun tid ->
        ( tid,
          Item.Set.union (History.write_set h tid)
            (History.read_set h tid) ))
      (History.txns h)
  in
  let disjoint =
    List.filter
      (fun (c : Contention.contention) ->
        not (Conflict.conflict data_sets c.Contention.t1 c.Contention.t2))
      contentions
  in
  let stats =
    {
      steps = Access_log.length alog;
      commits = !commits;
      aborts = !aborts;
      contentions = List.length contentions;
      disjoint_contentions = List.length disjoint;
      completed;
    }
  in
  Tm_obs.Sink.incr ~labels:tm_l "workload_runs_total";
  Tm_obs.Sink.add ~labels:tm_l "workload_steps_total" stats.steps;
  Tm_obs.Sink.add ~labels:tm_l "workload_commits_total" stats.commits;
  Tm_obs.Sink.add ~labels:tm_l "workload_aborts_total" stats.aborts;
  Tm_obs.Sink.add ~labels:tm_l "workload_contentions_total" stats.contentions;
  Tm_obs.Sink.add ~labels:tm_l "workload_disjoint_contentions_total"
    stats.disjoint_contentions;
  if not stats.completed then
    Tm_obs.Sink.incr ~labels:tm_l "workload_stalled_total";
  stats)
