(* The liveness profile (T-E): suspend a 2-item writer at *every* point of
   its solo run and probe whether another transaction can still finish
   solo — once with a conflicting probe (obstruction-freedom in the
   paper's sense: contention exists, progress may legitimately require
   aborting someone, but must happen) and once with a disjoint probe
   (where strict DAP alone should guarantee progress).

   The outcome distribution over all suspension points is each TM's
   progress fingerprint:
     - blocking TMs (tl-lock, tl2-clock) stall the conflicting probe on a
       window of suspension points;
     - obstruction-free TMs never stall, though they may abort;
     - strictly DAP TMs never even disturb the disjoint probe. *)

open Tm_base
open Tm_runtime
open Tm_impl

type outcome = Commit | Abort | Stall

type profile = {
  points : int;  (** suspension points probed *)
  commits : int;
  aborts : int;
  stalls : int;
}

let x = Item.v "x"
let y = Item.v "y"
let z = Item.v "z"

let blocker =
  { Static_txn.tid = Tid.v 50; pid = 50; reads = [];
    writes = [ (x, Value.int 5); (y, Value.int 5) ] }

let conflicting_probe =
  { Static_txn.tid = Tid.v 51; pid = 51; reads = [ x ];
    writes = [ (x, Value.int 6) ] }

let disjoint_probe =
  { Static_txn.tid = Tid.v 52; pid = 52; reads = [ z ];
    writes = [ (z, Value.int 7) ] }

let specs = [ blocker; conflicting_probe; disjoint_probe ]

let setup impl outcomes : Sim.setup =
 fun mem recorder ->
  let handle =
    Txn_api.instantiate impl mem recorder ~items:(Static_txn.items_of specs)
  in
  List.map
    (fun s -> (s.Static_txn.pid, Static_txn.program handle s ~outcomes))
    specs

let probe_once impl ~suspend_at ~probe_pid ~probe_tid : outcome =
  let outcomes = Hashtbl.create 4 in
  let r =
    Sim.replay ~budget:1_000 (setup impl outcomes)
      [ Schedule.Steps (50, suspend_at); Schedule.Until_done probe_pid ]
  in
  match r.Sim.report.Schedule.stop with
  | Schedule.Budget_exhausted _ -> Stall
  | Schedule.Crashed _ -> Stall
  | Schedule.Completed -> (
      match Hashtbl.find_opt outcomes (Tid.v probe_tid) with
      | Some o when o.Static_txn.status = Static_txn.Committed -> Commit
      | Some _ -> Abort
      | None -> Stall)

(** Probe every suspension point of the blocker's solo run. *)
let run (impl : Tm_intf.impl) ~(disjoint : bool) : profile =
  let (module M : Tm_intf.S) = impl in
  let labels =
    [ ("tm", M.name);
      ("probe", (if disjoint then "disjoint" else "conflicting")) ]
  in
  Tm_obs.Sink.span ~labels "probe.progress" (fun () ->
      let solo_outcomes = Hashtbl.create 4 in
      let solo =
        Sim.replay ~budget:5_000 (setup impl solo_outcomes)
          [ Schedule.Until_done 50 ]
      in
      let n = solo.Sim.steps_of 50 in
      let probe_pid, probe_tid = if disjoint then (52, 52) else (51, 51) in
      let profile = { points = n; commits = 0; aborts = 0; stalls = 0 } in
      let profile =
        List.fold_left
          (fun acc k ->
            match probe_once impl ~suspend_at:k ~probe_pid ~probe_tid with
            | Commit -> { acc with commits = acc.commits + 1 }
            | Abort -> { acc with aborts = acc.aborts + 1 }
            | Stall -> { acc with stalls = acc.stalls + 1 })
          profile
          (List.init (max n 1) (fun k -> k))
      in
      Tm_obs.Sink.add ~labels "probe_progress_points_total" profile.points;
      Tm_obs.Sink.add ~labels "probe_progress_stalls_total" profile.stalls;
      profile)
