(** The standard explore workload: a conflicting writer/reader pair —
    T1 reads x then writes x and y, T2 reads x and y — whose bounded
    interleaving space is the repo's stock exploration benchmark.
    `pcl_tm explore`, the bench explore section, the engine-equivalence
    tests and the CI smoke job all sweep it through this module, so they
    are guaranteed to be measuring the same search. *)

open Tm_base
open Tm_runtime
open Tm_impl

val specs : Static_txn.spec list
val pids : int list
val data_sets : (Tid.t * Item.Set.t) list

val setup : Tm_intf.impl -> Sim.setup
(** The world: the pair instantiated on [impl].  Each call makes a fresh
    outcome table, shared across the replays of one search. *)

val run :
  ?max_steps:int ->
  ?max_nodes:int ->
  ?max_executions:int ->
  ?por:bool ->
  ?on_execution:(strongest:string -> Sim.result -> unit) ->
  Tm_intf.impl ->
  (string * int) list * Explorer.stats
(** Sweep the workload's interleavings on one TM, classifying every
    complete execution by the strongest consistency condition it
    satisfies ("none" if it satisfies nothing).  Returns (condition,
    executions) rows sorted by name, plus the search statistics.  Bounds
    default to the stock sweep's: max_steps 80, max_nodes 300_000;
    [por] defaults to off (the naive search). *)
