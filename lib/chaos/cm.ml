(* Contention managers: the policy consulted between an abort and the
   retry.  The PCL theorem is precisely about what no TM can promise
   without one; a contention manager is the practical dodge — it trades
   the worst-case liveness guarantee for good behaviour under actual
   contention.  Each policy here decides, per abort, whether to retry
   immediately, back off (burning real simulation steps, so the decision
   is visible on the step axis like everything else), or give up.

   Backoff "waits" by reading a scratch base object through {!Proc.read}:
   in the simulator there is no wall clock, so the only meaningful way to
   wait is to spend scheduler quanta — which also means a backoff decision
   interacts with the adversary's schedule exactly like any other step. *)

open Tm_base
open Tm_runtime
open Tm_impl

type decision =
  | Retry_now
  | Backoff of int  (** spin for [n] simulation steps before retrying *)
  | Give_up

type ctx = {
  attempt : int;  (** 1-based index of the abort being handled *)
  karma : int;
      (** transactional operations invested across all attempts so far —
          the currency of the karma policy *)
  rand : Prng.t;  (** per-transaction deterministic stream, for jitter *)
}

type policy = {
  name : string;
  describe : string;
  max_attempts : int;
  decide : ctx -> decision;
}

(* -- the stock policies ------------------------------------------------ *)

let immediate =
  {
    name = "immediate";
    describe = "retry instantly; a short attempt bound is the only brake";
    max_attempts = 8;
    decide = (fun _ -> Retry_now);
  }

let backoff =
  let base = 64 and cap = 2048 in
  {
    name = "backoff";
    describe = "exponential backoff with deterministic jitter";
    max_attempts = 32;
    decide =
      (fun c ->
        let shift = min 6 (c.attempt - 1) in
        let spin = min cap (base lsl shift) in
        Backoff (spin + Prng.int c.rand base));
  }

let polite =
  {
    name = "polite";
    describe = "linearly increasing politeness: attempt k waits k quanta";
    max_attempts = 32;
    decide = (fun c -> Backoff (32 * c.attempt));
  }

let karma =
  {
    name = "karma";
    describe =
      "the more work a transaction has invested, the sooner it retries";
    max_attempts = 32;
    decide = (fun c -> Backoff (max 8 (256 / (1 + c.karma))));
  }

let all = [ immediate; backoff; polite; karma ]
let find n = List.find_opt (fun p -> p.name = n) all

let find_exn n =
  match find n with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "Cm.find_exn: no contention manager named %S (have %s)"
           n
           (String.concat ", " (List.map (fun p -> p.name) all)))

(* -- running a transaction under a policy ------------------------------ *)

type 'a outcome =
  | Committed of 'a * int  (** the value and the number of aborts endured *)
  | Gave_up of int  (** aborts endured before the manager stopped retrying *)

(** Allocate the scratch object backoff spins on.  One per memory; call it
    from the simulation's setup so the object exists in C_0. *)
let scratch (mem : Memory.t) : Oid.t =
  match Memory.find mem "cm:scratch" with
  | Some oid -> oid
  | None -> Memory.alloc mem ~name:"cm:scratch" (Value.int 0)

(** [atomically policy ~scratch ~seed ~tm handle ~pid body] — run [body]
    transactionally under [policy]: every abort is reported to the policy,
    backoff decisions spin on [scratch], and giving up (either the
    policy's choice or its attempt bound) yields [Gave_up] instead of an
    exception.  Per-(cm,tm) telemetry lands in the default metrics sink. *)
let atomically (policy : policy) ~(scratch : Oid.t) ~(seed : int)
    ~(tm : string) (handle : Txn_api.handle) ~pid
    (body : Txn_api.txn -> 'a Atomically.outcome) : 'a outcome =
  let rand = Prng.create seed in
  let karma_count = ref 0 in
  let aborts = ref 0 in
  let metrics = Tm_obs.Sink.metrics Tm_obs.Sink.default in
  let labels = [ ("cm", policy.name); ("tm", tm) ] in
  let c_of name = Tm_obs.Metrics.counter metrics ~labels name in
  let c_retries = c_of "cm_retries_total"
  and c_backoff = c_of "cm_backoff_steps_total"
  and c_gave_up = c_of "cm_gave_up_total"
  and c_commits = c_of "cm_commits_total" in
  let spin n =
    for _ = 1 to n do
      ignore (Proc.read scratch)
    done;
    Tm_obs.Metrics.add c_backoff n
  in
  (* count read/write invocations so the karma policy has work to weigh *)
  let counted (txn : Txn_api.txn) =
    {
      txn with
      Txn_api.read =
        (fun x ->
          incr karma_count;
          txn.Txn_api.read x);
      Txn_api.write =
        (fun x v ->
          incr karma_count;
          txn.Txn_api.write x v);
    }
  in
  (* [Atomically.run] hands us the 0-based index of the attempt that just
     aborted; policies see the 1-based count of aborts endured *)
  let on_abort ~attempt =
    incr aborts;
    if attempt + 1 >= policy.max_attempts then false
    else
      match policy.decide { attempt = attempt + 1; karma = !karma_count; rand } with
      | Retry_now ->
          Tm_obs.Metrics.inc c_retries;
          true
      | Backoff n ->
          Tm_obs.Metrics.inc c_retries;
          spin n;
          true
      | Give_up -> false
  in
  match
    Atomically.run handle ~pid ~max_attempts:policy.max_attempts ~on_abort
      (fun txn -> body (counted txn))
  with
  | v ->
      Tm_obs.Metrics.inc c_commits;
      Committed (v, !aborts)
  | exception Atomically.Too_many_retries _ ->
      Tm_obs.Metrics.inc c_gave_up;
      Gave_up !aborts
