(** The chaos sweep: TMs x fault classes x contention managers, each cell
    one deterministic simulation.  No wall-clock anywhere — the same seed
    yields byte-identical JSONL. *)

open Tm_impl

type cfg = {
  tms : Tm_intf.impl list;
  faults : Fault.klass list;
  cms : Cm.policy list;
  n_procs : int;
  txns_per_proc : int;
  rounds : int;  (** scheduled round-robin rounds before the drain phase *)
  quantum : int;  (** steps per process per round *)
  seed : int;
  budget : int;  (** per-[Until_done] step budget of the drain phase *)
  closure_budget : int;  (** checker node budget for crash-closure *)
}

val default : cfg
val small : cfg
(** A preset for CI smoke runs. *)

val weakest_claim : string -> string
(** TM name -> the checker its committed transactions are held to (the
    same mapping [pcl_tm fuzz] uses). *)

type cell = {
  tm : string;
  fault : string;
  cm : string;
  victim : int option;
  commits : int;
  expected : int;  (** transactions the workload would commit fault-free *)
  gave_up : int;
  retry_hist : (int * int) list;
      (** aborts-endured-per-transaction -> how many transactions *)
  backoff_steps : int;
  steps : int;
  stop : string;
  crashes : int;  (** injected crash-stops that actually landed *)
  closure_violations : int;  (** crash-closure Error flips — must be 0 *)
  wac_witnesses : int;  (** crash-closure Info flips (adaptive condition) *)
  skipped : int;
      (** crash-closure cores skipped as too large to check (more than
          [Crash_closure.max_core_txns] transactions), per cell *)
  degradation : string;  (** vs the same (tm, cm) fault-free control cell *)
}

val run_cell : cfg -> Tm_intf.impl -> Fault.klass -> Cm.policy -> cell

val combos : cfg -> (Tm_intf.impl * Fault.klass * Cm.policy) list
(** The iteration space of {!matrix}, exposed for callers that need
    per-cell setup (e.g. a flight recorder per cell); pass the collected
    cells to {!finalize}. *)

val finalize : cfg -> cell list -> cell list
(** Fill in every cell's degradation class against its (tm, cm) control
    row. *)

val matrix : cfg -> cell list
val cell_json : cell -> Tm_obs.Obs_json.t
val pp_cell : Format.formatter -> cell -> unit
