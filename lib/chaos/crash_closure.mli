(** Crash-closure: consistency verdicts must be stable under
    crash-truncated prefixes, because safety is prefix-closed.  A
    Sat -> Unsat flip under truncation is either a checker bug (Error)
    or — for the adaptive WAC condition — a witness of the condition's
    adaptivity (Info). *)

open Tm_trace
open Tm_consistency
open Tm_analysis

type flip = {
  checker : string;
  cut : int;  (** the truncation step *)
  full : Spec.verdict;
  prefix : Spec.verdict;
  adaptivity_witness : bool;
      (** the flip is the condition's own adaptivity showing (WAC), not a
          checker bug *)
}

val core : History.t -> History.t
(** The non-aborted core: the history restricted to its non-aborted
    transactions.  The com(alpha)-based conditions never place aborted
    transactions, so the projection preserves their verdicts while
    keeping enumeration tractable. *)

val max_core_txns : int
(** Cores larger than this are skipped outright (counted in
    [chaos_closure_skipped_total]) — the adaptive checkers' partition
    enumeration is exponential in the transaction count. *)

val cuts : crash_steps:int list -> last:int -> int list
(** Truncation points worth probing: injected-crash steps plus step-range
    quartiles, in (0, last), deduplicated and sorted. *)

val check :
  ?budget:int -> ?checkers:string list -> History.t -> cuts:int list ->
  flip list
(** Evaluate the named checkers (default: all) on the full history,
    re-evaluate the Sat ones on each truncated prefix, and report the
    flips.  Out-of-budget verdicts on either side are skipped. *)

val finding_of_flip : flip -> Lint.finding

val pass : Lint.pass
(** The ["crash-closure"] lint pass: cuts come from the artifact's
    ["crashes"] meta (injected crash steps) plus quartiles. *)

val register : unit -> unit
(** Add {!pass} to the pclsan plug-in registry. *)
