(* The chaos sweep: every registered TM crossed with every fault class
   and every contention-manager policy, each cell one deterministic
   simulation.  The output is a robustness matrix — commit rate, retry
   histogram, stop reason, crash-closure status, degradation class versus
   the fault-free control row — with no wall-clock anywhere, so the same
   seed yields byte-identical JSONL. *)

open Tm_base
open Tm_runtime
open Tm_impl

type cfg = {
  tms : Tm_intf.impl list;
  faults : Fault.klass list;
  cms : Cm.policy list;
  n_procs : int;
  txns_per_proc : int;
  rounds : int;  (** scheduled round-robin rounds before the drain phase *)
  quantum : int;  (** steps per process per round *)
  seed : int;
  budget : int;  (** per-[Until_done] step budget of the drain phase *)
  closure_budget : int;  (** checker node budget for crash-closure *)
}

let default =
  {
    tms = Registry.all;
    faults = Fault.all;
    cms = Cm.all;
    n_procs = 3;
    txns_per_proc = 3;
    rounds = 40;
    quantum = 8;
    seed = 1;
    budget = 60_000;
    closure_budget = 60_000;
  }

(** A small preset for CI smoke runs. *)
let small =
  { default with txns_per_proc = 2; rounds = 24; budget = 30_000 }

(** The weakest consistency claim each TM makes about committed
    transactions — the checker whose verdict its chaos cells are held
    to (the same mapping `pcl_tm fuzz` uses). *)
let weakest_claim = function
  | "pram-local" -> "pram"
  | "si-clock" -> "snapshot-isolation"
  | "candidate" | "llsc-candidate" -> "weak-adaptive"
  | _ -> "strict-serializability"

type cell = {
  tm : string;
  fault : string;
  cm : string;
  victim : int option;
  commits : int;
  expected : int;  (** transactions the workload would commit fault-free *)
  gave_up : int;
  retry_hist : (int * int) list;
      (** aborts-endured-per-transaction -> how many transactions *)
  backoff_steps : int;
  steps : int;
  stop : string;
  crashes : int;  (** injected crash-stops that actually landed *)
  closure_violations : int;  (** crash-closure Error flips — must be 0 *)
  wac_witnesses : int;  (** crash-closure Info flips (adaptive condition) *)
  skipped : int;
      (** crash-closure cores (full history or truncated prefix) skipped
          because they exceed [Crash_closure.max_core_txns] — previously
          only a silent sink counter, now attributed per cell *)
  degradation : string;  (** vs the same (tm, cm) fault-free control cell *)
}

(* -- one cell ---------------------------------------------------------- *)

(** The per-transaction workload: a read-modify-write over one shared and
    one private item, so cells contend on the shared slots but every
    transaction also does private work (the karma policy's currency). *)
let txn_body ~shared ~private_item (txn : Txn_api.txn) =
  let bump x =
    let v = Atomically.read txn x in
    Atomically.write txn x
      (Value.int (1 + Option.value ~default:0 (Value.to_int v)))
  in
  bump shared;
  bump private_item;
  Atomically.Done ()

let run_cell (cfg : cfg) (impl : Tm_intf.impl) (klass : Fault.klass)
    (policy : Cm.policy) : cell =
  let (module M : Tm_intf.S) = impl in
  let pids = List.init cfg.n_procs (fun p -> p + 1) in
  let inst =
    Fault.instantiate klass ~seed:cfg.seed ~pids ~rounds:cfg.rounds
  in
  let shared_items = [ Item.v "s0"; Item.v "s1" ] in
  let private_items =
    List.map (fun p -> (p, Item.v (Printf.sprintf "p%d" p))) pids
  in
  let items = shared_items @ List.map snd private_items in
  let commits = ref 0 and gave_up = ref 0 in
  let retry_counts = ref [] in
  (* backoff steps are read off the (cm, tm) counter as a delta so cells
     sharing a sink stay independent *)
  let metrics = Tm_obs.Sink.metrics Tm_obs.Sink.default in
  let backoff_c =
    Tm_obs.Metrics.counter metrics
      ~labels:[ ("cm", policy.Cm.name); ("tm", M.name) ]
      "cm_backoff_steps_total"
  in
  let backoff_before = Tm_obs.Metrics.counter_value backoff_c in
  let setup mem recorder =
    (match inst.Fault.hook with
    | Some h -> Memory.set_fault_hook mem h
    | None -> ());
    let handle = Txn_api.instantiate impl mem recorder ~items in
    let scratch = Cm.scratch mem in
    let client pid () =
      let rand = Prng.create ((cfg.seed * 1_000) + pid) in
      for k = 1 to cfg.txns_per_proc do
        let shared = Prng.pick rand shared_items in
        let private_item = List.assoc pid private_items in
        match
          Cm.atomically policy ~scratch
            ~seed:((cfg.seed * 10_000) + (pid * 100) + k)
            ~tm:M.name handle ~pid
            (txn_body ~shared ~private_item)
        with
        | Cm.Committed ((), aborts) ->
            incr commits;
            retry_counts := aborts :: !retry_counts
        | Cm.Gave_up aborts ->
            incr gave_up;
            retry_counts := aborts :: !retry_counts
      done
    in
    List.map (fun pid -> (pid, client pid)) pids
  in
  let atoms =
    List.concat
      (List.init cfg.rounds (fun r ->
           inst.Fault.inject ~round:r
           @ List.map (fun pid -> Schedule.Steps (pid, cfg.quantum)) pids))
    @ List.map (fun pid -> Schedule.Until_done pid) pids
  in
  (* drive the script through a live cursor, stopping at the first
     halting atom (a halted session would no-op the tail anyway — the
     incremental engine just skips the wasted walk); [~schedule:atoms]
     keeps the artifact metadata recording the full script, as a
     whole-schedule replay always did *)
  let c = Sim.start ~budget:cfg.budget setup in
  let rec drive = function
    | [] -> ()
    | a :: rest -> if (Sim.apply c a).Schedule.halted then () else drive rest
  in
  drive atoms;
  let r = Sim.snapshot ~schedule:atoms c in
  let crash_steps = List.map snd r.Sim.report.Schedule.crashes in
  let last = List.length r.Sim.log in
  (* the ">12 txn core skipped" counter, read as a delta so the cell can
     report how much of its closure check was skipped rather than run *)
  let skipped_c =
    Tm_obs.Metrics.counter metrics "chaos_closure_skipped_total"
  in
  let skipped_before = Tm_obs.Metrics.counter_value skipped_c in
  let flips =
    Crash_closure.check ~budget:cfg.closure_budget
      ~checkers:[ weakest_claim M.name ]
      r.Sim.history
      ~cuts:(Crash_closure.cuts ~crash_steps ~last)
  in
  let skipped = Tm_obs.Metrics.counter_value skipped_c - skipped_before in
  let violations, witnesses =
    List.partition
      (fun (f : Crash_closure.flip) -> not f.Crash_closure.adaptivity_witness)
      flips
  in
  let hist =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun n ->
        Hashtbl.replace tbl n
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl n)))
      !retry_counts;
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  Tm_obs.Sink.incr
    ~labels:
      [
        ("tm", M.name); ("fault", Fault.name klass); ("cm", policy.Cm.name);
      ]
    "chaos_cells_total";
  {
    tm = M.name;
    fault = Fault.name klass;
    cm = policy.Cm.name;
    victim = inst.Fault.victim;
    commits = !commits;
    expected = cfg.n_procs * cfg.txns_per_proc;
    gave_up = !gave_up;
    retry_hist = hist;
    backoff_steps = Tm_obs.Metrics.counter_value backoff_c - backoff_before;
    steps = last;
    stop = Schedule.stop_to_string r.Sim.report.Schedule.stop;
    crashes = List.length crash_steps;
    closure_violations = List.length violations;
    wac_witnesses = List.length witnesses;
    skipped;
    degradation = "";  (* filled against the control row by [matrix] *)
  }

(* -- the matrix -------------------------------------------------------- *)

(** How a faulted cell compares to its fault-free control: "none" (no
    commits lost), "degraded" (at least half survive), "severe" (some
    survive), "wedged" (none survive, or the run stalled out). *)
let classify ~(baseline : int) (c : cell) : string =
  let stalled =
    String.length c.stop >= 5 && String.sub c.stop 0 5 = "budge"
  in
  if stalled && c.commits = 0 then "wedged"
  else if c.commits >= baseline then "none"
  else if 2 * c.commits >= baseline then "degraded"
  else if c.commits > 0 then "severe"
  else "wedged"

(** Fill in the degradation class of every cell against its control row:
    the Baseline cell of the same (tm, cm), or the workload size when the
    sweep was run without Baseline. *)
let finalize (cfg : cfg) (cells : cell list) : cell list =
  let baseline_of tm cm =
    match
      List.find_opt
        (fun c -> c.tm = tm && c.cm = cm && c.fault = "none")
        cells
    with
    | Some c -> c.commits
    | None -> cfg.n_procs * cfg.txns_per_proc
  in
  List.map
    (fun c ->
      { c with degradation = classify ~baseline:(baseline_of c.tm c.cm) c })
    cells

(** Every (tm, fault, cm) combination of the configuration, in order —
    the iteration space [matrix] walks, exposed so callers that need
    per-cell setup (e.g. a flight recorder per cell) can walk it
    themselves and [finalize] the result. *)
let combos (cfg : cfg) : (Tm_intf.impl * Fault.klass * Cm.policy) list =
  List.concat_map
    (fun impl ->
      List.concat_map
        (fun klass -> List.map (fun policy -> (impl, klass, policy)) cfg.cms)
        cfg.faults)
    cfg.tms

let matrix (cfg : cfg) : cell list =
  Tm_obs.Sink.span "chaos.matrix" (fun () ->
      finalize cfg
        (List.map
           (fun (impl, klass, policy) -> run_cell cfg impl klass policy)
           (combos cfg)))

(* -- rendering --------------------------------------------------------- *)

let cell_json (c : cell) : Tm_obs.Obs_json.t =
  Tm_obs.Obs_json.Obj
    [
      Tm_obs.Schema.field;
      ("type", Tm_obs.Obs_json.String "chaos_cell");
      ("tm", Tm_obs.Obs_json.String c.tm);
      ("fault", Tm_obs.Obs_json.String c.fault);
      ("cm", Tm_obs.Obs_json.String c.cm);
      ( "victim",
        match c.victim with
        | Some p -> Tm_obs.Obs_json.Int p
        | None -> Tm_obs.Obs_json.Null );
      ("commits", Tm_obs.Obs_json.Int c.commits);
      ("expected", Tm_obs.Obs_json.Int c.expected);
      ("gave_up", Tm_obs.Obs_json.Int c.gave_up);
      ( "retry_hist",
        Tm_obs.Obs_json.Obj
          (List.map
             (fun (aborts, n) ->
               (string_of_int aborts, Tm_obs.Obs_json.Int n))
             c.retry_hist) );
      ("backoff_steps", Tm_obs.Obs_json.Int c.backoff_steps);
      ("steps", Tm_obs.Obs_json.Int c.steps);
      ("stop", Tm_obs.Obs_json.String c.stop);
      ("crashes", Tm_obs.Obs_json.Int c.crashes);
      ("closure_violations", Tm_obs.Obs_json.Int c.closure_violations);
      ("wac_witnesses", Tm_obs.Obs_json.Int c.wac_witnesses);
      ("skipped", Tm_obs.Obs_json.Int c.skipped);
      ("degradation", Tm_obs.Obs_json.String c.degradation);
    ]

let pp_cell ppf (c : cell) =
  Fmt.pf ppf "%-14s %-9s %-10s %2d/%2d commits %2d gave-up %s%s%s" c.tm
    c.fault c.cm c.commits c.expected c.gave_up c.degradation
    (if c.skipped > 0 then Printf.sprintf "  skipped:%d" c.skipped else "")
    (if c.closure_violations > 0 then
       Printf.sprintf "  ** %d closure violation(s)" c.closure_violations
     else "")
