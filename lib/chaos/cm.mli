(** Contention managers: the abort/retry policy wrapped around
    {!Tm_impl.Atomically}.  Backoff consumes real simulation steps (reads
    of a scratch base object), so a manager's waiting is visible on the
    same step axis as everything else and interacts with the adversary's
    schedule like any other code. *)

open Tm_base
open Tm_impl

type decision =
  | Retry_now
  | Backoff of int  (** spin for [n] simulation steps before retrying *)
  | Give_up

type ctx = {
  attempt : int;  (** 1-based count of aborts endured so far *)
  karma : int;  (** transactional operations invested across attempts *)
  rand : Prng.t;  (** deterministic stream for jitter *)
}

type policy = {
  name : string;
  describe : string;
  max_attempts : int;
  decide : ctx -> decision;
}

val immediate : policy
val backoff : policy
val polite : policy
val karma : policy

val all : policy list
val find : string -> policy option
val find_exn : string -> policy

type 'a outcome =
  | Committed of 'a * int  (** the value and the number of aborts endured *)
  | Gave_up of int  (** aborts endured before the manager stopped retrying *)

val scratch : Memory.t -> Oid.t
(** The scratch object backoff spins on (allocated once per memory); call
    from the simulation's setup so it exists in C_0. *)

val atomically :
  policy ->
  scratch:Oid.t ->
  seed:int ->
  tm:string ->
  Txn_api.handle ->
  pid:int ->
  (Txn_api.txn -> 'a Atomically.outcome) ->
  'a outcome
(** Run a transaction body under a policy.  Giving up — the policy's
    choice or its attempt bound — yields [Gave_up] rather than an
    exception.  Per-(cm,tm) counters ([cm_retries_total],
    [cm_backoff_steps_total], [cm_gave_up_total], [cm_commits_total])
    land in the default metrics sink. *)
