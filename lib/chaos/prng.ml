(* A tiny deterministic PRNG (splitmix64) for everything the chaos engine
   randomizes: victim selection, backoff jitter, fault placement.  The
   stdlib [Random.State] would work too, but a self-contained generator
   with a documented algorithm makes "same seed => same faulted run" an
   auditable property rather than a stdlib implementation detail. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int (seed lxor 0x9E3779B9) }

(* splitmix64: one additive step then two xor-shift-multiply mixes *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** A non-negative int. *)
let next t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(** Uniform in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  next t mod bound

(** Pick an element of a non-empty list. *)
let pick t xs = List.nth xs (int t (List.length xs))

(** [derive base k] — the [k]-th child seed of [base]: one splitmix64
    output of a stream positioned [k] steps past [base]'s raw state.
    Because splitmix64 is a bijection of the 64-bit state composed with
    an (invertible) output mix, distinct [k] under the same [base] can
    only collide if two state values 0x9E3779B97F4A7C15 apart mix to
    ints equal after the 2-bit truncation — vanishingly unlikely, and
    pinned by a qcheck law.  Used wherever a run fans out into seeded
    sub-streams (soak segments, scenario cells) so the sub-seeds are
    decorrelated rather than arithmetic neighbours. *)
let derive base k =
  if k < 0 then invalid_arg "Prng.derive: negative index";
  let t = create base in
  t.state <- Int64.add t.state (Int64.mul (Int64.of_int k) 0x9E3779B97F4A7C15L);
  next t
