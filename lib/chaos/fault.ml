(* Fault plans: seeded, replayable descriptions of what goes wrong.

   A fault class instantiates, for a given seed and process set, into
   (a) schedule atoms spliced into the adversary's script — crash-stop,
   park/unpark, doomed-transaction poison — and (b) an optional
   {!Memory.fault_hook} for faults that live below the schedule, i.e.
   spurious failure of RMW-class primitives (CAS / store-conditional /
   try-lock may fail without effect on real hardware; the hook makes
   them do so deterministically, keyed on the global step index).

   Because both halves are pure functions of (seed, pids, rounds), a
   faulted run is replayed bit-identically by re-instantiating the same
   plan — no fault state survives outside the schedule and the hook. *)

open Tm_base
open Tm_runtime

type klass =
  | Baseline  (** no faults: the control row of the robustness matrix *)
  | Crash_stop
  | Park_delay
  | Spurious_rmw
  | Poison_txn

let all = [ Baseline; Crash_stop; Park_delay; Spurious_rmw; Poison_txn ]

let name = function
  | Baseline -> "none"
  | Crash_stop -> "crash"
  | Park_delay -> "park"
  | Spurious_rmw -> "spurious"
  | Poison_txn -> "poison"

let describe = function
  | Baseline -> "no injected faults (control)"
  | Crash_stop -> "one process crash-stops mid-run and never steps again"
  | Park_delay -> "one process is suspended for a window, then resumes"
  | Spurious_rmw ->
      "the victim's CAS/SC/try-lock primitives fail spuriously for a \
       window of global steps"
  | Poison_txn -> "the victim's transaction is force-aborted, repeatedly"

let of_name n = List.find_opt (fun k -> name k = n) all

let of_name_exn n =
  match of_name n with
  | Some k -> k
  | None ->
      invalid_arg
        (Printf.sprintf "Fault.of_name_exn: no fault class named %S (have %s)"
           n
           (String.concat ", " (List.map name all)))

type instance = {
  klass : klass;
  victim : int option;  (** the process the plan picks on, if any *)
  inject : round:int -> Schedule.atom list;
      (** fault atoms to splice into the script before round [round] *)
  hook : Memory.fault_hook option;
      (** sub-schedule faults, to install on the memory at setup *)
}

(** The window of global steps during which spurious RMW failures fire.
    Exposed so tests and the CM-livelock demonstration can reason about
    "a transient fault that outlasts impatient retry policies". *)
let spurious_window = 400

let instantiate (klass : klass) ~(seed : int) ~(pids : int list)
    ~(rounds : int) : instance =
  let rand = Prng.create (seed * 31 + 7) in
  let no_atoms ~round:_ = [] in
  match klass with
  | Baseline -> { klass; victim = None; inject = no_atoms; hook = None }
  | Crash_stop ->
      let victim = Prng.pick rand pids in
      let at = max 1 (rounds / 3) in
      {
        klass;
        victim = Some victim;
        inject =
          (fun ~round ->
            if round = at then [ Schedule.Crash victim ] else []);
        hook = None;
      }
  | Park_delay ->
      let victim = Prng.pick rand pids in
      let park_at = max 1 (rounds / 4) in
      let unpark_at = max (park_at + 1) (rounds / 2) in
      {
        klass;
        victim = Some victim;
        inject =
          (fun ~round ->
            if round = park_at then [ Schedule.Park victim ]
            else if round = unpark_at then [ Schedule.Unpark victim ]
            else []);
        hook = None;
      }
  | Spurious_rmw ->
      let victim = Prng.pick rand pids in
      {
        klass;
        victim = Some victim;
        inject = no_atoms;
        hook =
          Some
            (fun ~pid ~tid:_ ~step _oid _prim ->
              if pid = victim && step < spurious_window then
                Some Memory.Spurious_fail
              else None);
      }
  | Poison_txn ->
      let victim = Prng.pick rand pids in
      let hits =
        List.sort_uniq compare
          [ max 1 (rounds / 4); max 1 (rounds / 2); max 1 (3 * rounds / 4) ]
      in
      {
        klass;
        victim = Some victim;
        inject =
          (fun ~round ->
            if List.mem round hits then [ Schedule.Poison victim ] else []);
        hook = None;
      }
