(** Fault plans: seeded, replayable descriptions of what goes wrong.  A
    class instantiates into schedule atoms (crash/park/unpark/poison) plus
    an optional {!Tm_base.Memory.fault_hook} for spurious RMW failure —
    both pure functions of (seed, pids, rounds), so a faulted run replays
    bit-identically. *)

open Tm_base
open Tm_runtime

type klass =
  | Baseline  (** no faults: the control row of the robustness matrix *)
  | Crash_stop
  | Park_delay
  | Spurious_rmw
  | Poison_txn

val all : klass list
val name : klass -> string
val describe : klass -> string
val of_name : string -> klass option
val of_name_exn : string -> klass

type instance = {
  klass : klass;
  victim : int option;  (** the process the plan picks on, if any *)
  inject : round:int -> Schedule.atom list;
      (** fault atoms to splice into the script before round [round] *)
  hook : Memory.fault_hook option;
      (** sub-schedule faults, to install on the memory at setup *)
}

val spurious_window : int
(** Global steps during which {!Spurious_rmw} fires — a transient fault
    sized to outlast impatient retry policies. *)

val instantiate : klass -> seed:int -> pids:int list -> rounds:int -> instance
