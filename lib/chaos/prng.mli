(** Deterministic PRNG (splitmix64) for the chaos engine: victim
    selection, backoff jitter, fault placement.  Same seed, same
    stream — the property every faulted run's replayability rests on. *)

type t

val create : int -> t
val next : t -> int
(** A non-negative int. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). *)

val pick : t -> 'a list -> 'a
(** An element of a non-empty list. *)
