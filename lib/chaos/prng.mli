(** Deterministic PRNG (splitmix64) for the chaos engine: victim
    selection, backoff jitter, fault placement.  Same seed, same
    stream — the property every faulted run's replayability rests on. *)

type t

val create : int -> t

val next_int64 : t -> int64
(** The raw 64-bit splitmix64 output — exposed so known-answer vectors
    can be checked against the reference implementation bit for bit. *)

val next : t -> int
(** A non-negative int. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). *)

val pick : t -> 'a list -> 'a
(** An element of a non-empty list. *)

val derive : int -> int -> int
(** [derive base k] is the [k]-th child seed of [base] ([k >= 0]):
    deterministic, decorrelated across [k], and collision-free within a
    run for all practical fan-outs (qcheck-pinned).  Use it to seed the
    per-segment / per-cell sub-streams of a sweep. *)
