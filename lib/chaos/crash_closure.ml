(* Crash-closure: safety is prefix-closed, so a consistency verdict must
   be stable under crash truncation.  If a history satisfies a condition,
   every crash-truncated prefix of it must too — a crash only removes
   events, it cannot create a new anomaly.  A Sat -> Unsat flip under
   truncation therefore exposes one of two things:

   - a checker bug: the decision procedure is not actually checking a
     prefix-closed property (or mishandles pending operations), or
   - an adaptivity artefact: the condition itself is *adaptive* — its
     verdict on a prefix legitimately depends on events after the cut.
     Weak adaptive consistency (the WAC condition of the paper's
     Section 5) is exactly such a condition: its partition of committed
     transactions may only be justified by later commits, so a WAC flip
     is a *witness of adaptivity*, not a bug.

   The pass classifies which: flips of the weak-adaptive checker are
   Info findings ("wac-adaptivity witness"); flips of any other checker
   are Error findings and should never occur on the stock TMs. *)

open Tm_trace
open Tm_consistency
open Tm_analysis

type flip = {
  checker : string;
  cut : int;  (** the truncation step *)
  full : Spec.verdict;
  prefix : Spec.verdict;
  adaptivity_witness : bool;
      (** true when the flip is the condition's own adaptivity showing
          (WAC), not a checker bug *)
}

(* the conditions whose verdicts may legitimately flip under truncation *)
let adaptive_checkers = [ "weak-adaptive" ]

(** Project a history onto its non-aborted core.  The com(alpha)-based
    conditions never place aborted transactions — they can only inflate
    the search space (a retry-heavy run records dozens of aborted
    attempts, and e.g. weak-adaptive enumerates consistency partitions
    over {e every} transaction in begin order) — so dropping them
    preserves the verdict while keeping the enumeration tractable. *)
let core (h : History.t) : History.t =
  let keep =
    List.filter (fun t -> not (History.aborted h t)) (History.txns h)
  in
  History.restrict h (Tm_base.Tid.Set.of_list keep)

(** Cores larger than this are skipped outright (counted in
    [chaos_closure_skipped_total]): the adaptive checkers' partition
    enumeration is exponential in the transaction count, and a budget
    bounds only their inner placement search. *)
let max_core_txns = 12

(** Truncation points worth probing for a history with events up to step
    [last]: the injected-crash steps (the cuts chaos actually made) plus
    the quartiles of the step range, deduplicated and sorted.  Cutting at
    [last] is a no-op and is dropped. *)
let cuts ~(crash_steps : int list) ~(last : int) : int list =
  let quartiles = [ last / 4; last / 2; 3 * last / 4 ] in
  List.sort_uniq compare
    (List.filter (fun c -> c > 0 && c < last) (crash_steps @ quartiles))

(** Check one history: evaluate the checkers ([?checkers] names, default
    all) on the full history, then re-evaluate the Sat ones on each
    truncated prefix.  Out-of-budget verdicts are skipped on either
    side — no verdict, no flip. *)
let check ?budget ?checkers (h : History.t) ~(cuts : int list) : flip list =
  Tm_obs.Sink.span "chaos.crash_closure" (fun () ->
      let full_core = core h in
      if History.txn_count full_core > max_core_txns then begin
        Tm_obs.Sink.incr "chaos_closure_skipped_total";
        []
      end
      else
      let full =
        match checkers with
        | None -> Checkers.matrix ?budget full_core
        | Some names ->
            List.map
              (fun n ->
                let c = Checkers.find_exn n in
                (n, c.Spec.check ?budget full_core))
              names
      in
      let flips = ref [] in
      List.iter
        (fun cut ->
          (* truncate the raw history, then project: a transaction aborted
             later may still be live or commit-pending at the cut *)
          let prefix = core (History.truncate_at h cut) in
          if History.txn_count prefix > max_core_txns then
            Tm_obs.Sink.incr "chaos_closure_skipped_total"
          else
          List.iter
            (fun (name, verdict) ->
              match verdict with
              | Spec.Sat -> (
                  let c = Checkers.find_exn name in
                  match c.Spec.check ?budget prefix with
                  | Spec.Unsat ->
                      flips :=
                        {
                          checker = name;
                          cut;
                          full = Spec.Sat;
                          prefix = Spec.Unsat;
                          adaptivity_witness =
                            List.mem name adaptive_checkers;
                        }
                        :: !flips
                  | Spec.Sat | Spec.Out_of_budget -> ())
              | Spec.Unsat | Spec.Out_of_budget -> ())
            full)
        cuts;
      let flips = List.rev !flips in
      Tm_obs.Sink.add "chaos_closure_flips_total" (List.length flips);
      flips)

(* -- the lint pass ----------------------------------------------------- *)

let crash_steps_of_meta (meta : (string * string) list) : int list =
  match List.assoc_opt "crashes" meta with
  | None -> []
  | Some s ->
      (* "p1@42,p2@100" — the format Sim writes into flight meta *)
      List.filter_map
        (fun tok ->
          match String.index_opt tok '@' with
          | None -> None
          | Some i ->
              int_of_string_opt
                (String.sub tok (i + 1) (String.length tok - i - 1)))
        (String.split_on_char ',' s)

let finding_of_flip (f : flip) : Lint.finding =
  if f.adaptivity_witness then
    {
      Lint.pass = "crash-closure";
      severity = Lint.Info;
      step = Some f.cut;
      txns = [];
      oids = [];
      witness_steps = [ f.cut ];
      message =
        Printf.sprintf
          "wac-adaptivity witness: %s flips Sat -> Unsat when the history \
           is crash-truncated at step %d — the condition's verdict \
           depends on events after the cut (expected for an adaptive \
           condition, and exactly why WAC evades the PCL impossibility)"
          f.checker f.cut;
    }
  else
    {
      Lint.pass = "crash-closure";
      severity = Lint.Error;
      step = Some f.cut;
      txns = [];
      oids = [];
      witness_steps = [ f.cut ];
      message =
        Printf.sprintf
          "crash-closure violation: %s flips Sat -> Unsat when the \
           history is crash-truncated at step %d — safety is \
           prefix-closed, so this is a checker bug (a crash cannot \
           create an anomaly)"
          f.checker f.cut;
    }

(* keep the per-input cost bounded: the pass runs inside `pcl_tm lint`
   over arbitrary artifacts, so it gets a smaller checker budget than a
   dedicated chaos sweep *)
let pass_budget = 60_000

let pass : Lint.pass =
  {
    Lint.name = "crash-closure";
    describe =
      "consistency verdicts are stable under crash-truncated prefixes \
       (flips: checker bug, or WAC-adaptivity witness)";
    paper = "Section 3 (safety/prefix-closure); Section 5 (WAC adaptivity)";
    run =
      (fun cfg input ->
        let h = input.Lint.history in
        if History.is_empty h then []
        else
          let last =
            List.fold_left
              (fun acc e -> max acc (Event.at e))
              0 (History.events h)
          in
          let cs =
            cuts ~crash_steps:(crash_steps_of_meta input.Lint.meta) ~last
          in
          let flips = check ~budget:pass_budget h ~cuts:cs in
          let findings = List.map finding_of_flip flips in
          let n = List.length findings in
          if n > cfg.Lint.max_findings then (
            Tm_obs.Sink.add "lint_findings_dropped_total"
              (n - cfg.Lint.max_findings);
            List.filteri (fun i _ -> i < cfg.Lint.max_findings) findings)
          else findings);
  }

let register () = Lint.register pass
