(* Verdict provenance: turn a bare [Unsat] into a minimal witness — which
   transactions are jointly inconsistent, which axiom they violate, and
   which access-log steps belong to them — so `pcl_tm explain` can
   highlight the offending steps on a rendered timeline.

   The core is found greedily: starting from all transactions, drop each
   one whose removal keeps the restricted history Unsat.  The result is a
   locally-minimal unsat core (removing any single remaining transaction
   makes the history satisfiable), which for the catalogue histories and
   fuzz counterexamples is the conflicting pair or triple itself. *)

open Tm_base
open Tm_trace

type t = {
  source : string;  (** checker name *)
  verdict : string;  (** always ["unsat"] here *)
  axiom : string;  (** the violated condition, in words *)
  txns : Tid.t list;  (** locally-minimal unsat core *)
  steps : int list;  (** global indices of the core's steps *)
}

(* The condition each checker decides, phrased as the axiom an Unsat
   history violates.  Keyed by checker name so detectors stay decoupled
   from checker implementations. *)
let axiom_of = function
  | "opacity(final-state)" ->
      "no serialization of com(alpha) (aborted reads included) with \
       serialization points inside transactional intervals is legal \
       (final-state opacity)"
  | "strict-serializability" ->
      "no choice of com(alpha) and of serialization points inside the \
       transactional intervals induces a legal sequential history \
       (strict serializability, Def. 3.1)"
  | "serializability" ->
      "no permutation of com(alpha) induces a legal sequential history \
       (serializability)"
  | "conflict-serializability" ->
      "the conflict graph over committed transactions has a cycle \
       (conflict serializability)"
  | "causal-serializability" ->
      "no causally-consistent per-process serialization explains every \
       process's reads (causal serializability)"
  | "processor-consistency" ->
      "two processes observe the committed writes in incompatible orders \
       (processor consistency)"
  | "pram" ->
      "no per-process merge of program order and observed writes explains \
       all reads (PRAM)"
  | "snapshot-isolation" ->
      "no assignment of begin-time snapshots with disjoint concurrent \
       write-sets explains the history (snapshot isolation)"
  | "snapshot-isolation(ei)" ->
      "no early-inclusion snapshot assignment explains the history \
       (snapshot isolation, early inclusion)"
  | "weak-adaptive" ->
      "no begin-ordered partition of the transactions into SI-consistent \
       and PC-consistent groups is legal (weak adaptive consistency, \
       Def. 3.3)"
  | name -> Printf.sprintf "the history violates %s" name

(** [unsat_core checker h] is [Some core] iff [checker] rejects [h];
    [core] is then a locally-minimal transaction subset that it still
    rejects.  [Out_of_budget] never shrinks the core: a removal is kept
    only on a definite [Unsat]. *)
let unsat_core ?budget (checker : Spec.checker) (h : History.t) :
    Tid.t list option =
  match checker.Spec.check ?budget h with
  | Spec.Sat | Spec.Out_of_budget -> None
  | Spec.Unsat ->
      let core = ref (History.txns h) in
      List.iter
        (fun tid ->
          let without = List.filter (fun t -> not (Tid.equal t tid)) !core in
          if without <> [] then
            match
              checker.Spec.check ?budget
                (History.restrict h (Tid.Set.of_list without))
            with
            | Spec.Unsat -> core := without
            | Spec.Sat | Spec.Out_of_budget -> ())
        (History.txns h);
      Some !core

let of_unsat ?budget ?(log : Access_log.entry list = [])
    (checker : Spec.checker) (h : History.t) : t option =
  match unsat_core ?budget checker h with
  | None -> None
  | Some core ->
      let in_core tid = List.exists (Tid.equal tid) core in
      let steps =
        List.filter_map
          (fun (e : Access_log.entry) ->
            match e.Access_log.tid with
            | Some tid when in_core tid -> Some e.Access_log.index
            | _ -> None)
          log
      in
      Some
        {
          source = checker.Spec.name;
          verdict = "unsat";
          axiom = axiom_of checker.Spec.name;
          txns = core;
          steps;
        }

let to_flight (p : t) : Flight.verdict =
  {
    Flight.source = p.source;
    verdict = p.verdict;
    axiom = p.axiom;
    witness_txns = p.txns;
    witness_steps = p.steps;
  }

let pp ppf (p : t) =
  Fmt.pf ppf "%s: %s@\n  witness: {%a}%s@\n  axiom: %s" p.source p.verdict
    Fmt.(list ~sep:(any ", ") Tid.pp_name)
    p.txns
    (match p.steps with
    | [] -> ""
    | steps ->
        Printf.sprintf " at steps %s"
          (String.concat "," (List.map string_of_int steps)))
    p.axiom
