(* A catalogue of classic concurrency anomalies as concrete histories,
   with the expected verdict of every checker.  Together they separate all
   the conditions on the paper's lattice; the table they induce is the
   hierarchy experiment (T-D in DESIGN.md). *)

open Tm_trace
open Build

type anomaly = {
  name : string;
  description : string;
  history : History.t;
  expected : (string * bool) list;
      (** checker name -> should it be satisfied? *)
  lints : string list;
      (** anomaly lint passes that must fire on this history *)
}

let all_sat = [
  ("opacity(final-state)", true);
  ("strict-serializability", true);
  ("serializability", true);
  ("causal-serializability", true);
  ("processor-consistency", true);
  ("pram", true);
  ("snapshot-isolation", true);
  ("snapshot-isolation(ei)", true);
  ("weak-adaptive", true);
]

let override base changes =
  List.map
    (fun (name, v) ->
      match List.assoc_opt name changes with
      | Some v' -> (name, v')
      | None -> (name, v))
    base

let catalogue : anomaly list =
  [
    {
      name = "serial-baseline";
      description =
        "two sequential transactions, writer then reader: satisfies \
         everything";
      history = history [ B (1, 1); W (1, "x", 1); C 1;
                          B (2, 2); R (2, "x", 1); C 2 ];
      expected = all_sat;
      lints = [];
    };
    {
      name = "lost-update";
      description =
        "two concurrent read-modify-writes both read the initial value; \
         not serializable, but allowed by (weak) snapshot isolation since \
         the paper drops the first-committer-wins rule";
      history =
        history
          [ B (1, 1); B (2, 2);
            R (1, "x", 0); R (2, "x", 0);
            W (1, "x", 1); W (2, "x", 2);
            C 1; C 2 ];
      expected =
        override all_sat
          [ ("opacity(final-state)", false);
            ("strict-serializability", false);
            ("serializability", false);
            ("causal-serializability", false);
            ("processor-consistency", false) ];
      lints = [ "lost-update" ];
    };
    {
      name = "write-skew";
      description =
        "the canonical snapshot-isolation anomaly: disjoint writes guarded \
         by overlapping reads";
      history =
        history
          [ B (1, 1); B (2, 2);
            R (1, "x", 0); R (1, "y", 0);
            R (2, "x", 0); R (2, "y", 0);
            W (1, "x", 1); W (2, "y", 1);
            C 1; C 2 ];
      expected =
        override all_sat
          [ ("opacity(final-state)", false);
            ("strict-serializability", false);
            ("serializability", false) ];
      lints = [ "write-skew" ];
    };
    {
      name = "long-fork";
      description =
        "two observers disagree on the order of two independent writes: \
         violates snapshot isolation (single view) but not processor \
         consistency (per-process views, no common written item)";
      history =
        history
          [ B (1, 1); W (1, "x", 1); C 1;
            B (2, 2); W (2, "y", 1); C 2;
            B (3, 3); R (3, "x", 1); R (3, "y", 0); C 3;
            B (4, 4); R (4, "x", 0); R (4, "y", 1); C 4 ];
      expected =
        override all_sat
          [ ("opacity(final-state)", false);
            ("strict-serializability", false);
            ("serializability", false);
            ("snapshot-isolation", false);
            ("snapshot-isolation(ei)", false) ];
      lints = [];
    };
    {
      name = "causality-violation";
      description =
        "T3 observes T2's write but not the T1 write that T2 read from: \
         violates causal serializability, allowed by processor consistency";
      history =
        history
          [ B (1, 1); W (1, "x", 1); C 1;
            B (2, 2); R (2, "x", 1); W (2, "y", 2); C 2;
            B (3, 3); R (3, "y", 2); R (3, "x", 0); C 3 ];
      expected =
        override all_sat
          [ ("opacity(final-state)", false);
            ("strict-serializability", false);
            ("serializability", false);
            ("snapshot-isolation", false);
            ("snapshot-isolation(ei)", false);
            ("causal-serializability", false) ];
      lints = [];
    };
    {
      name = "same-item-write-reorder";
      description =
        "two processes observe two writes to the same item in opposite \
         orders: violates processor consistency (condition 1b), allowed by \
         PRAM — and also by weak adaptive consistency, which has no \
         program-order condition and may reorder each process's reads";
      history =
        history
          [ B (1, 1); W (1, "x", 1); C 1;
            B (2, 2); W (2, "x", 2); C 2;
            B (3, 3); R (3, "x", 1); C 3;
            B (5, 3); R (5, "x", 2); C 5;
            B (4, 4); R (4, "x", 2); C 4;
            B (6, 4); R (6, "x", 1); C 6 ];
      expected =
        override all_sat
          [ ("opacity(final-state)", false);
            ("strict-serializability", false);
            ("serializability", false);
            ("snapshot-isolation", false);
            ("snapshot-isolation(ei)", false);
            ("causal-serializability", false);
            ("processor-consistency", false) ];
      lints = [];
    };
    {
      name = "write-order-disagreement";
      description =
        "like same-item-write-reorder, but each process's observation \
         order is pinned by a private item, so the two views are forced to \
         disagree on the order of the writes to x: violates even weak \
         adaptive consistency (condition 2); PRAM still accepts";
      history =
        history
          [ B (1, 1); W (1, "x", 1); C 1;
            B (2, 2); W (2, "x", 2); C 2;
            B (3, 3); R (3, "x", 1); W (3, "z", 1); C 3;
            B (5, 3); R (5, "z", 1); R (5, "x", 2); C 5;
            B (4, 4); R (4, "x", 2); W (4, "u", 1); C 4;
            B (6, 4); R (6, "u", 1); R (6, "x", 1); C 6 ];
      expected =
        override all_sat
          [ ("opacity(final-state)", false);
            ("strict-serializability", false);
            ("serializability", false);
            ("snapshot-isolation", false);
            ("snapshot-isolation(ei)", false);
            ("causal-serializability", false);
            ("processor-consistency", false);
            ("weak-adaptive", false) ];
      lints = [];
    };
    {
      name = "program-order-violation";
      description =
        "an observer sees a process's second write but not its first: \
         violates PRAM (program order), yet satisfies weak adaptive \
         consistency, which imposes no program-order condition";
      history =
        history
          [ B (1, 1); W (1, "x", 1); C 1;
            B (2, 1); W (2, "y", 1); C 2;
            B (3, 3); R (3, "y", 1); R (3, "x", 0); C 3 ];
      expected =
        override all_sat
          [ ("opacity(final-state)", false);
            ("strict-serializability", false);
            ("serializability", false);
            ("causal-serializability", false);
            ("processor-consistency", false);
            ("pram", false);
            ("snapshot-isolation", false);
            ("snapshot-isolation(ei)", false) ];
      lints = [];
    };
    {
      name = "torn-read";
      description =
        "a reader sees half of a committed transaction's writes: violates \
         even weak adaptive consistency (both reads sit in the same \
         global-read block)";
      history =
        history
          [ B (1, 1); W (1, "x", 1); W (1, "y", 1); C 1;
            B (2, 2); R (2, "x", 1); R (2, "y", 0); C 2 ];
      expected =
        override all_sat
          [ ("opacity(final-state)", false);
            ("strict-serializability", false);
            ("serializability", false);
            ("causal-serializability", false);
            ("processor-consistency", false);
            ("pram", false);
            ("snapshot-isolation", false);
            ("snapshot-isolation(ei)", false);
            ("weak-adaptive", false) ];
      lints = [ "torn-snapshot" ];
    };
    {
      name = "read-only-anomaly";
      description =
        "Fekete et al.'s read-only transaction anomaly: T1 and T2 are \
         serializable on their own, but the read-only T3 observes T1 \
         without T2, closing a cycle; allowed by snapshot isolation";
      history =
        history
          [ B (2, 2); R (2, "x", 0); R (2, "y", 0);
            B (1, 1); R (1, "y", 0); W (1, "y", 20); C 1;
            B (3, 3); R (3, "x", 0); R (3, "y", 20); C 3;
            W (2, "x", -11); C 2 ];
      expected =
        override all_sat
          [ ("opacity(final-state)", false);
            ("strict-serializability", false);
            ("serializability", false) ];
      lints = [];
    };
    {
      name = "aborted-dirty-read";
      description =
        "an aborted transaction observed an inconsistent state: violates \
         opacity, invisible to the committed-only conditions";
      history =
        history
          [ B (1, 1); W (1, "x", 1); W (1, "y", 1); C 1;
            B (2, 2); R (2, "x", 1); R (2, "y", 0); Ca 2 ];
      expected = override all_sat [ ("opacity(final-state)", false) ];
      lints = [ "torn-snapshot" ];
    };
    {
      name = "dirty-read-from-aborted";
      description =
        "a committed transaction observed a value whose writer later \
         aborted: no condition can justify the read (aborted writes are \
         never in com(alpha))";
      history =
        history
          [ B (1, 1); W (1, "x", 1);
            B (2, 2); R (2, "x", 1); C 2;
            Ca 1 ];
      expected =
        override all_sat
          [ ("opacity(final-state)", false);
            ("strict-serializability", false);
            ("serializability", false);
            ("causal-serializability", false);
            ("processor-consistency", false);
            ("pram", false);
            ("snapshot-isolation", false);
            ("snapshot-isolation(ei)", false);
            ("weak-adaptive", false) ];
      lints = [];
    };
    {
      name = "stale-read-after-commit";
      description =
        "a transaction beginning after a commit still reads the old value: \
         violates strict serializability, allowed by plain serializability";
      history =
        history
          [ B (1, 1); W (1, "x", 1); C 1;
            B (2, 2); R (2, "x", 0); C 2 ];
      expected =
        override all_sat
          [ ("opacity(final-state)", false);
            ("strict-serializability", false);
            ("snapshot-isolation", false);
            ("snapshot-isolation(ei)", false) ];
      lints = [];
    };
    {
      name = "commit-pending-write-observed";
      description =
        "a commit-pending transaction's write is observed; com(alpha) must \
         include it; satisfiable everywhere";
      history =
        history
          [ B (1, 1); W (1, "x", 7); Cp 1;
            B (2, 2); R (2, "x", 7); C 2 ];
      expected = all_sat;
      lints = [];
    };
  ]

let find name = List.find (fun a -> a.name = name) catalogue
