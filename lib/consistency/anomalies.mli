(** A catalogue of classic concurrency anomalies as concrete histories,
    with the expected verdict of every checker.  Together they separate
    all conditions on the paper's lattice (experiment T-D). *)

open Tm_trace

type anomaly = {
  name : string;
  description : string;
  history : History.t;
  expected : (string * bool) list;
      (** checker name -> should it be satisfied? *)
  lints : string list;
      (** pclsan anomaly passes ([lost-update], [write-skew],
          [torn-snapshot]) that must fire on this history — the
          positive/negative corpus for the lint tests *)
}

val catalogue : anomaly list

val find : string -> anomaly
(** @raise Not_found on an unknown name. *)
