(** Verdict provenance: minimal witnesses for negative checker verdicts.

    An [Unsat] alone says a history is inconsistent; provenance says
    {e why}: a locally-minimal core of transactions the checker still
    rejects, the violated axiom in words, and the core's step indices —
    what `pcl_tm explain` highlights on the rendered timeline. *)

open Tm_base
open Tm_trace

type t = {
  source : string;  (** checker name *)
  verdict : string;  (** always ["unsat"] here *)
  axiom : string;  (** the violated condition, in words *)
  txns : Tid.t list;  (** locally-minimal unsat core *)
  steps : int list;  (** global indices of the core's steps *)
}

val axiom_of : string -> string
(** The condition a checker of that name decides, phrased as the violated
    axiom; a generic phrase for unknown names. *)

val unsat_core : ?budget:int -> Spec.checker -> History.t -> Tid.t list option
(** [Some core] iff the checker rejects the history; [core] is then a
    locally-minimal subset of its transactions that it still rejects
    (greedy element-wise minimization — removing any one remaining
    transaction makes the rest satisfiable). *)

val of_unsat :
  ?budget:int ->
  ?log:Access_log.entry list ->
  Spec.checker ->
  History.t ->
  t option
(** Full provenance for a rejected history.  When the execution's access
    log is given, [steps] lists the global indices of the core
    transactions' steps. *)

val to_flight : t -> Flight.verdict
(** As a flight-recorder verdict line, ready to attach to a trace. *)

val pp : Format.formatter -> t -> unit
