(* Shared assembly helpers for the checkers. *)

open Tm_base
open Tm_trace

(** Try every com(alpha) candidate; Sat as soon as one works. *)
let exists_com (h : History.t) (f : Tid.Set.t -> Spec.verdict) : Spec.verdict
    =
  let hit_budget = ref false in
  let rec go seq =
    match seq () with
    | Seq.Nil -> if !hit_budget then Spec.Out_of_budget else Spec.Unsat
    | Seq.Cons (com, rest) -> (
        (* search-space telemetry: one com(alpha) candidate explored *)
        Tm_obs.Sink.incr "checker_com_candidates_total";
        match f com with
        | Spec.Sat -> Spec.Sat
        | Spec.Out_of_budget ->
            hit_budget := true;
            go rest
        | Spec.Unsat -> go rest)
  in
  go (Spec.com_candidates h)

(** Gap window spanning the active execution interval of a transaction. *)
let active_window (i : Blocks.txn_info) = (i.Blocks.first_pos + 1, i.Blocks.last_pos)

let unbounded (h : History.t) = (0, History.length h)

(** Precedence pairs (indices into [points]) induced by the real-time
    order [<alpha] restricted to [tids], given the point index of each
    transaction. *)
let realtime_prec (h : History.t) (tids : Tid.t list)
    (index_of : Tid.t -> int option) : (int * int) list =
  List.concat_map
    (fun t1 ->
      List.filter_map
        (fun t2 ->
          if (not (Tid.equal t1 t2)) && History.precedes h t1 t2 then
            match (index_of t1, index_of t2) with
            | Some a, Some b -> Some (a, b)
            | _ -> None
          else None)
        tids)
    tids

(** Same-process program-order pairs (Def. 3.2 condition 1a). *)
let program_order_prec (h : History.t) (info_of : Tid.t -> Blocks.txn_info)
    (tids : Tid.t list) (index_of : Tid.t -> int option) : (int * int) list =
  List.concat_map
    (fun t1 ->
      List.filter_map
        (fun t2 ->
          let i1 = info_of t1 and i2 = info_of t2 in
          if
            (not (Tid.equal t1 t2))
            && i1.Blocks.pid = i2.Blocks.pid
            && History.precedes h t1 t2
          then
            match (index_of t1, index_of t2) with
            | Some a, Some b -> Some (a, b)
            | _ -> None
          else None)
        tids)
    tids

(** Processes executing at least one transaction of [tids]. *)
let view_pids (info_of : Tid.t -> Blocks.txn_info) (tids : Tid.t list) :
    int list =
  List.sort_uniq compare (List.map (fun t -> (info_of t).Blocks.pid) tids)
