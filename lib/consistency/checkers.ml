(* Registry of all consistency checkers, ordered roughly from strongest to
   weakest along the paper's lattice. *)

open Tm_trace

(** Wrap a checker so every decision records its verdict, wall latency and
    input size into the default telemetry sink (and appears as a
    [checker.check] span). *)
let instrument (c : Spec.checker) : Spec.checker =
  let labels = [ ("checker", c.Spec.name) ] in
  let check ?budget h =
    Tm_obs.Sink.span ~labels "checker.check" (fun () ->
        let v =
          Tm_obs.Sink.time ~labels "checker_wall_ns" (fun () ->
              c.Spec.check ?budget h)
        in
        Tm_obs.Sink.observe ~labels "checker_history_events"
          (float_of_int (History.length h));
        Tm_obs.Sink.incr
          ~labels:(("verdict", Spec.verdict_to_string v) :: labels)
          "checker_verdict_total";
        v)
  in
  { c with Spec.check }

let all : Spec.checker list =
  List.map instrument
    [
      Opacity.checker;
      Strict_serializability.checker;
      Serializability.checker;
      Causal.checker;
      Processor_consistency.checker;
      Pram.checker;
      Snapshot_isolation.checker;
      Snapshot_isolation_ei.checker;
      Weak_adaptive.checker;
    ]

let find name =
  List.find_opt (fun (c : Spec.checker) -> c.Spec.name = name) all

let find_exn name =
  match find name with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Checkers.find_exn: %s" name)

(** Evaluate every checker on a history. *)
let matrix ?budget (h : History.t) : (string * Spec.verdict) list =
  List.map
    (fun (c : Spec.checker) -> (c.Spec.name, c.Spec.check ?budget h))
    all

(** Names of the checkers a history satisfies. *)
let satisfied ?budget (h : History.t) : string list =
  List.filter_map
    (fun (name, v) -> if Spec.sat v then Some name else None)
    (matrix ?budget h)

(** The checkers that can produce a witness, for [--explain]-style
    tooling. *)
let explainers :
    (string * (?budget:int -> History.t -> Witness.t option)) list =
  [
    ("serializability", Serializability.explain);
    ("snapshot-isolation", Snapshot_isolation.explain);
    ("processor-consistency", Processor_consistency.explain);
    ("pram", Pram.explain);
    ("weak-adaptive", Weak_adaptive.explain);
  ]

let explain name ?budget h =
  Option.bind (List.assoc_opt name explainers) (fun f -> f ?budget h)
