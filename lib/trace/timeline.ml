(* Figure-style timeline rendering: the executions of the paper's figures
   as terminal art.  One lane per process on a global column axis that
   interleaves atomic steps with the transactional events sitting between
   them (begin '(' , commit 'C', abort 'A'); below the lanes an optional
   witness row ('^' under the steps a verdict points at) and one contention
   row per base object touched by more than one process.

   Pure ASCII so golden tests are stable across terminals. *)

open Tm_base

(* one rendered column: an atomic step, or a transactional event marker *)
type col =
  | Step of Access_log.entry
  | Mark of { pid : int; ch : char; label : string }

let prim_char p =
  (* parallel to Primitive.kind_names *)
  [| 'r'; 'w'; 'c'; 'f'; 'L'; 'u'; 'l'; 's' |].(Primitive.kind_index p)

let mark_of_event = function
  | Event.Inv { pid; op = Event.Begin; tid; at = _; _ } ->
      Some (Mark { pid; ch = '('; label = Tid.name tid })
  | Event.Resp { pid; resp = Event.R_committed; tid; _ } ->
      Some (Mark { pid; ch = 'C'; label = Tid.name tid })
  | Event.Resp { pid; resp = Event.R_aborted; tid; _ } ->
      Some (Mark { pid; ch = 'A'; label = Tid.name tid })
  | _ -> None

(* Merge steps (ordered by index) with event markers (ordered by [at],
   history order preserved on ties).  An event with [at] = k happened
   after step k-1 and before step k, so its marker column precedes the
   step column of index k. *)
let columns (steps : Access_log.entry list) (history : History.t) : col list =
  let marks =
    List.filter_map
      (fun e ->
        match mark_of_event e with
        | Some m -> Some (Event.at e, m)
        | None -> None)
      (History.to_list history)
  in
  let rec merge marks steps acc =
    match (marks, steps) with
    | [], [] -> List.rev acc
    | [], s :: rest -> merge [] rest (Step s :: acc)
    | (_, m) :: rest, [] -> merge rest [] (m :: acc)
    | (at, m) :: mrest, s :: srest ->
        if at <= s.Access_log.index then merge mrest steps (m :: acc)
        else merge marks srest (Step s :: acc)
  in
  merge marks steps []

let legend =
  "legend: ( begin  C committed  A aborted  r read  w write  c cas  f faa  \
   L trylock  u unlock  l ll  s sc  |  x non-trivial  - trivial  ^ witness"

let render ?(width = 72) ?(highlight = []) ~names (history : History.t)
    (steps : Access_log.entry list) : string =
  let cols = Array.of_list (columns steps history) in
  let n = Array.length cols in
  if n = 0 then "(empty trace)\n"
  else begin
    let pids =
      let tbl = Hashtbl.create 8 in
      Array.iter
        (function
          | Step e -> Hashtbl.replace tbl e.Access_log.pid ()
          | Mark { pid; _ } -> Hashtbl.replace tbl pid ())
        cols;
      List.sort compare (Hashtbl.fold (fun pid () acc -> pid :: acc) tbl [])
    in
    (* base objects touched by >= 2 distinct pids get a contention row *)
    let contended =
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun (e : Access_log.entry) ->
          let seen =
            Option.value ~default:[] (Hashtbl.find_opt tbl e.Access_log.oid)
          in
          if not (List.mem e.Access_log.pid seen) then
            Hashtbl.replace tbl e.Access_log.oid (e.Access_log.pid :: seen))
        steps;
      Hashtbl.fold
        (fun oid pids acc -> if List.length pids >= 2 then oid :: acc else acc)
        tbl []
      |> List.sort compare
    in
    let lane_label pid = Printf.sprintf "p%d" pid in
    let cont_label oid = Printf.sprintf "x:%s" (names oid) in
    let label_w =
      List.fold_left max (String.length "witness")
        (List.map
           (fun s -> String.length s)
           (List.map lane_label pids @ List.map cont_label contended))
      + 2
    in
    let pad s = Printf.sprintf "%-*s" label_w s in
    (* full-length rows, chunked into bands afterwards *)
    let lane =
      List.map
        (fun pid ->
          ( lane_label pid,
            String.init n (fun i ->
                match cols.(i) with
                | Step e when e.Access_log.pid = pid ->
                    prim_char e.Access_log.prim
                | Mark { pid = p; ch; _ } when p = pid -> ch
                | _ -> '.') ))
        pids
    in
    let witness =
      if highlight = [] then []
      else
        [
          ( "witness",
            String.init n (fun i ->
                match cols.(i) with
                | Step e when List.mem e.Access_log.index highlight -> '^'
                | _ -> ' ') );
        ]
    in
    let contention =
      List.map
        (fun oid ->
          ( cont_label oid,
            String.init n (fun i ->
                match cols.(i) with
                | Step e when Oid.equal e.Access_log.oid oid ->
                    if Primitive.trivial e.Access_log.prim then '-' else 'x'
                | _ -> '.') ))
        contended
    in
    let rows = lane @ witness @ contention in
    (* ruler: the step index of every 10th step, written at its column *)
    let ruler = Bytes.make n ' ' in
    Array.iteri
      (fun i c ->
        match c with
        | Step e when e.Access_log.index mod 10 = 0 ->
            let s = string_of_int e.Access_log.index in
            String.iteri
              (fun k ch -> if i + k < n then Bytes.set ruler (i + k) ch)
              s
        | _ -> ())
      cols;
    let ruler = Bytes.to_string ruler in
    let buf = Buffer.create 1024 in
    let n_bands = (n + width - 1) / width in
    for b = 0 to n_bands - 1 do
      let off = b * width in
      let len = min width (n - off) in
      if b > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf (pad "step");
      Buffer.add_string buf (String.sub ruler off len);
      Buffer.add_char buf '\n';
      List.iter
        (fun (label, row) ->
          Buffer.add_string buf (pad label);
          Buffer.add_string buf (String.sub row off len);
          Buffer.add_char buf '\n')
        rows
    done;
    Buffer.add_string buf legend;
    Buffer.add_char buf '\n';
    Buffer.contents buf
  end

(** Render an execution captured by the flight recorder; [highlight]
    defaults to the union of its verdicts' witness steps. *)
let render_flight ?width ?highlight (fl : Flight.t) : string =
  let highlight =
    match highlight with
    | Some h -> h
    | None ->
        List.concat_map
          (fun (v : Flight.verdict) -> v.Flight.witness_steps)
          (Flight.verdicts fl)
        |> List.sort_uniq compare
  in
  render ?width ~highlight
    ~names:(fun oid -> Flight.name_of fl oid)
    (Flight.history fl) (Flight.steps fl)
