(* The flight recorder: a bounded ring buffer of atomic steps, filled from
   Memory's per-step flight hook, plus everything needed to reproduce and
   explain the run afterwards — the object-name table, the history, run
   metadata (TM, schedule, seed) and verdict-provenance lines attached by
   checkers and detectors.

   A recorder is one execution: [Sim.replay] resets the installed recorder
   at the start of every replay, so after a run (or inside an explorer's
   [on_execution] callback) the buffer holds exactly that execution.

   Artifacts are JSONL ({!to_jsonl}/{!parse} round-trip exactly) or Chrome
   trace-event JSON ({!to_chrome}, Perfetto-loadable). *)

open Tm_base

type verdict = {
  source : string;  (** checker or detector name *)
  verdict : string;  (** e.g. "unsat", "violated" *)
  axiom : string;  (** the violated condition, in words *)
  witness_txns : Tid.t list;
  witness_steps : int list;  (** global step indices *)
}

type t = {
  cap : int;
  buf : Access_log.entry array;
  mutable total : int;  (** entries recorded into the ring *)
  mutable pre_dropped : int;
      (** drops declared by an imported artifact, so a re-export of a
          wrapped trace reports the same loss *)
  mutable names : string array;
  mutable history : History.t;
  mutable meta : (string * string) list;
  mutable verdicts : verdict list;
  steps_c : Tm_obs.Metrics.counter;
}

let default_cap = 65_536

let dummy_entry : Access_log.entry =
  {
    Access_log.index = 0;
    pid = 0;
    tid = None;
    oid = Oid.of_int 0;
    prim = Primitive.Read;
    response = Value.unit;
    changed = false;
  }

let create ?(cap = default_cap) () =
  if cap <= 0 then invalid_arg "Flight.create: cap must be positive";
  {
    cap;
    buf = Array.make cap dummy_entry;
    total = 0;
    pre_dropped = 0;
    names = [||];
    history = History.of_list [];
    meta = [];
    verdicts = [];
    steps_c =
      Tm_obs.Metrics.counter
        (Tm_obs.Sink.metrics Tm_obs.Sink.default)
        "flight_steps_total";
  }

let reset t =
  t.total <- 0;
  t.pre_dropped <- 0;
  t.names <- [||];
  t.history <- History.of_list [];
  t.meta <- [];
  t.verdicts <- []

(* O(1) per step: one array write, two increments. *)
let record t (e : Access_log.entry) =
  t.buf.(t.total mod t.cap) <- e;
  t.total <- t.total + 1;
  Tm_obs.Metrics.inc t.steps_c

let recorded t = t.pre_dropped + t.total
let dropped t = t.pre_dropped + max 0 (t.total - t.cap)

let steps t =
  let kept = min t.total t.cap in
  List.init kept (fun i -> t.buf.((t.total - kept + i) mod t.cap))

let find_step t index =
  let kept = min t.total t.cap in
  let rec scan i =
    if i >= kept then None
    else
      let e = t.buf.((t.total - kept + i) mod t.cap) in
      if e.Access_log.index = index then Some e else scan (i + 1)
  in
  scan 0

let set_names t names = t.names <- names

let name_of t (oid : Oid.t) =
  let i = Oid.to_int oid in
  if i >= 0 && i < Array.length t.names then t.names.(i)
  else Printf.sprintf "oid%d" i

let set_history t h = t.history <- h
let history t = t.history
let set_meta t k v = t.meta <- t.meta @ [ (k, v) ]
let meta t = t.meta
let meta_value t k = List.assoc_opt k t.meta
let add_verdict t v = t.verdicts <- t.verdicts @ [ v ]
let verdicts t = t.verdicts

(* ------------------------------------------------------------------ *)
(* The process-wide default recorder.  Like Sink.default, this lets the
   CLI enable recording without threading a recorder through every
   signature: Sim.replay records into it whenever one is installed. *)

let installed : t option ref = ref None
let install o = installed := o
let default () = !installed

let with_recorder fl f =
  let prev = !installed in
  installed := Some fl;
  Fun.protect ~finally:(fun () -> installed := prev) f

(* ------------------------------------------------------------------ *)
(* JSON codecs for values, primitives and events.  Values use a compact
   tagged encoding in which the JSON scalars stand for themselves
   (VInt -> number, VBool -> bool, VUnit -> null) and the structured
   constructors are one-key objects — unambiguous, so parsing inverts
   printing exactly. *)

module J = Tm_obs.Obs_json

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let rec value_json : Value.t -> J.t = function
  | Value.VUnit -> J.Null
  | Value.VBool b -> J.Bool b
  | Value.VInt n -> J.Int n
  | Value.VStr s -> J.Obj [ ("s", J.String s) ]
  | Value.VPair (a, b) -> J.Obj [ ("p", J.List [ value_json a; value_json b ]) ]
  | Value.VList l -> J.Obj [ ("l", J.List (List.map value_json l)) ]

let rec value_of_json : J.t -> Value.t = function
  | J.Null -> Value.VUnit
  | J.Bool b -> Value.VBool b
  | J.Int n -> Value.VInt n
  | J.Obj [ ("s", J.String s) ] -> Value.VStr s
  | J.Obj [ ("p", J.List [ a; b ]) ] ->
      Value.VPair (value_of_json a, value_of_json b)
  | J.Obj [ ("l", J.List l) ] -> Value.VList (List.map value_of_json l)
  | j -> bad "bad value %s" (J.to_string j)

(* total field accessors used by the parser — raise [Bad] on absence *)

let field name j =
  match J.member name j with
  | Some v -> v
  | None -> bad "missing field %S in %s" name (J.to_string j)

let int_field name j =
  match J.to_int (field name j) with
  | Some n -> n
  | None -> bad "field %S is not an int in %s" name (J.to_string j)

let str_field name j =
  match J.to_str (field name j) with
  | Some s -> s
  | None -> bad "field %S is not a string in %s" name (J.to_string j)

let bool_field name j =
  match field name j with
  | J.Bool b -> b
  | _ -> bad "field %S is not a bool in %s" name (J.to_string j)

let prim_json : Primitive.t -> J.t =
  let k name rest = J.Obj (("k", J.String name) :: rest) in
  function
  | Primitive.Read -> k "read" []
  | Primitive.Write v -> k "write" [ ("v", value_json v) ]
  | Primitive.Cas { expected; desired } ->
      k "cas" [ ("e", value_json expected); ("d", value_json desired) ]
  | Primitive.Fetch_add n -> k "faa" [ ("n", J.Int n) ]
  | Primitive.Try_lock p -> k "trylock" [ ("p", J.Int p) ]
  | Primitive.Unlock p -> k "unlock" [ ("p", J.Int p) ]
  | Primitive.Load_linked p -> k "ll" [ ("p", J.Int p) ]
  | Primitive.Store_conditional (p, v) ->
      k "sc" [ ("p", J.Int p); ("v", value_json v) ]

let prim_of_json (j : J.t) : Primitive.t =
  let value name = value_of_json (field name j) in
  match str_field "k" j with
  | "read" -> Primitive.Read
  | "write" -> Primitive.Write (value "v")
  | "cas" -> Primitive.Cas { expected = value "e"; desired = value "d" }
  | "faa" -> Primitive.Fetch_add (int_field "n" j)
  | "trylock" -> Primitive.Try_lock (int_field "p" j)
  | "unlock" -> Primitive.Unlock (int_field "p" j)
  | "ll" -> Primitive.Load_linked (int_field "p" j)
  | "sc" -> Primitive.Store_conditional (int_field "p" j, value "v")
  | k -> bad "unknown primitive kind %S" k

let op_json : Event.op -> J.t = function
  | Event.Begin -> J.Obj [ ("op", J.String "begin") ]
  | Event.Read x ->
      J.Obj [ ("op", J.String "read"); ("item", J.String (Item.name x)) ]
  | Event.Write (x, v) ->
      J.Obj
        [
          ("op", J.String "write");
          ("item", J.String (Item.name x));
          ("value", value_json v);
        ]
  | Event.Try_commit -> J.Obj [ ("op", J.String "commit") ]
  | Event.Abort_call -> J.Obj [ ("op", J.String "abort") ]

let op_of_json (j : J.t) : Event.op =
  match str_field "op" j with
  | "begin" -> Event.Begin
  | "read" -> Event.Read (Item.v (str_field "item" j))
  | "write" ->
      Event.Write (Item.v (str_field "item" j), value_of_json (field "value" j))
  | "commit" -> Event.Try_commit
  | "abort" -> Event.Abort_call
  | op -> bad "unknown op %S" op

let resp_json : Event.resp -> J.t = function
  | Event.R_ok -> J.String "ok"
  | Event.R_committed -> J.String "committed"
  | Event.R_aborted -> J.String "aborted"
  | Event.R_value v -> J.Obj [ ("value", value_json v) ]

let resp_of_json : J.t -> Event.resp = function
  | J.String "ok" -> Event.R_ok
  | J.String "committed" -> Event.R_committed
  | J.String "aborted" -> Event.R_aborted
  | J.Obj [ ("value", v) ] -> Event.R_value (value_of_json v)
  | j -> bad "bad resp %s" (J.to_string j)

(* ------------------------------------------------------------------ *)
(* JSONL artifact.  Schema (one object per line, in this order):
     {"type":"flight","version":1,"schema":1,"meta":{...}}
     {"type":"objects","names":[...]}
     {"type":"dropped","count":N}                  (only after wraparound)
     {"type":"step","i":I,"pid":P,"tid":T|null,"oid":O,"changed":B,
      "prim":{...},"resp":V}
     {"type":"event","kind":"inv"|"resp","tid":T,"pid":P,"at":A,
      "op":{...}[,"resp":...]}
     {"type":"verdict","source":S,"verdict":V,"axiom":A,
      "txns":[...],"steps":[...]}                                      *)

let version = Tm_obs.Schema.version

let step_json (e : Access_log.entry) : J.t =
  J.Obj
    [
      ("type", J.String "step");
      ("i", J.Int e.Access_log.index);
      ("pid", J.Int e.Access_log.pid);
      ( "tid",
        match e.Access_log.tid with
        | Some tid -> J.Int (Tid.to_int tid)
        | None -> J.Null );
      ("oid", J.Int (Oid.to_int e.Access_log.oid));
      ("changed", J.Bool e.Access_log.changed);
      ("prim", prim_json e.Access_log.prim);
      ("resp", value_json e.Access_log.response);
    ]

let step_of_json (j : J.t) : Access_log.entry =
  {
    Access_log.index = int_field "i" j;
    pid = int_field "pid" j;
    tid =
      (match field "tid" j with
      | J.Null -> None
      | J.Int n -> Some (Tid.v n)
      | _ -> bad "field \"tid\" is not an int or null");
    oid = Oid.of_int (int_field "oid" j);
    changed = bool_field "changed" j;
    prim = prim_of_json (field "prim" j);
    response = value_of_json (field "resp" j);
  }

let event_json (e : Event.t) : J.t =
  let common kind tid pid at op rest =
    J.Obj
      ([
         ("type", J.String "event");
         ("kind", J.String kind);
         ("tid", J.Int (Tid.to_int tid));
         ("pid", J.Int pid);
         ("at", J.Int at);
         ("op", op_json op);
       ]
      @ rest)
  in
  match e with
  | Event.Inv { tid; pid; op; at } -> common "inv" tid pid at op []
  | Event.Resp { tid; pid; op; resp; at } ->
      common "resp" tid pid at op [ ("resp", resp_json resp) ]

let event_of_json (j : J.t) : Event.t =
  let tid = Tid.v (int_field "tid" j) in
  let pid = int_field "pid" j in
  let at = int_field "at" j in
  let op = op_of_json (field "op" j) in
  match str_field "kind" j with
  | "inv" -> Event.Inv { tid; pid; op; at }
  | "resp" ->
      Event.Resp { tid; pid; op; resp = resp_of_json (field "resp" j); at }
  | k -> bad "bad event kind %S" k

let verdict_json (v : verdict) : J.t =
  J.Obj
    [
      ("type", J.String "verdict");
      ("source", J.String v.source);
      ("verdict", J.String v.verdict);
      ("axiom", J.String v.axiom);
      ("txns", J.List (List.map (fun t -> J.Int (Tid.to_int t)) v.witness_txns));
      ("steps", J.List (List.map (fun i -> J.Int i) v.witness_steps));
    ]

let verdict_of_json (j : J.t) : verdict =
  let ints name =
    match field name j with
    | J.List l ->
        List.map
          (fun v ->
            match J.to_int v with
            | Some n -> n
            | None -> bad "non-int in %S" name)
          l
    | _ -> bad "field %S is not a list" name
  in
  {
    source = str_field "source" j;
    verdict = str_field "verdict" j;
    axiom = str_field "axiom" j;
    witness_txns = List.map Tid.v (ints "txns");
    witness_steps = ints "steps";
  }

let jsonl_values t : J.t list =
  let head =
    J.Obj
      [
        ("type", J.String "flight");
        ("version", J.Int version);
        Tm_obs.Schema.field;
        ("meta", J.Obj (List.map (fun (k, v) -> (k, J.String v)) t.meta));
      ]
  in
  let objects =
    J.Obj
      [
        ("type", J.String "objects");
        ( "names",
          J.List (Array.to_list (Array.map (fun n -> J.String n) t.names)) );
      ]
  in
  let dropped_line =
    if dropped t = 0 then []
    else
      [ J.Obj [ ("type", J.String "dropped"); ("count", J.Int (dropped t)) ] ]
  in
  (head :: objects :: dropped_line)
  @ List.map step_json (steps t)
  @ List.map event_json (History.to_list t.history)
  @ List.map verdict_json t.verdicts

let to_jsonl t =
  String.concat "\n" (List.map J.to_string (jsonl_values t)) ^ "\n"

let write_jsonl t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl t))

let parse (text : string) : (t, string) result =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let t = create ~cap:(max 1 (List.length lines)) () in
  let events = ref [] in
  let handle_line j =
    match str_field "type" j with
    | "flight" -> (
        (match int_field "version" j with
        | v when v = version -> ()
        | v -> bad "unsupported flight version %d" v);
        match field "meta" j with
        | J.Obj kvs ->
            List.iter
              (fun (k, v) ->
                match J.to_str v with
                | Some s -> set_meta t k s
                | None -> bad "non-string meta %S" k)
              kvs
        | _ -> bad "flight line without meta object")
    | "objects" -> (
        match field "names" j with
        | J.List names ->
            t.names <-
              Array.of_list
                (List.map
                   (fun n ->
                     match J.to_str n with
                     | Some s -> s
                     | None -> bad "non-string object name")
                   names)
        | _ -> bad "objects line without names list")
    | "dropped" -> t.pre_dropped <- int_field "count" j
    | "step" -> record t (step_of_json j)
    | "event" -> events := event_of_json j :: !events
    | "verdict" -> add_verdict t (verdict_of_json j)
    | other -> bad "unknown line type %S" other
  in
  try
    List.iter
      (fun line ->
        match J.parse line with
        | Ok j -> handle_line j
        | Error msg -> raise (Bad msg))
      lines;
    t.history <- History.of_list (List.rev !events);
    Ok t
  with Bad msg -> Error msg

let load path : (t, string) result =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      parse text

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export (Perfetto-loadable).  Timestamps are logical
   step indices (reported as microseconds); each process is a chrome
   "thread", transactions are complete ("X") events on their process lane
   and every atomic step is an instant ("i") event. *)

let to_chrome t : J.t =
  let txn_events =
    List.filter_map
      (fun tid ->
        match History.positions_of_txn t.history tid with
        | None -> None
        | Some (first, last) ->
            let at i = Event.at (History.get t.history i) in
            let pid =
              Option.value ~default:0 (History.pid_of_txn t.history tid)
            in
            let status = History.show_status (History.status t.history tid) in
            Some
              (J.Obj
                 [
                   ("name", J.String (Tid.name tid));
                   ("cat", J.String "txn");
                   ("ph", J.String "X");
                   ("ts", J.Int (at first));
                   ("dur", J.Int (max 1 (at last - at first)));
                   ("pid", J.Int 0);
                   ("tid", J.Int pid);
                   ("args", J.Obj [ ("status", J.String status) ]);
                 ]))
      (History.txns t.history)
  in
  let step_events =
    List.map
      (fun (e : Access_log.entry) ->
        J.Obj
          [
            ( "name",
              J.String
                (Printf.sprintf "%s.%s"
                   (name_of t e.Access_log.oid)
                   (Primitive.kind_name e.Access_log.prim)) );
            ("cat", J.String "step");
            ("ph", J.String "i");
            ("s", J.String "t");
            ("ts", J.Int e.Access_log.index);
            ("pid", J.Int 0);
            ("tid", J.Int e.Access_log.pid);
            ( "args",
              J.Obj
                [
                  ( "tid",
                    match e.Access_log.tid with
                    | Some tid -> J.String (Tid.name tid)
                    | None -> J.Null );
                  ("changed", J.Bool e.Access_log.changed);
                ] );
          ])
      (steps t)
  in
  J.Obj
    [
      ("traceEvents", J.List (txn_events @ step_events));
      ("displayTimeUnit", J.String "ms");
    ]

let write_chrome t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string (to_chrome t));
      output_char oc '\n')
