(** Accumulates history events during a run.  The TM front-end
    ({!Tm_impl.Txn_api}) calls {!inv}/{!resp} around each transactional
    routine; [at] is the global step count at event time, placing events
    on the same axis as access-log steps. *)

open Tm_base

type t

val create : unit -> t
val add : t -> Event.t -> unit
val inv : t -> tid:Tid.t -> pid:int -> at:int -> Event.op -> unit
val resp : t -> tid:Tid.t -> pid:int -> at:int -> Event.op -> Event.resp -> unit
val history : t -> History.t
val length : t -> int

(** Allocation-free entry points for the payload-carrying routines: the
    columns are written directly, no [Event.op]/[Event.resp] value is
    built.  [resp_*] take the same item (and written value) as the
    matching [inv_*], mirroring the op carried by [Event.Resp]. *)

val inv_read : t -> tid:Tid.t -> pid:int -> at:int -> Item.t -> unit
val resp_read_value : t -> tid:Tid.t -> pid:int -> at:int -> Item.t -> Value.t -> unit
val resp_read_aborted : t -> tid:Tid.t -> pid:int -> at:int -> Item.t -> unit
val inv_write : t -> tid:Tid.t -> pid:int -> at:int -> Item.t -> Value.t -> unit
val resp_write_ok : t -> tid:Tid.t -> pid:int -> at:int -> Item.t -> Value.t -> unit
val resp_write_aborted : t -> tid:Tid.t -> pid:int -> at:int -> Item.t -> Value.t -> unit
