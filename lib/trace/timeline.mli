(** Figure-style timeline rendering: per-process lanes over a global
    column axis interleaving atomic steps with transactional markers
    (['('] begin, ['C'] committed, ['A'] aborted), an optional witness row
    (['^'] under the steps a verdict points at) and per-object contention
    rows (['x'] non-trivial / ['-'] trivial accesses of base objects
    touched by several processes).

    Output is pure ASCII, wrapped into bands of [width] columns with a
    step-index ruler on top of each band — the terminal-art counterpart of
    the paper's Figures 1-6. *)

open Tm_base

val render :
  ?width:int ->
  ?highlight:int list ->
  names:(Oid.t -> string) ->
  History.t ->
  Access_log.entry list ->
  string
(** [render ~names history steps] draws the execution.  [width] (default
    72) is the band width in columns; [highlight] lists global step
    indices to mark on the witness row. *)

val render_flight : ?width:int -> ?highlight:int list -> Flight.t -> string
(** Render a recorded execution; [highlight] defaults to the union of the
    recorder's verdict witness steps. *)

val legend : string
