(** Histories (Section 3): sequences of invocations and responses
    performed by transactions, with the derived notions the paper's
    definitions are built on — well-formedness, H|T, transaction status,
    the real-time precedence relation [<alpha], and the read/write
    projections used by the consistency conditions. *)

open Tm_base

type t

val of_list : Event.t list -> t
val to_list : t -> Event.t list
val events : t -> Event.t list
val length : t -> int

val get : t -> int -> Event.t
(** [get t i] is the event at position [i] (0-based). *)

val is_empty : t -> bool
val append : t -> Event.t list -> t

(** {1 Projections} *)

val per_txn : t -> Tid.t -> Event.t list
(** The paper's H|T: the longest subsequence of events of one
    transaction. *)

val by_pid : t -> int -> Event.t list

val txns : t -> Tid.t list
(** Transactions appearing in the history, ordered by first event. *)

val txn_count : t -> int
(** [List.length (txns t)], without materializing the list. *)

val pids : t -> int list
val pid_of_txn : t -> Tid.t -> int option

(** {1 Status} *)

type status = Committed | Aborted | Commit_pending | Live

val pp_status : Format.formatter -> status -> unit
val show_status : status -> string
val equal_status : status -> status -> bool

val status : t -> Tid.t -> status
val committed : t -> Tid.t -> bool
val aborted : t -> Tid.t -> bool
val commit_pending : t -> Tid.t -> bool

val live : t -> Tid.t -> bool
(** Live in the paper's sense: neither committed nor aborted — so
    commit-pending transactions are live. *)

val complete : t -> bool
(** No live transactions. *)

(** {1 Positions and ordering} *)

val positions_of_txn : t -> Tid.t -> (int * int) option
(** First and last event positions of a transaction — the event-axis
    rendering of its active execution interval. *)

val first_pos : t -> Tid.t -> int option
val last_pos : t -> Tid.t -> int option
val begin_pos : t -> Tid.t -> int option

val begin_order : t -> Tid.t list
(** Transactions ordered by begin invocation — the axis on which
    consistency partitions (Def. 3.3) are built. *)

val precedes : t -> Tid.t -> Tid.t -> bool
(** The paper's T1 [<alpha] T2: T1 is not live and its completion event
    precedes T2's begin invocation. *)

val concurrent : t -> Tid.t -> Tid.t -> bool
val sequential : t -> bool

(** {1 Read/write projections} *)

type read = {
  item : Item.t;
  value : Value.t;
  global : bool;
      (** true iff the transaction had not written the item before
          invoking the read (Section 3, "Consistency") *)
  pos : int;  (** position of the response event *)
}

val reads : t -> Tid.t -> read list
(** Successful reads in order, classified global/local. *)

val global_reads : t -> Tid.t -> (Item.t * Value.t) list

val writes : t -> Tid.t -> (Item.t * Value.t) list
(** Successful writes in order — the paper's T|write. *)

val write_set : t -> Tid.t -> Item.Set.t
val read_set : t -> Tid.t -> Item.Set.t

val writes_to_common_item : t -> Tid.t -> Tid.t -> bool
(** Do both transactions successfully write some common data item?
    (Conditions 1b / 2 of Definitions 3.2 / 3.3.) *)

(** {1 Well-formedness} *)

val well_formed : t -> (unit, string) result
(** Checks the paper's conditions (i)-(vi) per transaction, plus that no
    process interleaves two of its own transactions. *)

(** {1 Restriction} *)

val restrict : t -> Tid.Set.t -> t
(** Keep only the events of the given transactions — used to shrink
    checker inputs to the relevant core. *)

val truncate_at : t -> int -> t
(** [truncate_at t k] — the crash-truncated prefix: events timestamped at
    or before global step [k], i.e. the history a crash at step [k]
    leaves behind.  Operations whose response falls after the cut become
    pending; transactions mid-commit become commit-pending. *)

val pp : Format.formatter -> t -> unit
