(* Accumulates history events during a run.  The scheduler/TM front-end
   calls [inv]/[resp] around each transactional routine; [at] is the global
   step count at the time of the event, which places events on the same
   axis as access-log steps.

   Events are stored as struct-of-arrays columns rather than [Event.t]
   values: one packed metadata word (kind, op tag, resp tag, pid, tid),
   one step-count word, and one slot each in the item and value payload
   columns — about four words per event amortized, against a dozen or
   more for the records.  [history] materializes the chronological
   [Event.t] list only at snapshot time. *)

open Tm_base

(* meta word layout: bit 0 kind (0 inv / 1 resp), bits 1-3 op tag,
   bits 4-6 resp tag, bits 7-18 pid, bits 19+ tid *)
let kind_resp = 1
let optag_begin = 0
let optag_read = 1
let optag_write = 2
let optag_commit = 3
let optag_abort = 4
let rtag_ok = 0
let rtag_committed = 1
let rtag_aborted = 2
let rtag_value = 3
let pid_bits = 12
let tid_shift = 7 + pid_bits

type t = {
  meta : Intvec.t;
  ats : Intvec.t;
  items : Item.t Objvec.t;  (* payload of Read/Write ops; dummy otherwise *)
  vals : Value.t Objvec.t;  (* Write payload / R_value payload; dummy otherwise *)
}

let dummy_item : Item.t = Item.v "?"

let create () =
  {
    meta = Intvec.create ~chunk_bits:6 ();
    ats = Intvec.create ~chunk_bits:6 ();
    items = Objvec.create ~chunk_bits:6 ~dummy:dummy_item ();
    vals = Objvec.create ~chunk_bits:6 ~dummy:Value.unit ();
  }

let pack ~kind ~optag ~rtag ~pid ~tid =
  let ti = Tid.to_int tid in
  if pid lsr pid_bits <> 0 then invalid_arg "Recorder: pid out of range";
  if ti lsr (62 - tid_shift) <> 0 then invalid_arg "Recorder: tid out of range";
  kind lor (optag lsl 1) lor (rtag lsl 4) lor (pid lsl 7) lor (ti lsl tid_shift)

let push t ~tid ~pid ~at ~kind ~optag ~rtag ~item ~value =
  Intvec.push t.meta (pack ~kind ~optag ~rtag ~pid ~tid);
  Intvec.push t.ats at;
  Objvec.push t.items item;
  Objvec.push t.vals value

(* allocation-free entry points for the payload-carrying routines: no
   [Event.op]/[Event.resp] value is built on the hot path *)
let inv_read t ~tid ~pid ~at x =
  push t ~tid ~pid ~at ~kind:0 ~optag:optag_read ~rtag:0 ~item:x
    ~value:Value.unit

let resp_read_value t ~tid ~pid ~at x v =
  push t ~tid ~pid ~at ~kind:kind_resp ~optag:optag_read ~rtag:rtag_value
    ~item:x ~value:v

let resp_read_aborted t ~tid ~pid ~at x =
  push t ~tid ~pid ~at ~kind:kind_resp ~optag:optag_read ~rtag:rtag_aborted
    ~item:x ~value:Value.unit

let inv_write t ~tid ~pid ~at x v =
  push t ~tid ~pid ~at ~kind:0 ~optag:optag_write ~rtag:0 ~item:x ~value:v

let resp_write_ok t ~tid ~pid ~at x v =
  push t ~tid ~pid ~at ~kind:kind_resp ~optag:optag_write ~rtag:rtag_ok
    ~item:x ~value:v

let resp_write_aborted t ~tid ~pid ~at x v =
  push t ~tid ~pid ~at ~kind:kind_resp ~optag:optag_write ~rtag:rtag_aborted
    ~item:x ~value:v

let op_cols = function
  | Event.Begin -> (optag_begin, dummy_item, Value.unit)
  | Event.Read x -> (optag_read, x, Value.unit)
  | Event.Write (x, v) -> (optag_write, x, v)
  | Event.Try_commit -> (optag_commit, dummy_item, Value.unit)
  | Event.Abort_call -> (optag_abort, dummy_item, Value.unit)

let inv t ~tid ~pid ~at op =
  let optag, item, value = op_cols op in
  push t ~tid ~pid ~at ~kind:0 ~optag ~rtag:0 ~item ~value

let resp t ~tid ~pid ~at op resp =
  let optag, item, value = op_cols op in
  let rtag, value =
    match resp with
    | Event.R_ok -> (rtag_ok, value)
    | Event.R_committed -> (rtag_committed, value)
    | Event.R_aborted -> (rtag_aborted, value)
    | Event.R_value v -> (rtag_value, v)
  in
  push t ~tid ~pid ~at ~kind:kind_resp ~optag ~rtag ~item ~value

let add t e =
  match e with
  | Event.Inv { tid; pid; op; at } -> inv t ~tid ~pid ~at op
  | Event.Resp { tid; pid; op; resp = r; at } -> resp t ~tid ~pid ~at op r

let length t = Intvec.length t.meta

let event_at t i =
  let m = Intvec.unsafe_get t.meta i in
  let optag = (m lsr 1) land 0x7 in
  let pid = (m lsr 7) land 0xFFF in
  let tid = Tid.v (m lsr tid_shift) in
  let at = Intvec.unsafe_get t.ats i in
  let op =
    if optag = optag_begin then Event.Begin
    else if optag = optag_read then Event.Read (Objvec.unsafe_get t.items i)
    else if optag = optag_write then
      Event.Write (Objvec.unsafe_get t.items i, Objvec.unsafe_get t.vals i)
    else if optag = optag_commit then Event.Try_commit
    else Event.Abort_call
  in
  if m land 1 = 0 then Event.Inv { tid; pid; op; at }
  else
    let rtag = (m lsr 4) land 0x7 in
    let resp =
      if rtag = rtag_ok then Event.R_ok
      else if rtag = rtag_committed then Event.R_committed
      else if rtag = rtag_aborted then Event.R_aborted
      else Event.R_value (Objvec.unsafe_get t.vals i)
    in
    Event.Resp { tid; pid; op; resp; at }

let history t =
  History.of_list (List.init (length t) (fun i -> event_at t i))
