(* Histories (Section 3): sequences of invocations and responses performed
   by transactions, with the derived notions used throughout the paper —
   well-formedness, H|T, transaction status, the precedence relation, and
   the read/write projections that the consistency definitions build on. *)

open Tm_base

type t = { events : Event.t array }

let of_list events = { events = Array.of_list events }
let to_list t = Array.to_list t.events
let events = to_list
let length t = Array.length t.events
let get t i = t.events.(i)
let is_empty t = Array.length t.events = 0

let append t evs = { events = Array.append t.events (Array.of_list evs) }

(* ------------------------------------------------------------------ *)
(* Projections *)

(** [per_txn t tid] is the paper's H|T: the longest subsequence consisting
    only of events of [tid]. *)
let per_txn t tid =
  List.filter (fun e -> Tid.equal (Event.tid e) tid) (to_list t)

let by_pid t pid = List.filter (fun e -> Event.pid e = pid) (to_list t)

(** Transactions appearing in the history, ordered by first event. *)
let txns t =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  Array.iter
    (fun e ->
      let tid = Event.tid e in
      if not (Hashtbl.mem seen tid) then begin
        Hashtbl.add seen tid ();
        acc := tid :: !acc
      end)
    t.events;
  List.rev !acc

(* distinct transaction count without materializing the [txns] list *)
let txn_count t =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun e ->
      let tid = Event.tid e in
      if not (Hashtbl.mem seen tid) then Hashtbl.add seen tid ())
    t.events;
  Hashtbl.length seen

let pids t =
  List.sort_uniq compare (List.map Event.pid (to_list t))

let pid_of_txn t tid =
  match per_txn t tid with
  | [] -> None
  | e :: _ -> Some (Event.pid e)

(* ------------------------------------------------------------------ *)
(* Status *)

type status = Committed | Aborted | Commit_pending | Live
[@@deriving show { with_path = false }, eq]

let status t tid =
  let rec last_two acc = function
    | [] -> acc
    | e :: rest -> last_two (Some e) rest
  in
  match per_txn t tid with
  | [] -> Live
  | evs -> (
      match last_two None evs with
      | Some (Event.Resp { resp = Event.R_committed; _ }) -> Committed
      | Some (Event.Resp { resp = Event.R_aborted; _ }) -> Aborted
      | Some (Event.Inv { op = Event.Try_commit; _ }) -> Commit_pending
      | Some _ | None -> Live)

let committed t tid = equal_status (status t tid) Committed
let aborted t tid = equal_status (status t tid) Aborted
let commit_pending t tid = equal_status (status t tid) Commit_pending

(** Live in the paper's sense: neither committed nor aborted (so
    commit-pending transactions are live). *)
let live t tid =
  match status t tid with
  | Committed | Aborted -> false
  | Commit_pending | Live -> true

let complete t = List.for_all (fun tid -> not (live t tid)) (txns t)

(* ------------------------------------------------------------------ *)
(* Positions and ordering *)

let positions_of_txn t tid =
  let first = ref (-1) and last = ref (-1) in
  Array.iteri
    (fun i e ->
      if Tid.equal (Event.tid e) tid then begin
        if !first < 0 then first := i;
        last := i
      end)
    t.events;
  if !first < 0 then None else Some (!first, !last)

let first_pos t tid = Option.map fst (positions_of_txn t tid)
let last_pos t tid = Option.map snd (positions_of_txn t tid)

let begin_pos t tid =
  let n = Array.length t.events in
  let rec find i =
    if i >= n then None
    else
      match t.events.(i) with
      | Event.Inv { tid = tid'; op = Event.Begin; _ }
        when Tid.equal tid' tid ->
          Some i
      | _ -> find (i + 1)
  in
  find 0

(** Transactions ordered by the position of their begin invocation —
    the axis on which consistency partitions (Def. 3.3) are built. *)
let begin_order t =
  let tids = txns t in
  let key tid =
    match begin_pos t tid with Some i -> i | None -> max_int
  in
  List.sort (fun a b -> compare (key a) (key b)) tids

(** The paper's T1 <alpha T2: T1 is not live and its completion event
    precedes T2's begin invocation. *)
let precedes t t1 t2 =
  if live t t1 then false
  else
    match (last_pos t t1, begin_pos t t2) with
    | Some l1, Some b2 -> l1 < b2
    | _ -> false

let concurrent t t1 t2 =
  (not (Tid.equal t1 t2)) && (not (precedes t t1 t2))
  && not (precedes t t2 t1)

let sequential t =
  let tids = txns t in
  let rec pairs = function
    | [] -> true
    | x :: rest ->
        List.for_all (fun y -> not (concurrent t x y)) rest && pairs rest
  in
  pairs tids

(* ------------------------------------------------------------------ *)
(* Read/write projections used by the consistency definitions *)

type read = {
  item : Item.t;
  value : Value.t;
  global : bool;
      (** true iff the transaction had not written the item before invoking
          the read (Section 3, "Consistency") *)
  pos : int;  (** position of the response event in the history *)
}

(** Successful reads of [tid] in order, classified global/local. *)
let reads t tid =
  let written = Hashtbl.create 8 in
  let acc = ref [] in
  Array.iteri
    (fun i e ->
      match e with
      | Event.Inv { tid = tid'; op = Event.Write (x, _); _ }
        when Tid.equal tid' tid ->
          Hashtbl.replace written x ()
      | Event.Resp
          { tid = tid'; op = Event.Read x; resp = Event.R_value v; _ }
        when Tid.equal tid' tid ->
          let global = not (Hashtbl.mem written x) in
          acc := { item = x; value = v; global; pos = i } :: !acc
      | _ -> ())
    t.events;
  List.rev !acc

let global_reads t tid =
  List.filter_map
    (fun r -> if r.global then Some (r.item, r.value) else None)
    (reads t tid)

(** Successful writes of [tid] in order — the paper's T|write. *)
let writes t tid =
  let pending = ref None in
  let acc = ref [] in
  Array.iter
    (fun e ->
      match e with
      | Event.Inv { tid = tid'; op = Event.Write (x, v); _ }
        when Tid.equal tid' tid ->
          pending := Some (x, v)
      | Event.Resp { tid = tid'; op = Event.Write _; resp = Event.R_ok; _ }
        when Tid.equal tid' tid -> (
          match !pending with
          | Some wv ->
              acc := wv :: !acc;
              pending := None
          | None -> ())
      | _ -> ())
    t.events;
  List.rev !acc

let write_set t tid = Item.set_of_list (List.map fst (writes t tid))

let read_set t tid =
  Item.set_of_list (List.map (fun r -> r.item) (reads t tid))

(** [writes_to_common_item t t1 t2]: do both transactions successfully write
    some common data item?  (Used by conditions 1b / 2 of Defs 3.2/3.3.) *)
let writes_to_common_item t t1 t2 =
  not (Item.Set.is_empty (Item.Set.inter (write_set t t1) (write_set t t2)))

(* ------------------------------------------------------------------ *)
(* Well-formedness (Section 3, conditions (i)-(vi)) *)

let well_formed t : (unit, string) result =
  let err tid fmt = Fmt.kstr (fun s -> Error (Tid.name tid ^ ": " ^ s)) fmt in
  let check_txn tid =
    let evs = per_txn t tid in
    (* (i) alternating, starting with begin . ok *)
    let rec alternating expecting_inv = function
      | [] -> Ok ()
      | e :: rest ->
          if Event.is_inv e <> expecting_inv then
            err tid "invocations and responses do not alternate"
          else alternating (not expecting_inv) rest
    in
    let ( let* ) = Result.bind in
    let* () =
      match evs with
      | Event.Inv { op = Event.Begin; _ }
        :: Event.Resp { op = Event.Begin; resp = Event.R_ok; _ }
        :: _ ->
          Ok ()
      | [ Event.Inv { op = Event.Begin; _ } ] ->
          (* the begin invocation itself is still pending (e.g. a begin
             that spins on a global object): a legitimate live txn *)
          Ok ()
      | _ -> err tid "does not start with begin . ok"
    in
    let* () = alternating true evs in
    (* responses match invocations; (ii)-(v) *)
    let rec matched = function
      | [] | [ _ ] -> Ok ()
      | Event.Inv { op; _ } :: (Event.Resp { op = op'; resp; _ } as r) :: rest
        ->
          if not (Event.equal_op op op') then
            err tid "response for a different operation"
          else
            let ok =
              match (op, resp) with
              | Event.Begin, Event.R_ok -> true
              | Event.Read _, (Event.R_value _ | Event.R_aborted) -> true
              | Event.Write _, (Event.R_ok | Event.R_aborted) -> true
              | Event.Try_commit, (Event.R_committed | Event.R_aborted) ->
                  true
              | Event.Abort_call, Event.R_aborted -> true
              | _ -> false
            in
            if ok then matched (r :: rest) else err tid "ill-typed response"
      | Event.Resp _ :: rest -> matched rest
      | Event.Inv _ :: _ -> err tid "invocation followed by invocation"
    in
    let* () = matched evs in
    (* (vi) nothing after C_T or A_T *)
    let rec no_tail = function
      | [] -> Ok ()
      | Event.Resp { resp = Event.R_committed | Event.R_aborted; _ } :: rest
        ->
          if rest = [] then Ok () else err tid "events after C_T/A_T"
      | _ :: rest -> no_tail rest
    in
    no_tail evs
  in
  let rec all = function
    | [] -> Ok ()
    | tid :: rest -> (
        match check_txn tid with Ok () -> all rest | Error _ as e -> e)
  in
  (* each process runs its transactions sequentially *)
  let process_sequential =
    let current = Hashtbl.create 8 in
    Array.for_all
      (fun e ->
        let pid = Event.pid e and tid = Event.tid e in
        match Hashtbl.find_opt current pid with
        | Some tid' when not (Tid.equal tid tid') ->
            if live t tid' then false
            else begin
              Hashtbl.replace current pid tid;
              true
            end
        | _ ->
            Hashtbl.replace current pid tid;
            true)
      t.events
  in
  if not process_sequential then
    Error "a process interleaves two of its own transactions"
  else all (txns t)

(* ------------------------------------------------------------------ *)
(* Restriction (used to shrink checker inputs) *)

(** Keep only the events of transactions in [keep]. *)
let restrict t keep =
  of_list
    (List.filter (fun e -> Tid.Set.mem (Event.tid e) keep) (to_list t))

(** The crash-truncated prefix: events timestamped at or before global
    step [k].  This is exactly the history a crash at step [k] leaves
    behind — operations whose response falls after the cut become
    pending, transactions whose commit response falls after it become
    commit-pending.  Safety conditions are prefix-closed, so a verdict
    that flips from Sat to Unsat under truncation exposes either a
    checker bug or an adaptivity artefact (see the crash-closure lint
    pass). *)
let truncate_at t k = of_list (List.filter (fun e -> Event.at e <= k) (to_list t))

let pp ppf t =
  Fmt.pf ppf "%a"
    Fmt.(list ~sep:(any "@\n") Event.pp_compact)
    (to_list t)
