(** The flight recorder: a bounded ring buffer of atomic steps (filled from
    {!Tm_base.Memory}'s flight hook), the run's history and metadata, and
    verdict-provenance lines — everything needed to re-render, replay and
    explain an execution after the fact.

    One recorder holds one execution: [Sim.replay] resets the installed
    recorder before running, so after a replay (or inside an explorer
    callback) the buffer is exactly that execution's step sequence.

    Export formats: JSONL ({!to_jsonl}; re-imported losslessly by {!parse})
    and Chrome trace-event JSON ({!to_chrome}, loadable in Perfetto). *)

open Tm_base

type verdict = {
  source : string;  (** checker or detector name *)
  verdict : string;  (** e.g. ["unsat"], ["violated"] *)
  axiom : string;  (** the violated condition, in words *)
  witness_txns : Tid.t list;  (** offending transactions *)
  witness_steps : int list;  (** offending global step indices *)
}
(** Minimal provenance for a negative verdict — who rejected the run, which
    axiom failed, and the witness to highlight on the timeline. *)

type t

val default_cap : int
(** 65536 steps. *)

val create : ?cap:int -> unit -> t
(** @raise Invalid_argument if [cap <= 0]. *)

val reset : t -> unit
(** Empty the buffer and drop names, history, meta and verdicts. *)

val record : t -> Access_log.entry -> unit
(** O(1); overwrites the oldest retained step once [cap] is exceeded. *)

val recorded : t -> int
(** Steps ever recorded (retained or not). *)

val dropped : t -> int
(** Steps lost to wraparound. *)

val steps : t -> Access_log.entry list
(** Retained steps, oldest first. *)

val find_step : t -> int -> Access_log.entry option
(** Look up a retained step by its global index ([Access_log.entry.index]),
    e.g. to render a lint finding's witness; [None] once the ring has
    dropped it. *)

(** {1 Run context} *)

val set_names : t -> string array -> unit
(** Object-name table, indexed by oid. *)

val name_of : t -> Oid.t -> string
(** Falls back to ["oid7"]-style names beyond the table. *)

val set_history : t -> History.t -> unit
val history : t -> History.t

val set_meta : t -> string -> string -> unit
(** Append a key/value (e.g. ["tm"], ["schedule"], ["seed"], ["stop"]). *)

val meta : t -> (string * string) list
val meta_value : t -> string -> string option

val add_verdict : t -> verdict -> unit
val verdicts : t -> verdict list

(** {1 The process-wide recorder}

    Mirrors [Sink.default]: installing a recorder makes [Sim.replay] record
    every execution into it without threading it through signatures. *)

val install : t option -> unit
val default : unit -> t option

val with_recorder : t -> (unit -> 'a) -> 'a
(** Install the recorder, run the thunk, restore the previous one. *)

(** {1 Export / import} *)

val to_jsonl : t -> string
(** The artifact format (one JSON object per line; schema in
    docs/OBSERVABILITY.md).  [parse (to_jsonl t)] reconstructs [t] up to
    ring capacity, and re-exporting the parse yields the same string. *)

val write_jsonl : t -> string -> unit

val parse : string -> (t, string) result
val load : string -> (t, string) result
(** [load path] reads and parses a dumped artifact. *)

val to_chrome : t -> Tm_obs.Obs_json.t
(** Chrome trace-event JSON: transactions as complete events, steps as
    instants, logical step indices as timestamps. *)

val write_chrome : t -> string -> unit

(** {1 Codec internals shared with other exporters} *)

val value_json : Value.t -> Tm_obs.Obs_json.t
val prim_json : Primitive.t -> Tm_obs.Obs_json.t
val event_json : Event.t -> Tm_obs.Obs_json.t
