(** Synchronization-cost metering over access logs: the price a TM pays
    for its corner of the PCL triangle, in the cost model of the TM
    lower-bound literature — RMRs (cache-coherent model), RMW-class
    steps, read-after-remote-write patterns, protected-data footprint vs
    data set, capacity/time per transaction, and wasted work split by
    abort cause.  A pure fold over the log: identical logs yield
    identical costs. *)

open Tm_base

val rmw_class : Primitive.t -> bool
(** cas / fetch-and-add / trylock / store-conditional — the atomic
    read-modify-write class. *)

type txn_cost = {
  tid : Tid.t;
  steps : int;
  rmrs : int;
  rmw_steps : int;
  read_after_remote_write : int;
  footprint : int;  (** objects accessed with a non-trivial primitive *)
  capacity : int;  (** distinct base objects accessed *)
  data_items : int;  (** |read set ∪ write set|; 0 without a history *)
  committed : bool;
  aborted : bool;
  contended : bool;
}

type t = {
  steps : int;
  rmrs : int;
  rmw_steps : int;
  read_after_remote_write : int;
  footprint_max : int;
  capacity_max : int;
  commits : int;
  aborts : int;
  wasted_steps : int;
  wasted_contended : int;
  wasted_uncontended : int;
  txns : txn_cost list;  (** sorted by tid; [] in merged aggregates *)
}

val zero : t

val merge : t -> t -> t
(** Pointwise sum (max for the highwater marks); drops per-txn rows. *)

val analyse : ?history:Tm_trace.History.t -> Access_log.entry list -> t
(** Derive the cost of one execution.  The history, when given, supplies
    commit/abort status and data-set sizes; contention comes from the
    log itself (Section-3 contention on base objects). *)

val analyse_log : ?history:Tm_trace.History.t -> Access_log.t -> t
(** [analyse] over the log structure itself: an index walk of the flat
    columns, no entry records or list rescans. *)

val register : ?labels:Tm_obs.Metrics.labels -> t -> unit
(** Fold the cost into {!Tm_obs.Sink.default}: [cost_*_total] counters
    and [cost_txn_*] histograms, all carrying [labels]. *)

val pp_txn : Format.formatter -> txn_cost -> unit
