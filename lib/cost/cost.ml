(* Synchronization-cost metering: what a TM *pays* to stay on its corner
   of the PCL triangle, derived after the fact from an access log (and
   optionally the history, for commit/abort attribution).

   The metrics follow the cost model of the DAP/TM lower-bound
   literature ("On the Cost of Concurrency in Transactional Memory",
   "Progressive Transactional Memory in Time and Space"):

   - RMRs, cache-coherent model: a step by process [p] on base object
     [o] is a remote memory reference iff [p]'s cached copy of [o] is
     invalid — its first access ever, or some other process applied a
     non-trivial primitive to [o] since [p]'s last access.
   - Expensive synchronization patterns: RMW-class primitives (cas,
     fetch-and-add, trylock, store-conditional) and reads of an object
     whose last non-trivial writer is another process
     (read-after-remote-write — the pattern that forces a cache-line
     transfer even for a trivial step).
   - Protected-data footprint: base objects a transaction applied a
     non-trivial primitive to, against the size of its data set —
     strict DAP keeps the footprint inside the data set; lock-table and
     clock TMs pay for metadata beyond it.
   - Capacity / time for progressive TMs: distinct base objects
     accessed (capacity) and steps taken (time) per transaction.
   - Wasted work: steps burned by transactions that ultimately aborted,
     split by whether the transaction contended with another on some
     base object (the paper's Section-3 contention) — a contended abort
     is the price of a conflict, an uncontended abort is pure
     implementation overhead.

   Everything here is a pure fold over the log: no wall clock, no
   randomness — identical logs yield identical costs, which is what the
   determinism tests pin down. *)

open Tm_base

(** RMW-class primitives: the atomic read-modify-write instructions the
    "laws of order" results show cannot be avoided by strongly
    non-commutative operations. *)
let rmw_class (p : Primitive.t) =
  match p with
  | Primitive.Cas _ | Primitive.Fetch_add _ | Primitive.Try_lock _
  | Primitive.Store_conditional _ ->
      true
  | Primitive.Read | Primitive.Write _ | Primitive.Unlock _
  | Primitive.Load_linked _ ->
      false

type txn_cost = {
  tid : Tid.t;
  steps : int;  (** time: atomic steps attributed to the transaction *)
  rmrs : int;
  rmw_steps : int;
  read_after_remote_write : int;
  footprint : int;  (** protected data: objects accessed non-trivially *)
  capacity : int;  (** distinct base objects accessed *)
  data_items : int;  (** |read set ∪ write set|, 0 without a history *)
  committed : bool;
  aborted : bool;
  contended : bool;  (** contends with some other transaction (Sec. 3) *)
}

type t = {
  steps : int;  (** all steps in the log, attributed or not *)
  rmrs : int;
  rmw_steps : int;
  read_after_remote_write : int;
  footprint_max : int;
  capacity_max : int;
  commits : int;
  aborts : int;
  wasted_steps : int;  (** steps of transactions that aborted *)
  wasted_contended : int;
  wasted_uncontended : int;
  txns : txn_cost list;  (** sorted by tid; [] in merged aggregates *)
}

let zero =
  {
    steps = 0;
    rmrs = 0;
    rmw_steps = 0;
    read_after_remote_write = 0;
    footprint_max = 0;
    capacity_max = 0;
    commits = 0;
    aborts = 0;
    wasted_steps = 0;
    wasted_contended = 0;
    wasted_uncontended = 0;
    txns = [];
  }

(** Pointwise sum (maxima for the footprint/capacity highwater marks);
    per-transaction rows are dropped — a merged cost is an aggregate. *)
let merge a b =
  {
    steps = a.steps + b.steps;
    rmrs = a.rmrs + b.rmrs;
    rmw_steps = a.rmw_steps + b.rmw_steps;
    read_after_remote_write =
      a.read_after_remote_write + b.read_after_remote_write;
    footprint_max = max a.footprint_max b.footprint_max;
    capacity_max = max a.capacity_max b.capacity_max;
    commits = a.commits + b.commits;
    aborts = a.aborts + b.aborts;
    wasted_steps = a.wasted_steps + b.wasted_steps;
    wasted_contended = a.wasted_contended + b.wasted_contended;
    wasted_uncontended = a.wasted_uncontended + b.wasted_uncontended;
    txns = [];
  }

(* per-transaction accumulator *)
type acc = {
  mutable a_steps : int;
  mutable a_rmrs : int;
  mutable a_rmw : int;
  mutable a_rarw : int;
  mutable a_objs : Oid.Set.t;
  mutable a_prot : Oid.Set.t;
}

let analyse_core ?history ~(each_step : (pid:int -> oid:Oid.t -> prim:Primitive.t -> tid:Tid.t option -> unit) -> unit)
    ~(contentions : unit -> Tm_dap.Contention.contention list) () : t =
  (* invalidation epochs: [ver] counts non-trivial steps per object,
     [seen] the epoch each process last observed per object *)
  let ver : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let seen : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let last_writer : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let accs : (int, acc) Hashtbl.t = Hashtbl.create 16 in
  let acc_of tid =
    let k = Tid.to_int tid in
    match Hashtbl.find_opt accs k with
    | Some a -> a
    | None ->
        let a =
          {
            a_steps = 0;
            a_rmrs = 0;
            a_rmw = 0;
            a_rarw = 0;
            a_objs = Oid.Set.empty;
            a_prot = Oid.Set.empty;
          }
        in
        Hashtbl.add accs k a;
        a
  in
  let steps = ref 0
  and rmrs = ref 0
  and rmw = ref 0
  and rarw = ref 0 in
  each_step (fun ~pid ~oid ~prim ~tid ->
      let o = Oid.to_int oid in
      let epoch = Option.value ~default:0 (Hashtbl.find_opt ver o) in
      let remote =
        match Hashtbl.find_opt seen (pid, o) with
        | None -> true (* cold miss: the first access is always remote *)
        | Some last -> last < epoch
      in
      let is_rmw = rmw_class prim in
      let is_rarw =
        Primitive.trivial prim
        &&
        match Hashtbl.find_opt last_writer o with
        | Some w -> w <> pid
        | None -> false
      in
      let epoch' =
        if Primitive.non_trivial prim then begin
          Hashtbl.replace ver o (epoch + 1);
          Hashtbl.replace last_writer o pid;
          epoch + 1
        end
        else epoch
      in
      (* the step leaves [p] holding a valid copy at the new epoch *)
      Hashtbl.replace seen (pid, o) epoch';
      incr steps;
      if remote then incr rmrs;
      if is_rmw then incr rmw;
      if is_rarw then incr rarw;
      match tid with
      | None -> ()
      | Some tid ->
          let a = acc_of tid in
          a.a_steps <- a.a_steps + 1;
          if remote then a.a_rmrs <- a.a_rmrs + 1;
          if is_rmw then a.a_rmw <- a.a_rmw + 1;
          if is_rarw then a.a_rarw <- a.a_rarw + 1;
          a.a_objs <- Oid.Set.add (Oid.to_int oid) a.a_objs;
          if Primitive.non_trivial prim then
            a.a_prot <- Oid.Set.add (Oid.to_int oid) a.a_prot);
  let contended_tids =
    List.fold_left
      (fun s (c : Tm_dap.Contention.contention) ->
        Tid.Set.add (Tid.to_int c.t1) (Tid.Set.add (Tid.to_int c.t2) s))
      Tid.Set.empty (contentions ())
  in
  let txns =
    Hashtbl.fold
      (fun k (a : acc) rows ->
        let tid = Tid.v k in
        let committed, aborted, data_items =
          match history with
          | None -> (false, false, 0)
          | Some h ->
              ( Tm_trace.History.committed h tid,
                Tm_trace.History.aborted h tid,
                Item.Set.cardinal
                  (Item.Set.union
                     (Tm_trace.History.read_set h tid)
                     (Tm_trace.History.write_set h tid)) )
        in
        {
          tid;
          steps = a.a_steps;
          rmrs = a.a_rmrs;
          rmw_steps = a.a_rmw;
          read_after_remote_write = a.a_rarw;
          footprint = Oid.Set.cardinal a.a_prot;
          capacity = Oid.Set.cardinal a.a_objs;
          data_items;
          committed;
          aborted;
          contended = Tid.Set.mem k contended_tids;
        }
        :: rows)
      accs []
    |> List.sort (fun t1 t2 -> Tid.compare t1.tid t2.tid)
  in
  List.fold_left
    (fun c (tc : txn_cost) ->
      let c =
        {
          c with
          footprint_max = max c.footprint_max tc.footprint;
          capacity_max = max c.capacity_max tc.capacity;
          commits = (c.commits + if tc.committed then 1 else 0);
          aborts = (c.aborts + if tc.aborted then 1 else 0);
        }
      in
      if tc.aborted then
        {
          c with
          wasted_steps = c.wasted_steps + tc.steps;
          wasted_contended =
            (c.wasted_contended + if tc.contended then tc.steps else 0);
          wasted_uncontended =
            (c.wasted_uncontended + if tc.contended then 0 else tc.steps);
        }
      else c)
    {
      zero with
      steps = !steps;
      rmrs = !rmrs;
      rmw_steps = !rmw;
      read_after_remote_write = !rarw;
      txns;
    }
    txns

let analyse ?history (log : Access_log.entry list) : t =
  analyse_core ?history
    ~each_step:(fun f ->
      List.iter
        (fun (e : Access_log.entry) ->
          f ~pid:e.pid ~oid:e.oid ~prim:e.prim ~tid:e.tid)
        log)
    ~contentions:(fun () -> Tm_dap.Contention.all_contentions log)
    ()

(** [analyse] over the log structure itself: an index walk of the flat
    columns, no entry records or list rescans. *)
let analyse_log ?history (log : Access_log.t) : t =
  analyse_core ?history
    ~each_step:(fun f ->
      for i = 0 to Access_log.length log - 1 do
        f ~pid:(Access_log.pid_at log i) ~oid:(Access_log.oid_at log i)
          ~prim:(Access_log.prim_at log i)
          ~tid:(Access_log.tid_at log i)
      done)
    ~contentions:(fun () -> Tm_dap.Contention.all_contentions_log log)
    ()

(* ------------------------------------------------------------------ *)
(* Telemetry registration: fold a cost into the default sink so watch
   snapshots and `pcl_tm report` see the same numbers. *)

let register ?(labels = []) (c : t) =
  let open Tm_obs in
  Sink.add ~labels "cost_steps_total" c.steps;
  Sink.add ~labels "cost_rmr_total" c.rmrs;
  Sink.add ~labels "cost_rmw_total" c.rmw_steps;
  Sink.add ~labels "cost_rarw_total" c.read_after_remote_write;
  Sink.add
    ~labels:(("cause", "contended") :: labels)
    "cost_wasted_steps_total" c.wasted_contended;
  Sink.add
    ~labels:(("cause", "uncontended") :: labels)
    "cost_wasted_steps_total" c.wasted_uncontended;
  List.iter
    (fun (tc : txn_cost) ->
      Sink.observe ~labels "cost_txn_footprint"
        (float_of_int tc.footprint);
      Sink.observe ~labels "cost_txn_capacity" (float_of_int tc.capacity);
      Sink.observe ~labels "cost_txn_steps" (float_of_int tc.steps))
    c.txns

let pp_txn ppf (tc : txn_cost) =
  Fmt.pf ppf
    "%s steps=%d rmrs=%d rmw=%d rarw=%d footprint=%d capacity=%d data=%d%s%s"
    (Tid.name tc.tid) tc.steps tc.rmrs tc.rmw_steps
    tc.read_after_remote_write tc.footprint tc.capacity tc.data_items
    (if tc.committed then " committed"
     else if tc.aborted then " aborted"
     else "")
    (if tc.contended then " contended" else "")
