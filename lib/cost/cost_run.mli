(** The per-TM × workload cost matrix: the proof's figure schedules
    (fig1, fig1b, fig2, beta, beta-prime) plus the stock explore sweep
    under sleep-set DPOR, with an expected-cost table (the "PCL tax")
    checked against the observed rows.  Deterministic: the JSONL is
    byte-identical across runs. *)

open Tm_impl

type row = {
  tm : string;
  workload : string;
  status : string;  (** "ok", or "blocked:<phase>" / "no-flip" / "crash" *)
  executions : int;
  cost : Cost.t;
}

val workload_names : string list

val figure_rows : Tm_intf.impl -> row list
(** Figure workloads only; status rows when the Section-4 construction
    does not exist for the TM. *)

val explore_row :
  ?max_nodes:int ->
  ?max_executions:int ->
  ?on_execution:(unit -> unit) ->
  Tm_intf.impl ->
  row
(** Costs summed over every complete execution of the stock sweep;
    [on_execution] is a progress tick (for watch mode). *)

val rows_for :
  ?max_nodes:int ->
  ?max_executions:int ->
  ?on_execution:(unit -> unit) ->
  Tm_intf.impl ->
  row list
(** [figure_rows] followed by [explore_row], each registered into the
    default sink under [("tm", _); ("workload", _)] labels. *)

val row_fields : row -> (string * int) list
val field_value : row -> string -> int
val row_json : row -> Tm_obs.Obs_json.t

(** {1 The expected-cost table} *)

type sign = NonZero | Zero

type expect = { tm : string; workload : string; field : string; sign : sign }

val table : expect list

val check : row list -> (string * string * string list) list
(** Expected-cost violations plus the universal cost laws
    ([rmrs <= steps], [rmw <= steps], wasted-work partition, nonempty
    "ok" rows pay at least one RMR).  Empty means the matrix is within
    expectations. *)

val check_json :
  (string * string * string list) list -> Tm_obs.Obs_json.t

(** {1 Artifacts} *)

val jsonl_values : row list -> Tm_obs.Obs_json.t list
val to_jsonl : row list -> string
val pp_table : Format.formatter -> row list -> unit
val pp_expectations : Format.formatter -> unit -> unit
