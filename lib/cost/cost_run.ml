(* The cost observatory's front end: a per-TM × workload cost matrix
   over the proof's figure schedules and the stock explore sweep, with
   an expected-cost table — the "PCL tax" each TM is predicted to pay
   for its corner of the triangle — checked against the observed rows.

   Workloads:
   - fig1 / fig1b — alpha1.s1.alpha3 and alpha1.alpha3' (Figure 1);
   - fig2         — alpha1.alpha2.s2.alpha5;
   - beta / beta-prime — the Figure 3-6 executions;
   - explore      — every complete execution of the stock
     {!Tm_probe.Explore_sweep} workload under sleep-set DPOR, costs
     summed across executions.

   TMs whose Section-4 construction does not exist (the blockers and the
   no-flip weak TMs) get status rows instead of figure costs: the
   construction failing *is* the observation.  Everything is
   deterministic — schedules are scripted, the DPOR sweep is seedless —
   so the JSONL is byte-identical across runs. *)

open Tm_runtime
open Tm_impl
open Pcl

type row = {
  tm : string;
  workload : string;
  status : string;  (** "ok", or "blocked:<phase>" / "no-flip" / "crash" *)
  executions : int;
  cost : Cost.t;  (** {!Cost.zero} when the workload could not run *)
}

let figure_workloads (c : Constructions.t) =
  [
    ("fig1", Constructions.alpha1_s1_alpha3 c);
    ("fig1b", Constructions.alpha1_alpha3' c);
    ( "fig2",
      Constructions.alpha1 c @ Constructions.alpha2 c
      @ [ Constructions.s2_atom; Schedule.Until_done 5 ] );
    ("beta", Constructions.beta c);
    ("beta-prime", Constructions.beta' c);
  ]

let workload_names =
  [ "fig1"; "fig1b"; "fig2"; "beta"; "beta-prime"; "explore" ]

let failure_status = function
  | Constructions.Liveness_failure { phase; _ } -> "blocked:" ^ phase
  | Constructions.Consistency_no_flip _ -> "no-flip"
  | Constructions.Crash _ -> "crash"

(** The figure rows for one TM: real costs when the Section-4
    construction builds, status rows otherwise. *)
let figure_rows (impl : Tm_intf.impl) : row list =
  let tm = Registry.name impl in
  match Constructions.build impl with
  | Error f ->
      let status = failure_status f in
      List.filter_map
        (fun workload ->
          if workload = "explore" then None
          else
            Some { tm; workload; status; executions = 0; cost = Cost.zero })
        workload_names
  | Ok c ->
      List.map
        (fun (workload, atoms) ->
          let run = Harness.run impl atoms in
          let cost =
            Cost.analyse_log ~history:run.Harness.sim.Sim.history
              (Tm_base.Memory.log run.Harness.sim.Sim.mem)
          in
          { tm; workload; status = "ok"; executions = 1; cost })
        (figure_workloads c)

(** The explore row: costs summed over every complete execution of the
    stock sweep (sleep-set DPOR keeps it small and canonical). *)
let explore_row ?max_nodes ?max_executions ?(on_execution = fun () -> ())
    (impl : Tm_intf.impl) : row =
  let total = ref Cost.zero and execs = ref 0 in
  let _profile, _stats =
    Tm_probe.Explore_sweep.run ?max_nodes ?max_executions ~por:true
      ~on_execution:(fun ~strongest:_ (r : Sim.result) ->
        incr execs;
        total :=
          Cost.merge !total
            (Cost.analyse_log ~history:r.Sim.history (Tm_base.Memory.log r.Sim.mem));
        on_execution ())
      impl
  in
  {
    tm = Registry.name impl;
    workload = "explore";
    status = "ok";
    executions = !execs;
    cost = !total;
  }

let rows_for ?max_nodes ?max_executions ?on_execution (impl : Tm_intf.impl)
    : row list =
  let rows =
    figure_rows impl
    @ [ explore_row ?max_nodes ?max_executions ?on_execution impl ]
  in
  List.iter
    (fun (r : row) ->
      Cost.register
        ~labels:[ ("tm", r.tm); ("workload", r.workload) ]
        r.cost)
    rows;
  rows

(* ------------------------------------------------------------------ *)
(* Rendering *)

let row_fields (r : row) : (string * int) list =
  [
    ("steps", r.cost.Cost.steps);
    ("rmrs", r.cost.Cost.rmrs);
    ("rmw", r.cost.Cost.rmw_steps);
    ("rarw", r.cost.Cost.read_after_remote_write);
    ("footprint", r.cost.Cost.footprint_max);
    ("capacity", r.cost.Cost.capacity_max);
    ("commits", r.cost.Cost.commits);
    ("aborts", r.cost.Cost.aborts);
    ("wasted", r.cost.Cost.wasted_steps);
    ("wasted_contended", r.cost.Cost.wasted_contended);
    ("wasted_uncontended", r.cost.Cost.wasted_uncontended);
  ]

let field_value (r : row) (field : string) : int =
  match List.assoc_opt field (row_fields r) with Some v -> v | None -> 0

let row_json (r : row) : Tm_obs.Obs_json.t =
  let open Tm_obs.Obs_json in
  Obj
    ([
       Tm_obs.Schema.field;
       ("type", String "cost_row");
       ("tm", String r.tm);
       ("workload", String r.workload);
       ("status", String r.status);
       ("executions", Int r.executions);
     ]
    @ List.map (fun (k, v) -> (k, Int v)) (row_fields r))

(* ------------------------------------------------------------------ *)
(* The expected-cost table: which costs each TM is predicted to pay —
   its PCL tax.  Checked on the explore row (every TM has one): every
   consistent TM pays RMW-class synchronization; the deferred-update
   TMs additionally pay wasted (aborted) work; pram-local pays nothing
   at all — zero RMRs, zero RMW, zero wasted work — which is exactly
   the theorem's trade: parallel and live only by giving up the
   consistency flip.  Pinned empirically and kept qualitative
   (zero / nonzero), so the table survives workload-size tweaks. *)

type sign = NonZero | Zero

type expect = { tm : string; workload : string; field : string; sign : sign }

let table : expect list =
  let e tm field sign = { tm; workload = "explore"; field; sign } in
  [
    (* tl-lock serializes through a global trylock: pure mutual
       exclusion — RMW on every txn.  Under the sweep's adversarial
       interleavings its trylock acquisitions fail and retry, so it
       wastes work too (a blocking TM spins; it does not park). *)
    e "tl-lock" "rmw" NonZero;
    e "tl-lock" "wasted" NonZero;
    (* pram-local gives up consistency instead of paying: no shared
       base-object traffic at all — zero RMRs, zero RMW-class steps,
       zero wasted work *)
    e "pram-local" "rmrs" Zero;
    e "pram-local" "rmw" Zero;
    e "pram-local" "wasted" Zero;
    (* the obstruction-free deferred-update TMs pay in aborted work *)
    e "dstm" "rmw" NonZero;
    e "dstm" "wasted" NonZero;
    (* si-clock: CAS on the clock and on ownership records *)
    e "si-clock" "rmw" NonZero;
    (* the candidate claims all three corners; the explore pair is the
       conflict its progressiveness resolves by aborting *)
    e "candidate" "rmw" NonZero;
    (* tl2-clock and norec block under contention rather than abort
       uncontended transactions *)
    e "tl2-clock" "rmw" NonZero;
    e "norec" "rmw" NonZero;
    e "llsc-candidate" "rmw" NonZero;
    (* lp-progressive resolves every conflict by aborting self at
       encounter time: CAS-acquired locators are RMW-class and the
       aborted attempts are wasted work — the progressive tax *)
    e "lp-progressive" "rmw" NonZero;
    e "lp-progressive" "wasted" NonZero;
    (* pwf-readers: one CAS per updater commit on the snapshot root;
       read-only transactions take no RMW-class step at all *)
    e "pwf-readers" "rmw" NonZero;
  ]

(** Violations of the expected-cost table plus the universal cost laws
    (RMRs and RMW-class steps never exceed steps; the wasted-work split
    is a partition; an "ok" row that touched shared memory at all paid
    at least one cold-miss RMR — pram-local's zero-step rows are the
    legitimate exception, and the table pins them to zero).  Returns
    [(tm, workload, violated labels)]. *)
let check (rows : row list) : (string * string * string list) list =
  let violations = ref [] in
  let violate (r : row) label =
    violations :=
      (match !violations with
      | (tm, w, fields) :: rest when tm = r.tm && w = r.workload ->
          (tm, w, fields @ [ label ]) :: rest
      | l -> (r.tm, r.workload, [ label ]) :: l)
  in
  List.iter
    (fun (r : row) ->
      (* universal laws *)
      if r.cost.Cost.rmrs > r.cost.Cost.steps then violate r "rmrs<=steps";
      if r.cost.Cost.rmw_steps > r.cost.Cost.steps then
        violate r "rmw<=steps";
      if
        r.cost.Cost.wasted_steps
        <> r.cost.Cost.wasted_contended + r.cost.Cost.wasted_uncontended
      then violate r "wasted-partition";
      if r.status = "ok" && r.cost.Cost.steps > 0 && r.cost.Cost.rmrs = 0
      then violate r "rmrs>0";
      (* the per-TM table *)
      List.iter
        (fun ex ->
          if ex.tm = r.tm && ex.workload = r.workload && r.status = "ok"
          then
            let v = field_value r ex.field in
            match ex.sign with
            | NonZero when v = 0 -> violate r (ex.field ^ "!=0")
            | Zero when v <> 0 -> violate r (ex.field ^ "=0")
            | NonZero | Zero -> ())
        table)
    rows;
  List.rev !violations

let check_json (violations : (string * string * string list) list) :
    Tm_obs.Obs_json.t =
  let open Tm_obs.Obs_json in
  Obj
    [
      Tm_obs.Schema.field;
      ("type", String "cost_check");
      ("violations", Int (List.length violations));
      ( "detail",
        List
          (List.map
             (fun (tm, w, fields) ->
               Obj
                 [
                   ("tm", String tm);
                   ("workload", String w);
                   ("fields", List (List.map (fun f -> String f) fields));
                 ])
             violations) );
    ]

(** The whole artifact: one head line, one line per row, one check
    line — every line stamped with the shared schema version. *)
let jsonl_values (rows : row list) : Tm_obs.Obs_json.t list =
  let open Tm_obs.Obs_json in
  let tms = List.sort_uniq compare (List.map (fun (r : row) -> r.tm) rows) in
  let head =
    Obj
      [
        Tm_obs.Schema.field;
        ("type", String "cost");
        ("tms", List (List.map (fun t -> String t) tms));
        ( "workloads",
          List (List.map (fun w -> String w) workload_names) );
        ("rows", Int (List.length rows));
      ]
  in
  (head :: List.map row_json rows) @ [ check_json (check rows) ]

let to_jsonl rows =
  String.concat "\n"
    (List.map Tm_obs.Obs_json.to_string (jsonl_values rows))
  ^ "\n"

(* the human-readable matrix *)
let pp_table ppf (rows : row list) =
  Fmt.pf ppf "%-15s %-11s %-15s %5s %6s %5s %5s %5s %5s %4s %4s %6s@\n"
    "tm" "workload" "status" "execs" "steps" "rmrs" "rmw" "rarw" "foot"
    "com" "abo" "wasted";
  List.iter
    (fun (r : row) ->
      Fmt.pf ppf "%-15s %-11s %-15s %5d %6d %5d %5d %5d %5d %4d %4d %6d@\n"
        r.tm r.workload r.status r.executions r.cost.Cost.steps
        r.cost.Cost.rmrs r.cost.Cost.rmw_steps
        r.cost.Cost.read_after_remote_write r.cost.Cost.footprint_max
        r.cost.Cost.commits r.cost.Cost.aborts r.cost.Cost.wasted_steps)
    rows

let pp_expectations ppf () =
  Fmt.pf ppf "expected-cost table (the PCL tax, on the explore row):@\n";
  List.iter
    (fun ex ->
      Fmt.pf ppf "  %-15s %-9s %s@\n" ex.tm ex.field
        (match ex.sign with
        | NonZero -> "expected nonzero"
        | Zero -> "expected zero"))
    table
