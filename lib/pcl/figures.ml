(* Text rendering of the paper's Figures 1-6 from a claims report:
   the critical-step searches (Figs 1-2), the schedules of beta and beta'
   (Figs 3-4), and the per-process read/write tables (Figs 5-6). *)

open Tm_base
open Tm_impl

let pp_step ppf (e : Tm_base.Access_log.entry) =
  Fmt.pf ppf "step #%d of p%d: oid %d %a -> %a" e.index e.pid
    (Oid.to_int e.oid) Primitive.pp_compact e.prim Value.pp_compact
    e.response

let pp_fig12 ppf (which : [ `Fig1 | `Fig2 ]) (c : Constructions.t) =
  let flip, k, writer, reader, item =
    match which with
    | `Fig1 -> (c.Constructions.flip1, c.Constructions.k1, 1, 3, "b1")
    | `Fig2 -> (c.Constructions.flip2, c.Constructions.k2, 2, 5, "b2")
  in
  Fmt.pf ppf
    "s%d = step %d/%d of T%d's solo run; before it T%d reads %s=%a, after \
     it %s=%a@\n  s%d is %a"
    writer k flip.Critical_step.writer_total writer reader item
    Value.pp_compact flip.Critical_step.before item Value.pp_compact
    flip.Critical_step.after writer pp_step flip.Critical_step.step

let pp_schedule_line ppf (name, atoms) =
  Fmt.pf ppf "%-6s = %a" name Tm_runtime.Schedule.pp atoms

(** One row of Figure 5/6: "T3  b1:1 b4:0 | b3(1) c3(1) e1_3(1) e3_4(1)  C" *)
let pp_txn_row (side : Claims.side) ppf (spec : Static_txn.spec) =
  let tid = spec.Static_txn.tid in
  let r = side.Claims.run in
  match Harness.outcome r tid with
  | None -> Fmt.pf ppf "%-3s (did not run)" (Tid.name tid)
  | Some o ->
      let reads =
        List.map
          (fun (x, v) -> Fmt.str "%s:%a" (Item.name x) Value.pp_compact v)
          o.Static_txn.read_values
      in
      let writes =
        List.map
          (fun (x, v) -> Fmt.str "%s(%a)" (Item.name x) Value.pp_compact v)
          spec.Static_txn.writes
      in
      let status =
        match o.Static_txn.status with
        | Static_txn.Committed -> "C"
        | Static_txn.Aborted -> "A"
        | Static_txn.Unstarted -> "?"
      in
      Fmt.pf ppf "%-3s %-28s | %-44s %s" (Tid.name tid)
        (String.concat " " reads)
        (String.concat " " writes)
        status

let pp_table tids (side : Claims.side) ppf () =
  List.iter
    (fun t -> Fmt.pf ppf "  %a@\n" (pp_txn_row side) (Txns.spec_of (Tid.v t)))
    tids

let pp_check ppf (c : Claims.value_check) =
  Fmt.pf ppf "%-24s expected %a, got %a  %s" c.Claims.label Value.pp_compact
    c.Claims.expected
    Fmt.(option ~none:(any "-") Value.pp_compact)
    c.Claims.got
    (if c.Claims.ok then "ok" else "** MISMATCH **")

(* ------------------------------------------------------------------ *)
(* Per-process lane rendering: the visual layout of the paper's
   Figures 5-6 — one lane per process, segments in schedule order with
   the single adversarial steps s1/s2 marked. *)

let segment_label (run : Harness.run) (atom : Tm_runtime.Schedule.atom)
    (steps : int) : int * string =
  match atom with
  | Tm_runtime.Schedule.Steps (pid, 1) -> (pid, Printf.sprintf "[s:p%d]" pid)
  | Tm_runtime.Schedule.Steps (pid, _) ->
      (pid, Printf.sprintf "[T%d^%d]" pid steps)
  | Tm_runtime.Schedule.Until_done pid ->
      let status =
        match Harness.outcome run (Tid.v pid) with
        | Some o -> (
            match o.Static_txn.status with
            | Static_txn.Committed -> "C"
            | Static_txn.Aborted -> "A"
            | Static_txn.Unstarted -> "?")
        | None -> "?"
      in
      (pid, Printf.sprintf "[T%d..%s]" pid status)
  | Tm_runtime.Schedule.Crash pid -> (pid, Printf.sprintf "[X:p%d]" pid)
  | Tm_runtime.Schedule.Park pid -> (pid, Printf.sprintf "[zz:p%d]" pid)
  | Tm_runtime.Schedule.Unpark pid -> (pid, Printf.sprintf "[wk:p%d]" pid)
  | Tm_runtime.Schedule.Poison pid -> (pid, Printf.sprintf "[px:p%d]" pid)

(** Render the schedule of a side as per-process lanes. *)
let pp_lanes ppf ((side : Claims.side), (atoms : Tm_runtime.Schedule.atom list))
    =
  let run = side.Claims.run in
  let steps = run.Harness.sim.Tm_runtime.Sim.report.Tm_runtime.Schedule.steps_per_atom in
  let rec pad l n = if List.length l >= n then l else pad (l @ [ 0 ]) n in
  let steps = pad steps (List.length atoms) in
  let segments = List.map2 (fun a s -> segment_label run a s) atoms steps in
  let pids =
    List.sort_uniq compare (List.map (fun (pid, _) -> pid) segments)
  in
  List.iter
    (fun pid ->
      Fmt.pf ppf "  p%d " pid;
      List.iter
        (fun (p, label) ->
          if p = pid then Fmt.string ppf label
          else Fmt.string ppf (String.make (String.length label) '.'))
        segments;
      Fmt.pf ppf "@\n")
    pids

let pp_report ppf (r : Claims.report) =
  Fmt.pf ppf "=== PCL construction against %s ===@\n" r.Claims.impl_name;
  match r.Claims.outcome with
  | Error f ->
      Fmt.pf ppf "construction stopped: %a@\n" Constructions.pp_failure f
  | Ok d ->
      let c = d.Claims.cons in
      Fmt.pf ppf "-- Figure 1 --@\n%a@\n" (fun ppf () -> pp_fig12 ppf `Fig1 c) ();
      Fmt.pf ppf "-- Figure 2 --@\n%a@\n" (fun ppf () -> pp_fig12 ppf `Fig2 c) ();
      Fmt.pf ppf "-- Figure 3 --@\n%a@\n" pp_schedule_line
        ("beta", Constructions.beta c);
      Fmt.pf ppf "-- Figure 4 --@\n%a@\n" pp_schedule_line
        ("beta'", Constructions.beta' c);
      Fmt.pf ppf "claim 1 (commit invoked in alpha1): %b@\n" d.Claims.claim1;
      Fmt.pf ppf "claim 2 (s1 non-trivial %b; o1 read by T3 after/before s1 \
                  %b/%b; s2 non-trivial %b)@\n"
        d.Claims.claim2_s1_nontrivial d.Claims.claim2_o1_read_by_t3
        d.Claims.claim2_o1_read_by_t3' d.Claims.claim2_s2_nontrivial;
      Fmt.pf ppf "claim 3 (o1 <> o2): %b   premises: s1 stable %b, alpha2 \
                  non-interfering %b@\n"
        d.Claims.claim3 d.Claims.premise_s1_stable
        d.Claims.premise_alpha2_noninterfering;
      Fmt.pf ppf "-- Figure 5 (values read in beta) --@\n";
      pp_lanes ppf (d.Claims.beta, Constructions.beta c);
      Fmt.pf ppf "%a" (pp_table [ 1; 2; 3; 4; 7 ] d.Claims.beta) ();
      List.iter (fun c -> Fmt.pf ppf "  %a@\n" pp_check c)
        d.Claims.beta.Claims.checks;
      Fmt.pf ppf "-- Figure 6 (values read in beta') --@\n";
      pp_lanes ppf (d.Claims.beta', Constructions.beta' c);
      Fmt.pf ppf "%a" (pp_table [ 1; 2; 5; 6; 7 ] d.Claims.beta') ();
      List.iter (fun c -> Fmt.pf ppf "  %a@\n" pp_check c)
        d.Claims.beta'.Claims.checks;
      (match d.Claims.indistinguishable_p7 with
      | Ok () ->
          Fmt.pf ppf "alpha7 and alpha7' are indistinguishable to p7@\n"
      | Error why -> Fmt.pf ppf "p7 distinguishes the executions: %s@\n" why);
      Fmt.pf ppf "contradiction reached: %b@\n" d.Claims.contradiction

(* ------------------------------------------------------------------ *)
(* Flight-recorder timeline rendering (`pcl_tm figures --render`):
   re-execute each figure's schedule with a recorder installed and draw
   per-process step lanes with the critical steps s1/s2 highlighted. *)

let record_run ?budget (impl : Tm_intf.impl)
    (atoms : Tm_runtime.Schedule.atom list) : Harness.run * Tm_trace.Flight.t
    =
  let fl = Tm_trace.Flight.create () in
  let run =
    Tm_trace.Flight.with_recorder fl (fun () -> Harness.run ?budget impl atoms)
  in
  Tm_trace.Flight.set_meta fl "tm" (Registry.name impl);
  (run, fl)

(** Replay a schedule under a fresh recorder and render its timeline;
    [highlight_steps] picks the steps to mark, given the finished run. *)
let render_timeline ?width ?budget (impl : Tm_intf.impl)
    (atoms : Tm_runtime.Schedule.atom list)
    ~(highlight_steps : Harness.run -> int list) : string =
  let run, fl = record_run ?budget impl atoms in
  Tm_trace.Timeline.render_flight ?width ~highlight:(highlight_steps run) fl

(** Figures 1-6 as per-process timeline art.  The critical steps are
    located by ordinal — s1 is the k1-th step of p1, s2 the k2-th step of
    p2 — which is stable across the different schedules they appear in. *)
let render_constructions ?width (c : Constructions.t) : string =
  let impl = c.Constructions.impl in
  let s_of run pid k =
    match Harness.nth_step_of_pid run pid k with
    | Some (e : Access_log.entry) -> [ e.Access_log.index ]
    | None -> []
  in
  let s1 run = s_of run 1 c.Constructions.k1 in
  let s2 run = s_of run 2 c.Constructions.k2 in
  let fig title atoms highlight_steps =
    Printf.sprintf "-- %s --\n%s" title
      (render_timeline ?width impl atoms ~highlight_steps)
  in
  String.concat "\n"
    [
      fig "Figure 1 (top): alpha1 . s1 . alpha3, s1 highlighted"
        (Constructions.alpha1_s1_alpha3 c)
        s1;
      fig "Figure 1 (bottom): alpha1 . alpha3', s1 not taken"
        (Constructions.alpha1_alpha3' c)
        (fun _ -> []);
      fig "Figure 2: alpha1 . alpha2 . s2 . alpha5, s2 highlighted"
        (Constructions.alpha1 c @ Constructions.alpha2 c
        @ [ Constructions.s2_atom; Tm_runtime.Schedule.Until_done 5 ])
        s2;
      fig "Figure 3/5: beta, s1 and s2 highlighted"
        (Constructions.beta c)
        (fun run -> s1 run @ s2 run);
      fig "Figure 4/6: beta', s2 and s1 highlighted"
        (Constructions.beta' c)
        (fun run -> s1 run @ s2 run);
    ]

