(* The triangle verdict: for each TM, which of Parallelism / Consistency /
   Liveness hold, with concrete evidence for every violation.  This is the
   executable form of the paper's Section-5 discussion — every
   implementation must lose at least one leg, and the harness shows which.

   Evidence sources:
   - the construction itself (critical-step search failures),
   - strict-DAP violations on the beta/beta' access logs and on two
     dedicated scenarios (a disjoint pair, and the 3-transaction chain that
     exposes status-word contention in DSTM-style algorithms),
   - obstruction-freedom violations and solo-progress failures,
   - figure-table mismatches, cross-checked by running the weak-adaptive
     checker on a restricted sub-history (the mechanized delta arguments).
*)

open Tm_base
open Tm_runtime
open Tm_impl
open Tm_trace

type leg = Holds | Violated of string

let pp_leg ppf = function
  | Holds -> Fmt.string ppf "holds"
  | Violated why -> Fmt.pf ppf "VIOLATED — %s" why

type t = {
  impl_name : string;
  parallelism : leg;
  consistency : leg;
  liveness : leg;
  notes : string list;
}

(* ------------------------------------------------------------------ *)
(* Dedicated scenarios *)

let scenario_run ?(budget = 2_000) (impl : Tm_intf.impl)
    (specs : Static_txn.spec list) (schedule : Schedule.atom list) :
    Sim.result * (Tid.t, Static_txn.outcome) Hashtbl.t =
  let outcomes = Hashtbl.create 8 in
  let setup mem recorder =
    let handle =
      Txn_api.instantiate impl mem recorder ~items:(Static_txn.items_of specs)
    in
    List.map
      (fun s -> (s.Static_txn.pid, Static_txn.program handle s ~outcomes))
      specs
  in
  (Sim.replay ~budget setup schedule, outcomes)

let x_item = Item.v "x"
let y_item = Item.v "y"

(** Two fully disjoint transactions run one after the other: any contention
    at all (e.g. on a global clock) refutes strict DAP. *)
let disjoint_pair_violations impl =
  let specs =
    [
      { Static_txn.tid = Tid.v 11; pid = 11; reads = [ x_item ];
        writes = [ (x_item, Value.int 1) ] };
      { Static_txn.tid = Tid.v 12; pid = 12; reads = [ y_item ];
        writes = [ (y_item, Value.int 1) ] };
    ]
  in
  let sim, _ =
    scenario_run impl specs
      [ Schedule.Until_done 11; Schedule.Until_done 12 ]
  in
  Tm_dap.Strict_dap.violations
    ~data_sets:(Static_txn.data_sets specs)
    sim.Sim.log

(** The chain scenario: Ta writes x, Tb writes x and y, Tc writes y.  Tb is
    suspended mid-transaction; Ta and Tc (mutually disjoint) then both have
    to deal with Tb — DSTM-style ownership makes them contend on Tb's
    status word. *)
let chain_violations impl =
  let specs =
    [
      { Static_txn.tid = Tid.v 11; pid = 11; reads = [];
        writes = [ (x_item, Value.int 1) ] };
      { Static_txn.tid = Tid.v 12; pid = 12; reads = [];
        writes = [ (x_item, Value.int 2); (y_item, Value.int 2) ] };
      { Static_txn.tid = Tid.v 13; pid = 13; reads = [];
        writes = [ (y_item, Value.int 3) ] };
    ]
  in
  (* how many solo steps does Tb need? *)
  let solo, _ = scenario_run impl specs [ Schedule.Until_done 12 ] in
  let n = solo.Sim.steps_of 12 in
  let sim, _ =
    scenario_run impl specs
      [ Schedule.Steps (12, max 0 (n - 1)); Schedule.Until_done 11;
        Schedule.Until_done 13 ]
  in
  Tm_dap.Strict_dap.violations
    ~data_sets:(Static_txn.data_sets specs)
    sim.Sim.log

(** Solo progress under a suspended conflicting enemy: Tb (writes x,y)
    suspended mid-commit; Ta (writes x) must still finish solo if the TM is
    obstruction-free. *)
let suspended_enemy_progress impl : (unit, string) result =
  let specs =
    [
      { Static_txn.tid = Tid.v 11; pid = 11; reads = [ x_item ];
        writes = [ (x_item, Value.int 1) ] };
      { Static_txn.tid = Tid.v 12; pid = 12; reads = [];
        writes = [ (x_item, Value.int 2); (y_item, Value.int 2) ] };
    ]
  in
  let solo, _ = scenario_run impl specs [ Schedule.Until_done 12 ] in
  let n = solo.Sim.steps_of 12 in
  let try_at k =
    let sim, outcomes =
      scenario_run impl specs
        [ Schedule.Steps (12, k); Schedule.Until_done 11 ]
    in
    match sim.Sim.report.Schedule.stop with
    | Schedule.Budget_exhausted _ ->
        Error
          (Printf.sprintf
             "T_a cannot finish solo while a conflicting transaction is \
              suspended after %d steps (blocking)"
             k)
    | Schedule.Crashed (_, e) -> Error (Printexc.to_string e)
    | Schedule.Completed -> (
        match Hashtbl.find_opt outcomes (Tid.v 11) with
        | Some o when o.Static_txn.status <> Static_txn.Unstarted -> Ok ()
        | _ -> Error "T_a did not run")
  in
  let rec all k = if k > n then Ok () else
      match try_at k with Ok () -> all (k + 1) | Error e -> Error e
  in
  all 0

(* ------------------------------------------------------------------ *)
(* Consistency evidence via the weak-adaptive checker *)

let writers_of_item (x : Item.t) : Tid.t list =
  List.filter_map
    (fun (s : Static_txn.spec) ->
      if List.mem_assoc x s.writes then Some s.tid else None)
    Txns.specs

(** Restrict a history to the transactions relevant to a failed check and
    ask the weak-adaptive checker; Unsat is hard evidence that no WAC
    serialization exists. *)
let wac_refutes ?(budget = 2_000_000) (h : History.t)
    (c : Claims.value_check) : bool =
  let keep =
    Tid.Set.of_list
      ((c.Claims.tid :: writers_of_item c.Claims.item)
      @ [ Tid.v 1; Tid.v 2 ])
  in
  let sub = History.restrict h keep in
  match Tm_consistency.Weak_adaptive.check ~budget sub with
  | Tm_consistency.Spec.Unsat -> true
  | Tm_consistency.Spec.Sat | Tm_consistency.Spec.Out_of_budget -> false

(** delta1 evidence for the no-flip case: T1 solo to commit, then T3 solo;
    the paper's opening case analysis shows the resulting history cannot be
    WAC if T3 still reads 0 for b1. *)
let delta1_refuted ?(budget = 2_000_000) impl : bool =
  let r = Harness.run impl Constructions.delta1 in
  let keep = Tid.Set.of_list [ Tid.v 1; Tid.v 3 ] in
  let sub = History.restrict r.Harness.sim.Sim.history keep in
  match Tm_consistency.Weak_adaptive.check ~budget sub with
  | Tm_consistency.Spec.Unsat -> true
  | _ -> false

(* ------------------------------------------------------------------ *)

let describe_dap_violation mem_names (v : Tm_dap.Strict_dap.violation) =
  Fmt.str "%a" (Tm_dap.Strict_dap.pp_violation ~name_of:mem_names) v

let assess ?budget (impl : Tm_intf.impl) : t =
  let (module M : Tm_intf.S) = impl in
  let tm_l = [ ("tm", M.name) ] in
  Tm_obs.Sink.span ~labels:tm_l "pcl.assess" (fun () ->
  let report =
    Tm_obs.Sink.time ~labels:tm_l "pcl_analyse_wall_ns" (fun () ->
        Claims.analyse ?budget impl)
  in
  let notes = ref [] in
  let note fmt = Fmt.kstr (fun s -> notes := s :: !notes) fmt in
  (* Parallelism: scenarios + harness logs *)
  let scenario_viols = disjoint_pair_violations impl @ chain_violations impl in
  let harness_viols, premise_broken =
    match report.Claims.outcome with
    | Ok d ->
        ( Claims.(d.beta.dap_violations @ d.beta'.dap_violations),
          not (d.Claims.premise_s1_stable
               && d.Claims.premise_alpha2_noninterfering) )
    | Error _ -> ([], false)
  in
  let parallelism =
    match (scenario_viols, harness_viols) with
    | [], [] when not premise_broken -> Holds
    | vs, vs' ->
        let v = match vs @ vs' with v :: _ -> Some v | [] -> None in
        let why =
          match v with
          | Some v ->
              Fmt.str "%s and %s contend while disjoint" (Tid.name v.t1)
                (Tid.name v.t2)
          | None -> "disjoint-access premise of the construction broken"
        in
        Violated why
  in
  (* Liveness *)
  let liveness =
    let from_construction =
      match report.Claims.outcome with
      | Error (Constructions.Liveness_failure { phase; detail }) ->
          Some (Fmt.str "%s: %s" phase detail)
      | _ -> None
    in
    let of_viols =
      match report.Claims.outcome with
      | Ok d -> Claims.(d.beta.of_violations @ d.beta'.of_violations)
      | Error _ -> []
    in
    match from_construction with
    | Some why -> Violated why
    | None -> (
        match of_viols with
        | v :: _ -> Violated (Fmt.str "%a" Tm_dap.Obstruction_freedom.pp_violation v)
        | [] -> (
            match suspended_enemy_progress impl with
            | Ok () -> Holds
            | Error why -> Violated why))
  in
  (* Consistency *)
  let consistency =
    match report.Claims.outcome with
    | Error (Constructions.Consistency_no_flip { writer; reader; item; value })
      ->
        let confirmed = delta1_refuted impl in
        Violated
          (Fmt.str
             "%s never observes %s's committed write to %s (reads %a)%s"
             (Tid.name reader) (Tid.name writer) (Item.name item)
             Value.pp_compact value
             (if confirmed then
                "; weak-adaptive checker refutes the delta1 history"
              else ""))
    | Error _ -> Holds (* failed earlier for another reason *)
    | Ok d ->
        if premise_broken then begin
          (* figure mismatches cannot be attributed to consistency when the
             DAP premises of the construction are broken *)
          if Claims.failed_checks d.Claims.beta <> []
             || Claims.failed_checks d.Claims.beta' <> []
          then
            note
              "figure tables deviate, but the construction's \
               disjoint-access premises were already broken (parallelism \
               failure)";
          Holds
        end
        else begin
          let failures =
            Claims.failed_checks d.Claims.beta
            @ Claims.failed_checks d.Claims.beta'
          in
          match failures with
          | [] ->
              if d.Claims.contradiction then
                note
                  "IMPOSSIBLE: all claims hold and alpha7 is \
                   indistinguishable from alpha7' — the PCL theorem is \
                   contradicted";
              (match d.Claims.indistinguishable_p7 with
              | Ok () -> ()
              | Error why -> note "p7 distinguishes beta from beta': %s" why);
              Holds
          | c :: _ ->
              let h =
                if List.exists (fun f -> f == c)
                     (Claims.failed_checks d.Claims.beta)
                then Claims.(d.beta.run.Harness.sim.Sim.history)
                else Claims.(d.beta'.run.Harness.sim.Sim.history)
              in
              let refuted = wac_refutes h c in
              Violated
                (Fmt.str "%s: expected %a, read %a%s" c.Claims.label
                   Value.pp_compact c.Claims.expected
                   Fmt.(option ~none:(any "nothing") Value.pp_compact)
                   c.Claims.got
                   (if refuted then
                      "; weak-adaptive checker refutes the history"
                    else ""))
        end
  in
  List.iter
    (fun (leg, v) ->
      Tm_obs.Sink.incr
        ~labels:
          (("leg", leg)
          :: ("status", match v with Holds -> "holds" | Violated _ -> "violated")
          :: tm_l)
        "pcl_leg_total")
    [ ("parallelism", parallelism); ("consistency", consistency);
      ("liveness", liveness) ];
  {
    impl_name = M.name;
    parallelism;
    consistency;
    liveness;
    notes = List.rev !notes;
  })

let pp ppf (t : t) =
  Fmt.pf ppf "%-12s P: %a@\n%-12s C: %a@\n%-12s L: %a" t.impl_name pp_leg
    t.parallelism "" pp_leg t.consistency "" pp_leg t.liveness;
  List.iter (fun n -> Fmt.pf ppf "@\n%-12s note: %s" "" n) t.notes

let _ = describe_dap_violation
