(* Running the proof's transactions against a TM under scripted schedules.
   Every execution is replayed from the initial configuration C0, so
   configurations are identified with schedule prefixes. *)

open Tm_base
open Tm_runtime
open Tm_impl

type run = {
  sim : Sim.result;
  outcomes : (Tid.t, Static_txn.outcome) Hashtbl.t;
}

let default_budget = 50_000

(** Replay [schedule] from C0 with all seven transactions spawned. *)
let run ?(budget = default_budget) (impl : Tm_intf.impl)
    (schedule : Schedule.atom list) : run =
  let outcomes = Hashtbl.create 16 in
  let setup mem recorder =
    let handle =
      Txn_api.instantiate impl mem recorder ~items:Txns.items
    in
    List.map
      (fun s ->
        (s.Static_txn.pid, Static_txn.program handle s ~outcomes))
      Txns.specs
  in
  let sim = Sim.replay ~budget setup schedule in
  { sim; outcomes }

let outcome r tid = Hashtbl.find_opt r.outcomes tid

let committed r tid =
  match outcome r tid with
  | Some o -> o.Static_txn.status = Static_txn.Committed
  | None -> false

let aborted r tid =
  match outcome r tid with
  | Some o -> o.Static_txn.status = Static_txn.Aborted
  | None -> false

(** Value transaction [tid] read for [x] in this run, if it got that far. *)
let read_of r tid x =
  Option.bind (outcome r tid) (fun o -> Static_txn.read_value o x)

let stopped_normally r =
  match r.sim.Sim.report.Schedule.stop with
  | Schedule.Completed -> true
  | Schedule.Budget_exhausted _ | Schedule.Crashed _ -> false

let budget_exhausted_pid r =
  match r.sim.Sim.report.Schedule.stop with
  | Schedule.Budget_exhausted { Schedule.stalled_pid; _ } -> Some stalled_pid
  | _ -> None

(** The [n]-th step (1-based) taken by [pid] in the run's log. *)
let nth_step_of_pid r pid n : Access_log.entry option =
  let rec go k = function
    | [] -> None
    | (e : Access_log.entry) :: rest ->
        if e.pid = pid then if k = n then Some e else go (k + 1) rest
        else go k rest
  in
  go 1 r.sim.Sim.log

(** Steps taken by [pid], as (oid, primitive, response) triples — used for
    the indistinguishability comparison. *)
let step_signature r pid =
  List.filter_map
    (fun (e : Access_log.entry) ->
      if e.pid = pid then Some (e.oid, e.prim, e.response) else None)
    r.sim.Sim.log

(** Objects on which [pid] applied a trivial (read) primitive. *)
let objects_read_by r pid : Oid.Set.t =
  List.fold_left
    (fun acc (e : Access_log.entry) ->
      if e.pid = pid && Primitive.trivial e.prim then Oid.Set.add e.oid acc
      else acc)
    Oid.Set.empty r.sim.Sim.log

(** Does the sub-execution of [pid] contain a non-trivial primitive on
    [oid]? *)
let nontrivial_on r pid oid =
  List.exists
    (fun (e : Access_log.entry) ->
      e.pid = pid && Oid.equal e.oid oid && Primitive.non_trivial e.prim)
    r.sim.Sim.log
