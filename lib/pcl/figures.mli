(** Text rendering of the paper's Figures 1-6 from a claims report. *)

open Tm_base
open Tm_impl

val pp_step : Format.formatter -> Access_log.entry -> unit

val pp_fig12 :
  Format.formatter -> [ `Fig1 | `Fig2 ] -> Constructions.t -> unit

val pp_schedule_line :
  Format.formatter -> string * Tm_runtime.Schedule.atom list -> unit

val pp_txn_row :
  Claims.side -> Format.formatter -> Static_txn.spec -> unit

val pp_table : int list -> Claims.side -> Format.formatter -> unit -> unit
val pp_check : Format.formatter -> Claims.value_check -> unit
val pp_report : Format.formatter -> Claims.report -> unit

val pp_lanes :
  Format.formatter -> Claims.side * Tm_runtime.Schedule.atom list -> unit
(** Per-process lane rendering of a side's schedule — the visual layout of
    the paper's Figures 5-6, with the adversarial steps s1/s2 marked. *)

(** {1 Flight-recorder timelines} *)

val record_run :
  ?budget:int ->
  Tm_intf.impl ->
  Tm_runtime.Schedule.atom list ->
  Harness.run * Tm_trace.Flight.t
(** Replay a schedule with a fresh flight recorder installed; the returned
    recorder holds the execution's steps, history and names. *)

val render_timeline :
  ?width:int ->
  ?budget:int ->
  Tm_intf.impl ->
  Tm_runtime.Schedule.atom list ->
  highlight_steps:(Harness.run -> int list) ->
  string
(** Replay and render one schedule as timeline art; [highlight_steps]
    picks the witness steps from the finished run. *)

val render_constructions : ?width:int -> Constructions.t -> string
(** The paper's Figures 1-6 as per-process timeline art, the critical
    steps s1/s2 highlighted (`pcl_tm figures --render`). *)
