(* A chunked, append-only vector of boxed values — Intvec's polymorphic
   sibling.  Same spine discipline: fixed-size flat chunks, so appends
   never copy old elements and amortized allocation is one word per
   element versus three for a list cons.  The access log's primitive and
   response columns and the history recorder's event store are built on
   this.  [dummy] fills unused chunk slots (it is never returned). *)

type 'a t = {
  chunk_bits : int;
  dummy : 'a;
  mutable spine : 'a array array;  (* chunk index -> chunk *)
  mutable chunks : int;  (* chunks in use *)
  mutable len : int;
}

let create ?(chunk_bits = 7) ~dummy () =
  if chunk_bits < 2 || chunk_bits > 20 then
    invalid_arg "Objvec.create: chunk_bits out of range";
  { chunk_bits; dummy; spine = [||]; chunks = 0; len = 0 }

let length t = t.len

let push t v =
  let bits = t.chunk_bits in
  let i = t.len land ((1 lsl bits) - 1) in
  let c = t.len lsr bits in
  if c = t.chunks then begin
    if c = Array.length t.spine then begin
      let cap = max 4 (2 * Array.length t.spine) in
      let spine = Array.make cap [||] in
      Array.blit t.spine 0 spine 0 t.chunks;
      t.spine <- spine
    end;
    t.spine.(c) <- Array.make (1 lsl bits) t.dummy;
    t.chunks <- t.chunks + 1
  end;
  t.spine.(c).(i) <- v;
  t.len <- t.len + 1

(** Unchecked read — callers that already hold a valid index. *)
let unsafe_get t i =
  Array.unsafe_get
    (Array.unsafe_get t.spine (i lsr t.chunk_bits))
    (i land ((1 lsl t.chunk_bits) - 1))

let get t i =
  if i < 0 || i >= t.len then
    invalid_arg
      (Printf.sprintf "Objvec.get: index %d out of bounds 0..%d" i (t.len - 1));
  unsafe_get t i

let iter t f =
  for i = 0 to t.len - 1 do
    f (unsafe_get t i)
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (unsafe_get t i)
  done;
  !acc

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (unsafe_get t i :: acc) in
  go (t.len - 1) []

(** Reset length to zero; chunks are retained for reuse, so the dropped
    elements stay reachable until overwritten. *)
let clear t = t.len <- 0
