(** Shared memory: the base objects of the simulated asynchronous system,
    plus the access log.

    {!apply} is the only way to touch object state and corresponds to one
    atomic step of the paper's model.  Allocation is {e not} a step: TM
    implementations pre-allocate their shared representation at creation
    time (or allocate deterministically at begin time, e.g. per-transaction
    status words), modelling objects that simply exist in the initial
    configuration. *)

type t

type fault = Spurious_fail
(** The one fault a memory can inject into a step: an RMW-class primitive
    (CAS / SC / try-lock) responds failure without touching object state —
    an outcome real hardware permits at any time. *)

type fault_hook =
  pid:int -> tid:Tid.t option -> step:int -> Oid.t -> Primitive.t ->
  fault option

val create : unit -> t

val alloc : t -> name:string -> Value.t -> Oid.t
(** Allocate a fresh base object with the given initial value.  [name]
    appears in logs and figures and must be unique.
    @raise Invalid_argument on a duplicate name. *)

val find : t -> string -> Oid.t option
val find_exn : t -> string -> Oid.t

val name_of : t -> Oid.t -> string
(** @raise Invalid_argument on an unknown oid. *)

val n_objects : t -> int

val apply : t -> pid:int -> ?tid:Tid.t -> Oid.t -> Primitive.t -> Value.t
(** One atomic step: apply the primitive on behalf of process [pid]
    (attributed to [tid] if given), log it, return the response. *)

val peek : t -> Oid.t -> Value.t
(** Debugging read — not a step, not logged. *)

val log : t -> Access_log.t
val step_count : t -> int

val set_hook : t -> (Access_log.t -> int -> unit) -> unit
(** Install the per-step instrumentation hook (replacing any previous
    one).  It runs after each step is logged, receiving the log and the
    step's index — the shared point where TM layers attribute base-object
    traffic to telemetry counters.  Index-based so the common case reads
    one column ({!Access_log.prim_at}) instead of forcing an entry record
    per step.  The hook must not itself apply primitives. *)

val clear_hook : t -> unit

val set_flight_hook : t -> (Access_log.t -> int -> unit) -> unit
(** Install the flight-recorder step hook (replacing any previous one).
    A second, independent slot so step recording composes with the TM
    telemetry hook instead of replacing it; when unset the cost is one
    [None] match per step. *)

val clear_flight_hook : t -> unit

val set_fault_hook : t -> fault_hook -> unit
(** Install the fault-injection hook (replacing any previous one).  It is
    consulted before each primitive is applied, with the step index the
    primitive is about to take; answering [Some Spurious_fail] on an
    RMW-class primitive makes that step respond failure with unchanged
    state.  The answer is ignored for primitives that cannot fail
    (reads, writes, fetch-add, unlock, LL).  Faulted steps are logged and
    counted normally (plus [mem_spurious_faults_total]), so a faulted run
    replays bit-identically under the same hook. *)

val clear_fault_hook : t -> unit

val poison : t -> int -> unit
(** Doomed-transaction poison: [pid]'s current transaction is forced to
    abort at its next transactional operation (consumed by the
    transactional API layer via {!take_poison}). *)

val take_poison : t -> int -> bool
(** Consume [pid]'s poison flag; true iff it was set. *)

val pp_log : Format.formatter -> t -> unit
