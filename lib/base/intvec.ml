(* A chunked, append-only vector of unboxed ints — the preallocated work
   pool the hot path appends to instead of consing.

   Chunks are fixed-size flat [int array]s linked through a growable
   spine, so an append never copies old elements: amortized allocation
   is one word per element (plus a chunk header every [chunk] elements),
   versus the three words a list cons costs, and reads are O(1).  The
   step log, the schedule session's per-atom step counts and the cursor
   path buffer are all built on this. *)

type t = {
  chunk_bits : int;
  mutable spine : int array array;  (* chunk index -> chunk *)
  mutable chunks : int;  (* chunks in use *)
  mutable len : int;
}

(* 128-element chunks: big enough that the per-chunk header is noise
   (~1.01 words/element amortized), small enough that the short-lived
   logs of segmented soak runs and explorer nodes don't pay a multi-KB
   allocation floor per instance. *)
let default_bits = 7

let create ?(chunk_bits = default_bits) () =
  if chunk_bits < 2 || chunk_bits > 20 then
    invalid_arg "Intvec.create: chunk_bits out of range";
  { chunk_bits; spine = [||]; chunks = 0; len = 0 }

let length t = t.len

(* An independent copy: fresh chunk arrays, so neither vector observes
   the other's later pushes or sets. *)
let copy t =
  {
    chunk_bits = t.chunk_bits;
    spine = Array.map (fun c -> Array.copy c) t.spine;
    chunks = t.chunks;
    len = t.len;
  }

let push t (v : int) =
  let bits = t.chunk_bits in
  let mask = (1 lsl bits) - 1 in
  let i = t.len land mask in
  let c = t.len lsr bits in
  if c = t.chunks then begin
    (* need a fresh chunk; grow the spine geometrically if full *)
    if c = Array.length t.spine then begin
      let cap = max 4 (2 * Array.length t.spine) in
      let spine = Array.make cap [||] in
      Array.blit t.spine 0 spine 0 t.chunks;
      t.spine <- spine
    end;
    t.spine.(c) <- Array.make (1 lsl bits) 0;
    t.chunks <- t.chunks + 1
  end;
  t.spine.(c).(i) <- v;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Intvec.get: index %d out of bounds 0..%d" i (t.len - 1));
  t.spine.(i lsr t.chunk_bits).(i land ((1 lsl t.chunk_bits) - 1))

(** Unchecked read — callers that already hold a valid index. *)
let unsafe_get t i =
  Array.unsafe_get
    (Array.unsafe_get t.spine (i lsr t.chunk_bits))
    (i land ((1 lsl t.chunk_bits) - 1))

let set t i (v : int) =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Intvec.set: index %d out of bounds 0..%d" i (t.len - 1));
  t.spine.(i lsr t.chunk_bits).(i land ((1 lsl t.chunk_bits) - 1)) <- v

let iter t f =
  for i = 0 to t.len - 1 do
    f (unsafe_get t i)
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (unsafe_get t i)
  done;
  !acc

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (unsafe_get t i :: acc) in
  go (t.len - 1) []

let clear t = t.len <- 0
