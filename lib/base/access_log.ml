(* The access log: every step of an execution, in order.  This is the
   executable counterpart of the paper's "execution alpha is a sequence of
   steps"; contention and disjoint-access-parallelism checkers run on it. *)

type entry = {
  index : int;  (** global step number, 0-based *)
  pid : int;  (** process that took the step *)
  tid : Tid.t option;
      (** transaction the step is attributed to, if any (steps of the TM's
          begin/read/write/commit routines carry the transaction id) *)
  oid : Oid.t;  (** base object accessed *)
  prim : Primitive.t;  (** primitive applied *)
  response : Value.t;  (** response returned by the atomic step *)
  changed : bool;  (** whether the object state actually changed *)
}

type t = { mutable entries_rev : entry list; mutable count : int }

let create () = { entries_rev = []; count = 0 }

let record t ~pid ~tid ~oid ~prim ~response ~changed =
  let entry =
    { index = t.count; pid; tid; oid; prim; response; changed }
  in
  t.entries_rev <- entry :: t.entries_rev;
  t.count <- t.count + 1;
  entry

let length t = t.count
let entries t = List.rev t.entries_rev

(** Steps attributed to transaction [tid] — the paper's [alpha|T]. *)
let by_txn t tid =
  List.filter (fun e -> e.tid = Some tid) (entries t)

let by_pid t pid = List.filter (fun e -> e.pid = pid) (entries t)

(** Most recent step taken by process [pid], if any — O(steps since) rather
    than O(log), thanks to the reversed internal spine.  Used to attribute
    a budget-exhausted stall to the exact step a process was wedged on. *)
let last_by_pid t pid = List.find_opt (fun e -> e.pid = pid) t.entries_rev

(** Base objects accessed by transaction [tid], with a flag telling whether
    the transaction applied at least one non-trivial primitive to them. *)
let objects_of_txn t tid =
  List.fold_left
    (fun acc e ->
      match e.tid with
      | Some tid' when Tid.equal tid' tid ->
          let prev = Option.value ~default:false (Oid.Map.find_opt e.oid acc) in
          Oid.Map.add e.oid (prev || Primitive.non_trivial e.prim) acc
      | _ -> acc)
    Oid.Map.empty (entries t)

let pp_entry ~name_of ppf e =
  let txn =
    match e.tid with None -> "" | Some tid -> Fmt.str " %s" (Tid.name tid)
  in
  Fmt.pf ppf "#%d p%d%s %s.%a -> %a%s" e.index e.pid txn (name_of e.oid)
    Primitive.pp_compact e.prim Value.pp_compact e.response
    (if e.changed then " !" else "")
