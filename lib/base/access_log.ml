(* The access log: every step of an execution, in order.  This is the
   executable counterpart of the paper's "execution alpha is a sequence of
   steps"; contention and disjoint-access-parallelism checkers run on it.

   Layout: struct-of-arrays over chunked columns ({!Intvec} for the int
   fields, {!Objvec} for the two boxed columns),
   so recording a step appends ~8 words across columns instead of consing
   an 8-word record onto a list spine — and never copies on growth.

   Three incremental index rings are threaded through the columns at
   record time, linked-list-in-arrays style: each step stores the index
   of the previous step by the same process / on the same object / of the
   same transaction, with O(1) heads on the side.  [by_pid], [by_txn],
   [objects_of_txn] and the DAP/HB/cost engines walk these chains in
   O(answer) instead of re-filtering the whole log per query. *)

type entry = {
  index : int;  (** global step number, 0-based *)
  pid : int;  (** process that took the step *)
  tid : Tid.t option;
      (** transaction the step is attributed to, if any (steps of the TM's
          begin/read/write/commit routines carry the transaction id) *)
  oid : Oid.t;  (** base object accessed *)
  prim : Primitive.t;  (** primitive applied *)
  response : Value.t;  (** response returned by the atomic step *)
  changed : bool;  (** whether the object state actually changed *)
}

type t = {
  pcs : Intvec.t;  (* (pid lsl 1) lor changed *)
  tids : Intvec.t;  (* Tid.to_int, or -1 when unattributed *)
  oids : Intvec.t;
  prims : Primitive.t Objvec.t;
  resps : Value.t Objvec.t;
  prev_pid : Intvec.t;  (* index of previous step by same pid, -1 *)
  prev_oid : Intvec.t;  (* index of previous step on same oid, -1 *)
  prev_tid : Intvec.t;  (* index of previous step of same txn, -1 *)
  mutable pid_last : int array;  (* pid -> last step index, -1 *)
  mutable pid_count : int array;  (* pid -> steps taken *)
  mutable oid_last : int array;  (* oid -> last step index, -1 *)
  tid_last : (int, int) Hashtbl.t;  (* tid -> last step index *)
  mutable count : int;
}

let create () =
  {
    pcs = Intvec.create ();
    tids = Intvec.create ();
    oids = Intvec.create ();
    prims = Objvec.create ~chunk_bits:7 ~dummy:Primitive.Read ();
    resps = Objvec.create ~chunk_bits:7 ~dummy:Value.unit ();
    prev_pid = Intvec.create ();
    prev_oid = Intvec.create ();
    prev_tid = Intvec.create ();
    pid_last = [||];
    pid_count = [||];
    oid_last = [||];
    tid_last = Hashtbl.create 16;
    count = 0;
  }

(* Grow a head array so index [i] is addressable; fresh slots read [fill]. *)
let ensure_slot arr i fill =
  let n = Array.length arr in
  if i < n then arr
  else begin
    let cap = max 16 (max (i + 1) (2 * n)) in
    let arr' = Array.make cap fill in
    Array.blit arr 0 arr' 0 n;
    arr'
  end

let length t = t.count

let record t ~pid ~tid ~oid ~prim ~response ~changed =
  if pid < 0 then invalid_arg "Access_log.record: negative pid";
  let i = t.count in
  Intvec.push t.pcs ((pid lsl 1) lor Bool.to_int changed);
  let tc = match tid with None -> -1 | Some tid -> Tid.to_int tid in
  Intvec.push t.tids tc;
  let oc = Oid.to_int oid in
  Intvec.push t.oids oc;
  Objvec.push t.prims prim;
  Objvec.push t.resps response;
  t.pid_last <- ensure_slot t.pid_last pid (-1);
  t.pid_count <- ensure_slot t.pid_count pid 0;
  Intvec.push t.prev_pid (Array.unsafe_get t.pid_last pid);
  Array.unsafe_set t.pid_last pid i;
  Array.unsafe_set t.pid_count pid (Array.unsafe_get t.pid_count pid + 1);
  t.oid_last <- ensure_slot t.oid_last oc (-1);
  Intvec.push t.prev_oid (Array.unsafe_get t.oid_last oc);
  Array.unsafe_set t.oid_last oc i;
  if tc < 0 then Intvec.push t.prev_tid (-1)
  else begin
    Intvec.push t.prev_tid
      (try Hashtbl.find t.tid_last tc with Not_found -> -1);
    Hashtbl.replace t.tid_last tc i
  end;
  t.count <- i + 1

let check t i who =
  if i < 0 || i >= t.count then
    invalid_arg
      (Printf.sprintf "Access_log.%s: index %d out of bounds 0..%d" who i
         (t.count - 1))

(* Per-field reads.  Bounds-checked; the chunk walk itself is unchecked
   because the check above already established validity. *)

let pid_at t i =
  check t i "pid_at";
  Intvec.unsafe_get t.pcs i lsr 1

let changed_at t i =
  check t i "changed_at";
  Intvec.unsafe_get t.pcs i land 1 = 1

let tid_int_at t i =
  check t i "tid_int_at";
  Intvec.unsafe_get t.tids i

let tid_at t i =
  let tc = tid_int_at t i in
  if tc < 0 then None else Some (Tid.v tc)

let oid_at t i : Oid.t =
  check t i "oid_at";
  Oid.of_int (Intvec.unsafe_get t.oids i)

let prim_at t i =
  check t i "prim_at";
  Objvec.unsafe_get t.prims i

let response_at t i =
  check t i "response_at";
  Objvec.unsafe_get t.resps i

let prev_same_pid t i =
  check t i "prev_same_pid";
  Intvec.unsafe_get t.prev_pid i

let prev_same_oid t i =
  check t i "prev_same_oid";
  Intvec.unsafe_get t.prev_oid i

let prev_same_txn t i =
  check t i "prev_same_txn";
  Intvec.unsafe_get t.prev_tid i

(* Ring heads: O(1) *)

let last_index_by_pid t pid =
  if pid >= 0 && pid < Array.length t.pid_last then t.pid_last.(pid) else -1

let pid_step_count t pid =
  if pid >= 0 && pid < Array.length t.pid_count then t.pid_count.(pid) else 0

let last_index_on_oid t (oid : Oid.t) =
  let oc = Oid.to_int oid in
  if oc >= 0 && oc < Array.length t.oid_last then t.oid_last.(oc) else -1

let last_index_of_txn t (tid : Tid.t) =
  try Hashtbl.find t.tid_last (Tid.to_int tid) with Not_found -> -1

(* Unchecked entry materialization for internal iteration. *)
let unsafe_get t i =
  let pc = Intvec.unsafe_get t.pcs i in
  let tc = Intvec.unsafe_get t.tids i in
  {
    index = i;
    pid = pc lsr 1;
    tid = (if tc < 0 then None else Some (Tid.v tc));
    oid = Oid.of_int (Intvec.unsafe_get t.oids i);
    prim = Objvec.unsafe_get t.prims i;
    response = Objvec.unsafe_get t.resps i;
    changed = pc land 1 = 1;
  }

let get t i =
  check t i "get";
  unsafe_get t i

let iter t ~f =
  for i = 0 to t.count - 1 do
    f (unsafe_get t i)
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.count - 1 do
    acc := f !acc (unsafe_get t i)
  done;
  !acc

let to_seq t =
  let rec aux i () =
    if i >= t.count then Seq.Nil else Seq.Cons (unsafe_get t i, aux (i + 1))
  in
  aux 0

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos > t.count - len then
    invalid_arg
      (Printf.sprintf "Access_log.sub: pos %d len %d out of bounds (length %d)"
         pos len t.count);
  let rec go i acc = if i < pos then acc else go (i - 1) (unsafe_get t i :: acc) in
  go (pos + len - 1) []

(* Compatibility views: materialize entry lists in step order. *)

let entries t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (unsafe_get t i :: acc) in
  go (t.count - 1) []

(* Walking a prev-chain visits indices in descending order; consing onto
   the accumulator restores step order. *)
let chain_entries t prev head =
  let rec go i acc =
    if i < 0 then acc else go (Intvec.unsafe_get prev i) (unsafe_get t i :: acc)
  in
  go head []

(** Steps attributed to transaction [tid] — the paper's [alpha|T]. *)
let by_txn t tid = chain_entries t t.prev_tid (last_index_of_txn t tid)

let by_pid t pid = chain_entries t t.prev_pid (last_index_by_pid t pid)

(** Most recent step taken by process [pid], if any — O(1) via the
    per-process ring head.  Used to attribute a budget-exhausted stall to
    the exact step a process was wedged on. *)
let last_by_pid t pid =
  let i = last_index_by_pid t pid in
  if i < 0 then None else Some (unsafe_get t i)

(** Base objects accessed by transaction [tid], with a flag telling whether
    the transaction applied at least one non-trivial primitive to them.
    Walks the per-transaction ring; the accumulated flag is an OR, so
    visiting the chain backwards yields the same map. *)
let objects_of_txn t tid =
  let rec go i acc =
    if i < 0 then acc
    else
      let oid = Oid.of_int (Intvec.unsafe_get t.oids i) in
      let prev = Option.value ~default:false (Oid.Map.find_opt oid acc) in
      let nt = Primitive.non_trivial (Objvec.unsafe_get t.prims i) in
      go (Intvec.unsafe_get t.prev_tid i) (Oid.Map.add oid (prev || nt) acc)
  in
  go (last_index_of_txn t tid) Oid.Map.empty

(** Rebuild a log from a recorded entry list (flight artifacts, JSONL
    imports), re-deriving the index rings.  Entries are re-indexed in
    list order. *)
let of_entries es =
  let t = create () in
  List.iter
    (fun e ->
      record t ~pid:e.pid ~tid:e.tid ~oid:e.oid ~prim:e.prim
        ~response:e.response ~changed:e.changed)
    es;
  t

let pp_entry ~name_of ppf e =
  let txn =
    match e.tid with None -> "" | Some tid -> Fmt.str " %s" (Tid.name tid)
  in
  Fmt.pf ppf "#%d p%d%s %s.%a -> %a%s" e.index e.pid txn (name_of e.oid)
    Primitive.pp_compact e.prim Value.pp_compact e.response
    (if e.changed then " !" else "")
