(** The access log: every step of an execution, in order — the executable
    counterpart of the paper's "an execution alpha is a sequence of
    steps".  Contention and disjoint-access-parallelism checkers run on
    it.

    Backed by chunked struct-of-arrays columns (appending never copies,
    ~one word per field per step) with three incremental index rings —
    per-process, per-object, per-transaction — threaded through the
    columns at record time.  {!entries}, {!by_txn} and {!by_pid} remain
    as compatibility views; new code should use the per-field reads,
    {!iter}/{!fold}/{!get}/{!sub}, or walk the rings directly. *)

type entry = {
  index : int;  (** global step number, 0-based *)
  pid : int;  (** process that took the step *)
  tid : Tid.t option;
      (** transaction the step is attributed to, if any: steps taken inside
          the TM's begin/read/write/commit routines carry the id *)
  oid : Oid.t;  (** base object accessed *)
  prim : Primitive.t;  (** primitive applied *)
  response : Value.t;  (** response returned by the atomic step *)
  changed : bool;  (** whether the object state actually changed *)
}

type t

val create : unit -> t

val record :
  t ->
  pid:int ->
  tid:Tid.t option ->
  oid:Oid.t ->
  prim:Primitive.t ->
  response:Value.t ->
  changed:bool ->
  unit
(** Append one step.  The step's index is [length] before the call.
    @raise Invalid_argument on a negative pid. *)

val length : t -> int

(** {2 Random access}

    All indexed reads check bounds and raise [Invalid_argument] outside
    [0..length-1]. *)

val get : t -> int -> entry
(** Materialize the step at an index as an entry record. *)

val pid_at : t -> int -> int
val tid_at : t -> int -> Tid.t option

val tid_int_at : t -> int -> int
(** Allocation-free transaction read: [Tid.to_int], or -1 when the step
    is unattributed. *)

val oid_at : t -> int -> Oid.t
val prim_at : t -> int -> Primitive.t
val response_at : t -> int -> Value.t
val changed_at : t -> int -> bool

(** {2 Iteration without list materialization} *)

val iter : t -> f:(entry -> unit) -> unit
val fold : t -> init:'a -> f:('a -> entry -> 'a) -> 'a

val to_seq : t -> entry Seq.t
(** Ephemeral: the sequence reads through to the live log, so steps
    recorded after a node is forced appear past it. *)

val sub : t -> pos:int -> len:int -> entry list
(** The [len] entries starting at [pos], in step order.
    @raise Invalid_argument unless [0 <= pos], [0 <= len] and
    [pos + len <= length]. *)

(** {2 Index rings}

    Each step stores the index of the previous step by the same process /
    on the same object / of the same transaction (-1 at the front of a
    chain), with O(1) heads.  Maintained incrementally by {!record}. *)

val last_index_by_pid : t -> int -> int
(** Index of the most recent step by a process, -1 if none. *)

val last_index_on_oid : t -> Oid.t -> int
val last_index_of_txn : t -> Tid.t -> int

val prev_same_pid : t -> int -> int
(** Index of the previous step by the same process, -1 at chain front. *)

val prev_same_oid : t -> int -> int
val prev_same_txn : t -> int -> int

val pid_step_count : t -> int -> int
(** Steps taken by a process so far; O(1). *)

(** {2 Compatibility views} *)

val entries : t -> entry list
(** In step order. *)

val by_txn : t -> Tid.t -> entry list
(** Steps attributed to a transaction — the paper's alpha|T.  O(answer)
    via the per-transaction ring. *)

val by_pid : t -> int -> entry list
(** O(answer) via the per-process ring. *)

val last_by_pid : t -> int -> entry option
(** Most recent step taken by a process, if any; O(1). *)

val objects_of_txn : t -> Tid.t -> bool Oid.Map.t
(** Base objects accessed by a transaction, mapped to whether it applied
    at least one non-trivial primitive to them. *)

val of_entries : entry list -> t
(** Rebuild a log (and its index rings) from a recorded entry list, e.g.
    a parsed flight artifact.  Entries are re-indexed in list order. *)

val pp_entry :
  name_of:(Oid.t -> string) -> Format.formatter -> entry -> unit
