(** The access log: every step of an execution, in order — the executable
    counterpart of the paper's "an execution alpha is a sequence of
    steps".  Contention and disjoint-access-parallelism checkers run on
    it. *)

type entry = {
  index : int;  (** global step number, 0-based *)
  pid : int;  (** process that took the step *)
  tid : Tid.t option;
      (** transaction the step is attributed to, if any: steps taken inside
          the TM's begin/read/write/commit routines carry the id *)
  oid : Oid.t;  (** base object accessed *)
  prim : Primitive.t;  (** primitive applied *)
  response : Value.t;  (** response returned by the atomic step *)
  changed : bool;  (** whether the object state actually changed *)
}

type t

val create : unit -> t

val record :
  t ->
  pid:int ->
  tid:Tid.t option ->
  oid:Oid.t ->
  prim:Primitive.t ->
  response:Value.t ->
  changed:bool ->
  entry

val length : t -> int

val entries : t -> entry list
(** In step order. *)

val by_txn : t -> Tid.t -> entry list
(** Steps attributed to a transaction — the paper's alpha|T. *)

val by_pid : t -> int -> entry list

val last_by_pid : t -> int -> entry option
(** Most recent step taken by a process, if any. *)

val objects_of_txn : t -> Tid.t -> bool Oid.Map.t
(** Base objects accessed by a transaction, mapped to whether it applied
    at least one non-trivial primitive to them. *)

val pp_entry :
  name_of:(Oid.t -> string) -> Format.formatter -> entry -> unit
