(* Atomic primitives on base objects.

   The paper's model: "A base object provides atomic primitives to access or
   modify its state.  [...] A primitive that does not change the state of an
   object is called trivial (otherwise it is called non-trivial)."

   Triviality is classified by primitive *kind* (the standard convention in
   the disjoint-access-parallelism literature): a CAS is non-trivial even
   when it fails, because an adversary cannot tell in advance whether it
   will update the state.  Access-log entries additionally record whether
   the state actually changed, so checkers that prefer the effect-based
   reading can use that instead. *)

type t =
  | Read
  | Write of Value.t
  | Cas of { expected : Value.t; desired : Value.t }
      (** Compare-and-swap; responds [VBool true] on success. *)
  | Fetch_add of int  (** Requires a [VInt] state; responds the old value. *)
  | Try_lock of int
      (** Test-and-set style lock acquisition by process [pid]; responds
          [VBool true] iff the lock is now held by [pid]. *)
  | Unlock of int  (** Release by process [pid]; no-op if not the holder. *)
  | Load_linked of int  (** LL by process [pid]; responds the value. *)
  | Store_conditional of int * Value.t
      (** SC by process [pid]; responds [VBool true] on success. *)
[@@deriving show { with_path = false }, eq]

(** [trivial p] holds iff [p] can never update the object state. *)
let trivial = function
  | Read | Load_linked _ -> true
  | Write _ | Cas _ | Fetch_add _ | Try_lock _ | Unlock _
  | Store_conditional _ ->
      false

let non_trivial p = not (trivial p)

(** [commute p q] — do [p] and [q] commute when applied to the {e same}
    base object?  Two trivial primitives always do: a [Read] leaves the
    object untouched, and although [Load_linked pid] records a
    reservation, reservation recording is a set insertion (commutative)
    and never affects any response.  Everything else is conservatively
    ordered: even a failing CAS is non-trivial by kind, because whether
    it fails can depend on what ran before it. *)
let commute p q = trivial p && trivial q

(* stable kind indexing, used by the telemetry counters to aggregate
   per-primitive-kind without allocating label lists on the hot path *)

let n_kinds = 8

let kind_index = function
  | Read -> 0
  | Write _ -> 1
  | Cas _ -> 2
  | Fetch_add _ -> 3
  | Try_lock _ -> 4
  | Unlock _ -> 5
  | Load_linked _ -> 6
  | Store_conditional _ -> 7

let kind_names =
  [| "read"; "write"; "cas"; "faa"; "trylock"; "unlock"; "ll"; "sc" |]

let kind_name p = kind_names.(kind_index p)

let pp_compact ppf = function
  | Read -> Fmt.string ppf "rd"
  | Write v -> Fmt.pf ppf "wr(%a)" Value.pp_compact v
  | Cas { expected; desired } ->
      Fmt.pf ppf "cas(%a->%a)" Value.pp_compact expected Value.pp_compact
        desired
  | Fetch_add n -> Fmt.pf ppf "faa(%d)" n
  | Try_lock p -> Fmt.pf ppf "trylock(p%d)" p
  | Unlock p -> Fmt.pf ppf "unlock(p%d)" p
  | Load_linked p -> Fmt.pf ppf "ll(p%d)" p
  | Store_conditional (p, v) -> Fmt.pf ppf "sc(p%d,%a)" p Value.pp_compact v
