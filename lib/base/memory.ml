(* Shared memory: the collection of base objects of the simulated
   asynchronous system, plus the access log.

   [apply] is the only way to touch an object's state and corresponds to one
   atomic step of the paper's model.  Allocation ([alloc]) is not a step:
   TM implementations pre-allocate their shared representation when they are
   created (or allocate deterministically at begin time, e.g. per-transaction
   status words), which models the objects simply existing in the initial
   configuration. *)

type fault = Spurious_fail

type fault_hook =
  pid:int -> tid:Tid.t option -> step:int -> Oid.t -> Primitive.t ->
  fault option

type t = {
  mutable objects : Base_object.t array;
  mutable n_objects : int;
  mutable names : string array;
  by_name : (string, Oid.t) Hashtbl.t;
  log : Access_log.t;
  mutable hook : (Access_log.t -> int -> unit) option;
      (** called after every logged step with the log and the step's
          index — the shared instrumentation point TM layers use to
          attribute base-object traffic.  Index-based so the common case
          (a counter bump keyed on the primitive kind) reads one column
          instead of forcing an entry record per step *)
  mutable flight : (Access_log.t -> int -> unit) option;
      (** second, independent per-step hook reserved for the flight
          recorder, so step recording composes with the TM telemetry
          hook above instead of replacing it *)
  changed_scratch : bool ref;
      (** reused out-param for {!Base_object.apply_into}, so a step does
          not allocate a response pair *)
  mutable fault : fault_hook option;
      (** consulted before a primitive is applied: the chaos engine's
          injection point for spurious RMW failures *)
  doomed : (int, unit) Hashtbl.t;
      (** pids whose current transaction has been poisoned (force-abort
          at its next transactional operation) *)
  steps_c : Tm_obs.Metrics.counter;
  prim_c : Tm_obs.Metrics.counter array;  (** indexed by primitive kind *)
  faults_c : Tm_obs.Metrics.counter;
}

let create () =
  let m = Tm_obs.Sink.metrics Tm_obs.Sink.default in
  {
    objects = Array.make 16 (Base_object.create Value.unit);
    n_objects = 0;
    names = Array.make 16 "";
    by_name = Hashtbl.create 64;
    log = Access_log.create ();
    hook = None;
    flight = None;
    fault = None;
    changed_scratch = ref false;
    doomed = Hashtbl.create 4;
    steps_c = Tm_obs.Metrics.counter m "mem_steps_total";
    prim_c =
      Array.init Primitive.n_kinds (fun i ->
          Tm_obs.Metrics.counter m
            ~labels:[ ("prim", Primitive.kind_names.(i)) ]
            "mem_prim_total");
    faults_c = Tm_obs.Metrics.counter m "mem_spurious_faults_total";
  }

let grow t =
  let cap = Array.length t.objects in
  if t.n_objects = cap then begin
    let objects = Array.make (2 * cap) (Base_object.create Value.unit) in
    Array.blit t.objects 0 objects 0 cap;
    t.objects <- objects;
    let names = Array.make (2 * cap) "" in
    Array.blit t.names 0 names 0 cap;
    t.names <- names
  end

(** Allocate a fresh base object with initial value [init].  [name] is used
    for logs, figures and [find]; it must be unique. *)
let alloc t ~name init : Oid.t =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Memory.alloc: duplicate name %S" name);
  grow t;
  let oid = t.n_objects in
  t.objects.(oid) <- Base_object.create init;
  t.names.(oid) <- name;
  t.n_objects <- oid + 1;
  Hashtbl.add t.by_name name oid;
  oid

let find t name = Hashtbl.find_opt t.by_name name

let find_exn t name =
  match find t name with
  | Some oid -> oid
  | None -> invalid_arg (Printf.sprintf "Memory.find_exn: no object %S" name)

let name_of t (oid : Oid.t) =
  if oid < 0 || oid >= t.n_objects then
    invalid_arg "Memory.name_of: bad oid"
  else t.names.(oid)

let n_objects t = t.n_objects

(** One atomic step: apply [prim] to object [oid] on behalf of process
    [pid] (attributed to transaction [tid] if given), log it, and return the
    response. *)
(* RMW-class primitives that hardware permits to fail spuriously (LL/SC on
   every real architecture; CAS and test-and-set in the weak models): a
   failure response with unchanged state is always a legal outcome, so
   injecting one can never make an execution ill-formed. *)
let spurious_failure : Primitive.t -> Value.t option = function
  | Primitive.Cas _ | Primitive.Store_conditional _ | Primitive.Try_lock _ ->
      Some (Value.bool false)
  | Primitive.Read | Primitive.Write _ | Primitive.Fetch_add _
  | Primitive.Unlock _ | Primitive.Load_linked _ ->
      None

let apply t ~pid ?tid (oid : Oid.t) (prim : Primitive.t) : Value.t =
  if oid < 0 || oid >= t.n_objects then invalid_arg "Memory.apply: bad oid";
  let faulted =
    match t.fault with
    | None -> None
    | Some f -> (
        match f ~pid ~tid ~step:(Access_log.length t.log) oid prim with
        | Some Spurious_fail -> spurious_failure prim
        | None -> None)
  in
  let changed = t.changed_scratch in
  let response =
    match faulted with
    | Some resp ->
        Tm_obs.Metrics.inc t.faults_c;
        changed := false;
        resp
    | None -> Base_object.apply_into t.objects.(oid) prim ~changed
  in
  let index = Access_log.length t.log in
  Access_log.record t.log ~pid ~tid ~oid ~prim ~response ~changed:!changed;
  Tm_obs.Metrics.inc t.steps_c;
  Tm_obs.Metrics.inc t.prim_c.(Primitive.kind_index prim);
  (match t.hook with Some f -> f t.log index | None -> ());
  (match t.flight with Some f -> f t.log index | None -> ());
  response

(** Debugging read that is not a step and is not logged. *)
let peek t (oid : Oid.t) : Value.t =
  if oid < 0 || oid >= t.n_objects then invalid_arg "Memory.peek: bad oid";
  Base_object.value t.objects.(oid)

let log t = t.log
let step_count t = Access_log.length t.log

(** Install the per-step instrumentation hook (replacing any previous
    one).  Called after each step is logged; used by {!Tm_impl.Txn_api}
    to attribute base-object traffic to the TM under test. *)
let set_hook t f = t.hook <- Some f

let clear_hook t = t.hook <- None

(** Install the flight-recorder step hook.  Separate from {!set_hook} so
    step recording composes with (rather than replaces) the TM telemetry
    hook; costs one [None] match per step when disabled. *)
let set_flight_hook t f = t.flight <- Some f

let clear_flight_hook t = t.flight <- None

(** Install the fault-injection hook.  It is consulted {e before} each
    primitive is applied; answering [Spurious_fail] on an RMW-class
    primitive (CAS / SC / try-lock) makes the step respond failure without
    touching object state — a legal outcome real hardware permits — while
    the step is still logged and counted normally, so faulted runs replay
    bit-identically. *)
let set_fault_hook t f = t.fault <- Some f

let clear_fault_hook t = t.fault <- None

(** Doomed-transaction poison: mark [pid]'s current transaction for a
    forced abort at its next transactional operation.  The flag lives here
    (not in the scheduler) because both the schedule interpreter that sets
    it and the transactional API layer that consumes it see the memory. *)
let poison t pid = Hashtbl.replace t.doomed pid ()

(** Consume [pid]'s poison flag; true iff it was set. *)
let take_poison t pid =
  if Hashtbl.mem t.doomed pid then begin
    Hashtbl.remove t.doomed pid;
    true
  end
  else false

let pp_log ppf t =
  let name_of oid = name_of t oid in
  let first = ref true in
  Access_log.iter t.log ~f:(fun e ->
      if !first then first := false else Fmt.pf ppf "@\n";
      Access_log.pp_entry ~name_of ppf e)
