(* A base object: a value cell plus lock/reservation words so that the same
   object type can serve as register, CAS word, fetch&add counter, lock, or
   LL/SC cell.  [apply] is the atomic step semantics. *)

module Int_set = Set.Make (Int)

type t = {
  mutable value : Value.t;
  mutable lock_holder : int option;
  mutable reservations : Int_set.t;
      (* pids holding a valid load-linked reservation *)
}

let create value = { value; lock_holder = None; reservations = Int_set.empty }

let value t = t.value
let lock_holder t = t.lock_holder
let locked t = t.lock_holder <> None

(** [apply_into t prim ~changed] atomically applies [prim]; returns the
    response and reports through [changed] whether any component of the
    state mutated.  The out-parameter form lets the hot path reuse one
    scratch ref instead of allocating a response pair per step. *)
let apply_into t (prim : Primitive.t) ~(changed : bool ref) : Value.t =
  match prim with
  | Read ->
      changed := false;
      t.value
  | Write v ->
      let c = not (Value.equal t.value v) in
      t.value <- v;
      (* any write invalidates outstanding LL reservations *)
      changed := c || not (Int_set.is_empty t.reservations);
      t.reservations <- Int_set.empty;
      Value.unit
  | Cas { expected; desired } ->
      if Value.equal t.value expected then begin
        changed :=
          (not (Value.equal t.value desired))
          || not (Int_set.is_empty t.reservations);
        t.value <- desired;
        t.reservations <- Int_set.empty;
        Value.bool true
      end
      else begin
        changed := false;
        Value.bool false
      end
  | Fetch_add n ->
      let old = Value.to_int_exn t.value in
      t.value <- Value.int (old + n);
      t.reservations <- Int_set.empty;
      changed := n <> 0;
      Value.int old
  | Try_lock pid -> (
      match t.lock_holder with
      | None ->
          t.lock_holder <- Some pid;
          changed := true;
          Value.bool true
      | Some holder ->
          changed := false;
          Value.bool (holder = pid))
  | Unlock pid -> (
      match t.lock_holder with
      | Some holder when holder = pid ->
          t.lock_holder <- None;
          changed := true;
          Value.unit
      | Some _ | None ->
          changed := false;
          Value.unit)
  | Load_linked pid ->
      t.reservations <- Int_set.add pid t.reservations;
      changed := false;
      t.value
  | Store_conditional (pid, v) ->
      if Int_set.mem pid t.reservations then begin
        t.value <- v;
        t.reservations <- Int_set.empty;
        changed := true;
        Value.bool true
      end
      else begin
        changed := false;
        Value.bool false
      end

(** [apply t prim] atomically applies [prim]; returns [(response, changed)]
    where [changed] reports whether any component of the state mutated. *)
let apply t (prim : Primitive.t) : Value.t * bool =
  let changed = ref false in
  let response = apply_into t prim ~changed in
  (response, !changed)

