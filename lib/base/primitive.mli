(** Atomic primitives on base objects (Section 3 of the paper).

    "A base object provides atomic primitives to access or modify its
    state.  A primitive that does not change the state of an object is
    called trivial (otherwise it is called non-trivial)."

    Triviality is classified by primitive {e kind} — the convention of the
    disjoint-access-parallelism literature: a CAS is non-trivial even when
    it fails, because the adversary cannot know in advance whether it will
    update the state.  {!Tm_base.Access_log} entries additionally record
    whether the state actually changed, for checkers that prefer the
    effect-based reading. *)

type t =
  | Read
  | Write of Value.t
  | Cas of { expected : Value.t; desired : Value.t }
      (** Compare-and-swap; responds [VBool true] on success. *)
  | Fetch_add of int
      (** Requires a [VInt] state; responds with the old value. *)
  | Try_lock of int
      (** Acquisition by process [pid]; responds [VBool true] iff the lock
          is now (or was already) held by [pid]. *)
  | Unlock of int  (** Release by process [pid]; no-op if not the holder. *)
  | Load_linked of int  (** LL by process [pid]; responds with the value. *)
  | Store_conditional of int * Value.t
      (** SC by process [pid]; responds [VBool true] on success. *)

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool

val trivial : t -> bool
(** [trivial p] holds iff [p] can never update the object state. *)

val non_trivial : t -> bool

val commute : t -> t -> bool
(** [commute p q] — do [p] and [q] commute when applied to the {e same}
    base object?  Holds iff both are trivial ([Load_linked]'s reservation
    recording is a commutative set insertion that never affects a
    response).  Primitives on {e distinct} objects always commute; this
    predicate only refines the same-object case. *)

val n_kinds : int
(** Number of primitive kinds (constructors). *)

val kind_index : t -> int
(** Stable index of the primitive's kind, in [0, n_kinds) — used by the
    telemetry counters to aggregate per kind without allocating on the
    hot path. *)

val kind_names : string array
(** Kind label values, indexed by {!kind_index}: [read], [write], [cas],
    [faa], [trylock], [unlock], [ll], [sc]. *)

val kind_name : t -> string

val pp_compact : Format.formatter -> t -> unit
