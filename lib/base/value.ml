(* Values stored in base objects and data items.

   The paper models data items as holding integers (every item starts at 0
   and transactions write small integers), but base objects of real TM
   algorithms hold richer state: version-stamped cells, locator tuples,
   lock words.  A small structured universe covers all of them without
   resorting to serialization. *)

type t =
  | VUnit
  | VBool of bool
  | VInt of int
  | VStr of string
  | VPair of t * t
  | VList of t list
[@@deriving show { with_path = false }, eq, ord]

let unit = VUnit

(* Values are immutable and compared structurally everywhere, so the two
   booleans and the small integers every TM's lock/version words cycle
   through can be shared instead of re-boxed on each step response. *)
let vtrue = VBool true
let vfalse = VBool false
let bool b = if b then vtrue else vfalse

let small_ints = Array.init 257 (fun i -> VInt (i - 1))
let int i = if i >= -1 && i <= 255 then Array.unsafe_get small_ints (i + 1) else VInt i
let str s = VStr s
let pair a b = VPair (a, b)
let list l = VList l

(** Initial value of every data item, as in the paper ("the initial value of
    every data item is considered to be 0"). *)
let initial = VInt 0

let to_int = function VInt i -> Some i | _ -> None

let to_int_exn v =
  match v with
  | VInt i -> i
  | _ -> invalid_arg (Printf.sprintf "Value.to_int_exn: %s" (show v))

let to_bool = function VBool b -> Some b | _ -> None

let to_bool_exn v =
  match v with
  | VBool b -> b
  | _ -> invalid_arg (Printf.sprintf "Value.to_bool_exn: %s" (show v))

let to_pair_exn v =
  match v with
  | VPair (a, b) -> (a, b)
  | _ -> invalid_arg (Printf.sprintf "Value.to_pair_exn: %s" (show v))

let to_list_exn v =
  match v with
  | VList l -> l
  | _ -> invalid_arg (Printf.sprintf "Value.to_list_exn: %s" (show v))

(* Compact rendering for tables and figures: integers print bare. *)
let rec pp_compact ppf v =
  match v with
  | VUnit -> Fmt.string ppf "()"
  | VBool b -> Fmt.bool ppf b
  | VInt i -> Fmt.int ppf i
  | VStr s -> Fmt.string ppf s
  | VPair (a, b) -> Fmt.pf ppf "(%a,%a)" pp_compact a pp_compact b
  | VList l -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ";") pp_compact) l

let to_string v = Fmt.str "%a" pp_compact v
