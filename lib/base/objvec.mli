(** A chunked, append-only vector of boxed values — {!Intvec}'s
    polymorphic sibling.  Appends never copy old elements (amortized one
    word per element versus three for a list cons); reads are O(1).
    Backs the access log's boxed columns and the history recorder's
    event store. *)

type 'a t

val create : ?chunk_bits:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused chunk slots and is never returned.
    [chunk_bits] (default 7, i.e. 128-element chunks) must lie in 2..20.
    @raise Invalid_argument otherwise. *)

val length : 'a t -> int
val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** @raise Invalid_argument out of bounds. *)

val unsafe_get : 'a t -> int -> 'a
(** Unchecked read, for callers that already hold a valid index. *)

val iter : 'a t -> ('a -> unit) -> unit
val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
val to_list : 'a t -> 'a list

val clear : 'a t -> unit
(** Reset length to zero; chunks are retained for reuse (dropped
    elements stay reachable until overwritten). *)
