(** A base object: a value cell plus a lock word and LL/SC reservations,
    so one object type serves as register, CAS word, fetch&add counter,
    lock, or LL/SC cell.  {!apply} is the atomic step semantics; real code
    goes through {!Memory.apply}, which also logs the step. *)

type t

val create : Value.t -> t

val value : t -> Value.t
val lock_holder : t -> int option
val locked : t -> bool

val apply : t -> Primitive.t -> Value.t * bool
(** [apply t prim] atomically applies [prim] and returns
    [(response, changed)], where [changed] reports whether any component
    of the state mutated.  Writes, successful CASes, fetch&adds and
    successful SCs invalidate outstanding LL reservations. *)

val apply_into : t -> Primitive.t -> changed:bool ref -> Value.t
(** Same step semantics as {!apply}, but the changed flag is written
    through the caller's scratch ref instead of a fresh pair — the
    allocation-free form {!Memory.apply} uses per step. *)
