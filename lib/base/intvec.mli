(** A chunked, append-only vector of unboxed ints.

    Fixed-size flat chunks behind a growable spine: appends never copy
    old elements, so amortized allocation is one word per element (a
    list cons costs three), and reads are O(1).  The hot-path work-pool
    structure the step log, schedule sessions and cursor path buffers
    are built on. *)

type t

val create : ?chunk_bits:int -> unit -> t
(** [chunk_bits] (default 7, i.e. 128-element chunks — a compromise
    between amortized overhead and the allocation floor a short-lived
    vector pays for its first chunk) must lie in 2..20.
    @raise Invalid_argument otherwise. *)

val length : t -> int

val copy : t -> t
(** An independent copy: later pushes or sets on either vector are not
    seen by the other. *)
val push : t -> int -> unit

val get : t -> int -> int
(** @raise Invalid_argument out of bounds. *)

val unsafe_get : t -> int -> int
(** Unchecked read, for callers that already hold a valid index. *)

val set : t -> int -> int -> unit
(** @raise Invalid_argument out of bounds. *)

val iter : t -> (int -> unit) -> unit
val fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a
val to_list : t -> int list

val clear : t -> unit
(** Reset length to zero; chunks are retained for reuse. *)
