(* Scenario -> workload: the key-distribution families and the per-process
   client programs.  Op sequences are drawn from the scenario's family
   outside the transaction bodies, so a contention-manager retry replays
   the identical footprint; only the Dynamic family computes keys inside
   the body (from the values it reads), which is the point of that
   family — a data set no static declaration can capture. *)

open Tm_base
open Tm_runtime
open Tm_impl
open Tm_chaos

let items (s : Scenario.t) =
  List.init s.Scenario.keys (fun i -> Item.v (Printf.sprintf "k%d" i))

let expected_commits (s : Scenario.t) =
  s.Scenario.procs * s.Scenario.txns_per_proc

(* -- key distributions ------------------------------------------------- *)

(** Integer cumulative harmonic weights for the zipfian family:
    weight(i) = 1000/(i+1), so key 0 carries the head of the
    distribution and the tail decays like 1/rank. *)
let zipf_weights keys = List.init keys (fun i -> 1000 / (i + 1))

let key_of (s : Scenario.t) rand =
  match s.Scenario.family with
  | Scenario.Zipfian ->
      let weights = zipf_weights s.Scenario.keys in
      let total = List.fold_left ( + ) 0 weights in
      let r = Prng.int rand total in
      let rec walk i acc = function
        | [] -> s.Scenario.keys - 1
        | w :: rest -> if r < acc + w then i else walk (i + 1) (acc + w) rest
      in
      walk 0 0 weights
  | Scenario.Hotspot ->
      if s.Scenario.keys = 1 || Prng.int rand 100 < 80 then 0
      else 1 + Prng.int rand (s.Scenario.keys - 1)
  | Scenario.Uniform | Scenario.Read_mostly | Scenario.Long_read_only
  | Scenario.Dynamic ->
      Prng.int rand s.Scenario.keys

(* -- transaction bodies ------------------------------------------------ *)

type op = Read of int | Rmw of int

(** The op list of one (pid, txn) — drawn once, replayed verbatim on
    every retry.  The first process of a [Long_read_only] scenario reads
    the whole key space instead (the long-running read-only transaction
    of the pwf construction). *)
let ops_of (s : Scenario.t) rand ~first_pid ~pid =
  match s.Scenario.family with
  | Scenario.Long_read_only when pid = first_pid ->
      List.init s.Scenario.keys (fun k -> Read k)
  | _ ->
      List.init s.Scenario.ops_per_txn (fun _ ->
          let k = key_of s rand in
          if Prng.int rand 100 < s.Scenario.read_pct then Read k else Rmw k)

let bump txn item v_read =
  Atomically.write txn item
    (Value.int (1 + Option.value ~default:0 (Value.to_int v_read)))

let static_body item_arr ops (txn : Txn_api.txn) =
  List.iter
    (fun op ->
      match op with
      | Read k -> ignore (Atomically.read txn item_arr.(k))
      | Rmw k ->
          let v = Atomically.read txn item_arr.(k) in
          bump txn item_arr.(k) v)
    ops;
  Atomically.Done ()

(** The dynamic family: op [i+1]'s key is computed from the value op [i]
    read, so the transaction's data set depends on memory contents. *)
let dynamic_body (s : Scenario.t) item_arr ~start ~n_ops (txn : Txn_api.txn)
    =
  let k = ref start in
  for _ = 1 to n_ops do
    let v = Atomically.read txn item_arr.(!k) in
    bump txn item_arr.(!k) v;
    k :=
      (1 + Option.value ~default:0 (Value.to_int v)) mod s.Scenario.keys
  done;
  Atomically.Done ()

(* -- the simulation setup ---------------------------------------------- *)

let setup (s : Scenario.t) ~(impl : Tm_intf.impl) ~(policy : Cm.policy)
    ~seed ~commits ~gave_up ~fault_hook : Sim.setup =
  let (module M : Tm_intf.S) = impl in
  let pids = List.init s.Scenario.procs (fun p -> p + 1) in
  let first_pid = 1 in
  let item_list = items s in
  let item_arr = Array.of_list item_list in
  fun mem recorder ->
    (match fault_hook with
    | Some h -> Memory.set_fault_hook mem h
    | None -> ());
    let handle = Txn_api.instantiate impl mem recorder ~items:item_list in
    let scratch = Cm.scratch mem in
    let client pid () =
      let rand = Prng.create (Prng.derive seed pid) in
      for k = 1 to s.Scenario.txns_per_proc do
        let body =
          match s.Scenario.family with
          | Scenario.Dynamic ->
              dynamic_body s item_arr ~start:(key_of s rand)
                ~n_ops:s.Scenario.ops_per_txn
          | _ -> static_body item_arr (ops_of s rand ~first_pid ~pid)
        in
        match
          Cm.atomically policy ~scratch
            ~seed:(Prng.derive seed ((pid * 1_000) + k))
            ~tm:M.name handle ~pid body
        with
        | Cm.Committed ((), _) -> incr commits
        | Cm.Gave_up _ -> incr gave_up
      done
    in
    List.map (fun pid -> (pid, client pid)) pids
