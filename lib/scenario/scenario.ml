(* The scenario catalogue: versioned JSON descriptions of conformance
   scenarios, loaded with a strict validator.  The format is deliberately
   runtime-agnostic — a scenario names a transaction shape, a key
   distribution, a fault plan and an expectation, never a schedule or a
   TM-internal detail — so the same catalogue outlives TM and scheduler
   rewrites.  Every validation error names the file, the scenario id
   (when one parsed) and the offending field, because a catalogue is
   hand-authored data and "parse error" is not an actionable message. *)

open Tm_chaos
module J = Tm_obs.Obs_json

type family =
  | Uniform
  | Zipfian
  | Hotspot
  | Read_mostly
  | Long_read_only
  | Dynamic

let families =
  [ Uniform; Zipfian; Hotspot; Read_mostly; Long_read_only; Dynamic ]

let family_to_string = function
  | Uniform -> "uniform"
  | Zipfian -> "zipfian"
  | Hotspot -> "hotspot"
  | Read_mostly -> "read-mostly"
  | Long_read_only -> "long-read-only"
  | Dynamic -> "dynamic"

let family_of_string s =
  List.find_opt (fun f -> family_to_string f = s) families

type expect = {
  verdict : string;
  stop : string;
  lint : bool;
  min_commit_pct : int;
}

type t = {
  id : string;
  describe : string;
  family : family;
  procs : int;
  txns_per_proc : int;
  ops_per_txn : int;
  keys : int;
  read_pct : int;
  fault : Fault.klass;
  tms : string list;
  cms : string list;
  rounds : int;
  quantum : int;
  budget : int;
  expect : expect;
  quarantine : bool;
}

(* -- validation -------------------------------------------------------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(** Every key the per-scenario object may carry; anything else is a typo
    (or a schema bump this loader does not speak) and is rejected. *)
let known_fields =
  [
    "id"; "describe"; "family"; "procs"; "txns_per_proc"; "ops_per_txn";
    "keys"; "read_pct"; "fault"; "tms"; "cms"; "rounds"; "quantum";
    "budget"; "expect"; "quarantine";
  ]

let known_expect_fields = [ "verdict"; "stop"; "lint"; "min_commit_pct" ]

let get field j = J.member field j

let str ~ctx field j =
  match Option.bind (get field j) J.to_str with
  | Some s -> Some s
  | None -> (
      match get field j with
      | None -> None
      | Some _ -> bad "%s: field %S must be a string" ctx field)

let int_field ~ctx field j =
  match get field j with
  | None -> None
  | Some v -> (
      match J.to_int v with
      | Some n -> Some n
      | None -> bad "%s: field %S must be an integer" ctx field)

let bool_field ~ctx field j =
  match get field j with
  | None -> None
  | Some (J.Bool b) -> Some b
  | Some _ -> bad "%s: field %S must be a boolean" ctx field

let str_list ~ctx field j =
  match get field j with
  | None -> None
  | Some (J.List items) ->
      Some
        (List.map
           (fun v ->
             match J.to_str v with
             | Some s -> s
             | None -> bad "%s: field %S must be a list of strings" ctx field)
           items)
  | Some _ -> bad "%s: field %S must be a list of strings" ctx field

let positive ~ctx field n =
  if n <= 0 then bad "%s: field %S must be positive (got %d)" ctx field n;
  n

let pct ~ctx field n =
  if n < 0 || n > 100 then
    bad "%s: field %S must be in 0..100 (got %d)" ctx field n;
  n

let check_known ~ctx known = function
  | J.Obj fields ->
      List.iter
        (fun (k, _) ->
          if not (List.mem k known) then bad "%s: unknown field %S" ctx k)
        fields
  | _ -> bad "%s: expected an object" ctx

let parse_expect ~ctx j =
  check_known ~ctx:(ctx ^ ".expect") known_expect_fields j;
  let ctx = ctx ^ ".expect" in
  let verdict =
    match str ~ctx "verdict" j with
    | Some v -> v
    | None -> bad "%s: required field %S missing" ctx "verdict"
  in
  (match verdict with
  | "claim" | "any" -> ()
  | name ->
      if Tm_consistency.Checkers.find name = None then
        bad "%s: unknown checker %S in %S" ctx name "verdict");
  let stop =
    match str ~ctx "stop" j with
    | Some ("completed" | "any") as s -> Option.get s
    | Some other ->
        bad "%s: field %S must be \"completed\" or \"any\" (got %S)" ctx
          "stop" other
    | None -> bad "%s: required field %S missing" ctx "stop"
  in
  {
    verdict;
    stop;
    lint = Option.value ~default:false (bool_field ~ctx "lint" j);
    min_commit_pct =
      pct ~ctx "min_commit_pct"
        (Option.value ~default:0 (int_field ~ctx "min_commit_pct" j));
  }

let parse_scenario ~file j : t =
  let ctx0 = file in
  let id =
    match str ~ctx:ctx0 "id" j with
    | Some id when id <> "" -> id
    | Some _ -> bad "%s: scenario with empty %S" ctx0 "id"
    | None -> bad "%s: scenario without an %S field" ctx0 "id"
  in
  let ctx = Printf.sprintf "%s: scenario %S" file id in
  check_known ~ctx known_fields j;
  let family =
    match str ~ctx "family" j with
    | None -> bad "%s: required field %S missing" ctx "family"
    | Some s -> (
        match family_of_string s with
        | Some f -> f
        | None ->
            bad "%s: unknown family %S (one of %s)" ctx s
              (String.concat ", " (List.map family_to_string families)))
  in
  let fault =
    match str ~ctx "fault" j with
    | None -> Fault.Baseline
    | Some s -> (
        match Fault.of_name s with
        | Some k -> k
        | None -> bad "%s: unknown fault class %S" ctx s)
  in
  let tms = Option.value ~default:[] (str_list ~ctx "tms" j) in
  List.iter
    (fun n ->
      if Tm_impl.Registry.find n = None then
        bad "%s: unknown TM %S in %S" ctx n "tms")
    tms;
  let cms = Option.value ~default:[] (str_list ~ctx "cms" j) in
  List.iter
    (fun n ->
      if Cm.find n = None then bad "%s: unknown CM %S in %S" ctx n "cms")
    cms;
  let expect =
    match get "expect" j with
    | Some e -> parse_expect ~ctx e
    | None -> bad "%s: required field %S missing" ctx "expect"
  in
  let default_read_pct =
    match family with Read_mostly -> 90 | _ -> 0
  in
  let int_def field d = Option.value ~default:d (int_field ~ctx field j) in
  {
    id;
    describe = Option.value ~default:"" (str ~ctx "describe" j);
    family;
    procs = positive ~ctx "procs" (int_def "procs" 3);
    txns_per_proc = positive ~ctx "txns_per_proc" (int_def "txns_per_proc" 3);
    ops_per_txn = positive ~ctx "ops_per_txn" (int_def "ops_per_txn" 2);
    keys = positive ~ctx "keys" (int_def "keys" 4);
    read_pct = pct ~ctx "read_pct" (int_def "read_pct" default_read_pct);
    fault;
    tms;
    cms;
    rounds = positive ~ctx "rounds" (int_def "rounds" 40);
    quantum = positive ~ctx "quantum" (int_def "quantum" 8);
    budget = positive ~ctx "budget" (int_def "budget" 30_000);
    expect;
    quarantine = Option.value ~default:false (bool_field ~ctx "quarantine" j);
  }

let parse_catalogue ~file j : t list =
  check_known ~ctx:file [ "schema"; "scenarios" ] j;
  (match Option.bind (get "schema" j) J.to_int with
  | Some 1 -> ()
  | Some n -> bad "%s: unsupported schema version %d (expected 1)" file n
  | None -> bad "%s: required field %S missing" file "schema");
  match get "scenarios" j with
  | Some (J.List ss) -> List.map (parse_scenario ~file) ss
  | Some _ -> bad "%s: field %S must be a list" file "scenarios"
  | None -> bad "%s: required field %S missing" file "scenarios"

let check_unique (ss : t list) =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun s ->
      match Hashtbl.find_opt seen s.id with
      | Some prev ->
          bad "duplicate scenario id %S (first defined in %s)" s.id prev
      | None -> Hashtbl.replace seen s.id "the catalogue")
    ss

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

let load_file file =
  try
    match J.parse (read_file file) with
    | Error msg -> Error (Printf.sprintf "%s: %s" file msg)
    | Ok j ->
        let ss = parse_catalogue ~file j in
        check_unique ss;
        Ok ss
  with
  | Bad msg -> Error msg
  | Sys_error msg -> Error msg

let load_files files =
  let rec go acc = function
    | [] ->
        let ss = List.concat (List.rev acc) in
        (try
           check_unique ss;
           Ok ss
         with Bad msg -> Error msg)
    | f :: rest -> (
        match load_file f with
        | Ok ss -> go (ss :: acc) rest
        | Error _ as e -> e)
  in
  go [] files

let load_dir dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error msg
  | names ->
      let files =
        Array.to_list names
        |> List.filter (fun n ->
               Filename.check_suffix n ".json"
               && not (Filename.check_suffix n ".schema.json"))
        |> List.sort compare
        |> List.map (Filename.concat dir)
      in
      if files = [] then
        Error (Printf.sprintf "%s: no catalogue files (*.json)" dir)
      else load_files files

let to_json (s : t) : J.t =
  J.Obj
    [
      ("id", J.String s.id);
      ("describe", J.String s.describe);
      ("family", J.String (family_to_string s.family));
      ("procs", J.Int s.procs);
      ("txns_per_proc", J.Int s.txns_per_proc);
      ("ops_per_txn", J.Int s.ops_per_txn);
      ("keys", J.Int s.keys);
      ("read_pct", J.Int s.read_pct);
      ("fault", J.String (Fault.name s.fault));
      ("tms", J.List (List.map (fun t -> J.String t) s.tms));
      ("cms", J.List (List.map (fun c -> J.String c) s.cms));
      ("rounds", J.Int s.rounds);
      ("quantum", J.Int s.quantum);
      ("budget", J.Int s.budget);
      ( "expect",
        J.Obj
          [
            ("verdict", J.String s.expect.verdict);
            ("stop", J.String s.expect.stop);
            ("lint", J.Bool s.expect.lint);
            ("min_commit_pct", J.Int s.expect.min_commit_pct);
          ] );
      ("quarantine", J.Bool s.quarantine);
    ]
