(** Turn a catalogue scenario into a runnable workload: per-process
    client programs over a keyed item space, with the scenario's key
    distribution driving which items each transactional op touches.
    Everything is a pure function of (scenario, seed) — op sequences are
    precomputed outside the transaction bodies, so a contention-manager
    retry replays the identical footprint (the [Dynamic] family is the
    deliberate exception: its keys are computed from the values the
    transaction reads, which is still deterministic under the
    deterministic scheduler). *)

open Tm_impl
open Tm_chaos

val items : Scenario.t -> Tm_base.Item.t list
(** The key space: items [k0 .. k{keys-1}]. *)

val expected_commits : Scenario.t -> int
(** Transactions the workload would commit fault-free
    ([procs * txns_per_proc]). *)

val setup :
  Scenario.t ->
  impl:Tm_intf.impl ->
  policy:Cm.policy ->
  seed:int ->
  commits:int ref ->
  gave_up:int ref ->
  fault_hook:Tm_base.Memory.fault_hook option ->
  Tm_runtime.Sim.setup
(** The simulation setup: installs the fault hook (when the plan has
    one), instantiates the TM over {!items}, and returns one client per
    process running [txns_per_proc] transactions under the contention
    manager, counting commits and give-ups into the supplied refs. *)
