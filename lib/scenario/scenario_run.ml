(* The conformance runner.  One cell = one deterministic simulation of a
   scenario's workload on one (tm, cm) pair under the scenario's fault
   plan, judged against the declared expectation.  The whole cell body is
   wrapped in a handler: a crash anywhere inside — the TM, the checker,
   the generator, an injected failure — becomes that cell's [crash]
   failure and the sweep moves on.  No wall-clock is read anywhere, so
   rows are byte-deterministic under a fixed seed. *)

open Tm_base
open Tm_trace
open Tm_runtime
open Tm_consistency
open Tm_impl
open Tm_analysis
open Tm_chaos
module J = Tm_obs.Obs_json

type inject = No_inject | Inject_crash | Inject_stall

type cell = {
  tm : string;
  cm : string;
  reason : string option;
  detail : string;
}

type row = {
  id : string;
  family : string;
  fault : string;
  cells : int;
  passed : int;
  failed : int;
  quarantine : bool;
  status : string;
  failures : cell list;
}

let cells_of (s : Scenario.t) =
  let tms =
    match s.Scenario.tms with
    | [] -> Registry.all
    | names -> List.map Registry.find_exn names
  in
  let cms =
    match s.Scenario.cms with
    | [] -> Cm.all
    | names -> List.map Cm.find_exn names
  in
  List.concat_map (fun impl -> List.map (fun cm -> (impl, cm)) cms) tms

(** The stall-injection budget: a handful of steps, small enough that no
    scenario workload — not even a single transaction of the fastest TM
    under the cheapest policy — can finish inside it. *)
let stall_budget = 8

let run_cell (s : Scenario.t) ~(inject : inject) ~seed
    (impl : Tm_intf.impl) (policy : Cm.policy) : cell =
  let (module M : Tm_intf.S) = impl in
  let fail reason detail =
    { tm = M.name; cm = policy.Cm.name; reason = Some reason; detail }
  in
  try
    if inject = Inject_crash then
      failwith "injected cell crash (--inject-crash)";
    let budget =
      match inject with Inject_stall -> stall_budget | _ -> s.Scenario.budget
    in
    let pids = List.init s.Scenario.procs (fun p -> p + 1) in
    let inst =
      Fault.instantiate s.Scenario.fault ~seed ~pids
        ~rounds:s.Scenario.rounds
    in
    let commits = ref 0 and gave_up = ref 0 in
    let setup =
      Scenario_gen.setup s ~impl ~policy ~seed ~commits ~gave_up
        ~fault_hook:inst.Fault.hook
    in
    let atoms =
      List.concat
        (List.init s.Scenario.rounds (fun r ->
             inst.Fault.inject ~round:r
             @ List.map
                 (fun pid -> Schedule.Steps (pid, s.Scenario.quantum))
                 pids))
      @ List.map (fun pid -> Schedule.Until_done pid) pids
    in
    let c = Sim.start ~budget setup in
    let rec drive = function
      | [] -> ()
      | a :: rest ->
          if (Sim.apply c a).Schedule.halted then () else drive rest
    in
    drive atoms;
    let r = Sim.snapshot ~schedule:atoms c in
    let stop = r.Sim.report.Schedule.stop in
    (* an injected stall is always held to "completed": the forced budget
       exhaustion must surface as a timeout failure *)
    let must_complete =
      s.Scenario.expect.Scenario.stop = "completed" || inject = Inject_stall
    in
    match stop with
    | Schedule.Budget_exhausted _ when must_complete ->
        fail "timeout" (Schedule.stop_to_string stop)
    | Schedule.Crashed _ when must_complete ->
        fail "stop" (Schedule.stop_to_string stop)
    | _ -> (
        match History.well_formed r.Sim.history with
        | Error msg -> fail "wellformed" msg
        | Ok () -> (
            let verdict_failure =
              match s.Scenario.expect.Scenario.verdict with
              | "any" -> None
              | v -> (
                  let name =
                    if v = "claim" then Chaos_run.weakest_claim M.name
                    else v
                  in
                  (* the com(alpha)-based conditions never place aborted
                     transactions: judge the non-aborted core, and skip
                     cores too large to enumerate (same discipline as the
                     crash-closure pass) *)
                  let core = Crash_closure.core r.Sim.history in
                  if History.txn_count core > Crash_closure.max_core_txns
                  then None
                  else
                    let checker = Checkers.find_exn name in
                    match checker.Spec.check ~budget:60_000 core with
                    | Spec.Unsat ->
                        Some
                          (fail "verdict"
                             (name ^ " unsat on the non-aborted core"))
                    | Spec.Sat | Spec.Out_of_budget -> None)
            in
            match verdict_failure with
            | Some f -> f
            | None -> (
                let lint_failure =
                  if not s.Scenario.expect.Scenario.lint then None
                  else
                    let input =
                      {
                        Lint.log = r.Sim.log;
                        history = r.Sim.history;
                        name_of = Memory.name_of r.Sim.mem;
                        data_sets = None;
                        tm = Some M.name;
                        meta = [];
                      }
                    in
                    let res = Lints.run_passes Passes.trace_passes input in
                    match res.Lints.unexpected with
                    | [] -> None
                    | f :: _ ->
                        Some
                          (fail "lint"
                             (Printf.sprintf "unexpected %s finding"
                                f.Lint.pass))
                in
                match lint_failure with
                | Some f -> f
                | None ->
                    let expected = Scenario_gen.expected_commits s in
                    let min_pct =
                      s.Scenario.expect.Scenario.min_commit_pct
                    in
                    if min_pct > 0 && !commits * 100 < min_pct * expected
                    then
                      fail "commits"
                        (Printf.sprintf "%d of %d committed (< %d%%)"
                           !commits expected min_pct)
                    else
                      {
                        tm = M.name;
                        cm = policy.Cm.name;
                        reason = None;
                        detail = "";
                      })))
  with e -> fail "crash" (Printexc.to_string e)

(* a tiny deterministic string hash, so per-scenario seed derivation does
   not depend on the stdlib's unspecified Hashtbl.hash *)
let id_hash id =
  String.fold_left
    (fun acc ch -> ((acc * 131) + Char.code ch) land 0x3FFFFFFF)
    7 id

let run_row ?(tick = fun () -> ()) ~(inject : inject) ~seed
    (s : Scenario.t) : row =
  let cells = cells_of s in
  let base = seed lxor id_hash s.Scenario.id in
  let results =
    List.mapi
      (fun idx (impl, policy) ->
        (* injections target the scenario's first cell only: one contained
           failure is the property under test, the rest of the sweep must
           proceed normally *)
        let inject = if idx = 0 then inject else No_inject in
        let c =
          run_cell s ~inject ~seed:(Prng.derive base idx) impl policy
        in
        tick ();
        c)
      cells
  in
  let failures = List.filter (fun c -> c.reason <> None) results in
  (* counts taken once, not re-derived per field *)
  let n_cells = List.length results in
  let n_failed = List.length failures in
  {
    id = s.Scenario.id;
    family = Scenario.family_to_string s.Scenario.family;
    fault = Fault.name s.Scenario.fault;
    cells = n_cells;
    passed = n_cells - n_failed;
    failed = n_failed;
    quarantine = s.Scenario.quarantine;
    status =
      (if n_failed = 0 then "pass"
       else if s.Scenario.quarantine then "quarantine"
       else "fail");
    failures;
  }

(* -- rendering and the resume journal ---------------------------------- *)

let failure_json (c : cell) =
  J.Obj
    [
      ("tm", J.String c.tm);
      ("cm", J.String c.cm);
      ("reason", J.String (Option.value ~default:"" c.reason));
      ("detail", J.String c.detail);
    ]

let row_json (r : row) : J.t =
  J.Obj
    [
      Tm_obs.Schema.field;
      ("type", J.String "conform");
      ("id", J.String r.id);
      ("family", J.String r.family);
      ("fault", J.String r.fault);
      ("cells", J.Int r.cells);
      ("passed", J.Int r.passed);
      ("failed", J.Int r.failed);
      ("quarantine", J.Bool r.quarantine);
      ("status", J.String r.status);
      ("failures", J.List (List.map failure_json r.failures));
    ]

let cell_json ~id (c : cell) : J.t =
  J.Obj
    [
      Tm_obs.Schema.field;
      ("type", J.String "conform_cell");
      ("id", J.String id);
      ("tm", J.String c.tm);
      ("cm", J.String c.cm);
      ( "status",
        J.String (match c.reason with None -> "pass" | Some r -> r) );
      ("detail", J.String c.detail);
    ]

let journal_load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         let line = input_line ic in
         match J.parse line with
         | Ok j -> (
             match
               ( Option.bind (J.member "id" j) J.to_str,
                 Option.bind (J.member "status" j) J.to_str )
             with
             | Some id, Some status -> lines := (id, status, line) :: !lines
             | _ -> ())
         | Error _ -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !lines
  end
