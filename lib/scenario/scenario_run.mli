(** The conformance runner: execute catalogue scenarios against their
    TM x CM cells and judge each cell against the scenario's declared
    expectation.  Crash-contained — an exception (or an injected crash)
    inside one cell is caught and reported as that cell's failure, never
    aborting the sweep — and wall-clock-free, so the JSONL rows are
    byte-deterministic under a fixed seed. *)

open Tm_impl
open Tm_chaos

type inject = No_inject | Inject_crash | Inject_stall
(** Failure-path injections for the containment tests: [Inject_crash]
    raises inside the scenario's first cell; [Inject_stall] shrinks the
    first cell's step budget to a handful of steps and holds it to
    [expect.stop = "completed"], forcing a budget-exhaustion failure. *)

type cell = {
  tm : string;
  cm : string;
  reason : string option;
      (** [None] = pass; otherwise one of [crash], [timeout], [stop],
          [wellformed], [verdict], [lint], [commits] *)
  detail : string;
}

type row = {
  id : string;
  family : string;
  fault : string;
  cells : int;
  passed : int;
  failed : int;
  quarantine : bool;
  status : string;  (** [pass], [fail], or [quarantine] (known-bad) *)
  failures : cell list;  (** the failing cells, in sweep order *)
}

val cells_of : Scenario.t -> (Tm_intf.impl * Cm.policy) list
(** The scenario's cell space: its [tms] x [cms] selections ([] = all). *)

val run_cell :
  Scenario.t -> inject:inject -> seed:int -> Tm_intf.impl -> Cm.policy ->
  cell

val run_row :
  ?tick:(unit -> unit) -> inject:inject -> seed:int -> Scenario.t -> row
(** Run every cell of one scenario ([tick] fires per cell); the per-cell
    seeds derive from [seed] and the scenario id via {!Prng.derive}. *)

val row_json : row -> Tm_obs.Obs_json.t
(** The [{"type":"conform"}] JSONL row — also the journal line format. *)

val cell_json : id:string -> cell -> Tm_obs.Obs_json.t
(** The optional per-cell [{"type":"conform_cell"}] row. *)

val journal_load : string -> (string * string * string) list
(** Parse a resume journal: [(id, status, raw line)] per well-formed
    line, in file order; unparseable lines (a write cut short by the
    interrupt) are dropped. *)
