(** The scenario catalogue: versioned, runtime-agnostic descriptions of
    conformance scenarios.  Each entry declares a transaction shape (ops,
    key distribution), a process count, a chaos fault plan, the TM x CM
    cells it applies to, and the expected outcome.  Catalogues live as
    JSON files under [scenarios/] (schema committed next to them); the
    loader validates strictly — unknown fields, unknown TMs/CMs/checkers
    and duplicate ids are errors naming the file and field. *)

type family =
  | Uniform  (** every op picks a key uniformly *)
  | Zipfian  (** keys weighted 1/(rank+1) — a contended head, a long tail *)
  | Hotspot  (** 80% of ops hit key 0, the rest uniform over the others *)
  | Read_mostly  (** uniform keys, most ops pure reads (see [read_pct]) *)
  | Long_read_only
      (** the first process runs one long transaction reading every key
          (the pwf-readers corner); the rest run normal RMW transactions *)
  | Dynamic
      (** each op's key is computed from the value the previous op read —
          a dynamic data set no static declaration can capture *)

val family_to_string : family -> string
val family_of_string : string -> family option
val families : family list

type expect = {
  verdict : string;
      (** consistency expectation on the non-aborted core: ["claim"] (the
          TM's own weakest claim, as [pcl_tm fuzz] holds it to), ["any"]
          (no check), or an explicit checker name *)
  stop : string;
      (** scheduler stop expectation: ["completed"] (budget exhaustion is
          a conformance failure, reason [timeout]) or ["any"] (blocking
          TMs may legitimately wedge under this fault plan) *)
  lint : bool;
      (** run the pclsan trace passes; unexpected findings fail the cell *)
  min_commit_pct : int;
      (** least percentage of the workload's transactions that must
          commit (0 disables the check) *)
}

type t = {
  id : string;  (** unique across the loaded catalogue *)
  describe : string;
  family : family;
  procs : int;
  txns_per_proc : int;
  ops_per_txn : int;
  keys : int;
  read_pct : int;  (** percentage of ops that are pure reads *)
  fault : Tm_chaos.Fault.klass;
  tms : string list;  (** registry names; [] means every TM *)
  cms : string list;  (** policy names; [] means every CM *)
  rounds : int;
  quantum : int;
  budget : int;  (** per-cell step budget (the PCL-E110 timeout fence) *)
  expect : expect;
  quarantine : bool;
      (** known-bad: failures are downgraded to warnings and do not fail
          the sweep *)
}

val load_file : string -> (t list, string) result
(** Parse one catalogue file ([{"schema":1,"scenarios":[...]}]); every
    error message names the file, the scenario id (when known) and the
    offending field. *)

val load_files : string list -> (t list, string) result
(** Concatenate several files and reject duplicate ids across them. *)

val load_dir : string -> (t list, string) result
(** Load every [*.json] in a directory (sorted by name; [*.schema.json]
    is the committed JSON Schema, not a catalogue, and is skipped). *)

val to_json : t -> Tm_obs.Obs_json.t
(** Round-trippable serialization (used by [--check] dumps and tests). *)
