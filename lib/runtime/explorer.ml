(* Bounded exhaustive exploration of interleavings — a small stateless
   model checker.  Because executions are replayed from C_0, backtracking
   needs no continuation snapshots: a node of the search tree is just the
   sequence of pids stepped so far.

   Used by the test suite to verify properties over *all* executions of
   short workloads (e.g. "every interleaving of these two transactions on
   TL is strictly serializable", "the candidate TM has an interleaving that
   violates snapshot isolation"). *)

type stats = {
  mutable executions : int;  (** complete executions enumerated *)
  mutable nodes : int;  (** search-tree nodes (replays) *)
  mutable truncated : bool;  (** hit a bound before finishing *)
}

let explore ?(max_steps = 200) ?(max_executions = 100_000)
    ?(max_nodes = 1_000_000) (setup : Sim.setup) ~(pids : int list)
    ~(on_execution : Sim.result -> unit) : stats =
  let stats = { executions = 0; nodes = 0; truncated = false } in
  (* replay a path given as a reversed pid list *)
  let replay_path path_rev =
    let atoms = List.rev_map (fun pid -> Schedule.Steps (pid, 1)) path_rev in
    Sim.replay setup atoms
  in
  let rec dfs path_rev depth =
    if stats.nodes >= max_nodes || stats.executions >= max_executions then
      stats.truncated <- true
    else begin
      stats.nodes <- stats.nodes + 1;
      let r = replay_path path_rev in
      let unfinished = List.filter (fun pid -> not (r.Sim.finished pid)) pids in
      if unfinished = [] then begin
        stats.executions <- stats.executions + 1;
        on_execution r
      end
      else if depth >= max_steps then stats.truncated <- true
      else
        List.iter
          (fun pid ->
            (* skip pids that take no step (finished mid-atom) to avoid
               duplicate executions *)
            let r' = replay_path (pid :: path_rev) in
            let progressed =
              List.length r'.Sim.log > List.length r.Sim.log
              || r'.Sim.finished pid <> r.Sim.finished pid
            in
            if progressed then dfs (pid :: path_rev) (depth + 1))
          unfinished
    end
  in
  Tm_obs.Sink.span "explorer.explore" (fun () -> dfs [] 0);
  Tm_obs.Sink.add "explorer_nodes_total" stats.nodes;
  Tm_obs.Sink.add "explorer_executions_total" stats.executions;
  if stats.truncated then Tm_obs.Sink.incr "explorer_truncated_total";
  stats

(** [for_all setup ~pids prop] — does [prop] hold of every complete bounded
    execution?  Returns the first counterexample if not. *)
let for_all ?max_steps ?max_executions ?max_nodes setup ~pids
    (prop : Sim.result -> bool) : (stats, Sim.result) result =
  let counter = ref None in
  let stats =
    explore ?max_steps ?max_executions ?max_nodes setup ~pids
      ~on_execution:(fun r ->
        if !counter = None && not (prop r) then counter := Some r)
  in
  match !counter with None -> Ok stats | Some r -> Error r

(** [exists setup ~pids prop] — is there a bounded execution satisfying
    [prop]? *)
let exists ?max_steps ?max_executions ?max_nodes setup ~pids
    (prop : Sim.result -> bool) : Sim.result option =
  let witness = ref None in
  let (_ : stats) =
    explore ?max_steps ?max_executions ?max_nodes setup ~pids
      ~on_execution:(fun r ->
        if !witness = None && prop r then witness := Some r)
  in
  !witness
