(* Bounded exhaustive exploration of interleavings — a small stateless
   model checker on the incremental engine.

   A search-tree node is a {!Sim.cursor}: descending into the first child
   advances the node's own live world by one step (constant work), and
   each later sibling starts from an O(1) fork of the node that pays a
   single prefix replay when first advanced.  The old engine replayed the
   whole prefix at every node *and* at every candidate probe — O(depth^2)
   simulation steps per path; the cursor engine makes a leftmost descent
   linear and spends exactly one replay per backtrack point.

   With [~por:true] the search adds sleep-set dynamic partial-order
   reduction (Godefroid).  Two enabled steps are independent iff they
   touch different base objects or their primitives commute on the same
   object (both trivial — see [Primitive.commute]); the next access of
   every started process is already parked in its scheduler cell, so the
   check costs nothing ([Sim.pending]).  A process whose next access is
   unknown (never stepped: its prelude has not run to a primitive) is
   conservatively dependent with everything.  Sleep sets preserve at
   least one linearization of every Mazurkiewicz trace, so every
   reachable final history is still enumerated — only redundant
   reorderings of commuting steps are skipped.

   Used by the test suite to verify properties over *all* executions of
   short workloads (e.g. "every interleaving of these two transactions on
   TL is strictly serializable", "the candidate TM has an interleaving
   that violates snapshot isolation"). *)

open Tm_base

type stats = {
  mutable executions : int;  (** complete executions enumerated *)
  mutable nodes : int;  (** search-tree nodes visited *)
  mutable truncated : bool;  (** hit a bound before finishing *)
  mutable sleep_pruned : int;
      (** candidate steps skipped by sleep-set reduction *)
  mutable replays : int;
      (** prefix re-executions paid for backtracking (fork
          materializations beyond the live search frontier) *)
  mutable stopped_early : bool;
      (** the [on_execution] callback cut the search short *)
}

exception Stop_exploration

(* independence of p's step (request [rp], captured before stepping) with
   the *next* step of a sleeping process [q]: distinct objects always
   commute, same-object accesses iff both primitives are trivial.
   Unknown accesses are conservatively dependent. *)
let dependent c (rp : Proc.request option) q =
  match (rp, Sim.pending c q) with
  | Some a, Some b ->
      Oid.equal a.Proc.oid b.Proc.oid
      && not (Primitive.commute a.Proc.prim b.Proc.prim)
  | _ -> true

let explore_until ?(max_steps = 200) ?(max_executions = 100_000)
    ?(max_nodes = 1_000_000) ?(por = false) (setup : Sim.setup)
    ~(pids : int list)
    ~(on_execution : Sim.result -> [ `Continue | `Stop ]) : stats =
  let stats =
    {
      executions = 0;
      nodes = 0;
      truncated = false;
      sleep_pruned = 0;
      replays = 0;
      stopped_early = false;
    }
  in
  (* [c] is the live world at this node; [sleep] the pids whose next step
     was already explored from an equivalent node (por mode only) *)
  let rec dfs c depth sleep =
    if stats.nodes >= max_nodes || stats.executions >= max_executions then
      stats.truncated <- true
    else begin
      stats.nodes <- stats.nodes + 1;
      let unfinished =
        List.filter (fun pid -> not (Sim.finished c pid)) pids
      in
      if unfinished = [] then begin
        stats.executions <- stats.executions + 1;
        match on_execution (Sim.snapshot c) with
        | `Continue -> ()
        | `Stop ->
            stats.stopped_early <- true;
            raise_notrace Stop_exploration
      end
      else if depth >= max_steps then stats.truncated <- true
      else begin
        let candidates =
          if por then List.filter (fun p -> not (List.mem p sleep)) unfinished
          else unfinished
        in
        if por then
          stats.sleep_pruned <-
            stats.sleep_pruned
            + (List.length unfinished - List.length candidates);
        (* checkpoint this node before its live world is consumed by the
           first descending child *)
        let base = Sim.fork c in
        let avail = ref (Some c) in
        let take () =
          match !avail with
          | Some c0 ->
              avail := None;
              c0
          | None ->
              stats.replays <- stats.replays + 1;
              Sim.fork base
        in
        let rec siblings sleep_now = function
          | [] -> ()
          | p :: rest ->
              let child = take () in
              let rp = Sim.pending child p in
              if Sim.step child p then begin
                let child_sleep =
                  if por then
                    List.filter (fun q -> not (dependent child rp q)) sleep_now
                  else []
                in
                dfs child (depth + 1) child_sleep;
                siblings (if por then p :: sleep_now else sleep_now) rest
              end
              else begin
                (* no step taken: the world is unchanged, so this cursor
                   still represents the node — reuse it *)
                avail := Some child;
                siblings sleep_now rest
              end
        in
        siblings sleep candidates
      end
    end
  in
  Tm_obs.Sink.span "explorer.explore" (fun () ->
      let root = Sim.start setup in
      try dfs root 0 [] with Stop_exploration -> ());
  Tm_obs.Sink.add "explorer_nodes_total" stats.nodes;
  Tm_obs.Sink.add "explorer_executions_total" stats.executions;
  Tm_obs.Sink.add "explorer_sleep_pruned_total" stats.sleep_pruned;
  Tm_obs.Sink.add "explorer_replays_total" stats.replays;
  if stats.stopped_early then Tm_obs.Sink.incr "explorer_early_stop_total";
  if stats.truncated then Tm_obs.Sink.incr "explorer_truncated_total";
  stats

let explore ?max_steps ?max_executions ?max_nodes ?por (setup : Sim.setup)
    ~(pids : int list) ~(on_execution : Sim.result -> unit) : stats =
  explore_until ?max_steps ?max_executions ?max_nodes ?por setup ~pids
    ~on_execution:(fun r ->
      on_execution r;
      `Continue)

(** [for_all setup ~pids prop] — does [prop] hold of every complete bounded
    execution?  Returns the first counterexample if not; the search stops
    at it (counted in [stats.stopped_early]). *)
let for_all ?max_steps ?max_executions ?max_nodes ?por setup ~pids
    (prop : Sim.result -> bool) : (stats, Sim.result) result =
  let counter = ref None in
  let stats =
    explore_until ?max_steps ?max_executions ?max_nodes ?por setup ~pids
      ~on_execution:(fun r ->
        if prop r then `Continue
        else begin
          counter := Some r;
          `Stop
        end)
  in
  match !counter with None -> Ok stats | Some r -> Error r

(** [exists setup ~pids prop] — is there a bounded execution satisfying
    [prop]?  The search stops at the first witness. *)
let exists ?max_steps ?max_executions ?max_nodes ?por setup ~pids
    (prop : Sim.result -> bool) : Sim.result option =
  let witness = ref None in
  let (_ : stats) =
    explore_until ?max_steps ?max_executions ?max_nodes ?por setup ~pids
      ~on_execution:(fun r ->
        if prop r then begin
          witness := Some r;
          `Stop
        end
        else `Continue)
  in
  !witness
