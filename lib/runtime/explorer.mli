(** Bounded exhaustive exploration of interleavings — a small stateless
    model checker on the incremental engine.

    A search node is a {!Sim.cursor}: the first child advances the node's
    live world in place (constant work); each later sibling starts from
    an O(1) fork that pays one prefix replay when first advanced.  With
    [~por:true], sleep-set dynamic partial-order reduction skips
    interleavings that only reorder independent steps — two enabled steps
    are independent iff they touch different base objects or both
    primitives are trivial ([Primitive.commute]); every reachable final
    history is still enumerated (see docs/EXPLORATION.md for the
    soundness argument).  [por] defaults to off, which enumerates exactly
    the naive DFS's executions in the same order.

    Used to verify properties over {e all} executions of short workloads
    ("every interleaving of these transactions on TL is strictly
    serializable"; "the candidate TM has an interleaving violating
    snapshot isolation"). *)

type stats = {
  mutable executions : int;  (** complete executions enumerated *)
  mutable nodes : int;  (** search-tree nodes visited *)
  mutable truncated : bool;  (** a bound was hit before finishing *)
  mutable sleep_pruned : int;
      (** candidate steps skipped by sleep-set reduction *)
  mutable replays : int;
      (** prefix re-executions paid for backtracking (fork
          materializations beyond the live search frontier) *)
  mutable stopped_early : bool;
      (** the [on_execution] callback cut the search short *)
}

val explore :
  ?max_steps:int ->
  ?max_executions:int ->
  ?max_nodes:int ->
  ?por:bool ->
  Sim.setup ->
  pids:int list ->
  on_execution:(Sim.result -> unit) ->
  stats

val explore_until :
  ?max_steps:int ->
  ?max_executions:int ->
  ?max_nodes:int ->
  ?por:bool ->
  Sim.setup ->
  pids:int list ->
  on_execution:(Sim.result -> [ `Continue | `Stop ]) ->
  stats
(** Like {!explore}, but the callback can cut the search short
    ([stats.stopped_early] records that it did) — what {!for_all} and
    {!exists} use to stop at the first counterexample/witness. *)

val for_all :
  ?max_steps:int ->
  ?max_executions:int ->
  ?max_nodes:int ->
  ?por:bool ->
  Sim.setup ->
  pids:int list ->
  (Sim.result -> bool) ->
  (stats, Sim.result) result
(** Does the property hold of every complete bounded execution?  Returns
    the first counterexample otherwise; the search stops at it. *)

val exists :
  ?max_steps:int ->
  ?max_executions:int ->
  ?max_nodes:int ->
  ?por:bool ->
  Sim.setup ->
  pids:int list ->
  (Sim.result -> bool) ->
  Sim.result option
(** A witness execution satisfying the property, if the bounded search
    finds one; the search stops at the first witness. *)
