(* The deterministic step-granularity scheduler.

   Processes are spawned as thunks; the scheduler advances a chosen process
   by exactly one atomic step at a time.  Any execution of the paper's model
   (solo runs, single adversarial steps, arbitrary interleavings) is a
   sequence of [step] calls, and identical sequences produce bit-identical
   memory states, access logs and histories. *)

open Tm_base

exception Injected_crash of { pid : int; step : int }
(** The tag distinguishing a chaos-engine crash-stop from a genuine OCaml
    exception escaping a process.  Consumers of {!crashed} must treat the
    two differently: an injected crash is scripted adversity the rest of
    the system should survive, a real exception is a TM bug that must
    never be masked by a chaos run. *)

let injected = function Injected_crash _ -> true | _ -> false

type status =
  | Not_started of (unit -> unit)
  | Pending of (Value.t, unit) Effect.Deep.continuation
      (* the request itself lives in the cell's [req] field: splitting it
         off keeps the per-step [Pending] box at its minimum size *)
  | Stepping  (* transient marker while a continuation is running *)
  | Finished
  | Failed of exn

type cell = {
  pid : int;
  mutable status : status;
  mutable req : Proc.request;  (* meaningful only while status = Pending *)
  mutable on_step : ((Value.t, unit) Effect.Deep.continuation -> unit) option;
      (* the effect handler's resume closure, built once per process so
         performing a step allocates neither a closure nor its [Some] *)
}

let dummy_req : Proc.request =
  { Proc.oid = Oid.of_int 0; prim = Primitive.Read; tid = None }

let make_cell pid f =
  let c = { pid; status = Not_started f; req = dummy_req; on_step = None } in
  c.on_step <- Some (fun k -> c.status <- Pending k);
  c

(* Cells live in a dense array indexed by pid (pids are small ints chosen
   by setups): stepping a process is an array read, not a hashtable probe
   that boxes its answer in an option on every one of the millions of
   steps a soak run takes. *)
type t = { mem : Memory.t; mutable cells : cell option array }

let create mem = { mem; cells = Array.make 8 None }
let memory t = t.mem

let spawn t ~pid f =
  if pid < 0 then invalid_arg "Scheduler.spawn: negative pid";
  if pid >= Array.length t.cells then begin
    let cap = max (pid + 1) (2 * Array.length t.cells) in
    let cells = Array.make cap None in
    Array.blit t.cells 0 cells 0 (Array.length t.cells);
    t.cells <- cells
  end;
  (match t.cells.(pid) with
  | Some _ ->
      invalid_arg (Printf.sprintf "Scheduler.spawn: pid %d already exists" pid)
  | None -> ());
  Tm_obs.Sink.incr "sched_spawn_total";
  t.cells.(pid) <- Some (make_cell pid f)

let cell t pid =
  if pid >= 0 && pid < Array.length t.cells then
    match Array.unsafe_get t.cells pid with
    | Some c -> c
    | None ->
        invalid_arg (Printf.sprintf "Scheduler.step: unknown pid %d" pid)
  else invalid_arg (Printf.sprintf "Scheduler.step: unknown pid %d" pid)

let handler (c : cell) : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> c.status <- Finished);
    exnc =
      (fun e ->
        Tm_obs.Sink.incr "sched_crash_total";
        c.status <- Failed e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Proc.Step req ->
            (* the GADT match refines [a] to [Value.t], so the cell's
               pre-built resume closure is returned as-is *)
            c.req <- req;
            (c.on_step : ((a, unit) Effect.Deep.continuation -> unit) option)
        | _ -> None);
  }

let start_if_needed (c : cell) =
  match c.status with
  | Not_started f ->
      c.status <- Stepping;
      Effect.Deep.match_with f () (handler c)
  | _ -> ()

type step_result = Stepped | Already_finished | Crashed of exn

(** Advance process [pid] by one atomic step.  Starting a process runs its
    local code up to (and including) its first primitive. *)
let step t pid : step_result =
  let c = cell t pid in
  start_if_needed c;
  match c.status with
  | Finished -> Already_finished
  | Failed e -> Crashed e
  | Pending k ->
      let req = c.req in
      let resp =
        Memory.apply t.mem ~pid ?tid:req.tid req.oid req.prim
      in
      c.status <- Stepping;
      Effect.Deep.continue k resp;
      (* the handler has updated the status to Pending/Finished/Failed *)
      Stepped
  | Not_started _ | Stepping -> assert false

(** Crash-stop process [pid] (the asynchronous model's fault: a crashed
    process is simply never scheduled again).  The pending continuation is
    dropped — its stack vanishes, exactly crash-stop semantics.  No-op if
    the process already finished or crashed. *)
let inject_crash t pid =
  let c = cell t pid in
  match c.status with
  | Finished | Failed _ -> ()
  | Not_started _ | Pending _ | Stepping ->
      Tm_obs.Sink.incr "sched_injected_crash_total";
      c.status <-
        Failed (Injected_crash { pid; step = Memory.step_count t.mem })

let finished t pid =
  match (cell t pid).status with Finished -> true | _ -> false

(** The request process [pid] will issue at its next step, if its local
    code has already run up to a primitive.  [None] for a process that
    was never stepped ([Not_started] — its first access is unknown until
    its prelude runs) and for finished or crashed processes.  The request
    is stable until [pid] itself is stepped, which is what makes it
    usable as the conflict oracle of a partial-order-reduced search. *)
let pending t pid =
  let c = cell t pid in
  match c.status with
  | Pending _ -> Some c.req
  | Not_started _ | Stepping | Finished | Failed _ -> None

let crashed t pid =
  match (cell t pid).status with Failed e -> Some e | _ -> None

type crash_state = No_crash | Injected_stop | Genuine of exn

(** Allocation-free crash query for the schedule interpreter, which asks
    after every quantum: the common answers carry no payload. *)
let crash_state t pid =
  match (cell t pid).status with
  | Failed e -> if injected e then Injected_stop else Genuine e
  | _ -> No_crash

let runnable t pid =
  match (cell t pid).status with
  | Not_started _ | Pending _ -> true
  | Stepping | Finished | Failed _ -> false

let pids t =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (match t.cells.(i) with Some _ -> i :: acc | None -> acc)
  in
  go (Array.length t.cells - 1) []

(** Run [pid] for at most [n] steps; returns the number of steps taken
    (fewer than [n] only if the process finished or crashed). *)
let run_steps t pid n =
  let rec go taken =
    if taken >= n then taken
    else
      match step t pid with
      | Stepped -> go (taken + 1)
      | Already_finished | Crashed _ -> taken
  in
  go 0

type solo_result = Done of int | Out_of_budget | Crash of exn

(** Run [pid] solo until it finishes, up to [budget] steps.  [Done n] means
    the process finished after [n] further steps.  [Out_of_budget] is how a
    blocking TM's failure to make solo progress manifests. *)
let run_solo t pid ~budget : solo_result =
  let rec go taken =
    if finished t pid then Done taken
    else
      match crashed t pid with
      | Some e -> Crash e
      | None ->
          if taken >= budget then Out_of_budget
          else begin
            match step t pid with
            | Stepped -> go (taken + 1)
            | Already_finished -> Done taken
            | Crashed e -> Crash e
          end
  in
  go 0
