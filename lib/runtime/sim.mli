(** The incremental execution engine.

    Determinism identifies an execution with its schedule from C0, and a
    {!cursor} exploits the identification both ways: forwards it is a
    live world (memory, recorder, scheduler, schedule session) advancing
    one atom at a time with no prefix re-execution; backwards, {!fork}
    is O(1) — the fork shares the executed path and re-materializes a
    live world lazily, by replaying that path, only if it is ever
    advanced.  (OCaml effects give one-shot continuations, so the live
    world itself can never be duplicated; lazy replay is what makes
    forking sound.)  {!replay} — the original API — is start + feed the
    whole schedule + snapshot, unchanged in behavior. *)

open Tm_base
open Tm_trace

type setup = Memory.t -> Recorder.t -> (int * (unit -> unit)) list
(** A world under test: given fresh memory and a fresh recorder, set up
    shared state and return the per-process programs to spawn. *)

type result = {
  mem : Memory.t;
  history : History.t;
  log : Access_log.entry list;
  report : Schedule.report;
  finished : int -> bool;
  steps_of : int -> int;  (** steps taken by a pid over the whole run *)
}

(** {1 Cursors} *)

type cursor
(** A resumable execution state: the configuration reached by the atoms
    executed so far, advanceable without re-executing them. *)

val start : ?budget:int -> setup -> cursor
(** A live cursor at C0 — memory and recorder created, the installed
    flight recorder reset and hooked in, programs spawned, nothing
    stepped.  [budget] (default 100_000) bounds each [Until_done] atom
    fed later and is recorded in snapshot metadata. *)

val fork : cursor -> cursor
(** An O(1) copy at the same configuration.  The fork shares the executed
    path; a live world is rebuilt (one deterministic replay of the path,
    counted in the ["sim_cursor_replays_total"] counter) the first time
    the fork is queried or advanced.  Forking does not disturb the
    original: both can be advanced independently thereafter. *)

val step : cursor -> int -> bool
(** [step c pid] advances [pid] by one atomic step; true iff the process
    progressed — it took a memory step, or its (empty-bodied) program
    finished on being started.  Constant work beyond the step itself: no
    prefix re-execution, no log-length scan.  False leaves the world
    unchanged: the process had already finished, had crashed, or the
    execution has halted (a genuinely-crashed execution schedules no
    further steps, exactly as a replay of its path would refuse to). *)

val apply : cursor -> Schedule.atom -> Schedule.feed_outcome
(** Feed one schedule atom (quanta, solo segments, fault atoms).
    Executed atoms extend the path a fork replays; post-halt no-ops do
    not. *)

val finished : cursor -> int -> bool
val crashed : cursor -> int -> exn option

val pending : cursor -> int -> Proc.request option
(** The request [pid] will issue at its next step, if its local code has
    already run up to a primitive ({!Scheduler.pending}) — the conflict
    oracle the partial-order-reduced explorer keys on. *)

val steps_taken : cursor -> int
(** Global memory steps executed so far — the constant-time progress
    clock (what [List.length result.log] cost O(n) to ask). *)

val on_tick : cursor -> (int -> unit) -> unit
(** Install a live-progress hook on the cursor's schedule session:
    called with the cumulative executed step count after every atom
    that executes at least one step ({!Schedule.set_tick}).  Step
    counts are deterministic, so tick boundaries are too.  Forks
    inherit the hook, but a re-materialization replay does not re-fire
    ticks for its prefix — ticks mark live progress only. *)

val path : cursor -> Schedule.atom list
(** The executed atoms, oldest first: a schedule that replays to exactly
    this configuration. *)

val is_live : cursor -> bool
(** False for a fork that has not yet re-materialized its world. *)

val snapshot : ?flight:bool -> ?schedule:Schedule.atom list -> cursor -> result
(** The cursor's current state as a {!result}.  With [flight] (default
    true) the installed flight recorder's run context is filled exactly
    as {!replay} fills it, so the artifact of a schedule the incremental
    search visited is bit-identical to a from-scratch replay's artifact.
    [schedule] overrides the schedule rendered into the metadata (for
    scripts with an unexecuted tail). *)

(** {1 Whole-schedule replay} *)

val replay : ?budget:int -> setup -> Schedule.atom list -> result

val solo_length :
  ?budget:int -> setup -> prefix:Schedule.atom list -> int -> int option
(** Number of steps a process needs to run solo to completion after
    replaying [prefix], or [None] if it exceeds the budget. *)
