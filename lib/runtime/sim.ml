(* The incremental execution engine.

   An execution is identified by its schedule from the initial
   configuration C_0, and determinism makes the identification exact: the
   same setup fed the same atoms reaches the same configuration.  A
   [cursor] exploits this both ways.  Forwards, it holds a *live* world —
   memory, recorder, scheduler, schedule session — that advances one atom
   at a time without ever re-executing its prefix.  Backwards, forking a
   cursor is O(1): the fork shares the executed path and rebuilds a live
   world lazily, by replaying the path, only if it is ever advanced.  A
   search-tree node is therefore a cheap resumable state, not a pid path
   that costs a replay per query (OCaml effects give us one-shot
   continuations, so the live world itself can never be duplicated —
   lazy replay is what makes forking sound).

   [replay] — the original API — is now a thin wrapper: start a cursor,
   feed the whole schedule, snapshot. *)

open Tm_base
open Tm_trace

(** A world under test: given fresh memory and a fresh history recorder,
    set up whatever shared state is needed and return the per-process
    programs to spawn. *)
type setup = Memory.t -> Recorder.t -> (int * (unit -> unit)) list

type result = {
  mem : Memory.t;
  history : History.t;
  log : Access_log.entry list;
  report : Schedule.report;
  finished : int -> bool;
  steps_of : int -> int;  (** steps taken by a pid over the whole run *)
}

(* -- cursors ----------------------------------------------------------- *)

type live = {
  mem : Memory.t;
  recorder : Recorder.t;
  sched : Scheduler.t;
  session : Schedule.session;
}

type cursor = {
  setup : setup;
  budget : int;
  path : Intvec.t;  (* executed atoms, packed one int each, in order *)
  mutable live : live option;  (* None: a fork not yet re-materialized *)
  mutable tick : (int -> unit) option;
      (* live-progress hook; installed on the session only after a
         re-materialization has replayed the prefix, so replays never
         re-fire ticks that already happened *)
}

(* The executed path is stored packed, one int per atom, in an
   append-only {!Intvec} rather than as a cons per step: tag in the low 3
   bits, pid in the next 21, the [Steps] count above.  Decoding happens
   only on the cold paths (re-materialization replays, [path],
   snapshot metadata). *)

let encode_atom = function
  | Schedule.Steps (pid, n) -> (n lsl 24) lor (pid lsl 3)
  | Schedule.Until_done pid -> (pid lsl 3) lor 1
  | Schedule.Crash pid -> (pid lsl 3) lor 2
  | Schedule.Park pid -> (pid lsl 3) lor 3
  | Schedule.Unpark pid -> (pid lsl 3) lor 4
  | Schedule.Poison pid -> (pid lsl 3) lor 5

let decode_atom code : Schedule.atom =
  let pid = (code lsr 3) land 0x1F_FFFF in
  match code land 7 with
  | 0 -> Schedule.Steps (pid, code lsr 24)
  | 1 -> Schedule.Until_done pid
  | 2 -> Schedule.Crash pid
  | 3 -> Schedule.Park pid
  | 4 -> Schedule.Unpark pid
  | _ -> Schedule.Poison pid

let path_atoms (c : cursor) : Schedule.atom list =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) (decode_atom (Intvec.get c.path i) :: acc)
  in
  go (Intvec.length c.path - 1) []

(* Build (or rebuild) the live world: fresh memory and recorder, the
   global flight recorder reset and hooked in (one flight trace = one
   execution, so a fork's re-materialization re-records its prefix and an
   explorer callback always sees exactly the execution that just ran),
   programs spawned, and the executed path fed back through a fresh
   session.  Determinism makes the result bit-identical to the world the
   cursor was forked from. *)
let materialize (c : cursor) : live =
  match c.live with
  | Some l -> l
  | None ->
      Tm_obs.Sink.incr "sim_cursor_replays_total";
      let mem = Memory.create () in
      let recorder = Recorder.create () in
      (match Flight.default () with
      | Some fl ->
          Flight.reset fl;
          Memory.set_flight_hook mem (fun log i ->
              Flight.record fl (Access_log.get log i))
      | None -> ());
      let programs = c.setup mem recorder in
      let sched = Scheduler.create mem in
      List.iter (fun (pid, f) -> Scheduler.spawn sched ~pid f) programs;
      let session = Schedule.session ~budget:c.budget sched in
      let l = { mem; recorder; sched; session } in
      c.live <- Some l;
      for i = 0 to Intvec.length c.path - 1 do
        ignore (Schedule.feed_steps session (decode_atom (Intvec.get c.path i)))
      done;
      Option.iter (Schedule.set_tick session) c.tick;
      l

let start ?(budget = 100_000) (setup : setup) : cursor =
  let c =
    { setup; budget; path = Intvec.create (); live = None; tick = None }
  in
  ignore (materialize c);
  c

(** Install a live-progress hook: called with the session's cumulative
    step count after every atom that executes a step.  Forks inherit
    the hook but a re-materialization replay never re-fires ticks for
    its prefix — ticks mark live progress, not replayed history. *)
let on_tick (c : cursor) f =
  c.tick <- Some f;
  match c.live with
  | Some l -> Schedule.set_tick l.session f
  | None -> ()

(* The fork copies the packed path (O(path length) int blits): the
   parent keeps appending to its own buffer, so the two cursors must not
   share it.  Still far cheaper than the replay the fork's first advance
   will pay anyway. *)
let fork (c : cursor) : cursor =
  { c with live = None; path = Intvec.copy c.path }

let is_live (c : cursor) : bool = c.live <> None
let path (c : cursor) : Schedule.atom list = path_atoms c

let finished (c : cursor) pid = Scheduler.finished (materialize c).sched pid
let crashed (c : cursor) pid = Scheduler.crashed (materialize c).sched pid

let pending (c : cursor) pid : Proc.request option =
  Scheduler.pending (materialize c).sched pid

let steps_taken (c : cursor) : int = Memory.step_count (materialize c).mem

(** Feed one schedule atom to the live world.  Executed atoms (and only
    those — a post-stop no-op is not part of the execution) extend the
    cursor's path, so a later fork reproduces exactly this state. *)
let apply (c : cursor) (atom : Schedule.atom) : Schedule.feed_outcome =
  let l = materialize c in
  if Schedule.session_stopped l.session then
    { Schedule.steps = 0; halted = true }
  else begin
    let f = Schedule.feed l.session atom in
    Intvec.push c.path (encode_atom atom);
    f
  end

(* [Steps (pid, 1)] atoms are immutable and identical across every cursor,
   so the single-step engine below shares one per small pid instead of
   allocating one per step taken. *)
let step1_cache = Array.init 64 (fun pid -> Schedule.Steps (pid, 1))

let step1 pid =
  if pid >= 0 && pid < Array.length step1_cache then
    Array.unsafe_get step1_cache pid
  else Schedule.Steps (pid, 1)

(* encode_atom (Steps (pid, 1)), without the atom *)
let step1_code pid = (1 lsl 24) lor (pid lsl 3)

(** Advance [pid] by one atomic step; true iff the process progressed —
    it took a memory step, or its (empty-bodied) program finished on
    being started.  Constant work beyond the step itself: no prefix
    re-execution, no log-length scan.  False means the world is
    unchanged: the process had already finished, had crashed, or the
    session is stopped (a genuinely-crashed execution schedules no
    further steps, exactly as a replay of its path would refuse to). *)
let step (c : cursor) pid : bool =
  let l = materialize c in
  let was_finished = Scheduler.finished l.sched pid in
  let atom = step1 pid in
  let taken = Schedule.feed_steps l.session atom in
  let progressed =
    taken > 0 || ((not was_finished) && Scheduler.finished l.sched pid)
  in
  if progressed then Intvec.push c.path (step1_code pid);
  progressed

(* -- snapshots --------------------------------------------------------- *)

let per_pid_steps log =
  let per_pid = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let pid = e.Access_log.pid in
      Hashtbl.replace per_pid pid
        (1 + Option.value ~default:0 (Hashtbl.find_opt per_pid pid)))
    log;
  per_pid

(** Package the cursor's current state as a {!result}.  With [flight]
    (the default), the installed flight recorder's run context is filled
    exactly as {!replay} fills it — names, history, schedule, budget,
    stop, crashes, steps — so the trace artifact of a schedule the
    incremental search visited is bit-identical to the artifact a
    from-scratch replay of that schedule would dump.  [schedule]
    overrides the schedule rendered into the metadata (a caller that fed
    a script with an unexecuted tail records the script, as [replay]
    always did). *)
let snapshot ?(flight = true) ?schedule (c : cursor) : result =
  let l = materialize c in
  let alog = Memory.log l.mem in
  let report = Schedule.session_report l.session in
  let log = Access_log.entries alog in
  let steps_of pid = Access_log.pid_step_count alog pid in
  (if flight then
     match Flight.default () with
     | Some fl ->
         Flight.set_names fl
           (Array.init (Memory.n_objects l.mem) (Memory.name_of l.mem));
         Flight.set_history fl (Recorder.history l.recorder);
         Flight.set_meta fl "schedule"
           (Schedule.to_string
              (match schedule with
              | Some atoms -> atoms
              | None -> path_atoms c));
         Flight.set_meta fl "budget" (string_of_int c.budget);
         Flight.set_meta fl "stop"
           (Schedule.stop_to_string report.Schedule.stop);
         (* mark injected crash-stops so `explain` can highlight the
            crash steps and the crash-closure pass can cut there *)
         (match report.Schedule.crashes with
         | [] -> ()
         | cs ->
             Flight.set_meta fl "crashes"
               (String.concat ","
                  (List.map
                     (fun (pid, step) -> Printf.sprintf "p%d@%d" pid step)
                     cs)));
         Flight.set_meta fl "steps" (string_of_int (Access_log.length alog))
     | None -> ());
  {
    mem = l.mem;
    history = Recorder.history l.recorder;
    log;
    report;
    finished = (fun pid -> Scheduler.finished l.sched pid);
    steps_of;
  }

(* -- whole-schedule replay --------------------------------------------- *)

let replay ?(budget = 100_000) (setup : setup) (atoms : Schedule.atom list)
    : result =
  Tm_obs.Sink.incr "sim_replay_total";
  let mem_ref = ref None in
  (* bind the span step clock to this replay's memory so nested spans
     (e.g. checker calls made from a probe) report step durations *)
  Tm_obs.Sink.with_step_source
    (fun () ->
      match !mem_ref with Some m -> Memory.step_count m | None -> 0)
    (fun () ->
      Tm_obs.Sink.span "sim.replay" (fun () ->
          let c =
            { setup; budget; path = Intvec.create (); live = None; tick = None }
          in
          let l = materialize c in
          mem_ref := Some l.mem;
          List.iter (fun a -> ignore (apply c a)) atoms;
          let r = snapshot ~schedule:atoms c in
          Tm_obs.Sink.observe "sim_replay_steps"
            (float_of_int (List.length r.log));
          (* per-pid step attribution, from the authoritative log *)
          Hashtbl.iter
            (fun pid n ->
              Tm_obs.Sink.add
                ~labels:[ ("pid", string_of_int pid) ]
                "sched_pid_steps_total" n)
            (per_pid_steps r.log);
          r))

(** [solo_length setup pid] — number of steps [pid]'s program needs to run
    solo from C_0 to completion, or [None] if it exceeds the budget. *)
let solo_length ?budget (setup : setup) ~(prefix : Schedule.atom list) pid :
    int option =
  let r = replay ?budget setup (prefix @ [ Schedule.Until_done pid ]) in
  match r.report.stop with
  | Schedule.Completed ->
      (* last atom's step count *)
      let rec last = function
        | [] -> None
        | [ n ] -> Some n
        | _ :: rest -> last rest
      in
      last r.report.steps_per_atom
  | Schedule.Budget_exhausted _ | Schedule.Crashed _ -> None
