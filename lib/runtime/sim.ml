(* Replay-style simulation: every execution is (re)generated from the
   initial configuration C_0 by a schedule.  This gives the adversary
   "configurations" for free — the configuration after a prefix is simply
   the state reached by replaying that prefix — without having to snapshot
   continuations. *)

open Tm_base
open Tm_trace

(** A world under test: given fresh memory and a fresh history recorder,
    set up whatever shared state is needed and return the per-process
    programs to spawn. *)
type setup = Memory.t -> Recorder.t -> (int * (unit -> unit)) list

type result = {
  mem : Memory.t;
  history : History.t;
  log : Access_log.entry list;
  report : Schedule.report;
  finished : int -> bool;
  steps_of : int -> int;  (** steps taken by a pid over the whole run *)
}

let replay ?(budget = 100_000) (setup : setup) (atoms : Schedule.atom list) :
    result =
  let mem = Memory.create () in
  Tm_obs.Sink.incr "sim_replay_total";
  (* bind the span step clock to this replay's memory so nested spans
     (e.g. checker calls made from a probe) report step durations *)
  Tm_obs.Sink.with_step_source
    (fun () -> Memory.step_count mem)
    (fun () ->
      Tm_obs.Sink.span "sim.replay" (fun () ->
          let recorder = Recorder.create () in
          (* one flight trace = one execution: reset the installed recorder
             so an explorer/fuzzer callback always sees exactly the steps
             of the execution that just ran *)
          let flight = Flight.default () in
          (match flight with
          | Some fl ->
              Flight.reset fl;
              Memory.set_flight_hook mem (Flight.record fl)
          | None -> ());
          let programs = setup mem recorder in
          let sched = Scheduler.create mem in
          List.iter (fun (pid, f) -> Scheduler.spawn sched ~pid f) programs;
          let report = Schedule.run sched ~budget atoms in
          let log = Access_log.entries (Memory.log mem) in
          Tm_obs.Sink.observe "sim_replay_steps"
            (float_of_int (List.length log));
          (* per-pid step attribution, from the authoritative log *)
          let per_pid = Hashtbl.create 8 in
          List.iter
            (fun e ->
              let pid = e.Access_log.pid in
              Hashtbl.replace per_pid pid
                (1 + Option.value ~default:0 (Hashtbl.find_opt per_pid pid)))
            log;
          Hashtbl.iter
            (fun pid n ->
              Tm_obs.Sink.add
                ~labels:[ ("pid", string_of_int pid) ]
                "sched_pid_steps_total" n)
            per_pid;
          let steps_of pid =
            Option.value ~default:0 (Hashtbl.find_opt per_pid pid)
          in
          (match flight with
          | Some fl ->
              Flight.set_names fl
                (Array.init (Memory.n_objects mem) (Memory.name_of mem));
              Flight.set_history fl (Recorder.history recorder);
              Flight.set_meta fl "schedule" (Schedule.to_string atoms);
              Flight.set_meta fl "budget" (string_of_int budget);
              Flight.set_meta fl "stop"
                (Schedule.stop_to_string report.Schedule.stop);
              (* mark injected crash-stops so `explain` can highlight the
                 crash steps and the crash-closure pass can cut there *)
              (match report.Schedule.crashes with
              | [] -> ()
              | cs ->
                  Flight.set_meta fl "crashes"
                    (String.concat ","
                       (List.map
                          (fun (pid, step) ->
                            Printf.sprintf "p%d@%d" pid step)
                          cs)));
              Flight.set_meta fl "steps" (string_of_int (List.length log))
          | None -> ());
          {
            mem;
            history = Recorder.history recorder;
            log;
            report;
            finished = (fun pid -> Scheduler.finished sched pid);
            steps_of;
          }))

(** [solo_length setup pid] — number of steps [pid]'s program needs to run
    solo from C_0 to completion, or [None] if it exceeds the budget. *)
let solo_length ?budget (setup : setup) ~(prefix : Schedule.atom list) pid :
    int option =
  let r = replay ?budget setup (prefix @ [ Schedule.Until_done pid ]) in
  match r.report.stop with
  | Schedule.Completed ->
      (* last atom's step count *)
      let rec last = function
        | [] -> None
        | [ n ] -> Some n
        | _ :: rest -> last rest
      in
      last r.report.steps_per_atom
  | Schedule.Budget_exhausted _ | Schedule.Crashed _ -> None
