(** The deterministic step-granularity scheduler.

    Processes are spawned as thunks; the scheduler advances a chosen
    process by exactly one atomic step at a time.  Any execution of the
    paper's model — solo runs, single adversarial steps, arbitrary
    interleavings — is a sequence of {!step} calls, and identical
    sequences produce bit-identical memory states, logs and histories. *)

open Tm_base

exception Injected_crash of { pid : int; step : int }
(** The tag distinguishing a chaos-engine crash-stop from a genuine OCaml
    exception escaping a process.  An injected crash is scripted adversity
    the rest of the system should survive; a real exception is a TM bug a
    chaos run must never mask. *)

val injected : exn -> bool
(** True iff the exception is an {!Injected_crash}. *)

type t

val create : Memory.t -> t
val memory : t -> Memory.t

val spawn : t -> pid:int -> (unit -> unit) -> unit
(** @raise Invalid_argument if [pid] already exists or is negative. *)

type step_result = Stepped | Already_finished | Crashed of exn

val step : t -> int -> step_result
(** Advance one process by one atomic step.  Starting a process runs its
    local code up to and including its first primitive.
    @raise Invalid_argument on an unknown pid. *)

val inject_crash : t -> int -> unit
(** Crash-stop a process: it is never scheduled again and its {!crashed}
    exception is an {!Injected_crash} carrying the global step count at
    injection time.  No-op on a finished or already-crashed process. *)

val finished : t -> int -> bool
val crashed : t -> int -> exn option

type crash_state = No_crash | Injected_stop | Genuine of exn

val crash_state : t -> int -> crash_state
(** Allocation-free form of {!crashed} for per-quantum interrogation: the
    two common answers carry no payload. *)

val pending : t -> int -> Proc.request option
(** The request [pid] will issue at its next step, if its local code has
    already run up to a primitive.  [None] for a never-stepped process
    (its first access is unknown until its prelude runs) and for finished
    or crashed ones.  Stable until [pid] itself is stepped — the conflict
    oracle a partial-order-reduced search keys on. *)

val runnable : t -> int -> bool
val pids : t -> int list

val run_steps : t -> int -> int -> int
(** [run_steps t pid n] takes at most [n] steps of [pid]; returns how many
    were actually taken (fewer only if the process finished or crashed). *)

type solo_result = Done of int | Out_of_budget | Crash of exn

val run_solo : t -> int -> budget:int -> solo_result
(** Run a process solo until it finishes, up to [budget] steps.
    [Out_of_budget] is how a blocking TM's failure to make solo progress
    manifests. *)
