(* Schedules: the adversary's scripts.  The PCL proof's executions are
   concatenations alpha_1 . alpha_2 . s_1 . alpha_3 ... of solo segments and
   single steps; an [atom list] expresses exactly those. *)

type atom =
  | Steps of int * int  (** [Steps (pid, n)]: at most [n] steps of [pid] *)
  | Until_done of int  (** run [pid] solo until its program finishes *)

type stop = Completed | Budget_exhausted of int | Crashed of int * exn

type report = {
  stop : stop;
  steps_per_atom : int list;  (** steps actually taken by each atom *)
}

let pp_atom ppf = function
  | Steps (pid, n) -> Fmt.pf ppf "p%d^%d" pid n
  | Until_done pid -> Fmt.pf ppf "p%d*" pid

let pp ppf atoms = Fmt.(list ~sep:(any " . ") pp_atom) ppf atoms

(* The compact one-token-per-atom format used by `pcl_tm trace` and by
   flight-recorder artifacts: "p1:7,p2:*" means 7 steps of p1 then p2
   until done.  [of_string] inverts [to_string] exactly, so a dumped
   schedule replays bit-identically. *)

let atom_to_string = function
  | Steps (pid, n) -> Printf.sprintf "p%d:%d" pid n
  | Until_done pid -> Printf.sprintf "p%d:*" pid

let to_string atoms = String.concat "," (List.map atom_to_string atoms)

let of_string s : (atom list, string) result =
  let parse_atom tok =
    match String.split_on_char ':' (String.trim tok) with
    | [ p; spec ] when String.length p > 1 && p.[0] = 'p' -> (
        match int_of_string_opt (String.sub p 1 (String.length p - 1)) with
        | None -> Error (Printf.sprintf "bad process in %S" tok)
        | Some pid -> (
            match spec with
            | "*" -> Ok (Until_done pid)
            | n -> (
                match int_of_string_opt n with
                | Some n -> Ok (Steps (pid, n))
                | None -> Error (Printf.sprintf "bad step count in %S" tok))))
    | _ -> Error (Printf.sprintf "bad schedule token %S (want pN:K or pN:*)" tok)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | tok :: rest -> (
        match parse_atom tok with
        | Ok a -> go (a :: acc) rest
        | Error _ as e -> e)
  in
  go [] (String.split_on_char ',' s)

(** Execute a schedule on a scheduler.  [budget] bounds each [Until_done]
    segment (a segment that exhausts it reports [Budget_exhausted pid] and
    stops the schedule — the liveness-failure signal). *)
let stop_reason = function
  | Completed -> "completed"
  | Budget_exhausted _ -> "budget-exhausted"
  | Crashed _ -> "crashed"

let run (sched : Scheduler.t) ?(budget = 100_000) (atoms : atom list) :
    report =
  let rec go acc = function
    | [] -> { stop = Completed; steps_per_atom = List.rev acc }
    | Steps (pid, n) :: rest ->
        let taken = Scheduler.run_steps sched pid n in
        (match Scheduler.crashed sched pid with
        | Some e ->
            { stop = Crashed (pid, e); steps_per_atom = List.rev (taken :: acc) }
        | None -> go (taken :: acc) rest)
    | Until_done pid :: rest -> (
        match Scheduler.run_solo sched pid ~budget with
        | Scheduler.Done n -> go (n :: acc) rest
        | Scheduler.Out_of_budget ->
            {
              stop = Budget_exhausted pid;
              steps_per_atom = List.rev (budget :: acc);
            }
        | Scheduler.Crash e ->
            { stop = Crashed (pid, e); steps_per_atom = List.rev acc })
  in
  let report = go [] atoms in
  Tm_obs.Sink.add "schedule_atoms_total" (List.length atoms);
  Tm_obs.Sink.incr
    ~labels:[ ("reason", stop_reason report.stop) ]
    "schedule_stop_total";
  report
