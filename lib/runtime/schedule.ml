(* Schedules: the adversary's scripts.  The PCL proof's executions are
   concatenations alpha_1 . alpha_2 . s_1 . alpha_3 ... of solo segments and
   single steps; an [atom list] expresses exactly those.  The chaos engine
   extends the alphabet with fault atoms — crash-stop, park/unpark
   (adversarial delay) and doomed-transaction poison — so a faulted run is
   still one replayable script. *)

open Tm_base

type atom =
  | Steps of int * int  (** [Steps (pid, n)]: at most [n] steps of [pid] *)
  | Until_done of int  (** run [pid] solo until its program finishes *)
  | Crash of int  (** crash-stop [pid]: it takes no further steps, ever *)
  | Park of int  (** suspend [pid]: its quanta are skipped until unparked *)
  | Unpark of int  (** resume a parked [pid] *)
  | Poison of int
      (** doom [pid]'s current transaction: force-abort at its next
          transactional operation *)

type stall = {
  stalled_pid : int;
  last : Access_log.entry option;
      (** the last step the stalled process took, if it took any — the
          attribution a chaos sweep needs to explain where it wedged *)
}

type stop =
  | Completed
  | Budget_exhausted of stall
  | Crashed of int * exn  (** a genuine exception escaped a process *)

type report = {
  stop : stop;
  steps_per_atom : int list;  (** steps actually taken by each atom *)
  crashes : (int * int) list;
      (** injected crash-stops, as (pid, global step at injection) *)
}

let pp_atom ppf = function
  | Steps (pid, n) -> Fmt.pf ppf "p%d^%d" pid n
  | Until_done pid -> Fmt.pf ppf "p%d*" pid
  | Crash pid -> Fmt.pf ppf "p%d!" pid
  | Park pid -> Fmt.pf ppf "p%d(zzz)" pid
  | Unpark pid -> Fmt.pf ppf "p%d(wake)" pid
  | Poison pid -> Fmt.pf ppf "p%d(poison)" pid

let pp ppf atoms = Fmt.(list ~sep:(any " . ") pp_atom) ppf atoms

(* The compact one-token-per-atom format used by `pcl_tm trace` and by
   flight-recorder artifacts: "p1:7,p2:*" means 7 steps of p1 then p2
   until done; fault atoms are "p1:!" (crash), "p1:z" (park), "p1:w"
   (unpark) and "p1:~" (poison).  [of_string] inverts [to_string]
   exactly, so a dumped schedule — faults included — replays
   bit-identically. *)

let atom_to_string = function
  | Steps (pid, n) -> Printf.sprintf "p%d:%d" pid n
  | Until_done pid -> Printf.sprintf "p%d:*" pid
  | Crash pid -> Printf.sprintf "p%d:!" pid
  | Park pid -> Printf.sprintf "p%d:z" pid
  | Unpark pid -> Printf.sprintf "p%d:w" pid
  | Poison pid -> Printf.sprintf "p%d:~" pid

let to_string atoms = String.concat "," (List.map atom_to_string atoms)

let of_string s : (atom list, string) result =
  let parse_atom tok =
    match String.split_on_char ':' (String.trim tok) with
    | [ p; spec ] when String.length p > 1 && p.[0] = 'p' -> (
        match int_of_string_opt (String.sub p 1 (String.length p - 1)) with
        | None -> Error (Printf.sprintf "bad process in %S" tok)
        | Some pid -> (
            match spec with
            | "*" -> Ok (Until_done pid)
            | "!" -> Ok (Crash pid)
            | "z" -> Ok (Park pid)
            | "w" -> Ok (Unpark pid)
            | "~" -> Ok (Poison pid)
            | n -> (
                match int_of_string_opt n with
                | Some n -> Ok (Steps (pid, n))
                | None -> Error (Printf.sprintf "bad step count in %S" tok))))
    | _ ->
        Error
          (Printf.sprintf
             "bad schedule token %S (want pN:K, pN:*, pN:!, pN:z, pN:w or \
              pN:~)"
             tok)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | tok :: rest -> (
        match parse_atom tok with
        | Ok a -> go (a :: acc) rest
        | Error _ as e -> e)
  in
  go [] (String.split_on_char ',' s)

let stop_reason = function
  | Completed -> "completed"
  | Budget_exhausted _ -> "budget-exhausted"
  | Crashed _ -> "crashed"

(** The stop rendered for run metadata and reports: a stall names the
    process {e and} the last step it took, so a chaos sweep can attribute
    the wedge ("budget-exhausted:p1@#42"), not just count it. *)
let stop_to_string = function
  | Completed -> "completed"
  | Budget_exhausted { stalled_pid; last = None } ->
      Printf.sprintf "budget-exhausted:p%d@start" stalled_pid
  | Budget_exhausted { stalled_pid; last = Some e } ->
      Printf.sprintf "budget-exhausted:p%d@#%d" stalled_pid
        e.Access_log.index
  | Crashed (pid, _) -> Printf.sprintf "crashed:p%d" pid

(** The stop as a structured JSON payload — the machine-readable twin of
    {!stop_to_string}, consumed by reason-coded exits and telemetry: a
    stall names the wedged process, its last step and the base object it
    was parked on (the contention object). *)
let stop_json (stop : stop) : Tm_obs.Obs_json.t =
  let open Tm_obs.Obs_json in
  match stop with
  | Completed -> Obj [ ("reason", String "completed") ]
  | Budget_exhausted { stalled_pid; last } ->
      Obj
        ([ ("reason", String "budget-exhausted");
           ("pid", Int stalled_pid) ]
        @
        match last with
        | None -> [ ("step", Null) ]
        | Some e ->
            [
              ("step", Int e.Access_log.index);
              ("oid", Int (Tm_base.Oid.to_int e.Access_log.oid));
              ("prim", String (Tm_base.Primitive.kind_name e.Access_log.prim));
            ])
  | Crashed (pid, e) ->
      Obj
        [
          ("reason", String "crashed");
          ("pid", Int pid);
          ("exn", String (Printexc.to_string e));
        ]

(* -- resumable sessions ------------------------------------------------ *)

(* A session is a schedule interpretation in progress: the park table,
   injected-crash list and per-atom step counts live here instead of in a
   recursion over a complete atom list, so atoms can be fed one at a time
   — the incremental engine [Sim]'s cursors are built on — and a schedule
   never re-executes its prefix to take one more step. *)

type session = {
  sched : Scheduler.t;
  budget : int;  (* bounds each [Until_done] segment *)
  parked : (int, unit) Hashtbl.t;
  mutable crashes_rev : (int * int) list;
  steps_per_atom_vec : Tm_base.Intvec.t;  (* per executed atom, in order *)
  mutable stopped : stop option;  (* [Some _] once the schedule halted *)
  mutable total_steps : int;  (* steps executed across all atoms *)
  mutable on_tick : int -> unit;
      (* progress hook, called with [total_steps] after every atom that
         executed at least one step — the deterministic heartbeat live
         observers (watch lines, GC sampling) key their boundaries on *)
}

let session ?(budget = 100_000) sched =
  {
    sched;
    budget;
    parked = Hashtbl.create 4;
    crashes_rev = [];
    steps_per_atom_vec = Tm_base.Intvec.create ~chunk_bits:6 ();
    stopped = None;
    total_steps = 0;
    on_tick = ignore;
  }

let set_tick s f = s.on_tick <- f
let session_steps s = s.total_steps

type feed_outcome = {
  steps : int;  (** steps the atom actually took *)
  halted : bool;  (** the session is (now) stopped *)
}

let session_stopped s = s.stopped <> None

(* Count an executed atom: record its step tally, then fire the progress
   hook if it moved.  [stopped] (when the atom halted the session) must
   already be set so the hook observes the final state. *)
let count_atom s n =
  Tm_base.Intvec.push s.steps_per_atom_vec n;
  if n > 0 then begin
    s.total_steps <- s.total_steps + n;
    s.on_tick s.total_steps
  end

let stall_of s pid =
  {
    stalled_pid = pid;
    last = Access_log.last_by_pid (Memory.log (Scheduler.memory s.sched)) pid;
  }

(** Execute one atom; returns the steps it actually took.  The
    allocation-free core of {!feed} (top-level helpers, int result):
    whether the atom halted the session is observable via
    {!session_stopped}.  A no-op once the session has stopped (the atom
    is neither executed nor counted, exactly as [run] abandons the tail
    of its atom list).  Injected crash-stops do {e not} stop the session
    — the survivors keep running, which is the whole point of a chaos
    run; only a genuine escaping exception or an exhausted [Until_done]
    budget does. *)
let feed_steps (s : session) (atom : atom) : int =
  match s.stopped with
  | Some _ -> 0
  | None -> (
      match atom with
      | Crash pid ->
          Tm_obs.Sink.incr "chaos_crash_injected_total";
          s.crashes_rev <-
            (pid, Memory.step_count (Scheduler.memory s.sched))
            :: s.crashes_rev;
          Scheduler.inject_crash s.sched pid;
          count_atom s 0;
          0
      | Park pid ->
          Tm_obs.Sink.incr "chaos_park_total";
          Hashtbl.replace s.parked pid ();
          count_atom s 0;
          0
      | Unpark pid ->
          Hashtbl.remove s.parked pid;
          count_atom s 0;
          0
      | Poison pid ->
          Tm_obs.Sink.incr "chaos_poison_injected_total";
          Memory.poison (Scheduler.memory s.sched) pid;
          count_atom s 0;
          0
      | Steps (pid, n) ->
          if Hashtbl.mem s.parked pid then begin
            count_atom s 0;
            0
          end
          else begin
            let taken = Scheduler.run_steps s.sched pid n in
            (* a halting atom still records its step count: the steps it
               took are part of the state it left behind *)
            (match Scheduler.crash_state s.sched pid with
            | Scheduler.Genuine e -> s.stopped <- Some (Crashed (pid, e))
            | Scheduler.No_crash | Scheduler.Injected_stop -> ());
            count_atom s taken;
            taken
          end
      | Until_done pid -> (
          if Hashtbl.mem s.parked pid then begin
            count_atom s 0;
            0
          end
          else
            match Scheduler.run_solo s.sched pid ~budget:s.budget with
            | Scheduler.Done n ->
                count_atom s n;
                n
            | Scheduler.Out_of_budget ->
                s.stopped <- Some (Budget_exhausted (stall_of s pid));
                count_atom s s.budget;
                s.budget
            | Scheduler.Crash e when Scheduler.injected e ->
                (* a previously crash-stopped process will never finish;
                   skip its solo segment and keep the schedule going *)
                count_atom s 0;
                0
            | Scheduler.Crash e ->
                (* not counted: the halting solo segment of a genuine
                   crash never reported a step tally *)
                s.stopped <- Some (Crashed (pid, e));
                0))

(** {!feed_steps} with the legacy boxed outcome. *)
let feed (s : session) (atom : atom) : feed_outcome =
  let steps = feed_steps s atom in
  { steps; halted = s.stopped <> None }

(** The report of everything fed so far ([Completed] while still
    running).  Cheap and side-effect free: callable mid-session. *)
let session_report (s : session) : report =
  {
    stop = Option.value ~default:Completed s.stopped;
    steps_per_atom = Tm_base.Intvec.to_list s.steps_per_atom_vec;
    crashes = List.rev s.crashes_rev;
  }

(** Execute a schedule on a scheduler.  [budget] bounds each [Until_done]
    segment (a segment that exhausts it reports [Budget_exhausted] with the
    stalled process and its last step, and stops the schedule — the
    liveness-failure signal).  Injected crash-stops do {e not} stop the
    schedule: the surviving processes keep running; only a genuine
    exception escaping a process stops it. *)
let run (sched : Scheduler.t) ?(budget = 100_000) (atoms : atom list) :
    report =
  let s = session ~budget sched in
  List.iter (fun a -> ignore (feed s a)) atoms;
  let report = session_report s in
  Tm_obs.Sink.add "schedule_atoms_total" (List.length atoms);
  Tm_obs.Sink.incr
    ~labels:[ ("reason", stop_reason report.stop) ]
    "schedule_stop_total";
  report
