(* Schedules: the adversary's scripts.  The PCL proof's executions are
   concatenations alpha_1 . alpha_2 . s_1 . alpha_3 ... of solo segments and
   single steps; an [atom list] expresses exactly those.  The chaos engine
   extends the alphabet with fault atoms — crash-stop, park/unpark
   (adversarial delay) and doomed-transaction poison — so a faulted run is
   still one replayable script. *)

open Tm_base

type atom =
  | Steps of int * int  (** [Steps (pid, n)]: at most [n] steps of [pid] *)
  | Until_done of int  (** run [pid] solo until its program finishes *)
  | Crash of int  (** crash-stop [pid]: it takes no further steps, ever *)
  | Park of int  (** suspend [pid]: its quanta are skipped until unparked *)
  | Unpark of int  (** resume a parked [pid] *)
  | Poison of int
      (** doom [pid]'s current transaction: force-abort at its next
          transactional operation *)

type stall = {
  stalled_pid : int;
  last : Access_log.entry option;
      (** the last step the stalled process took, if it took any — the
          attribution a chaos sweep needs to explain where it wedged *)
}

type stop =
  | Completed
  | Budget_exhausted of stall
  | Crashed of int * exn  (** a genuine exception escaped a process *)

type report = {
  stop : stop;
  steps_per_atom : int list;  (** steps actually taken by each atom *)
  crashes : (int * int) list;
      (** injected crash-stops, as (pid, global step at injection) *)
}

let pp_atom ppf = function
  | Steps (pid, n) -> Fmt.pf ppf "p%d^%d" pid n
  | Until_done pid -> Fmt.pf ppf "p%d*" pid
  | Crash pid -> Fmt.pf ppf "p%d!" pid
  | Park pid -> Fmt.pf ppf "p%d(zzz)" pid
  | Unpark pid -> Fmt.pf ppf "p%d(wake)" pid
  | Poison pid -> Fmt.pf ppf "p%d(poison)" pid

let pp ppf atoms = Fmt.(list ~sep:(any " . ") pp_atom) ppf atoms

(* The compact one-token-per-atom format used by `pcl_tm trace` and by
   flight-recorder artifacts: "p1:7,p2:*" means 7 steps of p1 then p2
   until done; fault atoms are "p1:!" (crash), "p1:z" (park), "p1:w"
   (unpark) and "p1:~" (poison).  [of_string] inverts [to_string]
   exactly, so a dumped schedule — faults included — replays
   bit-identically. *)

let atom_to_string = function
  | Steps (pid, n) -> Printf.sprintf "p%d:%d" pid n
  | Until_done pid -> Printf.sprintf "p%d:*" pid
  | Crash pid -> Printf.sprintf "p%d:!" pid
  | Park pid -> Printf.sprintf "p%d:z" pid
  | Unpark pid -> Printf.sprintf "p%d:w" pid
  | Poison pid -> Printf.sprintf "p%d:~" pid

let to_string atoms = String.concat "," (List.map atom_to_string atoms)

let of_string s : (atom list, string) result =
  let parse_atom tok =
    match String.split_on_char ':' (String.trim tok) with
    | [ p; spec ] when String.length p > 1 && p.[0] = 'p' -> (
        match int_of_string_opt (String.sub p 1 (String.length p - 1)) with
        | None -> Error (Printf.sprintf "bad process in %S" tok)
        | Some pid -> (
            match spec with
            | "*" -> Ok (Until_done pid)
            | "!" -> Ok (Crash pid)
            | "z" -> Ok (Park pid)
            | "w" -> Ok (Unpark pid)
            | "~" -> Ok (Poison pid)
            | n -> (
                match int_of_string_opt n with
                | Some n -> Ok (Steps (pid, n))
                | None -> Error (Printf.sprintf "bad step count in %S" tok))))
    | _ ->
        Error
          (Printf.sprintf
             "bad schedule token %S (want pN:K, pN:*, pN:!, pN:z, pN:w or \
              pN:~)"
             tok)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | tok :: rest -> (
        match parse_atom tok with
        | Ok a -> go (a :: acc) rest
        | Error _ as e -> e)
  in
  go [] (String.split_on_char ',' s)

let stop_reason = function
  | Completed -> "completed"
  | Budget_exhausted _ -> "budget-exhausted"
  | Crashed _ -> "crashed"

(** The stop rendered for run metadata and reports: a stall names the
    process {e and} the last step it took, so a chaos sweep can attribute
    the wedge ("budget-exhausted:p1@#42"), not just count it. *)
let stop_to_string = function
  | Completed -> "completed"
  | Budget_exhausted { stalled_pid; last = None } ->
      Printf.sprintf "budget-exhausted:p%d@start" stalled_pid
  | Budget_exhausted { stalled_pid; last = Some e } ->
      Printf.sprintf "budget-exhausted:p%d@#%d" stalled_pid
        e.Access_log.index
  | Crashed (pid, _) -> Printf.sprintf "crashed:p%d" pid

(** Execute a schedule on a scheduler.  [budget] bounds each [Until_done]
    segment (a segment that exhausts it reports [Budget_exhausted] with the
    stalled process and its last step, and stops the schedule — the
    liveness-failure signal).  Injected crash-stops do {e not} stop the
    schedule: the surviving processes keep running, which is the whole
    point of a chaos run; only a genuine exception escaping a process
    stops it. *)
let run (sched : Scheduler.t) ?(budget = 100_000) (atoms : atom list) :
    report =
  let mem = Scheduler.memory sched in
  let parked : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let crashes = ref [] in
  let stall pid =
    { stalled_pid = pid; last = Access_log.last_by_pid (Memory.log mem) pid }
  in
  let finish stop acc =
    { stop; steps_per_atom = List.rev acc; crashes = List.rev !crashes }
  in
  let rec go acc = function
    | [] -> finish Completed acc
    | Crash pid :: rest ->
        Tm_obs.Sink.incr "chaos_crash_injected_total";
        crashes := (pid, Memory.step_count mem) :: !crashes;
        Scheduler.inject_crash sched pid;
        go (0 :: acc) rest
    | Park pid :: rest ->
        Tm_obs.Sink.incr "chaos_park_total";
        Hashtbl.replace parked pid ();
        go (0 :: acc) rest
    | Unpark pid :: rest ->
        Hashtbl.remove parked pid;
        go (0 :: acc) rest
    | Poison pid :: rest ->
        Tm_obs.Sink.incr "chaos_poison_injected_total";
        Memory.poison mem pid;
        go (0 :: acc) rest
    | Steps (pid, n) :: rest ->
        if Hashtbl.mem parked pid then go (0 :: acc) rest
        else
          let taken = Scheduler.run_steps sched pid n in
          (match Scheduler.crashed sched pid with
          | Some e when not (Scheduler.injected e) ->
              finish (Crashed (pid, e)) (taken :: acc)
          | Some _ | None -> go (taken :: acc) rest)
    | Until_done pid :: rest -> (
        if Hashtbl.mem parked pid then go (0 :: acc) rest
        else
          match Scheduler.run_solo sched pid ~budget with
          | Scheduler.Done n -> go (n :: acc) rest
          | Scheduler.Out_of_budget ->
              finish (Budget_exhausted (stall pid)) (budget :: acc)
          | Scheduler.Crash e when Scheduler.injected e ->
              (* a previously crash-stopped process will never finish;
                 skip its solo segment and keep the schedule going *)
              go (0 :: acc) rest
          | Scheduler.Crash e -> finish (Crashed (pid, e)) acc)
  in
  let report = go [] atoms in
  Tm_obs.Sink.add "schedule_atoms_total" (List.length atoms);
  Tm_obs.Sink.incr
    ~labels:[ ("reason", stop_reason report.stop) ]
    "schedule_stop_total";
  report
