(* Schedules: the adversary's scripts.  The PCL proof's executions are
   concatenations alpha_1 . alpha_2 . s_1 . alpha_3 ... of solo segments and
   single steps; an [atom list] expresses exactly those. *)

type atom =
  | Steps of int * int  (** [Steps (pid, n)]: at most [n] steps of [pid] *)
  | Until_done of int  (** run [pid] solo until its program finishes *)

type stop = Completed | Budget_exhausted of int | Crashed of int * exn

type report = {
  stop : stop;
  steps_per_atom : int list;  (** steps actually taken by each atom *)
}

let pp_atom ppf = function
  | Steps (pid, n) -> Fmt.pf ppf "p%d^%d" pid n
  | Until_done pid -> Fmt.pf ppf "p%d*" pid

let pp ppf atoms = Fmt.(list ~sep:(any " . ") pp_atom) ppf atoms

(** Execute a schedule on a scheduler.  [budget] bounds each [Until_done]
    segment (a segment that exhausts it reports [Budget_exhausted pid] and
    stops the schedule — the liveness-failure signal). *)
let stop_reason = function
  | Completed -> "completed"
  | Budget_exhausted _ -> "budget-exhausted"
  | Crashed _ -> "crashed"

let run (sched : Scheduler.t) ?(budget = 100_000) (atoms : atom list) :
    report =
  let rec go acc = function
    | [] -> { stop = Completed; steps_per_atom = List.rev acc }
    | Steps (pid, n) :: rest ->
        let taken = Scheduler.run_steps sched pid n in
        (match Scheduler.crashed sched pid with
        | Some e ->
            { stop = Crashed (pid, e); steps_per_atom = List.rev (taken :: acc) }
        | None -> go (taken :: acc) rest)
    | Until_done pid :: rest -> (
        match Scheduler.run_solo sched pid ~budget with
        | Scheduler.Done n -> go (n :: acc) rest
        | Scheduler.Out_of_budget ->
            {
              stop = Budget_exhausted pid;
              steps_per_atom = List.rev (budget :: acc);
            }
        | Scheduler.Crash e ->
            { stop = Crashed (pid, e); steps_per_atom = List.rev acc })
  in
  let report = go [] atoms in
  Tm_obs.Sink.add "schedule_atoms_total" (List.length atoms);
  Tm_obs.Sink.incr
    ~labels:[ ("reason", stop_reason report.stop) ]
    "schedule_stop_total";
  report
