(* Process-side interface to the simulated shared memory.

   A process is an OCaml function running under the scheduler's effect
   handler.  Every base-object access performs the [Step] effect; the
   scheduler applies the primitive atomically to memory, logs it, and
   resumes the process with the response.  A step in the paper's sense is
   therefore: one primitive + the local computation up to the next
   primitive, executed atomically — exactly Section 3's model. *)

open Tm_base

type request = { oid : Oid.t; prim : Primitive.t; tid : Tid.t option }

type _ Effect.t += Step : request -> Value.t Effect.t

(** [access ?tid oid prim] performs one atomic step on [oid].  Must be
    called from code running under a {!Scheduler}.  [tid] attributes the
    step to a transaction for the access log. *)
let access ?tid oid prim = Effect.perform (Step { oid; prim; tid })

(** Convenience wrappers. *)
let read ?tid oid = access ?tid oid Primitive.Read

let write ?tid oid v =
  ignore (access ?tid oid (Primitive.Write v))

let cas ?tid oid ~expected ~desired =
  Value.to_bool_exn (access ?tid oid (Primitive.Cas { expected; desired }))

let fetch_add ?tid oid n =
  Value.to_int_exn (access ?tid oid (Primitive.Fetch_add n))

let try_lock ?tid ~pid oid =
  Value.to_bool_exn (access ?tid oid (Primitive.Try_lock pid))

let unlock ?tid ~pid oid = ignore (access ?tid oid (Primitive.Unlock pid))

(* [*_t] variants take the transaction attribution as an already-built
   option: a TM context allocates [Some tid] once at begin time and
   passes it on every step, where the labelled-argument wrappers above
   box a fresh [Some] per call. *)

let access_t ~tid oid prim = Effect.perform (Step { oid; prim; tid })
let read_t ~tid oid = access_t ~tid oid Primitive.Read
let write_t ~tid oid v = ignore (access_t ~tid oid (Primitive.Write v))

let cas_t ~tid oid ~expected ~desired =
  Value.to_bool_exn (access_t ~tid oid (Primitive.Cas { expected; desired }))

let fetch_add_t ~tid oid n =
  Value.to_int_exn (access_t ~tid oid (Primitive.Fetch_add n))

let try_lock_t ~tid ~pid oid =
  Value.to_bool_exn (access_t ~tid oid (Primitive.Try_lock pid))

let unlock_t ~tid ~pid oid =
  ignore (access_t ~tid oid (Primitive.Unlock pid))
