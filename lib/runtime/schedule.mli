(** Schedules: the adversary's scripts.  The PCL proof's executions are
    concatenations alpha1 . alpha2 . s1 . alpha3 ... of solo segments and
    single steps; an [atom list] expresses exactly those. *)

type atom =
  | Steps of int * int  (** [Steps (pid, n)]: at most [n] steps of [pid] *)
  | Until_done of int  (** run [pid] solo until its program finishes *)

type stop =
  | Completed
  | Budget_exhausted of int
      (** an [Until_done pid] segment hit the step budget — the liveness
          failure signal *)
  | Crashed of int * exn

type report = {
  stop : stop;
  steps_per_atom : int list;  (** steps actually taken by each atom *)
}

val pp_atom : Format.formatter -> atom -> unit
val pp : Format.formatter -> atom list -> unit

val to_string : atom list -> string
(** The compact "p1:7,p2:*" format used by [pcl_tm trace] and by
    flight-recorder artifacts. *)

val of_string : string -> (atom list, string) result
(** Inverse of {!to_string} (also accepts surrounding whitespace per
    token), so a dumped schedule replays bit-identically. *)

val run : Scheduler.t -> ?budget:int -> atom list -> report
(** Execute a schedule.  [budget] (default 100_000) bounds each
    [Until_done] segment. *)
