(** Schedules: the adversary's scripts.  The PCL proof's executions are
    concatenations alpha1 . alpha2 . s1 . alpha3 ... of solo segments and
    single steps; an [atom list] expresses exactly those.  The chaos
    engine's fault atoms (crash-stop, park/unpark, poison) extend the
    alphabet so a faulted run is still one replayable script. *)

open Tm_base

type atom =
  | Steps of int * int  (** [Steps (pid, n)]: at most [n] steps of [pid] *)
  | Until_done of int  (** run [pid] solo until its program finishes *)
  | Crash of int  (** crash-stop [pid]: it takes no further steps, ever *)
  | Park of int  (** suspend [pid]: its quanta are skipped until unparked *)
  | Unpark of int  (** resume a parked [pid] *)
  | Poison of int
      (** doom [pid]'s current transaction: force-abort at its next
          transactional operation *)

type stall = {
  stalled_pid : int;
  last : Access_log.entry option;
      (** the last step the stalled process took, if any — so a stall can
          be attributed to the exact step it wedged on *)
}

type stop =
  | Completed
  | Budget_exhausted of stall
      (** an [Until_done pid] segment hit the step budget — the liveness
          failure signal *)
  | Crashed of int * exn
      (** a genuine exception escaped a process.  Injected crash-stops are
          reported in {!report.crashes} instead and do not stop the
          schedule. *)

type report = {
  stop : stop;
  steps_per_atom : int list;  (** steps actually taken by each atom *)
  crashes : (int * int) list;
      (** injected crash-stops, as (pid, global step at injection) *)
}

val pp_atom : Format.formatter -> atom -> unit
val pp : Format.formatter -> atom list -> unit

val to_string : atom list -> string
(** The compact "p1:7,p2:*" format used by [pcl_tm trace] and by
    flight-recorder artifacts; fault atoms render as "p1:!" (crash),
    "p1:z" (park), "p1:w" (unpark), "p1:~" (poison). *)

val of_string : string -> (atom list, string) result
(** Inverse of {!to_string} (also accepts surrounding whitespace per
    token), so a dumped schedule — faults included — replays
    bit-identically. *)

val stop_reason : stop -> string
(** Coarse label ("completed" / "budget-exhausted" / "crashed"). *)

val stop_to_string : stop -> string
(** The stop rendered for run metadata: stalls carry the process and the
    index of its last step ("budget-exhausted:p1@#42", or "@start" if it
    never stepped). *)

val stop_json : stop -> Tm_obs.Obs_json.t
(** The stop as a structured payload ([reason]/[pid]/[step]/[oid]/[prim])
    — the machine-readable twin of {!stop_to_string}, consumed by
    reason-coded exits and telemetry. *)

val run : Scheduler.t -> ?budget:int -> atom list -> report
(** Execute a schedule.  [budget] (default 100_000) bounds each
    [Until_done] segment.  Parked processes have their quanta skipped;
    injected crash-stops are recorded in [crashes] and the schedule keeps
    running the survivors; a genuine exception stops it with
    {!stop.Crashed}. *)

(** {1 Resumable sessions}

    A session is a schedule interpretation in progress: atoms are fed one
    at a time and the park table / crash list / per-atom step counts
    accumulate, so taking one more step never re-executes the prefix.
    {!run} is [session] + {!feed} over a complete atom list; the
    incremental engine ([Sim]'s cursors, and through it the
    partial-order-reduced explorer) feeds atoms as the search decides
    them. *)

type session

val session : ?budget:int -> Scheduler.t -> session
(** A fresh session over a scheduler whose processes are spawned but not
    yet stepped.  [budget] (default 100_000) bounds each [Until_done]
    segment fed later. *)

type feed_outcome = {
  steps : int;  (** steps the atom actually took *)
  halted : bool;  (** the session is (now) stopped *)
}

val feed : session -> atom -> feed_outcome
(** Execute one atom, exactly as {!run} would in sequence.  A no-op
    (reporting [halted = true], zero steps, nothing counted) once the
    session has stopped — matching how {!run} abandons the tail of its
    atom list. *)

val feed_steps : session -> atom -> int
(** The allocation-free core of {!feed}: same execution, but only the
    step tally is returned — whether the atom halted the session is
    observable via {!session_stopped}.  The per-step engines ([Sim.step],
    replay loops) use this form. *)

val session_stopped : session -> bool

val set_tick : session -> (int -> unit) -> unit
(** Install the session's progress hook, called with the cumulative
    executed step count ({!session_steps}) after every atom that
    executed at least one step.  Step counts are deterministic, so the
    tick boundaries are too — live observers (watch snapshots, GC
    sampling) key on them to keep their {e structure} reproducible.
    Default: no-op. *)

val session_steps : session -> int
(** Steps executed across all atoms fed so far. *)

val session_report : session -> report
(** The report over everything fed so far — [stop = Completed] while the
    session is still running.  Cheap and side-effect free, so it can be
    taken mid-session (the cursor snapshot path does). *)
