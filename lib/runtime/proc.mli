(** Process-side interface to the simulated shared memory.

    A process is an OCaml function running under a {!Scheduler}'s effect
    handler.  Every base-object access performs the {!Step} effect; the
    scheduler applies the primitive atomically, logs it, and resumes the
    process with the response.  A step in the paper's sense — one
    primitive plus the local computation up to the next one — is therefore
    executed atomically, exactly as in Section 3's model. *)

open Tm_base

type request = { oid : Oid.t; prim : Primitive.t; tid : Tid.t option }

type _ Effect.t += Step : request -> Value.t Effect.t

val access : ?tid:Tid.t -> Oid.t -> Primitive.t -> Value.t
(** [access ?tid oid prim] performs one atomic step on [oid].  Must be
    called from code running under a {!Scheduler}.  [tid] attributes the
    step to a transaction in the access log. *)

(** {1 Convenience wrappers} *)

val read : ?tid:Tid.t -> Oid.t -> Value.t
val write : ?tid:Tid.t -> Oid.t -> Value.t -> unit
val cas : ?tid:Tid.t -> Oid.t -> expected:Value.t -> desired:Value.t -> bool
val fetch_add : ?tid:Tid.t -> Oid.t -> int -> int
val try_lock : ?tid:Tid.t -> pid:int -> Oid.t -> bool
val unlock : ?tid:Tid.t -> pid:int -> Oid.t -> unit

(** {1 Pre-boxed attribution}

    The [*_t] variants take the transaction attribution as an
    already-built option: a TM context allocates [Some tid] once at
    begin time and passes it on every step, where the [?tid] wrappers
    above box a fresh [Some] per call. *)

val access_t : tid:Tid.t option -> Oid.t -> Primitive.t -> Value.t
val read_t : tid:Tid.t option -> Oid.t -> Value.t
val write_t : tid:Tid.t option -> Oid.t -> Value.t -> unit

val cas_t :
  tid:Tid.t option -> Oid.t -> expected:Value.t -> desired:Value.t -> bool

val fetch_add_t : tid:Tid.t option -> Oid.t -> int -> int
val try_lock_t : tid:Tid.t option -> pid:int -> Oid.t -> bool
val unlock_t : tid:Tid.t option -> pid:int -> Oid.t -> unit
