(* Global-clock multiversion snapshot isolation, after SI-STM [Riegel,
   Fetzer & Felber 06] — the other corner that weakens *parallelism*:

     Parallelism: NOT disjoint-access-parallel in any variant: every
                  transaction reads the global clock and every committing
                  writer fetch&adds it, so even fully disjoint transactions
                  contend on the clock (exactly the paper's remark about
                  SI-STM, Section 2).
     Consistency: snapshot isolation (the paper's weak Def. 3.1 — no
                  first-committer-wins rule: concurrent writers to the same
                  item may both commit).
     Liveness:    obstruction-free — installs retry only when an
                  interfering step changed the version list; commits never
                  fail.

   Objects: [clock] = VInt; per item [ver:x] = VList of version entries
   VList [VInt owner; VInt ts; value].  A pending entry carries the oid of
   its owner's commit record [sic:T] = VPair (VInt state, VInt ts); all of
   a transaction's versions become visible atomically when that record is
   CASed to committed, which closes the torn-snapshot race of naive
   install-then-publish designs.

   Commit protocol: install all pending entries (state 0, invisible), seal
   the record (state 3), fetch&add the clock, publish (state 1 with the
   timestamp).  A reader that meets a sealed record *helps*: it fetch&adds
   the clock itself and tries to publish on the owner's behalf, so
   resolution is non-blocking even if the committer is suspended between
   its last two steps.

   Items are dense int ids ({!Item_table}); the read path scans the raw
   version list in place (no per-entry decoding). *)

open Tm_base
open Tm_runtime

let name = "si-clock"
let describe = "snapshot isolation + obstruction-free, no DAP (weakens P)"

type t = { mem : Memory.t; clock : Oid.t; tbl : Item_table.t; ver_oids : Oid.t array }

let create mem ~items =
  let clock = Memory.alloc mem ~name:"clock" (Value.int 0) in
  let tbl = Item_table.create items in
  let ver_oids =
    Item_table.alloc_oids tbl items ~alloc:(fun x ->
        Memory.alloc mem
          ~name:("ver:" ^ Item.name x)
          (Value.list
             [ Value.list [ Value.int (-1); Value.int 0; Value.initial ] ]))
  in
  { mem; clock; tbl; ver_oids }

type ctx = {
  t : t;
  pid : int;
  tid : Tid.t;
  topt : Tid.t option;  (* [Some tid], boxed once so steps don't re-box it *)
  snap : int;  (* snapshot timestamp taken at begin *)
  record : Oid.t;  (* commit record *)
  mutable wset : (int * Value.t) list;
  mutable dead : bool;
}

let begin_txn t ~pid ~tid =
  let record =
    Memory.alloc t.mem
      ~name:(Printf.sprintf "sic:%s" (Tid.name tid))
      (Value.pair (Value.int 0) (Value.int (-1)))
  in
  let snap = Value.to_int_exn (Proc.read ~tid t.clock) in
  { t; pid; tid; topt = Some tid; snap; record; wset = []; dead = false }

(* commit timestamp of a pending entry's owner record, or [min_int] while
   the owner is still active (invisible).  A sealed record (state 3) is
   helped to completion. *)
let rec owner_ts c owner =
  match Proc.read_t ~tid:c.topt (Oid.of_int owner) with
  | Value.VPair (Value.VInt 1, Value.VInt cts) -> cts
  | Value.VPair (Value.VInt 3, _) ->
      let hts = 1 + Proc.fetch_add_t ~tid:c.topt c.t.clock 1 in
      ignore
        (Proc.cas_t ~tid:c.topt (Oid.of_int owner)
           ~expected:(Value.pair (Value.int 3) (Value.int (-1)))
           ~desired:(Value.pair (Value.int 1) (Value.int hts)));
      owner_ts c owner
  | _ -> min_int (* owner still active: invisible *)

(* newest visible version with ts <= snapshot, scanning the raw version
   list in place; [acc_ts] starts at [min_int] so the initial-value
   fallback needs no option *)
let rec best c acc_ts acc_v = function
  | [] -> acc_v
  | Value.VList [ Value.VInt owner; Value.VInt ts0; v ] :: rest ->
      let ts = if owner = -1 then ts0 else owner_ts c owner in
      if ts <= c.snap && ts > acc_ts then best c ts v rest
      else best c acc_ts acc_v rest
  | _ -> invalid_arg "si: bad version entry"

let read c x =
  if c.dead then Error ()
  else
    let id = Item_table.id c.t.tbl x in
    match List.assoc_opt id c.wset with
    | Some v -> Ok v
    | None ->
        let entries =
          Value.to_list_exn
            (Proc.read_t ~tid:c.topt (Array.unsafe_get c.t.ver_oids id))
        in
        Ok (best c min_int Value.initial entries)

let write c x v =
  if c.dead then Error ()
  else begin
    let id = Item_table.id c.t.tbl x in
    c.wset <- (id, v) :: List.remove_assoc id c.wset;
    Ok ()
  end

let max_versions = 8

let rec install c id v =
  let oid = Array.unsafe_get c.t.ver_oids id in
  let cur = Proc.read_t ~tid:c.topt oid in
  let entries = Value.to_list_exn cur in
  let entry =
    Value.list [ Value.int (Oid.to_int c.record); Value.int (-1); v ]
  in
  let keep =
    if List.length entries >= max_versions then
      List.filteri (fun i _ -> i < max_versions - 1) entries
    else entries
  in
  if
    Proc.cas_t ~tid:c.topt oid ~expected:cur
      ~desired:(Value.list (entry :: keep))
  then ()
  else install c id v (* interfering step: retry, obstruction-free *)

let try_commit c =
  if c.dead then Error ()
  else begin
    if c.wset <> [] then begin
      List.iter (fun (id, v) -> install c id v) (List.rev c.wset);
      (* seal: from here on helpers may finish the publish for us *)
      ignore
        (Proc.cas_t ~tid:c.topt c.record
           ~expected:(Value.pair (Value.int 0) (Value.int (-1)))
           ~desired:(Value.pair (Value.int 3) (Value.int (-1))));
      let ts = 1 + Proc.fetch_add_t ~tid:c.topt c.t.clock 1 in
      (* publish atomically: every pending version becomes visible here
         (the CAS fails harmlessly if a helper already published) *)
      ignore
        (Proc.cas_t ~tid:c.topt c.record
           ~expected:(Value.pair (Value.int 3) (Value.int (-1)))
           ~desired:(Value.pair (Value.int 1) (Value.int ts)))
    end;
    c.dead <- true;
    Ok ()
  end

let abort c = c.dead <- true
