(* All TM implementations, one per corner of the paper's triangle plus the
   candidate the theorem kills. *)

let all : Tm_intf.impl list =
  [
    (module Tl_tm);
    (module Pram_tm);
    (module Dstm_tm);
    (module Si_tm);
    (module Candidate_tm);
    (module Tl2_tm);
    (module Norec_tm);
    (module Llsc_tm);
    (module Lp_tm);
    (module Pwf_tm);
  ]

let name (module M : Tm_intf.S) = M.name
let describe (module M : Tm_intf.S) = M.describe

let is_prefix p s =
  String.length p <= String.length s && String.sub s 0 (String.length p) = p

type lookup =
  | Found of Tm_intf.impl
  | Ambiguous of string list  (** candidate names the prefix matches *)
  | Unknown

(** Exact name match first; otherwise a unique prefix resolves too, so
    [tl2] finds [tl2-clock] (while [tl] is [Ambiguous] between [tl-lock]
    and [tl2-clock]). *)
let lookup n : lookup =
  match List.find_opt (fun (module M : Tm_intf.S) -> M.name = n) all with
  | Some impl -> Found impl
  | None -> (
      match
        List.filter (fun (module M : Tm_intf.S) -> is_prefix n M.name) all
      with
      | [ impl ] -> Found impl
      | [] -> Unknown
      | several -> Ambiguous (List.map name several))

let find n = match lookup n with Found impl -> Some impl | _ -> None

let find_exn n =
  match lookup n with
  | Found impl -> impl
  | Ambiguous candidates ->
      invalid_arg
        (Printf.sprintf "Registry.find_exn: %S is ambiguous (matches %s)" n
           (String.concat ", " candidates))
  | Unknown ->
      invalid_arg (Printf.sprintf "Registry.find_exn: no TM named %S" n)
