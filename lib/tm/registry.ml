(* All TM implementations, one per corner of the paper's triangle plus the
   candidate the theorem kills. *)

let all : Tm_intf.impl list =
  [
    (module Tl_tm);
    (module Pram_tm);
    (module Dstm_tm);
    (module Si_tm);
    (module Candidate_tm);
    (module Tl2_tm);
    (module Norec_tm);
    (module Llsc_tm);
  ]

let name (module M : Tm_intf.S) = M.name
let describe (module M : Tm_intf.S) = M.describe

let is_prefix p s =
  String.length p <= String.length s && String.sub s 0 (String.length p) = p

(** Exact name match first; otherwise a unique prefix resolves too, so
    [tl2] finds [tl2-clock] (while [tl] stays ambiguous). *)
let find n : Tm_intf.impl option =
  match List.find_opt (fun (module M : Tm_intf.S) -> M.name = n) all with
  | Some _ as hit -> hit
  | None -> (
      match
        List.filter (fun (module M : Tm_intf.S) -> is_prefix n M.name) all
      with
      | [ impl ] -> Some impl
      | _ -> None)

let find_exn n =
  match find n with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Registry.find_exn: %s" n)
