(* Dynamic transactions with automatic retry — the client-facing
   combinator a real TM exposes.

   [run handle ~pid body] executes [body] transactionally: on abort it
   retries with a fresh transaction identifier (as in the restart model of
   [Ellen et al. 12]: an aborted transaction re-executes as a new one).
   The body is an arbitrary function over the transaction — data items may
   be chosen dynamically from values read. *)

open Tm_base

exception Too_many_retries of { pid : int; attempts : int }

(** A body signals its own desire to abort by returning [Retry];
    [Done v] commits and yields [v]. *)
type 'a outcome = Done of 'a | Retry

(** [run handle ~pid ?max_attempts ?on_abort body] — run [body] until it
    commits.  Every attempt is a fresh transaction with a fresh id (ids
    must be unique within a history).  [on_abort ~attempt] is consulted
    after each abort — a contention manager hooks in here to back off
    (burning simulation steps) or to give up by returning [false].
    @raise Too_many_retries after [max_attempts] (default 64) aborts, or
    as soon as [on_abort] returns [false]. *)
let run (handle : Txn_api.handle) ~pid ?(max_attempts = 64)
    ?(on_abort = fun ~attempt:_ -> true) (body : Txn_api.txn -> 'a outcome) :
    'a =
  let give_up n = raise (Too_many_retries { pid; attempts = n }) in
  let retry n next =
    if not (on_abort ~attempt:n) then give_up n else next (n + 1)
  in
  let rec attempt n =
    if n > max_attempts then give_up n;
    let txn =
      handle.Txn_api.begin_txn ~pid ~tid:(handle.Txn_api.fresh_tid ())
    in
    match body txn with
    | exception Stdlib.Exit ->
        (* the body observed an abort response mid-way *)
        retry n attempt
    | Retry ->
        txn.Txn_api.abort ();
        retry n attempt
    | Done v -> (
        match txn.Txn_api.try_commit () with
        | Ok () -> v
        | Error () -> retry n attempt)
  in
  attempt 0

(** Read that turns an abort answer into a retry of the whole body. *)
let read (txn : Txn_api.txn) (x : Item.t) : Value.t =
  match txn.Txn_api.read x with Ok v -> v | Error () -> raise Stdlib.Exit

(** Write that turns an abort answer into a retry of the whole body. *)
let write (txn : Txn_api.txn) (x : Item.t) (v : Value.t) : unit =
  match txn.Txn_api.write x v with
  | Ok () -> ()
  | Error () -> raise Stdlib.Exit
