(* TL2-style global-version-clock TM [Dice, Shalev & Shavit 06] — included
   as the *ablation* of the candidate TM: keep its per-item versioned
   registers and optimistic reads, add one global object (the version
   clock) and commit-time locking, and consistency is repaired (opacity)
   at the price of BOTH remaining legs:

     Parallelism: NOT DAP — every transaction reads the clock at begin and
                  every committing writer fetch&adds it, so fully disjoint
                  transactions contend.
     Consistency: opacity — reads are version-filtered against the begin
                  snapshot (ver <= rv, unlocked), and commits lock the
                  write set, re-validate the read set under those locks,
                  and install with a fresh clock value.
     Liveness:    blocking — commit spins on the per-item lock words, and
                  readers abort when they meet a locked or too-new item.

   Per item x: one object [tv:x] = VList [VInt owner; value; VInt version]
   where owner = -1 when unlocked (lock word, value and version share one
   object so that reads and installs are single atomic steps).  Items are
   dense int ids ({!Item_table}); id order = item order, so the commit's
   lock walk is unchanged. *)

open Tm_base
open Tm_runtime

let name = "tl2-clock"
let describe = "opacity via a global clock; neither DAP nor non-blocking (ablation)"

type t = { gv : Oid.t; tbl : Item_table.t; cell_oids : Oid.t array }

let create mem ~items =
  let gv = Memory.alloc mem ~name:"gv" (Value.int 0) in
  let tbl = Item_table.create items in
  let cell_oids =
    Item_table.alloc_oids tbl items ~alloc:(fun x ->
        Memory.alloc mem
          ~name:("tv:" ^ Item.name x)
          (Value.list [ Value.int (-1); Value.initial; Value.int 0 ]))
  in
  { gv; tbl; cell_oids }

type ctx = {
  t : t;
  pid : int;
  tid : Tid.t;
  topt : Tid.t option;  (* [Some tid], boxed once so steps don't re-box it *)
  rv : int;  (* read version: clock snapshot at begin *)
  mutable rset : int list;  (* item ids *)
  mutable wset : (int * Value.t) list;
  mutable dead : bool;
}

let begin_txn t ~pid ~tid =
  let rv = Value.to_int_exn (Proc.read ~tid t.gv) in
  { t; pid; tid; topt = Some tid; rv; rset = []; wset = []; dead = false }

let encode owner v ver = Value.list [ Value.int owner; v; Value.int ver ]

let read c x =
  if c.dead then Error ()
  else
    let id = Item_table.id c.t.tbl x in
    match List.assoc_opt id c.wset with
    | Some v -> Ok v
    | None -> (
        match Proc.read_t ~tid:c.topt (Array.unsafe_get c.t.cell_oids id) with
        | Value.VList [ Value.VInt owner; v; Value.VInt ver ] ->
            if owner <> -1 || ver > c.rv then begin
              (* locked by a committer, or written after our snapshot: the
                 snapshot cannot be extended — abort (TL2's read filter) *)
              c.dead <- true;
              Error ()
            end
            else begin
              if not (List.mem id c.rset) then c.rset <- id :: c.rset;
              Ok v
            end
        | _ -> invalid_arg "tl2: bad cell")

let write c x v =
  if c.dead then Error ()
  else begin
    let id = Item_table.id c.t.tbl x in
    c.wset <- (id, v) :: List.remove_assoc id c.wset;
    Ok ()
  end

(* validate the read set under the locks: unlocked (or locked by us) and
   not newer than the begin snapshot *)
let rec validate c = function
  | [] -> true
  | id :: rest -> (
      match Proc.read_t ~tid:c.topt (Array.unsafe_get c.t.cell_oids id) with
      | Value.VList [ Value.VInt owner; _; Value.VInt ver ] ->
          (owner = -1 || owner = c.pid) && ver <= c.rv && validate c rest
      | _ -> invalid_arg "tl2: bad cell")

let try_commit c =
  if c.dead then Error ()
  else begin
    c.dead <- true;
    if c.wset = [] then Ok () (* read-only fast path, as in TL2 *)
    else begin
      let items = List.sort Int.compare (List.map fst c.wset) in
      (* lock the write set in item order (spin: the blocking part) *)
      let rec lock_all held = function
        | [] -> held
        | id :: rest as pending -> (
            let oid = Array.unsafe_get c.t.cell_oids id in
            let cur = Proc.read_t ~tid:c.topt oid in
            match cur with
            | Value.VList [ Value.VInt owner; v; Value.VInt ver ] ->
                if owner <> -1 then lock_all held pending (* spin *)
                else if
                  Proc.cas_t ~tid:c.topt oid ~expected:cur
                    ~desired:(encode c.pid v ver)
                then lock_all ((id, v, ver) :: held) rest
                else lock_all held pending
            | _ -> invalid_arg "tl2: bad cell")
      in
      let held = lock_all [] items in
      let release () =
        List.iter
          (fun (id, v, ver) ->
            Proc.write_t ~tid:c.topt
              (Array.unsafe_get c.t.cell_oids id)
              (encode (-1) v ver))
          held
      in
      (* fresh write version *)
      let wv = 1 + Proc.fetch_add_t ~tid:c.topt c.t.gv 1 in
      (* validate the read set under the locks.  Items we also write are
         locked by us and validate by version alone — skipping them would
         re-admit the lost update. *)
      if not (validate c c.rset) then begin
        release ();
        Error ()
      end
      else begin
        (* install and unlock in one atomic write per item *)
        List.iter
          (fun (id, _, _) ->
            let v = List.assoc id c.wset in
            Proc.write_t ~tid:c.topt
              (Array.unsafe_get c.t.cell_oids id)
              (encode (-1) v wv))
          held;
        Ok ()
      end
    end
  end

let abort c = c.dead <- true
