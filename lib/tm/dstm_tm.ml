(* DSTM-style obstruction-free TM [Herlihy, Luchangco, Moir & Scherer 03]
   — the corner that weakens *parallelism*:

     Parallelism: NOT strict DAP.  Writers acquire per-item locators that
                  point to the owner's transaction status word; aborting an
                  enemy CASes that word.  Two mutually disjoint
                  transactions that both conflict with a third therefore
                  contend on the third's status object — exactly the
                  chain-style weak DAP of the authors' DSTM variant [11].
     Consistency: committed transactions validate their read set on every
                  open and, at commit, *acquire* their read set (visible
                  reads at commit: each read item's locator is CASed to a
                  value-preserving self-owned one).  After that, any
                  conflicting writer must abort this transaction's status
                  word before touching the data, so the final status CAS
                  atomically decides the commit with all reads still
                  current — strict serializability of committed
                  transactions, with no validate-to-commit window.  (The
                  paper notes its impossibility covers visible read-only
                  transactions, so this variant stays in scope.)
     Liveness:    obstruction-free — a transaction retries or aborts only
                  when another process's step changed something under it,
                  and running solo it always commits.

   Per item x: a locator object [loc:x] = VList [VInt owner; old; new]
   where [owner] is the oid of the owning transaction's status object
   (-1 when unowned).  Per transaction: a status object [st:T] = VInt
   (0 active / 1 committed / 2 aborted), allocated at begin.  Items are
   dense int ids ({!Item_table}); read/write sets are id-keyed. *)

open Tm_base
open Tm_runtime

let name = "dstm"
let describe = "obstruction-free + strict serializability, weak DAP only (weakens P)"

type t = { mem : Memory.t; tbl : Item_table.t; loc_oids : Oid.t array }

let create mem ~items =
  let tbl = Item_table.create items in
  let loc_oids =
    Item_table.alloc_oids tbl items ~alloc:(fun x ->
        Memory.alloc mem
          ~name:("loc:" ^ Item.name x)
          (Value.list [ Value.int (-1); Value.initial; Value.initial ]))
  in
  { mem; tbl; loc_oids }

type ctx = {
  t : t;
  pid : int;
  tid : Tid.t;
  topt : Tid.t option;  (* [Some tid], boxed once so steps don't re-box it *)
  status : Oid.t;
  mutable rset : (int * Value.t) list;  (* item id, value observed *)
  mutable wset : (int * Value.t) list;  (* ids we own, pending value *)
  mutable dead : bool;
}

let begin_txn t ~pid ~tid =
  let status =
    Memory.alloc t.mem ~name:(Printf.sprintf "st:%s" (Tid.name tid))
      (Value.int 0)
  in
  { t; pid; tid; topt = Some tid; status; rset = []; wset = []; dead = false }

let encode owner old_v new_v =
  Value.list [ Value.int owner; old_v; new_v ]

let read_status c oid = Value.to_int_exn (Proc.read_t ~tid:c.topt (Oid.of_int oid))

(* current committed value of a locator, resolving the owner's status; a
   pending write — the caller's own included — is not yet visible.  (Reads
   of items the transaction itself wrote are answered from the write set
   before this is consulted; here we need the committed view, notably for
   read-set validation of a read-then-write item.) *)
let current_value c id =
  match Proc.read_t ~tid:c.topt (Array.unsafe_get c.t.loc_oids id) with
  | Value.VList [ Value.VInt owner; old_v; new_v ] ->
      if owner = -1 || owner = Oid.to_int c.status then old_v
      else (
        match read_status c owner with
        | 1 -> new_v (* committed *)
        | _ -> old_v (* active or aborted *))
  | _ -> invalid_arg "dstm: bad locator"

(* incremental validation: every recorded read must still be current *)
let rec validate c = function
  | [] -> true
  | (id, v) :: rest -> Value.equal (current_value c id) v && validate c rest

let self_abort c =
  ignore
    (Proc.cas_t ~tid:c.topt c.status ~expected:(Value.int 0)
       ~desired:(Value.int 2));
  c.dead <- true;
  Error ()

let read c x =
  if c.dead then Error ()
  else
    let id = Item_table.id c.t.tbl x in
    match List.assoc_opt id c.wset with
    | Some v -> Ok v
    | None ->
        let v = current_value c id in
        if not (List.mem_assoc id c.rset) then c.rset <- (id, v) :: c.rset;
        if validate c c.rset then Ok v
        else self_abort c |> Result.map (fun _ -> v)

(* acquire ownership of x's locator, aborting an active enemy owner *)
let rec acquire c id v =
  let oid = Array.unsafe_get c.t.loc_oids id in
  match Proc.read_t ~tid:c.topt oid with
  | Value.VList [ Value.VInt owner; old_v; new_v ] as lv ->
      if owner = Oid.to_int c.status then begin
        (* already own it: refresh the pending value *)
        if
          Proc.cas_t ~tid:c.topt oid ~expected:lv
            ~desired:(encode owner old_v v)
        then true
        else acquire c id v
      end
      else begin
        let proceed_with cur =
          if
            Proc.cas_t ~tid:c.topt oid ~expected:lv
              ~desired:(encode (Oid.to_int c.status) cur v)
          then true
          else acquire c id v
        in
        if owner = -1 then proceed_with old_v
        else
          match read_status c owner with
          | 1 -> proceed_with new_v
          | 2 -> proceed_with old_v
          | _ ->
              (* active enemy: obstruction-free contention management —
                 abort it and retry *)
              ignore
                (Proc.cas_t ~tid:c.topt (Oid.of_int owner)
                   ~expected:(Value.int 0) ~desired:(Value.int 2));
              acquire c id v
      end
  | _ -> invalid_arg "dstm: bad locator"

let write c x v =
  if c.dead then Error ()
  else begin
    let id = Item_table.id c.t.tbl x in
    ignore (acquire c id v);
    c.wset <- (id, v) :: List.remove_assoc id c.wset;
    if validate c c.rset then Ok () else self_abort c
  end

(* acquire read ownership of x at commit: install a self-owned locator
   with old = new = the value we read, failing if the value moved *)
let rec acquire_read c id v =
  let oid = Array.unsafe_get c.t.loc_oids id in
  match Proc.read_t ~tid:c.topt oid with
  | Value.VList [ Value.VInt owner; old_v; new_v ] as lv ->
      if owner = Oid.to_int c.status then true
      else begin
        let with_current cur =
          if not (Value.equal cur v) then false (* stale read *)
          else if
            Proc.cas_t ~tid:c.topt oid ~expected:lv
              ~desired:(encode (Oid.to_int c.status) v v)
          then true
          else acquire_read c id v
        in
        if owner = -1 then with_current old_v
        else
          match read_status c owner with
          | 1 -> with_current new_v
          | 2 -> with_current old_v
          | _ ->
              ignore
                (Proc.cas_t ~tid:c.topt (Oid.of_int owner)
                   ~expected:(Value.int 0) ~desired:(Value.int 2));
              acquire_read c id v
      end
  | _ -> invalid_arg "dstm: bad locator"

let rec acquire_reads c = function
  | [] -> true
  | (id, v) :: rest ->
      (List.mem_assoc id c.wset || acquire_read c id v)
      && acquire_reads c rest

let try_commit c =
  if c.dead then Error ()
  else if not (acquire_reads c c.rset) then self_abort c
  else if
    Proc.cas_t ~tid:c.topt c.status ~expected:(Value.int 0)
      ~desired:(Value.int 1)
  then begin
    c.dead <- true;
    Ok ()
  end
  else begin
    (* an enemy aborted us *)
    c.dead <- true;
    Error ()
  end

let abort c = ignore (self_abort c)
