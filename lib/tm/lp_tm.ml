(* LP-style progressive TM [Kuznetsov & Ravi, "Progressive Transactional
   Memory in Time and Space"] — the corner that weakens liveness only as
   far as *progressiveness*: a transaction may be aborted only on a
   read-write conflict with a concurrent transaction, so every
   step-contention-free transaction commits.

     Parallelism: strict DAP — only per-item locator objects are touched.
     Consistency: opaque (incremental read-set validation on every read
                  plus commit-time validation; an abort is the only
                  possible answer to interference, never an inconsistent
                  view).
     Liveness:    progressive, but NOT obstruction-free — a suspended
                  lock holder forces conflicting transactions to abort
                  themselves forever (the of-stall "uncontended abort"
                  arm fires by design: the aborts are attributable to the
                  conflicting *transaction*, not to step contention).

   Per item x one locator [loc:x] = VList [VInt owner; VInt ver; value],
   owner = -1 when unlocked.  Writers acquire the lock at encounter time
   with a CAS on the locator itself (so readers can observe lock state and
   lock acquisition is one atomic step); conflict — a held lock, a CAS
   lost to an interfering step, or a version moved under a read — always
   means "abort self", never "wait".  The per-read revalidation of the
   whole read set is the time cost the paper proves inherent: progressive
   TMs with invisible reads must do incremental validation.  Items are
   dense int ids ({!Item_table}); id order = item order, so the commit's
   publish walk is unchanged. *)

open Tm_base
open Tm_runtime

let name = "lp-progressive"

let describe =
  "strict DAP + opaque, progressive: conflict => abort self (weakens L)"

type t = { tbl : Item_table.t; loc_oids : Oid.t array }

let unlocked = -1

let cell ~owner ~ver v = Value.list [ Value.int owner; Value.int ver; v ]

let create mem ~items =
  let tbl = Item_table.create items in
  let loc_oids =
    Item_table.alloc_oids tbl items ~alloc:(fun x ->
        Memory.alloc mem
          ~name:("loc:" ^ Item.name x)
          (cell ~owner:unlocked ~ver:0 Value.initial))
  in
  { tbl; loc_oids }

type ctx = {
  t : t;
  pid : int;
  tid : Tid.t;
  topt : Tid.t option;  (* [Some tid], boxed once so steps don't re-box it *)
  mutable rset : (int * int) list;  (* item id, version at first read *)
  mutable wset : (int * Value.t) list;  (* newest binding first *)
  mutable locked : (int * (int * Value.t)) list;
      (* ids whose locator we hold, with the (version, value) to restore
         on abort *)
  mutable dead : bool;
}

let begin_txn t ~pid ~tid =
  { t; pid; tid; topt = Some tid; rset = []; wset = []; locked = []; dead = false }

let read_loc c id = Proc.read_t ~tid:c.topt (Array.unsafe_get c.t.loc_oids id)

(* abort self: restore every held locator to its pre-lock (version, value)
   — the version is unchanged, so reads made before we locked stay valid *)
let self_abort c =
  List.iter
    (fun (id, (ver, v)) ->
      Proc.write_t ~tid:c.topt
        (Array.unsafe_get c.t.loc_oids id)
        (cell ~owner:unlocked ~ver v))
    c.locked;
  c.locked <- [];
  c.dead <- true

(* incremental validation: every previously read, still-unlocked item must
   be unlocked at its recorded version.  Items we hold the lock on cannot
   move under us and are skipped. *)
let rec validate c = function
  | [] -> true
  | (id, ver0) :: rest ->
      (List.mem_assoc id c.locked
      ||
      match read_loc c id with
      | Value.VList [ Value.VInt owner; Value.VInt ver; _ ] ->
          owner = unlocked && ver = ver0
      | _ -> invalid_arg "lp: bad locator")
      && validate c rest

let conflict c =
  self_abort c;
  Error ()

let read c x =
  if c.dead then Error ()
  else
    let id = Item_table.id c.t.tbl x in
    match List.assoc_opt id c.wset with
    | Some v -> Ok v
    | None -> (
        match read_loc c id with
        | Value.VList [ Value.VInt owner; Value.VInt ver; v ] ->
            if owner <> unlocked then conflict c
              (* locked by a concurrent txn *)
            else if
              match List.assoc_opt id c.rset with
              | Some ver0 -> ver <> ver0
              | None -> false
            then conflict c (* the item moved between our reads *)
            else if not (validate c c.rset) then conflict c
            else begin
              if not (List.mem_assoc id c.rset) then
                c.rset <- (id, ver) :: c.rset;
              Ok v
            end
        | _ -> invalid_arg "lp: bad locator")

let write c x v =
  if c.dead then Error ()
  else
    let id = Item_table.id c.t.tbl x in
    if List.mem_assoc id c.locked then begin
      c.wset <- (id, v) :: List.remove_assoc id c.wset;
      Ok ()
    end
    else
      match read_loc c id with
      | Value.VList [ Value.VInt owner; Value.VInt ver; cur ] as cur_loc ->
          if owner <> unlocked then conflict c
          else if
            match List.assoc_opt id c.rset with
            | Some ver0 -> ver <> ver0
            | None -> false
          then conflict c
          else if
            (* the expected value is the locator we just read — CAS
               compares structurally, so no reconstruction is needed *)
            not
              (Proc.cas_t ~tid:c.topt
                 (Array.unsafe_get c.t.loc_oids id)
                 ~expected:cur_loc
                 ~desired:(cell ~owner:c.pid ~ver cur))
          then conflict c (* an interfering step took the locator first *)
          else begin
            c.locked <- (id, (ver, cur)) :: c.locked;
            c.wset <- (id, v) :: List.remove_assoc id c.wset;
            Ok ()
          end
      | _ -> invalid_arg "lp: bad locator"

let try_commit c =
  if c.dead then Error ()
  else if not (validate c c.rset) then conflict c
  else begin
    (* publish + unlock in one atomic step per item, in item order *)
    List.iter
      (fun id ->
        let ver, _ = List.assoc id c.locked in
        let v = List.assoc id c.wset in
        Proc.write_t ~tid:c.topt
          (Array.unsafe_get c.t.loc_oids id)
          (cell ~owner:unlocked ~ver:(ver + 1) v))
      (List.sort Int.compare (List.map fst c.locked));
    c.locked <- [];
    c.dead <- true;
    Ok ()
  end

let abort c = if not c.dead then self_abort c
