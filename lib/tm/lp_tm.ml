(* LP-style progressive TM [Kuznetsov & Ravi, "Progressive Transactional
   Memory in Time and Space"] — the corner that weakens liveness only as
   far as *progressiveness*: a transaction may be aborted only on a
   read-write conflict with a concurrent transaction, so every
   step-contention-free transaction commits.

     Parallelism: strict DAP — only per-item locator objects are touched.
     Consistency: opaque (incremental read-set validation on every read
                  plus commit-time validation; an abort is the only
                  possible answer to interference, never an inconsistent
                  view).
     Liveness:    progressive, but NOT obstruction-free — a suspended
                  lock holder forces conflicting transactions to abort
                  themselves forever (the of-stall "uncontended abort"
                  arm fires by design: the aborts are attributable to the
                  conflicting *transaction*, not to step contention).

   Per item x one locator [loc:x] = VList [VInt owner; VInt ver; value],
   owner = -1 when unlocked.  Writers acquire the lock at encounter time
   with a CAS on the locator itself (so readers can observe lock state and
   lock acquisition is one atomic step); conflict — a held lock, a CAS
   lost to an interfering step, or a version moved under a read — always
   means "abort self", never "wait".  The per-read revalidation of the
   whole read set is the time cost the paper proves inherent: progressive
   TMs with invisible reads must do incremental validation. *)

open Tm_base
open Tm_runtime

let name = "lp-progressive"

let describe =
  "strict DAP + opaque, progressive: conflict => abort self (weakens L)"

type t = { loc_of : Item.t -> Oid.t }

let unlocked = -1

let cell ~owner ~ver v = Value.list [ Value.int owner; Value.int ver; v ]

let decode = function
  | Value.VList [ Value.VInt owner; Value.VInt ver; v ] -> (owner, ver, v)
  | _ -> invalid_arg "lp: bad locator"

let create mem ~items =
  let locs = Hashtbl.create 16 in
  List.iter
    (fun x ->
      Hashtbl.replace locs x
        (Memory.alloc mem
           ~name:("loc:" ^ Item.name x)
           (cell ~owner:unlocked ~ver:0 Value.initial)))
    items;
  { loc_of = (fun x -> Hashtbl.find locs x) }

type ctx = {
  t : t;
  pid : int;
  tid : Tid.t;
  mutable rset : (Item.t * int) list;  (* item, version at first read *)
  mutable wset : (Item.t * Value.t) list;  (* newest binding first *)
  mutable locked : (Item.t * (int * Value.t)) list;
      (* items whose locator we hold, with the (version, value) to restore
         on abort *)
  mutable dead : bool;
}

let begin_txn t ~pid ~tid =
  { t; pid; tid; rset = []; wset = []; locked = []; dead = false }

let read_loc c x = decode (Proc.read ~tid:c.tid (c.t.loc_of x))

(* abort self: restore every held locator to its pre-lock (version, value)
   — the version is unchanged, so reads made before we locked stay valid *)
let self_abort c =
  List.iter
    (fun (x, (ver, v)) ->
      Proc.write ~tid:c.tid (c.t.loc_of x) (cell ~owner:unlocked ~ver v))
    c.locked;
  c.locked <- [];
  c.dead <- true

(* incremental validation: every previously read, still-unlocked item must
   be unlocked at its recorded version.  Items we hold the lock on cannot
   move under us and are skipped. *)
let validate c =
  List.for_all
    (fun (x, ver0) ->
      List.mem_assoc x c.locked
      ||
      let owner, ver, _ = read_loc c x in
      owner = unlocked && ver = ver0)
    c.rset

let conflict c =
  self_abort c;
  Error ()

let read c x =
  if c.dead then Error ()
  else
    match List.assoc_opt x c.wset with
    | Some v -> Ok v
    | None ->
        let owner, ver, v = read_loc c x in
        if owner <> unlocked then conflict c (* locked by a concurrent txn *)
        else if
          match List.assoc_opt x c.rset with
          | Some ver0 -> ver <> ver0
          | None -> false
        then conflict c (* the item moved between our reads *)
        else if not (validate c) then conflict c
        else begin
          if not (List.mem_assoc x c.rset) then c.rset <- (x, ver) :: c.rset;
          Ok v
        end

let write c x v =
  if c.dead then Error ()
  else if List.mem_assoc x c.locked then begin
    c.wset <- (x, v) :: List.remove_assoc x c.wset;
    Ok ()
  end
  else
    let owner, ver, cur = read_loc c x in
    if owner <> unlocked then conflict c
    else if
      match List.assoc_opt x c.rset with
      | Some ver0 -> ver <> ver0
      | None -> false
    then conflict c
    else if
      not
        (Proc.cas ~tid:c.tid (c.t.loc_of x)
           ~expected:(cell ~owner:unlocked ~ver cur)
           ~desired:(cell ~owner:c.pid ~ver cur))
    then conflict c (* an interfering step took the locator first *)
    else begin
      c.locked <- (x, (ver, cur)) :: c.locked;
      c.wset <- (x, v) :: List.remove_assoc x c.wset;
      Ok ()
    end

let try_commit c =
  if c.dead then Error ()
  else if not (validate c) then conflict c
  else begin
    (* publish + unlock in one atomic step per item, in item order *)
    List.iter
      (fun x ->
        let ver, _ = List.assoc x c.locked in
        let v = List.assoc x c.wset in
        Proc.write ~tid:c.tid (c.t.loc_of x)
          (cell ~owner:unlocked ~ver:(ver + 1) v))
      (List.sort Item.compare (List.map fst c.locked));
    c.locked <- [];
    c.dead <- true;
    Ok ()
  end

let abort c = if not c.dead then self_abort c
