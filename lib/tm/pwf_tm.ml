(* Partially wait-free TM [Kuznetsov & Ravi, "On Partial Wait-Freedom in
   Transactional Memory"] — the corner that keeps consistency and buys
   *partial* wait-freedom by giving up parallelism entirely:

     Parallelism: no DAP at all — the whole committed state lives behind
                  ONE root object, so even fully disjoint transactions
                  contend on it (the strongest possible strict-dap tax).
     Consistency: strictly serializable and opaque — a reader's snapshot
                  is one atomic root load; an updater's validate+publish
                  is one atomic root CAS.
     Liveness:    partially wait-free — read-only transactions are
                  wait-free with a *constant* step bound (exactly one
                  shared step: the snapshot load at begin; reads and the
                  commit of a read-only transaction take no shared steps
                  and can never abort or block).  Updaters are lock-free:
                  the commit CAS fails only because a concurrent
                  transaction committed, and an abort is only ever the
                  answer to a read-write conflict with a concurrent
                  committed writer — so updaters are progressive too, but
                  an individual updater may starve under a stream of
                  conflicting commits.

   [root] = VPair (VInt ts, VList per-item VPair (VInt ts_x, value)),
   indexed by the item's position in the [create]-time item list.  The
   per-item timestamps are what make the snapshot "versioned": an
   updater's validation compares the current timestamp of every item it
   read against its snapshot's, so an abort names the exact items a
   concurrent commit moved. *)

open Tm_base
open Tm_runtime

let name = "pwf-readers"

let describe =
  "wait-free read-only txns + lock-free updaters, opaque, no DAP (weakens P)"

type t = { root : Oid.t; index_of : Item.t -> int }

let entry ~ts v = Value.pair (Value.int ts) v

let decode_entry = function
  | Value.VPair (Value.VInt ts, v) -> (ts, v)
  | _ -> invalid_arg "pwf: bad snapshot entry"

let decode = function
  | Value.VPair (Value.VInt ts, Value.VList entries) ->
      (ts, List.map decode_entry entries)
  | _ -> invalid_arg "pwf: bad snapshot root"

let create mem ~items =
  let store0 = Value.list (List.map (fun _ -> entry ~ts:0 Value.initial) items) in
  let root = Memory.alloc mem ~name:"root" (Value.pair (Value.int 0) store0) in
  let index = Hashtbl.create 16 in
  List.iteri (fun i x -> Hashtbl.replace index x i) items;
  { root; index_of = (fun x -> Hashtbl.find index x) }

type ctx = {
  t : t;
  pid : int;
  tid : Tid.t;
  snap_root : Value.t;  (* the raw root value loaded at begin *)
  snap : (int * Value.t) list;  (* decoded per-item (ts, value) *)
  mutable rset : Item.t list;  (* items read from the snapshot *)
  mutable wset : (Item.t * Value.t) list;  (* newest binding first *)
  mutable dead : bool;
}

let begin_txn t ~pid ~tid =
  let snap_root = Proc.read ~tid t.root in
  let _, snap = decode snap_root in
  { t; pid; tid; snap_root; snap; rset = []; wset = []; dead = false }

let read c x =
  if c.dead then Error ()
  else
    match List.assoc_opt x c.wset with
    | Some v -> Ok v
    | None ->
        let _, v = List.nth c.snap (c.t.index_of x) in
        if not (List.mem x c.rset) then c.rset <- x :: c.rset;
        Ok v

let write c x v =
  if c.dead then Error ()
  else begin
    c.wset <- (x, v) :: List.remove_assoc x c.wset;
    Ok ()
  end

let try_commit c =
  if c.dead then Error ()
  else if c.wset = [] then begin
    (* read-only: the snapshot was consistent at begin, commit is free *)
    c.dead <- true;
    Ok ()
  end
  else begin
    let writes =
      List.map (fun (x, v) -> (c.t.index_of x, v)) c.wset
    in
    let read_idx = List.map c.t.index_of c.rset in
    let snap_ts_at i = fst (List.nth c.snap i) in
    (* the first attempt CASes against the begin-time snapshot itself, so
       an uncontended updater commits without re-reading the root *)
    let rec attempt cur_root =
      let cur_ts, cur = decode cur_root in
      let valid =
        List.for_all (fun i -> fst (List.nth cur i) = snap_ts_at i) read_idx
      in
      if not valid then begin
        (* a concurrent transaction committed a newer version of an item
           we read: the one abort cause this TM admits *)
        c.dead <- true;
        Error ()
      end
      else begin
        let ts' = cur_ts + 1 in
        let store' =
          Value.list
            (List.mapi
               (fun i e ->
                 match List.assoc_opt i writes with
                 | Some v -> entry ~ts:ts' v
                 | None -> entry ~ts:(fst e) (snd e))
               cur)
        in
        if
          Proc.cas ~tid:c.tid c.t.root ~expected:cur_root
            ~desired:(Value.pair (Value.int ts') store')
        then begin
          c.dead <- true;
          Ok ()
        end
        else
          (* the CAS lost to another commit: lock-free retry — the failed
             attempt witnesses system-wide progress *)
          attempt (Proc.read ~tid:c.tid c.t.root)
      end
    in
    attempt c.snap_root
  end

let abort c = c.dead <- true
