(* Partially wait-free TM [Kuznetsov & Ravi, "On Partial Wait-Freedom in
   Transactional Memory"] — the corner that keeps consistency and buys
   *partial* wait-freedom by giving up parallelism entirely:

     Parallelism: no DAP at all — the whole committed state lives behind
                  ONE root object, so even fully disjoint transactions
                  contend on it (the strongest possible strict-dap tax).
     Consistency: strictly serializable and opaque — a reader's snapshot
                  is one atomic root load; an updater's validate+publish
                  is one atomic root CAS.
     Liveness:    partially wait-free — read-only transactions are
                  wait-free with a *constant* step bound (exactly one
                  shared step: the snapshot load at begin; reads and the
                  commit of a read-only transaction take no shared steps
                  and can never abort or block).  Updaters are lock-free:
                  the commit CAS fails only because a concurrent
                  transaction committed, and an abort is only ever the
                  answer to a read-write conflict with a concurrent
                  committed writer — so updaters are progressive too, but
                  an individual updater may starve under a stream of
                  conflicting commits.

   [root] = VPair (VInt ts, VList per-item VPair (VInt ts_x, value)),
   indexed by the item's position in the [create]-time item list.  The
   per-item timestamps are what make the snapshot "versioned": an
   updater's validation compares the current timestamp of every item it
   read against its snapshot's, so an abort names the exact items a
   concurrent commit moved.

   The snapshot is kept as the raw store list (no up-front decode); reads
   and validation match the VPair entries in place, and the commit's
   rebuilt store reuses unchanged entries — structurally identical to
   re-encoding them, without the allocation. *)

open Tm_base
open Tm_runtime

let name = "pwf-readers"

let describe =
  "wait-free read-only txns + lock-free updaters, opaque, no DAP (weakens P)"

type t = { root : Oid.t; idx : (Item.t, int) Hashtbl.t }

let entry ~ts v = Value.pair (Value.int ts) v

let entry_ts = function
  | Value.VPair (Value.VInt ts, _) -> ts
  | _ -> invalid_arg "pwf: bad snapshot entry"

let entry_value = function
  | Value.VPair (_, v) -> v
  | _ -> invalid_arg "pwf: bad snapshot entry"

(* the store list inside a root value, borrowed in place *)
let store_of = function
  | Value.VPair (_, Value.VList entries) -> entries
  | _ -> invalid_arg "pwf: bad snapshot root"

let root_ts = function
  | Value.VPair (Value.VInt ts, _) -> ts
  | _ -> invalid_arg "pwf: bad snapshot root"

let create mem ~items =
  let store0 = Value.list (List.map (fun _ -> entry ~ts:0 Value.initial) items) in
  let root = Memory.alloc mem ~name:"root" (Value.pair (Value.int 0) store0) in
  let idx = Hashtbl.create 16 in
  (* positions follow the create-time item list: the root store's layout
     is part of the recorded artifact surface *)
  List.iteri (fun i x -> Hashtbl.replace idx x i) items;
  { root; idx }

let index_of t x = Hashtbl.find t.idx x

type ctx = {
  t : t;
  pid : int;
  tid : Tid.t;
  topt : Tid.t option;  (* [Some tid], boxed once so steps don't re-box it *)
  snap_root : Value.t;  (* the raw root value loaded at begin *)
  snap : Value.t list;  (* its store list, borrowed (per-item VPair (ts, v)) *)
  mutable rset : int list;  (* store indices read from the snapshot *)
  mutable wset : (int * Value.t) list;  (* newest binding first, by index *)
  mutable dead : bool;
}

let begin_txn t ~pid ~tid =
  let snap_root = Proc.read ~tid t.root in
  let snap = store_of snap_root in
  { t; pid; tid; topt = Some tid; snap_root; snap; rset = []; wset = []; dead = false }

let read c x =
  if c.dead then Error ()
  else
    let i = index_of c.t x in
    match List.assoc_opt i c.wset with
    | Some v -> Ok v
    | None ->
        let v = entry_value (List.nth c.snap i) in
        if not (List.mem i c.rset) then c.rset <- i :: c.rset;
        Ok v

let write c x v =
  if c.dead then Error ()
  else begin
    let i = index_of c.t x in
    c.wset <- (i, v) :: List.remove_assoc i c.wset;
    Ok ()
  end

let try_commit c =
  if c.dead then Error ()
  else if c.wset = [] then begin
    (* read-only: the snapshot was consistent at begin, commit is free *)
    c.dead <- true;
    Ok ()
  end
  else begin
    let snap_ts_at i = entry_ts (List.nth c.snap i) in
    (* the first attempt CASes against the begin-time snapshot itself, so
       an uncontended updater commits without re-reading the root *)
    let rec attempt cur_root =
      let cur = store_of cur_root in
      let valid =
        List.for_all
          (fun i -> entry_ts (List.nth cur i) = snap_ts_at i)
          c.rset
      in
      if not valid then begin
        (* a concurrent transaction committed a newer version of an item
           we read: the one abort cause this TM admits *)
        c.dead <- true;
        Error ()
      end
      else begin
        let ts' = root_ts cur_root + 1 in
        let store' =
          Value.list
            (List.mapi
               (fun i e ->
                 match List.assoc_opt i c.wset with
                 | Some v -> entry ~ts:ts' v
                 | None -> e (* unchanged: reuse, structurally identical *))
               cur)
        in
        if
          Proc.cas_t ~tid:c.topt c.t.root ~expected:cur_root
            ~desired:(Value.pair (Value.int ts') store')
        then begin
          c.dead <- true;
          Ok ()
        end
        else
          (* the CAS lost to another commit: lock-free retry — the failed
             attempt witnesses system-wide progress *)
          attempt (Proc.read_t ~tid:c.topt c.t.root)
      end
    in
    attempt c.snap_root
  end

let abort c = c.dead <- true
