(** LP-style progressive TM [Kuznetsov & Ravi, "Progressive Transactional
    Memory in Time and Space"] — liveness weakened only as far as
    {e progressiveness}: strict DAP, opaque (incremental read-set
    validation), and every abort attributable to a conflict with a
    concurrent transaction.  Writers acquire per-item locators with an
    encounter-time CAS; a held locator, a lost CAS or a moved version
    always answers "abort self", never "wait" — so a suspended lock
    holder forces conflicting transactions to abort forever, which is
    progressive but deliberately not obstruction-free. *)

include Tm_intf.S
