(* Dense integer ids for a TM's item set.

   Ids are assigned in [Item.compare] order, so sorting a transaction's
   touched ids with plain int comparison reproduces byte-for-byte the
   item-order walks (deadlock-free lock acquisition, write-back) that
   the assoc-list implementations performed with string compares.  The
   per-item base-object handles live in plain arrays indexed by id, so
   the hot path does one string hash per operation (the [id] lookup) and
   integer indexing from there on. *)

open Tm_base

type t = { ids : (Item.t, int) Hashtbl.t; items : Item.t array }

let create (items : Item.t list) : t =
  let arr = Array.of_list (List.sort_uniq Item.compare items) in
  let ids = Hashtbl.create (max 16 (Array.length arr)) in
  Array.iteri (fun i x -> Hashtbl.replace ids x i) arr;
  { ids; items = arr }

let size t = Array.length t.items

(** @raise Not_found for an item outside the [create]-time set, exactly
    as the Hashtbl-closure lookups this replaces did. *)
let id t x : int = Hashtbl.find t.ids x

let item t i : Item.t = t.items.(i)

(** Allocate one [Oid.t] per item via [alloc] (called in the order of the
    original [items] list, preserving historical oid numbering), returned
    as an id-indexed array. *)
let alloc_oids (tbl : t) (items : Item.t list) ~(alloc : Item.t -> Oid.t) :
    Oid.t array =
  let oids = Array.make (size tbl) (Oid.of_int 0) in
  List.iter (fun x -> oids.(id tbl x) <- alloc x) items;
  oids
