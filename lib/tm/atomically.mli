(** Dynamic transactions with automatic retry — the client-facing
    combinator: [run handle ~pid body] executes [body] transactionally,
    retrying with a fresh transaction id on every abort (the restart
    model).  {!read}/{!write} raise out of the body on an abort answer so
    the whole body re-executes. *)

open Tm_base

exception Too_many_retries of { pid : int; attempts : int }

type 'a outcome = Done of 'a | Retry

val run :
  Txn_api.handle ->
  pid:int ->
  ?max_attempts:int ->
  ?on_abort:(attempt:int -> bool) ->
  (Txn_api.txn -> 'a outcome) ->
  'a
(** [on_abort ~attempt] runs after each abort, before the retry; a
    contention manager hooks in here to back off (burning simulation
    steps) or to give up by returning [false] — which raises
    {!Too_many_retries} just like exceeding [max_attempts]. *)

val read : Txn_api.txn -> Item.t -> Value.t
val write : Txn_api.txn -> Item.t -> Value.t -> unit
