(* The candidate TM — the theorem's victim.

   A natural attempt to get all three properties at once: per-item
   versioned registers and nothing else (no clock, no status words, no
   locks), optimistic reads, commit-time read-set validation and per-item
   CAS write-back.

     Parallelism: strict DAP — a transaction only ever touches the base
                  objects of its own data set.
     Liveness:    obstruction-free — the only aborts are validation or CAS
                  failures, which can only be caused by another process's
                  step inside the transaction's interval; running solo it
                  always commits.
     Consistency: by the PCL theorem it therefore CANNOT satisfy even weak
                  adaptive consistency.  And indeed it does not: the
                  commit write-back installs items one CAS at a time, so a
                  concurrent reader can observe half of a commit — the PCL
                  harness exhibits exactly the executions of Figures 3-6
                  against it, and the weak-adaptive checker refutes the
                  resulting histories.

   Per item x: [cell:x] = VPair (value, VInt version).  Items are dense
   int ids ({!Item_table}); id order = item order, so the install walk is
   unchanged. *)

open Tm_base
open Tm_runtime

let name = "candidate"
let describe = "strict DAP + obstruction-free; consistency broken (the PCL victim)"

type t = { tbl : Item_table.t; cell_oids : Oid.t array }

let create mem ~items =
  let tbl = Item_table.create items in
  let cell_oids =
    Item_table.alloc_oids tbl items ~alloc:(fun x ->
        Memory.alloc mem
          ~name:("cell:" ^ Item.name x)
          (Value.pair Value.initial (Value.int 0)))
  in
  { tbl; cell_oids }

type ctx = {
  t : t;
  pid : int;
  tid : Tid.t;
  topt : Tid.t option;  (* [Some tid], boxed once so steps don't re-box it *)
  mutable rset : (int * (Value.t * int)) list;
      (* item id -> value and version at first read *)
  mutable wset : (int * Value.t) list;
  mutable dead : bool;
}

let begin_txn t ~pid ~tid =
  { t; pid; tid; topt = Some tid; rset = []; wset = []; dead = false }

(* one atomic read of [cell:x], version only — no pair materialized *)
let cell_ver c id =
  match Proc.read_t ~tid:c.topt (Array.unsafe_get c.t.cell_oids id) with
  | Value.VPair (_, Value.VInt ver) -> ver
  | _ -> invalid_arg "candidate: bad cell"

let read c x =
  if c.dead then Error ()
  else
    let id = Item_table.id c.t.tbl x in
    match List.assoc_opt id c.wset with
    | Some v -> Ok v
    | None -> (
        match Proc.read_t ~tid:c.topt (Array.unsafe_get c.t.cell_oids id) with
        | Value.VPair (v, Value.VInt ver) ->
            if not (List.mem_assoc id c.rset) then
              c.rset <- (id, (v, ver)) :: c.rset;
            Ok v
        | _ -> invalid_arg "candidate: bad cell")

let write c x v =
  if c.dead then Error ()
  else begin
    let id = Item_table.id c.t.tbl x in
    c.wset <- (id, v) :: List.remove_assoc id c.wset;
    Ok ()
  end

(* validate read-only items: first-read version unchanged.  A failure
   implies an interfering step, so aborting preserves
   obstruction-freedom.  Read-write items are enforced by the install
   CAS below, which is pinned to the first-read state — re-reading
   here would open a lost-update window. *)
let rec validate c = function
  | [] -> true
  | (id, (_, ver0)) :: rest ->
      (List.mem_assoc id c.wset || cell_ver c id = ver0) && validate c rest

let try_commit c =
  if c.dead then Error ()
  else if not (validate c c.rset) then begin
    c.dead <- true;
    Error ()
  end
  else begin
    (* install item by item — the non-atomic MULTI-item write-back is
       the consistency defect the theorem mandates; each single item is
       updated atomically from its validated state *)
    let rec install = function
      | [] -> Ok ()
      | (id, v) :: rest ->
          let expected =
            match List.assoc_opt id c.rset with
            | Some (v0, ver0) -> Value.pair v0 (Value.int ver0)
            | None -> (
                match
                  Proc.read_t ~tid:c.topt (Array.unsafe_get c.t.cell_oids id)
                with
                | Value.VPair (_, Value.VInt _) as cur -> cur
                | _ -> invalid_arg "candidate: bad cell")
          in
          let ver =
            match expected with
            | Value.VPair (_, Value.VInt ver) -> ver
            | _ -> invalid_arg "candidate: bad cell"
          in
          if
            Proc.cas_t ~tid:c.topt
              (Array.unsafe_get c.t.cell_oids id)
              ~expected
              ~desired:(Value.pair v (Value.int (ver + 1)))
          then install rest
          else Error () (* contention: abort, obstruction-free *)
    in
    let sorted =
      List.sort (fun (a, _) (b, _) -> Int.compare a b) c.wset
    in
    let r = install sorted in
    c.dead <- true;
    r
  end

let abort c = c.dead <- true
