(* TL-style lock-based TM [Dice & Shavit 06], the paper's witness that
   weakening *liveness* makes the other two properties achievable:

     Parallelism: strict DAP — only per-item base objects are touched.
     Consistency: strict serializability — commit-time locking of the
                  read AND write sets (in item order, so commits never
                  deadlock) plus version validation of the read set.
                  Locking the read set closes the validate-to-install
                  window through which a conflicting writer could
                  otherwise slip (the race that motivated TL2's global
                  clock; here read locks keep the TM strictly DAP).
     Liveness:    blocking — commit spins on per-item locks, so a
                  suspended lock holder stalls everyone conflicting.

   Per item x: a lock object [lock:x] and a versioned value [val:x]
   holding VPair (value, VInt version).  Items are handled as dense int
   ids ({!Item_table}); read/write sets are id-keyed, and the id order
   coincides with item order, so the commit's lock walk is unchanged. *)

open Tm_base
open Tm_runtime

let name = "tl-lock"
let describe = "strict DAP + strict serializability, blocking (weakens L)"

type t = {
  tbl : Item_table.t;
  val_oids : Oid.t array;  (* id -> versioned value object *)
  lock_oids : Oid.t array;  (* id -> lock object *)
}

let create mem ~items =
  let tbl = Item_table.create items in
  let n = Item_table.size tbl in
  let val_oids = Array.make n (Oid.of_int 0) in
  let lock_oids = Array.make n (Oid.of_int 0) in
  (* allocation stays in the caller's item order: oid numbering is part
     of the byte-pinned artifact surface *)
  List.iter
    (fun x ->
      let id = Item_table.id tbl x in
      val_oids.(id) <-
        Memory.alloc mem
          ~name:("val:" ^ Item.name x)
          (Value.pair Value.initial (Value.int 0));
      lock_oids.(id) <-
        Memory.alloc mem ~name:("lock:" ^ Item.name x) Value.unit)
    items;
  { tbl; val_oids; lock_oids }

type ctx = {
  t : t;
  pid : int;
  tid : Tid.t;
  topt : Tid.t option;  (* [Some tid], boxed once so steps don't re-box it *)
  mutable rset : (int * int) list;  (* item id, version at first read *)
  mutable wset : (int * Value.t) list;  (* newest binding first *)
  mutable dead : bool;
}

let begin_txn t ~pid ~tid =
  { t; pid; tid; topt = Some tid; rset = []; wset = []; dead = false }

(* one atomic read of [val:x], version only — no pair materialized *)
let cell_ver c id =
  match Proc.read_t ~tid:c.topt (Array.unsafe_get c.t.val_oids id) with
  | Value.VPair (_, Value.VInt ver) -> ver
  | _ -> invalid_arg "tl: bad cell"

let read c x =
  if c.dead then Error ()
  else
    let id = Item_table.id c.t.tbl x in
    match List.assoc_opt id c.wset with
    | Some v -> Ok v
    | None -> (
        match Proc.read_t ~tid:c.topt (Array.unsafe_get c.t.val_oids id) with
        | Value.VPair (v, Value.VInt ver) ->
            if not (List.mem_assoc id c.rset) then
              c.rset <- (id, ver) :: c.rset;
            Ok v
        | _ -> invalid_arg "tl: bad cell")

let write c x v =
  if c.dead then Error ()
  else begin
    let id = Item_table.id c.t.tbl x in
    c.wset <- (id, v) :: List.remove_assoc id c.wset;
    Ok ()
  end

let write_items c = List.sort Int.compare (List.map fst c.wset)

(* every item the commit must lock: read set union write set, in item
   order (= id order) so that concurrent commits never deadlock *)
let lock_items c =
  List.sort_uniq Int.compare (List.map fst c.wset @ List.map fst c.rset)

let rec release c = function
  | [] -> ()
  | id :: rest ->
      Proc.unlock_t ~tid:c.topt ~pid:c.pid (Array.unsafe_get c.t.lock_oids id);
      release c rest

let rec validate c = function
  | [] -> true
  | (id, ver0) :: rest -> cell_ver c id = ver0 && validate c rest

let rec write_back c = function
  | [] -> ()
  | id :: rest ->
      let v = List.assoc id c.wset in
      let ver = cell_ver c id in
      Proc.write_t ~tid:c.topt
        (Array.unsafe_get c.t.val_oids id)
        (Value.pair v (Value.int (ver + 1)));
      write_back c rest

let try_commit c =
  if c.dead then Error ()
  else begin
    (* acquire read+write locks in item order; spin — the blocking part *)
    let rec acquire held = function
      | [] -> held
      | id :: rest as pending ->
          if
            Proc.try_lock_t ~tid:c.topt ~pid:c.pid
              (Array.unsafe_get c.t.lock_oids id)
          then acquire (id :: held) rest
          else acquire held pending
    in
    let held = acquire [] (lock_items c) in
    (* validate the read set: versions unchanged since first read *)
    if not (validate c c.rset) then begin
      release c held;
      c.dead <- true;
      Error ()
    end
    else begin
      (* write back, then release everything *)
      write_back c (write_items c);
      release c held;
      c.dead <- true;
      Ok ()
    end
  end

let abort c = c.dead <- true
