(* The candidate TM rebuilt on load-linked/store-conditional — the same
   doomed corner of the triangle reached through different primitives.
   The paper's model allows base objects with any primitives; the PCL
   theorem is primitive-agnostic, and this implementation demonstrates it:

     Parallelism: strict DAP — only the items' own cells are accessed.
     Liveness:    obstruction-free — an SC fails only because another
                  process's step invalidated the reservation; running solo
                  every SC succeeds.
     Consistency: broken, exactly like {!Candidate_tm}: the commit
                  installs items one SC at a time, so a concurrent reader
                  can observe half of a commit.  The PCL harness finds the
                  same Figure-5/6 violations, with s1/s2 now being SC
                  steps instead of CASes.

   Per item x: one plain register [ll:x] (items as dense int ids via
   {!Item_table}, id order = item order); reads LL it (leaving a
   reservation that doubles as validation), commits SC it (read-write
   items reuse the read's reservation, so lost updates are impossible on a
   single item; read-only items are validated by an SC of the same value,
   which makes reads visible at commit, as the paper permits). *)

open Tm_base
open Tm_runtime

let name = "llsc-candidate"
let describe =
  "strict DAP + obstruction-free via LL/SC; consistency broken (the \
   primitive-agnostic victim)"

type t = { tbl : Item_table.t; cell_oids : Oid.t array }

let create mem ~items =
  let tbl = Item_table.create items in
  let cell_oids =
    Item_table.alloc_oids tbl items ~alloc:(fun x ->
        Memory.alloc mem ~name:("ll:" ^ Item.name x) Value.initial)
  in
  { tbl; cell_oids }

type ctx = {
  t : t;
  pid : int;
  tid : Tid.t;
  topt : Tid.t option;  (* [Some tid], boxed once so steps don't re-box it *)
  mutable rset : (int * Value.t) list;  (* item id, value at load-linked *)
  mutable wset : (int * Value.t) list;
  mutable dead : bool;
}

let begin_txn t ~pid ~tid = { t; pid; tid; topt = Some tid; rset = []; wset = []; dead = false }

let ll c id =
  Proc.access_t ~tid:c.topt
    (Array.unsafe_get c.t.cell_oids id)
    (Primitive.Load_linked c.pid)

let sc c id v =
  Value.to_bool_exn
    (Proc.access_t ~tid:c.topt
       (Array.unsafe_get c.t.cell_oids id)
       (Primitive.Store_conditional (c.pid, v)))

let read c x =
  if c.dead then Error ()
  else
    let id = Item_table.id c.t.tbl x in
    match List.assoc_opt id c.wset with
    | Some v -> Ok v
    | None ->
        let v = ll c id in
        if not (List.mem_assoc id c.rset) then c.rset <- (id, v) :: c.rset;
        Ok v

let write c x v =
  if c.dead then Error ()
  else begin
    let id = Item_table.id c.t.tbl x in
    c.wset <- (id, v) :: List.remove_assoc id c.wset;
    Ok ()
  end

(* 1. validate read-only items: SC their own value back — succeeds iff
   nothing touched the cell since our LL *)
let rec validate c = function
  | [] -> true
  | (id, v) :: rest ->
      (List.mem_assoc id c.wset || sc c id v) && validate c rest

let try_commit c =
  if c.dead then Error ()
  else begin
    c.dead <- true;
    if not (validate c c.rset) then Error ()
    else begin
      (* 2. install the write set one SC at a time (the torn write-back);
         read-write items reuse the read's reservation, write-only items
         take a fresh LL immediately before their SC *)
      let rec install = function
        | [] -> Ok ()
        | (id, v) :: rest ->
            if not (List.mem_assoc id c.rset) then ignore (ll c id);
            if sc c id v then install rest
            else Error () (* someone interfered: abort, obstruction-free *)
      in
      install (List.sort (fun (a, _) (b, _) -> Int.compare a b) c.wset)
    end
  end

let abort c = c.dead <- true
