(** All TM implementations: one per corner of the paper's triangle, the
    candidate the theorem kills, and the TL2 ablation. *)

val all : Tm_intf.impl list
val name : Tm_intf.impl -> string
val describe : Tm_intf.impl -> string
type lookup =
  | Found of Tm_intf.impl
  | Ambiguous of string list  (** candidate names the prefix matches *)
  | Unknown

val lookup : string -> lookup
(** Exact name match, or a unique-prefix match ([tl2] resolves to
    [tl2-clock]); an ambiguous prefix like [tl] reports its candidates. *)

val find : string -> Tm_intf.impl option
(** [lookup] collapsed to an option. *)

val find_exn : string -> Tm_intf.impl
(** @raise Invalid_argument on unknown or ambiguous names; the ambiguous
    message lists the matching candidates. *)
