(** All TM implementations: one per corner of the paper's triangle, the
    candidate the theorem kills, and the TL2 ablation. *)

val all : Tm_intf.impl list
val name : Tm_intf.impl -> string
val describe : Tm_intf.impl -> string
val find : string -> Tm_intf.impl option
(** Exact name match, or a unique-prefix match ([tl2] resolves to
    [tl2-clock]; ambiguous prefixes like [tl] do not resolve). *)

val find_exn : string -> Tm_intf.impl
