(* The client-facing API: a TM instance packaged as closures, with every
   transactional routine recorded as invocation/response events in a
   history (the paper's H_alpha).  This is the single place where histories
   are produced, so every TM is instrumented identically. *)

open Tm_base
open Tm_trace

type txn = {
  tid : Tid.t;
  pid : int;
  read : Item.t -> (Value.t, unit) result;
  write : Item.t -> Value.t -> (unit, unit) result;
  try_commit : unit -> (unit, unit) result;
  abort : unit -> unit;
}

type handle = {
  tm_name : string;
  begin_txn : pid:int -> tid:Tid.t -> txn;
  fresh_tid : unit -> Tid.t;
      (** unique transaction ids for retry loops; deterministic per handle
          (and therefore per replay) *)
}

(** Instantiate a TM implementation over [mem], recording all events into
    [recorder].  The event timestamps are the global step counts, placing
    history events on the same axis as access-log steps. *)
let instantiate (module M : Tm_intf.S) (mem : Memory.t)
    (recorder : Recorder.t) ~(items : Item.t list) : handle =
  let t = M.create mem ~items in
  let now () = Memory.step_count mem in
  let tid_counter = ref 0 in
  let fresh_tid () =
    incr tid_counter;
    Tid.v (50_000 + !tid_counter)
  in
  (* telemetry: every TM is instrumented identically here, and the memory
     hook attributes every base-object step to the TM under test *)
  let metrics = Tm_obs.Sink.metrics Tm_obs.Sink.default in
  let tm_l = [ ("tm", M.name) ] in
  let c_of name = Tm_obs.Metrics.counter metrics ~labels:tm_l name in
  let c_begin = c_of "tm_begin_total"
  and c_read = c_of "tm_read_total"
  and c_write = c_of "tm_write_total"
  and c_commit = c_of "tm_commit_total"
  and c_abort = c_of "tm_abort_total"
  and c_retry = c_of "tm_retry_total"
  and c_poison = c_of "tm_poison_aborts_total" in
  let c_prim =
    Array.init Primitive.n_kinds (fun i ->
        Tm_obs.Metrics.counter metrics
          ~labels:(("prim", Primitive.kind_names.(i)) :: tm_l)
          "tm_mem_prim_total")
  in
  Memory.set_hook mem (fun log i ->
      Tm_obs.Metrics.inc
        c_prim.(Primitive.kind_index (Access_log.prim_at log i)));
  (* a begin on a pid whose previous transaction aborted is a retry (the
     paper's restart model) *)
  let last_aborted : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let aborted pid =
    Tm_obs.Metrics.inc c_abort;
    Hashtbl.replace last_aborted pid ()
  in
  let begin_txn ~pid ~tid =
    Tm_obs.Metrics.inc c_begin;
    if Hashtbl.mem last_aborted pid then begin
      Tm_obs.Metrics.inc c_retry;
      Hashtbl.remove last_aborted pid
    end;
    Recorder.inv recorder ~tid ~pid ~at:(now ()) Event.Begin;
    let ctx = M.begin_txn t ~pid ~tid in
    Recorder.resp recorder ~tid ~pid ~at:(now ()) Event.Begin Event.R_ok;
    (* doomed-transaction poison (chaos engine): a poisoned process's
       next transactional operation is answered by the TM's own abort
       routine, so the forced abort is indistinguishable — in the
       history and in memory — from one the TM chose itself.  The
       routines form one [let rec] group so they share a single closure
       block per transaction instead of allocating one environment
       each. *)
    let rec take_poison () =
      if Memory.take_poison mem pid then begin
        Tm_obs.Metrics.inc c_poison;
        M.abort ctx;
        true
      end
      else false
    and read x =
      Tm_obs.Metrics.inc c_read;
      Recorder.inv_read recorder ~tid ~pid ~at:(now ()) x;
      if take_poison () then begin
        aborted pid;
        Recorder.resp_read_aborted recorder ~tid ~pid ~at:(now ()) x;
        Error ()
      end
      else
        match M.read ctx x with
        | Ok v as r ->
            Recorder.resp_read_value recorder ~tid ~pid ~at:(now ()) x v;
            r
        | Error () ->
            aborted pid;
            Recorder.resp_read_aborted recorder ~tid ~pid ~at:(now ()) x;
            Error ()
    and write x v =
      Tm_obs.Metrics.inc c_write;
      Recorder.inv_write recorder ~tid ~pid ~at:(now ()) x v;
      if take_poison () then begin
        aborted pid;
        Recorder.resp_write_aborted recorder ~tid ~pid ~at:(now ()) x v;
        Error ()
      end
      else
        match M.write ctx x v with
        | Ok () ->
            Recorder.resp_write_ok recorder ~tid ~pid ~at:(now ()) x v;
            Ok ()
        | Error () ->
            aborted pid;
            Recorder.resp_write_aborted recorder ~tid ~pid ~at:(now ()) x v;
            Error ()
    and try_commit () =
      Recorder.inv recorder ~tid ~pid ~at:(now ()) Event.Try_commit;
      if take_poison () then begin
        aborted pid;
        Recorder.resp recorder ~tid ~pid ~at:(now ()) Event.Try_commit
          Event.R_aborted;
        Error ()
      end
      else
      match M.try_commit ctx with
      | Ok () ->
          Tm_obs.Metrics.inc c_commit;
          Recorder.resp recorder ~tid ~pid ~at:(now ()) Event.Try_commit
            Event.R_committed;
          Ok ()
      | Error () ->
          aborted pid;
          Recorder.resp recorder ~tid ~pid ~at:(now ()) Event.Try_commit
            Event.R_aborted;
          Error ()
    and abort () =
      Recorder.inv recorder ~tid ~pid ~at:(now ()) Event.Abort_call;
      M.abort ctx;
      aborted pid;
      Recorder.resp recorder ~tid ~pid ~at:(now ()) Event.Abort_call
        Event.R_aborted
    in
    { tid; pid; read; write; try_commit; abort }
  in
  { tm_name = M.name; begin_txn; fresh_tid }
