(* NOrec [Dalessandro, Spear & Scott 10]: a single global sequence lock
   and value-based revalidation — the minimal-metadata design point.

     Parallelism: NOT DAP — every transaction reads the global sequence
                  word and every writer CASes it, so disjoint transactions
                  contend on [seq] exactly like on si-clock's clock.
     Consistency: opacity — reads post-validate against the sequence word
                  and revalidate the entire read set by value whenever it
                  moved, so a transaction only ever observes snapshots.
     Liveness:    blocking — the sequence word is odd while a writer is
                  writing back; readers and committers spin on it, so a
                  suspended writer stalls everyone (including disjoint
                  transactions: the anti-DAP and anti-liveness defects
                  coincide in the same object).

   Objects: [seq] = VInt (even = stable, odd = writer in write-back);
   per item [nv:x] = plain value register (items as dense int ids via
   {!Item_table}; write-back order is the [List.rev c.wset] insertion
   order, unchanged by the keying). *)

open Tm_base
open Tm_runtime

let name = "norec"
let describe = "opacity from one global seqlock; neither DAP nor non-blocking"

type t = { seq : Oid.t; tbl : Item_table.t; cell_oids : Oid.t array }

let create mem ~items =
  let seq = Memory.alloc mem ~name:"seq" (Value.int 0) in
  let tbl = Item_table.create items in
  let cell_oids =
    Item_table.alloc_oids tbl items ~alloc:(fun x ->
        Memory.alloc mem ~name:("nv:" ^ Item.name x) Value.initial)
  in
  { seq; tbl; cell_oids }

type ctx = {
  t : t;
  pid : int;
  tid : Tid.t;
  topt : Tid.t option;  (* [Some tid], boxed once so steps don't re-box it *)
  mutable snapshot : int;  (* last even seq value we validated at *)
  mutable rset : (int * Value.t) list;  (* value-based read log, by item id *)
  mutable wset : (int * Value.t) list;
  mutable dead : bool;
}

(* spin until the sequence word is even (a suspended writer blocks us
   here — NOrec's blocking window) *)
let rec wait_even c =
  let s = Value.to_int_exn (Proc.read_t ~tid:c.topt c.t.seq) in
  if s land 1 = 0 then s else wait_even c

let begin_txn t ~pid ~tid =
  let c = { t; pid; tid; topt = Some tid; snapshot = 0; rset = []; wset = []; dead = false } in
  c.snapshot <- wait_even c;
  c

(* value-based revalidation: returns the new stable snapshot, or None if
   some read value changed (we must abort) *)
let rec revalidate c =
  let s = wait_even c in
  let ok =
    List.for_all
      (fun (id, v) ->
        Value.equal
          (Proc.read_t ~tid:c.topt (Array.unsafe_get c.t.cell_oids id))
          v)
      c.rset
  in
  if not ok then None
  else
    let s' = Value.to_int_exn (Proc.read_t ~tid:c.topt c.t.seq) in
    if s' = s then Some s else revalidate c

let read c x =
  if c.dead then Error ()
  else
    let id = Item_table.id c.t.tbl x in
    match List.assoc_opt id c.wset with
    | Some v -> Ok v
    | None ->
        let rec go () =
          let v =
            Proc.read_t ~tid:c.topt (Array.unsafe_get c.t.cell_oids id)
          in
          let s = Value.to_int_exn (Proc.read_t ~tid:c.topt c.t.seq) in
          if s = c.snapshot then Ok v
          else
            match revalidate c with
            | None ->
                c.dead <- true;
                Error ()
            | Some s' ->
                c.snapshot <- s';
                go ()
        in
        Result.map
          (fun v ->
            c.rset <- (id, v) :: c.rset;
            v)
          (go ())

let write c x v =
  if c.dead then Error ()
  else begin
    let id = Item_table.id c.t.tbl x in
    c.wset <- (id, v) :: List.remove_assoc id c.wset;
    Ok ()
  end

let try_commit c =
  if c.dead then Error ()
  else begin
    c.dead <- true;
    if c.wset = [] then Ok () (* read-only transactions commit for free *)
    else begin
      (* acquire the sequence lock at our snapshot, revalidating until we
         win the CAS from an even value we have validated against *)
      let rec acquire () =
        if
          Proc.cas_t ~tid:c.topt c.t.seq ~expected:(Value.int c.snapshot)
            ~desired:(Value.int (c.snapshot + 1))
        then Ok ()
        else
          match revalidate c with
          | None -> Error ()
          | Some s ->
              c.snapshot <- s;
              acquire ()
      in
      match acquire () with
      | Error () -> Error ()
      | Ok () ->
          List.iter
            (fun (id, v) ->
              Proc.write_t ~tid:c.topt (Array.unsafe_get c.t.cell_oids id) v)
            (List.rev c.wset);
          Proc.write_t ~tid:c.topt c.t.seq (Value.int (c.snapshot + 2));
          Ok ()
    end
  end

let abort c = c.dead <- true
