(** Partially wait-free TM [Kuznetsov & Ravi, "On Partial Wait-Freedom in
    Transactional Memory"] — read-only transactions are wait-free with a
    constant step bound (one shared load: the versioned snapshot root at
    begin) and updaters are lock-free (one validate+publish CAS on the
    root, failing only to a concurrent commit).  The price is
    parallelism: the whole committed state lives behind one base object,
    so even disjoint transactions contend — the strongest strict-DAP
    tax. *)

include Tm_intf.S
