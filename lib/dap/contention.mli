(** Contention on base objects (Section 3): alpha|T1 and alpha|T2 contend
    on o if both contain a primitive on o and at least one is
    non-trivial. *)

open Tm_base

type access_summary = {
  tid : Tid.t;
  objects : bool Oid.Map.t;  (** oid -> applied a non-trivial primitive? *)
}

val summarize : Access_log.entry list -> access_summary list
(** Per-transaction footprints, sorted by [Tid.compare]; repeated
    [(Tid, Oid)] accesses collapse into one map entry, so the output is
    duplicate-free and deterministic across runs. *)

val summarize_log : Access_log.t -> access_summary list
(** [summarize] straight off the flat log columns: an index walk, no
    entry records or list materialized. *)

val contended_objects : access_summary -> access_summary -> Oid.t list
(** Sorted by [Oid.compare], duplicate-free — stable lint witnesses. *)

type contention = { t1 : Tid.t; t2 : Tid.t; objects : Oid.t list }

val all_contentions : Access_log.entry list -> contention list
(** Every contending pair of transactions in the log, ordered by
    [(t1, t2)] with [t1 < t2]. *)

val all_contentions_log : Access_log.t -> contention list
(** [all_contentions] over the log structure itself. *)
