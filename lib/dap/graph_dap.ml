(* The weaker conflict-graph variants of disjoint-access-parallelism
   (Section 2): contention between two transactions is allowed when they
   are connected by a path in the conflict graph of the execution interval
   containing both.  With a bound d on the path length this is the d-local
   contention property [2, 5, 6, 27]; with no bound it is the variant of
   [8, 31] (often called simply disjoint-access-parallelism, and what the
   authors' DSTM variant [11] satisfies for write contention). *)

open Tm_base

type violation = {
  t1 : Tid.t;
  t2 : Tid.t;
  objects : Oid.t list;
  distance : int option;  (** conflict-graph distance, None = disconnected *)
}

(** Contentions not justified by a conflict path of length <= [d]
    ([d = max_int] for the unbounded variant).  The conflict graph is built
    over all transactions of the log — the minimal execution interval
    containing any two of them is the whole execution, so this is the most
    permissive (hardest to violate) reading. *)
let violations ?(d = max_int) ~(data_sets : Conflict.data_sets)
    (log : Access_log.entry list) : violation list =
  let tids =
    List.sort_uniq compare
      (List.filter_map (fun (e : Access_log.entry) -> e.tid) log)
  in
  let g = Conflict.graph data_sets tids in
  List.filter_map
    (fun (c : Contention.contention) ->
      let dist = Conflict.distance g c.t1 c.t2 in
      match dist with
      | Some n when n <= d -> None
      | _ -> Some { t1 = c.t1; t2 = c.t2; objects = c.objects; distance = dist })
    (Contention.all_contentions log)

let holds ?d ~data_sets log =
  let ok =
    Tm_obs.Sink.time ~labels:[ ("probe", "graph-dap") ] "probe_wall_ns"
      (fun () -> violations ?d ~data_sets log = [])
  in
  Tm_obs.Sink.incr
    ~labels:
      [ ("probe", "graph-dap"); ("result", (if ok then "holds" else "violated")) ]
    "probe_check_total";
  ok
