(* Strict disjoint-access-parallelism (Section 3): in every execution, two
   transactions contend on a base object only if their data sets intersect.
   This checker is per-execution: it reports every contention between
   non-conflicting transactions as a violation (a single violation refutes
   strict DAP of the implementation). *)

open Tm_base

type violation = {
  t1 : Tid.t;
  t2 : Tid.t;
  objects : Oid.t list;  (** contended objects *)
}

let pp_violation ~name_of ppf (v : violation) =
  Fmt.pf ppf "%s and %s are disjoint but contend on %a" (Tid.name v.t1)
    (Tid.name v.t2)
    Fmt.(list ~sep:comma string)
    (List.map name_of v.objects)

(** All strict-DAP violations of an execution. *)
let violations ~(data_sets : Conflict.data_sets)
    (log : Access_log.entry list) : violation list =
  List.filter_map
    (fun (c : Contention.contention) ->
      if Conflict.conflict data_sets c.t1 c.t2 then None
      else Some { t1 = c.t1; t2 = c.t2; objects = c.objects })
    (Contention.all_contentions log)

let holds ~data_sets log =
  let ok =
    Tm_obs.Sink.time ~labels:[ ("probe", "strict-dap") ] "probe_wall_ns"
      (fun () -> violations ~data_sets log = [])
  in
  Tm_obs.Sink.incr
    ~labels:
      [ ("probe", "strict-dap"); ("result", (if ok then "holds" else "violated")) ]
    "probe_check_total";
  ok
