(* Obstruction-freedom (Section 3): a transaction T may be aborted only if
   other processes take steps during T's execution interval.

   The per-execution detector: for every aborted transaction, check whether
   any other process took a step between T's first and last step (step
   contention).  An abort without step contention refutes
   obstruction-freedom.  Solo-run non-termination (the blocking liveness
   failure) is detected separately by the scheduler's step budgets. *)

open Tm_base
open Tm_trace

type violation = {
  tid : Tid.t;
  interval : int * int;  (** step interval of the transaction *)
}

let pp_violation ppf (v : violation) =
  let lo, hi = v.interval in
  Fmt.pf ppf "%s aborted without step contention (steps %d..%d)"
    (Tid.name v.tid) lo hi

(** Steps attributed to [tid] in the log, as (first, last) global indices.
    Falls back to event timestamps when the transaction took no shared
    steps. *)
let step_interval (h : History.t) (log : Access_log.entry list) tid :
    (int * int) option =
  let steps =
    List.filter_map
      (fun (e : Access_log.entry) ->
        if e.tid = Some tid then Some e.index else None)
      log
  in
  match steps with
  | [] ->
      (* no shared steps: use the event 'at' stamps (step counts at event
         time) as a degenerate interval *)
      Option.map
        (fun (f, l) ->
          let at i = Event.at (History.get h i) in
          (at f, at l))
        (History.positions_of_txn h tid)
  | first :: _ ->
      let last = List.fold_left max first steps in
      Some (first, last)

let violations (h : History.t) (log : Access_log.entry list) :
    violation list =
  let aborted =
    List.filter (fun tid -> History.aborted h tid) (History.txns h)
  in
  List.filter_map
    (fun tid ->
      match step_interval h log tid with
      | None -> None
      | Some (lo, hi) ->
          let pid =
            Option.value ~default:(-1) (History.pid_of_txn h tid)
          in
          let contended =
            List.exists
              (fun (e : Access_log.entry) ->
                e.index >= lo && e.index <= hi && e.pid <> pid)
              log
          in
          if contended then None else Some { tid; interval = (lo, hi) })
    aborted

let holds h log =
  let ok =
    Tm_obs.Sink.time ~labels:[ ("probe", "obstruction-freedom") ]
      "probe_wall_ns"
      (fun () -> violations h log = [])
  in
  Tm_obs.Sink.incr
    ~labels:
      [
        ("probe", "obstruction-freedom");
        ("result", (if ok then "holds" else "violated"));
      ]
    "probe_check_total";
  ok
