(* Contention on base objects (Section 3): alpha|T1 and alpha|T2 contend on
   o if both contain a primitive on o and at least one of those primitives
   is non-trivial. *)

open Tm_base

type access_summary = {
  tid : Tid.t;
  objects : bool Oid.Map.t;  (** oid -> applied a non-trivial primitive? *)
}

(* The per-transaction (Tid, Oid) footprint is accumulated into a map, so
   repeated accesses to the same object collapse into one pair; the final
   summaries are sorted by [Tid.compare] so callers (and lint witnesses)
   see the same order on every run regardless of hash-table iteration. *)
let add_access (tbl : (Tid.t, bool Oid.Map.t) Hashtbl.t) tid oid prim =
  let m = Option.value ~default:Oid.Map.empty (Hashtbl.find_opt tbl tid) in
  let prev = Option.value ~default:false (Oid.Map.find_opt oid m) in
  Hashtbl.replace tbl tid (Oid.Map.add oid (prev || Primitive.non_trivial prim) m)

let summaries_of (tbl : (Tid.t, bool Oid.Map.t) Hashtbl.t) =
  Hashtbl.fold (fun tid objects acc -> { tid; objects } :: acc) tbl []
  |> List.sort (fun s1 s2 -> Tid.compare s1.tid s2.tid)

let summarize (log : Access_log.entry list) : access_summary list =
  let tbl : (Tid.t, bool Oid.Map.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Access_log.entry) ->
      match e.tid with
      | None -> ()
      | Some tid -> add_access tbl tid e.oid e.prim)
    log;
  summaries_of tbl

(** Same footprint summary straight off the flat log columns: an index
    walk with no entry records or list materialized. *)
let summarize_log (log : Access_log.t) : access_summary list =
  let tbl : (Tid.t, bool Oid.Map.t) Hashtbl.t = Hashtbl.create 16 in
  for i = 0 to Access_log.length log - 1 do
    let ti = Access_log.tid_int_at log i in
    if ti >= 0 then
      add_access tbl (Tid.v ti) (Access_log.oid_at log i)
        (Access_log.prim_at log i)
  done;
  summaries_of tbl

(** Objects on which two transactions contend in the log, sorted by
    [Oid.compare] and deduplicated, so contention witnesses are stable
    across runs. *)
let contended_objects (s1 : access_summary) (s2 : access_summary) :
    Oid.t list =
  Oid.Map.fold
    (fun oid nt1 acc ->
      match Oid.Map.find_opt oid s2.objects with
      | Some nt2 when nt1 || nt2 -> oid :: acc
      | Some _ | None -> acc)
    s1.objects []
  |> List.sort_uniq Oid.compare

type contention = { t1 : Tid.t; t2 : Tid.t; objects : Oid.t list }

(** Every contending pair of transactions in the log, ordered by
    [(t1, t2)] with [t1 < t2]. *)
let contentions_of (summaries : access_summary list) : contention list =
  let rec go acc = function
    | [] -> acc
    | s1 :: rest ->
        let acc =
          List.fold_left
            (fun acc s2 ->
              match contended_objects s1 s2 with
              | [] -> acc
              | objects -> { t1 = s1.tid; t2 = s2.tid; objects } :: acc)
            acc rest
        in
        go acc rest
  in
  List.rev (go [] summaries)

let all_contentions (log : Access_log.entry list) : contention list =
  contentions_of (summarize log)

(** [all_contentions] over the log structure itself (index walk, no
    entry-list rescan). *)
let all_contentions_log (log : Access_log.t) : contention list =
  contentions_of (summarize_log log)
