(* Umbrella module: the full public API of the PCL workbench.

   Layers, bottom-up:
   - {!Value} .. {!Memory}: the shared-memory substrate (base objects,
     atomic primitives, the step log).
   - {!Event} .. {!Legality}: histories and the paper's Section-3 notions.
   - {!Proc} .. {!Explorer}: the deterministic scheduler and schedules.
   - {!Spec} .. {!Hierarchy}: the consistency-condition decision
     procedures (Definitions 3.1-3.3 and the surrounding lattice).
   - {!Conflict} .. {!Obstruction_freedom}: disjoint-access-parallelism
     and liveness detectors.
   - {!Tm_intf} .. {!Registry}: the TM implementations.
   - {!Pcl_*}: the mechanized Section-4 proof construction.
   - {!Vclock} .. {!Lints}: pclsan, the happens-before engine and lint
     passes over recorded executions. *)

(* observability: the telemetry layer everything below records into *)
module Metrics = Tm_obs.Metrics
module Span = Tm_obs.Span
module Sink = Tm_obs.Sink
module Obs_json = Tm_obs.Obs_json
module Schema = Tm_obs.Schema
module Reason = Tm_obs.Reason
module Watch = Tm_obs.Watch
module Prof = Tm_obs.Prof
module Gcstat = Tm_obs.Gcstat

(* substrate *)
module Intvec = Tm_base.Intvec
module Objvec = Tm_base.Objvec
module Value = Tm_base.Value
module Oid = Tm_base.Oid
module Item = Tm_base.Item
module Tid = Tm_base.Tid
module Primitive = Tm_base.Primitive
module Base_object = Tm_base.Base_object
module Access_log = Tm_base.Access_log
module Memory = Tm_base.Memory

(* traces *)
module Event = Tm_trace.Event
module History = Tm_trace.History
module Recorder = Tm_trace.Recorder
module Legality = Tm_trace.Legality
module Build = Tm_trace.Build
module Wire = Tm_trace.Wire
module Flight = Tm_trace.Flight
module Timeline = Tm_trace.Timeline

(* runtime *)
module Proc = Tm_runtime.Proc
module Scheduler = Tm_runtime.Scheduler
module Schedule = Tm_runtime.Schedule
module Sim = Tm_runtime.Sim
module Explorer = Tm_runtime.Explorer

(* consistency *)
module Spec = Tm_consistency.Spec
module Blocks = Tm_consistency.Blocks
module Placement = Tm_consistency.Placement
module Views = Tm_consistency.Views
module Checker_util = Tm_consistency.Checker_util
module Serializability = Tm_consistency.Serializability
module Conflict_serializability = Tm_consistency.Conflict_serializability
module Strict_serializability = Tm_consistency.Strict_serializability
module Snapshot_isolation = Tm_consistency.Snapshot_isolation
module Snapshot_isolation_ei = Tm_consistency.Snapshot_isolation_ei
module Processor_consistency = Tm_consistency.Processor_consistency
module Pram = Tm_consistency.Pram
module Causal = Tm_consistency.Causal
module Weak_adaptive = Tm_consistency.Weak_adaptive
module Opacity = Tm_consistency.Opacity
module Checkers = Tm_consistency.Checkers
module Witness = Tm_consistency.Witness
module Provenance = Tm_consistency.Provenance
module Anomalies = Tm_consistency.Anomalies
module Hierarchy = Tm_consistency.Hierarchy

(* dap *)
module Conflict = Tm_dap.Conflict
module Contention = Tm_dap.Contention
module Strict_dap = Tm_dap.Strict_dap
module Graph_dap = Tm_dap.Graph_dap
module Obstruction_freedom = Tm_dap.Obstruction_freedom

(* tm implementations *)
module Tm_intf = Tm_impl.Tm_intf
module Txn_api = Tm_impl.Txn_api
module Atomically = Tm_impl.Atomically
module Static_txn = Tm_impl.Static_txn
module Tl_tm = Tm_impl.Tl_tm
module Pram_tm = Tm_impl.Pram_tm
module Dstm_tm = Tm_impl.Dstm_tm
module Si_tm = Tm_impl.Si_tm
module Candidate_tm = Tm_impl.Candidate_tm
module Tl2_tm = Tm_impl.Tl2_tm
module Norec_tm = Tm_impl.Norec_tm
module Llsc_tm = Tm_impl.Llsc_tm
module Lp_tm = Tm_impl.Lp_tm
module Pwf_tm = Tm_impl.Pwf_tm
module Registry = Tm_impl.Registry

(* universal constructions *)
module Seq_object = Tm_universal.Seq_object
module Universal = Tm_universal.Universal
module Linearizability = Tm_universal.Linearizability

(* probes *)
module Liveness_class = Tm_probe.Liveness_class
module Workload = Tm_probe.Workload
module Progress = Tm_probe.Progress
module Explore_sweep = Tm_probe.Explore_sweep
module Soak = Tm_probe.Soak

(* pclsan: the happens-before engine and lint passes *)
module Vclock = Tm_analysis.Vclock
module Hb = Tm_analysis.Hb
module Lint = Tm_analysis.Lint
module Lint_passes = Tm_analysis.Passes
module Progress_lint = Tm_analysis.Progress_lint
module Figure_lint = Tm_analysis.Figure_lint
module Lints = Tm_analysis.Lints

(* the cost observatory: synchronization-cost metering *)
module Cost = Tm_cost.Cost
module Cost_run = Tm_cost.Cost_run

(* chaos: fault injection, contention management, crash-closure *)
module Chaos_prng = Tm_chaos.Prng
module Cm = Tm_chaos.Cm
module Fault = Tm_chaos.Fault
module Crash_closure = Tm_chaos.Crash_closure
module Chaos_run = Tm_chaos.Chaos_run

(* the scenario catalogue: versioned conformance scenarios + runner *)
module Scenario = Tm_scenario.Scenario
module Scenario_gen = Tm_scenario.Scenario_gen
module Scenario_run = Tm_scenario.Scenario_run

(* the mechanized proof *)
module Pcl_txns = Pcl.Txns
module Pcl_harness = Pcl.Harness
module Pcl_critical_step = Pcl.Critical_step
module Pcl_constructions = Pcl.Constructions
module Pcl_claims = Pcl.Claims
module Pcl_verdict = Pcl.Verdict
module Pcl_figures = Pcl.Figures
