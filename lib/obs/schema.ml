(* One schema version for every machine-readable artifact the workbench
   emits: flight recordings, lint findings, report/metric JSONL, chaos
   cells, cost rows and reason lines all stamp the same ["schema"] key,
   so a consumer checks one number regardless of which subcommand
   produced the file. *)

let version = 1

let field : string * Obs_json.t = ("schema", Obs_json.Int version)
