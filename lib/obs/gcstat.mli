(** GC and allocation metering for long runs.

    A meter reports deltas of [Gc.quick_stat] since its creation,
    sampled at deterministic tick boundaries the caller chooses (the
    soak driver uses step-count boundaries: the sampling {e structure}
    reproduces even though the values are machine-dependent).  Values
    render only into a separate schema-stamped ["perf"] record — never
    into the byte-deterministic JSONL streams. *)

type sample = {
  tick : int;  (** the deterministic boundary this sample was taken at *)
  steps : int;
  txns : int;
  alloc_words : float;  (** cumulative since the meter was created *)
  minor_collections : int;
  major_collections : int;
}

type t

val create : ?cap:int -> unit -> t
(** Snapshot the GC now; deltas are measured from here.  [cap]
    (default 1024) bounds the retained sample list. *)

val sample : t -> tick:int -> steps:int -> txns:int -> sample
(** Take (and, below [cap], retain) a sample at a tick boundary. *)

val samples : t -> sample list
(** Retained samples, oldest first. *)

val allocated_words : t -> float
(** Words allocated since the meter was created
    (minor + major - promoted). *)

val report : t -> wall_ns:int -> steps:int -> txns:int -> Obs_json.t
(** The schema-stamped [{"schema":1,"type":"perf",...}] record:
    absolute and per-step/per-txn allocation and time rates plus
    collection counts. *)
