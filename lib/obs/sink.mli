(** The telemetry sink: a metrics registry plus a span tracer plus run
    metadata, with in-memory aggregation (a table printer) and JSONL
    export.

    A process-wide {!default} sink exists so instrumentation deep in the
    stack records without threading a sink through every signature; the
    CLI resets it at the start of a run and exports it at the end.  The
    JSONL schema is documented in docs/OBSERVABILITY.md. *)

type t

val create :
  ?cap:int -> ?clock:(unit -> float) -> ?steps:(unit -> int) -> unit -> t

val default : t
(** The process-wide sink all [Sink.incr]/[Sink.span]/... conveniences
    record into. *)

val metrics : t -> Metrics.t
val tracer : t -> Span.t

val set_meta : t -> string -> string -> unit
(** Attach a key/value to the run line of the export (last write per key
    wins). *)

val meta : t -> (string * string) list

val reset : t -> unit
(** Zero all metrics, drop all spans, clear metadata.  Metric handles
    resolved before the reset stay valid. *)

(** {1 Recording into {!default}} *)

val incr : ?labels:Metrics.labels -> string -> unit
val add : ?labels:Metrics.labels -> string -> int -> unit
val observe : ?labels:Metrics.labels -> string -> float -> unit
val set_gauge : ?labels:Metrics.labels -> string -> float -> unit
val span : ?labels:Metrics.labels -> string -> (unit -> 'a) -> 'a
val with_step_source : (unit -> int) -> (unit -> 'a) -> 'a

val time : ?labels:Metrics.labels -> string -> (unit -> 'a) -> 'a
(** Run the thunk, observing its wall duration (ns) into the named
    histogram. *)

(** {1 Export} *)

val jsonl_values : t -> Obs_json.t list
(** One JSON object per JSONL line: the run line, every metric sample
    (sorted), every buffered span, and a [spans_dropped] line if the span
    cap was hit. *)

val to_jsonl : t -> string
val write_jsonl : t -> string -> unit
val pp_table : Format.formatter -> t -> unit
