(** Begin/end span tracing with nesting, wall-clock and step durations.

    A tracer keeps a bounded buffer of completed spans (in completion
    order).  The step clock is injectable: the simulator binds it to the
    current memory's step counter during a replay, so spans report both
    wall time and atomic-step counts — the paper's own cost measure. *)

type span = {
  name : string;
  labels : Metrics.labels;
  depth : int;  (** nesting depth when the span began, 0 = root *)
  seq : int;  (** completion order, 0-based *)
  start_step : int;
  end_step : int;
  wall_ns : int;
}

val steps_of : span -> int
(** [end_step - start_step]. *)

type t

val create :
  ?cap:int -> ?clock:(unit -> float) -> ?steps:(unit -> int) -> unit -> t
(** [cap] bounds the buffer (default 10_000; overflow counts as
    [dropped]); [clock] returns seconds ({!Unix.gettimeofday} by
    default); [steps] is the step clock (constant 0 by default). *)

val with_step_source : t -> (unit -> int) -> (unit -> 'a) -> 'a
(** Bind the step clock for the duration of the thunk (restored on exit,
    also on exceptions). *)

val with_ : t -> ?labels:Metrics.labels -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span, recorded on completion (also when the
    thunk raises). *)

val spans : t -> span list
(** Completed spans in completion order. *)

val count : t -> int
val dropped : t -> int
val active_depth : t -> int
val reset : t -> unit
