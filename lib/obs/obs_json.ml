(* A minimal JSON value type with a printer and parser, enough for the
   telemetry sink's JSONL export and its round-trip tests.  No external
   JSON library is available in the build environment, and the subset we
   emit (objects of scalars, flat label maps) keeps this small. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* shortest decimal that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if not (Float.is_finite f) then
        (* JSON has no nan/infinity *)
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        l;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\":";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let pp ppf v = Fmt.string ppf (to_string v)

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Parse_error of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
            incr pos;
            Buffer.contents buf
        | '\\' ->
            incr pos;
            if !pos >= n then fail "truncated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if !pos + 4 >= n then fail "truncated \\u escape";
                (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
                | Some code -> add_utf8 buf code
                | None -> fail "bad \\u escape");
                pos := !pos + 4
            | _ -> fail "bad escape");
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements (v :: acc)
            | Some ']' ->
                incr pos;
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ ->
        let start = !pos in
        let numeric c =
          match c with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        in
        while !pos < n && numeric s.[!pos] do
          incr pos
        done;
        if !pos = start then fail "unexpected character";
        let tok = String.sub s start (!pos - start) in
        if
          String.contains tok '.' || String.contains tok 'e'
          || String.contains tok 'E'
        then
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number"
        else (
          match int_of_string_opt tok with
          | Some i -> Int i
          | None -> (
              match float_of_string_opt tok with
              | Some f -> Float f
              | None -> fail "bad number"))
  in
  try
    let v = value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  with Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int = function Int n -> Some n | _ -> None
let to_float = function Float f -> Some f | Int n -> Some (float_of_int n) | _ -> None
let to_str = function String s -> Some s | _ -> None
