(* Begin/end span tracing with nesting, wall-clock and step durations.

   A tracer keeps a bounded buffer of completed spans (completion order).
   The "step clock" is injectable: the simulator binds it to the current
   memory's step counter for the duration of a replay, so spans report
   both wall time and the number of atomic steps they covered — the
   paper's own cost measure. *)

type span = {
  name : string;
  labels : Metrics.labels;
  depth : int;  (** nesting depth at the time the span began, 0 = root *)
  seq : int;  (** completion order, 0-based *)
  start_step : int;
  end_step : int;
  wall_ns : int;
}

let steps_of (s : span) = s.end_step - s.start_step

type t = {
  clock : unit -> float;  (** seconds; injectable for deterministic tests *)
  mutable steps : unit -> int;
  mutable depth : int;
  mutable seq : int;
  mutable spans_rev : span list;
  mutable n_spans : int;
  mutable dropped : int;
  cap : int;
}

let default_cap = 10_000

let create ?(cap = default_cap) ?(clock = Unix.gettimeofday)
    ?(steps = fun () -> 0) () =
  {
    clock;
    steps;
    depth = 0;
    seq = 0;
    spans_rev = [];
    n_spans = 0;
    dropped = 0;
    cap;
  }

(** Bind the step clock for the duration of [f] (restored afterwards, even
    on exceptions) — used by [Sim.replay] to report step durations against
    the replay's own memory. *)
let with_step_source t steps f =
  let saved = t.steps in
  t.steps <- steps;
  Fun.protect ~finally:(fun () -> t.steps <- saved) f

(** Run [f] inside a span.  The span is recorded on completion, also when
    [f] raises.  Buffer overflow past the cap counts into [dropped]
    instead of growing without bound (the explorer replays hundreds of
    thousands of schedules). *)
let with_ t ?(labels = []) name f =
  let start_step = t.steps () in
  let t0 = t.clock () in
  let depth = t.depth in
  t.depth <- depth + 1;
  let finish () =
    t.depth <- depth;
    let wall_ns = int_of_float ((t.clock () -. t0) *. 1e9) in
    let sp =
      {
        name;
        labels = Metrics.canon labels;
        depth;
        seq = t.seq;
        start_step;
        end_step = t.steps ();
        wall_ns;
      }
    in
    t.seq <- t.seq + 1;
    if t.n_spans < t.cap then begin
      t.spans_rev <- sp :: t.spans_rev;
      t.n_spans <- t.n_spans + 1
    end
    else t.dropped <- t.dropped + 1
  in
  Fun.protect ~finally:finish f

let spans t = List.rev t.spans_rev
let count t = t.n_spans
let dropped t = t.dropped
let active_depth t = t.depth

let reset t =
  t.spans_rev <- [];
  t.n_spans <- 0;
  t.dropped <- 0;
  t.seq <- 0
