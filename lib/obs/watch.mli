(** Live run telemetry: one-line progress/metrics snapshots rendered from
    the default sink's metrics registry, driven by deterministic progress
    ticks (per execution / iteration / cell).  Lines go to stderr by
    default, never to the machine-readable stdout. *)

type t

val create :
  ?out:out_channel ->
  ?every:int ->
  label:string ->
  (string * string) list ->
  t
(** [create ~label counters] — [counters] maps display keys to metric
    names in {!Sink.default}; each snapshot prints
    [key=sum_counters(metric)] for every pair.  [every] (default 100)
    sets the tick period between snapshots. *)

val tick : t -> unit
(** One unit of progress; emits a snapshot every [every] ticks. *)

val finish : t -> unit
(** Emit the closing snapshot unconditionally. *)

val emitted : t -> int
(** Snapshot lines emitted so far. *)
