(** Hierarchical phase profiling over the {!Span} tracer.

    Completion order plus nesting depth determine the call forest
    exactly, so a profile needs no timestamps: spans aggregate by their
    name path from the root, each phase carrying a call count, total
    (inclusive) and self (exclusive) wall time and step count.
    Profiles of disjoint runs add pointwise ({!merge}), which is what
    lets a million-transaction soak fold each segment's spans in and
    reset the tracer, keeping the profile O(distinct phases).

    Exports: the collapsed-stack text format flamegraph.pl/speedscope
    consume, and Chrome trace events on the flight recorder's
    deterministic step-as-microsecond convention. *)

type node = {
  path : string list;  (** names from the root, outermost first *)
  mutable count : int;
  mutable total_ns : int;
  mutable self_ns : int;
  mutable total_steps : int;
  mutable self_steps : int;
}

type t

val create : unit -> t

val add_spans : t -> Span.span list -> unit
(** Rebuild the call forest of the given completion-ordered spans and
    fold it into the profile. *)

val of_spans : Span.span list -> t
(** [of_spans ss = (let t = create () in add_spans t ss; t)]. *)

val add_into : dst:t -> t -> unit
(** Fold [src] into [dst] pointwise. *)

val merge : t -> t -> t
(** A fresh profile with both arguments folded in.  Law: merging the
    profiles of two span lists equals profiling their concatenation
    (each list a completed forest). *)

val nodes : t -> node list
(** All phases, sorted by path. *)

type metric = Wall_ns | Steps | Calls

val to_collapsed : ?metric:metric -> t -> string
(** Collapsed-stack lines ["a;b;c 1234\n"], lexicographically sorted,
    weighing each stack by its {e self} value (default {!Wall_ns}) so
    the lines sum to the whole run. *)

val spans_to_chrome : ?pid:int -> Span.span list -> Obs_json.t
(** One complete ("ph":"X") trace event per span, logical step indices
    as microsecond timestamps (deterministic; tracks by depth). *)

val pp : Format.formatter -> t -> unit
(** Human-readable phase table (calls, total/self ms, total/self
    steps). *)
